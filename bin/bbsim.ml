(* bbsim — command-line front end for the bandwidth-broker reproduction.

   Subcommands:
     fill      static fill of the Figure-8 domain under one scheme
     simulate  one dynamic churn run (Figure-10 style)
     sweep     blocking rate across offered loads
     admit     one-shot admission decision for a custom flow
     transient the Figure-7 edge transient
     metrics   run a static fill and print its telemetry snapshot

   fill and simulate accept --metrics-out PATH (and --metrics-format) to
   dump the control-plane metrics snapshot after the run.

   Try: dune exec bin/bbsim.exe -- fill --scheme perflow --dreq 2.19 *)

open Cmdliner

module Types = Bbr_broker.Types
module Aggregate = Bbr_broker.Aggregate
module Broker = Bbr_broker.Broker
module Telemetry = Bbr_broker.Telemetry
module Traffic = Bbr_vtrs.Traffic
module Static = Bbr_workload.Static
module Dynamic = Bbr_workload.Dynamic
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Transient = Bbr_workload.Transient
module Metrics = Bbr_obs.Metrics
module Obs_trace = Bbr_obs.Trace
module Exporter = Bbr_obs.Exporter

(* --- shared arguments ---------------------------------------------- *)

let setting_arg =
  let parse = function
    | "rate" | "rate-only" -> Ok `Rate_only
    | "mixed" -> Ok `Mixed
    | s -> Error (`Msg (Printf.sprintf "unknown setting %S (rate|mixed)" s))
  in
  let print ppf s =
    Fmt.string ppf (match s with `Rate_only -> "rate" | `Mixed -> "mixed")
  in
  Arg.conv (parse, print)

let setting =
  Arg.(
    value
    & opt setting_arg `Mixed
    & info [ "setting" ] ~docv:"SETTING"
        ~doc:"Scheduler setting: $(b,rate) (all rate-based) or $(b,mixed).")

let dreq =
  Arg.(
    value
    & opt float 2.19
    & info [ "dreq" ] ~docv:"SECONDS" ~doc:"End-to-end delay requirement.")

let cd =
  Arg.(
    value
    & opt float 0.24
    & info [ "cd" ] ~docv:"SECONDS"
        ~doc:"Fixed class delay parameter at delay-based schedulers.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"PRNG seed.")

let duration =
  Arg.(
    value
    & opt float 20_000.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated horizon.")

(* --- metrics plumbing ----------------------------------------------- *)

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:
          "Collect control-plane telemetry during the run and write the \
           snapshot to $(docv) afterwards ($(b,-) = stdout).")

let metrics_format_arg =
  let parse = function
    | "text" | "prometheus" -> Ok `Text
    | "json" -> Ok `Json
    | s -> Error (`Msg (Printf.sprintf "unknown metrics format %S (text|json)" s))
  in
  let print ppf f = Fmt.string ppf (match f with `Text -> "text" | `Json -> "json") in
  Arg.conv (parse, print)

let metrics_format =
  Arg.(
    value
    & opt metrics_format_arg `Text
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:
          "Snapshot format: $(b,text) (Prometheus exposition) or $(b,json).")

let render_metrics reg = function
  | `Text -> Exporter.to_prometheus reg
  | `Json -> Exporter.to_json reg

(* Install a fresh registry + tracer around [f] and export the snapshot to
   [out] afterwards; without --metrics-out, [f] runs uninstrumented. *)
let with_metrics ~out ~format f =
  match out with
  | None -> f ()
  | Some path ->
      let reg = Metrics.create () in
      Metrics.install reg;
      Obs_trace.install (Obs_trace.create ());
      Fun.protect
        ~finally:(fun () ->
          Metrics.uninstall ();
          Obs_trace.uninstall ())
        (fun () ->
          let r = f () in
          Exporter.write ~path (render_metrics reg format);
          r)

(* --- fill ----------------------------------------------------------- *)

let scheme_arg =
  let parse = function
    | "intserv" -> Ok `Intserv
    | "perflow" -> Ok `Perflow
    | "aggr" | "aggr-feedback" -> Ok (`Aggr Aggregate.Feedback)
    | "aggr-bounding" -> Ok (`Aggr Aggregate.Bounding)
    | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown scheme %S (intserv|perflow|aggr|aggr-bounding)" s))
  in
  let print ppf = function
    | `Intserv -> Fmt.string ppf "intserv"
    | `Perflow -> Fmt.string ppf "perflow"
    | `Aggr Aggregate.Feedback -> Fmt.string ppf "aggr"
    | `Aggr Aggregate.Bounding -> Fmt.string ppf "aggr-bounding"
  in
  Arg.conv (parse, print)

let scheme =
  Arg.(
    value
    & opt scheme_arg `Perflow
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Admission scheme: $(b,intserv), $(b,perflow), $(b,aggr) \
           (feedback) or $(b,aggr-bounding).")

let run_fill setting dreq cd scheme verbose out format =
  let static_scheme =
    match scheme with
    | `Intserv -> Static.Intserv_gs
    | `Perflow -> Static.Perflow_bb
    | `Aggr method_ -> Static.Aggr_bb { cd; method_ }
  in
  let r =
    with_metrics ~out ~format (fun () ->
        Static.fill ~setting ~dreq ~observe:Telemetry.register_broker
          static_scheme)
  in
  Fmt.pr "admitted %d flows before the first rejection@." r.Static.admitted;
  if verbose then begin
    Fmt.pr "%4s  %12s  %12s  %12s@." "n" "flow rate" "total" "mean/flow";
    List.iter
      (fun (s : Static.step) ->
        Fmt.pr "%4d  %12.1f  %12.1f  %12.1f@." s.Static.n s.Static.flow_rate
          s.Static.total_rate s.Static.mean_rate)
      r.Static.steps
  end
  else
    match List.rev r.Static.steps with
    | last :: _ ->
        Fmt.pr "total reserved %.1f b/s, mean per flow %.1f b/s@."
          last.Static.total_rate last.Static.mean_rate
    | [] -> ()

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every admission step.")

let fill_cmd =
  let doc = "Fill the Figure-8 domain with identical flows until rejection (Table 2)." in
  Cmd.v (Cmd.info "fill" ~doc)
    Term.(
      const run_fill $ setting $ dreq $ cd $ scheme $ verbose $ metrics_out
      $ metrics_format)

(* --- simulate ------------------------------------------------------- *)

let load =
  Arg.(
    value
    & opt float 0.2
    & info [ "load" ] ~docv:"FLOWS/S" ~doc:"Total flow arrival rate.")

let run_simulate setting cd scheme seed load duration out format =
  let dyn_scheme =
    match scheme with
    | `Perflow -> Dynamic.Perflow
    | `Aggr m -> Dynamic.Aggr m
    | `Intserv ->
        Fmt.epr "simulate supports perflow/aggr schemes only@.";
        exit 1
  in
  let cfg =
    { Dynamic.seed; setting; arrival_rate = load; mean_holding = 200.; duration; cd }
  in
  let o =
    with_metrics ~out ~format (fun () ->
        Dynamic.run
          ~observe:(fun _engine broker -> Telemetry.register_broker broker)
          cfg dyn_scheme)
  in
  Fmt.pr "scheme: %a@." Dynamic.pp_scheme dyn_scheme;
  Fmt.pr "offered %d, blocked %d, completed %d@." o.Dynamic.offered o.Dynamic.blocked
    o.Dynamic.completed;
  Fmt.pr "blocking rate: %.4f@." o.Dynamic.blocking_rate

let simulate_cmd =
  let doc = "One dynamic churn run: Poisson arrivals, exponential holding times." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run_simulate $ setting $ cd $ scheme $ seed $ load $ duration
      $ metrics_out $ metrics_format)

(* --- sweep ---------------------------------------------------------- *)

let loads =
  Arg.(
    value
    & opt (list float) [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4 ]
    & info [ "loads" ] ~docv:"L1,L2,..." ~doc:"Arrival rates to sweep.")

let seeds =
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 4; 5 ]
    & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Seeds averaged per point.")

let run_sweep setting cd seeds loads duration =
  let base = { Dynamic.default_config with Dynamic.setting; cd; duration } in
  let schemes =
    [ Dynamic.Perflow; Dynamic.Aggr Aggregate.Feedback; Dynamic.Aggr Aggregate.Bounding ]
  in
  Fmt.pr "%-10s" "load(f/s)";
  List.iter (fun s -> Fmt.pr " %24s" (Fmt.str "%a" Dynamic.pp_scheme s)) schemes;
  Fmt.pr "@.";
  let curves = List.map (fun s -> Dynamic.blocking_vs_load ~seeds ~base ~loads s) schemes in
  List.iteri
    (fun i load ->
      Fmt.pr "%-10.3f" load;
      List.iter (fun curve -> Fmt.pr " %24.4f" (snd (List.nth curve i))) curves;
      Fmt.pr "@.")
    loads

let sweep_cmd =
  let doc = "Blocking rate vs offered load for all three schemes (Figure 10)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run_sweep $ setting $ cd $ seeds $ loads $ duration)

(* --- admit ---------------------------------------------------------- *)

let run_admit setting dreq sigma rho peak lmax =
  let topo = Fig8.topology setting in
  let broker = Broker.create topo in
  let profile = Traffic.make ~sigma ~rho ~peak ~lmax in
  let req = { Types.profile; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 } in
  match Broker.request broker req with
  | Ok (flow, res) ->
      Fmt.pr "admitted as flow %d on I1->E1@." flow;
      Fmt.pr "reserved rate:   %.1f b/s@." res.Types.rate;
      Fmt.pr "delay parameter: %.4f s@." res.Types.delay
  | Error reason -> Fmt.pr "rejected: %a@." Types.pp_reject_reason reason

let sigma =
  Arg.(value & opt float 60_000. & info [ "sigma" ] ~docv:"BITS" ~doc:"Burst size.")

let rho =
  Arg.(
    value & opt float 50_000. & info [ "rho" ] ~docv:"BITS/S" ~doc:"Sustained rate.")

let peak =
  Arg.(value & opt float 100_000. & info [ "peak" ] ~docv:"BITS/S" ~doc:"Peak rate.")

let lmax =
  Arg.(
    value & opt float 12_000. & info [ "lmax" ] ~docv:"BITS" ~doc:"Max packet size.")

let admit_cmd =
  let doc = "One-shot admission decision for a custom dual-token-bucket flow." in
  Cmd.v (Cmd.info "admit" ~doc)
    Term.(const run_admit $ setting $ dreq $ sigma $ rho $ peak $ lmax)

(* --- transient ------------------------------------------------------ *)

let run_transient () =
  let r = Transient.leave_scenario () in
  Fmt.pr "edge-delay bound:       %.3f s@." r.Transient.bound;
  Fmt.pr "naive rate reduction:   %.3f s%s@." r.Transient.naive
    (if r.Transient.naive > r.Transient.bound then "  (violation)" else "");
  Fmt.pr "Theorem-3 contingency:  %.3f s@." r.Transient.with_contingency

let transient_cmd =
  let doc = "The Figure-7 dynamic-aggregation transient and its repair." in
  Cmd.v (Cmd.info "transient" ~doc) Term.(const run_transient $ const ())

(* --- metrics --------------------------------------------------------- *)

let run_metrics setting dreq cd scheme format =
  let static_scheme =
    match scheme with
    | `Perflow -> Static.Perflow_bb
    | `Aggr method_ -> Static.Aggr_bb { cd; method_ }
    | `Intserv ->
        Fmt.epr "metrics supports perflow/aggr schemes only@.";
        exit 1
  in
  let reg = Metrics.create () in
  Metrics.install reg;
  Obs_trace.install (Obs_trace.create ());
  Fun.protect
    ~finally:(fun () ->
      Metrics.uninstall ();
      Obs_trace.uninstall ())
    (fun () ->
      ignore
        (Static.fill ~setting ~dreq ~observe:Telemetry.register_broker
           static_scheme);
      print_string (render_metrics reg format))

let metrics_cmd =
  let doc =
    "Run a Figure-8 static fill with telemetry on and print the snapshot \
     (admission counters, per-link utilization, stage latency histograms)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run_metrics $ setting $ dreq $ cd $ scheme $ metrics_format)

(* --- trace / replay -------------------------------------------------- *)

let run_trace_gen setting cd seed load duration =
  let cfg =
    { Dynamic.seed; setting; arrival_rate = load; mean_holding = 200.; duration; cd }
  in
  print_string (Bbr_workload.Trace.to_string (Bbr_workload.Trace.generate cfg))

let trace_gen_cmd =
  let doc = "Emit a synthetic flow-arrival trace on stdout (replayable with replay)." in
  Cmd.v (Cmd.info "trace-gen" ~doc)
    Term.(const run_trace_gen $ setting $ cd $ seed $ load $ duration)

let trace_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "file" ] ~docv:"PATH" ~doc:"Trace file (see trace-gen).")

let run_replay setting cd scheme file =
  let dyn_scheme =
    match scheme with
    | `Perflow -> Dynamic.Perflow
    | `Aggr m -> Dynamic.Aggr m
    | `Intserv ->
        Fmt.epr "replay supports perflow/aggr schemes only@.";
        exit 1
  in
  let ic = open_in file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Bbr_workload.Trace.of_string text with
  | Error e ->
      Fmt.epr "%s@." e;
      exit 1
  | Ok entries ->
      let o = Bbr_workload.Trace.replay ~setting ~cd entries dyn_scheme in
      Fmt.pr "scheme: %a@." Dynamic.pp_scheme dyn_scheme;
      Fmt.pr "offered %d, blocked %d, completed %d, blocking rate %.4f@."
        o.Dynamic.offered o.Dynamic.blocked o.Dynamic.completed o.Dynamic.blocking_rate

let replay_cmd =
  let doc = "Replay a flow-arrival trace through an admission scheme." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run_replay $ setting $ cd $ scheme $ trace_file)

(* -------------------------------------------------------------------- *)

let () =
  let doc = "bandwidth-broker / VTRS simulator (SIGCOMM 2000 reproduction)" in
  let info = Cmd.info "bbsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fill_cmd;
            simulate_cmd;
            sweep_cmd;
            admit_cmd;
            transient_cmd;
            metrics_cmd;
            trace_gen_cmd;
            replay_cmd;
          ]))
