(* bbsim — command-line front end for the bandwidth-broker reproduction.

   Subcommands:
     fill      static fill of the Figure-8 domain under one scheme
     simulate  one dynamic churn run (Figure-10 style); --shards N
               runs the sharded multi-core broker over a regional
               domain instead, one churn loop per OCaml domain
     sweep     blocking rate across offered loads
     admit     one-shot admission decision for a custom flow
     transient the Figure-7 edge transient
     metrics   run a static fill and print its telemetry snapshot
     recover   rebuild a broker from a snapshot + write-ahead journal,
               or cold-recover from an exported segmented store
     scrub     integrity-check an exported segmented store (segment
               footers, record CRCs, checkpoint generations)
     audit     run a workload and cross-check the MIB invariants
     overload  overload soak through the bounded admission pipeline
               (or, with --partition, the lease-reclaim soak)
     federation chaos soak of the inter-domain 2PC federation
               (loss, partition, domain crash, coordinator crash)
     trace     analyze a flight-recorder box: span trees and
               critical-path stage blame

   fill, simulate, overload and federation accept --metrics-out PATH
   (and --metrics-format) to dump the control-plane metrics snapshot
   after the run, --trace-out PATH for a Chrome trace_event export of
   the causal trace (load in Perfetto), and --flight-out PATH to arm
   the black-box flight recorder.

   Exit codes: 0 success, 1 domain failure (rejected audit, failed
   replay, store corruption), 2 file I/O error, 3 input parse error,
   4 recovered with data loss (a prefix state was rebuilt and is
   audit-clean, but records or a checkpoint generation were lost).

   Try: dune exec bin/bbsim.exe -- fill --scheme perflow --dreq 2.19 *)

open Cmdliner

module Types = Bbr_broker.Types
module Aggregate = Bbr_broker.Aggregate
module Broker = Bbr_broker.Broker
module Journal = Bbr_broker.Journal
module Storage = Bbr_broker.Storage
module Failover = Bbr_broker.Failover
module Snapshot = Bbr_broker.Snapshot
module Vfs = Bbr_util.Vfs
module Audit = Bbr_broker.Audit
module Telemetry = Bbr_broker.Telemetry
module Traffic = Bbr_vtrs.Traffic
module Static = Bbr_workload.Static
module Dynamic = Bbr_workload.Dynamic
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Transient = Bbr_workload.Transient
module Shard_router = Bbr_broker.Shard_router
module Shard_load = Bbr_workload.Shard_load
module Metrics = Bbr_obs.Metrics
module Obs_trace = Bbr_obs.Trace
module Exporter = Bbr_obs.Exporter
module Trace_export = Bbr_obs.Trace_export
module Critical_path = Bbr_obs.Critical_path
module Flight = Bbr_obs.Flight

(* --- shared arguments ---------------------------------------------- *)

let setting_arg =
  let parse = function
    | "rate" | "rate-only" -> Ok `Rate_only
    | "mixed" -> Ok `Mixed
    | s -> Error (`Msg (Printf.sprintf "unknown setting %S (rate|mixed)" s))
  in
  let print ppf s =
    Fmt.string ppf (match s with `Rate_only -> "rate" | `Mixed -> "mixed")
  in
  Arg.conv (parse, print)

let setting =
  Arg.(
    value
    & opt setting_arg `Mixed
    & info [ "setting" ] ~docv:"SETTING"
        ~doc:"Scheduler setting: $(b,rate) (all rate-based) or $(b,mixed).")

let dreq =
  Arg.(
    value
    & opt float 2.19
    & info [ "dreq" ] ~docv:"SECONDS" ~doc:"End-to-end delay requirement.")

let cd =
  Arg.(
    value
    & opt float 0.24
    & info [ "cd" ] ~docv:"SECONDS"
        ~doc:"Fixed class delay parameter at delay-based schedulers.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"PRNG seed.")

let duration =
  Arg.(
    value
    & opt float 20_000.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated horizon.")

(* --- error-path plumbing -------------------------------------------- *)

(* Distinct exit codes so scripts (and CI) can tell a missing file from a
   corrupt one without scraping stderr. *)
let exit_io = 2
let exit_parse = 3

(* "It worked, but not losslessly": recovery rebuilt a clean prefix
   state yet had to drop records, quarantine a segment, or skip a
   corrupt checkpoint generation.  Scripts must be able to tell this
   from both full success (0) and outright failure (1). *)
let exit_data_loss = 4

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> text
  | exception Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit exit_io

let write_file path text =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text)
  with
  | () -> ()
  | exception Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit exit_io

(* --- store directories ----------------------------------------------- *)

(* A segmented store travels as a plain directory of files (segments,
   checkpoints, quarantined segments) — the Vfs export/import format. *)
let import_store dir =
  match Sys.readdir dir with
  | exception Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit exit_io
  | names ->
      Array.sort compare names;
      let files =
        Array.to_list names
        |> List.filter (fun n -> not (Sys.is_directory (Filename.concat dir n)))
        |> List.map (fun n -> (n, read_file (Filename.concat dir n)))
      in
      Vfs.import files

let export_store vfs dir =
  (match Sys.mkdir dir 0o755 with
  | () -> ()
  | exception Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  | exception Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit exit_io);
  List.iter
    (fun (name, contents) -> write_file (Filename.concat dir name) contents)
    (Vfs.export vfs)

(* --- metrics plumbing ----------------------------------------------- *)

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:
          "Collect control-plane telemetry during the run and write the \
           snapshot to $(docv) afterwards ($(b,-) = stdout).")

let metrics_format_arg =
  let parse = function
    | "text" | "prometheus" -> Ok `Text
    | "json" -> Ok `Json
    | s -> Error (`Msg (Printf.sprintf "unknown metrics format %S (text|json)" s))
  in
  let print ppf f = Fmt.string ppf (match f with `Text -> "text" | `Json -> "json") in
  Arg.conv (parse, print)

let metrics_format =
  Arg.(
    value
    & opt metrics_format_arg `Text
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:
          "Snapshot format: $(b,text) (Prometheus exposition) or $(b,json).")

let render_metrics reg = function
  | `Text -> Exporter.to_prometheus reg
  | `Json -> Exporter.to_json reg

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:
          "Trace the run and write it as Chrome trace_event JSON to \
           $(docv) afterwards ($(b,-) = stdout); load in \
           chrome://tracing or Perfetto.")

let flight_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"PATH"
        ~doc:
          "Arm the black-box flight recorder.  The first anomaly (audit \
           violation, failed recovery digest, federation compensation \
           storm) dumps trace + metrics + MIB digest to $(docv); a clean \
           run writes an end-of-run box.  Analyze with $(b,bbsim trace).")

(* Install a fresh registry + tracer around [f] and export the requested
   artifacts afterwards; with none of --metrics-out / --trace-out /
   --flight-out, [f] runs uninstrumented. *)
let with_obs ~out ~format ~trace ~flight f =
  if out = None && trace = None && flight = None then f ()
  else begin
    let reg = Metrics.create () in
    Metrics.install reg;
    let tr = Obs_trace.create () in
    Obs_trace.install tr;
    Telemetry.register_tracer ();
    let recorder = Option.map (fun path -> Flight.arm ~out:path ()) flight in
    Fun.protect
      ~finally:(fun () ->
        Flight.disarm ();
        Metrics.uninstall ();
        Obs_trace.uninstall ())
      (fun () ->
        let r = f () in
        Option.iter
          (fun path -> Exporter.write ~path (render_metrics reg format))
          out;
        Option.iter
          (fun path ->
            Exporter.write ~path (Trace_export.chrome_string (Obs_trace.entries tr)))
          trace;
        Option.iter
          (fun rec_ -> Fmt.pr "flight box: %s@." (Flight.final rec_))
          recorder;
        r)
  end

(* --- fill ----------------------------------------------------------- *)

let scheme_arg =
  let parse = function
    | "intserv" -> Ok `Intserv
    | "perflow" -> Ok `Perflow
    | "aggr" | "aggr-feedback" -> Ok (`Aggr Aggregate.Feedback)
    | "aggr-bounding" -> Ok (`Aggr Aggregate.Bounding)
    | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown scheme %S (intserv|perflow|aggr|aggr-bounding)" s))
  in
  let print ppf = function
    | `Intserv -> Fmt.string ppf "intserv"
    | `Perflow -> Fmt.string ppf "perflow"
    | `Aggr Aggregate.Feedback -> Fmt.string ppf "aggr"
    | `Aggr Aggregate.Bounding -> Fmt.string ppf "aggr-bounding"
  in
  Arg.conv (parse, print)

let scheme =
  Arg.(
    value
    & opt scheme_arg `Perflow
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Admission scheme: $(b,intserv), $(b,perflow), $(b,aggr) \
           (feedback) or $(b,aggr-bounding).")

let run_fill setting dreq cd scheme verbose out format trace flight =
  let static_scheme =
    match scheme with
    | `Intserv -> Static.Intserv_gs
    | `Perflow -> Static.Perflow_bb
    | `Aggr method_ -> Static.Aggr_bb { cd; method_ }
  in
  let r =
    with_obs ~out ~format ~trace ~flight (fun () ->
        Static.fill ~setting ~dreq
          ~observe:(fun broker ->
            Telemetry.register_broker broker;
            Flight.set_digest (fun () -> Some (Audit.mib_digest broker)))
          static_scheme)
  in
  Fmt.pr "admitted %d flows before the first rejection@." r.Static.admitted;
  if verbose then begin
    Fmt.pr "%4s  %12s  %12s  %12s@." "n" "flow rate" "total" "mean/flow";
    List.iter
      (fun (s : Static.step) ->
        Fmt.pr "%4d  %12.1f  %12.1f  %12.1f@." s.Static.n s.Static.flow_rate
          s.Static.total_rate s.Static.mean_rate)
      r.Static.steps
  end
  else
    match List.rev r.Static.steps with
    | last :: _ ->
        Fmt.pr "total reserved %.1f b/s, mean per flow %.1f b/s@."
          last.Static.total_rate last.Static.mean_rate
    | [] -> ()

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every admission step.")

let fill_cmd =
  let doc = "Fill the Figure-8 domain with identical flows until rejection (Table 2)." in
  Cmd.v (Cmd.info "fill" ~doc)
    Term.(
      const run_fill $ setting $ dreq $ cd $ scheme $ verbose $ metrics_out
      $ metrics_format $ trace_out $ flight_out)

(* --- simulate ------------------------------------------------------- *)

let load =
  Arg.(
    value
    & opt float 0.2
    & info [ "load" ] ~docv:"FLOWS/S" ~doc:"Total flow arrival rate.")

let journal_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-out" ] ~docv:"PATH"
        ~doc:
          "Write-ahead journal every broker mutation during the run and \
           write the journal to $(docv) afterwards (replayable with \
           $(b,recover)).")

let store_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Back the run's write-ahead journal with a segmented store \
           (CRC'd per-record framing, sealed segment footers) and export \
           it to $(docv) afterwards — recoverable with $(b,recover \
           --store), integrity-checkable with $(b,scrub --store).")

(* The sharded path of [simulate]: one self-driving churn loop per shard
   over a regional domain partitioned by region, on real OCaml domains
   when the machine has more than one core.  [load * duration] gives each
   shard's operation budget (the classic path's expected arrival count).
   The run is checked id-blind against a single broker replaying the
   identical request streams; --journal-out PATH writes one write-ahead
   journal per shard (PATH.shard<k>, each replayable with recover). *)
let run_sharded ~shards ~seed ~load ~duration ~journal_path =
  let cfg =
    {
      Shard_load.default with
      Shard_load.seed;
      ops_per_shard = max 100 (int_of_float (load *. duration));
    }
  in
  let cores = Domain.recommended_domain_count () in
  let spawn = cores > 1 && shards > 1 in
  let journals = Hashtbl.create 8 in
  let journal_for i =
    match journal_path with
    | None -> None
    | Some _ ->
        let j = Journal.create () in
        Hashtbl.replace journals i j;
        Some j
  in
  let router =
    Shard_router.create ~spawn ~journal_for ~shards
      ~partition:(Shard_load.partition ~nshards:shards)
      (Shard_load.topology cfg)
  in
  let t0 = Unix.gettimeofday () in
  let results = Shard_router.churn router (Shard_load.specs cfg ~nshards:shards) in
  let dt = Unix.gettimeofday () -. t0 in
  Fmt.pr "sharded broker: %d shard(s) on %d core(s), %s domains@." shards cores
    (if spawn then "real" else "inline");
  Array.iteri
    (fun i (r : Bbr_broker.Shard.churn_result) ->
      Fmt.pr "  shard %d: admitted %d, rejected %d, torn down %d@." i
        r.Bbr_broker.Shard.admitted r.Bbr_broker.Shard.rejected
        r.Bbr_broker.Shard.torn)
    results;
  let ops = shards * cfg.Shard_load.ops_per_shard in
  Fmt.pr "%d ops in %.3fs: %.0f ops/s@." ops dt
    (if dt > 0. then float_of_int ops /. dt else 0.);
  let equivalent =
    Shard_router.flowset_digest router
    = Shard_router.flowset_digest_of
        (Shard_load.reference_flows cfg ~nshards:shards)
  in
  Fmt.pr "single-broker equivalence: %s@."
    (if equivalent then "exact" else "DIVERGED");
  Option.iter
    (fun path ->
      Hashtbl.iter
        (fun i j ->
          let p = Printf.sprintf "%s.shard%d" path i in
          write_file p (Journal.text j);
          Fmt.pr "journal: %d records -> %s@." (Journal.records j) p)
        journals)
    journal_path;
  Shard_router.stop router;
  if not equivalent then exit 1

let run_simulate setting cd scheme seed load duration journal_path store_dir out
    format trace flight shards =
  if shards > 1 then run_sharded ~shards ~seed ~load ~duration ~journal_path
  else
  let dyn_scheme =
    match scheme with
    | `Perflow -> Dynamic.Perflow
    | `Aggr m -> Dynamic.Aggr m
    | `Intserv ->
        Fmt.epr "simulate supports perflow/aggr schemes only@.";
        exit 1
  in
  let cfg =
    { Dynamic.seed; setting; arrival_rate = load; mean_holding = 200.; duration; cd }
  in
  let store =
    Option.map (fun _ -> Storage.create ~vfs:(Vfs.create ~seed ()) ()) store_dir
  in
  let journal =
    if journal_path <> None || store <> None then
      Some (Journal.create ?storage:store ())
    else None
  in
  let captured = ref None in
  let o =
    with_obs ~out ~format ~trace ~flight (fun () ->
        Dynamic.run
          ~observe:(fun _engine broker ->
            Telemetry.register_broker broker;
            Flight.set_digest (fun () -> Some (Audit.mib_digest broker));
            captured := Some broker;
            Option.iter (fun j -> Journal.attach j broker) journal)
          cfg dyn_scheme)
  in
  Fmt.pr "scheme: %a@." Dynamic.pp_scheme dyn_scheme;
  Fmt.pr "offered %d, blocked %d, completed %d@." o.Dynamic.offered o.Dynamic.blocked
    o.Dynamic.completed;
  Fmt.pr "blocking rate: %.4f@." o.Dynamic.blocking_rate;
  (match (journal_path, journal, !captured) with
  | Some path, Some j, Some broker ->
      write_file path (Journal.text j);
      Fmt.pr "journal: %d records -> %s@." (Journal.records j) path;
      Fmt.pr "final mib digest: %s@." (Audit.mib_digest broker)
  | _ -> ());
  match (store_dir, store, !captured) with
  | Some dir, Some st, Some broker ->
      Storage.seal_active st;
      export_store (Storage.vfs st) dir;
      Fmt.pr "store: %d file(s) -> %s@."
        (List.length (Vfs.list (Storage.vfs st)))
        dir;
      if journal_path = None then
        Fmt.pr "final mib digest: %s@." (Audit.mib_digest broker)
  | _ -> ()

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Run the sharded multi-core broker with $(docv) shards over a \
           regional domain (one churn loop per shard, on its own OCaml \
           domain when the machine is multi-core), checked against a \
           single-broker replay.  1 (the default) keeps the classic \
           single-broker churn run.")

let simulate_cmd =
  let doc = "One dynamic churn run: Poisson arrivals, exponential holding times." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run_simulate $ setting $ cd $ scheme $ seed $ load $ duration
      $ journal_out $ store_out $ metrics_out $ metrics_format $ trace_out
      $ flight_out $ shards_arg)

(* --- sweep ---------------------------------------------------------- *)

let loads =
  Arg.(
    value
    & opt (list float) [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4 ]
    & info [ "loads" ] ~docv:"L1,L2,..." ~doc:"Arrival rates to sweep.")

let seeds =
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 4; 5 ]
    & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Seeds averaged per point.")

let run_sweep setting cd seeds loads duration =
  let base = { Dynamic.default_config with Dynamic.setting; cd; duration } in
  let schemes =
    [ Dynamic.Perflow; Dynamic.Aggr Aggregate.Feedback; Dynamic.Aggr Aggregate.Bounding ]
  in
  Fmt.pr "%-10s" "load(f/s)";
  List.iter (fun s -> Fmt.pr " %24s" (Fmt.str "%a" Dynamic.pp_scheme s)) schemes;
  Fmt.pr "@.";
  let curves = List.map (fun s -> Dynamic.blocking_vs_load ~seeds ~base ~loads s) schemes in
  List.iteri
    (fun i load ->
      Fmt.pr "%-10.3f" load;
      List.iter (fun curve -> Fmt.pr " %24.4f" (snd (List.nth curve i))) curves;
      Fmt.pr "@.")
    loads

let sweep_cmd =
  let doc = "Blocking rate vs offered load for all three schemes (Figure 10)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run_sweep $ setting $ cd $ seeds $ loads $ duration)

(* --- admit ---------------------------------------------------------- *)

let run_admit setting dreq sigma rho peak lmax =
  let topo = Fig8.topology setting in
  let broker = Broker.create topo in
  let profile = Traffic.make ~sigma ~rho ~peak ~lmax in
  let req = { Types.profile; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 } in
  match Broker.request broker req with
  | Ok (flow, res) ->
      Fmt.pr "admitted as flow %d on I1->E1@." flow;
      Fmt.pr "reserved rate:   %.1f b/s@." res.Types.rate;
      Fmt.pr "delay parameter: %.4f s@." res.Types.delay
  | Error reason -> Fmt.pr "rejected: %a@." Types.pp_reject_reason reason

let sigma =
  Arg.(value & opt float 60_000. & info [ "sigma" ] ~docv:"BITS" ~doc:"Burst size.")

let rho =
  Arg.(
    value & opt float 50_000. & info [ "rho" ] ~docv:"BITS/S" ~doc:"Sustained rate.")

let peak =
  Arg.(value & opt float 100_000. & info [ "peak" ] ~docv:"BITS/S" ~doc:"Peak rate.")

let lmax =
  Arg.(
    value & opt float 12_000. & info [ "lmax" ] ~docv:"BITS" ~doc:"Max packet size.")

let admit_cmd =
  let doc = "One-shot admission decision for a custom dual-token-bucket flow." in
  Cmd.v (Cmd.info "admit" ~doc)
    Term.(const run_admit $ setting $ dreq $ sigma $ rho $ peak $ lmax)

(* --- transient ------------------------------------------------------ *)

let run_transient () =
  let r = Transient.leave_scenario () in
  Fmt.pr "edge-delay bound:       %.3f s@." r.Transient.bound;
  Fmt.pr "naive rate reduction:   %.3f s%s@." r.Transient.naive
    (if r.Transient.naive > r.Transient.bound then "  (violation)" else "");
  Fmt.pr "Theorem-3 contingency:  %.3f s@." r.Transient.with_contingency

let transient_cmd =
  let doc = "The Figure-7 dynamic-aggregation transient and its repair." in
  Cmd.v (Cmd.info "transient" ~doc) Term.(const run_transient $ const ())

(* --- metrics --------------------------------------------------------- *)

let run_metrics setting dreq cd scheme format =
  let static_scheme =
    match scheme with
    | `Perflow -> Static.Perflow_bb
    | `Aggr method_ -> Static.Aggr_bb { cd; method_ }
    | `Intserv ->
        Fmt.epr "metrics supports perflow/aggr schemes only@.";
        exit 1
  in
  let reg = Metrics.create () in
  Metrics.install reg;
  Obs_trace.install (Obs_trace.create ());
  Fun.protect
    ~finally:(fun () ->
      Metrics.uninstall ();
      Obs_trace.uninstall ())
    (fun () ->
      ignore
        (Static.fill ~setting ~dreq ~observe:Telemetry.register_broker
           static_scheme);
      print_string (render_metrics reg format))

let metrics_cmd =
  let doc =
    "Run a Figure-8 static fill with telemetry on and print the snapshot \
     (admission counters, per-link utilization, stage latency histograms)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run_metrics $ setting $ dreq $ cd $ scheme $ metrics_format)

(* --- trace / replay -------------------------------------------------- *)

let run_trace_gen setting cd seed load duration =
  let cfg =
    { Dynamic.seed; setting; arrival_rate = load; mean_holding = 200.; duration; cd }
  in
  print_string (Bbr_workload.Trace.to_string (Bbr_workload.Trace.generate cfg))

let trace_gen_cmd =
  let doc = "Emit a synthetic flow-arrival trace on stdout (replayable with replay)." in
  Cmd.v (Cmd.info "trace-gen" ~doc)
    Term.(const run_trace_gen $ setting $ cd $ seed $ load $ duration)

let trace_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "file" ] ~docv:"PATH" ~doc:"Trace file (see trace-gen).")

let run_replay setting cd scheme file =
  let dyn_scheme =
    match scheme with
    | `Perflow -> Dynamic.Perflow
    | `Aggr m -> Dynamic.Aggr m
    | `Intserv ->
        Fmt.epr "replay supports perflow/aggr schemes only@.";
        exit 1
  in
  let text = read_file file in
  match Bbr_workload.Trace.of_string text with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit exit_parse
  | Ok entries ->
      let o = Bbr_workload.Trace.replay ~setting ~cd entries dyn_scheme in
      Fmt.pr "scheme: %a@." Dynamic.pp_scheme dyn_scheme;
      Fmt.pr "offered %d, blocked %d, completed %d, blocking rate %.4f@."
        o.Dynamic.offered o.Dynamic.blocked o.Dynamic.completed o.Dynamic.blocking_rate

let replay_cmd =
  let doc = "Replay a flow-arrival trace through an admission scheme." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run_replay $ setting $ cd $ scheme $ trace_file)

(* --- recover --------------------------------------------------------- *)

let classes_for scheme cd =
  match scheme with
  | `Perflow | `Intserv -> []
  | `Aggr _ -> Dynamic.service_classes cd

let method_for = function `Aggr m -> m | `Perflow | `Intserv -> Aggregate.Feedback

let journal_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Write-ahead journal to replay (see $(b,simulate --journal-out)).")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Segmented store directory (see $(b,simulate --store-dir)): cold \
           recovery from the newest verifiable checkpoint generation plus \
           the longest intact journal suffix, degrading rather than \
           failing.")

let snapshot_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"PATH"
        ~doc:
          "Checkpoint to restore before the journal tail; without it the \
           journal replays from an empty broker.")

(* Shared tail of both recovery paths: audit the rebuilt broker, print
   the digest, and pick the exit code — 1 for a dirty audit, 4 for a
   clean recovery that lost data, 0 for a lossless one. *)
let finish_recover broker ~lossy =
  Fmt.pr "flows: %d per-flow, %d class members@."
    (Broker.per_flow_count broker)
    (Broker.class_flow_count broker);
  let report = Audit.check broker in
  Fmt.pr "%a@." Audit.pp_report report;
  Fmt.pr "final mib digest: %s@." (Audit.mib_digest broker);
  if not (Audit.ok report) then exit 1;
  if lossy then exit exit_data_loss

let run_recover setting cd scheme journal_path snapshot_path store_path =
  let mk () =
    Broker.create
      ~classes:(classes_for scheme cd)
      ~method_:(method_for scheme) (Fig8.topology setting)
  in
  match (store_path, journal_path) with
  | Some _, Some _ ->
      Fmt.epr "error: --store and --journal are mutually exclusive@.";
      exit exit_parse
  | None, None ->
      Fmt.epr "error: one of --journal or --store is required@.";
      exit exit_parse
  | Some dir, None -> (
      let st = Storage.create ~vfs:(import_store dir) () in
      match Failover.recover_from ~make:mk st with
      | Error e ->
          Fmt.epr "error: store: %s@." e;
          exit 1
      | Ok (broker, restored, r) ->
          (match r.Failover.sr_gen with
          | Some g ->
              Fmt.pr "checkpoint: generation %d, %d reservations restored%s@." g
                restored
                (if r.Failover.sr_fallback then "  (FALLBACK: a newer generation failed verification)"
                 else "")
          | None -> Fmt.pr "checkpoint: none verifiable, replaying from empty@.");
          Fmt.pr "journal: %d records applied from sequence %d@."
            r.Failover.sr_replayed r.Failover.sr_cover;
          Option.iter (fun w -> Fmt.pr "warning: truncated: %s@." w)
            r.Failover.sr_truncated;
          if r.Failover.sr_quarantined > 0 then
            Fmt.pr "warning: %d sealed segment(s) quarantined@."
              r.Failover.sr_quarantined;
          finish_recover broker ~lossy:(Failover.recovery_loss r))
  | None, Some journal_path ->
      let broker = mk () in
      (match snapshot_path with
      | None -> ()
      | Some path -> (
          match Snapshot.restore broker (read_file path) with
          | Ok n -> Fmt.pr "snapshot: %d reservations restored@." n
          | Error e ->
              Fmt.epr "error: snapshot: %s@." e;
              exit exit_parse));
      (match Journal.replay broker (read_file journal_path) with
      | Error e ->
          Fmt.epr "error: journal: %s@." e;
          exit exit_parse
      | Ok { Journal.applied; warning } ->
          Fmt.pr "journal: %d records applied@." applied;
          Option.iter (fun w -> Fmt.pr "warning: %s@." w) warning;
          finish_recover broker ~lossy:(warning <> None))

let recover_cmd =
  let doc =
    "Rebuild a broker offline — from a checkpoint snapshot plus a \
     write-ahead journal tail ($(b,--journal)), or cold from a segmented \
     store directory ($(b,--store)) — audit it, and print its canonical \
     MIB digest.  Exits 4 when the rebuild is clean but lossy (truncated \
     tail, quarantined segment, or checkpoint-generation fallback)."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      const run_recover $ setting $ cd $ scheme $ journal_file $ snapshot_file
      $ store_dir)

(* --- scrub ------------------------------------------------------------ *)

let scrub_store_dir =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Segmented store directory to check.")

let run_scrub dir =
  let st = Storage.create ~vfs:(import_store dir) () in
  let r = Storage.scrub st in
  Fmt.pr "segments checked: %d@." r.Storage.segments_checked;
  Fmt.pr "checkpoints: %d ok, %d bad@." r.Storage.checkpoints_ok
    r.Storage.checkpoints_bad;
  List.iter (fun (file, kind) -> Fmt.pr "corrupt: %s (%s)@." file kind) r.Storage.errors;
  List.iter (fun f -> Fmt.pr "quarantined: %s@." f) r.Storage.quarantined_files;
  if Storage.scrub_clean r then Fmt.pr "store clean@."
  else begin
    Fmt.pr "%d corruption(s) detected@." (List.length r.Storage.errors);
    exit 1
  end

let scrub_cmd =
  let doc =
    "Integrity-check an exported segmented store: every sealed segment's \
     footer CRC, every record CRC and sequence chain, both checkpoint \
     generations.  Sealed segments whose bytes changed since sealing are \
     quarantined (renamed $(b,*.quar) inside the imported view; the \
     directory itself is not modified).  Exits 1 on any detection."
  in
  Cmd.v (Cmd.info "scrub" ~doc) Term.(const run_scrub $ scrub_store_dir)

(* --- audit ----------------------------------------------------------- *)

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Exit non-zero when the audit finds any violation.")

let run_audit setting cd scheme seed load duration strict =
  let dyn_scheme =
    match scheme with
    | `Perflow -> Dynamic.Perflow
    | `Aggr m -> Dynamic.Aggr m
    | `Intserv ->
        Fmt.epr "audit supports perflow/aggr schemes only@.";
        exit 1
  in
  let cfg =
    { Dynamic.seed; setting; arrival_rate = load; mean_holding = 200.; duration; cd }
  in
  let captured = ref None in
  let o =
    Dynamic.run ~observe:(fun _engine broker -> captured := Some broker) cfg dyn_scheme
  in
  match !captured with
  | None ->
      Fmt.epr "internal error: the workload never exposed its broker@.";
      exit 1
  | Some broker ->
      Fmt.pr "scheme: %a  (offered %d, blocked %d)@." Dynamic.pp_scheme dyn_scheme
        o.Dynamic.offered o.Dynamic.blocked;
      let report = Audit.check broker in
      Fmt.pr "%a@." Audit.pp_report report;
      Fmt.pr "final mib digest: %s@." (Audit.mib_digest broker);
      if strict && not (Audit.ok report) then exit 1

let audit_cmd =
  let doc =
    "Run a dynamic churn workload, then cross-check flow MIB, path MIB and \
     per-link reserved rates for leaks, orphans and dangling memberships."
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run_audit $ setting $ cd $ scheme $ seed $ load $ duration $ strict)

(* --- overload --------------------------------------------------------- *)

let overload_factor =
  Arg.(
    value
    & opt float 10.
    & info [ "overload" ] ~docv:"X"
        ~doc:"Offered load as a multiple of the base arrival rate.")

let flat =
  Arg.(
    value & flag
    & info [ "flat" ]
        ~doc:
          "Disable the brownout controller: every decision pays the exact \
           O(M) service time (the degradation baseline).")

let partition =
  Arg.(
    value & flag
    & info [ "partition" ]
        ~doc:
          "Run the lease-partition soak instead: an edge broker falls \
           silent mid-run and its delegated quota must return to the \
           shared pool within one lease period.")

let overload_journal =
  Arg.(
    value & flag
    & info [ "journal" ]
        ~doc:
          "Journal the run and verify that replaying the journal into a \
           fresh broker reproduces the final MIB digest.")

let overload_strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero unless the soak held its invariants: zero oracle \
           violations, zero unresolved transactions, non-zero sheds, a \
           clean audit (and, with $(b,--journal), a digest-exact replay); \
           with $(b,--partition): reclaim within one lease period, zero \
           stale leases, a clean audit.")

let run_overload setting seed overload flat partition journal strict out format trace
    flight =
  let module Ovw = Bbr_workload.Overload in
  if partition then begin
    let o =
      Ovw.run_partition { Ovw.default_partition_config with Ovw.p_seed = seed }
    in
    Fmt.pr "%a@." Ovw.pp_partition_outcome o;
    let ok =
      o.Ovw.reclaimed_within_period && o.Ovw.stale_leases = 0
      && Audit.ok o.Ovw.p_audit
    in
    if strict && not ok then exit 1
  end
  else begin
    let cfg =
      { Ovw.default_config with Ovw.seed; setting; overload; brownout = not flat; journal }
    in
    let o = with_obs ~out ~format ~trace ~flight (fun () -> Ovw.run cfg) in
    Fmt.pr "%a@." Ovw.pp_outcome o;
    let shed = Bbr_broker.Overload.shed_total o.Ovw.pipeline in
    let ok =
      o.Ovw.oracle_violations = 0 && o.Ovw.unresolved = 0 && shed > 0
      && Audit.ok o.Ovw.audit
      && (match o.Ovw.journal_digest_match with Some false -> false | _ -> true)
    in
    if strict && not ok then exit 1
  end

let overload_cmd =
  let doc =
    "Push a sustained overload through the bounded admission pipeline \
     (deadline shedding, brownout degradation, Server-busy backpressure), \
     shadowed by the exact admission oracle; or, with $(b,--partition), \
     run the lease-reclaim soak."
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(
      const run_overload $ setting $ seed $ overload_factor $ flat $ partition
      $ overload_journal $ overload_strict $ metrics_out $ metrics_format
      $ trace_out $ flight_out)

(* --- federation ------------------------------------------------------- *)

let fed_domains =
  Arg.(
    value
    & opt int 12
    & info [ "domains" ] ~docv:"N" ~doc:"Number of domains in the federation graph.")

let fed_arrivals =
  Arg.(
    value
    & opt float 3.
    & info [ "arrivals" ] ~docv:"R" ~doc:"Flow arrivals per second (Poisson).")

let fed_duration =
  Arg.(
    value
    & opt float 120.
    & info [ "duration" ] ~docv:"S" ~doc:"Seconds of simulated arrivals.")

let fed_drop =
  Arg.(
    value
    & opt float 0.05
    & info [ "drop" ] ~docv:"P"
        ~doc:"Per-message-copy loss probability during the fault window.")

let fed_no_crash =
  Arg.(
    value & flag
    & info [ "no-coordinator-crash" ]
        ~doc:"Skip the mid-run coordinator crash + journal recovery.")

let fed_strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero unless the soak drained clean: every audit clean \
           (federation invariants and per-domain MIBs), an empty obligation \
           queue, zero stranded bandwidth, and a digest-exact coordinator \
           recovery when one was staged.")

let run_federation seed domains arrivals duration drop no_crash strict out format
    trace flight =
  let module Fs = Bbr_workload.Fed_soak in
  if domains < 3 then begin
    Fmt.epr "federation: need at least 3 domains@.";
    exit exit_parse
  end;
  let cfg =
    {
      Fs.default_config with
      Fs.seed;
      n_domains = domains;
      arrival_rate = arrivals;
      duration;
      drop_p = drop;
      crash_coordinator_at =
        (if no_crash then None else Fs.default_config.Fs.crash_coordinator_at);
    }
  in
  let o = with_obs ~out ~format ~trace ~flight (fun () -> Fs.run cfg) in
  Fmt.pr "%a@." Fs.pp_outcome o;
  if strict && not (Fs.ok o) then exit 1

let federation_cmd =
  let doc =
    "Chaos-soak the inter-domain federation: per-segment 2PC reservations \
     over a random 10+ domain graph under message loss, duplication, \
     delay, a partitioned transit domain, a crashed domain and a \
     journal-recovered coordinator crash — then drain and prove nothing \
     was stranded."
  in
  Cmd.v (Cmd.info "federation" ~doc)
    Term.(
      const run_federation $ seed $ fed_domains $ fed_arrivals $ fed_duration
      $ fed_drop $ fed_no_crash $ fed_strict $ metrics_out $ metrics_format
      $ trace_out $ flight_out)

(* --- scenario ---------------------------------------------------------- *)

let scenario_list =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List the named scenarios in the matrix and exit.")

let scenario_matrix =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Run the whole scenario matrix (the default when no $(b,--name) is given).")

let scenario_names =
  Arg.(
    value
    & opt_all string []
    & info [ "name" ] ~docv:"NAME"
        ~doc:"Run one named scenario (repeatable).  See $(b,--list).")

let scenario_scale =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"K"
        ~doc:
          "Shrink every scenario by $(docv) (durations, event instants, \
           topology size) — the smoke-run knob.  Defaults to the \
           $(b,BBR_BENCH_SCALE) environment variable, or 1 (full size).")

let scenario_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"PATH"
        ~doc:"Write the per-scenario results as BENCH_scenarios.json-style JSON.")

let scenario_strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero unless every scenario passed: zero invariant \
           violations outside declared fault windows, every recovery SLO \
           met, clean final audit, no unresolved transactions.")

let run_scenario list_ matrix names scale out_path strict out format trace flight =
  let module Sc = Bbr_scenario.Scenario in
  let module Matrix = Bbr_scenario.Matrix in
  let module Runner = Bbr_scenario.Runner in
  if list_ then
    List.iter
      (fun s -> Fmt.pr "%-26s %s@." s.Sc.name s.Sc.descr)
      Matrix.scenarios
  else begin
    let scale =
      match scale with
      | Some k -> k
      | None -> (
          match Sys.getenv_opt "BBR_BENCH_SCALE" with
          | Some s -> (
              match float_of_string_opt s with
              | Some k when k > 0. -> k
              | _ ->
                  Fmt.epr "error: bad BBR_BENCH_SCALE %S@." s;
                  exit exit_parse)
          | None -> 1.)
    in
    (match List.filter (fun n -> Matrix.find n = None) names with
    | [] -> ()
    | unknown ->
        Fmt.epr "error: unknown scenario(s): %s (try --list)@."
          (String.concat ", " unknown);
        exit exit_parse);
    ignore matrix;
    let outcomes =
      with_obs ~out ~format ~trace ~flight (fun () ->
          Matrix.run_all ~scale ~names ())
    in
    List.iter (fun o -> Fmt.pr "%a@.@." Runner.pp_outcome o) outcomes;
    Option.iter
      (fun path ->
        (try Matrix.write_json ~path ~scale outcomes
         with Sys_error e ->
           Fmt.epr "error: %s@." e;
           exit exit_io);
        Fmt.pr "wrote %s@." path)
      out_path;
    let failed = List.filter (fun o -> not (Runner.ok o)) outcomes in
    Fmt.pr "%d/%d scenarios passed@."
      (List.length outcomes - List.length failed)
      (List.length outcomes);
    if strict && failed <> [] then exit 1
  end

let scenario_cmd =
  let doc =
    "Execute composed chaos campaigns — diurnal and flash-crowd load, \
     regional link failures, broker crash + warm-standby promotion, \
     partitions — over power-law ISP topologies, with a standing \
     invariant monitor sampling MIB audit and admission-oracle health \
     throughout and a recovery-SLO oracle judging every injected event's \
     time-to-recovery."
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(
      const run_scenario $ scenario_list $ scenario_matrix $ scenario_names
      $ scenario_scale $ scenario_out $ scenario_strict $ metrics_out
      $ metrics_format $ trace_out $ flight_out)

(* --- trace (critical-path analysis) ----------------------------------- *)

let trace_input =
  Arg.(
    required
    & opt (some string) None
    & info [ "input" ] ~docv:"PATH"
        ~doc:"Flight-recorder box (JSON, see $(b,--flight-out)) to analyze.")

let trace_top =
  Arg.(
    value
    & opt int 5
    & info [ "top" ] ~docv:"N" ~doc:"Stages shown in each blame table.")

let trace_tree =
  Arg.(
    value & flag
    & info [ "tree" ] ~doc:"Also render each trace's span tree.")

let run_trace_analyze input top tree =
  let text = read_file input in
  match Flight.parse text with
  | Error e ->
      Fmt.epr "error: %s: %s@." input e;
      exit exit_parse
  | Ok d ->
      Fmt.pr "flight box: reason %S, %d trigger(s), %d entries, %d evicted@."
        d.Flight.reason d.Flight.triggers
        (List.length d.Flight.entries)
        d.Flight.dump_evicted;
      Option.iter (fun dg -> Fmt.pr "mib digest: %s@." dg) d.Flight.mib_digest;
      print_string (Critical_path.render ~top (Critical_path.analyze d.Flight.entries));
      if tree then print_string (Trace_export.span_tree d.Flight.entries)

let trace_cmd =
  let doc =
    "Analyze a flight-recorder box: per-trace span trees and the \
     critical-path stage blame (overall and across the p99-slowest \
     traces)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace_analyze $ trace_input $ trace_top $ trace_tree)

(* -------------------------------------------------------------------- *)

let () =
  let doc = "bandwidth-broker / VTRS simulator (SIGCOMM 2000 reproduction)" in
  let info = Cmd.info "bbsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fill_cmd;
            simulate_cmd;
            sweep_cmd;
            admit_cmd;
            transient_cmd;
            metrics_cmd;
            trace_gen_cmd;
            replay_cmd;
            recover_cmd;
            scrub_cmd;
            audit_cmd;
            overload_cmd;
            federation_cmd;
            scenario_cmd;
            trace_cmd;
          ]))
