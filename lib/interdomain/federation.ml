module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Path_mib = Bbr_broker.Path_mib
module Flow_mib = Bbr_broker.Flow_mib
module Audit = Bbr_broker.Audit
module Wal = Bbr_broker.Wal
module Obs_log = Bbr_broker.Obs_log
module Trace = Bbr_obs.Trace
module Flight = Bbr_obs.Flight
module Fp = Bbr_util.Fp

type config = {
  latency : float;
  prepare_timeout : float;
  backoff : float;
  max_timeout : float;
  prepare_retries : int;
  retry_timeout : float;
  prepare_ttl : float;
  jitter : (unit -> float) option;
  fsync_every : int;
}

let default_config =
  {
    latency = 0.005;
    prepare_timeout = 0.05;
    backoff = 2.;
    max_timeout = 1.;
    prepare_retries = 5;
    retry_timeout = 0.1;
    prepare_ttl = 30.;
    jitter = None;
    fsync_every = 1;
  }

type faults = {
  drop : unit -> bool;
  duplicate : unit -> bool;
  extra_delay : unit -> float;
}

let no_faults =
  { drop = (fun () -> false); duplicate = (fun () -> false); extra_delay = (fun () -> 0.) }

type peering = {
  from_domain : string;
  from_egress : string;
  to_domain : string;
  to_ingress : string;
  committed : float;
  delay : float;
  mutable used : float;
}

(* A prepared-but-uncommitted segment booking held inside a domain. *)
type prep = { p_flow : Types.flow_id; p_rate : float; mutable p_at : float }

(* One domain's broker agent: its reservation state survives a crash
   ([up = false] merely stops it reacting to messages); [released] is the
   tombstone table that makes compensation idempotent against duplicated
   and reordered PREPAREs. *)
type agent = {
  name : string;
  broker : Broker.t;
  mutable up : bool;
  mutable reachable : bool;
  prepared : (int, prep) Hashtbl.t;
  committed_segs : (int, Types.flow_id) Hashtbl.t;
  released : (int, unit) Hashtbl.t;
}

type endpoints = {
  src_domain : string;
  src_ingress : string;
  dst_domain : string;
  dst_egress : string;
}

type reservation = { flow : int; rate : float; domains : string list; bound : float }

(* Coordinator-side in-flight transaction (PREPARE phase only: a decided
   transaction leaves this table for [flows] or [outcomes]). *)
type txn = {
  id : int;
  t_rate : float;
  t_bound : float;
  t_domains : string list;
  t_peers : peering list;
  t_segs : (string * Types.request) list;
  mutable t_booked : (string * Types.flow_id) list;
  mutable t_pending : string list;
  mutable t_attempts : int;
  mutable t_timeout : float;
  mutable t_deadline : float;
  t_decide : (reservation, Types.reject_reason) result -> unit;
  mutable t_done : bool;
  (* One live [bb.fed.prepare] leg span per still-pending domain. *)
  mutable t_prep_spans : (string * Trace.span) list;
}

(* A committed federation flow. *)
type booking = {
  b_rate : float;
  b_bound : float;
  b_domains : string list;
  b_legs : (string * Types.flow_id) list;
  b_peers : peering list;
}

type outcome = O_committed | O_compensated | O_rejected

type ob_kind = Ob_commit | Ob_release

(* An unacknowledged promise to a domain — a commit notification or an
   idempotent (compensating or ordinary) teardown — retried with capped
   backoff until the domain confirms. *)
type obligation = {
  ob_txn : int;
  ob_dom : string;
  ob_kind : ob_kind;
  mutable ob_timeout : float;
  mutable ob_next : float;
  ob_span : Trace.span;  (* [bb.fed.commit] / [bb.fed.compensate] leg *)
}

(* Coordinator journal records (see DESIGN §3h for the grammar). *)
type rec_ =
  | R_begin of {
      txn : int;
      rate : float;
      bound : float;
      domains : string list;
      peers : (string * string) list;
    }
  | R_booked of { txn : int; dom : string; flow : Types.flow_id }
  | R_commit of int
  | R_abort of { txn : int; reason : string }
  | R_cack of { txn : int; dom : string }
  | R_rack of { txn : int; dom : string }
  | R_tear of int
  | R_closed of int

type stats = {
  committed : int;
  compensated : int;
  rejected : int;
  torn_down : int;
  prepares : int;
  retries : int;
  compensations : int;
  commit_nacks : int;
  reaped : int;
  messages : int;
  dropped : int;
  duplicated : int;
}

type t = {
  domains : (string, agent) Hashtbl.t;
  mutable peerings : peering list;  (* reversed registration order *)
  flows : (int, booking) Hashtbl.t;
  txns : (int, txn) Hashtbl.t;
  outcomes : (int, outcome) Hashtbl.t;
  obligations : (string, obligation) Hashtbl.t;
  mutable next_id : int;
  time : Broker.time_hooks;
  config : config;
  mutable faults : faults;
  mutable journal : rec_ Wal.t;
  mutable pump_at : float;  (* due time of the armed pump timer; inf = disarmed *)
  mutable epoch : int;  (* bumped on coordinator crash; stale timers check it *)
  tspans : (int, Trace.span) Hashtbl.t;  (* live [bb.fed.txn] root spans *)
  mutable storm_start : float;  (* compensation-storm detection window *)
  mutable storm_count : int;
  mutable s_committed : int;
  mutable s_compensated : int;
  mutable s_rejected : int;
  mutable s_torn_down : int;
  mutable s_prepares : int;
  mutable s_retries : int;
  mutable s_compensations : int;
  mutable s_commit_nacks : int;
  mutable s_reaped : int;
  mutable s_messages : int;
  mutable s_dropped : int;
  mutable s_duplicated : int;
}

(* ---------------------------------------------------------------- *)
(* Journal codec.                                                   *)

let fed_header = "bbr-fed-journal v1"

let peers_str = function
  | [] -> "-"
  | ps -> String.concat "," (List.map (fun (a, b) -> a ^ ">" ^ b) ps)

let encode_rec = function
  | R_begin { txn; rate; bound; domains; peers } ->
      Printf.sprintf "begin %d %h %h %s %s" txn rate bound (String.concat "," domains)
        (peers_str peers)
  | R_booked { txn; dom; flow } -> Printf.sprintf "booked %d %s %d" txn dom flow
  | R_commit txn -> Printf.sprintf "commit %d" txn
  | R_abort { txn; reason } -> Printf.sprintf "abort %d %s" txn reason
  | R_cack { txn; dom } -> Printf.sprintf "cack %d %s" txn dom
  | R_rack { txn; dom } -> Printf.sprintf "rack %d %s" txn dom
  | R_tear txn -> Printf.sprintf "tear %d" txn
  | R_closed txn -> Printf.sprintf "closed %d" txn

let peers_of_str s =
  if s = "-" then Some []
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match String.index_opt p '>' with
          | Some i ->
              go
                ((String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1)) :: acc)
                rest
          | None -> None)
    in
    go [] (String.split_on_char ',' s)

let decode_rec fields : rec_ option =
  match
    match fields with
    | [ "begin"; txn; rate; bound; domains; peers ] ->
        Option.map
          (fun peers ->
            R_begin
              {
                txn = int_of_string txn;
                rate = float_of_string rate;
                bound = float_of_string bound;
                domains = String.split_on_char ',' domains;
                peers;
              })
          (peers_of_str peers)
    | [ "booked"; txn; dom; flow ] ->
        Some (R_booked { txn = int_of_string txn; dom; flow = int_of_string flow })
    | [ "commit"; txn ] -> Some (R_commit (int_of_string txn))
    | [ "abort"; txn; reason ] -> Some (R_abort { txn = int_of_string txn; reason })
    | [ "cack"; txn; dom ] -> Some (R_cack { txn = int_of_string txn; dom })
    | [ "rack"; txn; dom ] -> Some (R_rack { txn = int_of_string txn; dom })
    | [ "tear"; txn ] -> Some (R_tear (int_of_string txn))
    | [ "closed"; txn ] -> Some (R_closed (int_of_string txn))
    | _ -> None
  with
  | exception _ -> None
  | v -> v

(* ---------------------------------------------------------------- *)
(* Construction.                                                    *)

let metric ?(labels = []) name = if Obs_log.active () then Obs_log.count name ~labels

let create ?(time = Broker.immediate_time) ?(config = default_config) () =
  if config.fsync_every < 1 then invalid_arg "Federation.create: fsync_every must be >= 1";
  {
    domains = Hashtbl.create 16;
    peerings = [];
    flows = Hashtbl.create 64;
    txns = Hashtbl.create 16;
    outcomes = Hashtbl.create 64;
    obligations = Hashtbl.create 16;
    next_id = 0;
    time;
    config;
    faults = no_faults;
    journal =
      Wal.create ~fsync_every:config.fsync_every ~header:fed_header
        ~encode_payload:encode_rec ();
    pump_at = infinity;
    epoch = 0;
    tspans = Hashtbl.create 16;
    storm_start = neg_infinity;
    storm_count = 0;
    s_committed = 0;
    s_compensated = 0;
    s_rejected = 0;
    s_torn_down = 0;
    s_prepares = 0;
    s_retries = 0;
    s_compensations = 0;
    s_commit_nacks = 0;
    s_reaped = 0;
    s_messages = 0;
    s_dropped = 0;
    s_duplicated = 0;
  }

let set_faults t f = t.faults <- f

let add_domain t ~name topology =
  if Hashtbl.mem t.domains name then
    invalid_arg (Printf.sprintf "Federation.add_domain: duplicate domain %s" name);
  if name = "" || String.exists (fun c -> c = ' ' || c = ',' || c = '>') name then
    invalid_arg "Federation.add_domain: domain names must not contain spaces, ',' or '>'";
  let broker = Broker.create ~time:t.time topology in
  Hashtbl.replace t.domains name
    {
      name;
      broker;
      up = true;
      reachable = true;
      prepared = Hashtbl.create 8;
      committed_segs = Hashtbl.create 16;
      released = Hashtbl.create 16;
    };
  broker

let agent_exn t name =
  match Hashtbl.find_opt t.domains name with Some a -> a | None -> raise Not_found

let broker t ~domain =
  Option.map (fun a -> a.broker) (Hashtbl.find_opt t.domains domain)

let broker_exn t ~domain = (agent_exn t domain).broker

let add_peering t ~from_domain ~from_egress ~to_domain ~to_ingress ~committed_rate
    ?(delay = 0.01) () =
  if not (Hashtbl.mem t.domains from_domain && Hashtbl.mem t.domains to_domain) then
    invalid_arg "Federation.add_peering: unknown domain";
  if
    List.exists
      (fun p -> p.from_domain = from_domain && p.to_domain = to_domain)
      t.peerings
  then invalid_arg "Federation.add_peering: duplicate peering";
  if committed_rate <= 0. then
    invalid_arg "Federation.add_peering: committed rate must be positive";
  t.peerings <-
    {
      from_domain;
      from_egress;
      to_domain;
      to_ingress;
      committed = committed_rate;
      delay;
      used = 0.;
    }
    :: t.peerings

let set_domain_up t ~domain up = (agent_exn t domain).up <- up

let set_reachable t ~domain r = (agent_exn t domain).reachable <- r

(* ---------------------------------------------------------------- *)
(* The message channel: both directions cross the same faulty link.  *)

let jit t = match t.config.jitter with None -> 1. | Some j -> 1. +. j ()

(* Deliver [k] to/from [agent] across the coordinator<->domain channel:
   per-copy Bernoulli loss, optional duplication, extra delay, and a
   reachability check at both ends of the flight (a partition drops
   in-flight messages too).  [k] never runs in a stale coordinator epoch. *)
let channel t agent k =
  let epoch = t.epoch in
  let copy () =
    t.s_messages <- t.s_messages + 1;
    metric "bb_fed_msgs_total" ~labels:[ ("event", "sent") ];
    if t.faults.drop () || not agent.reachable then begin
      t.s_dropped <- t.s_dropped + 1;
      metric "bb_fed_msgs_total" ~labels:[ ("event", "dropped") ]
    end
    else
      let d = t.config.latency +. t.faults.extra_delay () in
      t.time.after d (fun () -> if t.epoch = epoch && agent.reachable then k ())
  in
  copy ();
  if t.faults.duplicate () then begin
    t.s_duplicated <- t.s_duplicated + 1;
    metric "bb_fed_msgs_total" ~labels:[ ("event", "duplicated") ];
    copy ()
  end

let jrec t r = Wal.append t.journal ~at:(t.time.now ()) r

(* ---------------------------------------------------------------- *)
(* Tracing: one trace per coordinator transaction.  The [bb.fed.txn]
   root opens when the transaction is journaled and closes when its
   last obligation drains; PREPARE / COMMIT / COMPENSATE legs are
   child spans, retries and reaps annotated events.                  *)

let txn_span t txn =
  match Hashtbl.find_opt t.tspans txn with Some sp -> sp | None -> Trace.null_span

let finish_txn_span t txn ~result =
  match Hashtbl.find_opt t.tspans txn with
  | None -> ()
  | Some sp ->
      Hashtbl.remove t.tspans txn;
      Trace.finish_span ~sim_time:(t.time.now ()) ~attrs:[ ("result", result) ] sp

(* Compensation-storm detector: [storm_threshold] compensating
   obligations inside one [storm_window] of sim time trips the flight
   recorder (the box captures the state at the first anomaly). *)
let storm_window = 10.

let storm_threshold = 10

let note_compensation t =
  let now = t.time.now () in
  if now -. t.storm_start > storm_window then begin
    t.storm_start <- now;
    t.storm_count <- 0
  end;
  t.storm_count <- t.storm_count + 1;
  if t.storm_count = storm_threshold then Flight.trigger ~reason:"compensation-storm"

(* ---------------------------------------------------------------- *)
(* Domain-side handlers.  All idempotent: duplicates re-acknowledge.  *)

let rec dom_prepare t agent ~txn ~(req : Types.request) ~rate =
  if Hashtbl.mem agent.released txn then () (* tombstoned: compensated already *)
  else
    match Hashtbl.find_opt agent.prepared txn with
    | Some p ->
        p.p_at <- t.time.now ();
        (* duplicate PREPARE: re-acknowledge the booking we hold *)
        channel t agent (fun () -> coord_booked t ~txn ~dom:agent.name ~flow:p.p_flow)
    | None -> (
        match Hashtbl.find_opt agent.committed_segs txn with
        | Some flow ->
            channel t agent (fun () -> coord_booked t ~txn ~dom:agent.name ~flow)
        | None -> (
            match Broker.request_fixed agent.broker req ~rate () with
            | Ok flow ->
                Hashtbl.replace agent.prepared txn
                  { p_flow = flow; p_rate = rate; p_at = t.time.now () };
                channel t agent (fun () -> coord_booked t ~txn ~dom:agent.name ~flow)
            | Error reason ->
                channel t agent (fun () -> coord_refused t ~txn ~reason)))

and dom_commit t agent ~txn =
  if Hashtbl.mem agent.committed_segs txn then
    channel t agent (fun () -> coord_cack t ~txn ~dom:agent.name)
  else
    match Hashtbl.find_opt agent.prepared txn with
    | Some p ->
        Hashtbl.remove agent.prepared txn;
        Hashtbl.replace agent.committed_segs txn p.p_flow;
        channel t agent (fun () -> coord_cack t ~txn ~dom:agent.name)
    | None ->
        (* reaped or compensated before the commit landed *)
        channel t agent (fun () -> coord_cnack t ~txn ~dom:agent.name)

and dom_release t agent ~txn =
  (match Hashtbl.find_opt agent.prepared txn with
  | Some p ->
      Broker.teardown agent.broker p.p_flow;
      Hashtbl.remove agent.prepared txn
  | None -> ());
  (match Hashtbl.find_opt agent.committed_segs txn with
  | Some flow ->
      Broker.teardown agent.broker flow;
      Hashtbl.remove agent.committed_segs txn
  | None -> ());
  Hashtbl.replace agent.released txn ();
  channel t agent (fun () -> coord_rack t ~txn ~dom:agent.name)

(* ---------------------------------------------------------------- *)
(* Obligations: commit notifications and (compensating) teardowns.   *)

and okey kind txn dom =
  (match kind with Ob_commit -> "c:" | Ob_release -> "r:")
  ^ string_of_int txn ^ ":" ^ dom

and send_obligation t ob =
  match Hashtbl.find_opt t.domains ob.ob_dom with
  | None -> ()
  | Some agent ->
      channel t agent (fun () ->
          if agent.up then
            (* domain-side work nests under the obligation's leg span *)
            Trace.with_ambient ob.ob_span (fun () ->
                match ob.ob_kind with
                | Ob_commit -> dom_commit t agent ~txn:ob.ob_txn
                | Ob_release -> dom_release t agent ~txn:ob.ob_txn))

and add_obligation t ~compensation ~txn ~dom kind =
  let key = okey kind txn dom in
  if not (Hashtbl.mem t.obligations key) then begin
    if compensation then begin
      t.s_compensations <- t.s_compensations + 1;
      metric "bb_fed_compensations_total";
      note_compensation t
    end;
    let ob =
      {
        ob_txn = txn;
        ob_dom = dom;
        ob_kind = kind;
        ob_timeout = t.config.retry_timeout;
        ob_next = t.time.now () +. (t.config.retry_timeout *. jit t);
        ob_span =
          Trace.start_span ~sim_time:(t.time.now ()) ~parent:(txn_span t txn)
            ~attrs:[ ("txn", string_of_int txn); ("domain", dom) ]
            (match (kind, compensation) with
            | Ob_commit, _ -> "bb.fed.commit"
            | Ob_release, true -> "bb.fed.compensate"
            | Ob_release, false -> "bb.fed.release");
      }
    in
    Hashtbl.replace t.obligations key ob;
    send_obligation t ob;
    arm_pump t
  end

and resend_obligation t ob =
  if Hashtbl.mem t.obligations (okey ob.ob_kind ob.ob_txn ob.ob_dom) then begin
    t.s_retries <- t.s_retries + 1;
    let kind = match ob.ob_kind with Ob_commit -> "commit" | Ob_release -> "release" in
    metric "bb_fed_retry_total" ~labels:[ ("kind", kind) ];
    Trace.event ~sim_time:(t.time.now ()) ~parent:ob.ob_span
      ~attrs:[ ("kind", kind); ("domain", ob.ob_dom) ]
      "bb.fed.retry";
    ob.ob_timeout <- Float.min (ob.ob_timeout *. t.config.backoff) t.config.max_timeout;
    ob.ob_next <- t.time.now () +. (ob.ob_timeout *. jit t);
    send_obligation t ob
  end

and run_pump t =
  let now = t.time.now () in
  let due =
    Hashtbl.fold
      (fun _ ob acc -> if ob.ob_next <= now +. 1e-9 then ob :: acc else acc)
      t.obligations []
  in
  List.iter (resend_obligation t) due;
  arm_pump t

and arm_pump t =
  let next =
    Hashtbl.fold (fun _ ob acc -> Float.min acc ob.ob_next) t.obligations infinity
  in
  if next < t.pump_at then begin
    t.pump_at <- next;
    let epoch = t.epoch in
    let delay = Float.max 0. (next -. t.time.now ()) in
    t.time.after delay (fun () ->
        if t.epoch = epoch && t.pump_at = next then begin
          t.pump_at <- infinity;
          (* a frozen clock (immediate time) fires timers with the clock
             still short of the target: stay disarmed, the caller pumps
             manually *)
          if t.time.now () +. 1e-9 >= next then run_pump t
        end)
  end

(* ---------------------------------------------------------------- *)
(* Coordinator handlers.                                            *)

and coord_booked t ~txn ~dom ~flow =
  match Hashtbl.find_opt t.txns txn with
  | None -> () (* decided already: late or duplicate ack *)
  | Some tx ->
      if not (List.mem_assoc dom tx.t_booked) then begin
        tx.t_booked <- (dom, flow) :: tx.t_booked;
        tx.t_pending <- List.filter (fun d -> d <> dom) tx.t_pending;
        (match List.assoc_opt dom tx.t_prep_spans with
        | Some sp ->
            tx.t_prep_spans <- List.remove_assoc dom tx.t_prep_spans;
            Trace.finish_span ~sim_time:(t.time.now ())
              ~attrs:[ ("result", "booked"); ("flow", string_of_int flow) ]
              sp
        | None -> ());
        jrec t (R_booked { txn; dom; flow });
        if tx.t_pending = [] then try_commit t tx
      end

and coord_refused t ~txn ~reason =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some tx -> abort_txn t tx reason

and coord_cack t ~txn ~dom =
  match Hashtbl.find_opt t.obligations (okey Ob_commit txn dom) with
  | None -> ()
  | Some ob ->
      Hashtbl.remove t.obligations (okey Ob_commit txn dom);
      Trace.finish_span ~sim_time:(t.time.now ())
        ~attrs:[ ("result", "acked") ]
        ob.ob_span;
      jrec t (R_cack { txn; dom });
      close_if_drained t txn

and coord_rack t ~txn ~dom =
  match Hashtbl.find_opt t.obligations (okey Ob_release txn dom) with
  | None -> ()
  | Some ob ->
      Hashtbl.remove t.obligations (okey Ob_release txn dom);
      Trace.finish_span ~sim_time:(t.time.now ())
        ~attrs:[ ("result", "acked") ]
        ob.ob_span;
      jrec t (R_rack { txn; dom });
      close_if_drained t txn

(* A domain refused the commit notification: it reaped the prepared
   booking before the notification landed.  The flow cannot stand on a
   missing segment — compensate it whole. *)
and coord_cnack t ~txn ~dom:_ =
  t.s_commit_nacks <- t.s_commit_nacks + 1;
  let stale =
    Hashtbl.fold
      (fun k ob acc ->
        if ob.ob_txn = txn && ob.ob_kind = Ob_commit then (k, ob) :: acc else acc)
      t.obligations []
  in
  List.iter
    (fun (k, ob) ->
      Hashtbl.remove t.obligations k;
      Trace.finish_span ~sim_time:(t.time.now ())
        ~attrs:[ ("result", "cnack") ]
        ob.ob_span)
    stale;
  match Hashtbl.find_opt t.flows txn with
  | None -> () (* already torn down or compensated; releases are queued *)
  | Some b ->
      Hashtbl.remove t.flows txn;
      List.iter (fun p -> p.used <- Float.max 0. (p.used -. b.b_rate)) b.b_peers;
      Hashtbl.replace t.outcomes txn O_compensated;
      jrec t (R_abort { txn; reason = "commit_nack" });
      t.s_compensated <- t.s_compensated + 1;
      metric "bb_fed_txn_total" ~labels:[ ("outcome", "compensated") ];
      List.iter
        (fun (dom, _) -> add_obligation t ~compensation:true ~txn ~dom Ob_release)
        b.b_legs

and close_if_drained t txn =
  let live = Hashtbl.fold (fun _ ob n -> if ob.ob_txn = txn then n + 1 else n) t.obligations 0 in
  if live = 0 then begin
    jrec t (R_closed txn);
    let result =
      match Hashtbl.find_opt t.outcomes txn with
      | Some O_committed -> "committed"
      | Some O_compensated -> "compensated"
      | Some O_rejected -> "rejected"
      | None -> "unknown"
    in
    finish_txn_span t txn ~result
  end

(* ---------------------------------------------------------------- *)
(* Decision points.                                                 *)

and try_commit t tx =
  (* SLA re-check: concurrent transactions raced for the peerings while
     this one was out preparing. *)
  if not (List.for_all (fun p -> Fp.leq (p.used +. tx.t_rate) p.committed) tx.t_peers)
  then abort_txn t tx Types.Insufficient_bandwidth
  else begin
    List.iter (fun p -> p.used <- p.used +. tx.t_rate) tx.t_peers;
    Hashtbl.remove t.txns tx.id;
    tx.t_done <- true;
    let legs =
      List.map (fun d -> (d, List.assoc d tx.t_booked)) tx.t_domains
    in
    Hashtbl.replace t.flows tx.id
      {
        b_rate = tx.t_rate;
        b_bound = tx.t_bound;
        b_domains = tx.t_domains;
        b_legs = legs;
        b_peers = tx.t_peers;
      };
    Hashtbl.replace t.outcomes tx.id O_committed;
    jrec t (R_commit tx.id);
    Trace.event ~sim_time:(t.time.now ()) ~parent:(txn_span t tx.id)
      ~attrs:[ ("decision", "commit") ]
      "bb.fed.decision";
    t.s_committed <- t.s_committed + 1;
    metric "bb_fed_txn_total" ~labels:[ ("outcome", "committed") ];
    List.iter
      (fun (dom, _) -> add_obligation t ~compensation:false ~txn:tx.id ~dom Ob_commit)
      legs;
    tx.t_decide
      (Ok { flow = tx.id; rate = tx.t_rate; domains = tx.t_domains; bound = tx.t_bound })
  end

and abort_txn t tx reason =
  Hashtbl.remove t.txns tx.id;
  tx.t_done <- true;
  List.iter
    (fun (_, sp) ->
      Trace.finish_span ~sim_time:(t.time.now ()) ~attrs:[ ("result", "aborted") ] sp)
    tx.t_prep_spans;
  tx.t_prep_spans <- [];
  Hashtbl.replace t.outcomes tx.id O_compensated;
  jrec t (R_abort { txn = tx.id; reason = Types.reject_label reason });
  Trace.event ~sim_time:(t.time.now ()) ~parent:(txn_span t tx.id)
    ~attrs:[ ("decision", "abort"); ("reason", Types.reject_label reason) ]
    "bb.fed.decision";
  t.s_compensated <- t.s_compensated + 1;
  metric "bb_fed_txn_total" ~labels:[ ("outcome", "compensated") ];
  (* Compensate every segment domain, not just the acknowledged ones: a
     BOOKED reply may still be in flight, and the release doubles as the
     tombstone that blocks late duplicated PREPAREs from re-booking. *)
  List.iter
    (fun dom -> add_obligation t ~compensation:true ~txn:tx.id ~dom Ob_release)
    tx.t_domains;
  tx.t_decide (Error reason)

(* ---------------------------------------------------------------- *)
(* PREPARE retransmission timer (per transaction, capped backoff).   *)

and arm_txn_timer t tx =
  let epoch = t.epoch in
  let delay = tx.t_timeout *. jit t in
  let target = t.time.now () +. delay in
  tx.t_deadline <- target;
  t.time.after delay (fun () ->
      if
        t.epoch = epoch && (not tx.t_done)
        && Hashtbl.mem t.txns tx.id
        (* frozen clock (immediate time): the timer fired with the clock
           short of the target — let it die rather than spin *)
        && t.time.now () +. 1e-9 >= tx.t_deadline
      then txn_timeout t tx)

and txn_timeout t tx =
  if tx.t_pending = [] then ()
  else if tx.t_attempts >= t.config.prepare_retries then
    abort_txn t tx (Types.Peer_unreachable (List.hd tx.t_pending))
  else begin
    tx.t_attempts <- tx.t_attempts + 1;
    tx.t_timeout <- Float.min (tx.t_timeout *. t.config.backoff) t.config.max_timeout;
    List.iter
      (fun dom ->
        t.s_retries <- t.s_retries + 1;
        metric "bb_fed_retry_total" ~labels:[ ("kind", "prepare") ];
        Trace.event ~sim_time:(t.time.now ())
          ~parent:
            (match List.assoc_opt dom tx.t_prep_spans with
            | Some sp -> sp
            | None -> txn_span t tx.id)
          ~attrs:[ ("kind", "prepare"); ("domain", dom) ]
          "bb.fed.retry";
        send_prepare t tx dom)
      tx.t_pending;
    arm_txn_timer t tx
  end

and send_prepare t tx dom =
  if not tx.t_done then
    match Hashtbl.find_opt t.domains dom with
    | None -> ()
    | Some agent ->
        t.s_prepares <- t.s_prepares + 1;
        if not (List.mem_assoc dom tx.t_prep_spans) then
          tx.t_prep_spans <-
            ( dom,
              Trace.start_span ~sim_time:(t.time.now ()) ~parent:(txn_span t tx.id)
                ~attrs:[ ("domain", dom) ] "bb.fed.prepare" )
            :: tx.t_prep_spans;
        let req = List.assoc dom tx.t_segs in
        let txn = tx.id and rate = tx.t_rate in
        let leg =
          match List.assoc_opt dom tx.t_prep_spans with
          | Some sp -> sp
          | None -> Trace.null_span
        in
        channel t agent (fun () ->
            if agent.up then
              (* the domain's own admission spans nest under this leg *)
              Trace.with_ambient leg (fun () -> dom_prepare t agent ~txn ~req ~rate))

let pump t =
  let obs = Hashtbl.fold (fun _ ob acc -> ob :: acc) t.obligations [] in
  List.iter (resend_obligation t) obs;
  arm_pump t

(* ---------------------------------------------------------------- *)
(* Routing and the cross-domain delay budget (unchanged from the
   synchronous coordinator: the closed form of paper Section 3.1 with
   every domain conditioner acting as one extra rate-based hop).      *)

let domain_route t ~src ~dst =
  if src = dst then Some []
  else begin
    let visited = Hashtbl.create 8 in
    Hashtbl.replace visited src ();
    let frontier = Queue.create () in
    Queue.add (src, []) frontier;
    let result = ref None in
    let ordered = List.rev t.peerings in
    while !result = None && not (Queue.is_empty frontier) do
      let here, rev_path = Queue.take frontier in
      List.iter
        (fun p ->
          if
            !result = None && p.from_domain = here
            && not (Hashtbl.mem visited p.to_domain)
          then begin
            Hashtbl.replace visited p.to_domain ();
            let rev_path' = p :: rev_path in
            if p.to_domain = dst then result := Some (List.rev rev_path')
            else Queue.add (p.to_domain, rev_path') frontier
          end)
        ordered
    done;
    !result
  end

(* The intra-domain segments a flow crosses, as (domain, ingress, egress). *)
let segments ep peers =
  match peers with
  | [] -> [ (ep.src_domain, ep.src_ingress, ep.dst_egress) ]
  | first :: _ ->
      let rec transits = function
        | a :: (b :: _ as rest) ->
            (a.to_domain, a.to_ingress, b.from_egress) :: transits rest
        | [ last ] -> [ (ep.dst_domain, last.to_ingress, ep.dst_egress) ]
        | [] -> []
      in
      (ep.src_domain, ep.src_ingress, first.from_egress) :: transits peers

let e2e_bound ~profile ~rate ~segment_infos ~peer_delay =
  let l = profile.Traffic.lmax in
  let ton = Traffic.t_on profile in
  List.fold_left
    (fun acc (info : Path_mib.info) ->
      acc
      +. (float_of_int (info.Path_mib.hops + 1) *. l /. rate)
      +. info.Path_mib.d_tot)
    ((ton *. (profile.Traffic.peak -. rate) /. rate) +. peer_delay)
    segment_infos

(* ---------------------------------------------------------------- *)
(* Requests.                                                        *)

let request_async t ep ~profile ~dreq ~on_decision =
  let id = t.next_id in
  t.next_id <- id + 1;
  let reject reason =
    Hashtbl.replace t.outcomes id O_rejected;
    t.s_rejected <- t.s_rejected + 1;
    metric "bb_fed_txn_total" ~labels:[ ("outcome", "rejected") ];
    on_decision (Error reason);
    id
  in
  match domain_route t ~src:ep.src_domain ~dst:ep.dst_domain with
  | None -> reject Types.No_route
  | Some peers -> (
      let segs = segments ep peers in
      (* Resolve each segment's path through its domain's broker (the
         coordinator plans locally; only the bookings travel). *)
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | (domain, ingress, egress) :: rest -> (
            let agent = Hashtbl.find t.domains domain in
            let probe = { Types.profile; dreq; ingress; egress } in
            match Broker.route_of agent.broker probe with
            | None -> Error Types.No_route
            | Some info ->
                if info.Path_mib.delay_hops > 0 then Error Types.Not_schedulable
                else resolve ((domain, probe, info) :: acc) rest)
      in
      match resolve [] segs with
      | Error e -> reject e
      | Ok legs -> (
          let infos = List.map (fun (_, _, info) -> info) legs in
          let peer_delay = List.fold_left (fun acc p -> acc +. p.delay) 0. peers in
          let total_hops_terms =
            List.fold_left
              (fun acc (info : Path_mib.info) -> acc + info.Path_mib.hops + 1)
              0 infos
          in
          let d_tot_sum =
            List.fold_left
              (fun acc (info : Path_mib.info) -> acc +. info.Path_mib.d_tot)
              peer_delay infos
          in
          let ton = Traffic.t_on profile in
          let denom = dreq -. d_tot_sum +. ton in
          if denom <= 0. then reject Types.Delay_unachievable
          else
            let rmin =
              ((ton *. profile.Traffic.peak)
              +. (float_of_int total_hops_terms *. profile.Traffic.lmax))
              /. denom
            in
            if Fp.gt rmin profile.Traffic.peak then reject Types.Delay_unachievable
            else
              let rate = Float.max profile.Traffic.rho rmin in
              (* Optimistic SLA pre-check: fail fast before booking anything.
                 The authoritative check re-runs at commit. *)
              if not (List.for_all (fun p -> Fp.leq (p.used +. rate) p.committed) peers)
              then reject Types.Insufficient_bandwidth
              else begin
                let domains = List.map (fun (d, _, _) -> d) legs in
                let bound = e2e_bound ~profile ~rate ~segment_infos:infos ~peer_delay in
                let tx =
                  {
                    id;
                    t_rate = rate;
                    t_bound = bound;
                    t_domains = domains;
                    t_peers = peers;
                    t_segs = List.map (fun (d, probe, _) -> (d, probe)) legs;
                    t_booked = [];
                    t_pending = domains;
                    t_attempts = 1;
                    t_timeout = t.config.prepare_timeout;
                    t_deadline = infinity;
                    t_decide = on_decision;
                    t_done = false;
                    t_prep_spans = [];
                  }
                in
                jrec t
                  (R_begin
                     {
                       txn = id;
                       rate;
                       bound;
                       domains;
                       peers =
                         List.map (fun p -> (p.from_domain, p.to_domain)) peers;
                     });
                Hashtbl.replace t.txns id tx;
                Hashtbl.replace t.tspans id
                  (Trace.start_span ~sim_time:(t.time.now ())
                     ~attrs:
                       [
                         ("txn", string_of_int id);
                         ("domains", String.concat "," domains);
                       ]
                     "bb.fed.txn");
                List.iter (fun dom -> send_prepare t tx dom) domains;
                if not tx.t_done then arm_txn_timer t tx;
                id
              end))

let request t ep ~profile ~dreq =
  let result = ref None in
  let _id = request_async t ep ~profile ~dreq ~on_decision:(fun r -> result := Some r) in
  match !result with
  | Some r -> r
  | None ->
      invalid_arg
        "Federation.request: transaction did not resolve synchronously (an \
         engine-driven or faulty federation must use request_async)"

let teardown t flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> () (* idempotent: unknown or already torn down *)
  | Some b ->
      Hashtbl.remove t.flows flow;
      List.iter (fun p -> p.used <- Float.max 0. (p.used -. b.b_rate)) b.b_peers;
      jrec t (R_tear flow);
      t.s_torn_down <- t.s_torn_down + 1;
      (* supersede any still-pending commit notifications *)
      List.iter
        (fun (dom, _) ->
          match Hashtbl.find_opt t.obligations (okey Ob_commit flow dom) with
          | None -> ()
          | Some ob ->
              Hashtbl.remove t.obligations (okey Ob_commit flow dom);
              Trace.finish_span ~sim_time:(t.time.now ())
                ~attrs:[ ("result", "superseded") ]
                ob.ob_span)
        b.b_legs;
      List.iter
        (fun (dom, _) -> add_obligation t ~compensation:false ~txn:flow ~dom Ob_release)
        b.b_legs

(* ---------------------------------------------------------------- *)
(* Introspection.                                                   *)

let find_peering t ~from_domain ~to_domain =
  List.find_opt
    (fun p -> p.from_domain = from_domain && p.to_domain = to_domain)
    t.peerings

let sla_usage t ~from_domain ~to_domain =
  Option.map (fun p -> (p.used, p.committed)) (find_peering t ~from_domain ~to_domain)

let sla_usage_exn t ~from_domain ~to_domain =
  match sla_usage t ~from_domain ~to_domain with
  | Some v -> v
  | None -> raise Not_found

let flow_count t = Hashtbl.length t.flows

let in_flight t = Hashtbl.length t.txns

let obligations_pending t = Hashtbl.length t.obligations

let stats t =
  {
    committed = t.s_committed;
    compensated = t.s_compensated;
    rejected = t.s_rejected;
    torn_down = t.s_torn_down;
    prepares = t.s_prepares;
    retries = t.s_retries;
    compensations = t.s_compensations;
    commit_nacks = t.s_commit_nacks;
    reaped = t.s_reaped;
    messages = t.s_messages;
    dropped = t.s_dropped;
    duplicated = t.s_duplicated;
  }

(* ---------------------------------------------------------------- *)
(* Orphan reaping (domain-side TTL sweep).                          *)

let reap t =
  let now = t.time.now () in
  let n = ref 0 in
  Hashtbl.iter
    (fun _ agent ->
      if agent.up then begin
        let victims =
          Hashtbl.fold
            (fun txn p acc ->
              if now -. p.p_at >= t.config.prepare_ttl -. 1e-9 then (txn, p) :: acc
              else acc)
            agent.prepared []
        in
        List.iter
          (fun (txn, p) ->
            Broker.teardown agent.broker p.p_flow;
            Hashtbl.remove agent.prepared txn;
            Hashtbl.replace agent.released txn ();
            incr n;
            t.s_reaped <- t.s_reaped + 1;
            metric "bb_fed_reaped_total";
            Trace.event ~sim_time:now ~parent:(txn_span t txn)
              ~attrs:[ ("domain", agent.name); ("txn", string_of_int txn) ]
              "bb.fed.reap")
          victims
      end)
    t.domains;
  !n

(* ---------------------------------------------------------------- *)
(* Cross-domain audit.                                              *)

type report = {
  domain_audits : (string * Audit.report) list;
  violations : Audit.violation list;
  checked_flows : int;
  checked_segments : int;
  checked_segments_rate : float;
  checked_peerings : int;
  prepared_segments : int;
}

let audit ?(eps = 1e-3) ?(exclusive = true) t =
  let violations = ref [] in
  let add kind subject detail =
    violations := { Audit.kind; subject; detail } :: !violations;
    metric "bb_audit_violations_total" ~labels:[ ("kind", Audit.kind_label kind) ]
  in
  (* 1. Every SLA byte backed by a live committed flow crossing it. *)
  List.iter
    (fun p ->
      let expected =
        Hashtbl.fold
          (fun _ b acc -> if List.memq p b.b_peers then acc +. b.b_rate else acc)
          t.flows 0.
      in
      if Float.abs (p.used -. expected) > eps then
        add Audit.Sla_mismatch
          (Printf.sprintf "peering %s>%s" p.from_domain p.to_domain)
          (Printf.sprintf "SLA usage %g b/s but live flows account for %g b/s" p.used
             expected))
    t.peerings;
  (* 2. Every committed flow's every segment live in its domain at rate. *)
  let segs = ref 0 in
  let segs_rate = ref 0. in
  Hashtbl.iter
    (fun id b ->
      List.iter
        (fun (dom, leg) ->
          incr segs;
          segs_rate := !segs_rate +. b.b_rate;
          match Hashtbl.find_opt t.domains dom with
          | None ->
              add Audit.Sla_mismatch
                (Printf.sprintf "flow %d" id)
                (Printf.sprintf "segment domain %s no longer registered" dom)
          | Some agent -> (
              match Flow_mib.find (Broker.flow_mib agent.broker) leg with
              | None ->
                  add Audit.Sla_mismatch
                    (Printf.sprintf "flow %d" id)
                    (Printf.sprintf
                       "committed segment (flow %d) missing in domain %s — SLA \
                        bytes with no live reservation behind them"
                       leg dom)
              | Some rec_ ->
                  if Float.abs (rec_.Flow_mib.reservation.Types.rate -. b.b_rate) > eps
                  then
                    add Audit.Sla_mismatch
                      (Printf.sprintf "flow %d" id)
                      (Printf.sprintf
                         "segment in %s reserved at %g b/s, federation committed %g b/s"
                         dom rec_.Flow_mib.reservation.Types.rate b.b_rate)))
        b.b_legs)
    t.flows;
  (* 3. Domain-side bookkeeping: strays, forgotten segments, orphans. *)
  let now = t.time.now () in
  let prepared_total = ref 0 in
  Hashtbl.iter
    (fun _ agent ->
      prepared_total := !prepared_total + Hashtbl.length agent.prepared;
      (* committed segment whose federation flow is gone and nothing in
         flight will release it *)
      Hashtbl.iter
        (fun txn leg ->
          if
            (not (Hashtbl.mem t.flows txn))
            && not (Hashtbl.mem t.obligations (okey Ob_release txn agent.name))
          then
            add Audit.Stranded_segment
              (Printf.sprintf "domain %s flow %d" agent.name leg)
              (Printf.sprintf
                 "committed segment of federation flow %d has no live flow and no \
                  pending release"
                 txn))
        agent.committed_segs;
      (* prepared booking past TTL with nothing claiming it *)
      Hashtbl.iter
        (fun txn p ->
          if
            (not (Hashtbl.mem t.txns txn))
            && (not (Hashtbl.mem t.obligations (okey Ob_release txn agent.name)))
            && (not (Hashtbl.mem t.obligations (okey Ob_commit txn agent.name)))
            && now -. p.p_at > t.config.prepare_ttl
          then
            add Audit.Orphan_prepare
              (Printf.sprintf "domain %s flow %d" agent.name p.p_flow)
              (Printf.sprintf
                 "prepared booking of transaction %d aged %g s past its %g s TTL"
                 txn (now -. p.p_at) t.config.prepare_ttl))
        agent.prepared;
      if exclusive then begin
        let accounted = Hashtbl.create 16 in
        Hashtbl.iter (fun _ p -> Hashtbl.replace accounted p.p_flow ()) agent.prepared;
        Hashtbl.iter (fun _ leg -> Hashtbl.replace accounted leg ()) agent.committed_segs;
        Flow_mib.fold (Broker.flow_mib agent.broker) ~init:()
          ~f:(fun () (r : Flow_mib.record) ->
            if not (Hashtbl.mem accounted r.Flow_mib.flow) then
              add Audit.Stranded_segment
                (Printf.sprintf "domain %s flow %d" agent.name r.Flow_mib.flow)
                (Printf.sprintf
                   "reservation of %g b/s that no federation flow, transaction or \
                    prepared booking accounts for"
                   r.Flow_mib.reservation.Types.rate))
      end)
    t.domains;
  let domain_audits =
    Hashtbl.fold
      (fun name agent acc -> (name, Audit.check ~eps agent.broker) :: acc)
      t.domains []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    domain_audits;
    violations = List.rev !violations;
    checked_flows = Hashtbl.length t.flows;
    checked_segments = !segs;
    checked_segments_rate = !segs_rate;
    checked_peerings = List.length t.peerings;
    prepared_segments = !prepared_total;
  }

let audit_ok r =
  r.violations = [] && List.for_all (fun (_, a) -> Audit.ok a) r.domain_audits

(* ---------------------------------------------------------------- *)
(* Decision digest, crash, recovery.                                *)

let decision_digest t =
  let lines =
    Hashtbl.fold
      (fun id o acc ->
        match o with
        | O_committed -> Printf.sprintf "%d:c" id :: acc
        | O_compensated -> Printf.sprintf "%d:x" id :: acc
        | O_rejected -> acc)
      t.outcomes []
  in
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare lines)))

let journal_text t = Wal.text t.journal

let journal_records t = Wal.records t.journal

let crash_coordinator t =
  let lost = Wal.crash_cut t.journal in
  t.epoch <- t.epoch + 1;
  (* Spans owned by the lost coordinator state would otherwise dangle
     open forever: close them with the crash marked. *)
  let crash_now = t.time.now () in
  let crashed sp =
    Trace.finish_span ~sim_time:crash_now ~attrs:[ ("result", "crashed") ] sp
  in
  Hashtbl.iter
    (fun _ tx -> List.iter (fun (_, sp) -> crashed sp) tx.t_prep_spans)
    t.txns;
  Hashtbl.iter (fun _ ob -> crashed ob.ob_span) t.obligations;
  Hashtbl.iter (fun _ sp -> crashed sp) t.tspans;
  Hashtbl.reset t.tspans;
  t.storm_start <- neg_infinity;
  t.storm_count <- 0;
  Hashtbl.reset t.txns;
  Hashtbl.reset t.flows;
  Hashtbl.reset t.outcomes;
  Hashtbl.reset t.obligations;
  List.iter (fun p -> p.used <- 0.) t.peerings;
  t.next_id <- 0;
  t.pump_at <- infinity;
  lost

type recovery = {
  replayed : int;
  replay_warning : string option;
  recovered_flows : int;
  recovery_aborts : int;
  requeued : int;
  replayed_digest : string;
}

(* Per-transaction replay accumulator. *)
type rstate = {
  mutable r_rate : float;
  mutable r_bound : float;
  mutable r_domains : string list;
  mutable r_peers : (string * string) list;
  mutable r_legs : (string * Types.flow_id) list;  (* reverse booked order *)
  mutable r_decision : [ `C | `A ] option;
  mutable r_torn : bool;
  mutable r_cacks : string list;
  mutable r_racks : string list;
  mutable r_closed : bool;
}

let recover_coordinator t =
  match Wal.parse ~header:fed_header ~decode_payload:decode_rec (Wal.text t.journal) with
  | Error e -> Error e
  | Ok (entries, replay_warning) ->
      let states : (int, rstate) Hashtbl.t = Hashtbl.create 64 in
      let st txn =
        match Hashtbl.find_opt states txn with
        | Some s -> s
        | None ->
            let s =
              {
                r_rate = 0.;
                r_bound = 0.;
                r_domains = [];
                r_peers = [];
                r_legs = [];
                r_decision = None;
                r_torn = false;
                r_cacks = [];
                r_racks = [];
                r_closed = false;
              }
            in
            Hashtbl.replace states txn s;
            s
      in
      List.iter
        (fun (_at, r) ->
          match r with
          | R_begin { txn; rate; bound; domains; peers } ->
              let s = st txn in
              s.r_rate <- rate;
              s.r_bound <- bound;
              s.r_domains <- domains;
              s.r_peers <- peers
          | R_booked { txn; dom; flow } ->
              let s = st txn in
              if not (List.mem_assoc dom s.r_legs) then s.r_legs <- (dom, flow) :: s.r_legs
          | R_commit txn -> (st txn).r_decision <- Some `C
          | R_abort { txn; _ } ->
              let s = st txn in
              s.r_decision <- Some `A;
              s.r_closed <- false
          | R_cack { txn; dom } ->
              let s = st txn in
              if not (List.mem dom s.r_cacks) then s.r_cacks <- dom :: s.r_cacks
          | R_rack { txn; dom } ->
              let s = st txn in
              if not (List.mem dom s.r_racks) then s.r_racks <- dom :: s.r_racks
          | R_tear txn ->
              let s = st txn in
              s.r_torn <- true;
              s.r_closed <- false
          | R_closed txn -> (st txn).r_closed <- true)
        entries;
      (* The journal-backed decisions alone, before recovery resolves the
         undecided remainder: the crash-equivalence oracle. *)
      let digest_lines =
        Hashtbl.fold
          (fun id s acc ->
            match s.r_decision with
            | Some `C when not s.r_torn -> Printf.sprintf "%d:c" id :: acc
            | Some `C -> Printf.sprintf "%d:c" id :: acc
            | Some `A -> Printf.sprintf "%d:x" id :: acc
            | None -> acc)
          states []
      in
      let replayed_digest =
        Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare digest_lines)))
      in
      (* Rebuild the journal fresh from the parsed records: drops the torn
         fragment, then keeps appending. *)
      let journal =
        Wal.create ~fsync_every:t.config.fsync_every ~header:fed_header
          ~encode_payload:encode_rec ()
      in
      List.iter (fun (at, r) -> Wal.append journal ~at r) entries;
      t.journal <- journal;
      let recovered_flows = ref 0 in
      let recovery_aborts = ref 0 in
      let requeued = ref 0 in
      let enqueue ~compensation txn dom kind =
        (* A recovered transaction gets a fresh root span: the original
           one died with the crashed coordinator. *)
        if not (Hashtbl.mem t.tspans txn) then
          Hashtbl.replace t.tspans txn
            (Trace.start_span ~sim_time:(t.time.now ())
               ~attrs:[ ("txn", string_of_int txn); ("recovered", "true") ]
               "bb.fed.txn");
        if not (Hashtbl.mem t.obligations (okey kind txn dom)) then incr requeued;
        add_obligation t ~compensation ~txn ~dom kind
      in
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) states [] |> List.sort compare in
      List.iter
        (fun id ->
          let s = Hashtbl.find states id in
          if id >= t.next_id then t.next_id <- id + 1;
          match s.r_decision with
          | Some `C when not s.r_torn ->
              Hashtbl.replace t.outcomes id O_committed;
              let legs = List.map (fun d -> (d, List.assoc d s.r_legs)) s.r_domains in
              let peers =
                List.filter_map
                  (fun (a, b) -> find_peering t ~from_domain:a ~to_domain:b)
                  s.r_peers
              in
              List.iter (fun p -> p.used <- p.used +. s.r_rate) peers;
              Hashtbl.replace t.flows id
                {
                  b_rate = s.r_rate;
                  b_bound = s.r_bound;
                  b_domains = s.r_domains;
                  b_legs = legs;
                  b_peers = peers;
                };
              incr recovered_flows;
              if not s.r_closed then
                List.iter
                  (fun (dom, _) ->
                    if not (List.mem dom s.r_cacks) then
                      enqueue ~compensation:false id dom Ob_commit)
                  legs
          | Some `C ->
              (* committed then torn down *)
              Hashtbl.replace t.outcomes id O_committed;
              if not s.r_closed then
                List.iter
                  (fun dom ->
                    if not (List.mem dom s.r_racks) then
                      enqueue ~compensation:false id dom Ob_release)
                  s.r_domains
          | Some `A ->
              Hashtbl.replace t.outcomes id O_compensated;
              if not s.r_closed then
                List.iter
                  (fun dom ->
                    if not (List.mem dom s.r_racks) then
                      enqueue ~compensation:false id dom Ob_release)
                  s.r_domains
          | None ->
              (* begun, never decided: the crash decides — compensate *)
              Hashtbl.replace t.outcomes id O_compensated;
              jrec t (R_abort { txn = id; reason = "recovery" });
              t.s_compensated <- t.s_compensated + 1;
              metric "bb_fed_txn_total" ~labels:[ ("outcome", "compensated") ];
              incr recovery_aborts;
              List.iter
                (fun dom -> enqueue ~compensation:true id dom Ob_release)
                s.r_domains)
        ids;
      Ok
        {
          replayed = List.length entries;
          replay_warning;
          recovered_flows = !recovered_flows;
          recovery_aborts = !recovery_aborts;
          requeued = !requeued;
          replayed_digest;
        }

(* ---------------------------------------------------------------- *)
(* Pretty-printing.                                                 *)

let pp_stats ppf s =
  Fmt.pf ppf
    "committed=%d compensated=%d rejected=%d torn_down=%d prepares=%d retries=%d \
     compensations=%d commit_nacks=%d reaped=%d messages=%d dropped=%d duplicated=%d"
    s.committed s.compensated s.rejected s.torn_down s.prepares s.retries
    s.compensations s.commit_nacks s.reaped s.messages s.dropped s.duplicated

let pp_report ppf r =
  Fmt.pf ppf "federation audit: %d flow(s), %d segment(s), %d peering(s), %d prepared"
    r.checked_flows r.checked_segments r.checked_peerings r.prepared_segments;
  List.iter
    (fun (v : Audit.violation) ->
      Fmt.pf ppf "@.  [%s] %s: %s" (Audit.kind_label v.Audit.kind) v.Audit.subject
        v.Audit.detail)
    r.violations;
  List.iter
    (fun (name, a) ->
      if not (Audit.ok a) then Fmt.pf ppf "@.  domain %s: %a" name Audit.pp_report a)
    r.domain_audits
