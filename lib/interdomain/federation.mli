(** Inter-domain guaranteed services across a federation of
    broker-managed domains, with failure-isolated per-segment
    reservations.

    The paper confines itself to one domain and names inter-domain QoS
    reservation and service-level agreements as the open problem
    (Sections 1 and 6).  This module implements the composition as a
    {e failure-isolated reservation protocol} (in the spirit of
    Hummingbird's decoupled per-segment reservations):

    - every domain runs its own bandwidth broker;
    - adjacent domains are connected by {e peering links}, each governed
      by an {e SLA} that commits an aggregate bandwidth between the two
      domains (and contributes a fixed delay);
    - an end-to-end request is routed over the {e domain graph}, the
      end-to-end delay budget is solved once by the coordinator — each
      transit domain's conditioner acts as one extra rate-based hop, so
      the closed form of Section 3.1 extends across domains — and the
      resulting rate is then reserved {e segment by segment}: one
      independent booking per domain, composed end-to-end by an explicit
      coordinator transaction.

    {2 The transaction state machine}

    Each request becomes a coordinator transaction driving one segment
    per domain through

    {v PREPARE --> BOOKED --> COMMITTED
                   |             |
                   v             v (commit refused: segment reaped)
              COMPENSATED <------+ v}

    - {b PREPARE}: the coordinator sends each domain a booking for its
      segment at the solved rate.  Prepares are retransmitted on a
      capped, jittered exponential-backoff timer (the COPS busy/backoff
      semantics); a domain books idempotently — a duplicate PREPARE for
      a transaction it already holds re-acknowledges the same flow.
    - {b BOOKED}: every segment acknowledged.  The coordinator re-checks
      the SLAs (concurrent transactions race for them), applies the
      usage, journals the commit and notifies each domain, which
      promotes the booking from {e prepared} to {e committed}.
    - {b COMPENSATED}: any refusal, or a domain that never acknowledges
      within the retry budget ({!Bbr_broker.Types.Peer_unreachable}),
      fails the transaction.  Booked segments are not "rolled back" in
      band: each is handed a {e compensating teardown} that is retried
      idempotently until the domain confirms it — a crashed or
      partitioned domain delays only its own compensation, never the
      committed segments of other flows.

    Failure isolation, concretely: one domain's crash mid-prepare costs
    exactly that transaction (compensated once retries are exhausted)
    plus one orphaned prepared booking in the crashed domain, which the
    TTL {!reap} sweep releases after recovery.  Nothing any other flow
    committed is touched.

    {2 Crash-recoverable coordinator}

    Coordinator state — in-flight transactions, segment outcomes, the
    compensation queue — is journaled through the PR 3 write-ahead
    machinery ({!Bbr_broker.Wal}): [begin]/[booked] before the decision,
    [commit]/[abort] at it, per-domain [cack]/[rack] as commit
    notifications and compensations drain, [closed] when a transaction
    has no obligations left.  {!crash_coordinator} models a coordinator
    crash (state wiped, journal truncated at the last fsync boundary
    with a torn tail); {!recover_coordinator} replays the journal:
    committed transactions come back with their SLA usage, undecided
    ones are resolved to compensation, and every unacknowledged
    obligation is re-queued.  With [fsync_every = 1] the recovered
    {!decision_digest} equals the dying coordinator's exactly.

    Restricted to domains whose transit paths are rate-based (the same
    restriction as {!Bbr_broker.Edge_broker}, and for the same reason:
    delay-based budget splitting needs per-domain schedulability
    negotiation, a further research problem). *)

type t

(** Protocol timing and durability parameters. *)
type config = {
  latency : float;  (** one-way coordinator↔domain message delay, seconds *)
  prepare_timeout : float;  (** initial PREPARE retransmission timeout *)
  backoff : float;  (** timeout multiplier per retry *)
  max_timeout : float;  (** backoff cap *)
  prepare_retries : int;
      (** PREPARE rounds before the transaction gives up on a silent
          domain and compensates *)
  retry_timeout : float;
      (** initial retransmission timeout for commit notifications,
          compensations and teardowns — these retry {e without bound}
          (idempotently) until the domain confirms *)
  prepare_ttl : float;
      (** domain-side age past which a prepared-but-never-committed
          booking is an orphan: {!reap} releases it, and a COMMIT
          arriving later is refused (the coordinator then compensates) *)
  jitter : (unit -> float) option;
      (** sampled per timer, must return a value in [\[0, 1)]; every
          retransmission delay [d] becomes [d * (1 + jitter ())] (see
          {!Bbr_util.Prng.float}).  [None] = exact timers. *)
  fsync_every : int;  (** coordinator journal durability boundary *)
}

val default_config : config
(** 5 ms latency, 50 ms initial prepare timeout backing off 2x capped at
    1 s, 5 prepare rounds, 100 ms obligation retry, 30 s prepare TTL, no
    jitter, fsync every record. *)

(** Inter-domain message-channel fault knobs, sampled per message leg
    (see {!Bbr_netsim.Fault.drop} for a seeded Bernoulli source). *)
type faults = {
  drop : unit -> bool;  (** lose this copy *)
  duplicate : unit -> bool;  (** deliver this copy twice *)
  extra_delay : unit -> float;  (** added to [latency], seconds *)
}

val no_faults : faults

val create : ?time:Bbr_broker.Broker.time_hooks -> ?config:config -> unit -> t
(** A fresh coordinator.  [time] (default
    {!Bbr_broker.Broker.immediate_time}) supplies the clock and timers;
    bind it to a discrete-event engine to run the asynchronous protocol
    with real timeouts.  Under [immediate_time] messages deliver
    synchronously and timers never fire — loss-free {!request}s resolve
    before returning, which is the mode the simple examples use. *)

val set_faults : t -> faults -> unit
(** Install the message-channel fault processes ({!no_faults} to heal). *)

val add_domain : t -> name:string -> Bbr_vtrs.Topology.t -> Bbr_broker.Broker.t
(** Register a domain and its broker (created internally, on the
    federation's clock).  Domain names must contain no spaces or commas
    (they appear in journal records).  Raises [Invalid_argument] on
    duplicate names. *)

val broker : t -> domain:string -> Bbr_broker.Broker.t option

val broker_exn : t -> domain:string -> Bbr_broker.Broker.t
(** Raises [Not_found]. *)

val add_peering :
  t ->
  from_domain:string ->
  from_egress:string ->
  to_domain:string ->
  to_ingress:string ->
  committed_rate:float ->
  ?delay:float ->
  unit ->
  unit
(** Declare a (directed) peering with its SLA: at most [committed_rate]
    bits/s of guaranteed traffic may cross it; [delay] (default 0.01 s) is
    the peering link's contribution to end-to-end bounds.  Raises
    [Invalid_argument] on unknown domains or a duplicate peering. *)

(** {1 Fault injection} *)

val set_domain_up : t -> domain:string -> bool -> unit
(** Crash / recover a domain's broker agent.  While down it consumes
    incoming messages without reacting (its reservation state survives —
    per-domain brokers are assumed to run their own crash-consistency
    machinery).  Raises [Not_found] for an unknown domain. *)

val set_reachable : t -> domain:string -> bool -> unit
(** Partition / heal the path between the coordinator and a domain:
    while unreachable, messages in either direction are silently lost.
    Raises [Not_found] for an unknown domain. *)

(** {1 Requests} *)

(** Where a federation-wide flow enters and leaves. *)
type endpoints = {
  src_domain : string;
  src_ingress : string;  (** ingress router inside the source domain *)
  dst_domain : string;
  dst_egress : string;  (** egress router inside the destination domain *)
}

type reservation = {
  flow : int;  (** federation-wide flow id (= the transaction id) *)
  rate : float;
  domains : string list;  (** the domain-level path *)
  bound : float;  (** end-to-end delay bound achieved *)
}

val request_async :
  t ->
  endpoints ->
  profile:Bbr_vtrs.Traffic.t ->
  dreq:float ->
  on_decision:((reservation, Bbr_broker.Types.reject_reason) result -> unit) ->
  int
(** Start an end-to-end reservation transaction; returns its id.
    [on_decision] fires exactly once, when the transaction commits or is
    resolved to rejection/compensation — possibly within this call
    (loss-free immediate time), possibly seconds of simulated time later
    (retries, compensation).  A compensated transaction reports the
    refusing domain's reason, or [Peer_unreachable] when a domain never
    answered. *)

val request :
  t ->
  endpoints ->
  profile:Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (reservation, Bbr_broker.Types.reject_reason) result
(** Synchronous convenience over {!request_async} for federations on
    {!Bbr_broker.Broker.immediate_time} with a loss-free channel, where
    the decision is available before the call returns.  Raises
    [Invalid_argument] if the transaction does not resolve synchronously
    (engine-driven or faulty federations must use {!request_async}). *)

val teardown : t -> int -> unit
(** Release a federation reservation: the SLA usage is returned at once
    and each domain is handed an idempotent segment teardown, retried
    until confirmed.  Idempotent — unknown or already-torn flows are
    no-ops, so retransmitted teardowns are harmless. *)

(** {1 Introspection} *)

val sla_usage : t -> from_domain:string -> to_domain:string -> (float * float) option
(** [(used, committed)] on the peering. *)

val sla_usage_exn : t -> from_domain:string -> to_domain:string -> float * float
(** Raises [Not_found]. *)

val flow_count : t -> int
(** Live (committed, not torn down) federation flows. *)

val in_flight : t -> int
(** Transactions still preparing (no commit/compensate decision yet). *)

val obligations_pending : t -> int
(** Unconfirmed obligations — commit notifications, compensating
    teardowns and flow teardowns still awaiting a domain's
    acknowledgement.  Drains to 0 once every domain is up and reachable. *)

val pump : t -> unit
(** Re-send every pending obligation now and re-arm the retry timer.
    The coordinator retries automatically under an engine-driven clock;
    under [immediate_time] (where timers cannot advance) call this
    manually after healing faults. *)

(** Counters since creation (also exported as [bb_fed_*] metrics when a
    registry is installed). *)
type stats = {
  committed : int;
  compensated : int;  (** transactions that booked then failed *)
  rejected : int;  (** refused before any segment was booked *)
  torn_down : int;
  prepares : int;  (** PREPARE copies sent, retransmissions included *)
  retries : int;  (** retransmitted PREPAREs and obligation re-sends *)
  compensations : int;  (** compensating teardowns enqueued *)
  commit_nacks : int;
      (** commit notifications a domain refused because the prepared
          booking was already reaped — each compensates its whole flow *)
  reaped : int;  (** orphaned prepared bookings released by {!reap} *)
  messages : int;  (** inter-domain message copies sent *)
  dropped : int;
  duplicated : int;
}

val stats : t -> stats

(** {1 Housekeeping, audit, recovery} *)

val reap : t -> int
(** Domain-side orphan sweep: release every prepared-but-uncommitted
    booking older than [prepare_ttl] in every {e up} domain (a COMMIT
    arriving later for a reaped booking is refused and the coordinator
    compensates).  Returns the number reaped. *)

type report = {
  domain_audits : (string * Bbr_broker.Audit.report) list;
      (** per-domain MIB audits *)
  violations : Bbr_broker.Audit.violation list;
      (** cross-domain findings: {!Bbr_broker.Audit.Sla_mismatch},
          {!Bbr_broker.Audit.Stranded_segment},
          {!Bbr_broker.Audit.Orphan_prepare} *)
  checked_flows : int;
  checked_segments : int;
  checked_segments_rate : float;
      (** Σ over live flows of rate × segment count — the broker-side
          bandwidth the federation accounts for (the stranded-bandwidth
          baseline) *)
  checked_peerings : int;
  prepared_segments : int;  (** in-flight prepared bookings seen *)
}

val audit : ?eps:float -> ?exclusive:bool -> t -> report
(** Cross-domain invariant audit: every SLA byte is backed by a live
    committed flow crossing the peering; every committed flow's every
    segment is live in its domain's broker at the committed rate; every
    domain-side prepared booking belongs to a live transaction or a
    pending obligation (older orphans are {!Bbr_broker.Audit.Orphan_prepare});
    and — with [exclusive] (default [true], i.e. the federation owns all
    reservations in its domains) — every broker reservation is accounted
    for by a committed segment, a prepared booking or an in-flight
    teardown.  Each domain's own MIB audit rides along.  Findings count
    on [bb_audit_violations_total{kind}]. *)

val audit_ok : report -> bool
(** No federation-level violations and every domain audit clean. *)

val decision_digest : t -> string
(** Hex digest over the journal-backed transaction decisions
    (id, committed | compensated): the oracle for coordinator
    crash-recovery equivalence.  Upfront rejections book nothing and are
    excluded. *)

val journal_text : t -> string
(** The coordinator's write-ahead journal, serialized. *)

val journal_records : t -> int

type recovery = {
  replayed : int;  (** journal records applied *)
  replay_warning : string option;  (** torn/corrupt-tail warning *)
  recovered_flows : int;  (** committed flows rebuilt *)
  recovery_aborts : int;
      (** transactions found undecided and resolved to compensation *)
  requeued : int;  (** unacknowledged obligations re-queued *)
  replayed_digest : string;
      (** {!decision_digest} of the journal-backed decisions alone,
          before the recovery aborts — compare with the dying
          coordinator's digest *)
}

val crash_coordinator : t -> int
(** Model a coordinator crash: every in-flight transaction, flow record,
    SLA usage figure and queued obligation is lost; the journal is
    truncated at its last fsync boundary, the first lost record
    surviving torn.  Returns the number of journal records lost.
    Undelivered [on_decision] callbacks are dropped (the requesting
    edge's own COPS timeout covers that).  Domain brokers are untouched. *)

val recover_coordinator : t -> (recovery, string) result
(** Replay the surviving journal into the crashed coordinator:
    committed transactions return with their SLA usage and legs,
    undecided ones are resolved to compensation (journaled as such), and
    every unacknowledged obligation is re-queued and re-sent.  [Error]
    only for an unreadable journal (bad header).  The journal is
    compacted to the replayed state and keeps appending. *)

val pp_report : report Fmt.t

val pp_stats : stats Fmt.t
