(** Seeded fault injection for the simulated control plane.

    The paper's reliability claim (Section 2, footnote 2) is that keeping
    all QoS state at the broker turns failure handling into a pure
    control-plane problem.  This module supplies the failures to handle:
    a deterministic, seed-driven schedule of link outages and broker
    crashes bound to the discrete-event {!Engine} clock, plus a Bernoulli
    loss process for the COPS channel.  Everything is driven by
    {!Bbr_util.Prng}, so a given seed reproduces the exact same fault
    sequence on every run. *)

type action =
  | Link_down of int  (** take a topology link down (by link id) *)
  | Link_up of int  (** repair it *)
  | Crash of string  (** crash a named broker *)
  | Recover of string

type event = {
  at : float;
  id : int;  (** injection id: process-wide creation order (see {!event}) *)
  action : action;
}

val event : at:float -> action -> event
(** Build an event carrying a fresh injection id.  Ids are handed out in
    creation order, so a batch of events built in program order keeps that
    order wherever times coincide — even after the lists holding them are
    concatenated, filtered or merged. *)

val compare_events : event -> event -> int
(** Order by time, injection id breaking ties — the canonical dispatch
    order {!install} enforces. *)

val pp_action : Format.formatter -> action -> unit

val pp_event : Format.formatter -> event -> unit

type hooks = {
  on_link_down : int -> unit;
  on_link_up : int -> unit;
  on_crash : string -> unit;
  on_recover : string -> unit;
}

val hooks :
  ?on_link_down:(int -> unit) ->
  ?on_link_up:(int -> unit) ->
  ?on_crash:(string -> unit) ->
  ?on_recover:(string -> unit) ->
  unit ->
  hooks
(** Omitted handlers default to no-ops. *)

val install : Engine.t -> hooks -> event list -> unit
(** Schedule every event on the engine; at its time the matching hook
    fires.  Events are scheduled in {!compare_events} order, so coincident
    same-sim-time injections dispatch deterministically by injection id —
    independent of how the caller interleaved the lists it concatenated. *)

val inject : Engine.t -> hooks -> action -> unit
(** Schedule one action at the engine's {e current} time — same metrics,
    tracing and hook dispatch as a pre-planned event.  This is how
    state-triggered faults enter the schedule: e.g. crash-point injection
    kills the broker from a journal record-boundary callback, at whatever
    simulated instant that record happens to be written. *)

val drop : Bbr_util.Prng.t -> p:float -> unit -> bool
(** A Bernoulli loss process: each call returns [true] (drop this
    message) with probability [p].  [p = 0] never samples the stream, so
    a loss-free run consumes no randomness.  Raises [Invalid_argument]
    unless [0 <= p < 1].  Feed to {!Bbr_broker.Cops.reliability}. *)

val link_plan :
  Bbr_util.Prng.t ->
  link_ids:int list ->
  horizon:float ->
  ?mtbf:float ->
  ?mttr:float ->
  unit ->
  event list
(** A seeded outage schedule over [link_ids] up to time [horizon]: each
    link alternates exponentially distributed up-times (mean [mtbf],
    default [horizon/2]) and down-times (mean [mttr], default
    [horizon/20]), on its own split PRNG stream.  Events come back sorted
    by time, ready for {!install}. *)
