(** Seeded fault injection for the simulated control plane.

    The paper's reliability claim (Section 2, footnote 2) is that keeping
    all QoS state at the broker turns failure handling into a pure
    control-plane problem.  This module supplies the failures to handle:
    a deterministic, seed-driven schedule of link outages and broker
    crashes bound to the discrete-event {!Engine} clock, plus a Bernoulli
    loss process for the COPS channel.  Everything is driven by
    {!Bbr_util.Prng}, so a given seed reproduces the exact same fault
    sequence on every run. *)

type action =
  | Link_down of int  (** take a topology link down (by link id) *)
  | Link_up of int  (** repair it *)
  | Crash of string  (** crash a named broker *)
  | Recover of string

type event = { at : float; action : action }

val pp_action : Format.formatter -> action -> unit

val pp_event : Format.formatter -> event -> unit

type hooks = {
  on_link_down : int -> unit;
  on_link_up : int -> unit;
  on_crash : string -> unit;
  on_recover : string -> unit;
}

val hooks :
  ?on_link_down:(int -> unit) ->
  ?on_link_up:(int -> unit) ->
  ?on_crash:(string -> unit) ->
  ?on_recover:(string -> unit) ->
  unit ->
  hooks
(** Omitted handlers default to no-ops. *)

val install : Engine.t -> hooks -> event list -> unit
(** Schedule every event on the engine; at its time the matching hook
    fires. *)

val inject : Engine.t -> hooks -> action -> unit
(** Schedule one action at the engine's {e current} time — same metrics,
    tracing and hook dispatch as a pre-planned event.  This is how
    state-triggered faults enter the schedule: e.g. crash-point injection
    kills the broker from a journal record-boundary callback, at whatever
    simulated instant that record happens to be written. *)

val drop : Bbr_util.Prng.t -> p:float -> unit -> bool
(** A Bernoulli loss process: each call returns [true] (drop this
    message) with probability [p].  [p = 0] never samples the stream, so
    a loss-free run consumes no randomness.  Raises [Invalid_argument]
    unless [0 <= p < 1].  Feed to {!Bbr_broker.Cops.reliability}. *)

val link_plan :
  Bbr_util.Prng.t ->
  link_ids:int list ->
  horizon:float ->
  ?mtbf:float ->
  ?mttr:float ->
  unit ->
  event list
(** A seeded outage schedule over [link_ids] up to time [horizon]: each
    link alternates exponentially distributed up-times (mean [mtbf],
    default [horizon/2]) and down-times (mean [mttr], default
    [horizon/20]), on its own split PRNG stream.  Events come back sorted
    by time, ready for {!install}. *)
