module Topology = Bbr_vtrs.Topology
module Packet_state = Bbr_vtrs.Packet_state
module Metrics = Bbr_obs.Metrics

type discipline = Csvc | Cjvc | Vtedf | Vc | Scfq | Rcedf | Fifo

let pp_discipline ppf d =
  Fmt.string ppf
    (match d with
    | Csvc -> "CsVC"
    | Cjvc -> "CJVC"
    | Vtedf -> "VT-EDF"
    | Vc -> "VC"
    | Scfq -> "SCFQ"
    | Rcedf -> "RC-EDF"
    | Fifo -> "FIFO")

type flow_state = {
  rate : float;
  deadline : float;
  mutable vclock : float;  (* VC: per-flow virtual clock *)
  mutable eligible : float;  (* RC-EDF: last shaper eligibility time *)
}

type t = {
  engine : Engine.t;
  link : Topology.link;
  discipline : discipline;
  server : Server.t;
  flows : (int, flow_state) Hashtbl.t;
  (* SCFQ: system virtual time = service tag of the last completed packet,
     plus the tags of packets currently queued (keyed by flow, seq). *)
  mutable vtime : float;
  scfq_tags : (int * int, float) Hashtbl.t;
  mutable fifo_seq : float;
  mutable max_lateness : float;
  (* Cached handle on the installed registry's per-hop packet counter (see
     Engine.dispatch_counter for the pattern). *)
  mutable obs : (Metrics.t * Metrics.counter) option;
}

let packet_counter t =
  match (t.obs, Metrics.current ()) with
  | Some (reg, c), Some cur when reg == cur -> Some c
  | _, None ->
      t.obs <- None;
      None
  | _, Some cur ->
      let c =
        Metrics.counter cur "sim_hop_packets_total"
          ~help:"Packets received by the hop scheduler"
          ~labels:[ ("link", string_of_int t.link.Topology.link_id) ]
      in
      t.obs <- Some (cur, c);
      Some c

let sched_class t =
  match t.discipline with
  | Csvc | Cjvc | Vc | Scfq -> Topology.Rate_based
  | Vtedf | Rcedf -> Topology.Delay_based
  | Fifo -> Topology.Rate_based

let create engine ~link ~deliver discipline =
  let self = ref None in
  let on_depart pkt =
    let hop = Option.get !self in
    (match Hashtbl.find_opt hop.scfq_tags (pkt.Packet.flow, pkt.Packet.seq) with
    | Some tag ->
        Hashtbl.remove hop.scfq_tags (pkt.Packet.flow, pkt.Packet.seq);
        hop.vtime <- tag
    | None -> ());
    (match pkt.Packet.state with
    | Some st ->
        let finish = Packet_state.virtual_finish st (sched_class hop) in
        let lateness = Engine.now engine -. (finish +. link.Topology.psi) in
        if lateness > hop.max_lateness then hop.max_lateness <- lateness;
        pkt.Packet.state <- Some (Packet_state.advance st ~link)
    | None -> ());
    pkt.Packet.hop_ix <- pkt.Packet.hop_ix + 1;
    if link.Topology.prop_delay = 0. then deliver pkt
    else
      Engine.schedule_after engine ~delay:link.Topology.prop_delay (fun () ->
          deliver pkt)
  in
  let t =
    {
      engine;
      link;
      discipline;
      server = Server.create engine ~capacity:link.Topology.capacity ~on_depart;
      flows = Hashtbl.create 16;
      vtime = 0.;
      scfq_tags = Hashtbl.create 64;
      fifo_seq = 0.;
      max_lateness = neg_infinity;
      obs = None;
    }
  in
  self := Some t;
  t

let state_exn pkt =
  match pkt.Packet.state with
  | Some st -> st
  | None -> invalid_arg "Hop.receive: packet without packet state at a core-stateless hop"

let flow_exn t pkt =
  match Hashtbl.find_opt t.flows pkt.Packet.flow with
  | Some fs -> fs
  | None ->
      invalid_arg
        (Printf.sprintf "Hop.receive: flow %d not installed at stateful %s hop"
           pkt.Packet.flow
           (Fmt.str "%a" pp_discipline t.discipline))

let receive t pkt =
  (match packet_counter t with Some c -> Metrics.inc c | None -> ());
  match t.discipline with
  | Csvc ->
      let st = state_exn pkt in
      Server.enqueue t.server ~key:(Packet_state.virtual_finish st Topology.Rate_based) pkt
  | Cjvc ->
      (* Core-jitter virtual clock: non-work-conserving — a packet only
         becomes eligible at its virtual arrival time omega (the reality
         check guarantees omega >= actual arrival), then competes by
         virtual finish time.  Removes downstream jitter at the price of
         idling the link. *)
      let st = state_exn pkt in
      let key = Packet_state.virtual_finish st Topology.Rate_based in
      let eligible = st.Packet_state.omega in
      let release () = Server.enqueue t.server ~key pkt in
      if eligible <= Engine.now t.engine then release ()
      else Engine.schedule t.engine ~at:eligible release
  | Vtedf ->
      let st = state_exn pkt in
      Server.enqueue t.server ~key:(Packet_state.virtual_finish st Topology.Delay_based) pkt
  | Vc ->
      let fs = flow_exn t pkt in
      let vc = Float.max (Engine.now t.engine) fs.vclock +. (pkt.Packet.size /. fs.rate) in
      fs.vclock <- vc;
      Server.enqueue t.server ~key:vc pkt
  | Scfq ->
      let fs = flow_exn t pkt in
      (* Golestani's SCFQ: start tag = max(system vtime, flow's last finish
         tag); finish tag = start + size/rate. *)
      let start = Float.max t.vtime fs.vclock in
      let tag = start +. (pkt.Packet.size /. fs.rate) in
      fs.vclock <- tag;
      Hashtbl.replace t.scfq_tags (pkt.Packet.flow, pkt.Packet.seq) tag;
      Server.enqueue t.server ~key:tag pkt
  | Rcedf ->
      let fs = flow_exn t pkt in
      (* Per-flow rate control: packet k becomes eligible no earlier than
         [size/rate] after packet k-1 did. *)
      let eligible =
        Float.max (Engine.now t.engine) (fs.eligible +. (pkt.Packet.size /. fs.rate))
      in
      fs.eligible <- eligible;
      let key = eligible +. fs.deadline in
      let release () = Server.enqueue t.server ~key pkt in
      if eligible <= Engine.now t.engine then release ()
      else Engine.schedule t.engine ~at:eligible release
  | Fifo ->
      t.fifo_seq <- t.fifo_seq +. 1.;
      Server.enqueue t.server ~key:t.fifo_seq pkt

let install_flow t ~flow ~rate ~deadline =
  match t.discipline with
  | Vc | Scfq | Rcedf ->
      if rate <= 0. then invalid_arg "Hop.install_flow: rate must be positive";
      Hashtbl.replace t.flows flow
        { rate; deadline; vclock = neg_infinity; eligible = neg_infinity }
  | Csvc | Cjvc | Vtedf | Fifo -> ()

let remove_flow t ~flow = Hashtbl.remove t.flows flow

let flow_state_count t = Hashtbl.length t.flows

let link t = t.link

let served t = Server.served t.server

let queue_len t = Server.queue_len t.server

let max_backlog_bits t = Server.max_backlog_bits t.server

let max_lateness t = t.max_lateness
