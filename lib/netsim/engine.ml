module Heap = Bbr_util.Heap
module Metrics = Bbr_obs.Metrics

type event = { time : float; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable count : int;
  (* Cached handle on the installed registry's dispatch counter, so the
     per-event cost stays one physical-equality check.  Invalidated when a
     different registry (or none) is installed. *)
  mutable obs : (Metrics.t * Metrics.counter) option;
}

let create () =
  {
    clock = 0.;
    queue = Heap.create ~leq:(fun a b -> a.time <= b.time);
    count = 0;
    obs = None;
  }

let now t = t.clock

let register_gauges t =
  match Metrics.current () with
  | None -> ()
  | Some reg ->
      Metrics.gauge_fn reg "sim_engine_pending"
        ~help:"Events waiting in the simulator queue" (fun () ->
          float_of_int (Heap.size t.queue));
      Metrics.gauge_fn reg "sim_engine_clock_seconds"
        ~help:"Current simulated time" (fun () -> t.clock)

let dispatch_counter t =
  match (t.obs, Metrics.current ()) with
  | Some (reg, c), Some cur when reg == cur -> Some c
  | _, None ->
      t.obs <- None;
      None
  | _, Some cur ->
      let c =
        Metrics.counter cur "sim_engine_events_total"
          ~help:"Events dispatched by the simulator engine"
      in
      t.obs <- Some (cur, c);
      register_gauges t;
      Some c

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: %g is in the past (now %g)" at t.clock);
  Heap.push t.queue { time = at; action }

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.count <- t.count + 1;
      (match dispatch_counter t with Some c -> Metrics.inc c | None -> ());
      ev.action ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= stop -> ignore (step t)
        | _ ->
            t.clock <- Float.max t.clock stop;
            continue := false
      done

let pending t = Heap.size t.queue

let executed t = t.count
