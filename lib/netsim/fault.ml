module Prng = Bbr_util.Prng
module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace

type action =
  | Link_down of int
  | Link_up of int
  | Crash of string
  | Recover of string

type event = { at : float; id : int; action : action }

(* Injection ids are handed out process-wide in creation order: two events
   built at the same sim time always compare the same way, no matter how
   the lists holding them were later concatenated or reordered. *)
let next_id = ref 0

let event ~at action =
  let id = !next_id in
  incr next_id;
  { at; id; action }

let compare_events a b =
  match compare a.at b.at with 0 -> compare a.id b.id | c -> c

let pp_action ppf = function
  | Link_down id -> Fmt.pf ppf "link %d down" id
  | Link_up id -> Fmt.pf ppf "link %d up" id
  | Crash who -> Fmt.pf ppf "crash %s" who
  | Recover who -> Fmt.pf ppf "recover %s" who

let pp_event ppf e = Fmt.pf ppf "t=%.4f %a" e.at pp_action e.action

type hooks = {
  on_link_down : int -> unit;
  on_link_up : int -> unit;
  on_crash : string -> unit;
  on_recover : string -> unit;
}

let hooks ?(on_link_down = fun _ -> ()) ?(on_link_up = fun _ -> ())
    ?(on_crash = fun _ -> ()) ?(on_recover = fun _ -> ()) () =
  { on_link_down; on_link_up; on_crash; on_recover }

let action_kind = function
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Crash _ -> "crash"
  | Recover _ -> "recover"

let dispatch engine hooks action =
  let kind = action_kind action in
  Metrics.count "sim_fault_events_total" ~labels:[ ("kind", kind) ];
  if Trace.enabled () then
    Trace.event ~sim_time:(Engine.now engine) "sim.fault"
      ~attrs:[ ("kind", kind); ("what", Fmt.str "%a" pp_action action) ];
  match action with
  | Link_down id -> hooks.on_link_down id
  | Link_up id -> hooks.on_link_up id
  | Crash who -> hooks.on_crash who
  | Recover who -> hooks.on_recover who

let install engine hooks events =
  (* Coincident events dispatch in injection-id order regardless of how the
     caller assembled the list (the engine fires same-instant events in
     scheduling order, so scheduling order is dispatch order). *)
  List.iter
    (fun e ->
      Engine.schedule engine ~at:e.at (fun () -> dispatch engine hooks e.action))
    (List.stable_sort compare_events events)

let inject engine hooks action =
  let e = event ~at:(Engine.now engine) action in
  Engine.schedule engine ~at:e.at (fun () -> dispatch engine hooks e.action)

let drop prng ~p =
  if p < 0. || p >= 1. then invalid_arg "Fault.drop: p must be in [0, 1)";
  if p = 0. then fun () -> false else fun () -> Prng.float prng < p

let link_plan prng ~link_ids ~horizon ?(mtbf = horizon /. 2.) ?(mttr = horizon /. 20.) () =
  if horizon <= 0. then invalid_arg "Fault.link_plan: horizon must be positive";
  if mtbf <= 0. || mttr <= 0. then
    invalid_arg "Fault.link_plan: mtbf and mttr must be positive";
  (* Independent alternating renewal process per link: exponential time to
     failure, exponential time to repair.  Each link draws from its own
     split stream so adding a link never perturbs the others' schedules. *)
  let events =
    List.concat_map
      (fun link_id ->
        let stream = Prng.split prng in
        let rec walk t up acc =
          let dwell =
            Prng.exponential stream ~mean:(if up then mtbf else mttr)
          in
          let t = t +. dwell in
          if t >= horizon then List.rev acc
          else
            let action = if up then Link_down link_id else Link_up link_id in
            walk t (not up) (event ~at:t action :: acc)
        in
        walk 0. true [])
      link_ids
  in
  List.stable_sort compare_events events
