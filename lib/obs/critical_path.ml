(* Trace-driven critical-path analysis.

   Per trace: attribute the root span's end-to-end extent to the stages
   (span names) that spent it.  Attribution is by SELF time — a span's
   extent minus its direct children's extents clipped to it — so every
   second of the root's latency lands on exactly one named span unless
   siblings overlap (concurrent federation legs), in which case the
   overlap is attributed to each concurrent leg's own self time and the
   parent keeps only genuinely uncovered time.  The attributed fraction
   reported per trace is sum(self) / root extent, clamped to [0, 1] for
   the overlapping case.

   The axis is chosen per trace: sim time when the trace has any
   sim-extended span (overload queues, federation legs), wall time
   otherwise (a plain broker request whose stages are sim-instant). *)

type span_blame = { name : string; self : float; share : float }

type trace_report = {
  trace_id : int;
  root : string;  (* root span name *)
  total : float;  (* end-to-end extent of the root span, chosen axis *)
  sim_axis : bool;
  attributed : float;  (* fraction of [total] attributed to named spans *)
  blames : span_blame list;  (* descending self time *)
}

type stage_blame = {
  stage : string;
  total_self : float;  (* summed self time across the selected traces *)
  blame_share : float;  (* total_self / sum of selected trace totals *)
  count : int;  (* spans contributing *)
}

type report = {
  traces : trace_report list;
  stages : stage_blame list;  (* across ALL traces, descending *)
  p99_stages : stage_blame list;  (* across traces with total >= p99 *)
  p99_total : float;
  min_attributed : float;  (* worst per-trace attribution, 1. if none *)
}

let interval sim_axis (e : Trace.entry) =
  if sim_axis then (e.Trace.sim_time, e.Trace.sim_time +. e.Trace.sim_dur)
  else
    let dur = match e.Trace.payload with Trace.Span { dur } -> dur | _ -> 0. in
    (e.Trace.wall_time, e.Trace.wall_time +. dur)

let analyze_tree (tr : Trace_export.tree) =
  let sim_axis =
    List.exists (fun n -> n.Trace_export.entry.Trace.sim_dur > 0.) tr.Trace_export.spans
  in
  (* Self time per span: extent minus children clipped to the span. *)
  let self = Hashtbl.create 16 in
  let rec visit (n : Trace_export.node) =
    let lo, hi = interval sim_axis n.Trace_export.entry in
    let covered =
      List.fold_left
        (fun acc c ->
          let clo, chi = interval sim_axis c.Trace_export.entry in
          acc +. Float.max 0. (Float.min hi chi -. Float.max lo clo))
        0. n.Trace_export.children
    in
    let s = Float.max 0. (hi -. lo -. covered) in
    let name = n.Trace_export.entry.Trace.name in
    Hashtbl.replace self name
      (s +. Option.value ~default:0. (Hashtbl.find_opt self name));
    List.iter visit n.Trace_export.children
  in
  List.iter visit tr.Trace_export.roots;
  let total =
    List.fold_left
      (fun acc r ->
        let lo, hi = interval sim_axis r.Trace_export.entry in
        acc +. (hi -. lo))
      0. tr.Trace_export.roots
  in
  let root =
    match tr.Trace_export.roots with
    | r :: _ -> r.Trace_export.entry.Trace.name
    | [] -> "(no finished root)"
  in
  let blames =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) self []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (name, s) ->
           { name; self = s; share = (if total > 0. then s /. total else 0.) })
  in
  let attributed =
    if total <= 0. then 1.
    else
      Float.min 1.
        (List.fold_left (fun acc b -> acc +. b.self) 0. blames /. total)
  in
  { trace_id = tr.Trace_export.trace_id; root; total; sim_axis; attributed; blames }

let aggregate_stages traces =
  let tbl = Hashtbl.create 16 in
  let grand = ref 0. in
  List.iter
    (fun t ->
      grand := !grand +. t.total;
      List.iter
        (fun b ->
          let s, c =
            Option.value ~default:(0., 0) (Hashtbl.find_opt tbl b.name)
          in
          Hashtbl.replace tbl b.name (s +. b.self, c + 1))
        t.blames)
    traces;
  Hashtbl.fold (fun stage (s, c) acc -> (stage, s, c) :: acc) tbl []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
  |> List.map (fun (stage, total_self, count) ->
         {
           stage;
           total_self;
           blame_share = (if !grand > 0. then total_self /. !grand else 0.);
           count;
         })

let analyze es =
  let traces =
    Trace_export.assemble es
    |> List.filter_map (fun tr ->
           if tr.Trace_export.spans = [] then None else Some (analyze_tree tr))
  in
  let totals =
    List.map (fun t -> t.total) traces |> Array.of_list
  in
  let p99_total =
    if Array.length totals = 0 then 0.
    else Bbr_util.Stats.percentile totals ~p:99.
  in
  let slow = List.filter (fun t -> t.total >= p99_total) traces in
  {
    traces;
    stages = aggregate_stages traces;
    p99_stages = aggregate_stages slow;
    p99_total;
    min_attributed =
      List.fold_left (fun acc t -> Float.min acc t.attributed) 1. traces;
  }

(* --- rendering -------------------------------------------------------- *)

let pp_stage_table ppf (title, stages, top) =
  let stages =
    List.filteri (fun i _ -> i < top) stages
  in
  Fmt.pf ppf "@[<v>%s@," title;
  Fmt.pf ppf "%-32s %12s %8s %8s@," "stage" "self total" "share" "spans";
  List.iter
    (fun b ->
      Fmt.pf ppf "%-32s %10.6fs %7.2f%% %8d@," b.stage b.total_self
        (100. *. b.blame_share) b.count)
    stages;
  Fmt.pf ppf "@]"

let render ~top r =
  Fmt.str
    "@[<v>%d traces analyzed, min attribution %.1f%%, p99 end-to-end %.6fs@,@,%a@,%a@]"
    (List.length r.traces)
    (100. *. r.min_attributed)
    r.p99_total pp_stage_table
    ("critical-path blame, all traces:", r.stages, top)
    pp_stage_table
    ( Printf.sprintf "p99 blame (traces with end-to-end >= %.6fs):" r.p99_total,
      r.p99_stages,
      top )
