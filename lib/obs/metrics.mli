(** Metrics registry for the control plane: counters, gauges and
    fixed-bucket histograms, grouped into labeled families.

    A registry is explicit, inert state.  Instrumentation sites reach it
    through a process-wide slot ({!install} / {!current}); when no registry
    is installed every convenience operation ({!count}, {!set_gauge},
    {!observe_one}) is a single mutable read plus a branch, so
    un-instrumented runs pay nothing measurable.

    Family identity: a metric name names one family of one kind; children
    are addressed by their label set, {e up to label ordering} — asking for
    the same (name, labels) twice returns the same instrument.  Asking for
    an existing name with a different kind raises [Invalid_argument]. *)

type t
(** A registry. *)

type counter

type gauge

type histogram

val create : unit -> t

val install : t -> unit
(** Make [t] the process-wide registry read by {!current} and the
    convenience operations.  Replaces any previously installed registry. *)

val uninstall : unit -> unit

val current : unit -> t option

val enabled : unit -> bool
(** [current () <> None], as one cheap test. *)

(** {1 Registration}

    All registration functions create the family and/or child on first use
    and return the existing instrument afterwards. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Raises [Invalid_argument] when the addressed child is a derived gauge. *)

val gauge_fn :
  t -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** A derived gauge: [read] is evaluated at {!snapshot} time.  Registering
    the same (name, labels) again replaces the callback — harnesses
    re-register series when the underlying object is rebuilt (e.g. a
    promoted standby broker). *)

val default_buckets : float array
(** Latency buckets: 250 ns … ~4 s in powers of 4, plus the implicit
    overflow bucket. *)

val histogram :
  t ->
  ?help:string ->
  ?buckets:float array ->
  ?labels:(string * string) list ->
  string ->
  histogram
(** [buckets] (default {!default_buckets}) are strictly increasing upper
    bounds; an overflow bucket is always appended.  Raises
    [Invalid_argument] on an empty or non-increasing bucket array. *)

(** {1 Instrument operations} *)

val inc : counter -> unit

val add : counter -> float -> unit

val counter_value : counter -> float

val set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_quantile : histogram -> q:float -> float
(** Quantile estimate ([0 <= q <= 1]) by linear interpolation inside the
    bucket holding the target rank; [nan] when empty.  Accuracy is bounded
    by the bucket width — use raw trace spans when exact percentiles
    matter. *)

(** {1 Convenience: operate on the installed registry}

    No-ops (one mutable read, one branch) when no registry is installed. *)

val count : ?labels:(string * string) list -> ?by:float -> string -> unit

val set_gauge : ?labels:(string * string) list -> string -> float -> unit

val observe_one :
  ?labels:(string * string) list -> ?buckets:float array -> string -> float -> unit

(** {1 Snapshot} *)

type value =
  | Vcounter of float
  | Vgauge of float
  | Vhistogram of {
      upper : float array;  (** bucket upper bounds *)
      cumulative : int array;
          (** cumulative counts; one longer than [upper] (overflow last) *)
      sum : float;
      count : int;
    }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : string;  (** ["counter"] | ["gauge"] | ["histogram"] *)
  s_labels : (string * string) list;  (** sorted by key *)
  s_value : value;
}

val snapshot : t -> sample list
(** Every child of every family, families in registration order, children
    sorted by label set.  Derived gauges are evaluated here. *)

val clear : t -> unit
