(* Trace exporters: pure functions from trace entries to artifacts.

   - [entry_json]/[entry_of_json]: the flight recorder's lossless entry
     encoding, designed to round-trip through Bbr_util.Json so a dumped
     black box can be re-analyzed offline (bbsim trace).
   - [chrome]: Chrome trace_event JSON for about:tracing / Perfetto.
     Sim-time spans and wall-time spans live on different axes, so they
     are emitted as two processes: pid 1 is the sim-time axis, pid 2 the
     wall-time axis (re-based to the first entry so both start near 0).
     Within a process, tid = trace id: every request / federation txn
     renders on its own track.
   - [span_tree]: a self-contained text rendering of each trace's span
     tree, for terminals without a trace viewer. *)

module Json = Bbr_util.Json

(* --- lossless entry encoding ----------------------------------------- *)

let attrs_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

let entry_json (e : Trace.entry) =
  let payload =
    match e.payload with
    | Trace.Event -> [ ("kind", Json.Str "event") ]
    | Trace.Span { dur } -> [ ("kind", Json.Str "span"); ("dur", Json.Num dur) ]
    | Trace.Decision d ->
        [
          ("kind", Json.Str "decision");
          ("service", Json.Str d.Trace.service);
          ("admitted", Json.Bool d.Trace.admitted);
          ("flow", match d.Trace.flow with Some f -> Json.Num (float_of_int f) | None -> Json.Null);
          ( "reject_reason",
            match d.Trace.reject_reason with Some r -> Json.Str r | None -> Json.Null );
          ("ingress", Json.Str d.Trace.ingress);
          ("egress", Json.Str d.Trace.egress);
          ("rate", Json.Num d.Trace.rate);
        ]
  in
  let ctx =
    match e.ctx with
    | None -> []
    | Some c ->
        [
          ("trace", Json.Num (float_of_int c.Trace.trace_id));
          ("span", Json.Num (float_of_int c.Trace.span_id));
          ( "parent",
            match c.Trace.parent with
            | Some p -> Json.Num (float_of_int p)
            | None -> Json.Null );
        ]
  in
  Json.Obj
    ([
       ("seq", Json.Num (float_of_int e.seq));
       ("name", Json.Str e.name);
       ("sim_time", Json.Num e.sim_time);
       ("wall_time", Json.Num e.wall_time);
       ("sim_dur", Json.Num e.sim_dur);
     ]
    @ payload @ ctx
    @ if e.attrs = [] then [] else [ ("attrs", attrs_json e.attrs) ])

let entry_of_json j =
  let open Json in
  let ( let* ) = Option.bind in
  let* seq = member "seq" j |> Option.map (fun v -> to_int v) |> Option.join in
  let* name = member "name" j |> Option.map to_str |> Option.join in
  let* sim_time = member "sim_time" j |> Option.map to_float |> Option.join in
  let* wall_time = member "wall_time" j |> Option.map to_float |> Option.join in
  let sim_dur =
    Option.value ~default:0. (Option.join (Option.map to_float (member "sim_dur" j)))
  in
  let* kind = member "kind" j |> Option.map to_str |> Option.join in
  let* payload =
    match kind with
    | "event" -> Some Trace.Event
    | "span" ->
        let* dur = member "dur" j |> Option.map to_float |> Option.join in
        Some (Trace.Span { dur })
    | "decision" ->
        let str k = Option.join (Option.map to_str (member k j)) in
        let* service = str "service" in
        let* admitted =
          match member "admitted" j with Some (Bool b) -> Some b | _ -> None
        in
        let* ingress = str "ingress" in
        let* egress = str "egress" in
        let rate =
          Option.value ~default:0.
            (Option.join (Option.map to_float (member "rate" j)))
        in
        Some
          (Trace.Decision
             {
               Trace.service;
               admitted;
               flow = Option.join (Option.map to_int (member "flow" j));
               reject_reason = str "reject_reason";
               ingress;
               egress;
               rate;
             })
    | _ -> None
  in
  let ctx =
    match (member "trace" j, member "span" j) with
    | Some tr, Some sp -> (
        match (to_int tr, to_int sp) with
        | Some trace_id, Some span_id ->
            Some
              {
                Trace.trace_id;
                span_id;
                parent = Option.join (Option.map to_int (member "parent" j));
              }
        | _ -> None)
    | _ -> None
  in
  let attrs =
    match member "attrs" j with
    | Some (Obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
          kvs
    | _ -> []
  in
  Some { Trace.seq; name; sim_time; wall_time; payload; attrs; ctx; sim_dur }

let entries_json es = Json.Arr (List.map entry_json es)

let entries_of_json j =
  match Json.to_list j with
  | None -> None
  | Some xs ->
      let es = List.filter_map entry_of_json xs in
      if List.length es = List.length xs then Some es else None

(* --- Chrome trace_event ----------------------------------------------- *)

let wall_dur (e : Trace.entry) =
  match e.payload with Trace.Span { dur } -> dur | _ -> 0.

let chrome es =
  let wall0 =
    List.fold_left (fun acc (e : Trace.entry) -> Float.min acc e.wall_time)
      infinity es
  in
  let wall0 = if wall0 = infinity then 0. else wall0 in
  let usec v = Json.Num (v *. 1e6) in
  let tid (e : Trace.entry) =
    match e.ctx with
    | Some c -> Json.Num (float_of_int c.Trace.trace_id)
    | None -> Json.Num 0.
  in
  let args (e : Trace.entry) =
    let ids =
      match e.ctx with
      | Some c ->
          [
            ("trace", Json.Num (float_of_int c.Trace.trace_id));
            ("span", Json.Num (float_of_int c.Trace.span_id));
          ]
          @ (match c.Trace.parent with
            | Some p -> [ ("parent", Json.Num (float_of_int p)) ]
            | None -> [])
      | None -> []
    in
    let extra =
      match e.payload with
      | Trace.Decision d ->
          [
            ("service", Json.Str d.Trace.service);
            ("result", Json.Str (if d.Trace.admitted then "admit" else "reject"));
          ]
          @ (match d.Trace.reject_reason with
            | Some r -> [ ("reason", Json.Str r) ]
            | None -> [])
      | _ -> []
    in
    Json.Obj (ids @ extra @ List.map (fun (k, v) -> (k, Json.Str v)) e.attrs)
  in
  let ev (e : Trace.entry) =
    match e.payload with
    | Trace.Span { dur } ->
        (* Sim-extended spans render on the sim axis; instantaneous-in-sim
           spans (broker stages) on the wall axis, re-based. *)
        let pid, ts, d =
          if e.sim_dur > 0. then (1., usec e.sim_time, usec e.sim_dur)
          else (2., usec (e.wall_time -. wall0), usec dur)
        in
        Json.Obj
          [
            ("name", Json.Str e.name);
            ("ph", Json.Str "X");
            ("pid", Json.Num pid);
            ("tid", tid e);
            ("ts", ts);
            ("dur", d);
            ("args", args e);
          ]
    | Trace.Event | Trace.Decision _ ->
        Json.Obj
          [
            ("name", Json.Str e.name);
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("pid", Json.Num 1.);
            ("tid", tid e);
            ("ts", usec e.sim_time);
            ("args", args e);
          ]
  in
  let meta pid label =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num pid);
        ("args", Json.Obj [ ("name", Json.Str label) ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr (meta 1. "sim time" :: meta 2. "wall time (rebased)" :: List.map ev es) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_string es = Json.to_string (chrome es)

(* --- span-tree assembly ----------------------------------------------- *)

type node = {
  entry : Trace.entry;
  span_id : int;
  parent : int option;
  mutable children : node list;
}

type tree = {
  trace_id : int;
  roots : node list;  (* spans whose parent is absent from the ring *)
  spans : node list;
  orphans : int;  (* finished spans whose parent entry was not retained *)
  events : Trace.entry list;  (* non-span entries of this trace *)
}

let assemble es =
  let traces = Hashtbl.create 16 in
  let order = ref [] in
  let bucket tid =
    match Hashtbl.find_opt traces tid with
    | Some b -> b
    | None ->
        let b = (ref [], ref []) in
        Hashtbl.add traces tid b;
        order := tid :: !order;
        b
  in
  List.iter
    (fun (e : Trace.entry) ->
      match e.ctx with
      | None -> ()
      | Some c -> (
          let spans, events = bucket c.Trace.trace_id in
          match e.payload with
          | Trace.Span _ ->
              spans :=
                { entry = e; span_id = c.Trace.span_id; parent = c.Trace.parent; children = [] }
                :: !spans
          | _ -> events := e :: !events))
    es;
  List.rev_map
    (fun trace_id ->
      let spans, events = Hashtbl.find traces trace_id in
      let spans = List.rev !spans in
      let by_id = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace by_id n.span_id n) spans;
      let roots = ref [] and orphans = ref 0 in
      List.iter
        (fun n ->
          match n.parent with
          | None -> roots := n :: !roots
          | Some p -> (
              match Hashtbl.find_opt by_id p with
              | Some pn -> pn.children <- n :: pn.children
              | None ->
                  incr orphans;
                  roots := n :: !roots))
        spans;
      List.iter (fun n -> n.children <- List.rev n.children) spans;
      {
        trace_id;
        roots = List.rev !roots;
        spans;
        orphans = !orphans;
        events = List.rev !events;
      })
    !order

(* --- span-tree text rendering ----------------------------------------- *)

let span_tree es =
  let b = Buffer.create 4096 in
  let trees = assemble es in
  let wall0 =
    List.fold_left (fun acc (e : Trace.entry) -> Float.min acc e.wall_time)
      infinity es
  in
  List.iter
    (fun tr ->
      (* Sim axis when any span in the trace has sim extent, else wall. *)
      let sim_axis = List.exists (fun n -> n.entry.Trace.sim_dur > 0.) tr.spans in
      Buffer.add_string b
        (Printf.sprintf "trace %d (%d spans, %d events%s, %s axis)\n" tr.trace_id
           (List.length tr.spans) (List.length tr.events)
           (if tr.orphans > 0 then Printf.sprintf ", %d orphaned" tr.orphans
            else "")
           (if sim_axis then "sim" else "wall"));
      let rec render depth n =
        let e = n.entry in
        let lo, dur =
          if sim_axis then (e.Trace.sim_time, e.Trace.sim_dur)
          else (e.Trace.wall_time -. wall0, wall_dur e)
        in
        Buffer.add_string b
          (Printf.sprintf "%s%s  %.6f +%.6fs%s\n"
             (String.make (2 + (2 * depth)) ' ')
             e.Trace.name lo dur
             (String.concat ""
                (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) e.Trace.attrs)));
        List.iter (render (depth + 1)) n.children
      in
      List.iter (render 0) tr.roots)
    trees;
  Buffer.contents b
