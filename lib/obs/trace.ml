(* Structured event/trace layer: a fixed-capacity ring buffer of entries,
   each stamped with sim time and wall time.  Three entry payloads:

   - Event:    a point-in-time occurrence (link down, promotion, ...);
   - Span:     a named stage with its measured wall-clock duration;
   - Decision: one admission decision, the audit trail of every
               admit/reject and its reject reason.

   Like Metrics, a tracer is explicit state reached through a process-wide
   slot; with none installed every recording helper is a mutable read plus
   a branch. *)

type decision = {
  service : string;  (* "perflow" | "class" | "fixed" | caller-defined *)
  flow : int option;  (* assigned flow id on admit *)
  admitted : bool;
  reject_reason : string option;  (* None iff admitted *)
  ingress : string;
  egress : string;
  rate : float;  (* reserved rate on admit, 0 otherwise *)
}

type payload = Event | Span of { dur : float } | Decision of decision

type entry = {
  seq : int;  (* 0-based, monotonically increasing, never wraps *)
  name : string;
  sim_time : float;
  wall_time : float;
  payload : payload;
  attrs : (string * string) list;
}

type t = {
  ring : entry option array;
  mutable total : int;
  mutable sim_clock : unit -> float;
  mutable wall_clock : unit -> float;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    ring = Array.make capacity None;
    total = 0;
    sim_clock = (fun () -> 0.);
    wall_clock = Unix.gettimeofday;
  }

let slot : t option ref = ref None

let install t = slot := Some t

let uninstall () = slot := None

let current () = !slot

let enabled () = !slot <> None

let set_sim_clock t f = t.sim_clock <- f

let set_wall_clock t f = t.wall_clock <- f

let capacity t = Array.length t.ring

let total t = t.total

let length t = min t.total (Array.length t.ring)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.total <- 0

let record t ?sim_time ?(attrs = []) ~name payload =
  let sim_time = match sim_time with Some s -> s | None -> t.sim_clock () in
  let e =
    {
      seq = t.total;
      name;
      sim_time;
      wall_time = t.wall_clock ();
      payload;
      attrs;
    }
  in
  t.ring.(t.total mod Array.length t.ring) <- Some e;
  t.total <- t.total + 1

let entries t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod cap) with Some e -> e | None -> assert false)

(* --- recording helpers on the installed tracer ----------------------- *)

let event ?sim_time ?attrs name =
  match !slot with None -> () | Some t -> record t ?sim_time ?attrs ~name Event

let span_record ?sim_time ?attrs name ~dur =
  match !slot with
  | None -> ()
  | Some t -> record t ?sim_time ?attrs ~name (Span { dur })

let decision ?sim_time ?attrs (d : decision) =
  match !slot with
  | None -> ()
  | Some t -> record t ?sim_time ?attrs ~name:"bb.decision" (Decision d)

let now_wall () =
  match !slot with Some t -> t.wall_clock () | None -> Unix.gettimeofday ()

let span ?sim_time ?attrs name f =
  match !slot with
  | None -> f ()
  | Some t ->
      let t0 = t.wall_clock () in
      let finally () =
        record t ?sim_time ?attrs ~name (Span { dur = t.wall_clock () -. t0 })
      in
      Fun.protect ~finally f

(* --- extraction ------------------------------------------------------ *)

let durations t ~name =
  entries t
  |> List.filter_map (fun e ->
         match e.payload with
         | Span { dur } when e.name = name -> Some dur
         | _ -> None)
  |> Array.of_list

let span_names t =
  entries t
  |> List.filter_map (fun e -> match e.payload with Span _ -> Some e.name | _ -> None)
  |> List.sort_uniq compare

let span_stats t =
  List.map
    (fun name ->
      let acc = Bbr_util.Stats.create () in
      Array.iter (Bbr_util.Stats.add acc) (durations t ~name);
      (name, acc))
    (span_names t)

let decisions t =
  entries t
  |> List.filter_map (fun e ->
         match e.payload with Decision d -> Some (e, d) | _ -> None)

let pp_payload ppf = function
  | Event -> Fmt.string ppf "event"
  | Span { dur } -> Fmt.pf ppf "span dur=%.3e s" dur
  | Decision d ->
      Fmt.pf ppf "decision %s %s%a %s->%s"
        d.service
        (if d.admitted then "admit" else "reject")
        Fmt.(option (fun ppf r -> Fmt.pf ppf " (%s)" r))
        d.reject_reason d.ingress d.egress;
      if d.admitted then
        Fmt.pf ppf " flow=%a rate=%.1f" Fmt.(option int) d.flow d.rate

let pp_entry ppf e =
  Fmt.pf ppf "#%d t=%.6f %s: %a" e.seq e.sim_time e.name pp_payload e.payload;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%s" k v) e.attrs

let dump t = Fmt.str "%a" Fmt.(list ~sep:(any "@\n") pp_entry) (entries t)
