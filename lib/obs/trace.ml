(* Structured event/trace layer: a fixed-capacity ring buffer of entries,
   each stamped with sim time and wall time.  Three entry payloads:

   - Event:    a point-in-time occurrence (link down, promotion, ...);
   - Span:     a named stage with its measured wall-clock duration;
   - Decision: one admission decision, the audit trail of every
               admit/reject and its reject reason.

   Entries optionally carry a causal context — (trace id, span id,
   parent span id) — so the spans of one request or one federation
   transaction assemble into a tree.  Spans are either scoped (the
   [span]/[with_span] combinators, for work that completes inside one
   call frame) or explicit handles ([start_span]/[finish_span], for work
   that crosses sim-time boundaries: an overload queue wait, a 2PC leg
   whose reply arrives in a later engine callback).  A finished span is
   recorded as ONE entry stamped with its start times, carrying both its
   wall duration and its sim-time duration.

   Like Metrics, a tracer is explicit state reached through a process-wide
   slot; with none installed every recording helper is a mutable read plus
   a branch. *)

type decision = {
  service : string;  (* "perflow" | "class" | "fixed" | caller-defined *)
  flow : int option;  (* assigned flow id on admit *)
  admitted : bool;
  reject_reason : string option;  (* None iff admitted *)
  ingress : string;
  egress : string;
  rate : float;  (* reserved rate on admit, 0 otherwise *)
}

type payload = Event | Span of { dur : float } | Decision of decision

type ctx = { trace_id : int; span_id : int; parent : int option }

type entry = {
  seq : int;  (* 0-based, monotonically increasing, never wraps *)
  name : string;
  sim_time : float;
  wall_time : float;
  payload : payload;
  attrs : (string * string) list;
  ctx : ctx option;
  sim_dur : float;  (* sim-time extent of a finished span; 0 elsewhere *)
}

(* The ring is stored as flat parallel arrays rather than an array of
   [entry] records: recording is the per-request hot path and a record
   ring retains every entry, so each one is promoted out of the minor
   heap and the whole ring is re-marked by every major GC cycle.  With
   unboxed float/int columns an entry write allocates nothing (the
   name is a shared pointer; attrs are usually [[]]); [entry] records
   are materialized only on extraction.  [e_trace = -1] encodes "no
   ctx", [e_parent = -1] a root span; [e_tag] is 0 event / 1 span /
   2 decision. *)
type t = {
  cap : int;
  e_seq : int array;  (* original seq — append keeps the source's *)
  e_name : string array;
  e_sim : float array;
  e_wall : float array;
  e_sim_dur : float array;
  e_dur : float array;  (* span wall duration; meaningful iff tag = 1 *)
  e_tag : int array;
  e_trace : int array;
  e_span : int array;
  e_parent : int array;
  e_attrs : (string * string) list array;
  e_decision : decision option array;  (* Some iff tag = 2 *)
  mutable total : int;
  mutable sim_clock : unit -> float;
  mutable wall_clock : unit -> float;
  mutable next_trace : int;
  mutable next_span : int;
  mutable ambient : span list;  (* innermost first *)
  mutable tee : (entry -> unit) option;  (* flight recorder tap *)
}

and span = {
  sp_tracer : t option;  (* None: the null handle, every op a no-op *)
  sp_trace : int;
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_start_sim : float;
  sp_start_wall : float;
  sp_attrs : (string * string) list;
  mutable sp_finished : bool;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    cap = capacity;
    e_seq = Array.make capacity 0;
    e_name = Array.make capacity "";
    e_sim = Array.make capacity 0.;
    e_wall = Array.make capacity 0.;
    e_sim_dur = Array.make capacity 0.;
    e_dur = Array.make capacity 0.;
    e_tag = Array.make capacity 0;
    e_trace = Array.make capacity (-1);
    e_span = Array.make capacity 0;
    e_parent = Array.make capacity (-1);
    e_attrs = Array.make capacity [];
    e_decision = Array.make capacity None;
    total = 0;
    sim_clock = (fun () -> 0.);
    wall_clock = Clock.wall;
    next_trace = 0;
    next_span = 0;
    ambient = [];
    tee = None;
  }

(* Domain-local, like the metrics slot: a tracer installed on the main
   domain is invisible to broker shard domains, so recording helpers never
   touch a ring another domain is writing. *)
let slot_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get slot_key

let install t = slot () := Some t

let uninstall () = slot () := None

let current () = !(slot ())

let enabled () = !(slot ()) <> None

let set_sim_clock t f = t.sim_clock <- f

let set_wall_clock t f = t.wall_clock <- f

let set_tee t f = t.tee <- f

let capacity t = t.cap

let total t = t.total

let length t = min t.total t.cap

let evicted t = t.total - length t

let clear t =
  (* Only the pointer columns need clearing (so dead names/attrs are not
     retained); the numeric columns are overwritten before being read. *)
  Array.fill t.e_name 0 t.cap "";
  Array.fill t.e_attrs 0 t.cap [];
  Array.fill t.e_decision 0 t.cap None;
  t.total <- 0

(* Materialize the entry at ring slot [j] back into a record.  [j] is
   always [_ mod cap], so the unsafe accesses are in bounds. *)
let get t j =
  let payload =
    match Array.unsafe_get t.e_tag j with
    | 0 -> Event
    | 1 -> Span { dur = Array.unsafe_get t.e_dur j }
    | _ -> (
        match Array.unsafe_get t.e_decision j with
        | Some d -> Decision d
        | None -> Event)
  in
  let ctx =
    let tr = Array.unsafe_get t.e_trace j in
    if tr < 0 then None
    else
      Some
        {
          trace_id = tr;
          span_id = Array.unsafe_get t.e_span j;
          parent =
            (let p = Array.unsafe_get t.e_parent j in
             if p < 0 then None else Some p);
        }
  in
  {
    seq = Array.unsafe_get t.e_seq j;
    name = Array.unsafe_get t.e_name j;
    sim_time = Array.unsafe_get t.e_sim j;
    wall_time = Array.unsafe_get t.e_wall j;
    payload;
    attrs = Array.unsafe_get t.e_attrs j;
    ctx;
    sim_dur = Array.unsafe_get t.e_sim_dur j;
  }

(* The raw write: every column as a scalar, so the hot span path can
   record without building payload/ctx intermediates.  [tr = -1] means
   no ctx; [par = -1] a root span. *)
let put_raw t ~seq ~name ~sim_time ~wall_time ~attrs ~sim_dur ~tag ~dur ~tr
    ~spid ~par dec =
  let j = t.total mod t.cap in
  Array.unsafe_set t.e_seq j seq;
  Array.unsafe_set t.e_name j name;
  Array.unsafe_set t.e_sim j sim_time;
  Array.unsafe_set t.e_wall j wall_time;
  Array.unsafe_set t.e_sim_dur j sim_dur;
  Array.unsafe_set t.e_attrs j attrs;
  Array.unsafe_set t.e_tag j tag;
  Array.unsafe_set t.e_dur j dur;
  Array.unsafe_set t.e_trace j tr;
  Array.unsafe_set t.e_span j spid;
  Array.unsafe_set t.e_parent j par;
  if Array.unsafe_get t.e_decision j != dec then
    Array.unsafe_set t.e_decision j dec;
  t.total <- t.total + 1;
  match t.tee with None -> () | Some f -> f (get t j)

let put t ~seq ~name ~sim_time ~wall_time ~attrs ~ctx ~sim_dur payload =
  let tag, dur, dec =
    match payload with
    | Event -> (0, 0., None)
    | Span { dur } -> (1, dur, None)
    | Decision d -> (2, 0., Some d)
  in
  let tr, spid, par =
    match ctx with
    | None -> (-1, 0, -1)
    | Some c ->
        (c.trace_id, c.span_id, match c.parent with Some p -> p | None -> -1)
  in
  put_raw t ~seq ~name ~sim_time ~wall_time ~attrs ~sim_dur ~tag ~dur ~tr
    ~spid ~par dec

let record t ?sim_time ?wall_time ?(attrs = []) ?ctx ?(sim_dur = 0.) ~name
    payload =
  let sim_time = match sim_time with Some s -> s | None -> t.sim_clock () in
  let wall_time =
    match wall_time with Some w -> w | None -> t.wall_clock ()
  in
  put t ~seq:t.total ~name ~sim_time ~wall_time ~attrs ~ctx ~sim_dur payload

let append t (e : entry) =
  (* Used by the flight recorder's tee: keep the source entry (and its
     seq) intact, only re-home it in this ring. *)
  let tee = t.tee in
  t.tee <- None;
  put t ~seq:e.seq ~name:e.name ~sim_time:e.sim_time ~wall_time:e.wall_time
    ~attrs:e.attrs ~ctx:e.ctx ~sim_dur:e.sim_dur e.payload;
  t.tee <- tee

let entries t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i -> get t ((first + i) mod t.cap))

(* --- span contexts ---------------------------------------------------- *)

let null_span =
  {
    sp_tracer = None;
    sp_trace = 0;
    sp_id = 0;
    sp_parent = None;
    sp_name = "";
    sp_start_sim = 0.;
    sp_start_wall = 0.;
    sp_attrs = [];
    sp_finished = true;
  }

let is_null sp = sp.sp_tracer = None

let span_ctx sp =
  match sp.sp_tracer with
  | None -> None
  | Some _ ->
      Some { trace_id = sp.sp_trace; span_id = sp.sp_id; parent = sp.sp_parent }

let ambient () = match !(slot ()) with Some t -> t.ambient | None -> []

let ambient_span () =
  match !(slot ()) with
  | Some t -> ( match t.ambient with sp :: _ -> Some sp | [] -> None)
  | None -> None

let start_span ?sim_time ?wall_time ?(attrs = []) ?parent name =
  match !(slot ()) with
  | None -> null_span
  | Some t ->
      let parent =
        match parent with
        | Some p when not (is_null p) -> Some p
        | Some _ -> None
        | None -> ( match t.ambient with sp :: _ -> Some sp | [] -> None)
      in
      let trace_id, parent_id =
        match parent with
        | Some p -> (p.sp_trace, Some p.sp_id)
        | None ->
            let id = t.next_trace in
            t.next_trace <- id + 1;
            (id, None)
      in
      let id = t.next_span in
      t.next_span <- id + 1;
      {
        sp_tracer = Some t;
        sp_trace = trace_id;
        sp_id = id;
        sp_parent = parent_id;
        sp_name = name;
        sp_start_sim =
          (match sim_time with Some s -> s | None -> t.sim_clock ());
        sp_start_wall =
          (match wall_time with Some w -> w | None -> t.wall_clock ());
        sp_attrs = attrs;
        sp_finished = false;
      }

let finish_span ?sim_time ?wall_time ?(attrs = []) sp =
  match sp.sp_tracer with
  | None -> ()
  | Some t ->
      if not sp.sp_finished then begin
        sp.sp_finished <- true;
        let end_sim =
          match sim_time with Some s -> s | None -> t.sim_clock ()
        in
        let end_wall =
          match wall_time with Some w -> w | None -> t.wall_clock ()
        in
        let attrs =
          match (sp.sp_attrs, attrs) with
          | [], a -> a
          | a, [] -> a
          | a, b -> a @ b
        in
        put_raw t ~seq:t.total ~name:sp.sp_name ~sim_time:sp.sp_start_sim
          ~wall_time:sp.sp_start_wall ~attrs
          ~sim_dur:(Float.max 0. (end_sim -. sp.sp_start_sim))
          ~tag:1
          ~dur:(Float.max 0. (end_wall -. sp.sp_start_wall))
          ~tr:sp.sp_trace ~spid:sp.sp_id
          ~par:(match sp.sp_parent with Some p -> p | None -> -1)
          None
      end

let push_ambient sp =
  match sp.sp_tracer with
  | None -> ()
  | Some t -> t.ambient <- sp :: t.ambient

let pop_ambient sp =
  match sp.sp_tracer with
  | None -> ()
  | Some t ->
      (* Robust to an unbalanced stack (a clear in between): drop
         everything up to and including [sp]. *)
      let rec go = function
        | x :: rest when x == sp -> rest
        | _ :: rest -> go rest
        | [] -> []
      in
      t.ambient <- go t.ambient

let with_ambient sp f =
  match sp.sp_tracer with
  | None -> f ()
  | Some _ -> (
      push_ambient sp;
      match f () with
      | r ->
          pop_ambient sp;
          r
      | exception e ->
          pop_ambient sp;
          raise e)

let with_span ?sim_time ?attrs ?parent name f =
  match !(slot ()) with
  | None -> f null_span
  | Some _ -> (
      let sp = start_span ?sim_time ?attrs ?parent name in
      push_ambient sp;
      match f sp with
      | r ->
          pop_ambient sp;
          finish_span sp;
          r
      | exception e ->
          pop_ambient sp;
          finish_span sp;
          raise e)

(* --- recording helpers on the installed tracer ----------------------- *)

let ctx_for t parent =
  match parent with
  | Some p when not (is_null p) ->
      Some { trace_id = p.sp_trace; span_id = p.sp_id; parent = p.sp_parent }
  | Some _ -> None
  | None -> (
      match t.ambient with
      | sp :: _ ->
          Some { trace_id = sp.sp_trace; span_id = sp.sp_id; parent = sp.sp_parent }
      | [] -> None)

let event ?sim_time ?attrs ?parent name =
  match !(slot ()) with
  | None -> ()
  | Some t -> record t ?sim_time ?attrs ?ctx:(ctx_for t parent) ~name Event

let span_record ?sim_time ?attrs ?parent name ~dur =
  match !(slot ()) with
  | None -> ()
  | Some t ->
      record t ?sim_time ?attrs ?ctx:(ctx_for t parent) ~name (Span { dur })

let decision ?sim_time ?attrs ?parent (d : decision) =
  match !(slot ()) with
  | None -> ()
  | Some t ->
      record t ?sim_time ?attrs
        ?ctx:(ctx_for t parent)
        ~name:"bb.decision" (Decision d)

let now_wall () =
  match !(slot ()) with Some t -> t.wall_clock () | None -> Clock.wall ()

let span ?sim_time ?attrs name f =
  match !(slot ()) with
  | None -> f ()
  | Some _ -> with_span ?sim_time ?attrs name (fun _ -> f ())

(* --- extraction ------------------------------------------------------ *)

let durations t ~name =
  entries t
  |> List.filter_map (fun e ->
         match e.payload with
         | Span { dur } when e.name = name -> Some dur
         | _ -> None)
  |> Array.of_list

let span_names t =
  entries t
  |> List.filter_map (fun e -> match e.payload with Span _ -> Some e.name | _ -> None)
  |> List.sort_uniq compare

let span_stats t =
  List.map
    (fun name ->
      let acc = Bbr_util.Stats.create () in
      Array.iter (Bbr_util.Stats.add acc) (durations t ~name);
      (name, acc))
    (span_names t)

let decisions t =
  entries t
  |> List.filter_map (fun e ->
         match e.payload with Decision d -> Some (e, d) | _ -> None)

let pp_payload ppf = function
  | Event -> Fmt.string ppf "event"
  | Span { dur } -> Fmt.pf ppf "span dur=%.3e s" dur
  | Decision d ->
      Fmt.pf ppf "decision %s %s%a %s->%s"
        d.service
        (if d.admitted then "admit" else "reject")
        Fmt.(option (fun ppf r -> Fmt.pf ppf " (%s)" r))
        d.reject_reason d.ingress d.egress;
      if d.admitted then
        Fmt.pf ppf " flow=%a rate=%.1f" Fmt.(option int) d.flow d.rate

let pp_entry ppf e =
  Fmt.pf ppf "#%d t=%.6f %s: %a" e.seq e.sim_time e.name pp_payload e.payload;
  (match e.ctx with
  | Some c ->
      Fmt.pf ppf " trace=%d span=%d" c.trace_id c.span_id;
      Option.iter (Fmt.pf ppf " parent=%d") c.parent
  | None -> ());
  if e.sim_dur > 0. then Fmt.pf ppf " sim_dur=%.6f" e.sim_dur;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%s" k v) e.attrs

let dump t = Fmt.str "%a" Fmt.(list ~sep:(any "@\n") pp_entry) (entries t)
