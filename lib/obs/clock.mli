(** Allocation-free wall clock.

    [wall ()] is [Unix.gettimeofday] (same epoch, same unit) without the
    boxed-float allocation: a [@@noalloc] stub over [clock_gettime].
    The tracer's default wall clock. *)

val wall : unit -> float
