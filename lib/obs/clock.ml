(* See clock_stubs.c: an allocation-free wall-clock read for the span
   hot path, epoch-compatible with Unix.gettimeofday. *)

external wall : unit -> (float[@unboxed])
  = "bbr_clock_wall" "bbr_clock_wall_unboxed"
[@@noalloc]
