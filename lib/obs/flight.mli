(** Black-box flight recorder: a secondary, larger ring mirroring every
    entry recorded on the installed tracer, dumped together with the
    metrics snapshot and the MIB digest as one JSON "black box".

    Arm once per run ({!arm} installs a tee on the installed tracer).
    Anomaly detectors — audit violations, failed recovery digests,
    federation compensation storms — call {!trigger}: the {e first}
    trigger writes the box (the state at the first anomaly is the
    valuable one); later triggers are counted and annotated as
    [bb.flight.trigger] trace events but do not overwrite it.  {!final}
    writes an end-of-run box only if no anomaly already did.

    The MIB digest supplier is injected as a closure because lib/obs
    sits below the broker. *)

type t

val default_capacity : int
(** 65536 entries — 16x the primary ring. *)

val arm : ?capacity:int -> out:string -> unit -> t
(** Create the recorder, tee the installed tracer into it, and make it
    the process-wide armed recorder.  Call {e after} installing the
    tracer. *)

val armed : unit -> t option

val disarm : unit -> unit
(** Remove the tee and clear the armed slot (the recorder keeps its
    entries). *)

val set_digest : (unit -> string option) -> unit
(** Supply the MIB digest closure on the armed recorder. *)

val dump : t -> reason:string -> string
(** Write the black box to the recorder's path unconditionally and
    return the path. *)

val trigger : reason:string -> unit
(** Anomaly hook: no-op when not armed; otherwise count, annotate the
    trace, and write the box if this is the first trigger. *)

val final : t -> string
(** Write an ["end-of-run"] box unless a trigger already wrote one;
    returns the path holding the box. *)

(** {1 Reading a black box back} *)

type dump_contents = {
  reason : string;
  triggers : int;
  mib_digest : string option;
  entries : Trace.entry list;
  dump_evicted : int;  (** entries the flight ring itself evicted *)
}

val read_file : string -> string
(** Raises [Sys_error] on I/O failure. *)

val parse : string -> (dump_contents, string) result
