(** Trace exporters: pure functions from trace entries to artifacts.

    [entry_json]/[entry_of_json] are the flight recorder's lossless
    entry encoding (round-trips through {!Bbr_util.Json}); [chrome]
    renders entries as Chrome [trace_event] JSON loadable in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}; [span_tree]
    is a terminal-friendly text rendering of each trace's span tree. *)

val entry_json : Trace.entry -> Bbr_util.Json.t

val entry_of_json : Bbr_util.Json.t -> Trace.entry option
(** [None] if the value does not decode to an entry. *)

val entries_json : Trace.entry list -> Bbr_util.Json.t

val entries_of_json : Bbr_util.Json.t -> Trace.entry list option
(** All-or-nothing: [None] if any element fails to decode. *)

val chrome : Trace.entry list -> Bbr_util.Json.t
(** Chrome trace_event document.  Two processes: pid 1 carries spans
    with sim-time extent (ts/dur in sim microseconds) plus all instant
    events and decisions; pid 2 carries sim-instantaneous spans (broker
    stages) on the wall axis, re-based to the earliest entry.  Within a
    process, tid = trace id, so each request / federation transaction
    renders on its own track. *)

val chrome_string : Trace.entry list -> string

(** {1 Span-tree assembly} — shared with {!Critical_path}. *)

type node = {
  entry : Trace.entry;
  span_id : int;
  parent : int option;
  mutable children : node list;
}

type tree = {
  trace_id : int;
  roots : node list;
      (** spans with no parent, plus orphans whose parent was evicted *)
  spans : node list;  (** every finished span of the trace, ring order *)
  orphans : int;
      (** finished spans whose parent entry was not retained (eviction
          or still-open parent) *)
  events : Trace.entry list;  (** non-span entries of this trace *)
}

val assemble : Trace.entry list -> tree list
(** Group entries by trace id and link spans to their parents.  Entries
    without a context are ignored.  Trace order follows first
    appearance; children are in ring order. *)

val span_tree : Trace.entry list -> string
(** One indented block per trace.  Traces containing any sim-extended
    span render on the sim axis; purely instantaneous traces (plain
    broker requests) on the re-based wall axis. *)
