(** Sim-time timeseries sampler.

    Where a {!Metrics} snapshot is the control plane's state {e now}, the
    sampler records its history: every [interval] simulated seconds it
    reads each registered series thunk (per-link utilization, flows per
    class, pending COPS retransmissions, ...) and appends a
    [(sim_time, value)] point.

    The sampler is clock-agnostic: [now]/[schedule] are typically
    [Engine.now] and [Engine.schedule_after], but any timer service (e.g.
    the broker's time hooks) works. *)

type t

val create :
  ?interval:float ->
  now:(unit -> float) ->
  schedule:(float -> (unit -> unit) -> unit) ->
  unit ->
  t
(** [interval] defaults to 1 simulated second; must be positive. *)

val add_series :
  t -> ?labels:(string * string) list -> name:string -> (unit -> float) -> unit

val start : t -> unit
(** Begin periodic sampling; the first sample lands one interval in.
    Idempotent while running. *)

val stop : t -> unit
(** The pending tick becomes a no-op; {!start} may be called again. *)

val sample : t -> unit
(** Take one sample of every series immediately. *)

val interval : t -> float

val samples : t -> int
(** Sampling instants so far (manual {!sample} calls included). *)

val series : t -> (string * (string * string) list * (float * float) list) list
(** Per series, in registration order: points oldest first. *)

val to_csv : t -> string
(** [series,labels,sim_time,value] rows, header included. *)
