/* Fast wall clock for the trace hot path.

   Unix.gettimeofday costs a boxed-float allocation (caml_copy_double)
   on every read; span recording reads the clock up to a dozen times per
   admission request.  The native-code stub below is [@@noalloc] with an
   unboxed float return, so a read is just the vDSO clock_gettime call.
   CLOCK_REALTIME keeps the epoch semantics of gettimeofday (exporters
   rebase but flight dumps carry absolute stamps). */

#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

double bbr_clock_wall_unboxed(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_REALTIME, &ts);
  return (double) ts.tv_sec + (double) ts.tv_nsec * 1e-9;
}

CAMLprim value bbr_clock_wall(value unit)
{
  return caml_copy_double(bbr_clock_wall_unboxed(unit));
}
