(* Exporters: render a Metrics registry snapshot as Prometheus text
   exposition format or as a JSON document.  Pure functions of the
   snapshot — no I/O here. *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* --- Prometheus text format ------------------------------------------ *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let le_value v = if v = infinity then "+Inf" else fnum v

let prometheus samples =
  let b = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s : Metrics.sample) ->
      if not (Hashtbl.mem seen_header s.Metrics.s_name) then begin
        Hashtbl.replace seen_header s.Metrics.s_name ();
        if s.Metrics.s_help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" s.Metrics.s_name s.Metrics.s_help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.Metrics.s_name s.Metrics.s_kind)
      end;
      match s.Metrics.s_value with
      | Metrics.Vcounter v | Metrics.Vgauge v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.Metrics.s_name
               (label_block s.Metrics.s_labels)
               (fnum v))
      | Metrics.Vhistogram { upper; cumulative; sum; count } ->
          let n = Array.length upper in
          for i = 0 to n do
            let le = if i = n then infinity else upper.(i) in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.Metrics.s_name
                 (label_block (s.Metrics.s_labels @ [ ("le", le_value le) ]))
                 cumulative.(i))
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" s.Metrics.s_name
               (label_block s.Metrics.s_labels)
               (fnum sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.Metrics.s_name
               (label_block s.Metrics.s_labels)
               count))
    samples;
  Buffer.contents b

(* --- JSON ------------------------------------------------------------ *)

let json_string v =
  let b = Buffer.create (String.length v + 2) in
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"+Inf\""
  else if v = neg_infinity then "\"-Inf\""
  else fnum v

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let json_sample (s : Metrics.sample) =
  let common =
    Printf.sprintf "\"name\":%s,\"kind\":%s,\"labels\":%s"
      (json_string s.Metrics.s_name)
      (json_string s.Metrics.s_kind)
      (json_labels s.Metrics.s_labels)
  in
  match s.Metrics.s_value with
  | Metrics.Vcounter v | Metrics.Vgauge v ->
      Printf.sprintf "{%s,\"value\":%s}" common (json_float v)
  | Metrics.Vhistogram { upper; cumulative; sum; count } ->
      let buckets =
        List.init (Array.length cumulative) (fun i ->
            let le = if i = Array.length upper then infinity else upper.(i) in
            Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) cumulative.(i))
      in
      Printf.sprintf "{%s,\"sum\":%s,\"count\":%d,\"buckets\":[%s]}" common
        (json_float sum) count
        (String.concat "," buckets)

let json samples =
  "{\"metrics\":[" ^ String.concat "," (List.map json_sample samples) ^ "]}"

(* --- registry front ends --------------------------------------------- *)

let to_prometheus t = prometheus (Metrics.snapshot t)

let to_json t = json (Metrics.snapshot t)

let write ~path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  end
