(* Black-box flight recorder.

   A secondary, larger trace ring that mirrors every entry recorded on
   the installed tracer (via Trace.set_tee), plus a dump that snapshots
   trace + metrics + MIB digest into one JSON file.  The recorder is
   armed once per run; anomaly detectors call [trigger] — the FIRST
   trigger writes the black box (the state at the first anomaly is the
   valuable one), later triggers are counted and annotated in the trace
   but do not overwrite it.  [final] writes an end-of-run box only if no
   anomaly already did.

   The digest supplier is injected as a closure because lib/obs sits
   below the broker: bbsim / the soaks pass [fun () -> Some (mib digest)]
   when they have a broker at hand. *)

module Json = Bbr_util.Json

type t = {
  ring : Trace.t;
  out : string;
  mutable digest : unit -> string option;
  mutable triggers : int;
  mutable dumped : string option;  (* reason of the dump already written *)
}

let default_capacity = 65536

let slot : t option ref = ref None

let armed () = !slot

let disarm () =
  (match (!slot, Trace.current ()) with
  | Some _, Some tr -> Trace.set_tee tr None
  | _ -> ());
  slot := None

let arm ?(capacity = default_capacity) ~out () =
  let ring = Trace.create ~capacity () in
  let t = { ring; out; digest = (fun () -> None); triggers = 0; dumped = None } in
  (match Trace.current () with
  | Some tr -> Trace.set_tee tr (Some (Trace.append ring))
  | None -> ());
  slot := Some t;
  t

let set_digest f = match !slot with None -> () | Some t -> t.digest <- f

let box t ~reason =
  let sim_time, wall_time =
    match List.rev (Trace.entries t.ring) with
    | last :: _ -> (last.Trace.sim_time, last.Trace.wall_time)
    | [] -> (0., Trace.now_wall ())
  in
  let metrics =
    match Metrics.current () with
    | Some reg -> (
        match Json.of_string_opt (Exporter.to_json reg) with
        | Some j -> j
        | None -> Json.Null)
    | None -> Json.Null
  in
  let primary_evicted =
    match Trace.current () with Some tr -> Trace.evicted tr | None -> 0
  in
  Json.Obj
    [
      ("kind", Json.Str "bbr-flight-recorder");
      ("reason", Json.Str reason);
      ("triggers", Json.Num (float_of_int t.triggers));
      ("sim_time", Json.Num sim_time);
      ("wall_time", Json.Num wall_time);
      ("entries", Json.Num (float_of_int (Trace.length t.ring)));
      ("evicted", Json.Num (float_of_int (Trace.evicted t.ring)));
      ("primary_evicted", Json.Num (float_of_int primary_evicted));
      ( "mib_digest",
        match t.digest () with Some d -> Json.Str d | None -> Json.Null );
      ("trace", Trace_export.entries_json (Trace.entries t.ring));
      ("metrics", metrics);
    ]

let write t ~reason =
  Exporter.write ~path:t.out (Json.to_string (box t ~reason) ^ "\n");
  t.dumped <- Some reason;
  t.out

let dump t ~reason = write t ~reason

let trigger ~reason =
  match !slot with
  | None -> ()
  | Some t ->
      t.triggers <- t.triggers + 1;
      Trace.event ~attrs:[ ("reason", reason) ] "bb.flight.trigger";
      if t.dumped = None then ignore (write t ~reason)

let final t = match t.dumped with Some _ -> t.out | None -> write t ~reason:"end-of-run"

(* --- reading a black box back ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type dump_contents = {
  reason : string;
  triggers : int;
  mib_digest : string option;
  entries : Trace.entry list;
  dump_evicted : int;
}

let parse s =
  match Json.of_string_opt s with
  | None -> Error "not valid JSON"
  | Some j -> (
      match Json.member "kind" j with
      | Some (Json.Str "bbr-flight-recorder") -> (
          match Option.map Trace_export.entries_of_json (Json.member "trace" j) with
          | Some (Some entries) ->
              Ok
                {
                  reason =
                    Option.value ~default:""
                      (Option.join (Option.map Json.to_str (Json.member "reason" j)));
                  triggers =
                    Option.value ~default:0
                      (Option.join (Option.map Json.to_int (Json.member "triggers" j)));
                  mib_digest =
                    Option.join (Option.map Json.to_str (Json.member "mib_digest" j));
                  entries;
                  dump_evicted =
                    Option.value ~default:0
                      (Option.join (Option.map Json.to_int (Json.member "evicted" j)));
                }
          | _ -> Error "trace array failed to decode")
      | _ -> Error "not a bbr-flight-recorder dump")
