(* Sim-time timeseries sampler: reads a set of named series (thunks) on a
   fixed sim-time period, driven by whatever timer service the caller has
   (the netsim engine, the broker's time hooks, ...).  Complements the
   registry: a snapshot is the state *now*, the sampler is its history. *)

type series = {
  name : string;
  labels : (string * string) list;
  read : unit -> float;
  mutable points : (float * float) list;  (* newest first *)
}

type t = {
  interval : float;
  now : unit -> float;
  schedule : float -> (unit -> unit) -> unit;
  mutable series : series list;  (* reversed registration order *)
  mutable running : bool;
  mutable samples : int;
}

let create ?(interval = 1.0) ~now ~schedule () =
  if interval <= 0. then invalid_arg "Sampler.create: interval must be positive";
  { interval; now; schedule; series = []; running = false; samples = 0 }

let add_series t ?(labels = []) ~name read =
  t.series <- { name; labels; read; points = [] } :: t.series

let sample t =
  let at = t.now () in
  t.samples <- t.samples + 1;
  List.iter (fun s -> s.points <- (at, s.read ()) :: s.points) t.series

let start t =
  if not t.running then begin
    t.running <- true;
    let rec tick () =
      if t.running then begin
        sample t;
        t.schedule t.interval tick
      end
    in
    (* First sample at one interval, not at start: series hooked to a
       fresh broker all read 0 at time 0. *)
    t.schedule t.interval tick
  end

let stop t = t.running <- false

let interval t = t.interval

let samples t = t.samples

let series t =
  List.rev_map (fun s -> (s.name, s.labels, List.rev s.points)) t.series

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "series,labels,sim_time,value\n";
  List.iter
    (fun (name, labels, points) ->
      let l =
        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      in
      List.iter
        (fun (at, v) ->
          Buffer.add_string b (Printf.sprintf "%s,%s,%.6f,%.9g\n" name l at v))
        points)
    (series t);
  Buffer.contents b
