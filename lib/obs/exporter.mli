(** Exporters: render a {!Metrics} snapshot in Prometheus text exposition
    format or as one JSON document.  Pure string builders — the only I/O
    lives in {!write}. *)

val prometheus : Metrics.sample list -> string
(** [# HELP] / [# TYPE] headers once per family, then one line per child;
    histograms expand to [_bucket{le=...}] (cumulative, ending at
    [le="+Inf"]), [_sum] and [_count]. *)

val json : Metrics.sample list -> string
(** [{"metrics":[{"name":…,"kind":…,"labels":{…},"value":…}, …]}];
    histograms carry ["sum"], ["count"] and a cumulative ["buckets"]
    array.  Non-finite numbers are encoded as [null] / ["+Inf"] /
    ["-Inf"]. *)

val to_prometheus : Metrics.t -> string

val to_json : Metrics.t -> string

val write : path:string -> string -> unit
(** Write to a file, or to stdout when [path] is ["-"]. *)
