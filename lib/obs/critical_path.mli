(** Trace-driven critical-path analysis: attribute each trace's
    end-to-end latency to the stages (span names) that spent it, and
    aggregate "p99 blame" across a run.

    Attribution is by {e self} time — a span's extent minus its direct
    children's extents clipped to it — so every second of a root span's
    latency lands on exactly one named span when spans nest cleanly.
    Concurrent siblings (parallel federation legs) each keep their own
    self time; the per-trace [attributed] fraction is clamped to 1.

    The time axis is chosen per trace: sim time when the trace contains
    any sim-extended span (overload queue waits, federation legs), wall
    time otherwise. *)

type span_blame = {
  name : string;
  self : float;  (** summed self time of spans with this name *)
  share : float;  (** [self / total] for the trace *)
}

type trace_report = {
  trace_id : int;
  root : string;
  total : float;  (** end-to-end extent of the root span(s) *)
  sim_axis : bool;
  attributed : float;
      (** fraction of [total] attributed to named spans; 1 when the
          spans nest cleanly (the acceptance bar is >= 0.95) *)
  blames : span_blame list;  (** descending self time *)
}

type stage_blame = {
  stage : string;
  total_self : float;
  blame_share : float;  (** share of the summed end-to-end time *)
  count : int;
}

type report = {
  traces : trace_report list;
  stages : stage_blame list;  (** all traces, descending blame *)
  p99_stages : stage_blame list;  (** only traces at or above [p99_total] *)
  p99_total : float;
  min_attributed : float;  (** worst per-trace attribution; 1 if no traces *)
}

val analyze : Trace.entry list -> report
(** Traces with no finished spans are skipped. *)

val render : top:int -> report -> string
(** Human-readable summary: overall and p99 blame tables truncated to
    the [top] stages. *)
