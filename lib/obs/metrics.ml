(* Metrics registry: counters, gauges and fixed-bucket histograms, grouped
   into labeled families.  A registry is explicit state; instrumentation
   sites go through the process-wide [current] slot and cost one mutable
   read plus a branch when no registry is installed. *)

type histogram = {
  upper : float array;  (* strictly increasing bucket upper bounds *)
  counts : int array;  (* per-bucket (non-cumulative); last = +Inf overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument =
  | Counter of float ref
  | Gauge of float ref
  | Derived of (unit -> float)
  | Histogram of histogram

type kind = Kcounter | Kgauge | Khistogram

type family = {
  name : string;
  kind : kind;
  help : string;
  children : (string, (string * string) list * instrument) Hashtbl.t;
      (* canonical label key -> (labels, instrument) *)
}

type t = { families : (string, family) Hashtbl.t; mutable names : string list }

type counter = float ref

type gauge = float ref

let create () = { families = Hashtbl.create 64; names = [] }

(* Domain-local: each OCaml domain sees its own slot, initially empty, so
   broker shards spawned on worker domains run with telemetry off unless
   they install a registry of their own — instrumentation sites never read
   a registry another domain is concurrently mutating. *)
let slot_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get slot_key

let install t = slot () := Some t

let uninstall () = slot () := None

let current () = !(slot ())

let enabled () = !(slot ()) <> None

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

(* Label sets are identified up to ordering: ("a","1");("b","2") and its
   reverse address the same family child.  0/1-label sets — most of the
   per-request instrumentation — skip the sort. *)
let canonical = function
  | [] -> ""
  | [ (k, v) ] -> k ^ "\x00" ^ v
  | labels ->
      let sorted = List.sort compare labels in
      String.concat "\x00"
        (List.concat_map (fun (k, v) -> [ k; v ]) sorted)

let family t ~name ~kind ~help =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s (wanted %s)"
             name (kind_name f.kind) (kind_name kind));
      f
  | None ->
      let f = { name; kind; help; children = Hashtbl.create 4 } in
      Hashtbl.replace t.families name f;
      t.names <- name :: t.names;
      f

let child f labels make =
  let key = canonical labels in
  match Hashtbl.find_opt f.children key with
  | Some (_, i) -> i
  | None ->
      let i = make () in
      Hashtbl.replace f.children key (List.sort compare labels, i);
      i

let counter t ?(help = "") ?(labels = []) name =
  let f = family t ~name ~kind:Kcounter ~help in
  match child f labels (fun () -> Counter (ref 0.)) with
  | Counter r -> r
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  let f = family t ~name ~kind:Kgauge ~help in
  match child f labels (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r
  | Derived _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %s%s is a derived gauge" name (canonical labels))
  | _ -> assert false

let gauge_fn t ?(help = "") ?(labels = []) name read =
  let f = family t ~name ~kind:Kgauge ~help in
  (* Re-registration replaces the callback: harnesses re-register the same
     series when a broker is rebuilt (e.g. after failover promotion). *)
  Hashtbl.replace f.children (canonical labels)
    (List.sort compare labels, Derived read)

let default_buckets =
  (* Control-loop latencies: 250 ns .. ~4 s, powers of 4. *)
  [| 2.5e-7; 1e-6; 4e-6; 1.6e-5; 6.4e-5; 2.56e-4; 1.024e-3; 4.096e-3;
     1.6384e-2; 6.5536e-2; 0.262144; 1.048576; 4.194304 |]

let histogram t ?(help = "") ?(buckets = default_buckets) ?(labels = []) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  let f = family t ~name ~kind:Khistogram ~help in
  match
    child f labels (fun () ->
        Histogram
          {
            upper = buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.;
            h_count = 0;
          })
  with
  | Histogram h -> h
  | _ -> assert false

(* --- instrument operations ------------------------------------------ *)

let inc r = r := !r +. 1.

let add r by = r := !r +. by

let counter_value r = !r

let set r v = r := v

let gauge_add r by = r := !r +. by

let gauge_value r = !r

let observe h v =
  let n = Array.length h.upper in
  let rec bucket i = if i >= n then n else if v <= h.upper.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.counts.(b) <- h.counts.(b) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let hist_count h = h.h_count

let hist_sum h = h.h_sum

(* Quantile estimate from the bucket counts: find the bucket holding the
   target rank and interpolate linearly inside it (lower edge 0 for the
   first bucket; the overflow bucket reports its lower edge). *)
let hist_quantile h ~q =
  if q < 0. || q > 1. then invalid_arg "Metrics.hist_quantile: q out of range";
  if h.h_count = 0 then nan
  else begin
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.upper in
    let rec go i cum =
      if i > n then h.upper.(n - 1)
      else
        let cum' = cum +. float_of_int h.counts.(i) in
        if cum' >= target && h.counts.(i) > 0 then
          if i = n then h.upper.(n - 1)
          else begin
            let lo = if i = 0 then 0. else h.upper.(i - 1) in
            let hi = h.upper.(i) in
            let inside = (target -. cum) /. float_of_int h.counts.(i) in
            lo +. ((hi -. lo) *. Float.min 1. (Float.max 0. inside))
          end
        else go (i + 1) cum'
    in
    go 0 0.
  end

(* --- convenience: operate on the installed registry ------------------ *)

let count ?(labels = []) ?(by = 1.) name =
  match !(slot ()) with None -> () | Some t -> add (counter t ~labels name) by

let set_gauge ?(labels = []) name v =
  match !(slot ()) with None -> () | Some t -> set (gauge t ~labels name) v

let observe_one ?(labels = []) ?buckets name v =
  match !(slot ()) with None -> () | Some t -> observe (histogram t ?buckets ~labels name) v

(* --- snapshot -------------------------------------------------------- *)

type value =
  | Vcounter of float
  | Vgauge of float
  | Vhistogram of { upper : float array; cumulative : int array; sum : float; count : int }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : string;
  s_labels : (string * string) list;
  s_value : value;
}

let read_instrument = function
  | Counter r -> Vcounter !r
  | Gauge r -> Vgauge !r
  | Derived f -> Vgauge (f ())
  | Histogram h ->
      let n = Array.length h.upper in
      let cumulative = Array.make (n + 1) 0 in
      let acc = ref 0 in
      for i = 0 to n do
        acc := !acc + h.counts.(i);
        cumulative.(i) <- !acc
      done;
      Vhistogram { upper = Array.copy h.upper; cumulative; sum = h.h_sum; count = h.h_count }

let snapshot t =
  List.rev t.names
  |> List.concat_map (fun name ->
         let f = Hashtbl.find t.families name in
         Hashtbl.fold
           (fun key (labels, i) acc -> (key, labels, i) :: acc)
           f.children []
         |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
         |> List.map (fun (_, labels, i) ->
                {
                  s_name = name;
                  s_help = f.help;
                  s_kind = kind_name f.kind;
                  s_labels = labels;
                  s_value = read_instrument i;
                }))

let clear t =
  Hashtbl.reset t.families;
  t.names <- []
