(** Structured event/trace layer: a fixed-capacity ring buffer of entries
    stamped with sim time {e and} wall time.

    Three payloads: point-in-time {e events} (link failures, failover
    transitions, aggregation rate changes), timed {e spans} (the stages of
    the broker's Figure-1 control loop), and admission {e decisions} — the
    audit trail recording every admit/reject with its reject reason.

    The ring holds the last [capacity] entries; [total] keeps counting past
    wraparound, so [total - length] entries have been evicted.  Like
    {!Metrics}, a tracer is reached through a process-wide slot and the
    recording helpers are branch-only no-ops when none is installed. *)

type decision = {
  service : string;  (** ["perflow"], ["class"], ["fixed"], or caller-defined *)
  flow : int option;  (** assigned flow id on admit *)
  admitted : bool;
  reject_reason : string option;  (** [None] iff admitted *)
  ingress : string;
  egress : string;
  rate : float;  (** reserved rate on admit, 0 otherwise *)
}

type payload = Event | Span of { dur : float  (** wall seconds *) } | Decision of decision

type entry = {
  seq : int;  (** 0-based and monotone across eviction — never wraps *)
  name : string;
  sim_time : float;
  wall_time : float;
  payload : payload;
  attrs : (string * string) list;
}

type t

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> unit -> t
(** Sim clock defaults to a constant 0 (set one with {!set_sim_clock});
    wall clock to [Unix.gettimeofday]. *)

val install : t -> unit

val uninstall : unit -> unit

val current : unit -> t option

val enabled : unit -> bool

val set_sim_clock : t -> (unit -> float) -> unit
(** Typically [fun () -> Engine.now engine] or the broker's [time.now]. *)

val set_wall_clock : t -> (unit -> float) -> unit
(** Override the wall clock (tests install a deterministic one). *)

val record :
  t -> ?sim_time:float -> ?attrs:(string * string) list -> name:string -> payload -> unit
(** Low-level append.  [sim_time] defaults to the tracer's sim clock. *)

(** {1 Recording on the installed tracer}

    All are no-ops when no tracer is installed. *)

val event : ?sim_time:float -> ?attrs:(string * string) list -> string -> unit

val span_record :
  ?sim_time:float -> ?attrs:(string * string) list -> string -> dur:float -> unit
(** Record an externally timed span. *)

val decision :
  ?sim_time:float -> ?attrs:(string * string) list -> decision -> unit
(** Appended under the entry name ["bb.decision"]. *)

val span : ?sim_time:float -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span with its measured wall
    duration (also on exception).  Without a tracer: just [f ()]. *)

val now_wall : unit -> float
(** The installed tracer's wall clock (or [Unix.gettimeofday]). *)

(** {1 Extraction} *)

val capacity : t -> int

val length : t -> int
(** Entries currently held ([<= capacity]). *)

val total : t -> int
(** Entries ever recorded, including evicted ones. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit

val durations : t -> name:string -> float array
(** Wall durations of the retained spans with this name, oldest first —
    feed to {!Bbr_util.Stats.percentile}. *)

val span_names : t -> string list

val span_stats : t -> (string * Bbr_util.Stats.t) list
(** One accumulator per span name over the retained entries. *)

val decisions : t -> (entry * decision) list
(** The retained decision-log entries, oldest first. *)

val pp_entry : entry Fmt.t

val dump : t -> string
(** Every retained entry, one per line. *)
