(** Structured event/trace layer: a fixed-capacity ring buffer of entries
    stamped with sim time {e and} wall time.

    Three payloads: point-in-time {e events} (link failures, failover
    transitions, aggregation rate changes), timed {e spans} (the stages of
    the broker's Figure-1 control loop), and admission {e decisions} — the
    audit trail recording every admit/reject with its reject reason.

    {2 Causal contexts}

    Entries optionally carry a {!ctx} — (trace id, span id, parent span
    id) — so all the work done on behalf of one request or one federation
    transaction assembles into a span tree.  Two ways to make spans:

    - {!span} / {!with_span} for work that completes inside one call
      frame.  [with_span] also makes the span {e ambient}: nested spans
      and events recorded inside [f] become its children automatically.
    - {!start_span} / {!finish_span} for work that crosses sim-time
      boundaries (an overload queue wait, a 2PC leg whose reply arrives
      in a later engine callback).  The handle can be stashed in a
      record and finished from any callback; {!with_ambient} temporarily
      re-establishes it as the parent for nested instrumentation.

    A finished span is recorded as ONE entry stamped with its {e start}
    sim/wall times, carrying the wall duration in its payload and the
    sim-time extent in [sim_dur].  Spans still open when the ring is
    inspected have no entry.

    {2 Wraparound caveat}

    The ring holds the last [capacity] entries; [total] keeps counting
    past wraparound, so [evicted = total - length] entries have been
    dropped, oldest first.  Every extraction below — {!entries},
    {!durations}, {!span_stats}, {!decisions} — computes over the
    {e retained} entries only: once [evicted > 0] the statistics are
    biased toward the end of the run and span trees may be missing
    ancestors.  Check {!evicted} (it is also surfaced in the flight
    recorder dump) or size the ring for the run.

    Like {!Metrics}, a tracer is reached through a process-wide slot and
    the recording helpers are branch-only no-ops when none is installed. *)

type decision = {
  service : string;  (** ["perflow"], ["class"], ["fixed"], or caller-defined *)
  flow : int option;  (** assigned flow id on admit *)
  admitted : bool;
  reject_reason : string option;  (** [None] iff admitted *)
  ingress : string;
  egress : string;
  rate : float;  (** reserved rate on admit, 0 otherwise *)
}

type payload = Event | Span of { dur : float  (** wall seconds *) } | Decision of decision

type ctx = {
  trace_id : int;  (** one per root span: one request, one federation txn *)
  span_id : int;
  (** for [Span] entries, the span itself; for [Event]/[Decision]
      entries, the enclosing span *)
  parent : int option;  (** parent span id; [None] for a trace root *)
}

type entry = {
  seq : int;  (** 0-based and monotone across eviction — never wraps *)
  name : string;
  sim_time : float;  (** for finished spans: the {e start} sim time *)
  wall_time : float;  (** for finished spans: the {e start} wall time *)
  payload : payload;
  attrs : (string * string) list;
  ctx : ctx option;
  sim_dur : float;  (** sim-time extent of a finished span; [0.] elsewhere *)
}

type t

type span
(** An open span handle.  Immutable ids; safe to stash in records and
    finish from an engine callback.  Handles obtained while no tracer
    was installed are null: every operation on them is a no-op. *)

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> unit -> t
(** Sim clock defaults to a constant 0 (set one with {!set_sim_clock});
    wall clock to [Unix.gettimeofday]. *)

val install : t -> unit

val uninstall : unit -> unit

val current : unit -> t option

val enabled : unit -> bool

val set_sim_clock : t -> (unit -> float) -> unit
(** Typically [fun () -> Engine.now engine] or the broker's [time.now]. *)

val set_wall_clock : t -> (unit -> float) -> unit
(** Override the wall clock (tests install a deterministic one). *)

val set_tee : t -> (entry -> unit) option -> unit
(** Tap every entry recorded on [t] (after it lands in the ring).  The
    flight recorder uses this to mirror entries into its larger ring. *)

val record :
  t ->
  ?sim_time:float ->
  ?wall_time:float ->
  ?attrs:(string * string) list ->
  ?ctx:ctx ->
  ?sim_dur:float ->
  name:string ->
  payload ->
  unit
(** Low-level append.  [sim_time]/[wall_time] default to the tracer's
    clocks. *)

val append : t -> entry -> unit
(** Append a pre-built entry verbatim (seq and stamps untouched).  For
    the flight recorder's tee and for rebuilding a ring from a dump. *)

(** {1 Span contexts} *)

val null_span : span
(** The inert handle: parent to nothing, finishes silently.  What every
    span-creating helper returns when no tracer is installed. *)

val is_null : span -> bool

val span_ctx : span -> ctx option
(** The context this span stamps on its own entry ([None] for null). *)

val start_span :
  ?sim_time:float ->
  ?wall_time:float ->
  ?attrs:(string * string) list ->
  ?parent:span ->
  string ->
  span
(** Open a span on the installed tracer.  Parent resolution: an explicit
    non-null [?parent] wins; otherwise the innermost ambient span;
    otherwise the span roots a fresh trace.  Start stamps default to the
    tracer's clocks; [sim_time]/[wall_time] override them (callers that
    already read a clock pass the value in rather than reading twice). *)

val finish_span :
  ?sim_time:float ->
  ?wall_time:float ->
  ?attrs:(string * string) list ->
  span ->
  unit
(** Record the span's single entry.  End-of-span stamps default to the
    tracer's clocks; [attrs] are appended to the start attrs.
    Idempotent — a second finish is ignored. *)

val with_ambient : span -> (unit -> 'a) -> 'a
(** Run [f] with the span as the innermost ambient parent (exception
    safe).  Use when resuming work for a stashed handle inside an engine
    callback. *)

val push_ambient : span -> unit

val pop_ambient : span -> unit
(** Unbracketed ambient-stack access for zero-closure hot paths; prefer
    {!with_ambient}.  [pop_ambient] drops everything up to and including
    the span, so an unbalanced push (e.g. across a {!clear}) cannot
    wedge the stack.  Both are no-ops on null handles. *)

val with_span :
  ?sim_time:float ->
  ?attrs:(string * string) list ->
  ?parent:span ->
  string ->
  (span -> 'a) ->
  'a
(** [start_span] + [with_ambient] + [finish_span] around [f] (also on
    exception). *)

val ambient_span : unit -> span option
(** The innermost ambient span on the installed tracer, if any. *)

val ambient : unit -> span list
(** The whole ambient stack, innermost first (diagnostics). *)

(** {1 Recording on the installed tracer}

    All are no-ops when no tracer is installed.  [?parent] attaches the
    entry to that span's context; default is the innermost ambient
    span. *)

val event :
  ?sim_time:float ->
  ?attrs:(string * string) list ->
  ?parent:span ->
  string ->
  unit

val span_record :
  ?sim_time:float ->
  ?attrs:(string * string) list ->
  ?parent:span ->
  string ->
  dur:float ->
  unit
(** Record an externally timed span (no context of its own — it carries
    the enclosing span's ids, like an event). *)

val decision :
  ?sim_time:float ->
  ?attrs:(string * string) list ->
  ?parent:span ->
  decision ->
  unit
(** Appended under the entry name ["bb.decision"]. *)

val span : ?sim_time:float -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a fresh (ambient) span, recording its
    measured wall duration on exit (also on exception).  Without a
    tracer: just [f ()]. *)

val now_wall : unit -> float
(** The installed tracer's wall clock (or [Unix.gettimeofday]). *)

(** {1 Extraction}

    All computed over the retained entries only — see the wraparound
    caveat above. *)

val capacity : t -> int

val length : t -> int
(** Entries currently held ([<= capacity]). *)

val total : t -> int
(** Entries ever recorded, including evicted ones. *)

val evicted : t -> int
(** [total - length]: entries lost to ring wraparound, oldest first.
    Nonzero means every statistic below is computed over a suffix of the
    run. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit

val durations : t -> name:string -> float array
(** Wall durations of the {e retained} spans with this name, oldest
    first — feed to {!Bbr_util.Stats.percentile}.  Biased once
    {!evicted}[ > 0]. *)

val span_names : t -> string list

val span_stats : t -> (string * Bbr_util.Stats.t) list
(** One accumulator per span name over the {e retained} entries; check
    {!evicted} before trusting tails. *)

val decisions : t -> (entry * decision) list
(** The retained decision-log entries, oldest first. *)

val pp_entry : entry Fmt.t

val dump : t -> string
(** Every retained entry, one per line. *)
