(** Network-domain topology: the QoS abstraction of the data plane that the
    bandwidth broker's routing and admission modules operate on.

    A domain is a directed graph of routers; each directed link carries the
    static QoS parameters the VTRS needs: capacity, propagation delay, the
    class of scheduler serving the link (rate-based or delay-based, paper
    Section 2.1) and the scheduler's error term [psi].  Core routers keep no
    QoS state — everything here is static configuration known to the
    broker. *)

type sched_class =
  | Rate_based  (** e.g. core-stateless virtual clock (C̄S-VC), VC, WFQ *)
  | Delay_based  (** e.g. VT-EDF, RC-EDF *)

val pp_sched_class : sched_class Fmt.t

type link = {
  link_id : int;  (** dense index, unique within the domain *)
  src : string;  (** upstream router name *)
  dst : string;  (** downstream router name *)
  capacity : float;  (** bits/s *)
  prop_delay : float;  (** propagation delay to the next hop, seconds *)
  sched : sched_class;
  psi : float;  (** scheduler error term [psi] (seconds), paper eq. (1) *)
}

type t
(** A domain: a set of named routers and directed links. *)

val create : unit -> t

val add_node : t -> string -> unit
(** Idempotent. *)

val add_link :
  t ->
  src:string ->
  dst:string ->
  capacity:float ->
  ?prop_delay:float ->
  ?psi:float ->
  sched_class ->
  link
(** Adds a directed link.  Both endpoints are added as nodes if missing.
    [prop_delay] defaults to 0.  [psi] defaults to the minimum error term of
    the core-stateless schedulers, [lmax_link / capacity], with
    [lmax_link = 12000] bits (a 1500-byte MTU) — the value used throughout
    the paper's simulations; pass [~psi] to override.  Raises
    [Invalid_argument] if a link [src -> dst] already exists or if
    [capacity <= 0]. *)

val mtu_bits : float
(** Largest packet size permissible in the domain, [L^{P,max}]: 1500 bytes =
    12000 bits, as in the paper's simulations. *)

val nodes : t -> string list
(** All router names, in insertion order. *)

val links : t -> link list
(** All links, in insertion order (= increasing [link_id]). *)

val num_links : t -> int

val link_by_id : t -> int -> link
(** Raises [Not_found] for an unknown id. *)

val find_link : t -> src:string -> dst:string -> link option

val out_links : t -> string -> link list
(** Links leaving the given router, in insertion order (including links
    currently marked down — the physical topology does not shrink). *)

val mem_node : t -> string -> bool

val copy : t -> t
(** A structurally independent replica: same nodes and links in the same
    insertion order (so link ids coincide), same up/down state, no shared
    mutable cells.  Broker shards running on separate domains each take a
    copy so topology state is never shared across domains. *)

(** {1 Link failure state}

    Links carry an up/down flag so the control plane can model data-plane
    failures: a down link keeps its configuration (capacity, scheduler,
    error term) but must not be used for new path selection.  Reservation
    bookkeeping is the broker's concern — marking a link down here does not
    touch any MIB. *)

val set_link_state : t -> link_id:int -> up:bool -> unit
(** Mark a link down (failed) or back up.  Idempotent per state; raises
    [Invalid_argument] for an unknown link id. *)

val link_is_up : t -> link_id:int -> bool
(** Links start up; [false] after [set_link_state ~up:false]. *)

val down_links : t -> link list
(** Currently-failed links, in insertion order. *)

val state_version : t -> int
(** A counter bumped on every up/down transition — lets path caches detect
    staleness without subscribing to events. *)

(** {1 Path-level quantities}

    A path is a list of links, each link's [dst] matching the next link's
    [src]. *)

val is_path : t -> link list -> bool

val hop_count : link list -> int
(** [h]: number of schedulers along the path. *)

val rate_based_hops : link list -> int
(** [q]: number of rate-based schedulers along the path. *)

val delay_based_hops : link list -> int
(** [h - q]. *)

val d_tot : link list -> float
(** [D_tot = sum_i (psi_i + pi_i)] over the path (paper eq. (4)). *)
