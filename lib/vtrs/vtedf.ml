module Fp = Bbr_util.Fp

type klass = {
  delay : float;
  sum_rate : float;
  sum_lmax : float;
  count : int;
}

(* Flat sorted parallel arrays, one slot per distinct delay class.  The
   admission hot path queries this structure once per hop per request, so
   class updates are in place and the query loops below allocate nothing.
   [version] counts mutations; [dirty_low]/[clean_version] describe the
   window of classes touched since the (single) incremental breakpoint
   consumer last called {!refresh_breakpoints}. *)
type t = {
  cap : float;
  mutable n : int;  (* live classes: the paper's M *)
  mutable keys : float array;  (* canonical delays: the matching identity *)
  mutable delays : float array;
  mutable rates : float array;  (* total reserved rate per class *)
  mutable lmaxs : float array;  (* total max packet size per class *)
  mutable counts : int array;
  mutable total : float;
  mutable flows : int;
  mutable version : int;
  mutable clean_version : int;
  mutable dirty_low : float;  (* infinity when no mutation is pending *)
}

let initial_slots = 8

let create ~capacity =
  if capacity <= 0. then invalid_arg "Vtedf.create: capacity must be positive";
  {
    cap = capacity;
    n = 0;
    keys = Array.make initial_slots 0.;
    delays = Array.make initial_slots 0.;
    rates = Array.make initial_slots 0.;
    lmaxs = Array.make initial_slots 0.;
    counts = Array.make initial_slots 0;
    total = 0.;
    flows = 0;
    version = 0;
    clean_version = 0;
    dirty_low = infinity;
  }

let capacity t = t.cap

let total_rate t = t.total

let flow_count t = t.flows

let class_count t = t.n

let version t = t.version

let classes t =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ({
           delay = t.delays.(i);
           sum_rate = t.rates.(i);
           sum_lmax = t.lmaxs.(i);
           count = t.counts.(i);
         }
        :: acc)
  in
  go (t.n - 1) []

(* First index whose delay is >= [d] ([t.n] when none). *)
let lower_bound t d =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.delays.(mid) < d then lo := mid + 1 else hi := mid
  done;
  !lo

(* Class membership must be a {e pure function of the delay value}.
   Exact [=] grouping splits one logical class under float noise
   (inflating M, and a noisy [remove] misses the class it booked into);
   nearest-class-within-tolerance matching is worse — it makes membership
   depend on the class set {e at add time}, and a class created later
   between a member's delay and its class delay silently steals the
   member's [remove].  So matching goes through a canonical {e key}: the
   delay's mantissa rounded at 2^-36 relative precision.  Noise below
   ~7e-12 relative maps to the same key, keys are matched exactly — add
   and remove of the same float can never disagree — and the class keeps
   its first member's {e raw} delay for all arithmetic, so the demand
   curve is untouched by the quantization. *)
let canon d =
  if d = 0. then 0.
  else
    let m, e = Float.frexp d in
    Float.ldexp (Float.round (m *. 0x1p36) *. 0x1p-36) e

(* [canon] is monotone and classes with equal keys merge, so the keys
   array is strictly increasing and parallel to the (also increasing) raw
   delays. *)
let key_lower_bound t k =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let locate t k =
  let i = key_lower_bound t k in
  if i < t.n && t.keys.(i) = k then Ok i else Error i

let mark t ~low =
  t.version <- t.version + 1;
  if low < t.dirty_low then t.dirty_low <- low

let grow t =
  let len = Array.length t.delays in
  if t.n = len then begin
    let len' = 2 * len in
    let widen a =
      let b = Array.make len' 0. in
      Array.blit a 0 b 0 len;
      b
    in
    t.keys <- widen t.keys;
    t.delays <- widen t.delays;
    t.rates <- widen t.rates;
    t.lmaxs <- widen t.lmaxs;
    let c = Array.make len' 0 in
    Array.blit t.counts 0 c 0 len;
    t.counts <- c
  end

let insert_at t i ~key ~rate ~delay ~lmax =
  grow t;
  let m = t.n - i in
  if m > 0 then begin
    Array.blit t.keys i t.keys (i + 1) m;
    Array.blit t.delays i t.delays (i + 1) m;
    Array.blit t.rates i t.rates (i + 1) m;
    Array.blit t.lmaxs i t.lmaxs (i + 1) m;
    Array.blit t.counts i t.counts (i + 1) m
  end;
  t.keys.(i) <- key;
  t.delays.(i) <- delay;
  t.rates.(i) <- rate;
  t.lmaxs.(i) <- lmax;
  t.counts.(i) <- 1;
  t.n <- t.n + 1

let delete_at t i =
  let m = t.n - i - 1 in
  if m > 0 then begin
    Array.blit t.keys (i + 1) t.keys i m;
    Array.blit t.delays (i + 1) t.delays i m;
    Array.blit t.rates (i + 1) t.rates i m;
    Array.blit t.lmaxs (i + 1) t.lmaxs i m;
    Array.blit t.counts (i + 1) t.counts i m
  end;
  t.n <- t.n - 1

let add t ~rate ~delay ~lmax =
  if rate <= 0. then invalid_arg "Vtedf.add: rate must be positive";
  if lmax <= 0. then invalid_arg "Vtedf.add: lmax must be positive";
  if delay < 0. then invalid_arg "Vtedf.add: delay must be non-negative";
  (match locate t (canon delay) with
  | Ok i ->
      t.rates.(i) <- t.rates.(i) +. rate;
      t.lmaxs.(i) <- t.lmaxs.(i) +. lmax;
      t.counts.(i) <- t.counts.(i) + 1;
      mark t ~low:(Float.min t.delays.(i) delay)
  | Error i ->
      insert_at t i ~key:(canon delay) ~rate ~delay ~lmax;
      mark t ~low:delay);
  t.total <- t.total +. rate;
  t.flows <- t.flows + 1

let remove t ~rate ~delay ~lmax =
  match locate t (canon delay) with
  | Error _ -> invalid_arg "Vtedf.remove: no flow with this delay"
  | Ok i ->
      let low = Float.min t.delays.(i) delay in
      if t.counts.(i) = 1 then delete_at t i
      else begin
        t.rates.(i) <- t.rates.(i) -. rate;
        t.lmaxs.(i) <- t.lmaxs.(i) -. lmax;
        t.counts.(i) <- t.counts.(i) - 1
      end;
      mark t ~low;
      t.total <- t.total -. rate;
      t.flows <- t.flows - 1

let demand t ~at =
  let acc = ref 0. in
  let i = ref 0 in
  while !i < t.n && t.delays.(!i) <= at do
    acc := !acc +. (t.rates.(!i) *. (at -. t.delays.(!i))) +. t.lmaxs.(!i);
    incr i
  done;
  !acc

let rate_below t ~at =
  let acc = ref 0. in
  let i = ref 0 in
  while !i < t.n && t.delays.(!i) <= at do
    acc := !acc +. t.rates.(!i);
    incr i
  done;
  !acc

let residual_service t ~at = (t.cap *. at) -. demand t ~at

let breakpoints t =
  let rec go i acc demand rate_sum prev =
    if i = t.n then List.rev acc
    else
      let dd = t.delays.(i) in
      let demand = demand +. (rate_sum *. (dd -. prev)) +. t.lmaxs.(i) in
      go (i + 1)
        ((dd, (t.cap *. dd) -. demand) :: acc)
        demand
        (rate_sum +. t.rates.(i))
        dd
  in
  go 0 [] 0. 0. 0.

let check_buffers name len arrays =
  List.iter
    (fun a ->
      if Array.length a < len then
        invalid_arg (name ^ ": buffer shorter than class_count"))
    arrays

let breakpoints_into t ~d ~s =
  check_buffers "Vtedf.breakpoints_into" t.n [ d; s ];
  let demand = ref 0. and rsum = ref 0. and prev = ref 0. in
  for i = 0 to t.n - 1 do
    let dd = t.delays.(i) in
    let dm = !demand +. (!rsum *. (dd -. !prev)) +. t.lmaxs.(i) in
    d.(i) <- dd;
    s.(i) <- (t.cap *. dd) -. dm;
    demand := dm;
    rsum := !rsum +. t.rates.(i);
    prev := dd
  done;
  t.n

let refresh_breakpoints t ~since ~d ~s ~dem ~rcum =
  check_buffers "Vtedf.refresh_breakpoints" t.n [ d; s; dem; rcum ];
  let from =
    if since >= t.clean_version then
      if t.dirty_low = infinity then t.n else lower_bound t t.dirty_low
    else 0 (* the caller is staler than the dirty window: full rebuild *)
  in
  (* Classes below [from] are untouched, so the buffered prefix accumulators
     still equal what a full recompute would produce there. *)
  let demand = ref (if from = 0 then 0. else dem.(from - 1)) in
  let rsum = ref (if from = 0 then 0. else rcum.(from - 1)) in
  let prev = ref (if from = 0 then 0. else d.(from - 1)) in
  for i = from to t.n - 1 do
    let dd = t.delays.(i) in
    let dm = !demand +. (!rsum *. (dd -. !prev)) +. t.lmaxs.(i) in
    d.(i) <- dd;
    dem.(i) <- dm;
    s.(i) <- (t.cap *. dd) -. dm;
    rcum.(i) <- !rsum +. t.rates.(i);
    demand := dm;
    rsum := rcum.(i);
    prev := dd
  done;
  t.clean_version <- t.version;
  t.dirty_low <- infinity;
  (t.n, from)

let schedulable t =
  Fp.leq t.total t.cap
  && begin
       let ok = ref true in
       let demand = ref 0. and rsum = ref 0. and prev = ref 0. in
       let i = ref 0 in
       while !ok && !i < t.n do
         let dd = t.delays.(!i) in
         let dm = !demand +. (!rsum *. (dd -. !prev)) +. t.lmaxs.(!i) in
         let s = (t.cap *. dd) -. dm in
         (* Compare demand against supply rather than the residual against
            zero: the relative tolerance then matches the one {!can_admit}
            admitted under, so boundary admissions remain schedulable. *)
         let supply = t.cap *. dd in
         if Fp.leq (supply -. s) supply then begin
           demand := dm;
           rsum := !rsum +. t.rates.(!i);
           prev := dd;
           incr i
         end
         else ok := false
       done;
       !ok
     end

(* Single linear pass: walk the classes accumulating the demand, checking
   the candidate's own constraint at [t = delay] and the eq.-(5) constraint
   at every breakpoint >= [delay].  When [delay] coincides with a
   breakpoint, that breakpoint's constraint subsumes the own constraint
   (it reads residual >= rate*0 + lmax). *)
let can_admit t ~rate ~delay ~lmax =
  Fp.leq (t.total +. rate) t.cap
  && begin
       (* Own constraint at a point strictly inside the segment beginning at
          [prev]: demand grows linearly, no jump at [delay] itself. *)
       let own_ok demand rate_sum prev =
         let at_delay = demand +. (rate_sum *. (delay -. prev)) in
         Fp.geq ((t.cap *. delay) -. at_delay) lmax
       in
       let demand = ref 0. and rsum = ref 0. and prev = ref 0. in
       let own_done = ref false in
       let ok = ref true in
       let i = ref 0 in
       while !ok && !i < t.n do
         let dd = t.delays.(!i) in
         if (not !own_done) && dd > delay then
           if own_ok !demand !rsum !prev then own_done := true
           else ok := false
         else begin
           let dm = !demand +. (!rsum *. (dd -. !prev)) +. t.lmaxs.(!i) in
           let s = (t.cap *. dd) -. dm in
           if dd < delay || Fp.geq s ((rate *. (dd -. delay)) +. lmax) then begin
             demand := dm;
             rsum := !rsum +. t.rates.(!i);
             prev := dd;
             if dd >= delay then own_done := true;
             incr i
           end
           else ok := false
         end
       done;
       !ok && (!own_done || own_ok !demand !rsum !prev)
     end

(* [residual_service] is piecewise linear in [at] with non-negative slope
   between breakpoints (slope = capacity minus the rates of earlier classes)
   and a downward jump of [sum_lmax] at each breakpoint; we scan segments in
   order for the first point where it reaches [lmax]. *)
let min_feasible_delay t ~lmax =
  let solve_segment ~start ~value ~slope ~limit =
    (* Smallest d in [start, limit) with value + slope (d - start) >= lmax;
       [limit = infinity] for the last segment. *)
    if Fp.geq value lmax then Some start
    else if slope <= 0. then None
    else
      let d = start +. ((lmax -. value) /. slope) in
      if d < limit then Some d else None
  in
  let rec scan i start value slope =
    if i = t.n then solve_segment ~start ~value ~slope ~limit:infinity
    else
      let dd = t.delays.(i) in
      match solve_segment ~start ~value ~slope ~limit:dd with
      | Some d -> Some d
      | None ->
          let at_bp = value +. (slope *. (dd -. start)) -. t.lmaxs.(i) in
          scan (i + 1) dd at_bp (slope -. t.rates.(i))
  in
  scan 0 0. 0. t.cap

let pp ppf t =
  Fmt.pf ppf "@[<v>VT-EDF capacity=%g total_rate=%g flows=%d" t.cap t.total
    t.flows;
  for i = 0 to t.n - 1 do
    Fmt.pf ppf "@,  d=%g rate=%g lmax=%g n=%d S=%g" t.delays.(i) t.rates.(i)
      t.lmaxs.(i) t.counts.(i)
      (residual_service t ~at:t.delays.(i))
  done;
  Fmt.pf ppf "@]"

(* A deep replica of the scheduler state.  The sharded broker's 2PC
   coordinator admits multi-shard paths against copies gathered from the
   owning shards, so it can run the exact Section-3.2 decision procedure
   without touching another domain's live arrays.  The copy starts with a
   clean dirty window: it is a fresh single-consumer cache root. *)
let copy t =
  {
    cap = t.cap;
    n = t.n;
    keys = Array.copy t.keys;
    delays = Array.copy t.delays;
    rates = Array.copy t.rates;
    lmaxs = Array.copy t.lmaxs;
    counts = Array.copy t.counts;
    total = t.total;
    flows = t.flows;
    version = t.version;
    clean_version = t.version;
    dirty_low = infinity;
  }
