(** Schedulability state of a delay-based (VT-EDF) scheduler.

    A VT-EDF scheduler of capacity [C] can guarantee every flow [j] its
    delay parameter [d^j] with error term [lmax*/C] iff (paper eq. (5))

    {v sum_j [ r^j (t - d^j) + lmax^j ] 1{t >= d^j}  <=  C t   for all t >= 0 v}

    The left side is piecewise linear with upward jumps at the [d^j], so the
    condition only needs checking at each distinct delay value (and the
    total-rate slope condition at infinity).  This module maintains the flow
    population of one scheduler grouped by {e distinct} delay value — the
    structure behind the paper's O(M) path-oriented admission algorithm
    (Section 3.2) — and answers exact schedulability queries.

    The broker holds one [Vtedf.t] per delay-based link; the routers
    themselves remain stateless. *)

type t

type klass = {
  delay : float;  (** the distinct delay value [d^m] *)
  sum_rate : float;  (** total reserved rate of flows at this delay *)
  sum_lmax : float;  (** total max packet size of flows at this delay *)
  count : int;  (** number of flows at this delay *)
}

val create : capacity:float -> t
(** Raises [Invalid_argument] unless [capacity > 0]. *)

val capacity : t -> float

val total_rate : t -> float
(** Sum of reserved rates of all flows. *)

val flow_count : t -> int

val classes : t -> klass list
(** Current population grouped by distinct delay, in increasing delay
    order.  [List.length (classes t)] is the paper's [M]. *)

val class_count : t -> int
(** The paper's [M] — number of distinct delay classes — without building
    the {!classes} list. *)

val version : t -> int
(** Mutation counter: incremented by every {!add} and {!remove}.  Caches
    keyed on a scheduler's state compare a remembered version against this
    to detect staleness (see {!refresh_breakpoints}). *)

val add : t -> rate:float -> delay:float -> lmax:float -> unit
(** Registers a flow.  No schedulability check is made — callers decide via
    {!can_admit} first.  The delay is canonicalized (mantissa rounded at
    [2^-36] relative precision) before grouping, so float noise below
    ~7e-12 relative cannot split one logical delay class into several —
    and because the canonical value is a pure function of the delay,
    {!remove} with the same float always finds the class {!add} booked
    into.  Raises [Invalid_argument] on non-positive [rate], [lmax] or
    negative [delay]. *)

val remove : t -> rate:float -> delay:float -> lmax:float -> unit
(** Unregisters a flow previously added with the same parameters, matching
    its delay class by the same canonicalization as {!add}.  Raises
    [Invalid_argument] if no flow with this delay is present. *)

val demand : t -> at:float -> float
(** Left side of eq. (5) at time [at]:
    [sum over flows with d^j <= at of (r^j (at - d^j) + lmax^j)]. *)

val rate_below : t -> at:float -> float
(** Sum of reserved rates of flows with delay parameter [<= at] — the local
    slope of {!demand}. *)

val residual_service : t -> at:float -> float
(** [S(at) = C*at - demand at]: the minimal residual service over any
    interval of length [at].  At a breakpoint [d^m] this is the paper's
    [S_i^k]. *)

val breakpoints : t -> (float * float) list
(** [(d^m, S at d^m)] for every distinct delay, ascending, computed in one
    linear pass — the O(M) building block of the Section-3.2 admission
    algorithm. *)

val breakpoints_into : t -> d:float array -> s:float array -> int
(** Allocation-free {!breakpoints}: writes the delays into [d] and the
    residual services into [s] and returns [class_count].  The values are
    identical to those of {!breakpoints}.  Raises [Invalid_argument] when a
    buffer is shorter than {!class_count}. *)

val refresh_breakpoints :
  t ->
  since:int ->
  d:float array ->
  s:float array ->
  dem:float array ->
  rcum:float array ->
  int * int
(** Incremental {!breakpoints_into} for a {e single} caching consumer.
    [d]/[s] are the breakpoint buffers; [dem]/[rcum] persist the running
    demand and cumulative-rate prefix sums between calls.  [since] is the
    {!version} observed by the caller's previous refresh ([-1] for a cold
    cache).  Only entries from the first delay class touched since [since]
    onward are recomputed — a flow add/remove updates the suffix of the
    table starting at its own class, so a mutation at the largest delay
    costs O(1).  Returns [(class_count, from)] where [from] is the first
    recomputed index ([from = class_count] when nothing changed).  Values
    are identical to a full {!breakpoints_into}.  Because the call resets
    the internal dirty window, at most one cache per scheduler may use this
    API (ours is the per-link cache shared by all paths crossing the link).
    Raises [Invalid_argument] when a buffer is shorter than
    {!class_count}. *)

val schedulable : t -> bool
(** Exact check of eq. (5) over the current population. *)

val can_admit : t -> rate:float -> delay:float -> lmax:float -> bool
(** Exact check that eq. (5) still holds after adding the candidate flow:
    the slope condition [total_rate + rate <= C], the candidate's own
    constraint at [t = delay], and the constraint at every existing
    breakpoint [d^m >= delay].  Assumes the current population is
    schedulable. *)

val min_feasible_delay : t -> lmax:float -> float option
(** Smallest delay parameter [d] such that a {e zero-rate} flow of maximum
    packet size [lmax] would be schedulable at [t = d]
    ([residual_service d >= lmax]); the true minimum feasible delay for a
    positive-rate candidate is at least this.  [None] if no such delay
    exists (the scheduler is saturated). *)

val copy : t -> t
(** A deep, independent replica of the current population (identical
    {!breakpoints}, {!demand}, {!can_admit} answers).  Used by the sharded
    broker's coordinator to run exact cross-shard admission on state
    gathered from owning domains.  The replica's incremental-refresh
    window starts clean. *)

val pp : t Fmt.t
