type sched_class = Rate_based | Delay_based

let pp_sched_class ppf = function
  | Rate_based -> Fmt.string ppf "rate-based"
  | Delay_based -> Fmt.string ppf "delay-based"

type link = {
  link_id : int;
  src : string;
  dst : string;
  capacity : float;
  prop_delay : float;
  sched : sched_class;
  psi : float;
}

type t = {
  mutable node_order : string list;  (* reversed insertion order *)
  node_set : (string, unit) Hashtbl.t;
  mutable link_order : link list;  (* reversed insertion order *)
  mutable by_id : link option array;  (* dense: index = link_id *)
  by_endpoints : (string * string, link) Hashtbl.t;
  mutable next_id : int;
  down : (int, unit) Hashtbl.t;  (* link ids currently failed *)
  mutable state_version : int;  (* bumped on every up/down transition *)
}

let create () =
  {
    node_order = [];
    node_set = Hashtbl.create 16;
    link_order = [];
    by_id = Array.make 8 None;
    by_endpoints = Hashtbl.create 16;
    next_id = 0;
    down = Hashtbl.create 4;
    state_version = 0;
  }

let mem_node t name = Hashtbl.mem t.node_set name

let add_node t name =
  if not (mem_node t name) then begin
    Hashtbl.replace t.node_set name ();
    t.node_order <- name :: t.node_order
  end

let mtu_bits = 12000.

let add_link t ~src ~dst ~capacity ?(prop_delay = 0.) ?psi sched =
  if capacity <= 0. then invalid_arg "Topology.add_link: capacity must be positive";
  if Hashtbl.mem t.by_endpoints (src, dst) then
    invalid_arg (Printf.sprintf "Topology.add_link: duplicate link %s -> %s" src dst);
  add_node t src;
  add_node t dst;
  let psi = match psi with Some p -> p | None -> mtu_bits /. capacity in
  let link =
    { link_id = t.next_id; src; dst; capacity; prop_delay; sched; psi }
  in
  t.next_id <- t.next_id + 1;
  t.link_order <- link :: t.link_order;
  if link.link_id >= Array.length t.by_id then begin
    let grown = Array.make (2 * Array.length t.by_id) None in
    Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
    t.by_id <- grown
  end;
  t.by_id.(link.link_id) <- Some link;
  Hashtbl.replace t.by_endpoints (src, dst) link;
  link

let nodes t = List.rev t.node_order

let links t = List.rev t.link_order

let num_links t = t.next_id

let link_by_id t id =
  if id < 0 || id >= t.next_id then raise Not_found
  else match t.by_id.(id) with Some l -> l | None -> raise Not_found

let find_link t ~src ~dst = Hashtbl.find_opt t.by_endpoints (src, dst)

let out_links t name = List.filter (fun l -> l.src = name) (links t)

let link_is_up t ~link_id = not (Hashtbl.mem t.down link_id)

let set_link_state t ~link_id ~up =
  if link_id < 0 || link_id >= t.next_id then
    invalid_arg (Printf.sprintf "Topology.set_link_state: unknown link id %d" link_id);
  let is_up = link_is_up t ~link_id in
  if is_up <> up then begin
    if up then Hashtbl.remove t.down link_id else Hashtbl.replace t.down link_id ();
    t.state_version <- t.state_version + 1
  end

let down_links t = List.filter (fun l -> not (link_is_up t ~link_id:l.link_id)) (links t)

let state_version t = t.state_version

let rec is_path_links = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a.dst = b.src && is_path_links rest

let is_path t = function
  | [] -> false
  | l :: _ as path -> mem_node t l.src && is_path_links path

let hop_count path = List.length path

let rate_based_hops path =
  List.length (List.filter (fun l -> l.sched = Rate_based) path)

let delay_based_hops path =
  List.length (List.filter (fun l -> l.sched = Delay_based) path)

let d_tot path =
  List.fold_left (fun acc l -> acc +. l.psi +. l.prop_delay) 0. path

(* A structurally independent replica: same nodes, same links (same ids,
   since ids follow insertion order), same up/down state.  Each broker
   shard works on its own copy so no mutable topology state is ever
   shared across domains. *)
let copy t =
  let c = create () in
  List.iter (add_node c) (nodes t);
  List.iter
    (fun l ->
      ignore
        (add_link c ~src:l.src ~dst:l.dst ~capacity:l.capacity
           ~prop_delay:l.prop_delay ~psi:l.psi l.sched))
    (links t);
  List.iter (fun l -> set_link_state c ~link_id:l.link_id ~up:false) (down_links t);
  c
