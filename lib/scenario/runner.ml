module Engine = Bbr_netsim.Engine
module Fault = Bbr_netsim.Fault
module Broker = Bbr_broker.Broker
module Cops = Bbr_broker.Cops
module Ov = Bbr_broker.Overload
module Admission = Bbr_broker.Admission
module Audit = Bbr_broker.Audit
module Journal = Bbr_broker.Journal
module Storage = Bbr_broker.Storage
module Failover = Bbr_broker.Failover
module Vfs = Bbr_util.Vfs
module Policy = Bbr_broker.Policy
module Types = Bbr_broker.Types
module Topology = Bbr_vtrs.Topology
module Topo_gen = Bbr_workload.Topo_gen
module Fig8 = Bbr_workload.Fig8
module Prng = Bbr_util.Prng
module Flight = Bbr_obs.Flight

type outcome = {
  scenario : Scenario.t;
  offered : int;
  admitted : int;
  rejected : int;
  busy : int;
  completed : int;
  pipeline : Ov.stats;
  p50_latency : float;
  p95_latency : float;
  brownout_time : float;
  baseline_goodput : float;
  measurements : Slo.measurement list;
  genuine_anomalies : Monitor.anomaly list;
  expected_anomalies : int;
  monitor_samples : int;
  audit_ok : bool;
  digest : string;
  messages : int;
  retransmissions : int;
  unresolved : int;
  promote_error : string option;
  checkpoint_fallback : bool;
  storage_scrub_errors : int;
}

let slo_ok o = List.for_all (fun (m : Slo.measurement) -> m.Slo.met) o.measurements

let ok o =
  o.genuine_anomalies = [] && slo_ok o && o.audit_ok && o.promote_error = None
  && o.unresolved = 0

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>%s: %s@,\
     offered %d  admitted %d  rejected %d  busy %d  completed %d@,\
     pipeline: decided %d  shed %d  max depth %d  brownout %.1f s  \
     conservative %d@,\
     latency: p50 %.3f s  p95 %.3f s@,\
     goodput baseline %.3f@,\
     monitor: %d samples, %d expected anomalies, %d GENUINE@,\
     %a@,\
     audit %s  unresolved %d%a@]"
    o.scenario.Scenario.name (if ok o then "PASS" else "FAIL") o.offered
    o.admitted o.rejected o.busy o.completed o.pipeline.Ov.decided
    (Ov.shed_total o.pipeline) o.pipeline.Ov.max_depth o.brownout_time
    o.pipeline.Ov.conservative_decisions o.p50_latency o.p95_latency
    o.baseline_goodput o.monitor_samples o.expected_anomalies
    (List.length o.genuine_anomalies)
    (Fmt.list ~sep:Fmt.cut Slo.pp_measurement)
    o.measurements
    (if o.audit_ok then "clean" else "VIOLATIONS")
    o.unresolved
    (Fmt.option (fun ppf e -> Fmt.pf ppf "@,promotion FAILED: %s" e))
    o.promote_error;
  if o.checkpoint_fallback || o.storage_scrub_errors > 0 then
    Fmt.pf ppf "@,storage: %d scrub detection(s)%s" o.storage_scrub_errors
      (if o.checkpoint_fallback then
         ", promotion fell back to the prior checkpoint generation"
       else "")

(* ------------------------------------------------------------------ *)
(* Topology and fault targeting. *)

let build_topology sc prng =
  match sc.Scenario.topology with
  | Scenario.Fig8 setting -> Fig8.topology setting
  | Scenario.Power_law { nodes; m } -> Topo_gen.power_law prng ~nodes ~m ()

(* Both directions of every undirected adjacency touching [node]. *)
let links_at topo node =
  List.filter
    (fun (l : Topology.link) -> l.Topology.src = node || l.Topology.dst = node)
    (Topology.links topo)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

(* The concrete link ids a declared fault brings down. *)
let fault_links topo = function
  | Scenario.Broker_crash _ | Scenario.Disk_fault _ -> []
  | Scenario.Regional_links { count; _ } -> (
      match Topo_gen.hubs topo with
      | [] -> []
      | hub :: _ ->
          (* [count] undirected adjacencies at the top hub, both
             directions each — a regional outage around a core. *)
          let outgoing =
            List.filter (fun (l : Topology.link) -> l.Topology.src = hub)
              (Topology.links topo)
          in
          List.concat_map
            (fun (l : Topology.link) ->
              l.Topology.link_id
              ::
              (match Topology.find_link topo ~src:l.Topology.dst ~dst:l.Topology.src with
              | Some back -> [ back.Topology.link_id ]
              | None -> []))
            (take count outgoing))
  | Scenario.Partition { leaves; _ } ->
      let stubs = take leaves (Topo_gen.leaves topo) in
      List.sort_uniq compare
        (List.concat_map
           (fun node ->
             List.map (fun (l : Topology.link) -> l.Topology.link_id) (links_at topo node))
           stubs)

(* ------------------------------------------------------------------ *)
(* Workload materialization: a non-homogeneous Poisson process sampled
   by thinning against the shape's peak rate, each arrival carrying its
   class, endpoints and holding time — a pure function of the seed. *)

type arrival = {
  at : float;
  klass : Traffic_mix.klass;
  ingress : string;
  egress : string;
  holding : float;
}

let arrivals sc topo prng =
  let arr_rng = Prng.split prng in
  let thin_rng = Prng.split prng in
  let pick_rng = Prng.split prng in
  let hold_rng = Prng.split prng in
  let end_rng = Prng.split prng in
  let peak = Float.max 1e-9 (Scenario.peak_rate sc.Scenario.load) in
  let endpoints =
    match sc.Scenario.topology with
    | Scenario.Fig8 _ ->
        fun () ->
          if Prng.float end_rng < 0.5 then (Fig8.ingress1, Fig8.egress1)
          else (Fig8.ingress2, Fig8.egress2)
    | Scenario.Power_law _ -> fun () -> Topo_gen.random_endpoints end_rng topo
  in
  let rec go acc t =
    let t = t +. Prng.exponential arr_rng ~mean:(1. /. peak) in
    if t >= sc.Scenario.duration then List.rev acc
    else if Prng.float thin_rng *. peak <= Scenario.rate_at sc.Scenario.load t then begin
      let klass = Traffic_mix.pick pick_rng in
      let ingress, egress = endpoints () in
      let holding = Prng.exponential hold_rng ~mean:sc.Scenario.mean_holding in
      go ({ at = t; klass; ingress; egress; holding } :: acc) t
    end
    else go acc t
  in
  go [] 0.

let exact_oracle broker (req : Types.request) =
  match Broker.route_of broker req with
  | None -> false
  | Some path ->
      let ps =
        Admission.path_state (Broker.node_mib broker) (Broker.path_mib broker) path
      in
      Result.is_ok (Admission.admit ps req.Types.profile ~dreq:req.Types.dreq)

(* ------------------------------------------------------------------ *)

let run sc =
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now engine))
    (Bbr_obs.Trace.current ());
  let prng = Prng.create ~seed:sc.Scenario.seed in
  let topo = build_topology sc prng in
  let time =
    {
      Broker.now = (fun () -> Engine.now engine);
      after = (fun delay f -> Engine.schedule_after engine ~delay f);
    }
  in
  let policy = Policy.create () in
  Traffic_mix.install_policy policy;
  let make () = Broker.create ~policy ~time topo in
  (* fsync-per-record through a real (simulated) disk: the record chain
     loses nothing at a crash, so a promotion must reproduce the
     pre-crash digest exactly — any difference is a genuine violation,
     not modelled data loss.  Even when a Disk_fault rots the current
     checkpoint generation, recovery falls back to the prior generation
     plus a longer replay and the digest still matches. *)
  let store = Storage.create ~vfs:(Vfs.create ~seed:sc.Scenario.seed ()) () in
  let journal = Journal.create ~fsync_every:1 ~storage:store () in
  let fw = Failover.create ~make_standby:make ~time ~journal ~storage:store (make ()) in
  Failover.start_checkpoints fw ~every:(Float.max 5. (sc.Scenario.duration /. 50.));
  let ov =
    Ov.create ~config:sc.Scenario.pipeline
      ~oracle:(fun req -> exact_oracle (Failover.active fw) req)
      ~time (Failover.active fw)
  in
  let jitter_rng = Prng.split prng in
  let cops =
    Cops.create (Failover.active fw) ~latency:sc.Scenario.latency
      ~reliability:
        (Cops.reliability
           ~loss:(fun () -> false)
           ~jitter:(fun () -> Prng.float jitter_rng)
           ())
      ~pdp:(fun req k -> Ov.submit ov req k)
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  if Flight.armed () <> None then
    Flight.set_digest (fun () ->
        if Failover.is_up fw then Some (Audit.mib_digest (Failover.active fw))
        else None);
  (* Monitor + SLO plumbing. *)
  let monitor =
    Monitor.create ~now:(fun () -> Engine.now engine) ~windows:(Scenario.windows sc) ()
  in
  let slo = Slo.create ~budgets:sc.Scenario.slo in
  List.iter (Slo.declare slo) (Scenario.events sc);
  (* Workload. *)
  let plan = arrivals sc topo prng in
  let submitted = ref 0 and admitted = ref 0 in
  let rejected = ref 0 and busy = ref 0 and completed = ref 0 in
  List.iter
    (fun a ->
      Engine.schedule engine ~at:a.at (fun () ->
          incr submitted;
          Cops.request cops
            {
              Types.profile = a.klass.Traffic_mix.profile;
              dreq = a.klass.Traffic_mix.dreq;
              ingress = a.ingress;
              egress = a.egress;
            }
            ~on_decision:(function
              | Ok (flow, _) ->
                  incr admitted;
                  Engine.schedule_after engine ~delay:a.holding (fun () ->
                      Cops.teardown cops flow;
                      incr completed)
              | Error (Types.Server_busy _) -> incr busy
              | Error _ -> incr rejected)))
    plan;
  (* Faults.  Link operations hitting a crashed broker are deferred (in
     injection order) until promotion: the data plane changed while the
     control plane was down, and the successor discovers it on arrival. *)
  let pending : (unit -> unit) list ref = ref [] in
  let when_up f = if Failover.is_up fw then f () else pending := f :: !pending in
  let flush_pending () =
    let ps = List.rev !pending in
    pending := [];
    List.iter (fun f -> f ()) ps
  in
  let promote_error = ref None in
  let checkpoint_fallback = ref false in
  let scrub_errors = ref 0 in
  let crash_promote_after =
    List.find_map
      (function
        | Scenario.Broker_crash { promote_after; _ } -> Some promote_after
        | _ -> None)
      sc.Scenario.faults
  in
  let hooks =
    Fault.hooks
      ~on_link_down:(fun link_id ->
        when_up (fun () ->
            ignore (Broker.fail_link (Failover.active fw) ~link_id)))
      ~on_link_up:(fun link_id ->
        when_up (fun () -> Broker.restore_link (Failover.active fw) ~link_id))
      ~on_crash:(fun _ ->
        let digest_at_crash = Audit.mib_digest (Failover.active fw) in
        (* The process dies: the disk keeps only what was fsynced. *)
        Storage.crash store;
        Ov.quiesce ov;
        Failover.crash fw;
        Cops.set_pdp_up cops false;
        let promote_after = Option.value ~default:0.5 crash_promote_after in
        Engine.schedule_after engine ~delay:promote_after (fun () ->
            match Failover.promote fw with
            | Ok _ ->
                let recovered = Failover.active fw in
                if Audit.mib_digest recovered <> digest_at_crash then
                  Monitor.note monitor Monitor.Digest_mismatch
                    "recovered broker digest differs from pre-crash digest";
                (match Failover.last_recovery fw with
                | Some r ->
                    if r.Failover.sr_fallback then checkpoint_fallback := true
                | None -> ());
                Ov.retarget ov recovered;
                Cops.set_broker cops recovered;
                Cops.set_pdp_up cops true;
                flush_pending ()
            | Error e -> promote_error := Some e))
      ()
  in
  let fault_events =
    List.concat_map
      (fun fault ->
        match fault with
        | Scenario.Broker_crash { at; _ } -> [ Fault.event ~at (Fault.Crash "broker") ]
        | Scenario.Disk_fault _ -> []
        | Scenario.Regional_links { at; duration; _ }
        | Scenario.Partition { at; duration; _ } ->
            let ids = fault_links topo fault in
            List.map (fun id -> Fault.event ~at (Fault.Link_down id)) ids
            @ List.map
                (fun id -> Fault.event ~at:(at +. duration) (Fault.Link_up id))
                ids)
      sc.Scenario.faults
  in
  Fault.install engine hooks fault_events;
  (* Disk faults are not data-plane events: they rot the current
     checkpoint generation at rest, and an immediate scrub pass detects
     (and counts) the damage.  Recovery feels it only at the next
     promotion, which must degrade to the prior generation. *)
  List.iter
    (function
      | Scenario.Disk_fault { at; _ } ->
          Engine.schedule engine ~at (fun () ->
              ignore (Storage.bitrot_checkpoint store);
              let r = Storage.scrub store in
              scrub_errors := !scrub_errors + List.length r.Storage.errors)
      | _ -> ())
    sc.Scenario.faults;
  (* Standing invariant probe: the monitor samples it continuously and
     classifies each finding against the declared fault windows.  The
     audit verdict doubles as the SLO oracle's clean-audit series. *)
  let sample_every = Float.max 0.5 (sc.Scenario.duration /. 600.) in
  let last_oracle_violations = ref 0 in
  let probe () =
    let now = Engine.now engine in
    let up = Failover.is_up fw in
    let audit_clean = up && Audit.ok (Audit.check (Failover.active fw)) in
    Slo.note_audit slo ~at:now audit_clean;
    let found = ref [] in
    if not audit_clean then
      found :=
        (Monitor.Audit_violation, if up then "MIB cross-check failed" else "broker down")
        :: !found;
    let ovs = (Ov.stats ov).Ov.oracle_violations in
    if ovs > !last_oracle_violations then begin
      found :=
        ( Monitor.Oracle_violation,
          Printf.sprintf "%d new over-admissions" (ovs - !last_oracle_violations) )
        :: !found;
      last_oracle_violations := ovs
    end;
    !found
  in
  Monitor.start_sampling monitor engine ~every:sample_every ~probe;
  (* Goodput (trailing admit ratio) and brownout time series. *)
  let goodput_window = 10 in
  let history = ref [] (* (submitted, admitted), newest first *) in
  let brownout_time = ref 0. in
  let sampling = ref true in
  let rec sample () =
    if !sampling then begin
      let now = Engine.now engine in
      if Ov.brownout ov then brownout_time := !brownout_time +. sample_every;
      history := (!submitted, !admitted) :: take goodput_window !history;
      (match List.rev !history with
      | (s0, a0) :: _ when !submitted > s0 ->
          Slo.note_goodput slo ~at:now
            (float_of_int (!admitted - a0) /. float_of_int (!submitted - s0))
      | _ -> ());
      Slo.note_brownout slo ~at:now (Ov.brownout ov);
      Engine.schedule_after engine ~delay:sample_every sample
    end
  in
  Engine.schedule_after engine ~delay:sample_every sample;
  (* Run, then drain. *)
  Engine.run ~until:sc.Scenario.horizon engine;
  sampling := false;
  Monitor.stop monitor;
  Ov.stop ov;
  Failover.stop fw;
  if !promote_error = None then Engine.run engine;
  let active = Failover.active fw in
  let audit = Audit.check active in
  let measurements = Slo.report slo in
  {
    scenario = sc;
    offered = List.length plan;
    admitted = !admitted;
    rejected = !rejected;
    busy = !busy;
    completed = !completed;
    pipeline = Ov.stats ov;
    p50_latency = Ov.latency_quantile ov ~q:0.5;
    p95_latency = Ov.latency_quantile ov ~q:0.95;
    brownout_time = !brownout_time;
    baseline_goodput = Slo.baseline slo;
    measurements;
    genuine_anomalies = Monitor.genuine monitor;
    expected_anomalies = List.length (Monitor.expected monitor);
    monitor_samples = Monitor.samples monitor;
    audit_ok = Audit.ok audit;
    digest = Audit.mib_digest active;
    messages = Cops.messages cops;
    retransmissions = Cops.retransmissions cops;
    unresolved = Cops.pending cops;
    promote_error = !promote_error;
    checkpoint_fallback = !checkpoint_fallback;
    storage_scrub_errors = !scrub_errors;
  }
