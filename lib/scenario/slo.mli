(** Recovery-SLO oracle.

    The runner stamps every injected event ({!declare}) and feeds the
    oracle three time series sampled during the run: goodput (admitted
    flows/s over a sliding window), audit cleanliness, and the overload
    pipeline's brownout state.  At the end, each event is judged against
    the scenario's budgets: time-to-goodput-recovery (back to
    [goodput_frac] x the pre-disturbance baseline), time-to-clean-audit,
    and time-to-brownout-exit, all measured from the event's declared
    heal instant.  Any breach triggers the armed {!Bbr_obs.Flight}
    recorder. *)

type measurement = {
  event : string;
  metric : string;  (** ["goodput_recovery" | "clean_audit" | "brownout_exit"] *)
  value : float option;  (** seconds from heal; [None] = never recovered *)
  budget : float;
  met : bool;
}

type t

val create : budgets:Scenario.slo -> t

val note_goodput : t -> at:float -> float -> unit
val note_audit : t -> at:float -> bool -> unit
val note_brownout : t -> at:float -> bool -> unit

val declare : t -> Scenario.event -> unit
(** Stamp one injected event for post-hoc judgment. *)

val baseline : t -> float
(** Mean goodput over the samples preceding the first declared
    injection. *)

val measure : t -> measurement list
(** Three measurements per declared event, in declaration order. *)

val breaches : t -> measurement list

val ok : t -> bool

val report : t -> measurement list
(** {!measure}, plus {!Bbr_obs.Flight.trigger} on every breach — the
    black-box hook. *)

val pp_measurement : measurement Fmt.t
