(** Standing invariant monitor.

    Samples invariant probes continuously {e during} a scenario run — not
    just at the end — and classifies every violation against the
    scenario's declared fault windows: inside a window degradation is
    expected (capacity loss, recovery transients); outside, it is a
    genuine violation, and the first one triggers the armed
    {!Bbr_obs.Flight} recorder so the black box captures the state at
    first anomaly. *)

type kind =
  | Audit_violation  (** MIB cross-check found a violation *)
  | Oracle_violation  (** pipeline admitted what the exact oracle rejects *)
  | Digest_mismatch  (** recovered broker digest ≠ pre-crash digest *)
  | Goodput_floor  (** goodput below floor outside any fault window *)

val kind_label : kind -> string

type anomaly = {
  at : float;
  kind : kind;
  detail : string;
  expected : bool;  (** fell inside a declared fault window *)
}

type t

val create :
  now:(unit -> float) -> windows:(float * float) list -> unit -> t

val note : t -> kind -> string -> unit
(** Record one violation observed now; fires {!Bbr_obs.Flight.trigger}
    if it lands outside every declared window. *)

val start_sampling :
  t ->
  Bbr_netsim.Engine.t ->
  every:float ->
  probe:(unit -> (kind * string) list) ->
  unit
(** Schedule a sampling loop: every [every] sim seconds, [probe] returns
    the violations visible right now (empty list = all invariants hold)
    and each is {!note}d.  Runs until {!stop}. *)

val stop : t -> unit

val anomalies : t -> anomaly list
(** In observation order. *)

val genuine : t -> anomaly list
(** Anomalies outside every declared fault window — must be empty for a
    scenario to pass. *)

val expected : t -> anomaly list

val samples : t -> int
(** Number of probe rounds taken. *)

val pp_anomaly : anomaly Fmt.t
