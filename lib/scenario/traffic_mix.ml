module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Policy = Bbr_broker.Policy
module Types = Bbr_broker.Types
module Prng = Bbr_util.Prng

type klass = {
  name : string;
  weight : float;
  profile : Traffic.t;
  dreq : float;
  priority : int;
}

let mtu = Topology.mtu_bits

(* The peak rates are deliberately pairwise distinct: the policy rules
   below classify a request by its profile's peak, so each class must be
   recognizable from the wire-visible TSpec alone. *)
let classes =
  [
    {
      name = "control";
      weight = 0.05;
      profile = Traffic.make ~sigma:(2. *. mtu) ~rho:8_000. ~peak:16_000. ~lmax:mtu;
      dreq = 0.8;
      priority = 40;
    };
    {
      name = "realtime";
      weight = 0.15;
      profile = Traffic.make ~sigma:(4. *. mtu) ~rho:64_000. ~peak:100_000. ~lmax:mtu;
      dreq = 1.0;
      priority = 30;
    };
    {
      name = "priority";
      weight = 0.20;
      profile = Traffic.make ~sigma:(6. *. mtu) ~rho:48_000. ~peak:80_000. ~lmax:mtu;
      dreq = 2.0;
      priority = 20;
    };
    {
      name = "standard";
      weight = 0.40;
      profile = Traffic.make ~sigma:(8. *. mtu) ~rho:32_000. ~peak:64_000. ~lmax:mtu;
      dreq = 4.0;
      priority = 10;
    };
    {
      name = "bulk";
      weight = 0.20;
      profile = Traffic.make ~sigma:(16. *. mtu) ~rho:96_000. ~peak:128_000. ~lmax:mtu;
      dreq = 8.0;
      priority = 0;
    };
  ]

let find name = List.find_opt (fun k -> k.name = name) classes

let install_policy policy =
  List.iter
    (fun k ->
      if k.priority > 0 then
        let peak = k.profile.Traffic.peak in
        Policy.add_priority_rule policy ~name:("class-" ^ k.name)
          ~matches:(fun (r : Types.request) ->
            Float.abs (r.Types.profile.Traffic.peak -. peak) < 0.5)
          ~priority:k.priority)
    classes

let pick prng =
  let total = List.fold_left (fun a k -> a +. k.weight) 0. classes in
  let x = Prng.float prng *. total in
  let rec go acc = function
    | [] -> List.nth classes (List.length classes - 1)
    | k :: rest -> if x < acc +. k.weight then k else go (acc +. k.weight) rest
  in
  go 0. classes

let classify (req : Types.request) =
  List.find_opt
    (fun k -> Float.abs (req.Types.profile.Traffic.peak -. k.profile.Traffic.peak) < 0.5)
    classes
