(** Multi-class traffic taxonomy for scenario workloads.

    Five service classes spanning the control/realtime/priority/standard/
    bulk ladder, each with a dual-token-bucket profile, a delay
    requirement, a share of the offered mix, and a policy priority.  The
    peak rates are pairwise distinct so the broker's priority rules can
    classify a request from its TSpec alone — the classification the
    overload pipeline's watermark shedding keys on. *)

type klass = {
  name : string;
  weight : float;  (** share of the offered arrival mix *)
  profile : Bbr_vtrs.Traffic.t;
  dreq : float;  (** end-to-end delay requirement, seconds *)
  priority : int;  (** {!Bbr_broker.Policy} shedding priority *)
}

val classes : klass list
(** Ordered most- to least-important: control, realtime, priority,
    standard, bulk. *)

val find : string -> klass option

val install_policy : Bbr_broker.Policy.t -> unit
(** Add one priority rule per class (matching on the class's peak rate)
    so watermark shedding evicts bulk before control. *)

val pick : Bbr_util.Prng.t -> klass
(** Draw a class with probability proportional to its weight. *)

val classify : Bbr_broker.Types.request -> klass option
(** The class whose profile peak the request carries, if any. *)
