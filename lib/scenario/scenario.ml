module Ov = Bbr_broker.Overload
module Fig8 = Bbr_workload.Fig8

type topology_spec =
  | Fig8 of Fig8.setting
  | Power_law of { nodes : int; m : int }

type load_shape =
  | Constant of float
  | Diurnal of { base : float; amplitude : float; period : float }
  | Flash of {
      shape : load_shape;
      at : float;
      mult : float;
      rise : float;
      hold : float;
      fall : float;
    }

type fault =
  | Regional_links of { at : float; duration : float; count : int }
  | Partition of { at : float; duration : float; leaves : int }
  | Broker_crash of { at : float; promote_after : float }
  | Disk_fault of { at : float; duration : float }

type slo = {
  recover_goodput : float;
  goodput_frac : float;
  clean_audit : float;
  brownout_exit : float;
}

let default_slo =
  { recover_goodput = 30.; goodput_frac = 0.8; clean_audit = 10.; brownout_exit = 60. }

type t = {
  name : string;
  descr : string;
  seed : int;
  topology : topology_spec;
  load : load_shape;
  mean_holding : float;
  duration : float;
  horizon : float;
  latency : float;
  pipeline : Ov.config;
  faults : fault list;
  slo : slo;
}

let default =
  {
    name = "baseline";
    descr = "steady diurnal load, no faults";
    seed = 1;
    topology = Power_law { nodes = 400; m = 2 };
    load = Diurnal { base = 1.0; amplitude = 0.5; period = 400. };
    mean_holding = 60.;
    duration = 600.;
    horizon = 900.;
    latency = 0.005;
    pipeline =
      {
        Ov.default_config with
        Ov.queue_limit = 64;
        deadline = 8.;
        service_exact = 0.25;
        service_conservative = 0.05;
        brownout_sustain = 4.;
        retry_after = 5.;
        batch_limit = 4;
      };
    faults = [];
    slo = default_slo;
  }

(* ------------------------------------------------------------------ *)
(* Load shapes. *)

let two_pi = 2. *. Float.pi

let rec rate_at shape t =
  match shape with
  | Constant r -> r
  | Diurnal { base; amplitude; period } ->
      Float.max 0. (base *. (1. +. (amplitude *. sin (two_pi *. t /. period))))
  | Flash { shape; at; mult; rise; hold; fall } ->
      let base = rate_at shape t in
      let factor =
        if t < at || t > at +. rise +. hold +. fall then 1.
        else if t < at +. rise then 1. +. ((mult -. 1.) *. (t -. at) /. rise)
        else if t < at +. rise +. hold then mult
        else 1. +. ((mult -. 1.) *. (at +. rise +. hold +. fall -. t) /. fall)
      in
      base *. factor

let rec peak_rate shape =
  match shape with
  | Constant r -> r
  | Diurnal { base; amplitude; _ } -> base *. (1. +. Float.abs amplitude)
  | Flash { shape; mult; _ } -> peak_rate shape *. Float.max 1. mult

(* ------------------------------------------------------------------ *)
(* Declared disturbances: every fault, and every flash phase of the load
   shape, is an event with an injection instant and a heal instant.  The
   SLO oracle measures recovery from [healed_at]; the invariant monitor
   treats the window [injected_at, healed_at + grace] as expected
   degradation. *)

type event = { label : string; injected_at : float; healed_at : float }

let rec flash_events = function
  | Constant _ | Diurnal _ -> []
  | Flash { shape; at; rise; hold; fall; mult } ->
      { label = Printf.sprintf "flash-x%g" mult; injected_at = at;
        healed_at = at +. rise +. hold +. fall }
      :: flash_events shape

let fault_event = function
  | Regional_links { at; duration; count } ->
      { label = Printf.sprintf "regional-links-%d" count; injected_at = at;
        healed_at = at +. duration }
  | Partition { at; duration; leaves } ->
      { label = Printf.sprintf "partition-%d" leaves; injected_at = at;
        healed_at = at +. duration }
  | Broker_crash { at; promote_after } ->
      { label = "broker-crash"; injected_at = at; healed_at = at +. promote_after }
  | Disk_fault { at; duration } ->
      { label = "disk-fault"; injected_at = at; healed_at = at +. duration }

let events t = flash_events t.load @ List.map fault_event t.faults

let grace slo =
  Float.max slo.recover_goodput (Float.max slo.clean_audit slo.brownout_exit)

let windows t =
  List.map (fun e -> (e.injected_at, e.healed_at +. grace t.slo)) (events t)

let in_windows ws at = List.exists (fun (lo, hi) -> at >= lo && at <= hi) ws

(* ------------------------------------------------------------------ *)
(* Smoke-scale knob: shrink a scenario by [k] (durations, topology size,
   event instants) without changing its structure.  [k = 1.] is
   identity. *)

let scale k t =
  if k <= 0. then invalid_arg "Scenario.scale: factor must be positive";
  if k = 1. then t
  else begin
    let f x = x /. k in
    let rec scale_load = function
      | Constant r -> Constant r
      | Diurnal { base; amplitude; period } ->
          Diurnal { base; amplitude; period = f period }
      | Flash { shape; at; mult; rise; hold; fall } ->
          Flash
            { shape = scale_load shape; at = f at; mult; rise = f rise;
              hold = f hold; fall = f fall }
    in
    let scale_fault = function
      | Regional_links { at; duration; count } ->
          Regional_links { at = f at; duration = f duration; count }
      | Partition { at; duration; leaves } ->
          Partition { at = f at; duration = f duration; leaves }
      | Broker_crash { at; promote_after } ->
          Broker_crash { at = f at; promote_after }
      | Disk_fault { at; duration } ->
          Disk_fault { at = f at; duration = f duration }
    in
    {
      t with
      topology =
        (match t.topology with
        | Fig8 s -> Fig8 s
        | Power_law { nodes; m } ->
            Power_law { nodes = Stdlib.max 16 (int_of_float (float_of_int nodes /. k)); m });
      load = scale_load t.load;
      mean_holding = f t.mean_holding;
      duration = f t.duration;
      horizon = f t.horizon;
      faults = List.map scale_fault t.faults;
      slo =
        {
          recover_goodput = f t.slo.recover_goodput;
          goodput_frac = t.slo.goodput_frac;
          clean_audit = f t.slo.clean_audit;
          brownout_exit = f t.slo.brownout_exit;
        };
    }
  end
