(** Scenario execution: wires a {!Scenario.t} through the full stack —
    power-law or Figure-8 topology, multi-class COPS workload
    ({!Traffic_mix}), the bounded overload pipeline, journaled
    warm-standby failover, deterministic fault injection — with the
    {!Monitor} sampling invariants throughout and the {!Slo} oracle
    judging every declared event's recovery. *)

type outcome = {
  scenario : Scenario.t;
  offered : int;
  admitted : int;
  rejected : int;  (** broker resource/policy rejections *)
  busy : int;  (** resolved [Server_busy] after all retries *)
  completed : int;
  pipeline : Bbr_broker.Overload.stats;
  p50_latency : float;
  p95_latency : float;
  brownout_time : float;  (** sim seconds spent degraded *)
  baseline_goodput : float;  (** pre-disturbance admit ratio *)
  measurements : Slo.measurement list;
  genuine_anomalies : Monitor.anomaly list;
      (** invariant violations outside every declared fault window *)
  expected_anomalies : int;
  monitor_samples : int;
  audit_ok : bool;  (** final MIB cross-check *)
  digest : string;  (** final {!Bbr_broker.Audit.mib_digest} *)
  messages : int;
  retransmissions : int;
  unresolved : int;
  promote_error : string option;
  checkpoint_fallback : bool;
      (** a storage-mode promotion skipped a corrupt/unverifiable
          checkpoint generation (expected under a
          {!Scenario.fault.Disk_fault}) *)
  storage_scrub_errors : int;
      (** corruption detections by the scrub passes a
          {!Scenario.fault.Disk_fault} triggers *)
}

val slo_ok : outcome -> bool
(** Every recovery-SLO measurement met its budget. *)

val ok : outcome -> bool
(** The scenario passed: no genuine anomalies, all SLOs met, final audit
    clean, promotion (if any) succeeded, no unresolved transactions. *)

val pp_outcome : outcome Fmt.t

val run : Scenario.t -> outcome
(** Execute the scenario to completion (deterministic in
    [scenario.seed]).  If a {!Bbr_obs.Flight} recorder is armed, its MIB
    digest closure is installed and any genuine anomaly or SLO breach
    triggers the black box. *)
