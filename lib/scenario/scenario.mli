(** Declarative chaos-scenario DSL.

    A scenario is a timeline: a topology, a time-varying load shape
    (diurnal sine, flash-crowd spikes, compositions), a list of fault
    injections (regional link bursts, network partitions, broker crash +
    warm-standby promotion), and per-scenario recovery-SLO budgets.  The
    {!Runner} executes it against the full broker stack; {!Monitor} and
    {!Slo} judge it. *)

type topology_spec =
  | Fig8 of Bbr_workload.Fig8.setting  (** the paper's Figure-8 domain *)
  | Power_law of { nodes : int; m : int }
      (** {!Bbr_workload.Topo_gen.power_law} ISP graph *)

type load_shape =
  | Constant of float  (** arrivals/s *)
  | Diurnal of { base : float; amplitude : float; period : float }
      (** [base * (1 + amplitude * sin(2πt/period))], clamped at 0 *)
  | Flash of {
      shape : load_shape;  (** underlying shape the flash multiplies *)
      at : float;
      mult : float;  (** peak multiplier, e.g. 10. *)
      rise : float;
      hold : float;
      fall : float;
    }  (** trapezoid flash crowd composed over [shape] *)

type fault =
  | Regional_links of { at : float; duration : float; count : int }
      (** [count] links at the top hub go down together, restored after
          [duration] *)
  | Partition of { at : float; duration : float; leaves : int }
      (** the [leaves] lowest-degree nodes are cut off entirely *)
  | Broker_crash of { at : float; promote_after : float }
      (** primary dies (journal cut at last fsync), warm standby promoted
          after [promote_after] *)
  | Disk_fault of { at : float; duration : float }
      (** at-rest bit rot in the current checkpoint generation at [at];
          a scrub detects it on the spot.  [duration] bounds the
          expected-degradation window — recovery SLOs are measured from
          [at + duration].  Compose with a {!Broker_crash} shortly after
          to force promotion through the prior-generation fallback *)

(** Per-scenario recovery budgets, all in sim seconds measured from the
    declared heal instant of each event. *)
type slo = {
  recover_goodput : float;  (** goodput back to [goodput_frac] x baseline *)
  goodput_frac : float;
  clean_audit : float;  (** first clean MIB audit *)
  brownout_exit : float;  (** pipeline out of degraded mode *)
}

val default_slo : slo

type t = {
  name : string;
  descr : string;
  seed : int;
  topology : topology_spec;
  load : load_shape;
  mean_holding : float;
  duration : float;  (** arrivals stop here *)
  horizon : float;  (** engine runs (bounded) until here, then drains *)
  latency : float;  (** COPS one-way latency *)
  pipeline : Bbr_broker.Overload.config;
  faults : fault list;
  slo : slo;
}

val default : t
(** 400-node power-law domain, diurnal load, no faults. *)

val rate_at : load_shape -> float -> float
(** Instantaneous arrival rate (arrivals/s) at sim time [t]. *)

val peak_rate : load_shape -> float
(** Upper bound on {!rate_at} over all time — the thinning envelope. *)

(** A declared disturbance: every fault and every flash phase. *)
type event = { label : string; injected_at : float; healed_at : float }

val events : t -> event list

val grace : slo -> float
(** The largest recovery budget — how long after heal degradation is
    still "expected". *)

val windows : t -> (float * float) list
(** Expected-degradation windows: [(injected_at, healed_at + grace)] per
    event. *)

val in_windows : (float * float) list -> float -> bool

val scale : float -> t -> t
(** [scale k t] shrinks durations, event instants, holding times, SLO
    budgets and (power-law) topology size by [k] — the smoke-run knob.
    [scale 1.] is the identity.  Raises [Invalid_argument] on [k <= 0]. *)
