module Ov = Bbr_broker.Overload

let base_load = Scenario.Constant 1.0

let diurnal = Scenario.Diurnal { base = 1.0; amplitude = 0.3; period = 300. }

let flash ?(at = 200.) ?(mult = 8.) shape =
  Scenario.Flash { shape; at; mult; rise = 20.; hold = 60.; fall = 20. }

let scenarios =
  [
    {
      Scenario.default with
      Scenario.name = "diurnal-soak";
      descr = "diurnal sine load on a power-law domain, no faults";
      seed = 11;
      load = diurnal;
      faults = [];
    };
    {
      Scenario.default with
      Scenario.name = "flash-crowd";
      descr = "8x flash crowd over diurnal load; pipeline must brown out and recover";
      seed = 12;
      load = flash diurnal;
      slo = { Scenario.default_slo with Scenario.recover_goodput = 60.; brownout_exit = 90. };
    };
    {
      Scenario.default with
      Scenario.name = "regional-failure";
      descr = "4 core adjacencies at the top hub fail for 60 s under steady load";
      seed = 13;
      load = base_load;
      faults = [ Scenario.Regional_links { at = 200.; duration = 60.; count = 4 } ];
    };
    {
      Scenario.default with
      Scenario.name = "failure-under-overload";
      descr = "regional link burst at the peak of a 6x flash crowd";
      seed = 14;
      load = flash ~at:150. ~mult:6. base_load;
      faults = [ Scenario.Regional_links { at = 190.; duration = 40.; count = 4 } ];
      slo = { Scenario.default_slo with Scenario.recover_goodput = 90.; brownout_exit = 120. };
    };
    {
      Scenario.default with
      Scenario.name = "crash-during-flash-crowd";
      descr = "broker crash + warm-standby promotion in the tail of an 8x flash crowd";
      seed = 15;
      load = flash ~at:200. ~mult:8. base_load;
      faults = [ Scenario.Broker_crash { at = 260.; promote_after = 2. } ];
      slo =
        { Scenario.default_slo with
          Scenario.recover_goodput = 90.; clean_audit = 30.; brownout_exit = 120. };
    };
    {
      Scenario.default with
      Scenario.name = "disk-fault-recovery";
      descr =
        "bit rot in the current checkpoint generation, then a broker crash: \
         promotion must fall back to the prior generation and still recover \
         digest-exact from the intact journal";
      seed = 17;
      load = base_load;
      faults =
        [
          Scenario.Disk_fault { at = 234.; duration = 30. };
          Scenario.Broker_crash { at = 235.; promote_after = 2. };
        ];
      slo = { Scenario.default_slo with Scenario.clean_audit = 30. };
    };
    {
      Scenario.default with
      Scenario.name = "partition-heal";
      descr = "20 stub nodes partitioned for 80 s, then healed";
      seed = 16;
      load = base_load;
      faults = [ Scenario.Partition { at = 200.; duration = 80.; leaves = 20 } ];
    };
  ]

let names = List.map (fun s -> s.Scenario.name) scenarios

let find name = List.find_opt (fun s -> s.Scenario.name = name) scenarios

let run_all ?(scale = 1.) ?names:(wanted = []) () =
  let picked =
    if wanted = [] then scenarios
    else
      List.filter_map
        (fun n ->
          match find n with
          | Some s -> Some s
          | None -> invalid_arg (Printf.sprintf "Matrix.run_all: unknown scenario %S" n))
        wanted
  in
  List.map (fun s -> Runner.run (Scenario.scale scale s)) picked

(* ------------------------------------------------------------------ *)
(* BENCH_scenarios.json *)

let json_float b x =
  if Float.is_nan x || Float.is_integer x && Float.abs x < 1e15 then
    if Float.is_nan x then Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.6g" x)

let to_json ~scale outcomes =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n  \"schema\": \"bbr/scenarios/v1\",\n  \"scale\": %.6g,\n  \"scenarios\": [" scale;
  List.iteri
    (fun i (o : Runner.outcome) ->
      if i > 0 then pf ",";
      let s = o.Runner.scenario in
      pf
        "\n    {\n\
        \      \"name\": %S,\n\
        \      \"descr\": %S,\n\
        \      \"pass\": %b,\n\
        \      \"offered\": %d,\n\
        \      \"admitted\": %d,\n\
        \      \"rejected\": %d,\n\
        \      \"busy\": %d,\n\
        \      \"completed\": %d,\n\
        \      \"goodput_baseline\": "
        s.Scenario.name s.Scenario.descr (Runner.ok o) o.Runner.offered
        o.Runner.admitted o.Runner.rejected o.Runner.busy o.Runner.completed;
      json_float b o.Runner.baseline_goodput;
      pf ",\n      \"decision_p50_s\": ";
      json_float b o.Runner.p50_latency;
      pf ",\n      \"decision_p95_s\": ";
      json_float b o.Runner.p95_latency;
      pf ",\n      \"brownout_time_s\": ";
      json_float b o.Runner.brownout_time;
      pf
        ",\n\
        \      \"genuine_violations\": %d,\n\
        \      \"expected_anomalies\": %d,\n\
        \      \"monitor_samples\": %d,\n\
        \      \"audit_ok\": %b,\n\
        \      \"checkpoint_fallback\": %b,\n\
        \      \"storage_scrub_errors\": %d,\n\
        \      \"slo\": ["
        (List.length o.Runner.genuine_anomalies)
        o.Runner.expected_anomalies o.Runner.monitor_samples o.Runner.audit_ok
        o.Runner.checkpoint_fallback o.Runner.storage_scrub_errors;
      List.iteri
        (fun j (m : Slo.measurement) ->
          if j > 0 then pf ",";
          pf "\n        { \"event\": %S, \"metric\": %S, \"seconds\": " m.Slo.event
            m.Slo.metric;
          (match m.Slo.value with
          | Some v -> json_float b v
          | None -> Buffer.add_string b "null");
          pf ", \"budget\": ";
          json_float b m.Slo.budget;
          pf ", \"met\": %b }" m.Slo.met)
        o.Runner.measurements;
      pf "\n      ]\n    }")
    outcomes;
  pf "\n  ]\n}\n";
  Buffer.contents b

let write_json ~path ~scale outcomes =
  let oc = open_out path in
  output_string oc (to_json ~scale outcomes);
  close_out oc
