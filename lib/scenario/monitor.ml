module Engine = Bbr_netsim.Engine
module Flight = Bbr_obs.Flight

type kind =
  | Audit_violation
  | Oracle_violation
  | Digest_mismatch
  | Goodput_floor

let kind_label = function
  | Audit_violation -> "audit_violation"
  | Oracle_violation -> "oracle_violation"
  | Digest_mismatch -> "digest_mismatch"
  | Goodput_floor -> "goodput_floor"

type anomaly = { at : float; kind : kind; detail : string; expected : bool }

type t = {
  now : unit -> float;
  windows : (float * float) list;
  mutable anomalies : anomaly list;  (* newest first *)
  mutable sampling : bool;
  mutable samples : int;
}

let create ~now ~windows () =
  { now; windows; anomalies = []; sampling = false; samples = 0 }

let note t kind detail =
  let at = t.now () in
  (* A digest mismatch is never expected: with a lossless journal,
     recovery must be digest-exact even inside a fault window. *)
  let expected =
    kind <> Digest_mismatch && Scenario.in_windows t.windows at
  in
  t.anomalies <- { at; kind; detail; expected } :: t.anomalies;
  (* A violation outside every declared fault window is a genuine bug:
     snapshot the black box at the first one. *)
  if not expected then
    Flight.trigger
      ~reason:(Printf.sprintf "monitor:%s at %.3f: %s" (kind_label kind) at detail)

let start_sampling t engine ~every ~probe =
  t.sampling <- true;
  let rec tick () =
    if t.sampling then begin
      t.samples <- t.samples + 1;
      List.iter (fun (kind, detail) -> note t kind detail) (probe ());
      Engine.schedule_after engine ~delay:every tick
    end
  in
  Engine.schedule_after engine ~delay:every tick

let stop t = t.sampling <- false

let anomalies t = List.rev t.anomalies

let genuine t = List.filter (fun a -> not a.expected) (anomalies t)

let expected t = List.filter (fun a -> a.expected) (anomalies t)

let samples t = t.samples

let pp_anomaly ppf a =
  Fmt.pf ppf "[%.3f] %s%s: %s" a.at (kind_label a.kind)
    (if a.expected then " (in fault window)" else " (GENUINE)")
    a.detail
