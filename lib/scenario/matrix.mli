(** The named scenario matrix and its benchmark artifact.

    Six composed chaos campaigns — diurnal soak, flash crowd, regional
    link failure, failure-under-overload, broker crash during a flash
    crowd, partition + heal — each with recovery-SLO budgets.  A full
    run writes [BENCH_scenarios.json] (schema [bbr/scenarios/v1]) with
    goodput, decision latency quantiles, recovery times and violation
    counts per scenario. *)

val scenarios : Scenario.t list

val names : string list

val find : string -> Scenario.t option

val run_all : ?scale:float -> ?names:string list -> unit -> Runner.outcome list
(** Run the whole matrix (or just [names]), each scenario shrunk by
    {!Scenario.scale} [scale] (default 1 — full size).  Raises
    [Invalid_argument] on an unknown name. *)

val to_json : scale:float -> Runner.outcome list -> string

val write_json : path:string -> scale:float -> Runner.outcome list -> unit
(** Raises [Sys_error] on I/O failure. *)
