module Flight = Bbr_obs.Flight

type measurement = {
  event : string;
  metric : string;
  value : float option;  (* seconds from heal; None = never recovered *)
  budget : float;
  met : bool;
}

type t = {
  budgets : Scenario.slo;
  mutable goodput : (float * float) list;  (* newest first *)
  mutable audit : (float * bool) list;
  mutable brownout : (float * bool) list;
  mutable events : Scenario.event list;
}

let create ~budgets = { budgets; goodput = []; audit = []; brownout = []; events = [] }

let note_goodput t ~at v = t.goodput <- (at, v) :: t.goodput
let note_audit t ~at ok = t.audit <- (at, ok) :: t.audit
let note_brownout t ~at b = t.brownout <- (at, b) :: t.brownout
let declare t (e : Scenario.event) = t.events <- e :: t.events

(* Mean goodput before the first declared injection — what "recovered"
   means.  Falls back to the all-run mean when every sample is inside
   some disturbance (a scenario that starts broken). *)
let baseline t =
  let first_injection =
    List.fold_left
      (fun acc (e : Scenario.event) -> Float.min acc e.Scenario.injected_at)
      infinity t.events
  in
  let series = List.rev t.goodput in
  let pre = List.filter (fun (at, _) -> at < first_injection) series in
  let mean = function
    | [] -> 0.
    | l -> List.fold_left (fun a (_, v) -> a +. v) 0. l /. float_of_int (List.length l)
  in
  if pre = [] then mean series else mean pre

(* First sample at or after [from] satisfying [p], as seconds past
   [from]. *)
let first_after series ~from p =
  let rec go = function
    | [] -> None
    | (at, v) :: rest ->
        if at >= from && p v then Some (at -. from) else go rest
  in
  go (List.rev series)

let measure t =
  let base = baseline t in
  let floor = t.budgets.Scenario.goodput_frac *. base in
  List.concat_map
    (fun (e : Scenario.event) ->
      let from = e.Scenario.healed_at in
      let m metric series p budget =
        let value = first_after series ~from p in
        { event = e.Scenario.label; metric; value; budget;
          met = (match value with Some v -> v <= budget | None -> false) }
      in
      [
        m "goodput_recovery" t.goodput
          (fun v -> base <= 0. || v >= floor)
          t.budgets.Scenario.recover_goodput;
        m "clean_audit" t.audit (fun ok -> ok) t.budgets.Scenario.clean_audit;
        m "brownout_exit" t.brownout (fun b -> not b) t.budgets.Scenario.brownout_exit;
      ])
    (List.rev t.events)

let breaches t = List.filter (fun m -> not m.met) (measure t)

let ok t = breaches t = []

(* Satellite hook: an SLO breach is exactly the moment the black box is
   worth keeping — trigger the armed flight recorder per breach (the
   first wins the dump; later ones are counted). *)
let report t =
  let ms = measure t in
  List.iter
    (fun m ->
      if not m.met then
        Flight.trigger
          ~reason:
            (Printf.sprintf "slo:%s:%s %s (budget %.3fs)" m.event m.metric
               (match m.value with
               | Some v -> Printf.sprintf "took %.3fs" v
               | None -> "never recovered")
               m.budget))
    ms;
  ms

let pp_measurement ppf m =
  Fmt.pf ppf "%s/%s: %s (budget %.2fs) %s" m.event m.metric
    (match m.value with
    | Some v -> Printf.sprintf "%.2fs" v
    | None -> "never")
    m.budget
    (if m.met then "OK" else "BREACH")
