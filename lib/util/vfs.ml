type error = Eio | Enospc

let error_label = function Eio -> "eio" | Enospc -> "enospc"

type faults = {
  short_write_p : float;
  write_eio_p : float;
  fsync_eio_p : float;
  fsync_lie_p : float;
  capacity : int option;
}

let no_faults =
  { short_write_p = 0.; write_eio_p = 0.; fsync_eio_p = 0.; fsync_lie_p = 0.;
    capacity = None }

type file = { mutable data : Bytes.t; mutable len : int; mutable durable : int }

type t = {
  files : (string, file) Hashtbl.t;
  prng : Prng.t;
  mutable faults : faults;
  mutable injected : (string * int) list;
}

let create ?(seed = 0) ?(faults = no_faults) () =
  { files = Hashtbl.create 16; prng = Prng.create ~seed; faults; injected = [] }

let set_faults t faults = t.faults <- faults
let faults t = t.faults

let record_fault t label =
  t.injected <-
    (match List.assoc_opt label t.injected with
    | Some n -> (label, n + 1) :: List.remove_assoc label t.injected
    | None -> (label, 1) :: t.injected)

let injected t = List.sort compare t.injected

(* Draw only when the probability is positive, so a zero-fault plan
   consumes nothing from the stream and determinism is unaffected by
   merely having the fault machinery present. *)
let roll t p = p > 0. && Prng.float t.prng < p

let find t name = Hashtbl.find_opt t.files name

let ensure t name =
  match find t name with
  | Some f -> f
  | None ->
      let f = { data = Bytes.create 256; len = 0; durable = 0 } in
      Hashtbl.replace t.files name f;
      f

let total_bytes t = Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0

let reserve f extra =
  let need = f.len + extra in
  if Bytes.length f.data < need then begin
    let cap = max need (2 * Bytes.length f.data) in
    let data = Bytes.create cap in
    Bytes.blit f.data 0 data 0 f.len;
    f.data <- data
  end

let blit_append f s n =
  reserve f n;
  Bytes.blit_string s 0 f.data f.len n;
  f.len <- f.len + n

let append t ~name s =
  if roll t t.faults.write_eio_p then begin
    record_fault t "eio";
    Error Eio
  end
  else
    match t.faults.capacity with
    | Some cap when total_bytes t + String.length s > cap ->
        record_fault t "enospc";
        Error Enospc
    | _ ->
        let f = ensure t name in
        let n =
          if String.length s > 1 && roll t t.faults.short_write_p then begin
            record_fault t "short_write";
            1 + Prng.int t.prng ~bound:(String.length s - 1)
          end
          else String.length s
        in
        blit_append f s n;
        Ok ()

let write t ~name s =
  (* Truncate-then-append: old durable contents are gone the moment the
     replace starts, which is exactly why callers must shadow+rename. *)
  (match find t name with
  | Some f ->
      f.len <- 0;
      f.durable <- 0
  | None -> ());
  append t ~name s

let fsync t ~name =
  match find t name with
  | None -> Error Eio
  | Some f ->
      if roll t t.faults.fsync_eio_p then begin
        record_fault t "fsync_eio";
        Error Eio
      end
      else if roll t t.faults.fsync_lie_p then begin
        record_fault t "fsync_lie";
        Ok ()
      end
      else begin
        f.durable <- f.len;
        Ok ()
      end

let rename t ~src ~dst =
  match find t src with
  | None -> Error Eio
  | Some f ->
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst f;
      Ok ()

let remove t ~name = Hashtbl.remove t.files name

let read t ~name =
  match find t name with
  | None -> Error Eio
  | Some f -> Ok (Bytes.sub_string f.data 0 f.len)

let exists t ~name = Hashtbl.mem t.files name

let size t ~name = match find t name with Some f -> f.len | None -> 0

let list t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files []
  |> List.sort compare

let crash t =
  Hashtbl.iter
    (fun _ f ->
      if f.durable < f.len then begin
        (* Half the unsynced suffix made it to the platter: a torn tail
           cutting through the middle of an in-flight record. *)
        let keep = f.durable + ((f.len - f.durable) / 2) in
        f.len <- keep
      end;
      f.durable <- f.len)
    t.files

let corrupt t ~name ~at ~bit =
  match find t name with
  | Some f when at >= 0 && at < f.len ->
      let b = Char.code (Bytes.get f.data at) in
      Bytes.set f.data at (Char.chr (b lxor (1 lsl (bit land 7))));
      true
  | _ -> false

let bitrot t ~name =
  match find t name with
  | Some f when f.len > 0 ->
      let at = Prng.int t.prng ~bound:f.len in
      let bit = Prng.int t.prng ~bound:8 in
      record_fault t "bitrot";
      ignore (corrupt t ~name ~at ~bit);
      Some at
  | _ -> None

let copy t =
  let files = Hashtbl.create (Hashtbl.length t.files) in
  Hashtbl.iter
    (fun name f ->
      Hashtbl.replace files name
        { data = Bytes.sub f.data 0 (max 1 f.len); len = f.len;
          durable = f.durable })
    t.files;
  { files; prng = Prng.of_state (Prng.state t.prng); faults = t.faults;
    injected = t.injected }

let export t =
  list t
  |> List.map (fun name ->
         match read t ~name with Ok s -> (name, s) | Error _ -> (name, ""))

let import entries =
  let t = create () in
  List.iter
    (fun (name, contents) ->
      let f = ensure t name in
      blit_append f contents (String.length contents);
      f.durable <- f.len)
    entries;
  t
