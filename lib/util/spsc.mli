(** Bounded single-producer/single-consumer channel.

    The mailbox primitive of the sharded broker: the router domain is the
    only producer and the owning shard domain the only consumer, so no
    locks are needed — two atomic indices over a fixed ring.  FIFO,
    bounded, and allocation-free per message beyond the [Some] box.

    The single-producer/single-consumer contract is the caller's
    responsibility: concurrent pushes (or concurrent pops) from two
    domains race and corrupt the ring. *)

type 'a t

val create : capacity:int -> 'a t
(** Ring of at least [capacity] slots (rounded up to a power of two).
    Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Messages currently queued (producer-tail minus consumer-head). *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** [false] when the ring is full. *)

val push : 'a t -> 'a -> unit
(** Blocking {!try_push}: spins briefly, then sleeps in 50 µs slices —
    safe on a host with fewer cores than domains. *)

val try_pop : 'a t -> 'a option

val pop : 'a t -> 'a
(** Blocking {!try_pop}, same backoff as {!push}. *)
