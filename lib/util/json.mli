(** Minimal JSON codec for the observability artifacts (flight-recorder
    black box, Chrome trace export) and their round-trip through the
    critical-path analyzer.  Values are an ordinary algebraic type; all
    numbers are floats, as in JSON itself.

    The printer emits compact one-line JSON.  Non-finite floats are
    written as [1e999] / [-1e999] (which parse back as infinities) and
    NaN as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a description and byte offset. *)

val to_string : t -> string

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val to_float : t -> float option

val to_int : t -> int option
(** Only for numbers that are exact integers. *)

val to_str : t -> string option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option
