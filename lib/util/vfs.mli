(** A simulated filesystem with fault injection — the disk under the
    broker's durable state.

    Every file is a byte buffer split into a {e durable} prefix (what a
    real disk would still hold after power loss) and a volatile suffix
    (written but not yet fsynced).  [crash] models power loss: each file
    reverts to its durable prefix plus a torn half of the unsynced
    suffix, exactly the failure the write-ahead journal must survive.

    A seeded fault plan injects the storage failures that real disks
    exhibit and POSIX lets applications ignore: short writes, [EIO],
    [ENOSPC] (a byte-capacity budget), and lying fsyncs that report
    success without making anything durable.  Deterministic corruption
    primitives ([corrupt], [bitrot]) model at-rest bit rot for
    scrub/recovery testing.  All operations are total: errors are
    returned as values, never raised. *)

type t
(** A mutable in-memory filesystem. *)

type error = Eio | Enospc

val error_label : error -> string
(** ["eio"] / ["enospc"], for metrics labels and messages. *)

type faults = {
  short_write_p : float;  (** probability an append persists only a prefix *)
  write_eio_p : float;    (** probability a write fails outright with [Eio] *)
  fsync_eio_p : float;    (** probability an fsync fails with [Eio] *)
  fsync_lie_p : float;    (** probability an fsync returns [Ok] but durably syncs nothing *)
  capacity : int option;  (** total byte budget across all files; exceeding it is [Enospc] *)
}

val no_faults : faults
(** All probabilities zero, unlimited capacity. *)

val create : ?seed:int -> ?faults:faults -> unit -> t
(** A fresh empty filesystem.  [seed] (default 0) drives every
    probabilistic fault draw and [bitrot], so runs are reproducible. *)

val set_faults : t -> faults -> unit
val faults : t -> faults

(* ------------------------------------------------------------------ *)
(* Write path *)

val append : t -> name:string -> string -> (unit, error) result
(** Append bytes to [name], creating it if absent.  The new bytes are
    volatile until [fsync].  Subject to the fault plan: [Eio] writes
    nothing, [Enospc] writes nothing, a short write silently persists
    only a prefix (and returns [Ok ()] — the caller cannot tell). *)

val write : t -> name:string -> string -> (unit, error) result
(** Replace [name]'s contents entirely.  Modelled as truncate-then-
    append: after [write] the whole file is volatile, so a crash before
    [fsync] can lose both old and new contents — which is why
    checkpoints go through a shadow file and [rename]. *)

val fsync : t -> name:string -> (unit, error) result
(** Make [name]'s current contents durable.  Subject to [fsync_eio_p]
    (explicit failure) and [fsync_lie_p] ([Ok] without durability). *)

val rename : t -> src:string -> dst:string -> (unit, error) result
(** Atomically move [src] over [dst] (replacing it), preserving the
    durable split.  [Eio] if [src] does not exist. *)

val remove : t -> name:string -> unit

(* ------------------------------------------------------------------ *)
(* Read path *)

val read : t -> name:string -> (string, error) result
(** Current full contents (durable + volatile) — the live process view.
    After [crash], volatile bytes are gone so this is the disk truth. *)

val exists : t -> name:string -> bool
val size : t -> name:string -> int
(** [0] when absent. *)

val list : t -> string list
(** All file names, sorted. *)

val total_bytes : t -> int

(* ------------------------------------------------------------------ *)
(* Fault machinery *)

val crash : t -> unit
(** Power loss: every file reverts to its durable prefix plus a torn
    half of whatever was volatile (modelling a partially-persisted tail
    of in-flight sectors).  Everything remaining becomes durable. *)

val corrupt : t -> name:string -> at:int -> bit:int -> bool
(** Flip bit [bit land 7] of byte [at] in [name].  At-rest rot, so the
    durable split is untouched.  [false] if the file is absent or [at]
    out of range. *)

val bitrot : t -> name:string -> int option
(** Flip one seeded-random bit somewhere in [name]; returns the byte
    offset hit, or [None] for a missing/empty file. *)

val injected : t -> (string * int) list
(** Count of injected faults by label ("short_write", "eio", "enospc",
    "fsync_eio", "fsync_lie", "bitrot"), for reporting. *)

(* ------------------------------------------------------------------ *)
(* Cloning and real-directory round trips *)

val copy : t -> t
(** Deep, independent clone (same fault plan; the PRNG stream continues
    from the same state in both).  Used by the corruption matrix to
    mutate one byte per trial against a pristine fixture. *)

val export : t -> (string * string) list
(** [(name, contents)] for every file, sorted by name — for writing a
    store out to a real directory. *)

val import : (string * string) list -> t
(** Rebuild a filesystem from [export] output; everything durable. *)
