(* Minimal JSON codec: just enough for the observability artifacts —
   the flight-recorder black box, the Chrome trace_event export, and
   their round-trip through the critical-path analyzer.  No external
   JSON dependency exists in this repository, so the codec lives here.

   The parser is a plain recursive-descent reader over a string.  It
   accepts the full JSON grammar (RFC 8259) minus one liberty taken by
   our own writers: the exporter spells non-finite floats as the
   strings "+Inf"/"-Inf", which parse back as ordinary strings. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --------------------------------------------------------- *)

let escape v =
  let b = Buffer.create (String.length v + 2) in
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"';
  Buffer.contents b

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
      if Float.is_nan v then Buffer.add_string b "null"
      else if v = infinity then Buffer.add_string b "1e999"
      else if v = neg_infinity then Buffer.add_string b "-1e999"
      else Buffer.add_string b (fnum v)
  | Str s -> Buffer.add_string b (escape s)
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write_buf b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (escape k);
          Buffer.add_char b ':';
          write_buf b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  write_buf b j;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let fail r msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg r.pos))

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let advance r = r.pos <- r.pos + 1

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance r;
      skip_ws r
  | _ -> ()

let expect r c =
  match peek r with
  | Some d when d = c -> advance r
  | _ -> fail r (Printf.sprintf "expected '%c'" c)

let literal r word value =
  let n = String.length word in
  if r.pos + n <= String.length r.src && String.sub r.src r.pos n = word then begin
    r.pos <- r.pos + n;
    value
  end
  else fail r (Printf.sprintf "expected '%s'" word)

let parse_string_body r =
  let b = Buffer.create 16 in
  let rec go () =
    match peek r with
    | None -> fail r "unterminated string"
    | Some '"' -> advance r
    | Some '\\' -> (
        advance r;
        match peek r with
        | None -> fail r "unterminated escape"
        | Some c ->
            advance r;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if r.pos + 4 > String.length r.src then fail r "bad \\u escape";
                let hex = String.sub r.src r.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail r "bad \\u escape"
                in
                r.pos <- r.pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are not
                   recombined — our own writers never emit them. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail r "bad escape");
            go ())
    | Some c ->
        advance r;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number r =
  let start = r.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek r with Some c -> is_num_char c | None -> false) do
    advance r
  done;
  let s = String.sub r.src start (r.pos - start) in
  match float_of_string_opt s with
  | Some v -> Num v
  | None -> fail r (Printf.sprintf "bad number %S" s)

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '"' ->
      advance r;
      Str (parse_string_body r)
  | Some '{' ->
      advance r;
      skip_ws r;
      if peek r = Some '}' then begin
        advance r;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws r;
          expect r '"';
          let k = parse_string_body r in
          skip_ws r;
          expect r ':';
          let v = parse_value r in
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              members ((k, v) :: acc)
          | Some '}' ->
              advance r;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail r "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      advance r;
      skip_ws r;
      if peek r = Some ']' then begin
        advance r;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value r in
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              elements (v :: acc)
          | Some ']' ->
              advance r;
              Arr (List.rev (v :: acc))
          | _ -> fail r "expected ',' or ']'"
        in
        elements []
      end
  | Some 't' -> literal r "true" (Bool true)
  | Some 'f' -> literal r "false" (Bool false)
  | Some 'n' -> literal r "null" Null
  | Some ('-' | '0' .. '9') -> parse_number r
  | Some c -> fail r (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let r = { src = s; pos = 0 } in
  let v = parse_value r in
  skip_ws r;
  if r.pos <> String.length s then fail r "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_obj = function Obj kvs -> Some kvs | _ -> None
