type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

(* Use the top 53 bits so the result is uniform on the unit dyadics
   representable in a float mantissa. *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int.  Plain
     modulo is fine for simulation purposes; the bias is at most 2^-38 for
     any bound below 2^24 and irrelevant here. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t in
  (* [u] lies in [0,1); use 1-u in (0,1] to avoid log 0. *)
  -.mean *. log (1. -. u)

let pick t a =
  assert (Array.length a > 0);
  a.(int t ~bound:(Array.length a))

let state t = t.state

let of_state state = { state }
