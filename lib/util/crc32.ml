(* Standard reflected CRC-32 (polynomial 0xEDB88320), one table lookup
   per byte.  Results match zlib's crc32 / POSIX cksum -o 3. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  let v = Int32.logxor !crc 0xFFFFFFFFl in
  (* Back to a non-negative native int (OCaml ints are >= 63 bits). *)
  Int32.to_int v land 0xFFFFFFFF

let to_hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 -> Some v
    | _ -> None
