(* Bounded single-producer/single-consumer ring.

   The shard mailboxes need exactly one producer (the router domain) and
   one consumer (the shard domain), so the classic two-index ring is
   enough: [head] is advanced only by the consumer, [tail] only by the
   producer, and each side reads the other's index through an [Atomic].
   Publishing order: the producer writes the cell, then advances [tail];
   under the OCaml 5 memory model the atomic store releases the plain
   cell write, so the consumer that observes the new [tail] also
   observes the cell.  The cell is cleared on pop so the ring never
   keeps the last [capacity] messages alive.

   The blocking operations spin briefly (the common case: the peer is
   running on another core) and then sleep in micro-slices, so a
   2-domain run on a single-core host still makes progress at OS
   scheduling granularity instead of burning the whole timeslice. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next slot to push; advanced by the producer *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = pow2 capacity 1 in
  { buf = Array.make cap None; mask = cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t = 0

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let slot = head land t.mask in
    let v = t.buf.(slot) in
    t.buf.(slot) <- None;
    Atomic.set t.head (head + 1);
    v
  end

(* Spin a little, then yield the core in 50 us slices. *)
let backoff spins =
  if spins < 512 then Domain.cpu_relax () else Unix.sleepf 50e-6

let push t v =
  let spins = ref 0 in
  while not (try_push t v) do
    backoff !spins;
    incr spins
  done

let pop t =
  let rec go spins =
    match try_pop t with
    | Some v -> v
    | None ->
        backoff spins;
        go (spins + 1)
  in
  go 0
