type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.lo

let max t = t.hi

let half_ci95 t =
  if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

(* Parallel Welford combine (Chan et al.): exact for count/mean/m2, so
   merging shards is equivalent to one accumulator fed every sample. *)
let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = na +. nb in
    let delta = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }
  end

let pp ppf t =
  if t.n = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.n (mean t) (stddev t)
      t.lo t.hi

let summary t = Fmt.str "%a" pp t

let percentile a ~p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let mean_of = function
  | [] -> invalid_arg "Stats.mean_of: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
