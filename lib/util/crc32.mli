(** CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding each
    write-ahead journal record against torn writes and bit rot.  Pure
    OCaml, table-driven; no dependencies. *)

val string : string -> int
(** Checksum of a whole string, as a non-negative int in [0, 2^32). *)

val to_hex : int -> string
(** Fixed-width lowercase 8-digit hex rendering of a checksum. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] when the input is not 8 hex digits. *)
