(** Small statistics helpers used by the experiment harnesses: sample
    accumulators, confidence intervals and percentile extraction. *)

type t
(** Streaming accumulator over float samples (Welford's algorithm). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the samples added so far; 0 for an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** Smallest sample; [infinity] when empty. *)

val max : t -> float
(** Largest sample; [neg_infinity] when empty. *)

val half_ci95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]); 0 when fewer than two samples. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one (parallel Welford / Chan
    combine): the result is exactly what one accumulator fed every sample
    of both inputs would hold.  Neither input is modified. *)

val pp : t Fmt.t
(** [n=… mean=… sd=… min=… max=…] — the one formatting path shared by
    metric snapshots and bench reports; prints [n=0] when empty. *)

val summary : t -> string
(** {!pp} rendered to a string. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] returns the [p]-th percentile ([0 <= p <= 100]) of the
    samples in [a] using linear interpolation.  [a] is not modified.  Raises
    [Invalid_argument] on an empty array. *)

val mean_of : float list -> float
(** Mean of a list; raises [Invalid_argument] on an empty list. *)
