(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    simulation run is reproducible from a single integer seed.  The generator
    is splitmix64 (Steele, Lea & Flood 2014): tiny state, excellent
    statistical quality for simulation workloads, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    remainder of [t]'s stream.  Used to give each simulation component its
    own stream so that adding draws in one component does not perturb
    another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly from [\[0, 1)]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (inter-arrival times,
    holding times).  [mean] must be positive. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val state : t -> int64
(** The raw generator state, for checkpointing a stream alongside broker
    snapshots.  A generator rebuilt with {!of_state} continues the exact
    same stream — the RNG half of deterministic resume after a crash. *)

val of_state : int64 -> t
(** Rebuild a generator from a saved {!state}. *)
