module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Engine = Bbr_netsim.Engine
module Fluid_edge = Bbr_netsim.Fluid_edge

type scheme =
  | Intserv_gs
  | Perflow_bb
  | Aggr_bb of { cd : float; method_ : Aggregate.method_ }

type step = { n : int; flow_rate : float; total_rate : float; mean_rate : float }

type result = { admitted : int; steps : step list }

let request ~dreq ~flow_type =
  {
    Types.profile = Profiles.profile flow_type;
    dreq;
    ingress = Fig8.ingress1;
    egress = Fig8.egress1;
  }

let max_offers = 10_000

let fill_intserv ~setting ~dreq ~flow_type =
  let gs = Bbr_intserv.Gs_admission.create (Fig8.topology setting) in
  let req = request ~dreq ~flow_type in
  let steps = ref [] in
  let total = ref 0. in
  let n = ref 0 in
  let rejected = ref false in
  while (not !rejected) && !n < max_offers do
    match Bbr_intserv.Gs_admission.request gs req with
    | Ok (_, res) ->
        incr n;
        total := !total +. res.Types.rate;
        steps :=
          {
            n = !n;
            flow_rate = res.Types.rate;
            total_rate = !total;
            mean_rate = !total /. float_of_int !n;
          }
          :: !steps
    | Error _ -> rejected := true
  done;
  { admitted = !n; steps = List.rev !steps }

let fill_perflow ?observe ~setting ~dreq ~flow_type () =
  let broker = Broker.create (Fig8.topology setting) in
  Option.iter (fun f -> f broker) observe;
  let req = request ~dreq ~flow_type in
  let steps = ref [] in
  let total = ref 0. in
  let n = ref 0 in
  let rejected = ref false in
  while (not !rejected) && !n < max_offers do
    match Broker.request broker req with
    | Ok (_, res) ->
        incr n;
        total := !total +. res.Types.rate;
        steps :=
          {
            n = !n;
            flow_rate = res.Types.rate;
            total_rate = !total;
            mean_rate = !total /. float_of_int !n;
          }
          :: !steps
    | Error _ -> rejected := true
  done;
  { admitted = !n; steps = List.rev !steps }

let fill_aggregate ?observe ~setting ~dreq ~flow_type ~gap ~cd ~method_ () =
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now engine))
    (Bbr_obs.Trace.current ());
  let topology = Fig8.topology setting in
  let cls = { Aggregate.class_id = 0; dreq; cd } in
  (* One fluid edge per macroflow; there is a single class and path here
     but the plumbing is written for the general case. *)
  let fluids : (int * int, Fluid_edge.t) Hashtbl.t = Hashtbl.create 4 in
  let broker_ref = ref None in
  let fluid_for ~class_id ~path_id =
    match Hashtbl.find_opt fluids (class_id, path_id) with
    | Some f -> f
    | None ->
        let f =
          Fluid_edge.create engine ~service:0.
            ~on_empty:(fun () ->
              match !broker_ref with
              | Some broker -> Broker.queue_empty broker ~class_id ~path_id
              | None -> ())
            ()
        in
        Hashtbl.replace fluids (class_id, path_id) f;
        f
  in
  let broker =
    Broker.create ~classes:[ cls ] ~method_
      ~time:
        {
          Broker.now = (fun () -> Engine.now engine);
          after = (fun delay f -> Engine.schedule_after engine ~delay f);
        }
      ~on_class_rate:(fun ~class_id ~path_id ~total_rate ->
        Fluid_edge.set_service (fluid_for ~class_id ~path_id) total_rate)
      topology
  in
  broker_ref := Some broker;
  Option.iter (fun f -> f broker) observe;
  let req = request ~dreq ~flow_type in
  let profile = req.Types.profile in
  let steps = ref [] in
  let n = ref 0 in
  let rejected = ref false in
  while (not !rejected) && !n < max_offers do
    match Broker.request_class broker req with
    | Ok (flow, c) ->
        incr n;
        (* The admitted microflow is greedy: it dumps its burst and then
           sends at its sustained rate forever. *)
        (match Broker.route_of broker req with
        | Some path ->
            let fluid =
              fluid_for ~class_id:c.Aggregate.class_id
                ~path_id:path.Bbr_broker.Path_mib.path_id
            in
            Fluid_edge.add_burst fluid profile.Traffic.sigma;
            Fluid_edge.set_input fluid ~id:flow ~rate:profile.Traffic.rho
        | None -> ());
        let stats = Aggregate.all_macroflows (Broker.aggregate broker) in
        let total =
          List.fold_left (fun acc s -> acc +. s.Aggregate.base_rate) 0. stats
        in
        steps :=
          {
            n = !n;
            flow_rate = total -. (match !steps with s :: _ -> s.total_rate | [] -> 0.);
            total_rate = total;
            mean_rate = total /. float_of_int !n;
          }
          :: !steps;
        (* Idle period before the next arrival: contingency periods expire
           and the fluid backlog drains. *)
        Engine.run ~until:(Engine.now engine +. gap) engine
    | Error _ -> rejected := true
  done;
  { admitted = !n; steps = List.rev !steps }

let fill ~setting ~dreq ?(flow_type = 0) ?(gap = 1000.) ?observe scheme =
  match scheme with
  | Intserv_gs -> fill_intserv ~setting ~dreq ~flow_type
  | Perflow_bb -> fill_perflow ?observe ~setting ~dreq ~flow_type ()
  | Aggr_bb { cd; method_ } ->
      fill_aggregate ?observe ~setting ~dreq ~flow_type ~gap ~cd ~method_ ()
