(** Static fill experiment (paper Section 5, Table 2 and Figure 9).

    Identical flows are offered sequentially on the S1→D1 path until the
    first rejection, under one of the three admission-control schemes the
    paper compares.  For the aggregate scheme a real event clock runs
    between arrivals and a fluid model of the macroflow's edge backlog
    feeds the contingency machinery, so both the bounding and the feedback
    contingency methods behave as they would on a live data plane. *)

type scheme =
  | Intserv_gs  (** IntServ/GS: WFQ-reference rate + hop-by-hop tests *)
  | Perflow_bb  (** Per-flow BB/VTRS: path-oriented admission *)
  | Aggr_bb of { cd : float; method_ : Bbr_broker.Aggregate.method_ }
      (** Aggregate BB/VTRS: one delay service class with fixed delay
          parameter [cd] *)

type step = {
  n : int;  (** number of flows admitted so far *)
  flow_rate : float;  (** rate reserved for (or attributed to) this flow *)
  total_rate : float;  (** total steady-state reserved rate *)
  mean_rate : float;  (** [total_rate / n] — the Figure-9 metric *)
}

type result = {
  admitted : int;  (** Table-2 metric: flows admitted before first reject *)
  steps : step list;  (** one per admitted flow, in admission order *)
}

val fill :
  setting:Fig8.setting ->
  dreq:float ->
  ?flow_type:int ->
  ?gap:float ->
  ?observe:(Bbr_broker.Broker.t -> unit) ->
  scheme ->
  result
(** [flow_type] defaults to 0 (the paper's choice); [gap] is the idle time
    between successive arrivals in the aggregate scheme (default 1000 s —
    long enough for contingency periods to expire and edge backlogs to
    drain, matching the paper's masking observation).  [observe] runs once
    on the freshly created broker, before any request — the hook for
    registering telemetry (e.g. {!Bbr_broker.Telemetry.register_broker});
    not called under {!Intserv_gs}, which has no broker. *)
