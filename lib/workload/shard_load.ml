module Prng = Bbr_util.Prng
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Shard = Bbr_broker.Shard
module Shard_router = Bbr_broker.Shard_router

type config = {
  seed : int;
  regions : int;
  nodes_per_region : int;
  extra_links : int;
  ops_per_shard : int;
  cap : int;
}

let default =
  {
    seed = 20_260_809;
    regions = 8;
    nodes_per_region = 6;
    extra_links = 6;
    ops_per_shard = 2_000;
    cap = 64;
  }

let topology cfg =
  let prng = Prng.create ~seed:cfg.seed in
  Topo_gen.regions prng ~regions:cfg.regions
    ~nodes_per_region:cfg.nodes_per_region ~extra_links:cfg.extra_links ()

let partition ~nshards name =
  match Topo_gen.region_of_node name with
  | Some r -> r mod nshards
  | None -> 0

let node r i = Printf.sprintf "R%d_N%d" r i

(* Regional request stream for one shard: both endpoints inside a region
   the shard owns, so the whole min-hop path is shard-local (the hub-ring
   property of {!Topo_gen.regions}) and each shard's churn loop touches
   only its own links.  The stream is a pure function of its generator
   state — the single-broker reference replays it exactly. *)
let regional_gen cfg ~nshards ~shard prng =
  if cfg.regions < nshards then
    invalid_arg "Shard_load: need at least one region per shard";
  let mine =
    Array.of_list
      (List.filter
         (fun r -> r mod nshards = shard)
         (List.init cfg.regions Fun.id))
  in
  fun () ->
    let r = mine.(Prng.int prng ~bound:(Array.length mine)) in
    let a = Prng.int prng ~bound:cfg.nodes_per_region in
    let b =
      (a + 1 + Prng.int prng ~bound:(cfg.nodes_per_region - 1))
      mod cfg.nodes_per_region
    in
    {
      Types.profile = Profiles.profile (Prng.int prng ~bound:4);
      dreq = Prng.float_range prng ~lo:0.5 ~hi:6.0;
      ingress = node r a;
      egress = node r b;
    }

let shard_seed cfg i = cfg.seed + (7919 * (i + 1))

let specs cfg ~nshards : Shard.churn_spec array =
  Array.init nshards (fun i ->
      let prng = Prng.create ~seed:(shard_seed cfg i) in
      {
        Shard.ops = cfg.ops_per_shard;
        cap = cfg.cap;
        gen = regional_gen cfg ~nshards ~shard:i prng;
      })

(* The reference run: one broker executing every shard's stream
   back-to-back.  Shards' link sets are disjoint (regional traffic only),
   so decisions are independent across streams and any serialization
   yields the same flow population — compared id-blind because striped
   shard ids differ from the single broker's sequence. *)
let reference_flows cfg ~nshards =
  let broker = Broker.create (topology cfg) in
  for i = 0 to nshards - 1 do
    let gen =
      regional_gen cfg ~nshards ~shard:i
        (Prng.create ~seed:(shard_seed cfg i))
    in
    let live = Queue.create () in
    for _ = 1 to cfg.ops_per_shard do
      match Broker.request broker (gen ()) with
      | Ok (flow, _) ->
          Queue.push flow live;
          if Queue.length live > cfg.cap then
            Broker.teardown broker (Queue.pop live)
      | Error _ -> ()
    done
  done;
  Shard_router.flows_of_broker broker

type point = {
  shards : int;
  spawned : bool;
  ops : int;
  elapsed_s : float;
  ops_per_s : float;
  p50_s : float;
  p95_s : float;
  admitted : int;
  rejected : int;
  torn : int;
  equivalent : bool option;
}

let run_point ?(spawn = false) ?(check = true) cfg ~shards () =
  let router =
    Shard_router.create ~spawn ~shards ~partition:(partition ~nshards:shards)
      (topology cfg)
  in
  let t0 = Unix.gettimeofday () in
  let results = Shard_router.churn router (specs cfg ~nshards:shards) in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  let equivalent =
    if check then
      Some
        (Shard_router.flowset_digest router
        = Shard_router.flowset_digest_of (reference_flows cfg ~nshards:shards)
        )
    else None
  in
  Shard_router.stop router;
  let ops = shards * cfg.ops_per_shard in
  let lat =
    Array.concat (Array.to_list (Array.map (fun r -> r.Shard.lat) results))
  in
  {
    shards;
    spawned = spawn;
    ops;
    elapsed_s;
    ops_per_s = (if elapsed_s > 0. then float_of_int ops /. elapsed_s else 0.);
    p50_s = Bbr_util.Stats.percentile lat ~p:50.;
    p95_s = Bbr_util.Stats.percentile lat ~p:95.;
    admitted = sum (fun r -> r.Shard.admitted);
    rejected = sum (fun r -> r.Shard.rejected);
    torn = sum (fun r -> r.Shard.torn);
    equivalent;
  }

let sweep ?check cfg ~shard_counts =
  let cores = Domain.recommended_domain_count () in
  List.map
    (fun n -> run_point ?check cfg ~shards:n ~spawn:(cores > 1 && n > 1) ())
    shard_counts
