module Engine = Bbr_netsim.Engine
module Fault = Bbr_netsim.Fault
module Broker = Bbr_broker.Broker
module Cops = Bbr_broker.Cops
module Failover = Bbr_broker.Failover
module Journal = Bbr_broker.Journal
module Storage = Bbr_broker.Storage
module Audit = Bbr_broker.Audit
module Vfs = Bbr_util.Vfs
module Types = Bbr_broker.Types
module Topology = Bbr_vtrs.Topology
module Prng = Bbr_util.Prng

type config = {
  seed : int;
  setting : Fig8.setting;
  arrival_rate : float;
  mean_holding : float;
  duration : float;
  horizon : float;
  loss : float;
  latency : float;
  link_down : (float * (string * string)) list;
  link_up : (float * (string * string)) list;
  crash_at : float option;
  promote_after : float;
  checkpoint_every : float option;
  checkpoint_on_decision : bool;
  extra_links : (string * string * float) list;
  journal : bool;
  journal_fsync_every : int;
  crash_at_record : int option;
  storage : bool;
  storage_rotate_every : int;
  corrupt_checkpoint : bool;
}

let default_config =
  {
    seed = 1;
    setting = `Rate_only;
    arrival_rate = 0.15;
    mean_holding = 200.;
    duration = 2000.;
    horizon = 4000.;
    loss = 0.;
    latency = 0.005;
    link_down = [];
    link_up = [];
    crash_at = None;
    promote_after = 0.5;
    checkpoint_every = Some 50.;
    checkpoint_on_decision = false;
    extra_links = [];
    journal = false;
    journal_fsync_every = 1;
    crash_at_record = None;
    storage = false;
    storage_rotate_every = 64;
    corrupt_checkpoint = false;
  }

type outcome = {
  offered : int;
  admitted : int;
  rejected : int;
  rerouted : int;
  dropped : int;
  flows_at_crash : int;
  flows_restored : int;
  flows_lost : int;
  recovery_time : float option;
  unresolved : int;
  messages : int;
  retransmissions : int;
  promote_error : string option;
  journal_records_at_crash : int;
  journal_records_lost : int;
  digest_at_crash : string option;
  digest_recovered : string option;
  storage_fallback : bool;
  storage_truncated : string option;
  storage_quarantined : int;
}

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>offered %d  admitted %d  rejected %d@,\
     link failures: rerouted %d  dropped %d@,\
     crash: %d active -> %d restored (%d lost)%a@,\
     signaling: %d messages, %d retransmissions, %d unresolved%a@]"
    o.offered o.admitted o.rejected o.rerouted o.dropped o.flows_at_crash
    o.flows_restored o.flows_lost
    (Fmt.option (fun ppf t -> Fmt.pf ppf ", recovered in %.3f s" t))
    o.recovery_time o.messages o.retransmissions o.unresolved
    (Fmt.option (fun ppf e -> Fmt.pf ppf "@,promotion FAILED: %s" e))
    o.promote_error;
  if o.digest_at_crash <> None then
    Fmt.pf ppf "@,journal: %d records at crash, %d lost; digests %s"
      o.journal_records_at_crash o.journal_records_lost
      (match (o.digest_at_crash, o.digest_recovered) with
      | Some a, Some b when a = b -> "MATCH"
      | Some _, Some _ -> "MISMATCH"
      | _ -> "n/a (not recovered)");
  if o.storage_fallback || o.storage_quarantined > 0 || o.storage_truncated <> None
  then
    Fmt.pf ppf "@,storage: %s%s%a"
      (if o.storage_fallback then "generation fallback" else "no fallback")
      (if o.storage_quarantined > 0 then
         Printf.sprintf ", %d segment(s) quarantined" o.storage_quarantined
       else "")
      (Fmt.option (fun ppf w -> Fmt.pf ppf ", truncated: %s" w))
      o.storage_truncated

let link_id_of topo (src, dst) =
  match Topology.find_link topo ~src ~dst with
  | Some l -> l.Topology.link_id
  | None -> invalid_arg (Printf.sprintf "Failure.run: no link %s -> %s" src dst)

let run config =
  let journaling =
    config.journal || config.crash_at_record <> None || config.storage
  in
  if
    (config.crash_at <> None || config.crash_at_record <> None)
    && config.checkpoint_every = None
    && (not config.checkpoint_on_decision)
    && not journaling
  then
    invalid_arg
      "Failure.run: a crash needs checkpointing or a journal, or recovery is \
       impossible";
  let engine = Engine.create () in
  let topo = Fig8.topology config.setting in
  List.iter
    (fun (src, dst, capacity) ->
      ignore (Topology.add_link topo ~src ~dst ~capacity Topology.Rate_based))
    config.extra_links;
  let time =
    {
      Broker.now = (fun () -> Engine.now engine);
      after = (fun delay f -> Engine.schedule_after engine ~delay f);
    }
  in
  let make () = Broker.create ~time topo in
  let store =
    if config.storage then
      Some
        (Storage.create ~rotate_every:config.storage_rotate_every
           ~vfs:(Vfs.create ~seed:config.seed ()) ())
    else None
  in
  let journal =
    if journaling then
      Some
        (Journal.create ~fsync_every:config.journal_fsync_every ?storage:store ())
    else None
  in
  let fw = Failover.create ~make_standby:make ~time ?journal ?storage:store (make ()) in
  let prng = Prng.create ~seed:config.seed in
  let loss_rng = Prng.split prng in
  let cops =
    Cops.create (Failover.active fw) ~latency:config.latency
      ~reliability:(Cops.reliability ~loss:(Fault.drop loss_rng ~p:config.loss) ())
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  (* The same Poisson/Table-1 churn workload as the Figure-10 experiment,
     materialized so the run is a pure function of the seed. *)
  let arrivals =
    Dynamic.arrivals
      {
        Dynamic.seed = config.seed;
        setting = config.setting;
        arrival_rate = config.arrival_rate;
        mean_holding = config.mean_holding;
        duration = config.duration;
        cd = 0.24;
      }
  in
  let admitted = ref 0 and rejected = ref 0 in
  let rerouted = ref 0 and dropped = ref 0 in
  let flows_at_crash = ref 0 and flows_restored = ref 0 in
  let recovery_time = ref None and promote_error = ref None in
  let journal_records_at_crash = ref 0 and journal_records_lost = ref 0 in
  let digest_at_crash = ref None and digest_recovered = ref None in
  let storage_fallback = ref false and storage_truncated = ref None in
  let storage_quarantined = ref 0 in
  (* Eager checkpointing keeps the standby's snapshot fresh relative to
     every booking the PEP has seen confirmed; teardowns checkpoint one
     round trip later, once the DRQ has reached the broker. *)
  let checkpoint_now () = if config.checkpoint_on_decision then Failover.checkpoint fw in
  let checkpoint_soon () =
    if config.checkpoint_on_decision then
      Engine.schedule_after engine
        ~delay:((2. *. config.latency) +. 1e-6)
        (fun () -> Failover.checkpoint fw)
  in
  List.iter
    (fun (e : Dynamic.entry) ->
      Engine.schedule engine ~at:e.Dynamic.at (fun () ->
          Cops.request cops
            {
              Types.profile = e.Dynamic.profile;
              dreq = e.Dynamic.dreq;
              ingress = e.Dynamic.ingress;
              egress = e.Dynamic.egress;
            }
            ~on_decision:(function
              | Ok (flow, _) ->
                  incr admitted;
                  checkpoint_now ();
                  Engine.schedule_after engine ~delay:e.Dynamic.holding (fun () ->
                      Cops.teardown cops flow;
                      checkpoint_soon ())
              | Error _ -> incr rejected)))
    arrivals;
  (match config.checkpoint_every with
  | Some every -> Failover.start_checkpoints fw ~every
  | None -> ());
  let events =
    List.map
      (fun (at, ends) -> Fault.event ~at (Fault.Link_down (link_id_of topo ends)))
      config.link_down
    @ List.map
        (fun (at, ends) -> Fault.event ~at (Fault.Link_up (link_id_of topo ends)))
        config.link_up
    @
    match config.crash_at with
    | Some at -> [ Fault.event ~at (Fault.Crash "broker") ]
    | None -> []
  in
  let hooks =
    Fault.hooks
      ~on_link_down:(fun link_id ->
        let r = Broker.fail_link (Failover.active fw) ~link_id in
        rerouted := !rerouted + Broker.recovered_count r;
        dropped := !dropped + Broker.dropped_count r)
      ~on_link_up:(fun link_id -> Broker.restore_link (Failover.active fw) ~link_id)
      ~on_crash:(fun _ ->
        let crashed_at = Engine.now engine in
        flows_at_crash := Broker.per_flow_count (Failover.active fw);
        (* Freeze the oracle BEFORE modelling the crash's data loss: the
           digest of the dying primary is what a perfect recovery must
           reproduce.  Then cut the journal at its last fsync boundary —
           records past it never reached the disk. *)
        (match journal with
        | None -> ()
        | Some j -> (
            digest_at_crash := Some (Audit.mib_digest (Failover.active fw));
            journal_records_at_crash := Journal.records j;
            match store with
            | None -> journal_records_lost := Journal.crash_cut j
            | Some st ->
                (* The in-memory journal dies with the process; the disk
                   is what recovery reads.  Tear the unsynced suffix, and
                   optionally rot the current checkpoint generation so
                   promotion must prove its fallback path. *)
                Storage.crash st;
                if config.corrupt_checkpoint then
                  ignore (Storage.bitrot_checkpoint st)));
        Failover.crash fw;
        Cops.set_pdp_up cops false;
        Engine.schedule_after engine ~delay:config.promote_after (fun () ->
            match Failover.promote fw with
            | Ok n ->
                (* With a journal, [n] counts snapshot lines + journal
                   records (teardowns included); the live flow count of
                   the recovered broker is the comparable figure. *)
                flows_restored :=
                  (if journal = None then n
                   else Broker.per_flow_count (Failover.active fw));
                if journal <> None then
                  digest_recovered := Some (Audit.mib_digest (Failover.active fw));
                (match Failover.last_recovery fw with
                | None -> ()
                | Some r ->
                    storage_fallback := r.Failover.sr_fallback;
                    storage_truncated := r.Failover.sr_truncated;
                    storage_quarantined := r.Failover.sr_quarantined);
                Cops.set_broker cops (Failover.active fw);
                Cops.set_pdp_up cops true;
                recovery_time := Some (Engine.now engine -. crashed_at)
            | Error e -> promote_error := Some e))
      ()
  in
  (* Crash-point injection at an exact journal record boundary: the
     instant the [n]-th record is appended, schedule the crash at the
     current simulated time.  Because the hook fires synchronously inside
     the mutation, the crash lands between this record and the next —
     there is no "few more admissions slip in" race. *)
  (match (journal, config.crash_at_record) with
  | Some j, Some n ->
      Journal.on_record j (fun total ->
          if total = n && Failover.is_up fw then
            Fault.inject engine hooks (Fault.Crash "broker"))
  | _ -> ());
  Fault.install engine hooks events;
  Engine.run ~until:config.horizon engine;
  (* Let the tail drain: departures past the horizon, in-flight
     retransmissions, the final checkpoint tick (which sees [stop] and
     unschedules).  Skipped when promotion failed — the PDP is then down
     forever and reliable transactions would retransmit without end. *)
  Failover.stop fw;
  if !promote_error = None then Engine.run engine;
  {
    offered = List.length arrivals;
    admitted = !admitted;
    rejected = !rejected;
    rerouted = !rerouted;
    dropped = !dropped;
    flows_at_crash = !flows_at_crash;
    flows_restored = !flows_restored;
    flows_lost = max 0 (!flows_at_crash - !flows_restored);
    recovery_time = !recovery_time;
    unresolved = Cops.pending cops;
    messages = Cops.messages cops;
    retransmissions = Cops.retransmissions cops;
    promote_error = !promote_error;
    journal_records_at_crash = !journal_records_at_crash;
    journal_records_lost = !journal_records_lost;
    digest_at_crash = !digest_at_crash;
    digest_recovered = !digest_recovered;
    storage_fallback = !storage_fallback;
    storage_truncated = !storage_truncated;
    storage_quarantined = !storage_quarantined;
  }
