module Engine = Bbr_netsim.Engine
module Fault = Bbr_netsim.Fault
module Prng = Bbr_util.Prng
module Stats = Bbr_util.Stats
module Broker = Bbr_broker.Broker
module Flow_mib = Bbr_broker.Flow_mib
module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Federation = Bbr_interdomain.Federation

type config = {
  seed : int;
  n_domains : int;
  extra_peerings : int;
  domain_hops : int;
  link_capacity : float;
  sla_rate : float;
  arrival_rate : float;
  mean_holding : float;
  duration : float;
  drop_p : float;
  dup_p : float;
  max_extra_delay : float;
  fault_from : float;
  fault_until : float;
  partition_from : float;
  partition_until : float;
  domain_crash_from : float;
  domain_crash_until : float;
  crash_coordinator_at : float option;
  reap_every : float;
  fed : Federation.config;
}

let default_config =
  {
    seed = 1;
    n_domains = 12;
    extra_peerings = 6;
    domain_hops = 2;
    link_capacity = 10e6;
    sla_rate = 2e6;
    arrival_rate = 3.;
    mean_holding = 25.;
    duration = 120.;
    drop_p = 0.05;
    dup_p = 0.02;
    max_extra_delay = 0.02;
    fault_from = 20.;
    fault_until = 80.;
    partition_from = 40.;
    partition_until = 60.;
    domain_crash_from = 30.;
    domain_crash_until = 50.;
    crash_coordinator_at = Some 70.;
    reap_every = 10.;
    fed = { Federation.default_config with prepare_ttl = 10. };
  }

type outcome = {
  offered : int;
  committed : int;
  compensated : int;
  rejected : int;
  unresolved : int;
  torn_down : int;
  p50_commit_latency : float;
  p95_commit_latency : float;
  stats : Federation.stats;
  recovery_time : float option;
  digest_match : bool option;
  recovered_flows : int;
  recovery_aborts : int;
  pending_obligations : int;
  stranded_bandwidth : float;
  live_flows : int;
  audit : Federation.report;
  audit_clean : bool;
}

let run cfg =
  if cfg.n_domains < 3 then invalid_arg "Fed_soak.run: need at least 3 domains";
  let eng = Engine.create () in
  let time =
    {
      Broker.now = (fun () -> Engine.now eng);
      after = (fun delay f -> Engine.schedule_after eng ~delay f);
    }
  in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now eng))
    (Bbr_obs.Trace.current ());
  let rng = Prng.create ~seed:cfg.seed in
  let graph_rng = Prng.split rng in
  let arrival_rng = Prng.split rng in
  let fault_rng = Prng.split rng in
  let jitter_rng = Prng.split rng in
  let fed =
    Federation.create ~time
      ~config:{ cfg.fed with jitter = Some (fun () -> Prng.float jitter_rng) }
      ()
  in
  (* The federation graph: per-domain rate-based chains, a random spanning
     tree of bidirectional peerings plus extras. *)
  let names = Array.init cfg.n_domains (fun i -> Printf.sprintf "D%d" i) in
  let gates =
    Array.map
      (fun name ->
        let topo, ingress, egress =
          Topo_gen.chain ~prefix:name ~capacity:cfg.link_capacity
            ~sched:Topology.Rate_based ~hops:cfg.domain_hops ()
        in
        ignore (Federation.add_domain fed ~name topo);
        (ingress, egress))
      names
  in
  let have = Hashtbl.create 32 in
  let peer a b =
    if a <> b && not (Hashtbl.mem have (a, b)) then begin
      Hashtbl.replace have (a, b) ();
      Federation.add_peering fed ~from_domain:names.(a)
        ~from_egress:(snd gates.(a)) ~to_domain:names.(b)
        ~to_ingress:(fst gates.(b)) ~committed_rate:cfg.sla_rate ~delay:0.005 ()
    end
  in
  for i = 1 to cfg.n_domains - 1 do
    let parent = Prng.int graph_rng ~bound:i in
    peer parent i;
    peer i parent
  done;
  for _ = 1 to cfg.extra_peerings do
    let a = Prng.int graph_rng ~bound:cfg.n_domains in
    let b = Prng.int graph_rng ~bound:cfg.n_domains in
    peer a b
  done;
  (* Workload state. *)
  let profile =
    Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.
  in
  let offered = ref 0 in
  let committed = ref 0 in
  let compensated = ref 0 in
  let rejected = ref 0 in
  let latencies = ref [] in
  let submit () =
    incr offered;
    let src = Prng.int arrival_rng ~bound:cfg.n_domains in
    let dst =
      (src + 1 + Prng.int arrival_rng ~bound:(cfg.n_domains - 1)) mod cfg.n_domains
    in
    let ep =
      {
        Federation.src_domain = names.(src);
        src_ingress = fst gates.(src);
        dst_domain = names.(dst);
        dst_egress = snd gates.(dst);
      }
    in
    let t0 = Engine.now eng in
    let holding = Prng.exponential arrival_rng ~mean:cfg.mean_holding in
    ignore
      (Federation.request_async fed ep ~profile ~dreq:6. ~on_decision:(function
        | Ok r ->
            incr committed;
            latencies := (Engine.now eng -. t0) :: !latencies;
            Engine.schedule_after eng ~delay:holding (fun () ->
                Federation.teardown fed r.Federation.flow)
        | Error (Bbr_broker.Types.Peer_unreachable _) -> incr compensated
        | Error _ -> incr rejected))
  in
  let rec arrivals () =
    let gap = Prng.exponential arrival_rng ~mean:(1. /. cfg.arrival_rate) in
    Engine.schedule_after eng ~delay:gap (fun () ->
        if Engine.now eng < cfg.duration then begin
          submit ();
          arrivals ()
        end)
  in
  arrivals ();
  (* Fault windows. *)
  let chaos =
    {
      Federation.drop = Fault.drop fault_rng ~p:cfg.drop_p;
      duplicate = Fault.drop fault_rng ~p:cfg.dup_p;
      extra_delay = (fun () -> Prng.float fault_rng *. cfg.max_extra_delay);
    }
  in
  Engine.schedule eng ~at:cfg.fault_from (fun () -> Federation.set_faults fed chaos);
  Engine.schedule eng ~at:cfg.fault_until (fun () ->
      Federation.set_faults fed Federation.no_faults);
  let partitioned = names.(1) and crashed = names.(2) in
  Engine.schedule eng ~at:cfg.partition_from (fun () ->
      Federation.set_reachable fed ~domain:partitioned false);
  Engine.schedule eng ~at:cfg.partition_until (fun () ->
      Federation.set_reachable fed ~domain:partitioned true);
  Engine.schedule eng ~at:cfg.domain_crash_from (fun () ->
      Federation.set_domain_up fed ~domain:crashed false);
  Engine.schedule eng ~at:cfg.domain_crash_until (fun () ->
      Federation.set_domain_up fed ~domain:crashed true);
  (* Periodic orphan sweep while the run is hot. *)
  let horizon = cfg.duration +. (4. *. cfg.mean_holding) in
  let rec reaper () =
    Engine.schedule_after eng ~delay:cfg.reap_every (fun () ->
        ignore (Federation.reap fed);
        if Engine.now eng < horizon then reaper ())
  in
  reaper ();
  (* Coordinator crash and recovery, with the digest oracle. *)
  let digest_match = ref None in
  let recovery_time = ref None in
  let recovered_flows = ref 0 in
  let recovery_aborts = ref 0 in
  (match cfg.crash_coordinator_at with
  | None -> ()
  | Some at ->
      Engine.schedule eng ~at (fun () ->
          let digest = Federation.decision_digest fed in
          ignore (Federation.crash_coordinator fed);
          match Federation.recover_coordinator fed with
          | Error e -> failwith ("Fed_soak: unreadable coordinator journal: " ^ e)
          | Ok r ->
              if not (String.equal digest r.Federation.replayed_digest) then
                Bbr_obs.Flight.trigger ~reason:"recovery-digest-mismatch";
              digest_match := Some (String.equal digest r.Federation.replayed_digest);
              recovered_flows := r.Federation.recovered_flows;
              recovery_aborts := r.Federation.recovery_aborts;
              let rec drain_watch () =
                if Federation.obligations_pending fed = 0 then
                  recovery_time := Some (Engine.now eng -. at)
                else if Engine.now eng < horizon +. 60. then
                  Engine.schedule_after eng ~delay:0.25 drain_watch
              in
              drain_watch ()));
  (* After the horizon, one last heal + pump to flush anything the fault
     windows stranded, then drain to quiescence. *)
  Engine.schedule eng ~at:horizon (fun () ->
      Federation.set_faults fed Federation.no_faults;
      Federation.set_reachable fed ~domain:partitioned true;
      Federation.set_domain_up fed ~domain:crashed true;
      Federation.pump fed);
  Engine.run eng;
  ignore (Federation.reap fed);
  let audit = Federation.audit fed in
  if not (Federation.audit_ok audit) then
    Bbr_obs.Flight.trigger ~reason:"audit-violation";
  let stats = Federation.stats fed in
  (* Stranded bandwidth: broker-side reserved rate the live federation
     flows (rate × segment count) cannot account for.  After the drain
     and the final reap no prepared bookings remain, so any residue is a
     failed compensation. *)
  let lat = Array.of_list !latencies in
  let stranded =
    let total_held =
      Array.fold_left
        (fun acc name ->
          match Federation.broker fed ~domain:name with
          | None -> acc
          | Some b -> acc +. Flow_mib.total_reserved_rate (Broker.flow_mib b))
        0. names
    in
    total_held -. (audit.Federation.checked_segments_rate : float)
  in
  {
    offered = !offered;
    committed = !committed;
    compensated = !compensated;
    rejected = !rejected;
    unresolved = !offered - !committed - !compensated - !rejected;
    torn_down = stats.Federation.torn_down;
    p50_commit_latency = (if lat = [||] then 0. else Stats.percentile lat ~p:50.);
    p95_commit_latency = (if lat = [||] then 0. else Stats.percentile lat ~p:95.);
    stats;
    recovery_time = !recovery_time;
    digest_match = !digest_match;
    recovered_flows = !recovered_flows;
    recovery_aborts = !recovery_aborts;
    pending_obligations = Federation.obligations_pending fed;
    stranded_bandwidth = stranded;
    live_flows = Federation.flow_count fed;
    audit;
    audit_clean = Federation.audit_ok audit;
  }

let ok o =
  o.audit_clean && o.pending_obligations = 0
  && Float.abs o.stranded_bandwidth <= 1e-3
  && (o.digest_match = None || o.digest_match = Some true)
  && ((o.digest_match <> None) || o.unresolved = 0)

let pp_outcome ppf o =
  Fmt.pf ppf
    "offered %d: %d committed, %d compensated, %d rejected, %d unresolved@.commit \
     latency p50 %.4f s, p95 %.4f s@.%a@.recovery: %a s, digest %s, %d flows \
     recovered, %d recovery aborts@.end state: %d live flows, %d pending \
     obligations, %.1f b/s stranded, audit %s"
    o.offered o.committed o.compensated o.rejected o.unresolved o.p50_commit_latency
    o.p95_commit_latency Federation.pp_stats o.stats
    Fmt.(option ~none:(any "-") float)
    o.recovery_time
    (match o.digest_match with
    | None -> "n/a"
    | Some true -> "exact"
    | Some false -> "MISMATCH")
    o.recovered_flows o.recovery_aborts o.live_flows o.pending_obligations
    o.stranded_bandwidth
    (if o.audit_clean then "clean" else "VIOLATIONS")
