(** End-to-end fault-tolerance scenario: the Figure-10 churn workload
    signaled over a lossy reliable COPS channel, with seeded link failures
    and a broker crash followed by warm-standby promotion.

    Everything is driven by one discrete-event engine and one seed, so a
    given configuration reproduces the exact same run — failures, losses,
    retransmissions and all.  The scenario measures what the paper's
    centralized-state argument predicts: data-plane failures are absorbed
    by rerouting at the broker (flows rerouted vs dropped), and a broker
    crash costs only the admissions since the last checkpoint (flows lost
    vs restored) plus a promotion delay (recovery time). *)

type config = {
  seed : int;
  setting : Fig8.setting;
  arrival_rate : float;  (** flow arrivals per second *)
  mean_holding : float;  (** seconds *)
  duration : float;  (** arrivals offered during [0, duration) *)
  horizon : float;  (** fault injection and measurement stop here *)
  loss : float;  (** COPS per-message loss probability, [0 <= p < 1] *)
  latency : float;  (** one-way PEP-PDP delay, seconds *)
  link_down : (float * (string * string)) list;
      (** [(time, (src, dst))] link failures to inject *)
  link_up : (float * (string * string)) list;  (** repairs *)
  crash_at : float option;  (** broker crash time *)
  promote_after : float;  (** failure-detection + promotion delay, seconds *)
  checkpoint_every : float option;  (** warm-standby checkpoint period *)
  checkpoint_on_decision : bool;
      (** additionally checkpoint after every confirmed admission and
          (one round trip later) every teardown, so the standby's
          snapshot is always fresh and a loss-free crash loses no flow *)
  extra_links : (string * string * float) list;
      (** [(src, dst, capacity)] links added to the Figure-8 topology —
          e.g. a protection detour for the reroute experiment *)
  journal : bool;
      (** write-ahead journal every broker mutation; promotion then
          replays the journal tail on top of the checkpoint, so a crash
          loses only records past the last fsync boundary *)
  journal_fsync_every : int;
      (** journal durability boundary (records per fsync); 1 = every
          record survives a crash *)
  crash_at_record : int option;
      (** crash the broker the instant the [n]-th journal record is
          appended — exact record-boundary crash-point injection (implies
          journaling even when [journal = false]) *)
  storage : bool;
      (** back the journal and checkpoints with a real (simulated) disk:
          a seeded {!Bbr_util.Vfs} under a segmented
          {!Bbr_broker.Storage}.  Implies journaling.  A crash then tears
          the disk at its last fsync ({!Bbr_broker.Storage.crash}) and
          promotion recovers from the store alone — newest verifiable
          checkpoint generation plus longest intact record suffix *)
  storage_rotate_every : int;  (** records per journal segment *)
  corrupt_checkpoint : bool;
      (** additionally rot one bit of the newest checkpoint generation at
          crash time, forcing recovery through the prior generation *)
}

val default_config : config
(** Seed 1, rate-only Figure-8 setting, 0.15 arrivals/s held 200 s over a
    2000 s window, 4000 s horizon, loss-free 5 ms channel, no faults,
    checkpoints every 50 s (period only), 0.5 s promotion delay, no extra
    links, no journal ([fsync_every = 1] when one is enabled). *)

type outcome = {
  offered : int;
  admitted : int;
  rejected : int;
  rerouted : int;  (** reservations moved to a surviving path, summed over failures *)
  dropped : int;  (** reservations released with no feasible alternative *)
  flows_at_crash : int;  (** active per-flow reservations when the broker died *)
  flows_restored : int;  (** reservations the promoted standby rebuilt *)
  flows_lost : int;  (** [max 0 (flows_at_crash - flows_restored)] *)
  recovery_time : float option;  (** crash-to-promoted, seconds *)
  unresolved : int;  (** requests never decided ({!Bbr_broker.Cops.pending} at the end) *)
  messages : int;
  retransmissions : int;
  promote_error : string option;  (** [Some _] when promotion failed *)
  journal_records_at_crash : int;
      (** journal tail length when the broker died (0 when not journaling) *)
  journal_records_lost : int;
      (** records past the last fsync boundary, dropped by the crash *)
  digest_at_crash : string option;
      (** {!Bbr_broker.Audit.mib_digest} of the dying primary — the
          recovery oracle; [None] when not journaling *)
  digest_recovered : string option;
      (** digest of the promoted standby; equals [digest_at_crash] iff
          recovery was exact (always, when [journal_fsync_every = 1]) *)
  storage_fallback : bool;
      (** storage-mode recovery had to skip a corrupt/unverifiable
          checkpoint generation *)
  storage_truncated : string option;
      (** why the storage-mode replay suffix stopped early, if it did *)
  storage_quarantined : int;
      (** sealed segments quarantined during storage-mode recovery *)
}

val pp_outcome : outcome Fmt.t

val run : config -> outcome
(** Raises [Invalid_argument] when a [link_down]/[link_up] endpoint pair
    names no link, or when a crash is requested ([crash_at] or
    [crash_at_record]) with neither checkpointing nor a journal (an
    unrecoverable configuration). *)
