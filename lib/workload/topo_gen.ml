module Topology = Bbr_vtrs.Topology
module Prng = Bbr_util.Prng

let chain ?(prefix = "n") ?(capacity = 1.5e6) ?(sched = Topology.Rate_based) ~hops () =
  if hops < 1 then invalid_arg "Topo_gen.chain: at least one hop";
  let t = Topology.create () in
  let name i = Printf.sprintf "%s%d" prefix i in
  for i = 0 to hops - 1 do
    ignore (Topology.add_link t ~src:(name i) ~dst:(name (i + 1)) ~capacity sched)
  done;
  (t, name 0, name hops)

let star ?(capacity = 1.5e6) ~leaves () =
  if leaves < 2 then invalid_arg "Topo_gen.star: at least two leaves";
  let t = Topology.create () in
  for i = 0 to leaves - 1 do
    let n = Printf.sprintf "N%d" i in
    ignore (Topology.add_link t ~src:n ~dst:"C" ~capacity Topology.Rate_based);
    ignore (Topology.add_link t ~src:"C" ~dst:n ~capacity Topology.Rate_based)
  done;
  t

let random prng ~nodes ~extra_links ?(delay_fraction = 0.3) ?(capacity_lo = 1e6)
    ?(capacity_hi = 1e7) () =
  if nodes < 2 then invalid_arg "Topo_gen.random: at least two nodes";
  let t = Topology.create () in
  let name i = Printf.sprintf "N%d" i in
  let sched () =
    if Prng.float prng < delay_fraction then Topology.Delay_based
    else Topology.Rate_based
  in
  let capacity () = Prng.float_range prng ~lo:capacity_lo ~hi:capacity_hi in
  let add_pair a b =
    if Topology.find_link t ~src:a ~dst:b = None then begin
      let c = capacity () and s = sched () in
      ignore (Topology.add_link t ~src:a ~dst:b ~capacity:c s);
      ignore (Topology.add_link t ~src:b ~dst:a ~capacity:c s)
    end
  in
  (* Random spanning tree: attach each new node to a random earlier one. *)
  for i = 1 to nodes - 1 do
    add_pair (name (Prng.int prng ~bound:i)) (name i)
  done;
  for _ = 1 to extra_links do
    let a = Prng.int prng ~bound:nodes and b = Prng.int prng ~bound:nodes in
    if a <> b then add_pair (name a) (name b)
  done;
  t

(* Preferential attachment (Barabási–Albert): node i attaches to [m]
   distinct earlier nodes, each chosen by picking a uniform slot in the
   endpoint multiset — a node's probability is proportional to its degree.
   O(nodes * m) time and memory, so 10k+-node ISP graphs are cheap. *)
let power_law prng ~nodes ?(m = 2) ?(delay_fraction = 0.2) ?(capacity_lo = 1e6)
    ?(capacity_hi = 1e7) () =
  if nodes < 2 then invalid_arg "Topo_gen.power_law: at least two nodes";
  if m < 1 then invalid_arg "Topo_gen.power_law: m must be >= 1";
  let t = Topology.create () in
  let name i = Printf.sprintf "N%d" i in
  let add_pair a b =
    let capacity = Prng.float_range prng ~lo:capacity_lo ~hi:capacity_hi in
    let sched =
      if Prng.float prng < delay_fraction then Topology.Delay_based
      else Topology.Rate_based
    in
    ignore (Topology.add_link t ~src:(name a) ~dst:(name b) ~capacity sched);
    ignore (Topology.add_link t ~src:(name b) ~dst:(name a) ~capacity sched)
  in
  (* Endpoint multiset: every undirected edge contributes both ends, so
     membership count = degree. *)
  let ends = ref (Array.make (4 * nodes * m) 0) in
  let n_ends = ref 0 in
  let push e =
    if !n_ends = Array.length !ends then begin
      let bigger = Array.make (2 * !n_ends) 0 in
      Array.blit !ends 0 bigger 0 !n_ends;
      ends := bigger
    end;
    !ends.(!n_ends) <- e;
    incr n_ends
  in
  add_pair 0 1;
  push 0;
  push 1;
  for i = 2 to nodes - 1 do
    let targets = ref [] in
    let wanted = min m i in
    (* Rejection-sample distinct targets; duplicates are rare while the
       graph is sparse, so the loop terminates fast. *)
    while List.length !targets < wanted do
      let candidate = !ends.(Prng.int prng ~bound:!n_ends) in
      if not (List.mem candidate !targets) then targets := candidate :: !targets
    done;
    List.iter
      (fun target ->
        add_pair i target;
        push i;
        push target)
      (List.rev !targets)
  done;
  t

let digest topology =
  (* Canonical rendering of everything a generator decides: node set in
     insertion order, every link's endpoints, capacity, scheduler class
     and error term.  Two topologies digest equal iff a broker sees the
     same domain in both. *)
  let buf = Buffer.create 4096 in
  List.iter (fun n -> Buffer.add_string buf n; Buffer.add_char buf ';')
    (Topology.nodes topology);
  List.iter
    (fun (l : Topology.link) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s>%s:%.17g:%.17g:%s:%.17g|" l.Topology.link_id
           l.Topology.src l.Topology.dst l.Topology.capacity
           l.Topology.prop_delay
           (match l.Topology.sched with
           | Topology.Rate_based -> "R"
           | Topology.Delay_based -> "D")
           l.Topology.psi))
    (Topology.links topology);
  Bbr_util.Crc32.to_hex (Bbr_util.Crc32.string (Buffer.contents buf))

let degrees topology =
  let tbl = Hashtbl.create 64 in
  let bump n = Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)) in
  List.iter (fun (l : Topology.link) -> bump l.Topology.src) (Topology.links topology);
  List.map
    (fun n -> (n, Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    (Topology.nodes topology)

let hubs topology =
  List.map fst
    (List.stable_sort
       (fun (a, da) (b, db) ->
         match compare db da with 0 -> compare a b | c -> c)
       (degrees topology))

let leaves topology = List.rev (hubs topology)

let random_endpoints prng topology =
  let nodes = Array.of_list (Topology.nodes topology) in
  let a = Prng.int prng ~bound:(Array.length nodes) in
  let rec pick_b () =
    let b = Prng.int prng ~bound:(Array.length nodes) in
    if b = a then pick_b () else b
  in
  (nodes.(a), nodes.(pick_b ()))

(* ------------------------------------------------------------------ *)
(* Regional domains for the sharded broker.                           *)

let region_prefix r = Printf.sprintf "R%d_" r

let region_of_node name =
  if String.length name < 3 || name.[0] <> 'R' then None
  else
    match String.index_opt name '_' with
    | None -> None
    | Some i -> int_of_string_opt (String.sub name 1 (i - 1))

let regions prng ~regions:k ~nodes_per_region ?(extra_links = nodes_per_region)
    ?(delay_fraction = 0.3) ?(capacity_lo = 1e6) ?(capacity_hi = 1e7)
    ?(inter_capacity = 5e7) () =
  if k < 1 then invalid_arg "Topo_gen.regions: at least one region";
  if nodes_per_region < 2 then
    invalid_arg "Topo_gen.regions: at least two nodes per region";
  let t = Topology.create () in
  let name r i = Printf.sprintf "%sN%d" (region_prefix r) i in
  let sched () =
    if Prng.float prng < delay_fraction then Topology.Delay_based
    else Topology.Rate_based
  in
  let capacity () = Prng.float_range prng ~lo:capacity_lo ~hi:capacity_hi in
  for r = 0 to k - 1 do
    let add_pair a b =
      if Topology.find_link t ~src:a ~dst:b = None then begin
        let c = capacity () and s = sched () in
        ignore (Topology.add_link t ~src:a ~dst:b ~capacity:c s);
        ignore (Topology.add_link t ~src:b ~dst:a ~capacity:c s)
      end
    in
    (* Intra-region random spanning tree plus extras, as in {!random}. *)
    for i = 1 to nodes_per_region - 1 do
      add_pair (name r (Prng.int prng ~bound:i)) (name r i)
    done;
    for _ = 1 to extra_links do
      let a = Prng.int prng ~bound:nodes_per_region
      and b = Prng.int prng ~bound:nodes_per_region in
      if a <> b then add_pair (name r a) (name r b)
    done
  done;
  (* Inter-region ring through each region's hub node N0: the hub is the
     region's only gateway, so a simple path between two same-region
     nodes can never detour through another region (it would have to
     leave and re-enter through the same hub).  Rate-based and wide, so
     cross-region admission is bounded by the regional links. *)
  if k > 1 then
    for r = 0 to k - 1 do
      let next = (r + 1) mod k in
      ignore
        (Topology.add_link t ~src:(name r 0) ~dst:(name next 0)
           ~capacity:inter_capacity Topology.Rate_based);
      ignore
        (Topology.add_link t ~src:(name next 0) ~dst:(name r 0)
           ~capacity:inter_capacity Topology.Rate_based)
    done;
  t
