(** Inter-domain federation chaos soak.

    A deterministic end-to-end robustness experiment for the
    {!Bbr_interdomain.Federation} coordinator: a 10+ domain random
    federation graph under Poisson flow churn, with the full fault menu
    thrown at it mid-run —

    - message-channel chaos (Bernoulli loss, duplication, extra delay)
      on every coordinator↔domain leg;
    - a partitioned transit domain (messages both ways silently lost for
      a window);
    - a crashed transit domain (consumes messages without reacting, then
      comes back with its reservation state intact);
    - a coordinator crash at a chosen instant, journal truncated to the
      last fsync boundary, followed by immediate recovery — the replayed
      decision digest is compared against the dying coordinator's;
    - periodic orphan reaping.

    After the fault window every process heals and the run drains to
    quiescence.  The acceptance criteria for {b bbsim federation} and CI:
    every audit clean (federation invariants and each domain's MIB), the
    obligation queue empty, zero stranded bandwidth (no domain broker
    holds a byte the federation cannot account for), and — when the
    coordinator crashed — a digest-exact recovery. *)

type config = {
  seed : int;
  n_domains : int;  (** federation size (>= 3) *)
  extra_peerings : int;  (** peering pairs beyond the spanning tree *)
  domain_hops : int;  (** intra-domain chain length *)
  link_capacity : float;
  sla_rate : float;  (** committed rate per peering, b/s *)
  arrival_rate : float;  (** flow arrivals/s, Poisson *)
  mean_holding : float;  (** exponential holding time, s *)
  duration : float;  (** arrivals offered during [0, duration) *)
  drop_p : float;  (** per-message-copy loss probability in the window *)
  dup_p : float;
  max_extra_delay : float;  (** uniform extra per-message delay, s *)
  fault_from : float;  (** channel chaos active in [fault_from, fault_until) *)
  fault_until : float;
  partition_from : float;  (** a transit domain unreachable in this window *)
  partition_until : float;
  domain_crash_from : float;  (** a transit domain down in this window *)
  domain_crash_until : float;
  crash_coordinator_at : float option;
      (** crash + recover the coordinator at this instant *)
  reap_every : float;  (** orphan sweep period *)
  fed : Bbr_interdomain.Federation.config;
}

val default_config : config
(** Seed 1: 12 domains, 6 extra peerings, 2-hop domains at 10 Mb/s,
    2 Mb/s SLAs, 3 arrivals/s for 120 s, 5% loss / 2% duplication /
    up to 20 ms extra delay during [20, 80), a partition in [40, 60), a
    domain crash in [30, 50), a coordinator crash at 70 s, reap every
    10 s with a 10 s prepare TTL and jittered retries. *)

type outcome = {
  offered : int;
  committed : int;  (** decisions seen by the requesters *)
  compensated : int;
  rejected : int;
  unresolved : int;
      (** requests whose decision callback never fired — only the
          coordinator crash drops callbacks, so without one this must
          be 0 *)
  torn_down : int;
  p50_commit_latency : float;  (** request to commit decision, s *)
  p95_commit_latency : float;
  stats : Bbr_interdomain.Federation.stats;
  recovery_time : float option;
      (** sim seconds from the coordinator crash until the re-queued
          obligation backlog first drained *)
  digest_match : bool option;
      (** replayed decision digest vs the dying coordinator's *)
  recovered_flows : int;
  recovery_aborts : int;
  pending_obligations : int;  (** at the end of the run — must be 0 *)
  stranded_bandwidth : float;
      (** Σ over domains of broker-reserved rate the federation cannot
          account for — must be 0 *)
  live_flows : int;
  audit : Bbr_interdomain.Federation.report;
  audit_clean : bool;
}

val run : config -> outcome

val ok : outcome -> bool
(** The acceptance predicate: clean audits, empty obligation queue, zero
    stranded bandwidth, zero unresolved decisions unless the coordinator
    crashed, and a digest-exact recovery when it did. *)

val pp_outcome : outcome Fmt.t
