(** Multi-domain load generation for the sharded broker (ROADMAP item 1).

    Builds a {!Topo_gen.regions} domain, partitions it by region across
    [N] {!Bbr_broker.Shard_router} shards, and drives one self-contained
    churn loop per shard ({!Bbr_broker.Shard.churn_spec}) — regional
    traffic only, so each loop admits entirely inside its own shard with
    no cross-shard synchronization.  Every stream is a pure function of a
    seeded {!Bbr_util.Prng}, so a single broker can replay the identical
    sequences sequentially; {!run_point} checks the two flow populations
    for equality (id-blind, since parallel shards stripe their flow ids).

    This is the engine behind the [admission_scaling] bench section and
    the CI shard-smoke job. *)

type config = {
  seed : int;
  regions : int;  (** regions in the generated domain *)
  nodes_per_region : int;
  extra_links : int;  (** intra-region extras beyond the spanning tree *)
  ops_per_shard : int;  (** churn operations per shard *)
  cap : int;  (** live flows per shard before oldest-teardown *)
}

val default : config

val topology : config -> Bbr_vtrs.Topology.t
(** The {!Topo_gen.regions} domain of [config] (deterministic in
    [config.seed]). *)

val partition : nshards:int -> string -> int
(** Region-based partition function: [region mod nshards] (0 for names
    without a region prefix). *)

val specs : config -> nshards:int -> Bbr_broker.Shard.churn_spec array
(** One churn spec per shard, each with a private seeded generator
    producing requests between two distinct nodes of a region the shard
    owns. *)

val reference_flows :
  config -> nshards:int -> (Bbr_broker.Types.flow_id * float * float * int list) list
(** The flow population a single broker holds after executing every
    shard's stream back-to-back — the reference side of the equivalence
    check. *)

type point = {
  shards : int;
  spawned : bool;  (** ran on real domains (vs inline) *)
  ops : int;  (** total churn operations *)
  elapsed_s : float;
  ops_per_s : float;
  p50_s : float;  (** median per-decision wall latency, all shards pooled *)
  p95_s : float;
  admitted : int;
  rejected : int;
  torn : int;
  equivalent : bool option;
      (** flowset digest matches the single-broker reference;
          [None] when the check was skipped *)
}

val run_point : ?spawn:bool -> ?check:bool -> config -> shards:int -> unit -> point
(** One measured churn run at the given shard count.  [spawn] (default
    [false]) runs shards on their own domains; [check] (default [true])
    replays the reference run and compares populations. *)

val sweep : ?check:bool -> config -> shard_counts:int list -> point list
(** {!run_point} at each count, spawning real domains whenever the
    machine has more than one core and [shards > 1]. *)
