(** Synthetic domain topologies beyond the paper's Figure 8 — used by the
    robustness test-suites and available to users for their own
    experiments.  All generators are deterministic in the supplied
    generator state. *)

val chain :
  ?prefix:string ->
  ?capacity:float ->
  ?sched:Bbr_vtrs.Topology.sched_class ->
  hops:int ->
  unit ->
  Bbr_vtrs.Topology.t * string * string
(** A linear domain of [hops] links; returns (topology, ingress, egress).
    Node names are [prefix ^ i]. *)

val star :
  ?capacity:float ->
  leaves:int ->
  unit ->
  Bbr_vtrs.Topology.t
(** [leaves] edge routers, each with a link to and from a hub "C"; edge
    router [i] is named ["N<i>"].  Every pair of edge routers is connected
    through the hub (2 hops). *)

val random :
  Bbr_util.Prng.t ->
  nodes:int ->
  extra_links:int ->
  ?delay_fraction:float ->
  ?capacity_lo:float ->
  ?capacity_hi:float ->
  unit ->
  Bbr_vtrs.Topology.t
(** A connected random domain: a random spanning arborescence plus
    [extra_links] random extra directed links, with every link mirrored in
    the reverse direction.  Each link's scheduler is delay-based with
    probability [delay_fraction] (default 0.3) and its capacity uniform in
    [[capacity_lo, capacity_hi]] (default 1–10 Mb/s).  Nodes are named
    ["N0"… ].  Raises [Invalid_argument] for fewer than 2 nodes. *)

val power_law :
  Bbr_util.Prng.t ->
  nodes:int ->
  ?m:int ->
  ?delay_fraction:float ->
  ?capacity_lo:float ->
  ?capacity_hi:float ->
  unit ->
  Bbr_vtrs.Topology.t
(** A connected ISP-scale domain with a power-law degree distribution,
    grown by preferential attachment (Barabási–Albert): each new node
    attaches to [m] (default 2) distinct earlier nodes with probability
    proportional to their degree, every undirected edge realized as a
    mirrored pair of directed links sharing one capacity drawn uniformly
    from [[capacity_lo, capacity_hi]] (default 1–10 Mb/s) and a scheduler
    that is delay-based with probability [delay_fraction] (default 0.2).
    O(nodes·m): a 10k-node graph builds in well under a second.  Nodes
    are ["N0"…]; early nodes become the high-degree hubs.  Deterministic
    in the generator state: equal seeds yield {!digest}-identical
    topologies.  Raises [Invalid_argument] for fewer than 2 nodes or
    [m < 1]. *)

val digest : Bbr_vtrs.Topology.t -> string
(** CRC-32 hex digest of the canonical topology rendering (node order,
    link endpoints, capacities, scheduler classes, error terms) — the
    determinism oracle for generators: same seed ⇒ same digest. *)

val degrees : Bbr_vtrs.Topology.t -> (string * int) list
(** Out-degree per node, in node insertion order. *)

val hubs : Bbr_vtrs.Topology.t -> string list
(** Nodes by descending degree (name breaking ties) — the first entries
    are the cores a regional-failure campaign aims at. *)

val leaves : Bbr_vtrs.Topology.t -> string list
(** Nodes by ascending degree — the stubs a partition campaign cuts off
    and the natural ingress/egress candidates. *)

val random_endpoints : Bbr_util.Prng.t -> Bbr_vtrs.Topology.t -> string * string
(** Two distinct nodes of the topology. *)

val regions :
  Bbr_util.Prng.t ->
  regions:int ->
  nodes_per_region:int ->
  ?extra_links:int ->
  ?delay_fraction:float ->
  ?capacity_lo:float ->
  ?capacity_hi:float ->
  ?inter_capacity:float ->
  unit ->
  Bbr_vtrs.Topology.t
(** A domain of [regions] connected random regions (each a spanning tree
    plus [extra_links] extras, generated as in {!random}), joined in a
    ring of wide rate-based inter-region links between the regions' hub
    nodes ["R<r>_N0"].  The hub is each region's only gateway, so minimum-
    hop paths between two same-region nodes never leave the region — the
    property that makes regional traffic single-shard under a
    region-based partition ({!region_of_node}).  Nodes are named
    ["R<r>_N<i>"].  Deterministic in the generator state. *)

val region_of_node : string -> int option
(** Parse the region index from a {!regions} node name ([None] for
    foreign names) — the basis of the sharded broker's partition
    function: [shard of node = region mod nshards]. *)
