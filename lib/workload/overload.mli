(** Overload and partition soak scenarios for the admission pipeline.

    Two end-to-end robustness experiments, both pure functions of their
    seed:

    - {!run} — the Figure-10 churn workload at a multiple of the base
      arrival rate, pushed through reliable COPS (with jittered backoff)
      into a bounded {!Bbr_broker.Overload} admission pipeline in front
      of the broker.  The exact O(M) admission test shadows every
      decision as an oracle: the outcome reports how often degraded
      (brownout) admission admitted something the oracle would have
      refused — which must be never.
    - {!run_partition} — two lease-holding edge brokers admit local
      flows from delegated quota; one partitions mid-run, its lease
      expires, and the central sweep must return the full delegation to
      the shared pool within one lease period; on reconnect the edge
      reconciles (re-registering still-live flows, surrendering the
      rest). *)

type config = {
  seed : int;
  setting : Fig8.setting;
  base_rate : float;  (** arrivals/s at 1x load *)
  overload : float;  (** offered load as a multiple of [base_rate] *)
  mean_holding : float;
  duration : float;  (** arrivals offered during [0, duration) *)
  horizon : float;
  latency : float;  (** one-way PEP↔PDP delay *)
  pipeline : Bbr_broker.Overload.config;
  brownout : bool;  (** [false] = flat pipeline: degradation disabled *)
  journal : bool;
      (** journal the run and verify replay reproduces the digest *)
}

val default_config : config
(** Seed 1, mixed Figure-8 setting, 10x the 0.15 arrivals/s base load,
    1500 s of arrivals over a 3000 s horizon, brownout on. *)

type outcome = {
  offered : int;
  admitted : int;
  rejected : int;  (** resource/policy rejections decided by the broker *)
  busy : int;  (** requests that resolved [Server_busy] after all retries *)
  completed : int;
  pipeline : Bbr_broker.Overload.stats;
  p50_latency : float;
  p99_latency : float;
  brownout_time : float;  (** sim seconds spent degraded *)
  messages : int;
  retransmissions : int;
  busy_backoffs : int;
  unresolved : int;  (** COPS transactions never resolved — must be 0 *)
  oracle_violations : int;  (** must be 0 *)
  audit : Bbr_broker.Audit.report;
  digest : string;  (** canonical MIB digest at the end of the run *)
  journal_digest_match : bool option;
      (** [Some true] iff journal replay into a fresh broker reproduces
          [digest]; [None] when not journaled *)
}

val run : config -> outcome

val pp_outcome : outcome Fmt.t

(** {1 Partition soak} *)

type partition_config = {
  p_seed : int;
  p_lease_period : float;
  p_chunk : float;  (** quota acquisition granularity, b/s *)
  p_arrival_rate : float;  (** local flow arrivals/s at each edge *)
  p_mean_holding : float;
  p_duration : float;
  p_horizon : float;
  p_disconnect_at : float;
  p_reconnect_at : float option;  (** [None]: the edge stays dead *)
}

val default_partition_config : partition_config
(** Seed 1, 30 s lease, disconnect at 150 s, reconnect at 350 s. *)

type partition_outcome = {
  p_offered : int;
  p_admitted : int;
  p_rejected : int;
  quota_at_disconnect : float;  (** delegated to the partitioned edge *)
  reclaim_time : float option;
      (** sim seconds from disconnect until the central broker held none
          of the partitioned edge's grant flows *)
  reclaimed_within_period : bool;  (** the acceptance criterion *)
  re_registered : int;
  surrendered : int;
  stale_leases : int;  (** [Stale_lease] findings in the final audit *)
  p_audit : Bbr_broker.Audit.report;
  central_transactions : int;
}

val run_partition : partition_config -> partition_outcome

val pp_partition_outcome : partition_outcome Fmt.t
