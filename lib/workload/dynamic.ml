module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Engine = Bbr_netsim.Engine
module Fluid_edge = Bbr_netsim.Fluid_edge
module Prng = Bbr_util.Prng

type scheme = Perflow | Aggr of Aggregate.method_

let pp_scheme ppf = function
  | Perflow -> Fmt.string ppf "per-flow BB/VTRS"
  | Aggr Aggregate.Bounding -> Fmt.string ppf "aggr BB/VTRS (bounding)"
  | Aggr Aggregate.Feedback -> Fmt.string ppf "aggr BB/VTRS (feedback)"

type config = {
  seed : int;
  setting : Fig8.setting;
  arrival_rate : float;
  mean_holding : float;
  duration : float;
  cd : float;
}

let default_config =
  {
    seed = 1;
    setting = `Rate_only;
    arrival_rate = 0.15;
    mean_holding = 200.;
    duration = 20_000.;
    cd = 0.24;
  }

type outcome = {
  offered : int;
  blocked : int;
  blocking_rate : float;
  completed : int;
}

type entry = {
  at : float;
  holding : float;
  profile : Traffic.t;
  dreq : float;
  ingress : string;
  egress : string;
}

(* Materialize the arrival sequence a configuration induces; both [run]
   variants replay this list, so a saved trace reproduces a run exactly. *)
let arrivals config =
  let prng = Prng.create ~seed:config.seed in
  let arrivals_rng = Prng.split prng in
  let holding_rng = Prng.split prng in
  let mix_rng = Prng.split prng in
  let rec go now acc =
    let gap = Prng.exponential arrivals_rng ~mean:(1. /. config.arrival_rate) in
    let at = now +. gap in
    if at >= config.duration then List.rev acc
    else begin
      let flow_type = Prng.int mix_rng ~bound:4 in
      let tight = Prng.bool mix_rng in
      let dreq = Profiles.bound flow_type (if tight then `Tight else `Loose) in
      let from_s1 = Prng.bool mix_rng in
      let holding = Prng.exponential holding_rng ~mean:config.mean_holding in
      go at
        ({
           at;
           holding;
           profile = Profiles.profile flow_type;
           dreq;
           ingress = (if from_s1 then Fig8.ingress1 else Fig8.ingress2);
           egress = (if from_s1 then Fig8.egress1 else Fig8.egress2);
         }
        :: acc)
    end
  in
  go 0. []

(* One delay service class per distinct Table-1 bound: flows of different
   types sharing a bound aggregate into the same macroflow per path. *)
let service_classes cd =
  List.mapi
    (fun i dreq -> { Aggregate.class_id = i; dreq; cd })
    Profiles.all_bounds

let run_trace ?(setting = `Rate_only) ?(cd = 0.24) ?observe entries scheme =
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now engine))
    (Bbr_obs.Trace.current ());
  let topology = Fig8.topology setting in
  let fluids : (int * int, Fluid_edge.t) Hashtbl.t = Hashtbl.create 16 in
  let broker_ref = ref None in
  let fluid_for ~class_id ~path_id =
    match Hashtbl.find_opt fluids (class_id, path_id) with
    | Some f -> f
    | None ->
        let f =
          Fluid_edge.create engine ~service:0.
            ~on_empty:(fun () ->
              match !broker_ref with
              | Some broker -> Broker.queue_empty broker ~class_id ~path_id
              | None -> ())
            ()
        in
        Hashtbl.replace fluids (class_id, path_id) f;
        f
  in
  let broker =
    Broker.create
      ~classes:(match scheme with Perflow -> [] | Aggr _ -> service_classes cd)
      ~method_:(match scheme with Perflow | Aggr Aggregate.Feedback -> Aggregate.Feedback
               | Aggr Aggregate.Bounding -> Aggregate.Bounding)
      ~time:
        {
          Broker.now = (fun () -> Engine.now engine);
          after = (fun delay f -> Engine.schedule_after engine ~delay f);
        }
      ~on_class_rate:(fun ~class_id ~path_id ~total_rate ->
        Fluid_edge.set_service (fluid_for ~class_id ~path_id) total_rate)
      topology
  in
  broker_ref := Some broker;
  Option.iter (fun f -> f engine broker) observe;
  let offered = ref 0 and blocked = ref 0 and completed = ref 0 in
  let admit_one entry =
    let req =
      {
        Types.profile = entry.profile;
        dreq = entry.dreq;
        ingress = entry.ingress;
        egress = entry.egress;
      }
    in
    incr offered;
    match scheme with
    | Perflow -> (
        match Broker.request broker req with
        | Ok (flow, _) ->
            Engine.schedule_after engine ~delay:entry.holding (fun () ->
                Broker.teardown broker flow;
                incr completed)
        | Error _ -> incr blocked)
    | Aggr _ -> (
        match Broker.request_class broker req with
        | Ok (flow, cls) ->
            let profile = entry.profile in
            let fluid =
              match Broker.route_of broker req with
              | Some path ->
                  Some
                    (fluid_for ~class_id:cls.Aggregate.class_id
                       ~path_id:path.Bbr_broker.Path_mib.path_id)
              | None -> None
            in
            (* The microflow dumps its burst at arrival, then sends at its
               sustained rate until departure. *)
            Option.iter
              (fun f ->
                Fluid_edge.add_burst f profile.Traffic.sigma;
                Fluid_edge.set_input f ~id:flow ~rate:profile.Traffic.rho)
              fluid;
            Engine.schedule_after engine ~delay:entry.holding (fun () ->
                Option.iter (fun f -> Fluid_edge.remove_input f ~id:flow) fluid;
                Broker.teardown_class broker flow;
                incr completed;
                (* A departure with an already-empty edge backlog produces
                   no emptying transition; signal explicitly so feedback
                   contingency cannot linger. *)
                Option.iter
                  (fun f ->
                    if Fluid_edge.is_empty f then
                      match Broker.route_of broker req with
                      | Some path ->
                          Broker.queue_empty broker
                            ~class_id:cls.Aggregate.class_id
                            ~path_id:path.Bbr_broker.Path_mib.path_id
                      | None -> ())
                  fluid)
        | Error _ -> incr blocked)
  in
  List.iter
    (fun entry -> Engine.schedule engine ~at:entry.at (fun () -> admit_one entry))
    entries;
  Engine.run engine;
  {
    offered = !offered;
    blocked = !blocked;
    blocking_rate =
      (if !offered = 0 then 0. else float_of_int !blocked /. float_of_int !offered);
    completed = !completed;
  }

let run ?observe config scheme =
  run_trace ~setting:config.setting ~cd:config.cd ?observe (arrivals config) scheme

(* ------------------------------------------------------------------ *)
(* Packet-level variant: the same churn driven through the full data
   plane. *)

type packet_outcome = {
  admission : outcome;
  packets : int;
  bound_violations : int;
  worst_slack : float;
}

module Net = Bbr_netsim.Net
module Source = Bbr_netsim.Source
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Sink = Bbr_netsim.Sink
module Delay = Bbr_vtrs.Delay
module Topology = Bbr_vtrs.Topology

let run_packet_level ?observe config scheme =
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now engine))
    (Bbr_obs.Trace.current ());
  let prng = Prng.create ~seed:config.seed in
  let arrivals_rng = Prng.split prng in
  let holding_rng = Prng.split prng in
  let mix_rng = Prng.split prng in
  let topology = Fig8.topology config.setting in
  let net = Net.create engine topology Net.Core_stateless in
  let broker_ref = ref None in
  (* One edge conditioner per macroflow under the aggregate schemes,
     keyed by (class, path); its queue-empty events are the real
     contingency feedback. *)
  let macro_conds : (int * int, Edge_conditioner.t) Hashtbl.t = Hashtbl.create 16 in
  let classes =
    match scheme with Perflow -> [] | Aggr _ -> service_classes config.cd
  in
  let class_def id =
    List.find (fun (c : Aggregate.class_def) -> c.Aggregate.class_id = id) classes
  in
  let cond_for ~class_id ~path_id =
    match Hashtbl.find_opt macro_conds (class_id, path_id) with
    | Some c -> c
    | None ->
        let c =
          Net.make_conditioner net ~rate:1. ~delay_param:(class_def class_id).Aggregate.cd
            ~lmax:Topology.mtu_bits
            ~on_empty:(fun () ->
              match !broker_ref with
              | Some broker -> Broker.queue_empty broker ~class_id ~path_id
              | None -> ())
            ()
        in
        Hashtbl.replace macro_conds (class_id, path_id) c;
        c
  in
  let broker =
    Broker.create ~classes
      ~method_:(match scheme with
               | Perflow | Aggr Aggregate.Feedback -> Aggregate.Feedback
               | Aggr Aggregate.Bounding -> Aggregate.Bounding)
      ~time:
        {
          Broker.now = (fun () -> Engine.now engine);
          after = (fun delay f -> Engine.schedule_after engine ~delay f);
        }
      ~on_class_rate:(fun ~class_id ~path_id ~total_rate ->
        (* A macroflow that lost its last member pushes rate 0; leave the
           (idle) conditioner at its previous rate instead. *)
        if total_rate > 0. then
          Edge_conditioner.set_rate (cond_for ~class_id ~path_id) total_rate)
      topology
  in
  broker_ref := Some broker;
  Option.iter (fun f -> f engine broker) observe;
  let offered = ref 0 and blocked = ref 0 and completed = ref 0 in
  (* For the bound audit: flow -> (its end-to-end bound). *)
  let bounds : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let admit_one () =
    let flow_type = Prng.int mix_rng ~bound:4 in
    let tight = Prng.bool mix_rng in
    let dreq = Profiles.bound flow_type (if tight then `Tight else `Loose) in
    let from_s1 = Prng.bool mix_rng in
    let req =
      {
        Types.profile = Profiles.profile flow_type;
        dreq;
        ingress = (if from_s1 then Fig8.ingress1 else Fig8.ingress2);
        egress = (if from_s1 then Fig8.egress1 else Fig8.egress2);
      }
    in
    incr offered;
    let holding = Prng.exponential holding_rng ~mean:config.mean_holding in
    let profile = req.Types.profile in
    let path_info = Broker.route_of broker req in
    let start_source ~flow ~submit =
      let path =
        match path_info with
        | Some info -> Array.of_list info.Bbr_broker.Path_mib.links
        | None -> [||]
      in
      Source.on_off engine ~profile ~flow ~path ~next:submit ()
    in
    match scheme with
    | Perflow -> (
        match Broker.request broker req with
        | Ok (flow, res) ->
            (match path_info with
            | Some info ->
                Hashtbl.replace bounds flow
                  (Delay.e2e_bound profile ~q:info.Bbr_broker.Path_mib.rate_hops
                     ~delay_hops:info.Bbr_broker.Path_mib.delay_hops
                     ~rate:res.Types.rate ~delay:res.Types.delay
                     ~d_tot:info.Bbr_broker.Path_mib.d_tot)
            | None -> ());
            let cond =
              Net.make_conditioner net ~rate:res.Types.rate
                ~delay_param:res.Types.delay ~lmax:profile.Traffic.lmax ()
            in
            let src =
              start_source ~flow ~submit:(fun p -> Edge_conditioner.submit cond p)
            in
            Engine.schedule_after engine ~delay:holding (fun () ->
                Source.halt src;
                Broker.teardown broker flow;
                incr completed)
        | Error _ -> incr blocked)
    | Aggr _ -> (
        match Broker.request_class broker req with
        | Ok (flow, cls) ->
            (* Packets of every member are bounded by the class bound. *)
            Hashtbl.replace bounds flow cls.Aggregate.dreq;
            let cond =
              match path_info with
              | Some info ->
                  cond_for ~class_id:cls.Aggregate.class_id
                    ~path_id:info.Bbr_broker.Path_mib.path_id
              | None -> assert false
            in
            let src =
              start_source ~flow ~submit:(fun p -> Edge_conditioner.submit cond p)
            in
            Engine.schedule_after engine ~delay:holding (fun () ->
                Source.halt src;
                Broker.teardown_class broker flow;
                incr completed;
                (* A departure that leaves the macroflow backlog already
                   empty produces no emptying transition. *)
                if Edge_conditioner.backlog_bits cond = 0. then
                  match path_info with
                  | Some info ->
                      Broker.queue_empty broker ~class_id:cls.Aggregate.class_id
                        ~path_id:info.Bbr_broker.Path_mib.path_id
                  | None -> ())
        | Error _ -> incr blocked)
  in
  let rec schedule_arrival () =
    let gap = Prng.exponential arrivals_rng ~mean:(1. /. config.arrival_rate) in
    let at = Engine.now engine +. gap in
    if at < config.duration then
      Engine.schedule engine ~at (fun () ->
          admit_one ();
          schedule_arrival ())
  in
  schedule_arrival ();
  Engine.run engine;
  let sink = Net.sink net in
  let violations = ref 0 and worst = ref infinity in
  Hashtbl.iter
    (fun flow bound ->
      match Sink.stats sink ~flow with
      | Some s ->
          let slack = bound -. s.Sink.max_e2e in
          if slack < !worst then worst := slack;
          if slack < -1e-9 then incr violations
      | None -> ())
    bounds;
  {
    admission =
      {
        offered = !offered;
        blocked = !blocked;
        blocking_rate =
          (if !offered = 0 then 0.
           else float_of_int !blocked /. float_of_int !offered);
        completed = !completed;
      };
    packets = Sink.total_received sink;
    bound_violations = !violations;
    worst_slack = !worst;
  }

let blocking_vs_load ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(base = default_config) ~loads
    scheme =
  List.map
    (fun load ->
      let rates =
        List.map
          (fun seed ->
            (run { base with seed; arrival_rate = load } scheme).blocking_rate)
          seeds
      in
      (load, Bbr_util.Stats.mean_of rates))
    loads
