module Engine = Bbr_netsim.Engine
module Broker = Bbr_broker.Broker
module Cops = Bbr_broker.Cops
module Ov = Bbr_broker.Overload
module Admission = Bbr_broker.Admission
module Audit = Bbr_broker.Audit
module Journal = Bbr_broker.Journal
module Edge_broker = Bbr_broker.Edge_broker
module Flow_mib = Bbr_broker.Flow_mib
module Policy = Bbr_broker.Policy
module Types = Bbr_broker.Types
module Traffic = Bbr_vtrs.Traffic
module Prng = Bbr_util.Prng

(* ------------------------------------------------------------------ *)
(* Overload soak: the Figure-10 churn workload at a multiple of the
   base arrival rate, pushed through COPS and the bounded admission
   pipeline.  The exact O(M) test is consulted as a shadow oracle on
   every decision, so a run proves (not just hopes) that degradation
   never over-admits. *)

type config = {
  seed : int;
  setting : Fig8.setting;
  base_rate : float;  (** arrivals/s at 1x load *)
  overload : float;  (** offered load as a multiple of [base_rate] *)
  mean_holding : float;
  duration : float;
  horizon : float;
  latency : float;
  pipeline : Ov.config;
  brownout : bool;  (** [false] = flat pipeline: degradation disabled *)
  journal : bool;
}

let default_config =
  {
    seed = 1;
    setting = `Mixed;
    base_rate = 0.15;
    overload = 10.;
    mean_holding = 200.;
    duration = 1500.;
    horizon = 3000.;
    latency = 0.005;
    (* Service times sized so 10x the base arrival rate (~1.5 req/s)
       saturates the exact O(M) path (capacity 1/2.5 = 0.4 req/s) but not
       the conservative O(1) path (capacity 2 req/s): the flat pipeline
       melts, the brownout pipeline degrades and keeps deciding. *)
    pipeline =
      {
        Ov.default_config with
        Ov.queue_limit = 32;
        deadline = 10.;
        service_exact = 2.5;
        service_conservative = 0.5;
        brownout_sustain = 5.;
        retry_after = 10.;
      };
    brownout = true;
    journal = false;
  }

type outcome = {
  offered : int;
  admitted : int;
  rejected : int;  (** resource/policy rejections decided by the broker *)
  busy : int;  (** requests that resolved [Server_busy] after all retries *)
  completed : int;
  pipeline : Ov.stats;
  p50_latency : float;
  p99_latency : float;
  brownout_time : float;  (** sim seconds spent degraded *)
  messages : int;
  retransmissions : int;
  busy_backoffs : int;
  unresolved : int;
  oracle_violations : int;
  audit : Audit.report;
  digest : string;
  journal_digest_match : bool option;
      (** replaying the journal into a fresh broker reproduces [digest];
          [None] when the run was not journaled *)
}

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>offered %d  admitted %d  rejected %d  busy %d  completed %d@,\
     pipeline: decided %d  shed %d (full %d, deadline %d, priority %d, shutdown %d)  max depth %d@,\
     brownout: %d entries, %d exits, %.1f s degraded, %d conservative decisions@,\
     latency: p50 %.3f s  p99 %.3f s@,\
     signaling: %d messages, %d retransmissions, %d busy backoffs, %d unresolved@,\
     oracle violations %d  audit %s%a@]"
    o.offered o.admitted o.rejected o.busy o.completed o.pipeline.Ov.decided
    (Ov.shed_total o.pipeline) o.pipeline.Ov.shed_queue_full
    o.pipeline.Ov.shed_deadline o.pipeline.Ov.shed_priority
    o.pipeline.Ov.shed_shutdown o.pipeline.Ov.max_depth
    o.pipeline.Ov.brownout_entries o.pipeline.Ov.brownout_exits o.brownout_time
    o.pipeline.Ov.conservative_decisions o.p50_latency o.p99_latency o.messages
    o.retransmissions o.busy_backoffs o.unresolved o.oracle_violations
    (if Audit.ok o.audit then "clean" else "VIOLATIONS")
    (Fmt.option (fun ppf m ->
         Fmt.pf ppf "@,journal replay digest %s" (if m then "MATCH" else "MISMATCH")))
    o.journal_digest_match

let exact_oracle broker (req : Types.request) =
  match Broker.route_of broker req with
  | None -> false
  | Some path ->
      let ps =
        Admission.path_state (Broker.node_mib broker) (Broker.path_mib broker) path
      in
      Result.is_ok (Admission.admit ps req.Types.profile ~dreq:req.Types.dreq)

let run config =
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Bbr_obs.Trace.set_sim_clock tr (fun () -> Engine.now engine))
    (Bbr_obs.Trace.current ());
  let topo = Fig8.topology config.setting in
  let time =
    {
      Broker.now = (fun () -> Engine.now engine);
      after = (fun delay f -> Engine.schedule_after engine ~delay f);
    }
  in
  (* Policy priorities drive the watermark shedding: everything entering
     at I1 is "premium", the rest best-importance-0.  The classification
     is administrative, so it lives in the policy information base. *)
  let policy = Policy.create () in
  Policy.add_priority_rule policy ~name:"premium-ingress"
    ~matches:(fun r -> r.Types.ingress = Fig8.ingress1)
    ~priority:10;
  let broker = Broker.create ~policy ~time topo in
  let journal =
    if config.journal then begin
      let j = Journal.create ~fsync_every:1 () in
      Journal.attach j broker;
      Some j
    end
    else None
  in
  let pipeline_config =
    if config.brownout then config.pipeline
    else
      (* A flat pipeline never degrades: the enter watermark is the full
         queue and the sustain horizon is unreachable. *)
      { config.pipeline with Ov.brownout_enter = 1.; brownout_sustain = infinity }
  in
  let ov =
    Ov.create ~config:pipeline_config ~oracle:(exact_oracle broker) ~time broker
  in
  let prng = Prng.create ~seed:config.seed in
  let jitter_rng = Prng.split prng in
  let cops =
    Cops.create broker ~latency:config.latency
      ~reliability:
        (Cops.reliability
           ~loss:(fun () -> false)
           ~jitter:(fun () -> Prng.float jitter_rng)
           ())
      ~pdp:(fun req k -> Ov.submit ov req k)
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  let arrivals =
    Dynamic.arrivals
      {
        Dynamic.seed = config.seed;
        setting = config.setting;
        arrival_rate = config.base_rate *. config.overload;
        mean_holding = config.mean_holding;
        duration = config.duration;
        cd = 0.24;
      }
  in
  let admitted = ref 0 and rejected = ref 0 and busy = ref 0 in
  let completed = ref 0 in
  (* Integrate time spent degraded by sampling the controller at a fixed
     cadence — cheap, deterministic, and good enough for a soak figure. *)
  let brownout_time = ref 0. in
  let sample_every = 0.5 in
  let stopped = ref false in
  let rec sample () =
    if not !stopped then begin
      if Ov.brownout ov then brownout_time := !brownout_time +. sample_every;
      Engine.schedule_after engine ~delay:sample_every sample
    end
  in
  sample ();
  List.iter
    (fun (e : Dynamic.entry) ->
      Engine.schedule engine ~at:e.Dynamic.at (fun () ->
          Cops.request cops
            {
              Types.profile = e.Dynamic.profile;
              dreq = e.Dynamic.dreq;
              ingress = e.Dynamic.ingress;
              egress = e.Dynamic.egress;
            }
            ~on_decision:(function
              | Ok (flow, _) ->
                  incr admitted;
                  Engine.schedule_after engine ~delay:e.Dynamic.holding (fun () ->
                      Cops.teardown cops flow;
                      incr completed)
              | Error (Types.Server_busy _) -> incr busy
              | Error _ -> incr rejected)))
    arrivals;
  Engine.run ~until:config.horizon engine;
  (* Drain: stop the sampler and the pipeline (shedding whatever is
     still queued, so every COPS transaction resolves), then let the
     tail of timers run out. *)
  stopped := true;
  Ov.stop ov;
  Engine.run engine;
  let digest = Audit.mib_digest broker in
  let journal_digest_match =
    Option.map
      (fun j ->
        let fresh = Broker.create (Fig8.topology config.setting) in
        match Journal.replay fresh (Journal.text j) with
        | Ok _ -> Audit.mib_digest fresh = digest
        | Error _ -> false)
      journal
  in
  {
    offered = List.length arrivals;
    admitted = !admitted;
    rejected = !rejected;
    busy = !busy;
    completed = !completed;
    pipeline = Ov.stats ov;
    p50_latency = Ov.latency_quantile ov ~q:0.5;
    p99_latency = Ov.latency_quantile ov ~q:0.99;
    brownout_time = !brownout_time;
    messages = Cops.messages cops;
    retransmissions = Cops.retransmissions cops;
    busy_backoffs = Cops.busy_backoffs cops;
    unresolved = Cops.pending cops;
    oracle_violations = (Ov.stats ov).Ov.oracle_violations;
    audit = Audit.check broker;
    digest;
    journal_digest_match;
  }

(* ------------------------------------------------------------------ *)
(* Partition soak: leased quota delegation under an edge-broker
   partition.  Two leased edge brokers admit local flows; one goes
   silent mid-run, its lease expires, and the central sweep must return
   the full delegated quota to the shared pool within one lease period.
   On reconnect the edge reconciles: still-live flows re-register,
   everything else is surrendered. *)

type partition_config = {
  p_seed : int;
  p_lease_period : float;
  p_chunk : float;
  p_arrival_rate : float;  (** local flow arrivals/s at each edge *)
  p_mean_holding : float;
  p_duration : float;
  p_horizon : float;
  p_disconnect_at : float;
  p_reconnect_at : float option;  (** [None]: the edge stays dead *)
}

let default_partition_config =
  {
    p_seed = 1;
    p_lease_period = 30.;
    p_chunk = 150_000.;
    p_arrival_rate = 0.15;
    p_mean_holding = 100.;
    p_duration = 400.;
    p_horizon = 600.;
    p_disconnect_at = 150.;
    p_reconnect_at = Some 350.;
  }

type partition_outcome = {
  p_offered : int;
  p_admitted : int;
  p_rejected : int;
  quota_at_disconnect : float;  (** delegated to the partitioned edge *)
  reclaim_time : float option;
      (** sim seconds from disconnect until the central broker held none
          of the partitioned edge's grant flows *)
  reclaimed_within_period : bool;
  re_registered : int;
  surrendered : int;
  stale_leases : int;  (** [Stale_lease] findings in the final audit *)
  p_audit : Audit.report;
  central_transactions : int;
}

let pp_partition_outcome ppf o =
  Fmt.pf ppf
    "@[<v>offered %d  admitted %d  rejected %d@,\
     disconnect: %.6g b/s delegated%a, within one period: %b@,\
     reconnect: %d re-registered, %d surrendered@,\
     stale leases %d  audit %s  central transactions %d@]"
    o.p_offered o.p_admitted o.p_rejected o.quota_at_disconnect
    (Fmt.option (fun ppf t -> Fmt.pf ppf ", reclaimed in %.2f s" t))
    o.reclaim_time o.reclaimed_within_period o.re_registered o.surrendered
    o.stale_leases
    (if Audit.ok o.p_audit then "clean" else "VIOLATIONS")
    o.central_transactions

(* A CBR-ish local flow request an edge broker can admit from quota. *)
let local_request prng ~ingress ~egress =
  let rate = 20_000. +. (Prng.float prng *. 60_000.) in
  {
    Types.profile =
      Traffic.make ~sigma:Bbr_vtrs.Topology.mtu_bits ~rho:rate ~peak:rate
        ~lmax:Bbr_vtrs.Topology.mtu_bits;
    dreq = 1.5;
    ingress;
    egress;
  }

let run_partition config =
  let engine = Engine.create () in
  let topo = Fig8.topology `Rate_only in
  let time =
    {
      Broker.now = (fun () -> Engine.now engine);
      after = (fun delay f -> Engine.schedule_after engine ~delay f);
    }
  in
  let central = Broker.create ~time topo in
  let mgr =
    Edge_broker.lease_manager ~central ~time ~period:config.p_lease_period
  in
  let edge ingress egress =
    match Edge_broker.create_leased mgr ~ingress ~egress ~chunk:config.p_chunk with
    | Ok e -> e
    | Error e ->
        invalid_arg
          (Fmt.str "Overload.run_partition: cannot create edge broker: %a"
             Types.pp_reject_reason e)
  in
  let e1 = edge Fig8.ingress1 Fig8.egress1 in
  let e2 = edge Fig8.ingress2 Fig8.egress2 in
  let prng = Prng.create ~seed:config.p_seed in
  let arr_rng = Prng.split prng in
  let hold_rng = Prng.split prng in
  let prof_rng = Prng.split prng in
  let offered = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let drive (edge_broker, ingress, egress) =
    let rec arrival at =
      if at < config.p_duration then
        Engine.schedule engine ~at (fun () ->
            incr offered;
            (match
               Edge_broker.request edge_broker (local_request prof_rng ~ingress ~egress)
             with
            | Ok (flow, _) ->
                incr admitted;
                let holding = Prng.exponential hold_rng ~mean:config.p_mean_holding in
                Engine.schedule_after engine ~delay:holding (fun () ->
                    Edge_broker.teardown edge_broker flow;
                    Edge_broker.return_idle_quota edge_broker)
            | Error _ -> incr rejected);
            arrival (at +. Prng.exponential arr_rng ~mean:(1. /. config.p_arrival_rate)))
    in
    arrival (Prng.exponential arr_rng ~mean:(1. /. config.p_arrival_rate))
  in
  drive (e1, Fig8.ingress1, Fig8.egress1);
  drive (e2, Fig8.ingress2, Fig8.egress2);
  (* Watch the partitioned edge's grant flows at the central broker: the
     reclaim instant is when the last one disappears. *)
  let quota_at_disconnect = ref 0. in
  let grant_flows_at_disconnect = ref [] in
  let reclaim_time = ref None in
  let poll_every = config.p_lease_period /. 20. in
  let polling = ref false in
  let rec poll () =
    if !polling then begin
      let fm = Broker.flow_mib central in
      if
        !reclaim_time = None
        && List.for_all (fun f -> Flow_mib.find fm f = None) !grant_flows_at_disconnect
      then begin
        reclaim_time := Some (Engine.now engine -. config.p_disconnect_at);
        polling := false
      end
      else Engine.schedule_after engine ~delay:poll_every poll
    end
  in
  Engine.schedule engine ~at:config.p_disconnect_at (fun () ->
      quota_at_disconnect := Edge_broker.quota_total e1;
      grant_flows_at_disconnect :=
        (match Edge_broker.leases mgr with
        | l1 :: _ -> l1.Types.granted
        | [] -> []);
      Edge_broker.disconnect e1;
      polling := true;
      poll ());
  let re_registered = ref 0 and surrendered = ref 0 in
  (match config.p_reconnect_at with
  | None -> ()
  | Some at ->
      Engine.schedule engine ~at (fun () ->
          let r = Edge_broker.reconnect e1 in
          re_registered := List.length r.Edge_broker.re_registered;
          surrendered := List.length r.Edge_broker.surrendered));
  Engine.run ~until:config.p_horizon engine;
  Edge_broker.stop_manager mgr;
  polling := false;
  Engine.run engine;
  (* Audit as of the horizon — the last instant leases were being
     renewed and swept.  (The drain above runs holding-time teardowns
     arbitrarily far past the horizon, where every lease would look
     expired only because its manager was stopped.) *)
  let audit =
    Audit.check ~now:config.p_horizon ~leases:(Edge_broker.leases mgr) central
  in
  let stale =
    List.length
      (List.filter (fun v -> v.Audit.kind = Audit.Stale_lease) audit.Audit.violations)
  in
  {
    p_offered = !offered;
    p_admitted = !admitted;
    p_rejected = !rejected;
    quota_at_disconnect = !quota_at_disconnect;
    reclaim_time = !reclaim_time;
    reclaimed_within_period =
      (match !reclaim_time with
      | Some t -> t <= config.p_lease_period +. 1e-9
      | None -> false);
    re_registered = !re_registered;
    surrendered = !surrendered;
    stale_leases = stale;
    p_audit = audit;
    central_transactions =
      Edge_broker.central_transactions e1 + Edge_broker.central_transactions e2;
  }
