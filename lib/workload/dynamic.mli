(** Dynamic churn experiment (paper Section 5, Figure 10).

    Flows arrive as a Poisson process from the two sources, each flow with
    a flow type and delay bound drawn uniformly from Table 1 and an
    exponentially distributed holding time (mean 200 s).  The flow
    blocking rate is measured under per-flow BB/VTRS admission and under
    the aggregate scheme with either contingency method; for the aggregate
    scheme, a fluid edge-backlog model per macroflow drives the
    contingency-feedback signal. *)

type scheme =
  | Perflow
  | Aggr of Bbr_broker.Aggregate.method_

val pp_scheme : scheme Fmt.t

type config = {
  seed : int;
  setting : Fig8.setting;
  arrival_rate : float;  (** total flow arrivals per second, both sources *)
  mean_holding : float;  (** seconds; the paper uses 200 *)
  duration : float;  (** arrivals are offered during [0, duration) *)
  cd : float;  (** class delay parameter at delay-based hops *)
}

val default_config : config
(** seed 1, [`Rate_only], 0.15 arrivals/s, 200 s holding, 20000 s horizon,
    cd 0.24. *)

type outcome = {
  offered : int;
  blocked : int;
  blocking_rate : float;
  completed : int;  (** flows that departed before the horizon *)
}

(** One flow arrival in a materialized workload (see also {!Trace}). *)
type entry = {
  at : float;  (** arrival time, seconds *)
  holding : float;
  profile : Bbr_vtrs.Traffic.t;
  dreq : float;
  ingress : string;
  egress : string;
}

val arrivals : config -> entry list
(** The exact arrival sequence the configuration induces — {!run} replays
    this list, so a saved copy reproduces the run bit for bit. *)

val service_classes : float -> Bbr_broker.Aggregate.class_def list
(** The delay service classes every aggregating run uses: one per
    distinct Table-1 bound, all with fixed-delay parameter [cd].  A
    broker rebuilt offline (e.g. [bbsim recover]) must be created with
    the same classes before a journal or snapshot can replay into it. *)

val run_trace :
  ?setting:Fig8.setting ->
  ?cd:float ->
  ?observe:(Bbr_netsim.Engine.t -> Bbr_broker.Broker.t -> unit) ->
  entry list ->
  scheme ->
  outcome
(** Replay an arbitrary arrival list (defaults: rate-only setting,
    cd 0.24).  [observe] runs once on the engine and broker before the
    first arrival — the hook for registering telemetry gauges or a
    sim-time sampler; the trace sim clock is bound to the engine for the
    run either way. *)

val run : ?observe:(Bbr_netsim.Engine.t -> Bbr_broker.Broker.t -> unit) -> config -> scheme -> outcome

val blocking_vs_load :
  ?seeds:int list -> ?base:config -> loads:float list -> scheme -> (float * float) list
(** For each arrival rate in [loads], the blocking rate averaged over the
    seeds (default seeds 1..5, as in the paper's five runs per point). *)

type packet_outcome = {
  admission : outcome;
  packets : int;  (** packets delivered end to end *)
  bound_violations : int;
      (** packets that exceeded their flow's (or class's) end-to-end
          bound — must be 0 *)
  worst_slack : float;
      (** minimum of (bound - measured delay) over all flows, seconds *)
}

val run_packet_level :
  ?observe:(Bbr_netsim.Engine.t -> Bbr_broker.Broker.t -> unit) ->
  config ->
  scheme ->
  packet_outcome
(** The same churn experiment with a {e full packet-level data plane}: every
    admitted flow runs an on/off source through a real edge conditioner and
    the core-stateless schedulers of the Figure-8 network; under the
    aggregate schemes the macroflow edge conditioners supply the real
    queue-empty feedback.  Validates both the fluid model used by {!run}
    (blocking rates agree) and the delay guarantees under churn (no packet
    may exceed its bound).  Roughly 100x slower than {!run}; prefer short
    horizons. *)
