(* Uniform telemetry recording of admission decisions and control-plane
   stage timings.  Every admission decision in the repository — broker
   per-flow, class-based, fixed-rate (snapshot restore, inter-domain),
   edge-broker local — funnels through [decision], so the
   [bb_admission_*] counters and the trace decision log use one label
   vocabulary ({!Types.reject_label}) everywhere.

   All helpers are branch-only no-ops when neither a metrics registry nor
   a tracer is installed. *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace

let active () = Metrics.enabled () || Trace.enabled ()

(* Which broker shard this domain's (or, inline, the currently executing
   shard's) telemetry belongs to.  Domain-local so a spawned shard can tag
   itself once; the inline sharded broker flips it around each shard
   operation. *)
let shard_slot : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_shard v = Domain.DLS.get shard_slot := v

let shard () = !(Domain.DLS.get shard_slot)

(* Per-site instrument handles, cached so the per-request path skips the
   registry's (name, labels) -> child resolution.  Each cache entry
   remembers the registry it was resolved against and is re-resolved
   when a different one is installed (benches and failover tests cycle
   registries). *)
let find_handle tbl reg key make =
  match Hashtbl.find_opt tbl key with
  | Some (r, v) when r == reg -> v
  | _ ->
      let v = make () in
      Hashtbl.replace tbl key (reg, v);
      v

let admission_counters : (string, Metrics.t * Metrics.counter) Hashtbl.t =
  Hashtbl.create 16

(* The shard label is attached only when {!set_shard} is active, so
   single-broker deployments keep their two-label series untouched. *)
let shard_suffix = function None -> "" | Some k -> "\x00" ^ string_of_int k

let shard_labels = function
  | None -> []
  | Some k -> [ ("shard", string_of_int k) ]

let admission_total reg ~shard ~service ~result =
  find_handle admission_counters reg
    (service ^ "\x00" ^ result ^ shard_suffix shard)
    (fun () ->
      Metrics.counter reg "bb_admission_total"
        ~labels:(("service", service) :: ("result", result) :: shard_labels shard))

let reject_counters : (string, Metrics.t * Metrics.counter) Hashtbl.t =
  Hashtbl.create 16

let reject_total reg ~shard ~service ~reason =
  find_handle reject_counters reg
    (service ^ "\x00" ^ reason ^ shard_suffix shard)
    (fun () ->
      Metrics.counter reg "bb_admission_reject_total"
        ~labels:(("service", service) :: ("reason", reason) :: shard_labels shard))

let decision ~service ~at (req : Types.request) outcome =
  if active () then begin
    let admitted, flow, rate, reason =
      match outcome with
      | Ok (flow, rate) -> (true, Some flow, rate, None)
      | Error r -> (false, None, 0., Some r)
    in
    let result = if admitted then "admit" else "reject" in
    let reason = Option.map Types.reject_label reason in
    (match Metrics.current () with
    | Some reg ->
        let shard = shard () in
        Metrics.inc (admission_total reg ~shard ~service ~result);
        Option.iter
          (fun r -> Metrics.inc (reject_total reg ~shard ~service ~reason:r))
          reason
    | None -> ());
    Trace.decision ~sim_time:at
      {
        Trace.service;
        flow;
        admitted;
        reject_reason = reason;
        ingress = req.Types.ingress;
        egress = req.Types.egress;
        rate;
      }
  end

(* A pre-resolved stage site: the span name is concatenated once (the
   ring retains entry names, so a fresh string per call would be
   promoted with each entry) and the histogram handle is re-resolved
   only when the installed registry changes. *)
type stage_site = {
  st_label : string;
  st_span : string;  (* "bb.stage.<label>" *)
  mutable st_reg : Metrics.t option;
  mutable st_hist : Metrics.histogram option;
}

let stage_site name =
  {
    st_label = name;
    st_span = "bb.stage." ^ name;
    st_reg = None;
    st_hist = None;
  }

let site_hist site =
  match Metrics.current () with
  | None -> None
  | Some reg -> (
      match site.st_reg with
      | Some r when r == reg -> site.st_hist
      | _ ->
          let h =
            Metrics.histogram reg "bb_stage_seconds"
              ~help:"Wall-clock time spent in the control-loop stage"
              ~labels:[ ("stage", site.st_label) ]
          in
          site.st_reg <- Some reg;
          site.st_hist <- Some h;
          Some h)

(* Time one stage of the Figure-1 control loop.  The histogram family is
   [bb_stage_seconds{stage=...}]; the trace span is [bb.stage.<name>],
   parented on the innermost ambient span (the request's root span when
   called under [span]) and ambient itself so nested instrumentation —
   a journal group commit inside bookkeeping, a COPS push — becomes its
   child.  This is the hottest recording site (several calls per
   request), so it shares each clock read between the histogram and the
   span stamps and brackets the ambient stack without closures. *)
let stage ~now site f =
  if active () then begin
    let t0 = Trace.now_wall () in
    let sp =
      Trace.start_span ~sim_time:(now ()) ~wall_time:t0 site.st_span
    in
    let finish () =
      Trace.pop_ambient sp;
      let t1 = Trace.now_wall () in
      (match site_hist site with
      | Some h -> Metrics.observe h (t1 -. t0)
      | None -> ());
      Trace.finish_span ~sim_time:(now ()) ~wall_time:t1 sp
    in
    Trace.push_ambient sp;
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end
  else f ()

(* A causal span around a unit of control-plane work (one request, one
   batch).  Parent: explicit [?parent] handle, else the innermost
   ambient span, else the span roots a fresh trace.  Start and finish
   are both stamped with the caller's clock so sim-time extent is
   consistent even when the tracer's own sim clock is unbound. *)
let span ~now ?attrs ?parent name f =
  if Trace.enabled () then begin
    let attrs =
      match shard () with
      | None -> attrs
      | Some k ->
          Some (("shard", string_of_int k) :: Option.value ~default:[] attrs)
    in
    let sp = Trace.start_span ~sim_time:(now ()) ?attrs ?parent name in
    Trace.push_ambient sp;
    match f sp with
    | r ->
        Trace.pop_ambient sp;
        Trace.finish_span ~sim_time:(now ()) sp;
        r
    | exception e ->
        Trace.pop_ambient sp;
        Trace.finish_span ~sim_time:(now ()) sp;
        raise e
  end
  else f Trace.null_span

let event ~at ?attrs ?parent name = Trace.event ~sim_time:at ?attrs ?parent name

let count = Metrics.count
