(* Uniform telemetry recording of admission decisions and control-plane
   stage timings.  Every admission decision in the repository — broker
   per-flow, class-based, fixed-rate (snapshot restore, inter-domain),
   edge-broker local — funnels through [decision], so the
   [bb_admission_*] counters and the trace decision log use one label
   vocabulary ({!Types.reject_label}) everywhere.

   All helpers are branch-only no-ops when neither a metrics registry nor
   a tracer is installed. *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace

let active () = Metrics.enabled () || Trace.enabled ()

let decision ~service ~at (req : Types.request) outcome =
  if active () then begin
    let admitted, flow, rate, reason =
      match outcome with
      | Ok (flow, rate) -> (true, Some flow, rate, None)
      | Error r -> (false, None, 0., Some r)
    in
    let result = if admitted then "admit" else "reject" in
    Metrics.count "bb_admission_total"
      ~labels:[ ("service", service); ("result", result) ];
    (match reason with
    | Some r ->
        Metrics.count "bb_admission_reject_total"
          ~labels:[ ("service", service); ("reason", Types.reject_label r) ]
    | None -> ());
    Trace.decision ~sim_time:at
      {
        Trace.service;
        flow;
        admitted;
        reject_reason = Option.map Types.reject_label reason;
        ingress = req.Types.ingress;
        egress = req.Types.egress;
        rate;
      }
  end

(* Time one stage of the Figure-1 control loop.  The histogram family is
   [bb_stage_seconds{stage=...}]; the trace span is [bb.stage.<name>]. *)
let stage ~now name f =
  if active () then begin
    let t0 = Trace.now_wall () in
    let finish () =
      let dur = Trace.now_wall () -. t0 in
      Metrics.observe_one "bb_stage_seconds" ~labels:[ ("stage", name) ] dur;
      Trace.span_record ~sim_time:(now ()) ("bb.stage." ^ name) ~dur
    in
    Fun.protect ~finally:finish f
  end
  else f ()

let event ~at ?attrs name = Trace.event ~sim_time:at ?attrs name

let count = Metrics.count
