module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace

type config = {
  queue_limit : int;
  deadline : float;
  shed_watermark : float;
  service_exact : float;
  service_conservative : float;
  brownout_enter : float;
  brownout_exit : float;
  brownout_sustain : float;
  retry_after : float;
  batch_limit : int;
}

let default_config =
  {
    queue_limit = 64;
    deadline = 0.5;
    shed_watermark = 0.75;
    service_exact = 2e-3;
    service_conservative = 5e-4;
    brownout_enter = 0.5;
    brownout_exit = 0.25;
    brownout_sustain = 0.25;
    retry_after = 0.5;
    batch_limit = 1;
  }

let validate c =
  if c.queue_limit < 1 then invalid_arg "Overload: queue_limit must be >= 1";
  if c.deadline <= 0. then invalid_arg "Overload: deadline must be positive";
  if c.service_exact <= 0. || c.service_conservative <= 0. then
    invalid_arg "Overload: service times must be positive";
  if not (c.shed_watermark > 0. && c.shed_watermark <= 1.) then
    invalid_arg "Overload: shed_watermark must be in (0, 1]";
  if not (c.brownout_exit < c.brownout_enter && c.brownout_enter <= 1.) then
    invalid_arg "Overload: need brownout_exit < brownout_enter <= 1";
  if c.brownout_sustain < 0. then invalid_arg "Overload: brownout_sustain must be >= 0";
  if c.retry_after < 0. then invalid_arg "Overload: retry_after must be >= 0";
  if c.batch_limit < 1 then invalid_arg "Overload: batch_limit must be >= 1"

type outcome = (Types.flow_id * Types.reservation, Types.reject_reason) result

type mode = [ `Exact | `Conservative ]

let shed_label = function
  | `Queue_full -> "queue_full"
  | `Deadline -> "deadline"
  | `Priority -> "priority"
  | `Shutdown -> "shutdown"

type entry = {
  req : Types.request;
  enqueued_at : float;
  prio : int;
  respond : outcome -> unit;
  mutable dropped : bool;  (* shed by the priority policy while queued *)
  (* Causal trace: the pipeline span covers submit -> respond; queue-wait
     and service are its children, crossing sim-time boundaries via the
     explicit handles.  Null handles when no tracer is installed. *)
  span : Trace.span;
  qspan : Trace.span;
  mutable sspan : Trace.span;
}

type stats = {
  submitted : int;
  decided : int;
  admitted : int;
  rejected : int;
  shed_queue_full : int;
  shed_deadline : int;
  shed_priority : int;
  shed_shutdown : int;
  conservative_decisions : int;
  brownout_entries : int;
  brownout_exits : int;
  oracle_violations : int;
  max_depth : int;
}

type t = {
  mutable broker : Broker.t;
  config : config;
  time : Broker.time_hooks;
  oracle : (Types.request -> bool) option;
  on_serviced : (Types.request -> mode -> outcome -> unit) option;
  queue : entry Queue.t;
  mutable depth : int;  (* live (non-dropped) queued entries *)
  mutable busy : bool;
  mutable stopped : bool;
  mutable epoch : int;  (* bumped by retarget; cancels in-service work *)
  mutable brownout : bool;
  mutable above_since : float option;  (* load >= enter watermark since *)
  mutable below_since : float option;  (* load <= exit watermark since *)
  (* running tallies *)
  mutable submitted : int;
  mutable decided : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable shed_queue_full : int;
  mutable shed_deadline : int;
  mutable shed_priority : int;
  mutable shed_shutdown : int;
  mutable conservative_decisions : int;
  mutable brownout_entries : int;
  mutable brownout_exits : int;
  mutable oracle_violations : int;
  mutable max_depth : int;
  mutable latencies : float array;
  mutable n_lat : int;
}

let create ?(config = default_config) ?oracle ?on_serviced ~time broker =
  validate config;
  {
    broker;
    config;
    time;
    oracle;
    on_serviced;
    queue = Queue.create ();
    depth = 0;
    busy = false;
    stopped = false;
    epoch = 0;
    brownout = false;
    above_since = None;
    below_since = None;
    submitted = 0;
    decided = 0;
    admitted = 0;
    rejected = 0;
    shed_queue_full = 0;
    shed_deadline = 0;
    shed_priority = 0;
    shed_shutdown = 0;
    conservative_decisions = 0;
    brownout_entries = 0;
    brownout_exits = 0;
    oracle_violations = 0;
    max_depth = 0;
    latencies = Array.make 256 0.;
    n_lat = 0;
  }

(* Decision latencies run from microseconds (idle pipeline) to tens of
   seconds (deadline-bounded queueing): extend the default power-of-4
   bucket ladder, which stops at ~4 s, by two rungs. *)
let latency_buckets =
  Array.append Metrics.default_buckets [| 16.777216; 67.108864 |]

let note_depth t =
  if t.depth > t.max_depth then t.max_depth <- t.depth;
  Metrics.set_gauge "bb_overload_queue_depth" (float_of_int t.depth)

let record_latency t dt =
  if t.n_lat = Array.length t.latencies then begin
    let bigger = Array.make (2 * t.n_lat) 0. in
    Array.blit t.latencies 0 bigger 0 t.n_lat;
    t.latencies <- bigger
  end;
  t.latencies.(t.n_lat) <- dt;
  t.n_lat <- t.n_lat + 1;
  Metrics.observe_one ~buckets:latency_buckets "bb_decision_latency_seconds" dt

let latency_quantile t ~q =
  if t.n_lat = 0 then nan
  else begin
    let a = Array.sub t.latencies 0 t.n_lat in
    Array.sort compare a;
    let q = Float.max 0. (Float.min 1. q) in
    a.(int_of_float (Float.round (q *. float_of_int (t.n_lat - 1))))
  end

let decision_count t = t.n_lat

(* ------------------------------------------------------------------ *)
(* Brownout controller: a hysteresis loop over the queue-fill fraction.
   Re-evaluated at every queue event; while the queue is non-empty the
   server generates an event at least every service time, so the sustain
   clock cannot silently stall under load. *)

let fill t = float_of_int t.depth /. float_of_int t.config.queue_limit

let update_brownout t =
  let now = t.time.now () in
  let frac = fill t in
  if not t.brownout then begin
    t.below_since <- None;
    if frac >= t.config.brownout_enter then (
      match t.above_since with
      | None -> t.above_since <- Some now
      | Some since ->
          if now -. since >= t.config.brownout_sustain then begin
            t.brownout <- true;
            t.above_since <- None;
            t.brownout_entries <- t.brownout_entries + 1;
            Metrics.set_gauge "bb_brownout_active" 1.;
            Metrics.count "bb_brownout_transitions_total" ~labels:[ ("dir", "enter") ];
            Obs_log.event ~at:now "bb.brownout.enter"
              ~attrs:[ ("depth", string_of_int t.depth) ]
          end)
    else t.above_since <- None
  end
  else begin
    t.above_since <- None;
    if frac <= t.config.brownout_exit then (
      match t.below_since with
      | None -> t.below_since <- Some now
      | Some since ->
          if now -. since >= t.config.brownout_sustain then begin
            t.brownout <- false;
            t.below_since <- None;
            t.brownout_exits <- t.brownout_exits + 1;
            Metrics.set_gauge "bb_brownout_active" 0.;
            Metrics.count "bb_brownout_transitions_total" ~labels:[ ("dir", "exit") ];
            Obs_log.event ~at:now "bb.brownout.exit"
              ~attrs:[ ("depth", string_of_int t.depth) ]
          end)
    else t.below_since <- None
  end

(* ------------------------------------------------------------------ *)
(* Shedding. *)

let shed t entry reason =
  (match reason with
  | `Queue_full -> t.shed_queue_full <- t.shed_queue_full + 1
  | `Deadline -> t.shed_deadline <- t.shed_deadline + 1
  | `Priority -> t.shed_priority <- t.shed_priority + 1
  | `Shutdown -> t.shed_shutdown <- t.shed_shutdown + 1);
  Metrics.count "bb_overload_shed_total" ~labels:[ ("reason", shed_label reason) ];
  let now = t.time.now () in
  Obs_log.event ~at:now "bb.overload.shed" ~parent:entry.span
    ~attrs:[ ("reason", shed_label reason); ("priority", string_of_int entry.prio) ];
  Trace.finish_span ~sim_time:now entry.qspan;
  Trace.finish_span ~sim_time:now
    ~attrs:[ ("result", "shed"); ("reason", shed_label reason) ]
    entry.span;
  entry.respond (Error (Types.Server_busy { retry_after = t.config.retry_after }))

(* The lowest-priority live entry, oldest first on ties — the victim the
   watermark policy evicts to make room for more important work. *)
let min_prio_entry t =
  Queue.fold
    (fun acc e ->
      if e.dropped then acc
      else
        match acc with Some m when m.prio <= e.prio -> acc | _ -> Some e)
    None t.queue

let pop_live t =
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> None
    | Some e -> if e.dropped then go () else Some e
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The server: one decision in service at a time, each costing the mode's
   service time in sim time.  Already-late work is dropped at dequeue for
   free — the whole point of the deadline check is to avoid spending
   service capacity on work whose requester has given up. *)

let rec serve t =
  match pop_live t with
  | None -> t.busy <- false
  | Some e ->
      t.depth <- t.depth - 1;
      note_depth t;
      let now = t.time.now () in
      if now -. e.enqueued_at > t.config.deadline then begin
        shed t e `Deadline;
        update_brownout t;
        serve t
      end
      else begin
        let mode = if t.brownout then `Conservative else `Exact in
        let cost =
          match mode with
          | `Exact -> t.config.service_exact
          | `Conservative -> t.config.service_conservative
        in
        dequeued t e;
        (* Batch drain: pull up to [batch_limit - 1] more live, in-deadline
           entries to decide together under one timer and one broker batch
           (journal group commit, warm admission cache).  Each entry is
           still decided against the state its predecessors left behind,
           so outcomes equal the one-at-a-time drain's. *)
        let batch = gather_batch t [ e ] (t.config.batch_limit - 1) in
        let total_cost = cost *. float_of_int (List.length batch) in
        let epoch = t.epoch in
        t.time.after total_cost (fun () ->
            if t.epoch <> epoch then
              (* The broker died under us mid-service: the batch's work was
                 lost with it.  Shed rather than decide against the
                 successor, whose recovered MIB never saw these requests. *)
              List.iter
                (fun e ->
                  Trace.finish_span ~sim_time:(t.time.now ()) e.sspan;
                  shed t e `Shutdown)
                batch
            else begin
              (match batch with
              | [ one ] -> decide t one mode
              | several ->
                  Trace.span "bb.overload.batch" (fun () ->
                      Broker.batched t.broker (fun () ->
                          List.iter (fun e -> decide t e mode) several)));
              update_brownout t;
              serve t
            end)
      end

(* Dequeue bookkeeping for an entry that made its deadline: the queue
   wait ends here and the service span opens. *)
and dequeued t e =
  let now = t.time.now () in
  Trace.finish_span ~sim_time:now e.qspan;
  e.sspan <- Trace.start_span ~sim_time:now ~parent:e.span "bb.service"

and gather_batch t acc k =
  if k <= 0 then List.rev acc
  else
    match pop_live t with
    | None -> List.rev acc
    | Some e ->
        t.depth <- t.depth - 1;
        note_depth t;
        if t.time.now () -. e.enqueued_at > t.config.deadline then begin
          shed t e `Deadline;
          gather_batch t acc k
        end
        else begin
          dequeued t e;
          gather_batch t (e :: acc) (k - 1)
        end

and decide t e mode =
  let oracle_ok = Option.map (fun f -> f e.req) t.oracle in
  let outcome =
    (* The broker's bb.request span (and its stages) nest under this
       entry's pipeline span, not under whatever else is ambient in the
       engine callback. *)
    Trace.with_ambient e.span (fun () ->
        Broker.request t.broker ~admission:mode e.req)
  in
  (match mode with
  | `Conservative -> t.conservative_decisions <- t.conservative_decisions + 1
  | `Exact -> ());
  t.decided <- t.decided + 1;
  (match outcome with
  | Ok _ ->
      t.admitted <- t.admitted + 1;
      if oracle_ok = Some false then t.oracle_violations <- t.oracle_violations + 1
  | Error _ -> t.rejected <- t.rejected + 1);
  let now = t.time.now () in
  record_latency t (now -. e.enqueued_at);
  Trace.finish_span ~sim_time:now
    ~attrs:
      [ ("mode", match mode with `Exact -> "exact" | `Conservative -> "conservative") ]
    e.sspan;
  Trace.finish_span ~sim_time:now
    ~attrs:[ ("result", match outcome with Ok _ -> "admit" | Error _ -> "reject") ]
    e.span;
  (match t.on_serviced with None -> () | Some f -> f e.req mode outcome);
  e.respond outcome

let submit t req respond =
  t.submitted <- t.submitted + 1;
  let now = t.time.now () in
  let prio = Policy.priority (Broker.policy t.broker) req in
  (* Roots a fresh trace unless submitted under an ambient span (the
     COPS exchange at the PDP): then the whole pipeline nests there. *)
  let span =
    Trace.start_span ~sim_time:now
      ~attrs:[ ("priority", string_of_int prio) ]
      "bb.pipeline"
  in
  let entry =
    {
      req;
      enqueued_at = now;
      prio;
      respond;
      dropped = false;
      span;
      qspan = Trace.start_span ~sim_time:now ~parent:span "bb.queue.wait";
      sspan = Trace.null_span;
    }
  in
  if t.stopped then shed t entry `Shutdown
  else if t.depth >= t.config.queue_limit then begin
    shed t entry `Queue_full;
    update_brownout t
  end
  else begin
    let watermark =
      int_of_float
        (Float.round (t.config.shed_watermark *. float_of_int t.config.queue_limit))
    in
    (if t.depth >= watermark then
       (* Past the watermark someone must go: the least important of the
          queued work and the newcomer. *)
       match min_prio_entry t with
       | Some victim when victim.prio < entry.prio ->
           victim.dropped <- true;
           t.depth <- t.depth - 1;
           shed t victim `Priority;
           Queue.add entry t.queue;
           t.depth <- t.depth + 1
       | _ -> shed t entry `Priority
     else begin
       Queue.add entry t.queue;
       t.depth <- t.depth + 1
     end);
    note_depth t;
    update_brownout t;
    if not t.busy then begin
      t.busy <- true;
      serve t
    end
  end

let stop t =
  t.stopped <- true;
  let rec drain () =
    match pop_live t with
    | None -> ()
    | Some e ->
        t.depth <- t.depth - 1;
        shed t e `Shutdown;
        drain ()
  in
  drain ();
  note_depth t

let quiesce t =
  (* Crash-time freeze: invalidate the in-service batch (its timer will
     fire into the epoch guard and shed) and stop + drain the queue.
     Unlike {!stop}, not even the decision in service completes — the
     broker it would decide against is gone. *)
  t.epoch <- t.epoch + 1;
  t.busy <- false;
  stop t

let retarget t broker =
  t.epoch <- t.epoch + 1;
  t.broker <- broker;
  t.stopped <- false;
  (* The old epoch's in-service timer, if any, will fire into the guard
     above and shed its batch without recursing into [serve]; restart the
     server for whatever queued work survived the outage. *)
  t.busy <- false;
  if not (Queue.is_empty t.queue) then begin
    t.busy <- true;
    serve t
  end

let brownout t = t.brownout

let queue_depth t = t.depth

let stats t =
  {
    submitted = t.submitted;
    decided = t.decided;
    admitted = t.admitted;
    rejected = t.rejected;
    shed_queue_full = t.shed_queue_full;
    shed_deadline = t.shed_deadline;
    shed_priority = t.shed_priority;
    shed_shutdown = t.shed_shutdown;
    conservative_decisions = t.conservative_decisions;
    brownout_entries = t.brownout_entries;
    brownout_exits = t.brownout_exits;
    oracle_violations = t.oracle_violations;
    max_depth = t.max_depth;
  }

let shed_total (s : stats) =
  s.shed_queue_full + s.shed_deadline + s.shed_priority + s.shed_shutdown
