(** Path QoS state information base (paper Section 2.2).

    For every ingress→egress path in use, the broker caches the path-level
    quantities that make the admissibility tests fast: hop counts, the sum
    of error terms and propagation delays [D_tot], and the {e minimal
    residual bandwidth along the path} [C_res] — updated incrementally
    whenever a reservation changes on any link of the path, so the
    rate-based admissibility test of Section 3.1 is O(1). *)

type info = {
  path_id : int;
  links : Bbr_vtrs.Topology.link list;
  hops : int;  (** [h] *)
  rate_hops : int;  (** [q] *)
  delay_hops : int;  (** [h - q] *)
  d_tot : float;  (** [sum (psi_i + pi_i)] *)
}

type t

val create : Bbr_vtrs.Topology.t -> Node_mib.t -> t
(** Registers the cache-maintenance hook with the node MIB. *)

val register : t -> Bbr_vtrs.Topology.link list -> info
(** Register (or look up) a path.  Paths are deduplicated by their link-id
    sequence.  Raises [Invalid_argument] on an empty or disconnected link
    list. *)

val register_segment : t -> Bbr_vtrs.Topology.link list -> info
(** Like {!register} but without the connectivity requirement: a broker
    shard owning only a subset of a path's links books them as one
    {e segment}, and a path that alternates between shards leaves each
    owner a non-contiguous link list.  Segments share the id space and
    deduplication key of full paths.  Raises [Invalid_argument] on an
    empty link list. *)

val residual : t -> info -> float
(** Cached [C_res^P = min over links of (capacity - reserved)] — O(1). *)

val find : t -> path_id:int -> info option
(** O(1) id lookup. *)

val find_links : t -> links:int list -> info option
(** Look a registered path up by its link-id sequence — the path identity
    that is stable across brokers (path ids depend on registration order,
    so a journal or snapshot replayed onto a standby names paths by their
    links). *)

val paths : t -> info list

val pp_info : info Fmt.t
