(** Warm-standby broker failover.

    The replication scheme the paper's footnote 2 gestures at: because
    every piece of QoS state lives in the broker's MIBs, a standby fed
    periodic {!Snapshot} checkpoints can take over after a crash without
    involving any core router.  This module keeps the latest checkpoint,
    models the crash, and promotes a freshly built standby from that
    checkpoint.

    Recovery semantics without a journal: flows admitted after the last
    checkpoint are lost on promotion (their eventual DRQs are harmless
    no-ops thanks to idempotent teardown); everything checkpointed is
    restored exactly, under its original flow id.  With a {!Journal}
    attached, promotion additionally replays the journal tail — every
    mutation since the last checkpoint — so nothing durably journaled is
    lost at all: the recovered broker is decision-equivalent to the
    crashed one (equal {!Audit.mib_digest}).  In-flight requests are not
    the manager's problem — a reliable {!Cops} channel retransmits them
    to the promoted broker once {!Cops.set_broker} repoints it. *)

type t

type storage_recovery = {
  sr_gen : int option;  (** checkpoint generation restored; [None] = from empty *)
  sr_cover : int;  (** replay started at this journal sequence number *)
  sr_fallback : bool;
      (** a newer generation existed but failed verification, or the
          chosen candidate was not the first tried *)
  sr_truncated : string option;  (** why the record suffix stopped early *)
  sr_quarantined : int;  (** sealed segments quarantined during recovery *)
  sr_replayed : int;
}
(** What a storage-mode promotion actually recovered — the data-loss
    report callers surface (exit codes, scenario outcomes). *)

val recovery_loss : storage_recovery -> bool
(** True when the recovery was degraded in any visible way: generation
    fallback, truncated suffix, or quarantined segments. *)

val create :
  make_standby:(unit -> Broker.t) ->
  ?time:Broker.time_hooks ->
  ?journal:Journal.t ->
  ?storage:Storage.t ->
  Broker.t ->
  t
(** [make_standby ()] must build a fresh broker over the same topology
    and classes as the primary (it is called at promotion time, so the
    standby starts empty).  [time] defaults to {!Broker.immediate_time} —
    fine for manual {!checkpoint} calls, but see the warning on
    {!start_checkpoints}.  [journal], when given, is attached to the
    primary immediately (every mutation from here on is journaled),
    compacted at each {!checkpoint}, replayed and re-attached at
    {!promote}.

    [storage], when given, makes durability real: {!checkpoint} writes
    dual-generation verified checkpoints through {!Storage.checkpoint}
    (and skips compaction when the write fails — the journal is then the
    only durable copy), and {!promote} reads {e only} the store — newest
    verifiable generation plus longest intact record suffix, degrading
    across generations rather than failing.  Pair it with a journal
    created over the same store ([Journal.create ~storage]) so records
    write through to the segmented log. *)

val active : t -> Broker.t
(** The broker currently holding the PDP role: the primary until a
    promotion, the latest standby afterwards. *)

val is_up : t -> bool

val checkpoint : t -> unit
(** Snapshot the active broker now, replacing the previous checkpoint,
    and compact the attached journal (the checkpoint covers everything
    its records rebuilt).  Ignored while crashed. *)

val start_checkpoints : t -> every:float -> unit
(** Checkpoint on a periodic timer.  Requires real (engine-driven) time
    hooks: under {!Broker.immediate_time} the timer fires recursively on
    the spot and never returns.  The timer keeps rescheduling until
    {!stop}; when driving an {!Bbr_netsim.Engine}, bound the run with
    [~until].  Idempotent: a second call does not start a second timer.
    Raises [Invalid_argument] when [every <= 0]. *)

val stop : t -> unit
(** Stop the periodic checkpoint timer (it unschedules at its next
    firing). *)

val crash : t -> unit
(** The active broker fails: checkpoints stop until promotion.  Pair with
    {!Cops.set_pdp_up} to make the signaling channel see the outage. *)

val promote : t -> (int, string) result
(** Build a standby with [make_standby], restore the latest checkpoint
    into it, then replay the journal tail (when a journal is attached; a
    journal with no checkpoint yet replays from empty).  On [Ok n] ([n] =
    reservations restored + journal records applied) the standby is the
    new {!active} and is up, a fresh checkpoint of it is taken, and the
    journal — compacted and re-attached — resumes on the standby; repoint
    signaling with {!Cops.set_broker}.  [Error] when there is nothing to
    promote from or a restore/replay step fails — the previous active
    broker is left in place (still down), untouched: replay happens on
    the standby only. *)

val journal : t -> Journal.t option
(** The write-ahead journal attached at {!create}, if any. *)

val replay_warning : t -> string option
(** The tail-truncation warning of the last promotion's journal replay —
    [Some _] when a torn or corrupt record cut the replay short (records
    past the cut are lost, as after a real crash). *)

val last_recovery : t -> storage_recovery option
(** The data-loss report of the last storage-mode promotion; [None]
    before any promotion or without [storage]. *)

val recover_from :
  make:(unit -> Broker.t) ->
  Storage.t ->
  (Broker.t * int * storage_recovery, string) result
(** Cold recovery, the read-only core of storage-mode promotion: build a
    broker with [make], restore the newest verifiable checkpoint
    generation, replay the longest intact record suffix; degrade across
    generations (and ultimately to an intact chain from sequence 0, or
    the empty state with loss reported) rather than fail.  Returns the
    recovered broker, the count of reservations restored from the
    checkpoint, and the degradation report.  Mutates nothing but the
    store's quarantine renames; never raises. *)

val storage : t -> Storage.t option
(** The segmented store given at {!create}, if any. *)

val snapshot_age : t -> float option
(** Time since the last checkpoint — the window of admissions a crash
    right now would lose.  [None] before the first checkpoint. *)

val checkpoints : t -> int
(** Checkpoints taken so far. *)

val generation : t -> int
(** Promotions so far: 0 while the original primary serves. *)
