(** Overload control for the broker's admission pipeline.

    The paper's scalability argument rests on admission being an O(1)
    (Section 3.1) or O(M) (Section 3.2) computation against the MIBs — but
    a real control plane also needs an explicit service-capacity model, or
    there is nothing between "fine" and meltdown when the request rate
    exceeds what even cheap decisions can absorb.  This module puts a
    bounded queue and a degradation ladder in front of {!Broker.request}:

    - requests wait in a bounded FIFO and each decision costs a
      (sim-time) service time;
    - work that missed its setup deadline is dropped at dequeue, before
      any service capacity is spent on it;
    - past a fill watermark the queue sheds by {!Policy.priority} class —
      the least important of the queued work and the newcomer goes;
    - a hysteretic {e brownout} controller watches the fill fraction and,
      under sustained load, degrades mixed-path admission from the exact
      O(M) scan to the conservative O(1) rate-only bound
      ({!Admission.conservative}) — trading admission precision for a
      shorter service time — and switches back once the queue stays
      drained;
    - every shed request is answered with
      [Types.Server_busy { retry_after }], which a COPS PEP honors with
      jittered backoff ({!Cops.reliability}) instead of hammering the
      retransmission path.

    Shed requests never reach the broker: no MIB state is touched, no
    journal record is written, so recovery digests are unaffected.  All
    timing comes from the injected {!Broker.time_hooks}; under the seeded
    simulator the whole pipeline is deterministic. *)

type config = {
  queue_limit : int;  (** bounded FIFO capacity (entries) *)
  deadline : float;
      (** per-request setup deadline (seconds of queueing); older work is
          dropped at dequeue *)
  shed_watermark : float;
      (** queue-fill fraction past which priority shedding starts *)
  service_exact : float;  (** service time of an O(M) exact decision *)
  service_conservative : float;
      (** service time of an O(1) conservative decision *)
  brownout_enter : float;  (** fill fraction that arms brownout entry *)
  brownout_exit : float;  (** fill fraction that arms brownout exit *)
  brownout_sustain : float;
      (** seconds the fill must stay past a watermark before the
          controller flips — the hysteresis that stops mode flapping *)
  retry_after : float;  (** back-off hint carried by [Server_busy] *)
  batch_limit : int;
      (** max queued requests drained as one {!Broker.batched} batch
          (single timer, single journal group commit); 1 = decide one at a
          time.  Outcomes are identical either way — batching only
          amortizes overheads. *)
}

val default_config : config
(** 64-deep queue, 0.5 s deadline, shed past 3/4 full, 2 ms exact / 0.5 ms
    conservative service, brownout at 1/2 sustained 0.25 s with exit at
    1/4, retry hint 0.5 s, batch_limit 1. *)

type t

type outcome = (Types.flow_id * Types.reservation, Types.reject_reason) result

type mode = [ `Exact | `Conservative ]

val create :
  ?config:config ->
  ?oracle:(Types.request -> bool) ->
  ?on_serviced:(Types.request -> mode -> outcome -> unit) ->
  time:Broker.time_hooks ->
  Broker.t ->
  t
(** A pipeline in front of [broker].  [oracle], when given, is consulted
    immediately before each real decision (against pre-booking MIB state);
    an admission the oracle would have rejected increments
    [oracle_violations] — the safety property the conservative mode is
    tested against.  [on_serviced] observes every request that reached the
    broker (not the shed ones) with the mode that decided it.  Raises
    [Invalid_argument] on a nonsensical [config]. *)

val submit : t -> Types.request -> (outcome -> unit) -> unit
(** Enqueue one admission request; the callback fires exactly once, either
    with the broker's decision or with
    [Error (Server_busy { retry_after })] if the request was shed
    (queue full, deadline missed, priority eviction, or pipeline
    stopped). *)

val stop : t -> unit
(** Stop accepting work and shed everything still queued (each pending
    callback fires with [Server_busy]).  The decision currently in
    service, if any, still completes.  Subsequent {!submit}s are shed
    immediately — so timers stay bounded and the simulator drains. *)

val quiesce : t -> unit
(** Crash-time freeze: like {!stop}, but the decision currently in
    service does {e not} complete — its batch is shed when its timer
    fires, instead of being decided against a broker that no longer
    exists.  Pair with {!retarget} once a successor is promoted. *)

val retarget : t -> Broker.t -> unit
(** Point the pipeline at a successor broker after a crash + promotion.
    The batch currently in service (whose timer straddles the outage) is
    shed with [Server_busy] instead of being decided against a broker
    whose recovered MIB never saw it; work still queued is re-served
    against the successor.  Also clears a prior {!stop}, so a pipeline
    stopped at crash time resumes accepting work. *)

val brownout : t -> bool
(** The controller is currently in degraded (conservative) mode. *)

val queue_depth : t -> int

val latency_quantile : t -> q:float -> float
(** Quantile of the sim-time submit→decision latency over all decided
    (non-shed) requests; [nan] when none decided yet. *)

val decision_count : t -> int
(** Number of requests actually decided (equals the latency sample
    count). *)

(** Cumulative pipeline counters.  [shed_*] partition the shed requests by
    reason; [conservative_decisions] counts decisions taken in brownout
    mode; [oracle_violations] counts admissions the exact oracle would
    have rejected (must stay 0). *)
type stats = {
  submitted : int;
  decided : int;
  admitted : int;
  rejected : int;
  shed_queue_full : int;
  shed_deadline : int;
  shed_priority : int;
  shed_shutdown : int;
  conservative_decisions : int;
  brownout_entries : int;
  brownout_exits : int;
  oracle_violations : int;
  max_depth : int;
}

val stats : t -> stats

val shed_total : stats -> int
