module Topology = Bbr_vtrs.Topology

type t = {
  topology : Topology.t;
  path_mib : Path_mib.t;
  cache : (string * string, Path_mib.info option) Hashtbl.t;
  mutable seen_version : int;  (* topology state version the cache reflects *)
}

let create topology path_mib =
  {
    topology;
    path_mib;
    cache = Hashtbl.create 16;
    seen_version = Topology.state_version topology;
  }

(* Breadth-first search: minimum hop count over the links currently up;
   neighbours are explored in link insertion order, so the first path found
   is deterministic. *)
let bfs topology ~ingress ~egress =
  if not (Topology.mem_node topology ingress && Topology.mem_node topology egress)
  then None
  else if ingress = egress then None
  else begin
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited ingress ();
    let frontier = Queue.create () in
    Queue.add (ingress, []) frontier;
    let result = ref None in
    while !result = None && not (Queue.is_empty frontier) do
      let node, rev_path = Queue.take frontier in
      List.iter
        (fun (link : Topology.link) ->
          if
            !result = None
            && Topology.link_is_up topology ~link_id:link.Topology.link_id
            && not (Hashtbl.mem visited link.Topology.dst)
          then begin
            Hashtbl.replace visited link.Topology.dst ();
            let rev_path' = link :: rev_path in
            if link.Topology.dst = egress then result := Some (List.rev rev_path')
            else Queue.add (link.Topology.dst, rev_path') frontier
          end)
        (Topology.out_links topology node)
    done;
    !result
  end

let shortest_path topology ~ingress ~egress = bfs topology ~ingress ~egress

let path t ~ingress ~egress =
  (* Link up/down transitions invalidate every memoized selection: routes
     must steer around failed links and may return after repairs. *)
  let version = Topology.state_version t.topology in
  if version <> t.seen_version then begin
    Hashtbl.reset t.cache;
    t.seen_version <- version
  end;
  match Hashtbl.find_opt t.cache (ingress, egress) with
  | Some cached -> cached
  | None ->
      let selected =
        Option.map (Path_mib.register t.path_mib) (bfs t.topology ~ingress ~egress)
      in
      Hashtbl.replace t.cache (ingress, egress) selected;
      selected

let clear_cache t = Hashtbl.reset t.cache
