module Topology = Bbr_vtrs.Topology

type kind =
  | Leaked_bandwidth
  | Missing_bandwidth
  | Orphan_flow
  | Dangling_membership
  | Aggregate_accounting
  | Stale_lease
  | Sla_mismatch
  | Stranded_segment
  | Orphan_prepare

let kind_label = function
  | Leaked_bandwidth -> "leaked_bandwidth"
  | Missing_bandwidth -> "missing_bandwidth"
  | Orphan_flow -> "orphan_flow"
  | Dangling_membership -> "dangling_membership"
  | Aggregate_accounting -> "aggregate_accounting"
  | Stale_lease -> "stale_lease"
  | Sla_mismatch -> "sla_mismatch"
  | Stranded_segment -> "stranded_segment"
  | Orphan_prepare -> "orphan_prepare"

type violation = { kind : kind; subject : string; detail : string }

type report = {
  violations : violation list;
  flows : int;
  members : int;
  macroflows : int;
  links : int;
}

let ok r = r.violations = []

let default_eps = 1e-3

let sorted_flows broker =
  Flow_mib.fold (Broker.flow_mib broker) ~init:[] ~f:(fun acc r -> r :: acc)
  |> List.sort (fun (a : Flow_mib.record) b ->
         compare a.Flow_mib.flow b.Flow_mib.flow)

let sorted_macros broker =
  let pm = Broker.path_mib broker in
  Aggregate.all_macroflows (Broker.aggregate broker)
  |> List.filter_map (fun (s : Aggregate.macro_stats) ->
         Option.map
           (fun info -> (s, info))
           (Path_mib.find pm ~path_id:s.Aggregate.path_id))
  |> List.sort (fun ((a : Aggregate.macro_stats), (ia : Path_mib.info)) (b, ib) ->
         compare
           (a.Aggregate.class_id, List.map (fun (l : Topology.link) -> l.Topology.link_id) ia.Path_mib.links)
           (b.Aggregate.class_id, List.map (fun (l : Topology.link) -> l.Topology.link_id) ib.Path_mib.links))

(* The per-link bandwidth deltas (actual reserved minus what the MIBs
   account for), after greedily attributing wholly-unbacked flows as
   orphans.  Shared between {!check} and {!repair}. *)
type reconciliation = {
  delta : (int, float) Hashtbl.t;  (* link_id -> actual - expected *)
  orphans : Flow_mib.record list;  (* ascending flow id *)
}

let reconcile ?(eps = default_eps) broker =
  let nm = Broker.node_mib broker in
  let topo = Broker.topology broker in
  let delta = Hashtbl.create 32 in
  List.iter
    (fun (l : Topology.link) ->
      Hashtbl.replace delta l.Topology.link_id
        (Node_mib.reserved nm ~link_id:l.Topology.link_id))
    (Topology.links topo);
  let subtract link_id amount =
    match Hashtbl.find_opt delta link_id with
    | Some d -> Hashtbl.replace delta link_id (d -. amount)
    | None -> Hashtbl.replace delta link_id (-.amount)
  in
  let flows = sorted_flows broker in
  List.iter
    (fun (r : Flow_mib.record) ->
      List.iter
        (fun (l : Topology.link) ->
          subtract l.Topology.link_id r.Flow_mib.reservation.Types.rate)
        r.Flow_mib.path.Path_mib.links)
    flows;
  List.iter
    (fun ((s : Aggregate.macro_stats), (info : Path_mib.info)) ->
      let amount = s.Aggregate.base_rate +. s.Aggregate.contingency in
      List.iter
        (fun (l : Topology.link) -> subtract l.Topology.link_id amount)
        info.Path_mib.links)
    (sorted_macros broker);
  (* A flow whose every link is short by at least the flow's rate has no
     backing reservations anywhere: an orphan record.  Attribute greedily
     in flow-id order, re-crediting its links so the remaining deltas
     reflect only genuine bandwidth drift. *)
  let orphans =
    List.filter
      (fun (r : Flow_mib.record) ->
        let rate = r.Flow_mib.reservation.Types.rate in
        rate > eps
        && List.for_all
             (fun (l : Topology.link) ->
               match Hashtbl.find_opt delta l.Topology.link_id with
               | Some d -> d <= -.rate +. eps
               | None -> false)
             r.Flow_mib.path.Path_mib.links
        &&
        (List.iter
           (fun (l : Topology.link) ->
             subtract l.Topology.link_id (-.rate))
           r.Flow_mib.path.Path_mib.links;
         true))
      flows
  in
  { delta; orphans }

let count_violation v =
  if Obs_log.active () then
    Obs_log.count "bb_audit_violations_total"
      ~labels:[ ("kind", kind_label v.kind) ]

let membership_violations broker =
  let agg = Broker.aggregate broker in
  let acc = ref [] in
  let add kind subject detail = acc := { kind; subject; detail } :: !acc in
  (* Owner table entries must point at a live macroflow listing the flow. *)
  List.iter
    (fun (flow, (class_id, path_id)) ->
      match Aggregate.macroflow_stats agg ~class_id ~path_id with
      | None ->
          add Dangling_membership
            (Printf.sprintf "flow %d" flow)
            (Printf.sprintf "owner entry points at missing macroflow (class %d, path %d)"
               class_id path_id)
      | Some _ ->
          if
            not
              (List.exists
                 (fun (f, _) -> f = flow)
                 (Aggregate.members agg ~class_id ~path_id))
          then
            add Dangling_membership
              (Printf.sprintf "flow %d" flow)
              (Printf.sprintf "owner entry not backed by macroflow member list (class %d, path %d)"
                 class_id path_id))
    (Aggregate.owners_alist agg);
  (* And conversely: every member must carry the matching owner entry. *)
  List.iter
    (fun (s : Aggregate.macro_stats) ->
      List.iter
        (fun (flow, _) ->
          match Aggregate.owner agg ~flow with
          | Some (c, p) when c = s.Aggregate.class_id && p = s.Aggregate.path_id -> ()
          | _ ->
              add Dangling_membership
                (Printf.sprintf "flow %d" flow)
                (Printf.sprintf "member of macroflow (class %d, path %d) without owner entry"
                   s.Aggregate.class_id s.Aggregate.path_id))
        (Aggregate.members agg ~class_id:s.Aggregate.class_id
           ~path_id:s.Aggregate.path_id))
    (Aggregate.all_macroflows agg);
  List.rev !acc

let accounting_violations ?(eps = default_eps) broker =
  let agg = Broker.aggregate broker in
  List.filter_map
    (fun (s : Aggregate.macro_stats) ->
      let subject =
        Printf.sprintf "macroflow (class %d, path %d)" s.Aggregate.class_id
          s.Aggregate.path_id
      in
      let grants =
        Aggregate.grant_amounts agg ~class_id:s.Aggregate.class_id
          ~path_id:s.Aggregate.path_id
      in
      let grant_sum = List.fold_left ( +. ) 0. grants in
      if s.Aggregate.base_rate < -.eps || s.Aggregate.contingency < -.eps then
        Some
          {
            kind = Aggregate_accounting;
            subject;
            detail =
              Printf.sprintf "negative allocation: base %.6g, contingency %.6g"
                s.Aggregate.base_rate s.Aggregate.contingency;
          }
      else if Float.abs (s.Aggregate.contingency -. grant_sum) > eps then
        Some
          {
            kind = Aggregate_accounting;
            subject;
            detail =
              Printf.sprintf
                "contingency pool %.6g b/s does not match its %d grants (sum %.6g)"
                s.Aggregate.contingency (List.length grants) grant_sum;
          }
      else None)
    (Aggregate.all_macroflows agg)

(* Delegated quota, from the lease registry's point of view.  A live
   lease's grants are ordinary flow-MIB pseudo-flows — leased-but-unused
   edge bandwidth is fully accounted for and must NOT surface as a leak
   (and cannot: the backing pseudo-flow makes the link reconcile).  What
   {e is} a violation is the opposite: a lease past its expiry whose
   grants still sit in the MIB — the reclaim sweep failed or never ran,
   and the bandwidth is pinned by a holder who forfeited it. *)
let lease_violations ?(now = 0.) leases broker =
  let fm = Broker.flow_mib broker in
  List.filter_map
    (fun (l : Types.lease) ->
      if now <= l.Types.expires_at then None
      else
        let live =
          List.filter (fun f -> Flow_mib.find fm f <> None) l.Types.granted
        in
        match live with
        | [] -> None
        | _ ->
            let pinned =
              List.fold_left
                (fun acc f ->
                  match Flow_mib.find fm f with
                  | Some r -> acc +. r.Flow_mib.reservation.Types.rate
                  | None -> acc)
                0. live
            in
            Some
              {
                kind = Stale_lease;
                subject = Printf.sprintf "lease %s" l.Types.holder;
                detail =
                  Printf.sprintf
                    "expired at %.6g (now %.6g) but %d grant flow(s) still pin %.6g b/s"
                    l.Types.expires_at now (List.length live) pinned;
              })
    leases

let check ?(eps = default_eps) ?now ?(leases = []) broker =
  if Obs_log.active () then Obs_log.count "bb_audit_runs_total";
  let { delta; orphans } = reconcile ~eps broker in
  let orphan_violations =
    List.map
      (fun (r : Flow_mib.record) ->
        {
          kind = Orphan_flow;
          subject = Printf.sprintf "flow %d" r.Flow_mib.flow;
          detail =
            Printf.sprintf
              "flow-MIB record at %.6g b/s has no backing link reservations"
              r.Flow_mib.reservation.Types.rate;
        })
      orphans
  in
  let link_violations =
    Topology.links (Broker.topology broker)
    |> List.filter_map (fun (l : Topology.link) ->
           let d =
             Option.value ~default:0. (Hashtbl.find_opt delta l.Topology.link_id)
           in
           if d > eps then
             Some
               {
                 kind = Leaked_bandwidth;
                 subject = Printf.sprintf "link %d" l.Topology.link_id;
                 detail =
                   Printf.sprintf
                     "%.6g b/s reserved beyond what any flow or macroflow accounts for"
                     d;
               }
           else if d < -.eps then
             Some
               {
                 kind = Missing_bandwidth;
                 subject = Printf.sprintf "link %d" l.Topology.link_id;
                 detail =
                   Printf.sprintf
                     "%.6g b/s of booked reservations missing from the link"
                     (-.d);
               }
           else None)
  in
  let violations =
    orphan_violations @ link_violations
    @ membership_violations broker
    @ accounting_violations ~eps broker
    @ lease_violations ?now leases broker
  in
  List.iter count_violation violations;
  {
    violations;
    flows = Flow_mib.count (Broker.flow_mib broker);
    members = Aggregate.member_count (Broker.aggregate broker);
    macroflows = List.length (Aggregate.all_macroflows (Broker.aggregate broker));
    links = Topology.num_links (Broker.topology broker);
  }

type repair_outcome = { found : report; repaired : int; remaining : report }

let count_repair kind =
  if Obs_log.active () then
    Obs_log.count "bb_audit_repairs_total" ~labels:[ ("kind", kind_label kind) ]

let repair ?(eps = default_eps) ?now ?(leases = []) broker =
  let found = check ~eps ?now ~leases broker in
  let repaired = ref 0 in
  let fix kind = incr repaired; count_repair kind in
  (* Stale leases first: tearing down the pinned grant flows releases
     their link bandwidth through the ordinary teardown path, so the
     bandwidth reconciliation below sees a consistent picture. *)
  (match now with
  | None -> ()
  | Some now ->
      List.iter
        (fun (l : Types.lease) ->
          if now > l.Types.expires_at then
            List.iter
              (fun f ->
                if Flow_mib.find (Broker.flow_mib broker) f <> None then begin
                  Broker.teardown broker f;
                  fix Stale_lease
                end)
              (List.sort compare l.Types.granted))
        leases);
  (* Orphan flow records are pure MIB garbage: the link bandwidth was
     never (or is no longer) reserved, so removal must not release. *)
  let { delta; orphans } = reconcile ~eps broker in
  List.iter
    (fun (r : Flow_mib.record) ->
      match Flow_mib.remove (Broker.flow_mib broker) r.Flow_mib.flow with
      | Some _ -> fix Orphan_flow
      | None -> ())
    orphans;
  (* Reconcile the aggregate owner/member tables. *)
  let fixed = Aggregate.repair_membership (Broker.aggregate broker) in
  for _ = 1 to fixed do
    fix Dangling_membership
  done;
  (* Finally settle the per-link bandwidth drift that survives orphan
     attribution: release leaks, re-reserve shortfalls (when they still
     fit — a shortfall beyond capacity is unrepairable and stays in
     [remaining]). *)
  let nm = Broker.node_mib broker in
  Hashtbl.fold (fun link_id d acc -> (link_id, d) :: acc) delta []
  |> List.sort compare
  |> List.iter (fun (link_id, d) ->
         if d > eps then (
           (try Node_mib.release nm ~link_id d
            with Invalid_argument _ -> ());
           fix Leaked_bandwidth)
         else if d < -.eps then
           try
             Node_mib.reserve nm ~link_id (-.d);
             fix Missing_bandwidth
           with Invalid_argument _ -> ());
  { found; repaired = !repaired; remaining = check ~eps ?now ~leases broker }

(* ----------------------------------------------------------------- *)
(* Canonical digest.                                                 *)

let link_ids (links : Topology.link list) =
  String.concat "," (List.map (fun (l : Topology.link) -> string_of_int l.Topology.link_id) links)

(* The flow-facing half of the digest text, shared with {!digest_of_perflow}
   so a merged sharded view and a single broker produce byte-identical
   digests.  [flows] must already be in ascending flow-id order; the
   per-link flow contributions are summed in that order (bit-exact). *)
let add_flow_lines buf flows =
  let pf = Printf.sprintf "%h" in
  List.iter
    (fun (flow, rate, delay, links) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d %s %s %s\n" flow (pf rate) (pf delay)
           (String.concat "," (List.map string_of_int links))))
    flows

let flow_rate_sums flows =
  let sums = Hashtbl.create 32 in
  List.iter
    (fun (_flow, rate, _delay, links) ->
      List.iter
        (fun link_id ->
          Hashtbl.replace sums link_id
            (Option.value ~default:0. (Hashtbl.find_opt sums link_id) +. rate))
        links)
    flows;
  sums

let add_link_lines buf topo ~flow_sum ~macro_sum =
  let pf = Printf.sprintf "%h" in
  List.iter
    (fun (l : Topology.link) ->
      let id = l.Topology.link_id in
      Buffer.add_string buf
        (Printf.sprintf "link %d %s %s %.9g\n" id
           (if Topology.link_is_up topo ~link_id:id then "up" else "down")
           (pf (Option.value ~default:0. (Hashtbl.find_opt flow_sum id)))
           (Option.value ~default:0. (Hashtbl.find_opt macro_sum id))))
    (Topology.links topo)

let flow_tuple (r : Flow_mib.record) =
  ( r.Flow_mib.flow,
    r.Flow_mib.reservation.Types.rate,
    r.Flow_mib.reservation.Types.delay,
    List.map
      (fun (l : Topology.link) -> l.Topology.link_id)
      r.Flow_mib.path.Path_mib.links )

let digest_of_perflow ~topology flows =
  let flows = List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) flows in
  let buf = Buffer.create 4096 in
  add_flow_lines buf flows;
  add_link_lines buf topology ~flow_sum:(flow_rate_sums flows)
    ~macro_sum:(Hashtbl.create 1);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let mib_digest broker =
  let buf = Buffer.create 4096 in
  let flow_tuples = List.map flow_tuple (sorted_flows broker) in
  add_flow_lines buf flow_tuples;
  let macros = sorted_macros broker in
  let agg = Broker.aggregate broker in
  List.iter
    (fun ((s : Aggregate.macro_stats), (info : Path_mib.info)) ->
      Buffer.add_string buf
        (Printf.sprintf "macro %d %s n=%d base=%.9g conting=%.9g\n"
           s.Aggregate.class_id
           (link_ids info.Path_mib.links)
           s.Aggregate.members s.Aggregate.base_rate s.Aggregate.contingency))
    macros;
  List.iter
    (fun (flow, (class_id, path_id)) ->
      let links =
        match Path_mib.find (Broker.path_mib broker) ~path_id with
        | Some info -> link_ids info.Path_mib.links
        | None -> "?"
      in
      Buffer.add_string buf
        (Printf.sprintf "member %d %d %s\n" flow class_id links))
    (Aggregate.owners_alist agg);
  (* Per-link reserved rate, recomputed in canonical order on both sides
     of a comparison: flow contributions summed in flow-id order
     (bit-exact, [%h]), aggregate contributions summed in macro order
     (printed at [%.9g] — the aggregate base rate is itself recomputed on
     restore and may differ in the last ulp). *)
  let topo = Broker.topology broker in
  let flow_sum = flow_rate_sums flow_tuples in
  let macro_sum = Hashtbl.create 32 in
  List.iter
    (fun ((s : Aggregate.macro_stats), (info : Path_mib.info)) ->
      let amount = s.Aggregate.base_rate +. s.Aggregate.contingency in
      List.iter
        (fun (l : Topology.link) ->
          let id = l.Topology.link_id in
          Hashtbl.replace macro_sum id
            (Option.value ~default:0. (Hashtbl.find_opt macro_sum id) +. amount))
        info.Path_mib.links)
    macros;
  add_link_lines buf topo ~flow_sum ~macro_sum;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %s" (kind_label v.kind) v.subject v.detail

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "audit clean: %d flows, %d members, %d macroflows, %d links"
      r.flows r.members r.macroflows r.links
  else
    Fmt.pf ppf "audit found %d violation(s):@,%a"
      (List.length r.violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations
