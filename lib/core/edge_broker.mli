(** Two-tier (hierarchical) bandwidth brokering.

    The paper's conclusion names a distributed/hierarchical broker
    architecture as the way to scale the control plane beyond one central
    BB.  This module implements the quota-delegation design point: an
    {e edge broker} sits next to an ingress router, holds a bandwidth
    {e quota} on one ingress→egress path that it acquired from the central
    broker in chunks, and performs per-flow admission {e locally} using the
    O(1) closed form of Section 3.1 — contacting the central broker only
    when its quota runs out (or to hand idle quota back).

    The effect: per-flow admission no longer transits the central broker,
    whose transaction load drops from one per flow to one per quota chunk,
    at the price of bandwidth fragmentation when quota sits idle at one
    edge while another starves (measurable with {!central_transactions}
    and the hierarchy benchmark).

    Restricted to paths made of rate-based schedulers only: a delay-based
    quota would have to carve up VT-EDF schedulability, which requires the
    global view (this is exactly the trade-off the paper hints at). *)

type t

val create :
  central:Broker.t -> ingress:string -> egress:string -> chunk:float -> (t, Types.reject_reason) result
(** [chunk] is the quota acquisition granularity in bits/s.  Fails with
    [No_route] when the central broker has no path, and with
    [Not_schedulable] when the path contains delay-based hops. *)

val request : t -> Types.request -> (Types.flow_id * Types.reservation, Types.reject_reason) result
(** Local admission against the quota; transparently acquires more quota
    from the central broker when needed (first in [chunk] units, then the
    exact shortfall).  Flow ids are local to this edge broker. *)

val teardown : t -> Types.flow_id -> unit
(** Release a local reservation back into the quota.  Idempotent: an
    unknown (already-released) flow is a no-op. *)

val return_idle_quota : t -> unit
(** Hand whole idle chunks back to the central broker (keeps at most one
    chunk of slack).  Idempotent and re-entrancy-safe: each grant's state
    is settled before its teardown transaction runs, so a central-side
    hook calling back into this edge broker mid-return cannot
    double-count {!central_transactions} or double-release quota; a
    nested call is a no-op. *)

val quota_total : t -> float
(** Bandwidth currently delegated to this edge broker. *)

val quota_used : t -> float
(** Of which reserved by local flows. *)

val local_flows : t -> int

val central_transactions : t -> int
(** Quota acquisitions, refusals, returns and lease renewals — the
    central-broker load this edge broker has generated (compare with one
    transaction per flow under the flat architecture). *)

(** {1 Lease-based delegation}

    Unleased delegation has a robustness hole: an edge broker that
    crashes or partitions strands its delegated quota at the central
    broker forever.  Under a {!lease_manager}, every delegation is a
    renewable lease: the edge heartbeats every [period/4] (one central
    transaction each), each heartbeat pushing the expiry to [3/4 period]
    later; a silent edge lets the lease age out and the central-side
    sweep (every [period/8]) tears the backing grant pseudo-flows down —
    so the quota is provably back in the shared pool within
    [3/4 + 1/8 < 1] lease period of the edge falling silent.  A reconnecting edge
    {!reconnect}s: if it returned before the sweep fired nothing was
    lost; otherwise it re-registers each still-live local flow with the
    central broker (ascending flow id) and surrenders the flows — and all
    idle quota — the shrunken pool can no longer carry.

    All timing runs on the injected {!Broker.time_hooks}; the sweep and
    renewal timers stop when {!stop_manager} is called, so a simulation
    drains. *)

type manager

val lease_manager : central:Broker.t -> time:Broker.time_hooks -> period:float -> manager
(** Start the central-side lease registry and its expiry sweep.  Raises
    [Invalid_argument] when [period <= 0]. *)

val stop_manager : manager -> unit
(** Stop the sweep and all renewal timers (idempotent). *)

val create_leased :
  manager -> ingress:string -> egress:string -> chunk:float -> (t, Types.reject_reason) result
(** Like {!create}, but the edge broker's delegation is governed by the
    manager's lease: auto-renewal starts immediately. *)

val leased : t -> bool

val connected : t -> bool
(** [true] for unleased brokers and for leased brokers currently
    heartbeating. *)

val disconnect : t -> unit
(** Partition (or crash) the edge broker: heartbeats stop, and quota
    acquisitions/returns fail locally instead of reaching the central
    broker.  Local flows keep being served from the (now aging) local
    quota view.  Raises [Invalid_argument] on an unleased broker. *)

(** What {!reconnect} did: which local flows kept their backing, which
    were surrendered, and the quota delta. *)
type reconcile = {
  re_registered : Types.flow_id list;  (** still-live, re-backed locally *)
  surrendered : Types.flow_id list;  (** dropped — no longer fit centrally *)
  quota_before : float;
  quota_after : float;
}

val reconnect : t -> reconcile
(** Rejoin after a partition and reconcile with the central broker (see
    the section doc).  Raises [Invalid_argument] on an unleased
    broker. *)

val leases : manager -> Types.lease list
(** The delegation view for {!Audit.check}: one {!Types.lease} per
    enrolled edge broker, grant flow ids ascending. *)
