module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology

let header = "bbr-snapshot v1"

(* Floats are printed in full hex precision so a round trip is
   bit-exact. *)
let pf = Printf.sprintf "%h"

let save broker =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  (* The primary's id horizon: a restored standby must never hand out an id
     the primary may already have given to an ingress router. *)
  Buffer.add_string buf
    (Printf.sprintf "next %d\n" (Flow_mib.next_id (Broker.flow_mib broker)));
  (* Per-flow reservations, in admission (flow-id) order so that a replay
     reproduces identical bookkeeping. *)
  let records =
    Flow_mib.fold (Broker.flow_mib broker) ~init:[] ~f:(fun acc r -> r :: acc)
    |> List.sort (fun (a : Flow_mib.record) b -> compare a.Flow_mib.flow b.Flow_mib.flow)
  in
  List.iter
    (fun (r : Flow_mib.record) ->
      let p = r.Flow_mib.request.Types.profile in
      let res = r.Flow_mib.reservation in
      Buffer.add_string buf
        (Printf.sprintf "flow %d %s %s %s %s %s %s %s %s %s\n" r.Flow_mib.flow
           (pf p.Traffic.sigma) (pf p.Traffic.rho) (pf p.Traffic.peak)
           (pf p.Traffic.lmax)
           (pf r.Flow_mib.request.Types.dreq)
           r.Flow_mib.request.Types.ingress r.Flow_mib.request.Types.egress
           (pf res.Types.rate) (pf res.Types.delay)))
    records;
  (* Class-based memberships, macroflow by macroflow, member order by flow
     id. *)
  let agg = Broker.aggregate broker in
  List.iter
    (fun (s : Aggregate.macro_stats) ->
      match Aggregate.path_endpoints agg ~class_id:s.Aggregate.class_id
              ~path_id:s.Aggregate.path_id
      with
      | None -> ()
      | Some (ingress, egress) ->
          List.iter
            (fun (flow, (p : Traffic.t)) ->
              Buffer.add_string buf
                (Printf.sprintf "member %d %d %s %s %s %s %s %s\n" flow
                   s.Aggregate.class_id (pf p.Traffic.sigma) (pf p.Traffic.rho)
                   (pf p.Traffic.peak) (pf p.Traffic.lmax) ingress egress))
            (Aggregate.members agg ~class_id:s.Aggregate.class_id
               ~path_id:s.Aggregate.path_id))
    (Aggregate.all_macroflows agg);
  (* Auxiliary aggregate state.  Replaying the member joins above creates
     fresh contingency grants and recomputes edge-delay bounds from
     scratch, while the primary's actual pools may be smaller (grants
     already released) and its bounds decayed.  The [aux] marker tells
     the restore to sweep the join-created contingency and re-establish
     the exact saved grants and bounds; snapshots without it (older
     writers) keep the replay-synthesised — conservative — contingency.
     Paths are named by link-id sequences, the identity that is stable
     across brokers. *)
  Buffer.add_string buf "aux\n";
  let pm = Broker.path_mib broker in
  List.iter
    (fun (s : Aggregate.macro_stats) ->
      match Path_mib.find pm ~path_id:s.Aggregate.path_id with
      | None -> ()
      | Some info ->
          let links =
            String.concat ","
              (List.map
                 (fun (l : Topology.link) -> string_of_int l.Topology.link_id)
                 info.Path_mib.links)
          in
          List.iter
            (fun amount ->
              Buffer.add_string buf
                (Printf.sprintf "grant %d %s %s\n" s.Aggregate.class_id links
                   (pf amount)))
            (Aggregate.grant_amounts agg ~class_id:s.Aggregate.class_id
               ~path_id:s.Aggregate.path_id);
          Buffer.add_string buf
            (Printf.sprintf "bound %d %s %s\n" s.Aggregate.class_id links
               (pf s.Aggregate.edge_bound)))
    (Aggregate.all_macroflows agg);
  Buffer.contents buf

type entry =
  [ `Next of int
  | `Flow of int * Traffic.t * float * string * string * float * float
  | `Member of int * int * Traffic.t * string * string
  | `Aux
  | `Grant of int * int list * float
  | `Bound of int * int list * float ]

let links_of_str s = List.map int_of_string (String.split_on_char ',' s)

let parse_line line : ([ entry | `Blank ], string) result =
  let unparseable () = Error (Printf.sprintf "unparseable snapshot line: %S" line) in
  match String.split_on_char ' ' (String.trim line) with
  | exception _ -> unparseable ()
  | fields -> (
      (* Malformed numeric fields must yield a parse error, not an
         exception escaping [restore]. *)
      match
        match fields with
        | [ "next"; n ] -> `Next (int_of_string n)
        | [ "flow"; id; sigma; rho; peak; lmax; dreq; ingress; egress; rate; delay ] ->
            `Flow
              ( int_of_string id,
                Traffic.make ~sigma:(float_of_string sigma)
                  ~rho:(float_of_string rho) ~peak:(float_of_string peak)
                  ~lmax:(float_of_string lmax),
                float_of_string dreq,
                ingress,
                egress,
                float_of_string rate,
                float_of_string delay )
        | [ "member"; id; class_id; sigma; rho; peak; lmax; ingress; egress ] ->
            `Member
              ( int_of_string id,
                int_of_string class_id,
                Traffic.make ~sigma:(float_of_string sigma)
                  ~rho:(float_of_string rho) ~peak:(float_of_string peak)
                  ~lmax:(float_of_string lmax),
                ingress,
                egress )
        | [ "aux" ] -> `Aux
        | [ "grant"; class_id; links; amount ] ->
            `Grant
              (int_of_string class_id, links_of_str links, float_of_string amount)
        | [ "bound"; class_id; links; bound ] ->
            `Bound
              (int_of_string class_id, links_of_str links, float_of_string bound)
        | [] | [ "" ] -> `Blank
        | _ -> `Malformed
      with
      | exception _ -> unparseable ()
      | `Malformed -> unparseable ()
      | #entry as e -> Ok e
      | `Blank -> Ok `Blank)

let parse text : (entry list, string) result =
  match String.split_on_char '\n' text with
  | first :: rest when String.trim first = header ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | line :: lines -> (
            match parse_line line with
            | Error e -> Error e
            | Ok `Blank -> go acc lines
            | Ok (#entry as e) -> go (e :: acc) lines)
      in
      go [] rest
  | first :: _ -> Error (Printf.sprintf "bad snapshot header: %S" (String.trim first))
  | [] -> Error "empty snapshot"

let replay broker entries =
  let restored = ref 0 in
  let rec go = function
    | [] -> Ok !restored
    | `Next below :: rest ->
        Flow_mib.reserve_ids (Broker.flow_mib broker) ~below;
        go rest
    | `Flow (flow, profile, dreq, ingress, egress, rate, delay) :: rest -> (
        match
          Broker.request_fixed broker ~flow
            { Types.profile; dreq; ingress; egress }
            ~rate ~delay ()
        with
        | Ok _ ->
            incr restored;
            go rest
        | Error reason ->
            Error
              (Fmt.str "re-booking a per-flow reservation failed: %a"
                 Types.pp_reject_reason reason))
    | `Member (flow, class_id, profile, ingress, egress) :: rest -> (
        match
          Broker.request_class broker ~class_id ~flow
            { Types.profile; dreq = infinity; ingress; egress }
        with
        | Ok _ ->
            incr restored;
            go rest
        | Error reason ->
            Error
              (Fmt.str "re-joining a class member failed: %a" Types.pp_reject_reason
                 reason))
    | `Aux :: rest ->
        (* Every member is joined by now; drop the contingency the joins
           synthesised so the grant/bound lines below re-establish the
           primary's exact pools. *)
        let agg = Broker.aggregate broker in
        List.iter
          (fun (s : Aggregate.macro_stats) ->
            Aggregate.sweep_contingency agg ~class_id:s.Aggregate.class_id
              ~path_id:s.Aggregate.path_id)
          (Aggregate.all_macroflows agg);
        go rest
    | `Grant (class_id, links, amount) :: rest -> (
        match Path_mib.find_links (Broker.path_mib broker) ~links with
        | None ->
            Error
              (Printf.sprintf
                 "contingency grant for class %d names an unknown path" class_id)
        | Some info -> (
            match
              Aggregate.restore_grant (Broker.aggregate broker) ~class_id
                ~path_id:info.Path_mib.path_id ~amount
            with
            | Ok () -> go rest
            | Error reason ->
                Error
                  (Fmt.str "re-establishing a contingency grant failed: %a"
                     Types.pp_reject_reason reason)))
    | `Bound (class_id, links, bound) :: rest ->
        (match Path_mib.find_links (Broker.path_mib broker) ~links with
        | Some info ->
            Aggregate.set_edge_bound (Broker.aggregate broker) ~class_id
              ~path_id:info.Path_mib.path_id bound
        | None -> ());
        go rest
  in
  go entries

let restore broker text =
  match parse text with
  | Error e -> Error e
  | Ok entries -> (
      (* Validate the whole replay against a scratch broker over the same
         topology and classes before touching the target.  The scratch
         holds every contingency grant for the duration of the replay
         (Feedback method, no queue-empty signals), which is the strictest
         admission the target can face — so a scratch success guarantees
         the commit below goes through on a fresh target. *)
      let scratch =
        Broker.create
          ~classes:(Aggregate.classes (Broker.aggregate broker))
          ~method_:Aggregate.Feedback ~time:Broker.immediate_time
          (Broker.topology broker)
      in
      match replay scratch entries with
      | Error e -> Error e
      | Ok _ -> replay broker entries)

let flows_in text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         String.starts_with ~prefix:"flow " l
         || String.starts_with ~prefix:"member " l)
  |> List.length
