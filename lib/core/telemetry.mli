(** Derived gauges over the broker's MIB state.

    {!register_broker} installs read-on-snapshot gauges — per-link reserved
    bandwidth and utilization, live flow counts per service model, macroflow
    population and contingency bandwidth — into a metrics registry.  The
    gauges hold the broker, so registering again (e.g. the promoted standby
    after a fail-over) atomically repoints them. *)

val register_tracer : ?registry:Bbr_obs.Metrics.t -> unit -> unit
(** Register [bb_trace_entries], [bb_trace_total] and [bb_trace_evicted]
    gauges over the installed tracer's ring.  [bb_trace_evicted > 0]
    flags the wraparound caveat of {!Bbr_obs.Trace}: ring-derived
    statistics cover only a suffix of the run.  A no-op unless both a
    registry (or [?registry]) and a tracer are installed. *)

val register_broker : ?registry:Bbr_obs.Metrics.t -> Broker.t -> unit
(** Register the gauge families [bb_link_reserved_bps{link,src,dst}],
    [bb_link_utilization{link,src,dst}], [bb_flows{service}],
    [bb_agg_macroflows], [bb_agg_contingency_bps] and
    [bb_agg_class_members{class}] over [broker]'s state.  [registry]
    defaults to the installed one; a no-op when neither exists. *)
