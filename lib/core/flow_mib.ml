type record = {
  flow : Types.flow_id;
  request : Types.request;
  reservation : Types.reservation;
  path : Path_mib.info;
  admitted_at : float;
}

(* Arena layout: one slot per live flow, held in parallel arrays so the
   numeric columns (rate, delay, admission time) are unboxed float arrays
   and a [fold] over a million flows is a cache-friendly linear scan
   instead of a pointer chase through Hashtbl buckets.  Invariants:

   - [flows.(s) = -1] iff slot [s] is free; freed slots go on [free] and
     are reused before [high] grows, so the arena stays dense under
     steady-state churn.
   - [index] maps a live flow id to its slot; flow ids themselves are
     stable for the life of the flow (slots are an internal detail and are
     recycled, ids never are).
   - [high] is the exclusive upper bound of slots ever used; every live
     slot is below it.

   The boxed columns ([requests], [paths]) keep their last value after a
   slot is freed until the slot is reused — Path_mib retains every
   registered path for the broker's lifetime anyway, so this pins no
   additional memory class. *)
type t = {
  mutable flows : int array;  (* slot -> flow id, -1 = free *)
  mutable requests : Types.request array;
  mutable paths : Path_mib.info array;
  mutable rates : float array;
  mutable delays : float array;
  mutable admitted : float array;
  mutable free : int list;  (* recycled slots, LIFO *)
  mutable high : int;  (* slots ever used *)
  index : (Types.flow_id, int) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  {
    flows = [||];
    requests = [||];
    paths = [||];
    rates = [||];
    delays = [||];
    admitted = [||];
    free = [];
    high = 0;
    index = Hashtbl.create 64;
    next_id = 0;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let reserve_ids t ~below = if below > t.next_id then t.next_id <- below

let next_id t = t.next_id

(* Boxed columns need a filler value to allocate an array at all; the
   record being inserted provides one, so no dummy request/path is ever
   manufactured. *)
let grow t record =
  let old = Array.length t.flows in
  let cap = if old = 0 then 64 else 2 * old in
  let ints = Array.make cap (-1) in
  Array.blit t.flows 0 ints 0 old;
  t.flows <- ints;
  let reqs = Array.make cap record.request in
  Array.blit t.requests 0 reqs 0 old;
  t.requests <- reqs;
  let ps = Array.make cap record.path in
  Array.blit t.paths 0 ps 0 old;
  t.paths <- ps;
  let floats src =
    let a = Array.make cap 0. in
    Array.blit src 0 a 0 old;
    a
  in
  t.rates <- floats t.rates;
  t.delays <- floats t.delays;
  t.admitted <- floats t.admitted

let add t record =
  if Hashtbl.mem t.index record.flow then
    invalid_arg (Printf.sprintf "Flow_mib.add: duplicate flow id %d" record.flow);
  if record.flow >= t.next_id then t.next_id <- record.flow + 1;
  let slot =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        if t.high >= Array.length t.flows then grow t record;
        let s = t.high in
        t.high <- t.high + 1;
        s
  in
  t.flows.(slot) <- record.flow;
  t.requests.(slot) <- record.request;
  t.paths.(slot) <- record.path;
  t.rates.(slot) <- record.reservation.Types.rate;
  t.delays.(slot) <- record.reservation.Types.delay;
  t.admitted.(slot) <- record.admitted_at;
  Hashtbl.replace t.index record.flow slot

let record_of_slot t slot =
  {
    flow = t.flows.(slot);
    request = t.requests.(slot);
    reservation = { Types.rate = t.rates.(slot); delay = t.delays.(slot) };
    path = t.paths.(slot);
    admitted_at = t.admitted.(slot);
  }

let find t flow =
  match Hashtbl.find_opt t.index flow with
  | Some slot -> Some (record_of_slot t slot)
  | None -> None

let remove t flow =
  match Hashtbl.find_opt t.index flow with
  | Some slot ->
      let record = record_of_slot t slot in
      t.flows.(slot) <- -1;
      t.free <- slot :: t.free;
      Hashtbl.remove t.index flow;
      Some record
  | None -> None

let count t = Hashtbl.length t.index

let fold t ~init ~f =
  let acc = ref init in
  for slot = 0 to t.high - 1 do
    if t.flows.(slot) >= 0 then acc := f !acc (record_of_slot t slot)
  done;
  !acc

let total_reserved_rate t =
  let acc = ref 0. in
  for slot = 0 to t.high - 1 do
    if t.flows.(slot) >= 0 then acc := !acc +. t.rates.(slot)
  done;
  !acc
