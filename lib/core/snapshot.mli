(** Broker state snapshots for warm-standby failover.

    The paper argues (Section 2, footnote 2) that concentrating the QoS
    control state at the broker lets reliability be solved in the control
    plane alone — e.g. by replicating the broker — without touching core
    routers.  This module provides the mechanism: serialize every active
    reservation to a plain-text snapshot, and rebuild an equivalent broker
    from it by replaying the bookings in admission order.

    Restored state is exact for per-flow reservations (the original
    rate–delay pairs are re-booked verbatim via
    {!Broker.request_fixed}) and deterministic for class-based
    reservations (joins replay in flow-id order, reproducing the same
    aggregate rates).  Auxiliary aggregate state — the live contingency
    grants and edge-delay bounds — is captured exactly in an [aux]
    section: on restore, the contingency the replayed joins synthesised
    is swept and the primary's precise pools are re-established, so a
    standby resumes with bit-identical allocation state (the
    deterministic-resume guarantee the crash-recovery tests assert).
    Older snapshots without the [aux] marker restore as before, keeping
    the conservative join-synthesised contingency.

    Flow ids are preserved: every reservation is re-booked under its
    original id, and the saved id horizon ([next] line) is reserved on
    restore, so ids the failed primary already handed to ingress routers
    stay valid for DRQs and are never re-issued by the standby.

    The snapshot format is a versioned line-oriented text format, one
    reservation per line. *)

val save : Broker.t -> string
(** Serialize all current reservations. *)

val restore : Broker.t -> string -> (int, string) result
(** Replay a snapshot into a broker, which must be freshly created over
    the same topology (with the same service classes).  Returns the number
    of reservations restored, or a description of the first parse or
    re-booking failure.

    Atomic: the full snapshot is parsed and then replayed against a
    scratch broker first; the target broker is touched only once both
    passes succeed, so on [Error] it is exactly as it was. *)

val flows_in : string -> int
(** Number of reservation lines in a snapshot (cheap sanity check). *)
