(** MIB invariant audit and anti-entropy repair.

    The broker's authority rests on its bookkeeping being exact: every
    flow-MIB entry must be backed by reservations on each link of its
    path, every link's reserved rate must equal the sum of the flows and
    macroflows crossing it, and the aggregate owner/member tables must
    agree.  This module cross-checks flow MIB ⇄ path MIB ⇄ per-link
    reserved-rate bookkeeping, reports violations (and counts them on the
    [bb_audit_violations_total{kind}] metric), and can repair the
    reconcilable ones — releasing leaked bandwidth, re-reserving missing
    bandwidth, dropping orphan records.

    It also provides the canonical {!mib_digest} used to prove
    crash-recovery equivalence: two brokers with equal digests hold the
    same reservations on the same paths at the same rates. *)

type kind =
  | Leaked_bandwidth
      (** a link's reserved rate exceeds the sum of the reservations
          crossing it — bandwidth nothing accounts for *)
  | Missing_bandwidth
      (** a link's reserved rate falls short of the reservations that
          claim to cross it *)
  | Orphan_flow
      (** a flow-MIB record with no backing link reservations *)
  | Dangling_membership
      (** the aggregate owner and member tables disagree *)
  | Aggregate_accounting
      (** a macroflow's contingency total does not match its grants, or
          is negative *)
  | Stale_lease
      (** a quota lease expired but its backing grant flows still pin
          bandwidth in the MIBs — the reclaim sweep failed or never ran *)
  | Sla_mismatch
      (** a peering SLA's recorded usage disagrees with the sum of the
          live federation flows crossing it (see {!Bbr_interdomain.Federation.audit}) *)
  | Stranded_segment
      (** a domain broker holds a reservation no live federation flow,
          in-flight transaction or prepared booking accounts for —
          bandwidth a failed compensation left behind *)
  | Orphan_prepare
      (** a domain-side prepared booking outlived the prepare TTL with
          no coordinator transaction claiming it (lost BOOKED reply or a
          coordinator crash before the begin record survived); the reap
          sweep should have torn it down *)

val kind_label : kind -> string
(** Metric label value: ["leaked_bandwidth"], ["orphan_flow"], ... *)

type violation = {
  kind : kind;
  subject : string;  (** what is wrong: ["link 3"], ["flow 17"], ... *)
  detail : string;  (** human-readable specifics, amounts included *)
}

type report = {
  violations : violation list;
  flows : int;  (** per-flow records checked *)
  members : int;  (** class memberships checked *)
  macroflows : int;
  links : int;  (** links checked *)
}

val ok : report -> bool
(** No violations. *)

val check : ?eps:float -> ?now:float -> ?leases:Types.lease list -> Broker.t -> report
(** Run every invariant check.  [eps] (default [1e-3] b/s) is the
    absolute tolerance on bandwidth comparisons — far above
    floating-point noise, far below any real leak.  Counts each finding
    on [bb_audit_violations_total{kind}] when metrics are installed.

    [leases] (with [now], the central broker's clock) is the delegated
    quota view (e.g. {!Edge_broker.leases}): the audit knows a live
    lease's grant pseudo-flows are legitimate backing — leased-but-unused
    edge bandwidth is never reported as leaked — and flags any lease past
    its expiry whose grants still pin bandwidth as {!Stale_lease}.
    Without [now] no lease check runs. *)

type repair_outcome = {
  found : report;  (** the audit that drove the repair *)
  repaired : int;  (** corrective actions applied *)
  remaining : report;  (** re-audit after repair — empty when all fixed *)
}

val repair : ?eps:float -> ?now:float -> ?leases:Types.lease list -> Broker.t -> repair_outcome
(** Anti-entropy pass: tear down the grant flows of expired leases
    (releasing the pinned bandwidth through the ordinary teardown path),
    drop orphan flow records, reconcile the aggregate membership tables,
    release leaked bandwidth and re-reserve missing bandwidth (when it
    still fits).  Each action counts on [bb_audit_repairs_total{kind}]. *)

val mib_digest : Broker.t -> string
(** Hex digest of the broker's logical reservation state: per-flow
    records (id, rate, delay, path links), class memberships, macroflow
    aggregates, link up/down state and the per-link reserved rate
    {e recomputed in canonical order} (so the digest is independent of
    the floating-point summation order the broker's history happened to
    use).  Two brokers are decision-equivalent replicas iff their digests
    match and {!check} is clean on both. *)

val digest_of_perflow :
  topology:Bbr_vtrs.Topology.t ->
  (Types.flow_id * float * float * int list) list ->
  string
(** {!mib_digest} computed from an explicit per-flow population — each
    entry is [(flow, rate, delay, path link ids)] — instead of a broker's
    MIBs.  Byte-identical to {!mib_digest} on a broker holding exactly
    these flows and no class-based state: the sharded broker's router
    merges its shards' flow records (stitching multi-shard segments back
    into whole paths) and digests them through this function, so
    sharded-vs-single equivalence is a string comparison.  Input order is
    irrelevant (entries are sorted by flow id). *)

val pp_report : report Fmt.t
