(** COPS-style signaling between ingress routers and the broker.

    Under the BB architecture the only control messages in the domain run
    between an ingress router (the PEP, in COPS terms) and the broker (the
    PDP): a request, a decision, an installation report, and a delete
    notice — {e per flow}, regardless of path length, with no refresh
    traffic at all.  This module models that channel with an injectable
    transport delay so the message overhead can be measured and compared
    against hop-by-hop soft-state signaling ({!Bbr_intserv.Rsvp}), which
    costs two messages per hop per set-up plus a perpetual refresh stream.

    Message accounting per admitted flow on a perfect channel:
    REQ + DEC + RPT = 3, plus DRQ = 1 on teardown; a rejected flow costs
    REQ + DEC = 2.

    {2 Reliable operation}

    Created with a {!reliability}, the channel tolerates message loss and
    PDP fail-over: every transaction is retransmitted on a capped
    exponential-backoff timer until resolved, the PDP suppresses duplicate
    requests by replaying its recorded decision (so a lost DEC never
    double-books a flow), and DRQs are acknowledged (DRQ + ACK = 2 on a
    loss-free channel).  After {!set_broker} repoints the PEP at a promoted
    standby, in-flight transactions drain to the new PDP through the same
    retransmission path; transactions decided by the dead broker whose DEC
    was lost are decided afresh by the standby (at-least-once semantics
    across a crash). *)

type t

type reliability

val reliability :
  ?timeout:float ->
  ?backoff:float ->
  ?max_timeout:float ->
  ?jitter:(unit -> float) ->
  ?busy_retries:int ->
  loss:(unit -> bool) ->
  unit ->
  reliability
(** [loss] is sampled once per message leg; [true] drops that copy (see
    {!Bbr_netsim.Fault.drop} for a seeded Bernoulli process).  [timeout]
    (default 0.05 s) is the initial retransmission timeout, multiplied by
    [backoff] (default 2) per retry and capped at [max_timeout] (default
    1 s).  Retries are unbounded: with any loss rate below 1 every
    transaction eventually resolves.

    [jitter], sampled once per scheduled timer, must return a value in
    [\[0, 1)]; every retransmission and busy-backoff delay [d] becomes
    [d * (1 + jitter ())] (see {!Bbr_util.Prng.float} for a seeded
    source).  Without it timers are exact — and the PEP population
    re-sends in lockstep after a broker failover, the synchronized retry
    storm the jitter exists to break up.

    [busy_retries] (default 5) bounds how many consecutive
    [Server_busy] decisions a transaction absorbs by backing off and
    retrying before giving up and delivering the error. *)

type pdp = Types.request -> ((Types.flow_id * Types.reservation, Types.reject_reason) result -> unit) -> unit
(** An asynchronous decision point for per-flow requests: called at the
    broker side with the request and a continuation that must eventually
    be applied to the decision, exactly once.  {!Overload.submit} has this
    shape. *)

val create :
  Broker.t ->
  ?latency:float ->
  ?reliability:reliability ->
  ?pdp:pdp ->
  defer:(float -> (unit -> unit) -> unit) ->
  unit ->
  t
(** [defer delay action] delivers a message: it must run [action] after
    [delay] (e.g. [Engine.schedule_after]).  [latency] is the one-way
    PEP↔PDP delay (default 0.005 s).  Without [reliability] the channel is
    the base model: loss-free, no acknowledgements, no timers.

    [pdp], when given, replaces the direct [Broker.request] call for
    per-flow REQs — this is how the {!Overload} admission pipeline is
    placed in front of the broker.  While a transaction's decision sits in
    the asynchronous pipeline, duplicate REQ copies are swallowed (counted
    in {!duplicates}) instead of enqueuing the same work twice. *)

val set_broker : t -> Broker.t -> unit
(** Repoint the PEP at a new PDP (a promoted warm standby).  In-flight
    reliable transactions retransmit to it automatically.  When the dead
    broker's requests were fronted by an {!Overload} pipeline, install the
    standby's pipeline with {!set_pdp} as well. *)

val set_pdp : t -> pdp -> unit
(** Install (or replace) the asynchronous per-flow decision point. *)

val clear_pdp : t -> unit
(** Back to deciding per-flow REQs with a direct [Broker.request] call. *)

val set_pdp_up : t -> bool -> unit
(** Model a broker crash: while down, the PDP consumes incoming messages
    without reacting.  Reliable PEPs keep retransmitting; on the base
    channel the transaction is simply lost. *)

val request :
  t ->
  Types.request ->
  on_decision:((Types.flow_id * Types.reservation, Types.reject_reason) result -> unit) ->
  unit
(** Per-flow service request: REQ travels to the broker, the decision is
    made there (directly, or through the installed {!pdp} pipeline), DEC
    travels back; on an admit the PEP configures its edge conditioner and
    sends the RPT report.  [on_decision] fires exactly once, when the
    transaction resolves.

    On a reliable channel a [Server_busy { retry_after }] decision does
    not resolve the transaction: the PEP silences its retransmission
    timers, waits the jittered [retry_after] (never less than the base
    retransmission timeout), and re-submits the REQ as a fresh decision —
    up to [busy_retries] times, after which the busy error is
    delivered.  On the base channel the busy decision is delivered like
    any other rejection. *)

val request_class :
  t ->
  ?class_id:int ->
  Types.request ->
  on_decision:((Types.flow_id * Aggregate.class_def, Types.reject_reason) result -> unit) ->
  unit
(** Class-based variant. *)

val teardown : t -> Types.flow_id -> unit
(** DRQ: the PEP tells the broker the per-flow reservation is gone.
    Acknowledged and retransmitted on a reliable channel. *)

val teardown_class : t -> Types.flow_id -> unit

val messages : t -> int
(** Total signaling messages put on the wire so far, including lost
    copies, retransmissions and acknowledgements. *)

val pending : t -> int
(** Requests in flight (REQ sent, no DEC delivered yet).  On a reliable
    channel with a live (or eventually promoted) PDP this always drains
    to 0. *)

val retransmissions : t -> int
(** REQ/DRQ copies beyond the first per transaction. *)

val duplicates : t -> int
(** Duplicate REQ/DRQ copies the PDP answered from its transaction
    memory instead of re-deciding, or swallowed while the decision was
    still in the asynchronous pipeline. *)

val busy_backoffs : t -> int
(** [Server_busy] decisions honored with a backoff-and-resubmit instead
    of being delivered. *)
