module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

module Metrics = Bbr_obs.Metrics

type grant = { central_flow : Types.flow_id; amount : float }

type t = {
  central : Broker.t;
  ingress : string;
  egress : string;
  chunk : float;
  hops : int;
  d_tot : float;
  mutable grants : grant list;
  mutable quota : float;
  mutable used : float;
  flows : (Types.flow_id, float) Hashtbl.t;  (* local flow -> rate *)
  mutable next_id : int;
  mutable transactions : int;
  mutable returning : bool;  (* a quota return is in flight *)
  mutable lease : lease option;
}

and lease = {
  edge : t;
  mgr : manager;
  mutable expires_at : float;  (* central clock *)
  mutable connected : bool;  (* the edge is heartbeating *)
  mutable reclaimed : bool;  (* central tore the grants down after expiry *)
}

and manager = {
  m_central : Broker.t;
  m_time : Broker.time_hooks;
  period : float;
  mutable members : lease list;
  mutable m_stopped : bool;
}

(* Quota is acquired as a constant-bit-rate pseudo-flow: its reserved rate
   equals its sustained (= peak) rate for any loose delay requirement. *)
let quota_request t amount =
  {
    Types.profile =
      Traffic.make ~sigma:Topology.mtu_bits ~rho:amount ~peak:amount
        ~lmax:Topology.mtu_bits;
    dreq = 1e9;
    ingress = t.ingress;
    egress = t.egress;
  }

let create ~central ~ingress ~egress ~chunk =
  if chunk <= 0. then invalid_arg "Edge_broker.create: chunk must be positive";
  let probe =
    {
      Types.profile =
        Traffic.make ~sigma:Topology.mtu_bits ~rho:1. ~peak:1. ~lmax:Topology.mtu_bits;
      dreq = 1e9;
      ingress;
      egress;
    }
  in
  match Broker.route_of central probe with
  | None -> Error Types.No_route
  | Some info ->
      if info.Path_mib.delay_hops > 0 then Error Types.Not_schedulable
      else
        Ok
          {
            central;
            ingress;
            egress;
            chunk;
            hops = info.Path_mib.hops;
            d_tot = info.Path_mib.d_tot;
            grants = [];
            quota = 0.;
            used = 0.;
            flows = Hashtbl.create 32;
            next_id = 0;
            transactions = 0;
            returning = false;
            lease = None;
          }

let available t = t.quota -. t.used

let holder t = t.ingress ^ "->" ^ t.egress

(* A partitioned leased edge cannot reach the central broker: quota
   acquisitions and returns fail locally instead of pretending the
   exchange happened. *)
let offline t = match t.lease with Some l -> not l.connected | None -> false

(* Every exchange with the central broker funnels through here, so the
   transaction tally and the [bb_edge_transactions_total] counter cannot
   drift apart. *)
let central_transaction t f =
  t.transactions <- t.transactions + 1;
  Obs_log.count "bb_edge_transactions_total";
  f t.central

(* Acquire at least [shortfall] more quota: chunk-sized first, then the
   exact remainder if the chunk is refused. *)
let rec acquire_loop t shortfall =
  if shortfall <= 0. then true
  else if offline t then false
  else begin
    let ask = Float.max t.chunk shortfall in
    match central_transaction t (fun c -> Broker.request c (quota_request t ask)) with
    | Ok (central_flow, res) ->
        t.grants <- { central_flow; amount = res.Types.rate } :: t.grants;
        t.quota <- t.quota +. res.Types.rate;
        acquire_loop t (shortfall -. res.Types.rate)
    | Error _ ->
        if ask > shortfall +. 1e-9 then begin
          (* The full chunk did not fit; retry with the exact shortfall. *)
          match
            central_transaction t (fun c ->
                Broker.request c (quota_request t shortfall))
          with
          | Ok (central_flow, res) ->
              t.grants <- { central_flow; amount = res.Types.rate } :: t.grants;
              t.quota <- t.quota +. res.Types.rate;
              true
          | Error _ -> false
        end
        else false
  end

(* A refill is one unit of work against the central broker: batch it so
   a multi-transaction refill group-commits as one journal boundary. *)
let acquire t shortfall =
  if shortfall <= 0. then true
  else Broker.batched t.central (fun () -> acquire_loop t shortfall)

let request t (req : Types.request) =
  let p = req.Types.profile in
  let outcome =
    match
      Delay.min_rate_rate_based p ~hops:t.hops ~d_tot:t.d_tot ~dreq:req.Types.dreq
    with
    | None -> Error Types.Delay_unachievable
    | Some rmin ->
        if Fp.gt rmin p.Traffic.peak then Error Types.Delay_unachievable
        else begin
          let rate = Float.max p.Traffic.rho rmin in
          let ok =
            Fp.leq rate (available t) || acquire t (rate -. available t)
          in
          if not ok then Error Types.Insufficient_bandwidth
          else begin
            let flow = t.next_id in
            t.next_id <- t.next_id + 1;
            t.used <- t.used +. rate;
            Hashtbl.replace t.flows flow rate;
            Ok (flow, { Types.rate; delay = 0. })
          end
        end
  in
  Obs_log.decision ~service:"edge" ~at:(Broker.now t.central) req
    (Result.map (fun (flow, (res : Types.reservation)) -> (flow, res.Types.rate))
       outcome);
  outcome

(* Idempotent, matching {!Broker.teardown}: a retransmitted or stale DRQ
   for an unknown flow is a no-op. *)
let teardown t flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some rate ->
      Hashtbl.remove t.flows flow;
      Obs_log.count "bb_teardowns_total" ~labels:[ ("service", "edge") ];
      t.used <- Float.max 0. (t.used -. rate)

(* Idempotent and re-entrancy-safe.  The grant is popped and the quota
   adjusted BEFORE the teardown transaction runs: a central broker with a
   mutation hook (journal, failover) can call back into this edge broker
   mid-teardown, and under the old order that re-entrant call saw the
   grant still listed and tore it down a second time — double-counting
   [central_transactions] and double-decrementing the quota.  The
   [returning] guard additionally makes any such nested call a no-op. *)
let return_idle_quota t =
  if not (t.returning || offline t) then begin
    t.returning <- true;
    let rec give_back () =
      match t.grants with
      | grant :: rest when Fp.geq (available t -. grant.amount) t.chunk ->
          t.grants <- rest;
          t.quota <- t.quota -. grant.amount;
          central_transaction t (fun c -> Broker.teardown c grant.central_flow);
          give_back ()
      | _ -> ()
    in
    Fun.protect ~finally:(fun () -> t.returning <- false) give_back
  end

let quota_total t = t.quota

let quota_used t = t.used

let local_flows t = Hashtbl.length t.flows

let central_transactions t = t.transactions

(* ------------------------------------------------------------------ *)
(* Lease-based delegation: quota held by an edge broker is only valid
   while the edge keeps renewing its lease.  A silent edge (crashed or
   partitioned) loses the lease at expiry: the central-side sweep tears
   the backing grant pseudo-flows down, returning the bandwidth to the
   shared pool.  The edge's own view of its quota is then stale — which
   is fine, because being silent it cannot spend it centrally — and is
   reconciled when it comes back ({!reconnect}). *)

let note_lease_gauge m =
  Metrics.set_gauge "bb_lease_active"
    (float_of_int (List.length (List.filter (fun l -> l.connected) m.members)))

let m_now m = m.m_time.Broker.now ()

(* The lease TTL is 3/4 of the nominal period, measured from the last
   heartbeat; heartbeats run every period/4 and the sweep every period/8,
   so a silent edge's quota is provably back in the pool within
   3/4 + 1/8 < 1 lease period of its last renewal. *)
let ttl m = 0.75 *. m.period

(* Central-initiated reclaim: NOT a [central_transaction] — the edge did
   not send anything (it is silent; that is the point). *)
let reclaim m l =
  let e = l.edge in
  let amount = List.fold_left (fun a g -> a +. g.amount) 0. e.grants in
  List.sort (fun a b -> compare a.central_flow b.central_flow) e.grants
  |> List.iter (fun g -> Broker.teardown m.m_central g.central_flow);
  l.reclaimed <- true;
  Metrics.count "bb_lease_reclaims_total";
  Obs_log.event ~at:(m_now m) "bb.lease.expired"
    ~attrs:[ ("holder", holder e); ("reclaimed_bps", Printf.sprintf "%.6g" amount) ]

let rec sweep_loop m =
  if not m.m_stopped then begin
    let now = m_now m in
    List.iter
      (fun l ->
        if (not l.reclaimed) && (not l.connected) && now > l.expires_at then
          reclaim m l)
      m.members;
    m.m_time.Broker.after (m.period /. 8.) (fun () -> sweep_loop m)
  end

(* One renewal timer per lease, alive until the manager stops; it only
   heartbeats while the edge is connected, so a partition silently lets
   the lease age out. *)
let rec renew_loop l =
  let m = l.mgr in
  if not m.m_stopped then begin
    if l.connected && not l.reclaimed then begin
      central_transaction l.edge (fun _ -> ());
      l.expires_at <- m_now m +. ttl m;
      Metrics.count "bb_lease_renewals_total"
    end;
    m.m_time.Broker.after (m.period /. 4.) (fun () -> renew_loop l)
  end

let lease_manager ~central ~time ~period =
  if period <= 0. then invalid_arg "Edge_broker.lease_manager: period must be positive";
  let m = { m_central = central; m_time = time; period; members = []; m_stopped = false } in
  sweep_loop m;
  m

let stop_manager m = m.m_stopped <- true

let create_leased m ~ingress ~egress ~chunk =
  match create ~central:m.m_central ~ingress ~egress ~chunk with
  | Error e -> Error e
  | Ok t ->
      let l =
        {
          edge = t;
          mgr = m;
          expires_at = m_now m +. ttl m;
          connected = true;
          reclaimed = false;
        }
      in
      t.lease <- Some l;
      m.members <- m.members @ [ l ];
      note_lease_gauge m;
      renew_loop l;
      Ok t

let leased t = t.lease <> None

let connected t = match t.lease with Some l -> l.connected | None -> true

let disconnect t =
  match t.lease with
  | None -> invalid_arg "Edge_broker.disconnect: not a leased edge broker"
  | Some l ->
      if l.connected then begin
        l.connected <- false;
        note_lease_gauge l.mgr;
        Obs_log.event ~at:(m_now l.mgr) "bb.lease.disconnected"
          ~attrs:[ ("holder", holder t) ]
      end

type reconcile = {
  re_registered : Types.flow_id list;
  surrendered : Types.flow_id list;
  quota_before : float;
  quota_after : float;
}

let reconnect t =
  match t.lease with
  | None -> invalid_arg "Edge_broker.reconnect: not a leased edge broker"
  | Some l ->
      let m = l.mgr in
      let quota_before = t.quota in
      let live_ids () =
        Hashtbl.fold (fun f _ acc -> f :: acc) t.flows [] |> List.sort compare
      in
      let result =
        if not l.reclaimed then begin
          (* Back before the sweep noticed: the grants are intact, the
             lease just needs a fresh heartbeat — nothing to re-register. *)
          l.connected <- true;
          l.expires_at <- m_now m +. ttl m;
          central_transaction t (fun _ -> ());
          { re_registered = []; surrendered = []; quota_before; quota_after = t.quota }
        end
        else begin
          (* The central broker reclaimed everything at expiry.  The old
             grant list is dead paper: drop the local view, then re-earn
             backing for each still-live local flow, ascending flow id —
             flows the shrunken pool can no longer carry are surrendered.
             Idle quota is NOT re-acquired (that is the surrender). *)
          t.grants <- [];
          t.quota <- 0.;
          t.used <- 0.;
          l.reclaimed <- false;
          l.connected <- true;
          l.expires_at <- m_now m +. ttl m;
          (* The whole re-registration sweep is one batch: each flow still
             decides against the state the previous ones left behind, but
             the journal group-commits the lot at one boundary. *)
          let re_registered, surrendered =
            Broker.batched t.central (fun () ->
                List.partition_map
                  (fun f ->
                    let rate = Hashtbl.find t.flows f in
                    match
                      central_transaction t (fun c ->
                          Broker.request c (quota_request t rate))
                    with
                    | Ok (central_flow, res) ->
                        t.grants <-
                          { central_flow; amount = res.Types.rate } :: t.grants;
                        t.quota <- t.quota +. res.Types.rate;
                        t.used <- t.used +. rate;
                        Either.Left f
                    | Error _ ->
                        Hashtbl.remove t.flows f;
                        Either.Right f)
                  (live_ids ()))
          in
          { re_registered; surrendered; quota_before; quota_after = t.quota }
        end
      in
      note_lease_gauge m;
      Metrics.count "bb_lease_reconciles_total";
      Obs_log.event ~at:(m_now m) "bb.lease.reconciled"
        ~attrs:
          [
            ("holder", holder t);
            ("re_registered", string_of_int (List.length result.re_registered));
            ("surrendered", string_of_int (List.length result.surrendered));
          ];
      result

let leases m =
  List.map
    (fun l ->
      {
        Types.holder = holder l.edge;
        expires_at = l.expires_at;
        granted =
          List.map (fun g -> g.central_flow) l.edge.grants |> List.sort compare;
      })
    m.members
