module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

type grant = { central_flow : Types.flow_id; amount : float }

type t = {
  central : Broker.t;
  ingress : string;
  egress : string;
  chunk : float;
  hops : int;
  d_tot : float;
  mutable grants : grant list;
  mutable quota : float;
  mutable used : float;
  flows : (Types.flow_id, float) Hashtbl.t;  (* local flow -> rate *)
  mutable next_id : int;
  mutable transactions : int;
}

(* Quota is acquired as a constant-bit-rate pseudo-flow: its reserved rate
   equals its sustained (= peak) rate for any loose delay requirement. *)
let quota_request t amount =
  {
    Types.profile =
      Traffic.make ~sigma:Topology.mtu_bits ~rho:amount ~peak:amount
        ~lmax:Topology.mtu_bits;
    dreq = 1e9;
    ingress = t.ingress;
    egress = t.egress;
  }

let create ~central ~ingress ~egress ~chunk =
  if chunk <= 0. then invalid_arg "Edge_broker.create: chunk must be positive";
  let probe =
    {
      Types.profile =
        Traffic.make ~sigma:Topology.mtu_bits ~rho:1. ~peak:1. ~lmax:Topology.mtu_bits;
      dreq = 1e9;
      ingress;
      egress;
    }
  in
  match Broker.route_of central probe with
  | None -> Error Types.No_route
  | Some info ->
      if info.Path_mib.delay_hops > 0 then Error Types.Not_schedulable
      else
        Ok
          {
            central;
            ingress;
            egress;
            chunk;
            hops = info.Path_mib.hops;
            d_tot = info.Path_mib.d_tot;
            grants = [];
            quota = 0.;
            used = 0.;
            flows = Hashtbl.create 32;
            next_id = 0;
            transactions = 0;
          }

let available t = t.quota -. t.used

(* Every exchange with the central broker funnels through here, so the
   transaction tally and the [bb_edge_transactions_total] counter cannot
   drift apart. *)
let central_transaction t f =
  t.transactions <- t.transactions + 1;
  Obs_log.count "bb_edge_transactions_total";
  f t.central

(* Acquire at least [shortfall] more quota: chunk-sized first, then the
   exact remainder if the chunk is refused. *)
let rec acquire t shortfall =
  if shortfall <= 0. then true
  else begin
    let ask = Float.max t.chunk shortfall in
    match central_transaction t (fun c -> Broker.request c (quota_request t ask)) with
    | Ok (central_flow, res) ->
        t.grants <- { central_flow; amount = res.Types.rate } :: t.grants;
        t.quota <- t.quota +. res.Types.rate;
        acquire t (shortfall -. res.Types.rate)
    | Error _ ->
        if ask > shortfall +. 1e-9 then begin
          (* The full chunk did not fit; retry with the exact shortfall. *)
          match
            central_transaction t (fun c ->
                Broker.request c (quota_request t shortfall))
          with
          | Ok (central_flow, res) ->
              t.grants <- { central_flow; amount = res.Types.rate } :: t.grants;
              t.quota <- t.quota +. res.Types.rate;
              true
          | Error _ -> false
        end
        else false
  end

let request t (req : Types.request) =
  let p = req.Types.profile in
  let outcome =
    match
      Delay.min_rate_rate_based p ~hops:t.hops ~d_tot:t.d_tot ~dreq:req.Types.dreq
    with
    | None -> Error Types.Delay_unachievable
    | Some rmin ->
        if Fp.gt rmin p.Traffic.peak then Error Types.Delay_unachievable
        else begin
          let rate = Float.max p.Traffic.rho rmin in
          let ok =
            Fp.leq rate (available t) || acquire t (rate -. available t)
          in
          if not ok then Error Types.Insufficient_bandwidth
          else begin
            let flow = t.next_id in
            t.next_id <- t.next_id + 1;
            t.used <- t.used +. rate;
            Hashtbl.replace t.flows flow rate;
            Ok (flow, { Types.rate; delay = 0. })
          end
        end
  in
  Obs_log.decision ~service:"edge" ~at:(Broker.now t.central) req
    (Result.map (fun (flow, (res : Types.reservation)) -> (flow, res.Types.rate))
       outcome);
  outcome

(* Idempotent, matching {!Broker.teardown}: a retransmitted or stale DRQ
   for an unknown flow is a no-op. *)
let teardown t flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some rate ->
      Hashtbl.remove t.flows flow;
      Obs_log.count "bb_teardowns_total" ~labels:[ ("service", "edge") ];
      t.used <- Float.max 0. (t.used -. rate)

let return_idle_quota t =
  let rec give_back () =
    match t.grants with
    | grant :: rest when Fp.geq (available t -. grant.amount) t.chunk ->
        central_transaction t (fun c -> Broker.teardown c grant.central_flow);
        t.grants <- rest;
        t.quota <- t.quota -. grant.amount;
        give_back ()
    | _ -> ()
  in
  give_back ()

let quota_total t = t.quota

let quota_used t = t.used

let local_flows t = Hashtbl.length t.flows

let central_transactions t = t.transactions
