module Crc32 = Bbr_util.Crc32

(* Records are kept unencoded and serialized only when the log text is
   materialized (group commit: a real WAL writer renders and flushes
   them at durability boundaries, off the commit path).  Payload values
   must therefore be immutable, so deferred encoding sees exactly the
   committed state; the hook costs a cons per record on the commit
   path. *)
type 'a pending = { p_seq : int; p_at : float; p_v : 'a }

type sink = { put : string -> unit; sync : unit -> unit }

type 'a t = {
  header : string;
  encode_payload : 'a -> string;
  fsync_every : int;
  mutable recs : 'a pending list;  (* newest first *)
  mutable records : int;  (* since the last compaction *)
  mutable torn : string option;  (* half-record a crash left behind *)
  mutable seq : int;  (* records ever appended *)
  mutable record_hook : (int -> unit) option;
  mutable group_start : int option;  (* [records] when the open group began *)
  mutable synced_floor : int;  (* records made durable by a group commit *)
  mutable sink : sink option;  (* eager write-through to a storage layer *)
}

let create ?(fsync_every = 1) ~header ~encode_payload () =
  if fsync_every < 1 then invalid_arg "Wal.create: fsync_every must be >= 1";
  {
    header;
    encode_payload;
    fsync_every;
    recs = [];
    records = 0;
    torn = None;
    seq = 0;
    record_hook = None;
    group_start = None;
    synced_floor = 0;
    sink = None;
  }

let set_sink t sink = t.sink <- sink

let records t = t.records

let appended_total t = t.seq

let synced_records t =
  let natural = t.records - (t.records mod t.fsync_every) in
  (* Records appended inside a still-open group await the group's single
     fsync: they are not durable yet, whatever the modulo boundary says. *)
  let natural =
    match t.group_start with Some g -> min natural g | None -> natural
  in
  min t.records (max natural t.synced_floor)

let in_group t = t.group_start <> None

let encode_line ~seq ~at payload =
  let body = Printf.sprintf "%d %h %s" seq at payload in
  Crc32.to_hex (Crc32.string body) ^ " " ^ body

let encode_pending t r = encode_line ~seq:r.p_seq ~at:r.p_at (t.encode_payload r.p_v)

let sink_sync t = match t.sink with None -> () | Some s -> s.sync ()

let group t f =
  match t.group_start with
  | Some _ -> f () (* nested: joins the outer group *)
  | None ->
      t.group_start <- Some t.records;
      let out =
        try f ()
        with exn ->
          (* Aborted group: fall back to the per-record boundaries the
             unbatched writer would have had. *)
          t.group_start <- None;
          raise exn
      in
      t.group_start <- None;
      t.synced_floor <- t.records;
      sink_sync t;
      out

let on_record t f = t.record_hook <- Some f

let append t ~at v =
  let r = { p_seq = t.seq; p_at = at; p_v = v } in
  t.recs <- r :: t.recs;
  t.seq <- t.seq + 1;
  t.records <- t.records + 1;
  (* Write-ahead to the sink before the record hook can observe the
     append: the disk (or its simulation) sees the record no later than
     any side effect keyed on it. *)
  (match t.sink with
  | None -> ()
  | Some s ->
      s.put (encode_pending t r);
      if (not (in_group t)) && t.records mod t.fsync_every = 0 then s.sync ());
  match t.record_hook with None -> () | Some f -> f t.seq

let compact t =
  t.recs <- [];
  t.records <- 0;
  t.torn <- None;
  t.synced_floor <- 0;
  t.group_start <- Option.map (fun _ -> 0) t.group_start

let text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf t.header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (encode_pending t r);
      Buffer.add_char buf '\n')
    (List.rev t.recs);
  (match t.torn with None -> () | Some frag -> Buffer.add_string buf frag);
  Buffer.contents buf

let entries t = List.rev_map (fun r -> (r.p_at, r.p_v)) t.recs

let drop_tail ?(torn = false) t ~records:n =
  let n = min n t.records in
  if n > 0 then begin
    (* [t.recs] is newest first, so the first [n] are the ones lost. *)
    let rec take k acc rest =
      if k = 0 then (acc, rest)
      else
        match rest with
        | [] -> (acc, [])
        | r :: rest -> take (k - 1) (r :: acc) rest
    in
    let dropped_oldest_first, kept = take n [] t.recs in
    t.recs <- kept;
    t.records <- t.records - n;
    if t.synced_floor > t.records then t.synced_floor <- t.records;
    t.torn <-
      (if torn then
         match dropped_oldest_first with
         | oldest :: _ ->
             let line = encode_pending t oldest in
             Some (String.sub line 0 (String.length line / 2))
         | [] -> None
       else None)
  end

let crash_cut t =
  let unsynced = t.records - synced_records t in
  if unsynced > 0 then drop_tail ~torn:true t ~records:unsynced;
  unsynced

(* --------------------------------------------------------------- *)
(* Decoding.  All helpers return options; nothing here may raise.  *)

(* [Some body] iff the line's CRC matches what follows it. *)
let checked_body line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
      let crc_s = String.sub line 0 i in
      let body = String.sub line (i + 1) (String.length line - i - 1) in
      match Crc32.of_hex crc_s with
      | Some crc when crc = Crc32.string body -> Some body
      | _ -> None)

let seq_of_line line =
  match checked_body line with
  | None -> None
  | Some body -> (
      match String.split_on_char ' ' body with
      | seq :: _ -> int_of_string_opt seq
      | [] -> None)

(* [Some (seq, at, v)] iff the line is a complete, CRC-clean record. *)
let decode_line ~decode_payload line =
  match checked_body line with
  | None -> None
  | Some body -> (
      match String.split_on_char ' ' body with
      | seq :: at :: rest -> (
          match (int_of_string_opt seq, float_of_string_opt at) with
          | Some seq, Some at ->
              Option.map (fun v -> (seq, at, v)) (decode_payload rest)
          | _ -> None)
      | _ -> None)

let parse ~header ~decode_payload text =
  match String.split_on_char '\n' text with
  | [] | [ "" ] -> Error "empty journal"
  | first :: rest when String.trim first = header ->
      let entries = ref [] in
      let warning = ref None in
      let expected_seq = ref None in
      List.iteri
        (fun i line ->
          if !warning = None && String.trim line <> "" then
            match decode_line ~decode_payload line with
            | Some (seq, at, v) -> (
                match !expected_seq with
                | Some e when seq <> e ->
                    warning :=
                      Some
                        (Printf.sprintf
                           "journal sequence gap at line %d (record %d, expected %d); \
                            dropping the tail"
                           (i + 2) seq e)
                | _ ->
                    expected_seq := Some (seq + 1);
                    entries := (at, v) :: !entries)
            | None ->
                warning :=
                  Some
                    (Printf.sprintf
                       "torn or corrupt journal record at line %d; dropping the tail"
                       (i + 2)))
        rest;
      Ok (List.rev !entries, !warning)
  | first :: _ -> Error (Printf.sprintf "bad journal header: %S" (String.trim first))
