module Topology = Bbr_vtrs.Topology
module Vtedf = Bbr_vtrs.Vtedf

type time_hooks = { now : unit -> float; after : float -> (unit -> unit) -> unit }

let immediate_time = { now = (fun () -> 0.); after = (fun _ f -> f ()) }

type service = Perflow | Class_based | Fixed

let service_label = function
  | Perflow -> "perflow"
  | Class_based -> "class"
  | Fixed -> "fixed"

type decision_record = {
  service : service;
  request : Types.request;
  flow : Types.flow_id option;
  rate : float;
  rejected : Types.reject_reason option;
  at : float;
}

(* Every state mutation the broker can commit, in replayable form.  This
   is the vocabulary of the write-ahead {!Journal}: applying the same
   mutation sequence to a fresh broker over the same topology reproduces
   the same MIB state.  [Link_failed] is {e physical}: it records only the
   link-state change — the teardowns, evacuations and re-admissions that
   {!fail_link} performs are each journaled as their own records, in
   execution order, so a replay reproduces the reroute exactly without
   re-running the recovery procedure.  [Rate_changed] is informational
   (the rate is a deterministic function of the admissions); replay
   ignores it. *)
type mutation =
  | Admit of { flow : Types.flow_id; request : Types.request; rate : float; delay : float }
  | Admit_segment of {
      flow : Types.flow_id;
      request : Types.request;
      rate : float;
      delay : float;
      links : int list;
    }
  | Admit_class of { flow : Types.flow_id; class_id : int; request : Types.request }
  | Teardown of Types.flow_id
  | Teardown_class of Types.flow_id
  | Queue_emptied of { class_id : int; links : int list }
  | Evacuated of { class_id : int; links : int list }
  | Link_failed of int
  | Link_restored of int
  | Rate_changed of { class_id : int; path_id : int; total_rate : float }

type t = {
  topology : Topology.t;
  policy : Policy.t;
  node_mib : Node_mib.t;
  path_mib : Path_mib.t;
  flow_mib : Flow_mib.t;
  routing : Routing.t;
  aggregate : Aggregate.t;
  time : time_hooks;
  cache : Admission_cache.t option;  (* admission fast path; None = uncached *)
  (* Installed by the journal: wraps the body of {!batched} so all records
     appended by a request batch reach one durability boundary together
     (group commit). *)
  mutable batch_wrap : ((unit -> unit) -> unit) option;
  on_edge_config : flow:Types.flow_id -> Types.reservation -> unit;
  mutable on_decision : (decision_record -> unit) list;
  (* A ref cell (not a mutable field) so the aggregate's [rate_changed]
     closure, built before this record exists, can share it.  The
     mutation value is only constructed inside the [Some] branch at each
     emission site: with no hook installed the hot path costs one load
     and one branch, and allocates nothing. *)
  on_mutation : (mutation -> unit) option ref;
}

let create ?policy ?(classes = []) ?(method_ = Aggregate.Feedback) ?time
    ?(fast_path = true)
    ?(on_edge_config = fun ~flow:_ _ -> ()) ?(on_class_rate = fun ~class_id:_ ~path_id:_ ~total_rate:_ -> ())
    ?on_decision:decision_hook topology =
  let policy = match policy with Some p -> p | None -> Policy.create () in
  let time = Option.value ~default:immediate_time time in
  let node_mib = Node_mib.create topology in
  let path_mib = Path_mib.create topology node_mib in
  let cache =
    if fast_path then Some (Admission_cache.create node_mib path_mib) else None
  in
  let on_mutation = ref None in
  let aggregate =
    Aggregate.create node_mib path_mib ~classes ~method_
      ~hooks:
        {
          Aggregate.now = time.now;
          after = time.after;
          rate_changed =
            (fun ~class_id ~path_id ~total_rate ->
              (match !on_mutation with
              | None -> ()
              | Some f -> f (Rate_changed { class_id; path_id; total_rate }));
              on_class_rate ~class_id ~path_id ~total_rate);
        }
  in
  {
    topology;
    policy;
    node_mib;
    path_mib;
    flow_mib = Flow_mib.create ();
    routing = Routing.create topology path_mib;
    aggregate;
    time;
    cache;
    batch_wrap = None;
    on_edge_config;
    on_decision = Option.to_list decision_hook;
    on_mutation;
  }

let add_decision_hook t f = t.on_decision <- t.on_decision @ [ f ]

let set_mutation_hook t f = t.on_mutation := Some f

let clear_mutation_hook t = t.on_mutation := None

let now t = t.time.now ()

(* Every admission outcome funnels through here: subscriber hooks always
   fire; the obs counters and decision log only when installed. *)
let note_decision t ~service req outcome =
  let at = t.time.now () in
  Obs_log.decision ~service:(service_label service) ~at req outcome;
  match t.on_decision with
  | [] -> ()
  | hooks ->
      let flow, rate, rejected =
        match outcome with
        | Ok (flow, rate) -> (Some flow, rate, None)
        | Error e -> (None, 0., Some e)
      in
      let record = { service; request = req; flow; rate; rejected; at } in
      List.iter (fun f -> f record) hooks

let s_policy = Obs_log.stage_site "policy"

let s_routing = Obs_log.stage_site "routing"

let s_admissibility = Obs_log.stage_site "admissibility"

let s_bookkeeping = Obs_log.stage_site "bookkeeping"

let s_cops_push = Obs_log.stage_site "cops_push"

let stage t site f = Obs_log.stage ~now:t.time.now site f

let route_of t (req : Types.request) =
  Routing.path t.routing ~ingress:req.Types.ingress ~egress:req.Types.egress

(* Shared front half of both admission procedures: policy check, then path
   selection — the first two stages of the Figure-1 control loop. *)
let preamble t req =
  match stage t s_policy (fun () -> Policy.check t.policy req) with
  | Error rule -> Error (Types.Policy_denied rule)
  | Ok () -> (
      match stage t s_routing (fun () -> route_of t req) with
      | None -> Error Types.No_route
      | Some path -> Ok path)

let book_per_flow t ?flow (req : Types.request) path (res : Types.reservation) =
  let flow =
    match flow with
    | Some f ->
        Flow_mib.reserve_ids t.flow_mib ~below:(f + 1);
        f
    | None -> Flow_mib.fresh_id t.flow_mib
  in
  List.iter
    (fun (l : Topology.link) ->
      let link_id = l.Topology.link_id in
      Node_mib.reserve t.node_mib ~link_id res.Types.rate;
      match (Node_mib.entry t.node_mib ~link_id).Node_mib.edf with
      | Some edf ->
          Vtedf.add edf ~rate:res.Types.rate ~delay:res.Types.delay
            ~lmax:req.Types.profile.Bbr_vtrs.Traffic.lmax
      | None -> ())
    path.Path_mib.links;
  Flow_mib.add t.flow_mib
    {
      Flow_mib.flow;
      request = req;
      reservation = res;
      path;
      admitted_at = t.time.now ();
    };
  flow

(* The COPS leg: push the reservation to the ingress edge conditioner. *)
let push_edge t ~flow res =
  stage t s_cops_push (fun () -> t.on_edge_config ~flow res)

(* The admissibility stage, cached or from scratch.  The conservative test
   never walks the merged table, so it only needs the (cheaper)
   [path_state] level of the cache. *)
let admissibility t path ~admission (req : Types.request) =
  let dreq = req.Types.dreq in
  match (admission, t.cache) with
  | `Exact, Some cache ->
      let ps, bps = Admission_cache.query cache path in
      Admission.admit ~bps ps req.Types.profile ~dreq
  | `Exact, None ->
      Admission.admit (Admission.path_state t.node_mib t.path_mib path)
        req.Types.profile ~dreq
  | `Conservative, Some cache ->
      Admission.conservative (Admission_cache.path_state cache path)
        req.Types.profile ~dreq
  | `Conservative, None ->
      Admission.conservative (Admission.path_state t.node_mib t.path_mib path)
        req.Types.profile ~dreq

let request_full t ?flow ?(admission = `Exact) req =
  Obs_log.span ~now:t.time.now "bb.request"
    ~attrs:[ ("ingress", req.Types.ingress); ("egress", req.Types.egress) ]
  @@ fun _sp ->
  let outcome =
    match preamble t req with
    | Error e -> Error e
    | Ok path -> (
        match
          stage t s_admissibility (fun () -> admissibility t path ~admission req)
        with
        | Error e -> Error e
        | Ok res ->
            let flow =
              stage t s_bookkeeping (fun () -> book_per_flow t ?flow req path res)
            in
            (* Journal before the decision leaves the broker (WAL). *)
            (match !(t.on_mutation) with
            | None -> ()
            | Some f ->
                f
                  (Admit
                     { flow; request = req; rate = res.Types.rate; delay = res.Types.delay }));
            push_edge t ~flow res;
            Ok (flow, res))
  in
  note_decision t ~service:Perflow req
    (Result.map (fun (flow, (res : Types.reservation)) -> (flow, res.Types.rate)) outcome);
  outcome

let request t ?flow ?admission req = request_full t ?flow ?admission req

(* Book an already-decided reservation on an explicit set of links — the
   commit leg of the sharded broker's two-phase multi-shard admission, and
   the replay form of [Admit_segment] records.  No policy, routing or
   admissibility runs here: the coordinator (or the journal it wrote) owns
   the decision; this books exactly [links], which need not be connected
   (a path alternating between shards leaves each owner a non-contiguous
   segment).  The edge push and the decision log stay with the
   coordinator, which sees the whole flow. *)
let book_segment t ~flow ~request:(req : Types.request) ~links ~rate ~delay =
  let link_list = List.map (Topology.link_by_id t.topology) links in
  let seg = Path_mib.register_segment t.path_mib link_list in
  Flow_mib.reserve_ids t.flow_mib ~below:(flow + 1);
  List.iter
    (fun (l : Topology.link) ->
      let link_id = l.Topology.link_id in
      Node_mib.reserve t.node_mib ~link_id rate;
      match (Node_mib.entry t.node_mib ~link_id).Node_mib.edf with
      | Some edf ->
          Vtedf.add edf ~rate ~delay ~lmax:req.Types.profile.Bbr_vtrs.Traffic.lmax
      | None -> ())
    link_list;
  Flow_mib.add t.flow_mib
    {
      Flow_mib.flow;
      request = req;
      reservation = { Types.rate; delay };
      path = seg;
      admitted_at = t.time.now ();
    };
  match !(t.on_mutation) with
  | None -> ()
  | Some f -> f (Admit_segment { flow; request = req; rate; delay; links })

let set_batch_hook t f = t.batch_wrap <- Some f

(* Run [f] as one batch: journal records it appends reach a single
   durability boundary together (group commit), and consecutive requests
   inside it hit the still-warm admission cache.  Reentrant — a batch
   within a batch joins the outer one (the wrap installed by the journal is
   itself reentrant). *)
let batched t f =
  match t.batch_wrap with
  | None -> f ()
  | Some wrap ->
      let out = ref None in
      wrap (fun () -> out := Some (f ()));
      (* The wrap always runs its body exactly once. *)
      Option.get !out

let request_batch t ?admission reqs =
  let n = List.length reqs in
  if n > 1 && Obs_log.active () then begin
    Obs_log.count "bb_admission_batches_total";
    Obs_log.count "bb_admission_batch_requests_total" ~by:(float_of_int n)
  end;
  (* One span per batch; the member requests' bb.request spans (and the
     journal group commit) nest under it. *)
  Obs_log.span ~now:t.time.now "bb.batch" ~attrs:[ ("count", string_of_int n) ]
  @@ fun _sp ->
  batched t (fun () -> List.map (fun req -> request_full t ?admission req) reqs)

let request_fixed t ?flow req ~rate ?delay () =
  let outcome =
    match preamble t req with
    | Error e -> Error e
    | Ok path ->
        let p = req.Types.profile in
        if not (Bbr_vtrs.Traffic.conforms p ~rate) then Error Types.Delay_unachievable
        else begin
          let admissible =
            stage t s_admissibility (fun () ->
                let ps =
                  match t.cache with
                  | Some cache -> Admission_cache.path_state cache path
                  | None -> Admission.path_state t.node_mib t.path_mib path
                in
                let delay =
                  match (delay, ps.Admission.delay_hops) with
                  | Some d, _ -> d
                  | None, 0 -> 0.
                  | None, _ ->
                      invalid_arg
                        "Broker.request_fixed: delay required on a mixed path"
                in
                if
                  not
                    (Admission.schedulable ps ~rate ~delay
                       ~lmax:p.Bbr_vtrs.Traffic.lmax)
                then
                  if Bbr_util.Fp.gt rate ps.Admission.cres then
                    Error Types.Insufficient_bandwidth
                  else Error Types.Not_schedulable
                else Ok delay)
          in
          match admissible with
          | Error e -> Error e
          | Ok delay ->
              let res = { Types.rate; delay } in
              let flow =
                stage t s_bookkeeping (fun () -> book_per_flow t ?flow req path res)
              in
              (match !(t.on_mutation) with
              | None -> ()
              | Some f -> f (Admit { flow; request = req; rate; delay }));
              push_edge t ~flow res;
              Ok flow
        end
  in
  note_decision t ~service:Fixed req
    (Result.map (fun flow -> (flow, rate)) outcome);
  outcome

(* Idempotent: a teardown for an unknown (already-released) flow is a
   no-op, so retransmitted DRQs and departures of flows dropped by a link
   failure are harmless. *)
let teardown t flow =
  match Flow_mib.remove t.flow_mib flow with
  | None -> ()
  | Some record ->
      (match !(t.on_mutation) with
      | None -> ()
      | Some f -> f (Teardown flow));
      Obs_log.count "bb_teardowns_total" ~labels:[ ("service", "perflow") ];
      let res = record.Flow_mib.reservation in
      List.iter
        (fun (l : Topology.link) ->
          let link_id = l.Topology.link_id in
          (match (Node_mib.entry t.node_mib ~link_id).Node_mib.edf with
          | Some edf ->
              Vtedf.remove edf ~rate:res.Types.rate ~delay:res.Types.delay
                ~lmax:record.Flow_mib.request.Types.profile.Bbr_vtrs.Traffic.lmax
          | None -> ());
          Node_mib.release t.node_mib ~link_id res.Types.rate)
        record.Flow_mib.path.Path_mib.links

let request_class t ?class_id ?flow req =
  let outcome =
    match preamble t req with
    | Error e -> Error e
    | Ok path -> (
        let cls =
          match class_id with
          | Some id -> (
              match Aggregate.find_class t.aggregate ~class_id:id with
              | Some c when c.Aggregate.dreq <= req.Types.dreq +. 1e-12 -> Ok c
              | Some _ -> Error Types.Delay_unachievable
              | None -> Error (Types.Policy_denied "unknown service class"))
          | None -> (
              match Aggregate.best_class t.aggregate ~dreq:req.Types.dreq with
              | Some c -> Ok c
              | None -> Error Types.Delay_unachievable)
        in
        match cls with
        | Error e -> Error e
        | Ok cls -> (
            let flow =
              match flow with
              | Some f ->
                  Flow_mib.reserve_ids t.flow_mib ~below:(f + 1);
                  f
              | None -> Flow_mib.fresh_id t.flow_mib
            in
            (* For class-based service the admissibility test and the
               bookkeeping are one operation (the macroflow join of
               Section 4.3); the subsequent rate push to the edge rides
               the aggregate's [rate_changed] hook. *)
            match
              stage t s_admissibility (fun () ->
                  Aggregate.join t.aggregate ~class_id:cls.Aggregate.class_id ~path
                    ~flow req.Types.profile)
            with
            | Ok () ->
                (match !(t.on_mutation) with
                | None -> ()
                | Some f ->
                    f (Admit_class { flow; class_id = cls.Aggregate.class_id; request = req }));
                Ok (flow, cls)
            | Error e -> Error e))
  in
  note_decision t ~service:Class_based req
    (Result.map (fun (flow, _) -> (flow, 0.)) outcome);
  outcome

(* Idempotent for the same reason as {!teardown}. *)
let teardown_class t flow =
  if Aggregate.owner t.aggregate ~flow <> None then begin
    (match !(t.on_mutation) with
    | None -> ()
    | Some f -> f (Teardown_class flow));
    Obs_log.count "bb_teardowns_total" ~labels:[ ("service", "class") ];
    Aggregate.leave t.aggregate ~flow
  end

let link_ids_of (info : Path_mib.info) =
  List.map (fun (l : Topology.link) -> l.Topology.link_id) info.Path_mib.links

let queue_empty t ~class_id ~path_id =
  (match !(t.on_mutation) with
  | None -> ()
  | Some f ->
      (* Journal only signals that land on a live macroflow; the path is
         identified by its link ids, which (unlike path ids) survive a
         replay onto a differently grown path MIB. *)
      if Aggregate.macroflow_stats t.aggregate ~class_id ~path_id <> None then
        match Path_mib.find t.path_mib ~path_id with
        | Some info -> f (Queue_emptied { class_id; links = link_ids_of info })
        | None -> ());
  Aggregate.queue_empty t.aggregate ~class_id ~path_id

(* ------------------------------------------------------------------ *)
(* Link failure handling (restore-or-preempt).                        *)

type link_recovery = {
  link_id : int;
  perflow_rerouted : Types.flow_id list;
  perflow_dropped : Types.flow_id list;
  class_rerouted : Types.flow_id list;
  class_dropped : Types.flow_id list;
}

let recovered_count r = List.length r.perflow_rerouted + List.length r.class_rerouted

let dropped_count r = List.length r.perflow_dropped + List.length r.class_dropped

(* The physical half of a link transition: journal the record, flip the
   topology state, drop the admission cache.  [fail_link] / [restore_link]
   run this and then their recovery cascade; the sharded broker's router
   calls it directly on each shard so the cascade (which spans shards) can
   run once, centrally. *)
let set_link_admin t ~link_id ~up =
  ignore (Topology.link_by_id t.topology link_id);
  (match !(t.on_mutation) with
  | None -> ()
  | Some f -> f (if up then Link_restored link_id else Link_failed link_id));
  Topology.set_link_state t.topology ~link_id ~up;
  Option.iter Admission_cache.invalidate_all t.cache

let fail_link t ~link_id =
  set_link_admin t ~link_id ~up:false;
  let on_dead_link links =
    List.exists (fun (l : Topology.link) -> l.Topology.link_id = link_id) links
  in
  (* Victims, released before any re-admission so survivors compete for the
     full remaining capacity.  Per-flow records are captured first: teardown
     removes them from the MIB. *)
  let perflow_victims =
    Flow_mib.fold t.flow_mib ~init:[] ~f:(fun acc r ->
        if on_dead_link r.Flow_mib.path.Path_mib.links then r :: acc else acc)
    |> List.sort (fun (a : Flow_mib.record) b -> compare a.Flow_mib.flow b.Flow_mib.flow)
  in
  List.iter (fun (r : Flow_mib.record) -> teardown t r.Flow_mib.flow) perflow_victims;
  let class_victims =
    List.filter_map
      (fun (s : Aggregate.macro_stats) ->
        match Path_mib.find t.path_mib ~path_id:s.Aggregate.path_id with
        | Some info when on_dead_link info.Path_mib.links ->
            let endpoints =
              Aggregate.path_endpoints t.aggregate ~class_id:s.Aggregate.class_id
                ~path_id:s.Aggregate.path_id
            in
            (match !(t.on_mutation) with
            | None -> ()
            | Some f ->
                f
                  (Evacuated
                     { class_id = s.Aggregate.class_id; links = link_ids_of info }));
            Some
              ( s.Aggregate.class_id,
                endpoints,
                Aggregate.evacuate t.aggregate ~class_id:s.Aggregate.class_id
                  ~path_id:s.Aggregate.path_id )
        | _ -> None)
      (Aggregate.all_macroflows t.aggregate)
  in
  (* Re-admission, flow-id order within each population: the flow keeps its
     id across the reroute, so ingress routers and in-flight DRQs stay
     valid; the edge is reconfigured through the usual hooks. *)
  let perflow_rerouted, perflow_dropped =
    List.partition_map
      (fun (r : Flow_mib.record) ->
        match request_full t ~flow:r.Flow_mib.flow r.Flow_mib.request with
        | Ok _ -> Either.Left r.Flow_mib.flow
        | Error _ -> Either.Right r.Flow_mib.flow)
      perflow_victims
  in
  let class_rerouted, class_dropped =
    List.concat_map
      (fun (class_id, endpoints, members) ->
        List.map
          (fun (flow, profile) ->
            let rejoined =
              match endpoints with
              | None -> false
              | Some (ingress, egress) -> (
                  match Routing.path t.routing ~ingress ~egress with
                  | None -> false
                  | Some path -> (
                      match
                        Aggregate.join t.aggregate ~class_id ~path ~flow profile
                      with
                      | Ok () ->
                          (* This join bypasses {!request_class}, so it
                             must journal its own record.  The class is
                             pinned; [dreq = infinity] replays through
                             any class bound. *)
                          (match !(t.on_mutation) with
                          | None -> ()
                          | Some f ->
                              f
                                (Admit_class
                                   {
                                     flow;
                                     class_id;
                                     request =
                                       { Types.profile; dreq = infinity; ingress; egress };
                                   }));
                          true
                      | Error _ -> false))
            in
            if rejoined then Either.Left flow else Either.Right flow)
          members)
      class_victims
    |> List.partition_map Fun.id
  in
  let recovery =
    { link_id; perflow_rerouted; perflow_dropped; class_rerouted; class_dropped }
  in
  if Obs_log.active () then begin
    let at = t.time.now () in
    Obs_log.count "bb_link_failures_total";
    Obs_log.count "bb_flows_rerouted_total"
      ~by:(float_of_int (recovered_count recovery));
    Obs_log.count "bb_flows_dropped_total"
      ~by:(float_of_int (dropped_count recovery));
    Obs_log.event ~at "bb.link.failed"
      ~attrs:
        [
          ("link", string_of_int link_id);
          ("rerouted", string_of_int (recovered_count recovery));
          ("dropped", string_of_int (dropped_count recovery));
        ]
  end;
  recovery

let restore_link t ~link_id =
  set_link_admin t ~link_id ~up:true;
  if Obs_log.active () then
    Obs_log.event ~at:(t.time.now ()) "bb.link.restored"
      ~attrs:[ ("link", string_of_int link_id) ]

let topology t = t.topology

let policy t = t.policy

let node_mib t = t.node_mib

let path_mib t = t.path_mib

let flow_mib t = t.flow_mib

let routing t = t.routing

let aggregate t = t.aggregate

let invalidate_cache t = Option.iter Admission_cache.invalidate_all t.cache

let fast_path_stats t = Option.map Admission_cache.stats t.cache

let per_flow_count t = Flow_mib.count t.flow_mib

let class_flow_count t = Aggregate.member_count t.aggregate
