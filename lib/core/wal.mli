(** Generic write-ahead-log machinery: the CRC'd, group-committing,
    crash-modelled record writer PR 3 built for the broker journal,
    factored out so other control-plane components (the inter-domain
    federation coordinator, for one) can journal their own record kinds
    through the exact same durability model.

    A log is parameterized by its header line and a payload codec; the
    framing is identical to {!Journal}:

    {v <crc32-hex> <seq> <at> <payload> v}

    [crc32] covers everything after it; [seq] is a monotonic record
    number (a gap means lost records); [at] is the writer's clock in
    lossless [%h] notation; [payload] is whatever [encode_payload]
    produced (it must not contain newlines).

    {b Durability model} — exactly {!Journal}'s: the in-memory writer
    mirrors a file fsynced every [fsync_every] records, group commits
    hold records back until the group's single boundary, and
    {!crash_cut} loses everything past the last boundary, leaving the
    first lost record as a torn half-record.  {!parse} tolerates a torn
    or corrupt tail by truncating at the first bad record and warning —
    it never raises. *)

type 'a t

type sink = { put : string -> unit; sync : unit -> unit }
(** A write-through target for encoded record lines (the storage layer).
    [put] receives each record line (no newline) at append time — before
    the {!on_record} hook fires, preserving write-ahead ordering — and
    [sync] is called at every durability boundary ([fsync_every] when no
    group is open; the end of the outermost {!group} otherwise). *)

val create :
  ?fsync_every:int ->
  header:string ->
  encode_payload:('a -> string) ->
  unit ->
  'a t
(** A fresh, empty log.  [fsync_every] (default 1) is the number of
    records between durability boundaries.  Raises [Invalid_argument]
    when [< 1]. *)

val set_sink : 'a t -> sink option -> unit
(** Attach (or detach) a write-through sink.  The in-memory log keeps
    working exactly as before — the sink is the durable shadow. *)

val append : 'a t -> at:float -> 'a -> unit
(** Append one record stamped [at]; fires the {!on_record} hook with the
    new {!appended_total}. *)

val group : 'a t -> (unit -> 'b) -> 'b
(** Group commit: records appended while [f] runs become durable
    together when [f] returns.  Nested groups join the outermost one; an
    aborting [f] drops the records back to the ordinary boundaries. *)

val in_group : 'a t -> bool
(** A group is currently open (callers that count group commits use this
    to tell the outermost {!group} from a nested one). *)

val records : 'a t -> int
(** Records currently in the log (since the last {!compact}). *)

val appended_total : 'a t -> int
(** Records ever appended, across compactions. *)

val synced_records : 'a t -> int
(** Records up to the last durability boundary — what a crash right now
    is guaranteed to keep. *)

val on_record : 'a t -> (int -> unit) -> unit
(** Install a callback fired after every append with {!appended_total}
    (the crash-point-injection hook). *)

val compact : 'a t -> unit
(** Drop all records (their state is covered by a newer checkpoint). *)

val text : 'a t -> string
(** Serialize: header, records oldest first, then the torn fragment (no
    trailing newline) if a crash left one. *)

val entries : 'a t -> (float * 'a) list
(** The undamaged records currently held, oldest first, as
    [(at, payload)] — what {!parse} of {!text} would decode, without the
    round trip. *)

val drop_tail : ?torn:bool -> 'a t -> records:int -> unit
(** Lose the newest [records] records (clamped); with [~torn:true] the
    oldest lost record survives as a half-written fragment. *)

val crash_cut : 'a t -> int
(** Truncate to the last fsync boundary, leaving the first unsynced
    record torn; returns the number of records lost. *)

val encode_line : seq:int -> at:float -> string -> string
(** One record line (without the newline) for an already-encoded
    payload — exposed for fuzzing and for re-implementing {!Journal.encode}. *)

val seq_of_line : string -> int option
(** The sequence number of a record line, iff the line is complete and
    CRC-clean — how the storage layer reads record identity without
    knowing the payload codec.  Never raises. *)

val parse :
  header:string ->
  decode_payload:(string list -> 'a option) ->
  string ->
  ((float * 'a) list * string option, string) result
(** Decode a log.  [Error] only for a missing/bad header; anything wrong
    after that — CRC mismatch, sequence gap, torn or malformed record —
    truncates at the first bad record and comes back as
    [Ok (prefix, Some warning)].  Never raises. *)
