module Topology = Bbr_vtrs.Topology

type info = {
  path_id : int;
  links : Topology.link list;
  hops : int;
  rate_hops : int;
  delay_hops : int;
  d_tot : float;
}

type t = {
  node_mib : Node_mib.t;
  mutable infos : info list;  (* reversed registration order *)
  by_links : (int list, info) Hashtbl.t;
  by_id : (int, info) Hashtbl.t;
  cres : (int, float) Hashtbl.t;  (* path_id -> cached min residual *)
  through : (int, info list) Hashtbl.t;  (* link_id -> paths crossing it *)
  mutable next_id : int;
}

let recompute t info =
  let cres =
    List.fold_left
      (fun acc (l : Topology.link) ->
        Float.min acc (Node_mib.residual t.node_mib ~link_id:l.Topology.link_id))
      infinity info.links
  in
  Hashtbl.replace t.cres info.path_id cres

let create topology node_mib =
  ignore topology;
  let t =
    {
      node_mib;
      infos = [];
      by_links = Hashtbl.create 16;
      by_id = Hashtbl.create 16;
      cres = Hashtbl.create 16;
      through = Hashtbl.create 16;
      next_id = 0;
    }
  in
  Node_mib.on_change node_mib (fun ~link_id ->
      match Hashtbl.find_opt t.through link_id with
      | None -> ()
      | Some infos -> List.iter (recompute t) infos);
  t

let rec connected = function
  | [] | [ _ ] -> true
  | (a : Topology.link) :: (b :: _ as rest) ->
      a.Topology.dst = b.Topology.src && connected rest

let register t links =
  if links = [] then invalid_arg "Path_mib.register: empty path";
  if not (connected links) then invalid_arg "Path_mib.register: disconnected path";
  let key = List.map (fun (l : Topology.link) -> l.Topology.link_id) links in
  match Hashtbl.find_opt t.by_links key with
  | Some info -> info
  | None ->
      let info =
        {
          path_id = t.next_id;
          links;
          hops = Topology.hop_count links;
          rate_hops = Topology.rate_based_hops links;
          delay_hops = Topology.delay_based_hops links;
          d_tot = Topology.d_tot links;
        }
      in
      t.next_id <- t.next_id + 1;
      t.infos <- info :: t.infos;
      Hashtbl.replace t.by_links key info;
      Hashtbl.replace t.by_id info.path_id info;
      List.iter
        (fun (l : Topology.link) ->
          let id = l.Topology.link_id in
          let existing = Option.value ~default:[] (Hashtbl.find_opt t.through id) in
          Hashtbl.replace t.through id (info :: existing))
        links;
      recompute t info;
      info

let residual t info =
  match Hashtbl.find_opt t.cres info.path_id with
  | Some c -> c
  | None -> invalid_arg "Path_mib.residual: unregistered path"

let find t ~path_id = Hashtbl.find_opt t.by_id path_id

let find_links t ~links = Hashtbl.find_opt t.by_links links

let paths t = List.rev t.infos

let pp_info ppf info =
  Fmt.pf ppf "path#%d [%a] h=%d q=%d d_tot=%g" info.path_id
    Fmt.(list ~sep:(any " -> ") string)
    (match info.links with
    | [] -> []
    | first :: _ ->
        first.Topology.src :: List.map (fun (l : Topology.link) -> l.Topology.dst) info.links)
    info.hops info.rate_hops info.d_tot
