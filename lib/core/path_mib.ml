module Topology = Bbr_vtrs.Topology

type info = {
  path_id : int;
  links : Topology.link list;
  hops : int;
  rate_hops : int;
  delay_hops : int;
  d_tot : float;
}

(* Arena layout: path ids are dense (allocated 0,1,2,... and never freed —
   a registered path lives for the broker's lifetime), so the per-path
   tables are plain arrays indexed by path id: [by_id] for the info
   records, [cres] an unboxed float array for the cached min-residual.
   [through] is indexed by link id (dense in the topology) and holds the
   paths crossing each link, consulted on every reservation change.  Only
   the by-links lookup stays a Hashtbl — its key is a link-id sequence. *)
type t = {
  node_mib : Node_mib.t;
  mutable by_id : info option array;  (* path_id -> info *)
  mutable cres : float array;  (* path_id -> cached min residual *)
  mutable through : info list array;  (* link_id -> paths crossing it *)
  by_links : (int list, info) Hashtbl.t;
  mutable next_id : int;
}

let recompute t info =
  let cres =
    List.fold_left
      (fun acc (l : Topology.link) ->
        Float.min acc (Node_mib.residual t.node_mib ~link_id:l.Topology.link_id))
      infinity info.links
  in
  t.cres.(info.path_id) <- cres

let create topology node_mib =
  ignore topology;
  let t =
    {
      node_mib;
      by_id = Array.make 16 None;
      cres = Array.make 16 nan;
      through = [||];
      by_links = Hashtbl.create 16;
      next_id = 0;
    }
  in
  Node_mib.on_change node_mib (fun ~link_id ->
      if link_id < Array.length t.through then
        List.iter (recompute t) t.through.(link_id));
  t

let rec connected = function
  | [] | [ _ ] -> true
  | (a : Topology.link) :: (b :: _ as rest) ->
      a.Topology.dst = b.Topology.src && connected rest

let grow_paths t =
  let old = Array.length t.by_id in
  let cap = 2 * old in
  let infos = Array.make cap None in
  Array.blit t.by_id 0 infos 0 old;
  t.by_id <- infos;
  let residuals = Array.make cap nan in
  Array.blit t.cres 0 residuals 0 old;
  t.cres <- residuals

let grow_through t link_id =
  let old = Array.length t.through in
  if link_id >= old then begin
    let cap = max 16 (max (2 * old) (link_id + 1)) in
    let grown = Array.make cap [] in
    Array.blit t.through 0 grown 0 old;
    t.through <- grown
  end

let register_links t links =
  let key = List.map (fun (l : Topology.link) -> l.Topology.link_id) links in
  match Hashtbl.find_opt t.by_links key with
  | Some info -> info
  | None ->
      let info =
        {
          path_id = t.next_id;
          links;
          hops = Topology.hop_count links;
          rate_hops = Topology.rate_based_hops links;
          delay_hops = Topology.delay_based_hops links;
          d_tot = Topology.d_tot links;
        }
      in
      t.next_id <- t.next_id + 1;
      if info.path_id >= Array.length t.by_id then grow_paths t;
      t.by_id.(info.path_id) <- Some info;
      Hashtbl.replace t.by_links key info;
      List.iter
        (fun (l : Topology.link) ->
          let id = l.Topology.link_id in
          grow_through t id;
          t.through.(id) <- info :: t.through.(id))
        links;
      recompute t info;
      info

let register t links =
  if links = [] then invalid_arg "Path_mib.register: empty path";
  if not (connected links) then invalid_arg "Path_mib.register: disconnected path";
  register_links t links

let register_segment t links =
  if links = [] then invalid_arg "Path_mib.register_segment: empty segment";
  register_links t links

let residual t info =
  if info.path_id >= t.next_id then invalid_arg "Path_mib.residual: unregistered path";
  let c = t.cres.(info.path_id) in
  if Float.is_nan c then invalid_arg "Path_mib.residual: unregistered path" else c

let find t ~path_id =
  if path_id < 0 || path_id >= t.next_id then None else t.by_id.(path_id)

let find_links t ~links = Hashtbl.find_opt t.by_links links

let paths t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    match t.by_id.(id) with Some info -> acc := info :: !acc | None -> ()
  done;
  !acc

let pp_info ppf info =
  Fmt.pf ppf "path#%d [%a] h=%d q=%d d_tot=%g" info.path_id
    Fmt.(list ~sep:(any " -> ") string)
    (match info.links with
    | [] -> []
    | first :: _ ->
        first.Topology.src :: List.map (fun (l : Topology.link) -> l.Topology.dst) info.links)
    info.hops info.rate_hops info.d_tot
