(** The bandwidth broker: the front end that receives flow service requests
    from ingress routers and runs the full control loop of the paper's
    Figure 1 — policy check, path selection, admissibility test, and
    bookkeeping — entirely outside the core routers.

    Two service models are offered:
    - {!request}: per-flow guaranteed delay service (Section 3); and
    - {!request_class}: class-based guaranteed delay service with dynamic
      flow aggregation (Section 4).

    On admission the broker pushes the resulting edge-conditioner
    configuration to the ingress router through the [on_edge_config] /
    [on_class_rate] callbacks (the COPS leg of Section 2.2). *)

type time_hooks = {
  now : unit -> float;  (** the broker's clock *)
  after : float -> (unit -> unit) -> unit;  (** run an action after a delay *)
}

val immediate_time : time_hooks
(** A clock pinned at 0 whose timers fire immediately — suitable for static
    (non-simulated) use where contingency periods play no role. *)

type t

(** Which admission procedure produced a decision. *)
type service = Perflow | Class_based | Fixed

val service_label : service -> string
(** ["perflow"], ["class"], ["fixed"] — the metric label values. *)

(** One admission decision, as delivered to [on_decision] subscribers:
    every call to {!request}, {!request_class} or {!request_fixed} yields
    exactly one record, admitted or rejected. *)
type decision_record = {
  service : service;
  request : Types.request;
  flow : Types.flow_id option;  (** [Some] iff admitted *)
  rate : float;  (** reserved rate; [0.] on rejection or class service *)
  rejected : Types.reject_reason option;
  at : float;  (** broker clock at decision time *)
}

val create :
  ?policy:Policy.t ->
  ?classes:Aggregate.class_def list ->
  ?method_:Aggregate.method_ ->
  ?time:time_hooks ->
  ?fast_path:bool ->
  ?on_edge_config:(flow:Types.flow_id -> Types.reservation -> unit) ->
  ?on_class_rate:(class_id:int -> path_id:int -> total_rate:float -> unit) ->
  ?on_decision:(decision_record -> unit) ->
  Bbr_vtrs.Topology.t ->
  t
(** [method_] defaults to {!Aggregate.Feedback}; [classes] to none;
    [policy] to allow-all; [time] to {!immediate_time}.  [fast_path]
    (default [true]) backs admission with the incremental
    {!Admission_cache}; it is digest-neutral — decisions and MIB digests
    are identical either way — so [false] exists for benchmarking the
    uncached path and for differential testing. *)

val add_decision_hook : t -> (decision_record -> unit) -> unit
(** Subscribe to admission decisions after creation.  Hooks run in
    subscription order, after the broker's own bookkeeping. *)

(** {1 State-mutation hook (write-ahead journaling)}

    Every mutation of the broker's durable state — admissions, teardowns,
    contingency releases, macroflow evacuations, link state changes,
    aggregate rate changes — is announced through a single optional hook,
    in commit order.  {!Journal} installs itself here to build its
    write-ahead log; {!Journal.replay} applies the same mutations to a
    fresh broker to reconstruct the state.

    [Link_failed] and [Link_restored] are {e physical} records: on replay
    they change only the link state, because the teardown / evacuation /
    re-admission cascade {!fail_link} performs is journaled record by
    record in execution order.  [Rate_changed] documents every aggregate
    rate adjustment (including contingency draws and releases) and is
    ignored on replay — the rate is a deterministic function of the
    admissions.

    When no hook is installed the emission sites cost one load and one
    branch and allocate nothing. *)
type mutation =
  | Admit of { flow : Types.flow_id; request : Types.request; rate : float; delay : float }
      (** a per-flow reservation was booked (via {!request} or
          {!request_fixed}) *)
  | Admit_segment of {
      flow : Types.flow_id;
      request : Types.request;
      rate : float;
      delay : float;
      links : int list;
    }
      (** a shard booked its segment of a multi-shard path (via
          {!book_segment}); [links] are the exact link ids booked, which
          replay books verbatim without re-routing *)
  | Admit_class of { flow : Types.flow_id; class_id : int; request : Types.request }
      (** a microflow joined a class macroflow *)
  | Teardown of Types.flow_id  (** a per-flow reservation was released *)
  | Teardown_class of Types.flow_id  (** a microflow left its macroflow *)
  | Queue_emptied of { class_id : int; links : int list }
      (** edge queue-empty feedback released a macroflow's contingency;
          the path is named by its link-id sequence, which is stable
          across brokers (path ids are not) *)
  | Evacuated of { class_id : int; links : int list }
      (** a whole macroflow was hard-released by {!fail_link} *)
  | Link_failed of int  (** link marked down (physical record) *)
  | Link_restored of int  (** link marked up (physical record) *)
  | Rate_changed of { class_id : int; path_id : int; total_rate : float }
      (** informational: an aggregate rate (base + contingency) changed *)

val set_mutation_hook : t -> (mutation -> unit) -> unit
(** Install the (single) mutation hook, replacing any previous one. *)

val clear_mutation_hook : t -> unit

val now : t -> float
(** The broker's clock (from [time]; 0 under {!immediate_time}). *)

(** {1 Per-flow guaranteed service} *)

val request :
  t ->
  ?flow:Types.flow_id ->
  ?admission:[ `Exact | `Conservative ] ->
  Types.request ->
  (Types.flow_id * Types.reservation, Types.reject_reason) result
(** Full admission-control procedure for a new flow.  On success the flow
    is booked in the MIBs and the reservation pushed to the edge.

    [flow] books under a caller-chosen id instead of a fresh one (the id
    space is advanced past it) — used by the sharded broker's router,
    which allocates ids centrally so a sharded run reproduces the
    single-broker id sequence exactly.

    [admission] selects the admissibility test on mixed paths: [`Exact]
    (the default) runs the Figure-4 O(M) scan ({!Admission.admit});
    [`Conservative] runs the O(1) rate-only bound
    ({!Admission.conservative}) — the degraded mode the {!Overload}
    brownout controller switches to under sustained load.  Both are
    identical on all-rate-based paths, and both journal as plain [Admit]
    records (the booked pair, not the test, is what replay needs). *)

val teardown : t -> Types.flow_id -> unit
(** Release a per-flow reservation.  Idempotent: an unknown
    (already-released) flow is a no-op, so retransmitted DRQs are
    harmless. *)

val request_batch :
  t ->
  ?admission:[ `Exact | `Conservative ] ->
  Types.request list ->
  (Types.flow_id * Types.reservation, Types.reject_reason) result list
(** Admit a list of requests in one pass — {!request} applied in order
    inside {!batched}, so decisions are identical to issuing the requests
    one by one (each request sees the reservations of the previous ones),
    but journal records reach a single durability boundary together and
    the admission cache stays warm across the batch.  The natural unit for
    edge-broker lease refills and overload drains. *)

val batched : t -> (unit -> 'a) -> 'a
(** Run [f] as one batch (see {!request_batch}).  With no journal attached
    this is just [f ()].  Reentrant: an inner batch joins the outer one. *)

val set_batch_hook : t -> ((unit -> unit) -> unit) -> unit
(** Install the wrapper {!batched} runs its body under — used by
    {!Journal.attach} to implement group commit.  The wrapper must invoke
    its argument exactly once. *)

val request_fixed :
  t ->
  ?flow:Types.flow_id ->
  Types.request ->
  rate:float ->
  ?delay:float ->
  unit ->
  (Types.flow_id, Types.reject_reason) result
(** Book a reservation at an externally chosen rate–delay pair, checking
    policy, routing, the profile's rate window, residual bandwidth and (on
    paths with delay-based hops, where [delay] is then mandatory) exact
    schedulability — but {e not} the end-to-end delay budget, which the
    caller owns.  This is the hook the inter-domain coordinator uses: it
    solves the delay budget across domains and books the resulting rate in
    each domain.  Raises [Invalid_argument] when [delay] is missing on a
    mixed path.  Tear down with {!teardown}.

    [flow] books under a caller-chosen id instead of a fresh one (the id
    space is advanced past it) — used by snapshot restore and link-failure
    rerouting, where the flow must keep the id the ingress router holds. *)

val book_segment :
  t ->
  flow:Types.flow_id ->
  request:Types.request ->
  links:int list ->
  rate:float ->
  delay:float ->
  unit
(** Book an already-decided reservation on an explicit set of links — the
    commit leg of the sharded broker's two-phase multi-shard admission,
    and the replay form of [Admit_segment] journal records.  No policy,
    routing or admissibility check runs: the coordinator owns the
    decision.  [links] need not form a connected path (a path alternating
    between shards leaves each owner a non-contiguous segment); they are
    booked verbatim, in list order.  The flow-id space is advanced past
    [flow].  Neither the edge push nor the decision log fires — both stay
    with the coordinator, which sees the whole flow.  Tear down with
    {!teardown}.  Raises [Not_found] on an unknown link id. *)

(** {1 Class-based guaranteed service} *)

val request_class :
  t ->
  ?class_id:int ->
  ?flow:Types.flow_id ->
  Types.request ->
  (Types.flow_id * Aggregate.class_def, Types.reject_reason) result
(** Admit the flow into a delay service class — [class_id] if given
    (rejected when the class bound exceeds the flow's requirement),
    otherwise the loosest class satisfying the requirement.  [flow] as in
    {!request_fixed}. *)

val teardown_class : t -> Types.flow_id -> unit
(** Idempotent, like {!teardown}. *)

val queue_empty : t -> class_id:int -> path_id:int -> unit
(** Forwarded edge-conditioner feedback (see {!Aggregate.queue_empty}). *)

(** {1 Link failure handling}

    The paper's reliability argument (Section 2, footnote 2): all QoS
    state lives at the broker, so recovering from a data-plane failure is
    a pure control-plane operation — no core router is involved. *)

type link_recovery = {
  link_id : int;
  perflow_rerouted : Types.flow_id list;
      (** per-flow reservations re-admitted on a surviving path, keeping
          their flow ids *)
  perflow_dropped : Types.flow_id list;
      (** per-flow reservations released with no feasible alternative *)
  class_rerouted : Types.flow_id list;  (** class members re-joined elsewhere *)
  class_dropped : Types.flow_id list;
}

val fail_link : t -> link_id:int -> link_recovery
(** Restore-or-preempt recovery for a link failure: mark the link down,
    release every per-flow reservation and macroflow riding it (found
    through the path MIB), and attempt re-admission of each victim over
    the surviving topology — full admission control on the new path, in
    ascending flow-id order, per-flow reservations first.  Policy is not
    re-checked (the flow was already authorized); the end-to-end delay
    requirement is.  Victims that no longer fit anywhere are dropped — the
    broker has no reservation for them afterwards, and their eventual
    DRQs are no-ops.  Raises [Invalid_argument] for an unknown link id;
    calling it again for an already-down link finds no victims and is
    harmless. *)

val restore_link : t -> link_id:int -> unit
(** Mark a failed link up again.  Routing resumes using it for new
    selections; existing reservations are not rebalanced. *)

val set_link_admin : t -> link_id:int -> up:bool -> unit
(** The physical half of {!fail_link} / {!restore_link}: journal the
    [Link_failed] / [Link_restored] record, flip the topology state and
    invalidate the admission cache — {e without} running any recovery
    cascade.  The sharded broker's router calls this on every shard so the
    teardown/re-admission cascade, which spans shards, runs once,
    centrally.  Raises [Invalid_argument] for an unknown link id. *)

val recovered_count : link_recovery -> int

val dropped_count : link_recovery -> int

(** {1 Introspection} *)

val topology : t -> Bbr_vtrs.Topology.t

val policy : t -> Policy.t
(** The broker's policy information base — exposed so the {!Overload}
    pipeline can shed by {!Policy.priority} class. *)

val node_mib : t -> Node_mib.t

val path_mib : t -> Path_mib.t

val flow_mib : t -> Flow_mib.t

val routing : t -> Routing.t

val aggregate : t -> Aggregate.t

val route_of : t -> Types.request -> Path_mib.info option
(** The path the broker would select for this request. *)

val invalidate_cache : t -> unit
(** Force every cached path to revalidate at its next query (no-op without
    the fast path).  The broker already does this on {!fail_link} /
    {!restore_link}; state-restoration code paths that bypass the normal
    request surface should call it after rebuilding MIB state. *)

val fast_path_stats : t -> Admission_cache.stats option
(** Cache effectiveness counters; [None] when created with
    [~fast_path:false]. *)

val per_flow_count : t -> int

val class_flow_count : t -> int
