(** The sharded multi-core broker (ROADMAP item 1).

    The domain's links are partitioned across [N] {!Shard}s by a
    node-level partition function (owner of a link = shard of its source
    router); each shard is a complete single-threaded broker over a
    private topology copy, optionally on its own OCaml domain.  This
    router is the single front end: it routes each request on its own
    topology replica (routing is load-independent, so every replica
    agrees), then

    - dispatches a {e single-shard} path — every link owned by one shard —
      to that shard as one mailbox op: the entire admission (policy,
      routing, Section-3 admissibility, booking, journaling) runs there
      with no cross-shard synchronization; or
    - runs a {e multi-shard} path through a lightweight two-phase
      admission: every involved shard snapshots its links (residuals and
      {!Bbr_vtrs.Vtedf.copy} replicas), the router assembles the exact
      {!Admission.path_state} a single broker would see, decides, and on
      admit each shard books its segment verbatim
      ({!Broker.book_segment}).  No abort leg is needed: the router is the
      sole producer of every shard mailbox and sends nothing else to the
      involved shards between the phases, so snapshots cannot go stale.

    Flow ids are allocated centrally and consumed only on admission, so a
    deterministic (synchronous) sharded run reproduces a single broker's
    id sequence — and, because every reservation on a link executes on its
    owner in the same global order, its MIB digests, bit for bit
    ({!mib_digest} vs {!Audit.mib_digest}).

    Scope: per-flow guaranteed service only (no class-based aggregation)
    under the default allow-all policy; recovery is per-shard journal
    replay from genesis (no snapshot checkpoints of segment records). *)

type t

val create :
  ?spawn:bool ->
  ?journal_for:(int -> Journal.t option) ->
  ?on_edge_config:(flow:Types.flow_id -> Types.reservation -> unit) ->
  shards:int ->
  partition:(string -> int) ->
  Bbr_vtrs.Topology.t ->
  t
(** [create ~shards:n ~partition topology] builds [n] shards, each over
    its own {!Bbr_vtrs.Topology.copy}.  [partition] maps a router name to
    a shard index in [\[0, n)]; a link is owned by [partition link.src].
    [spawn] (default [false]) runs each shard on its own domain.
    [journal_for i] supplies shard [i]'s write-ahead journal (attached to
    its private broker; group commit applies per shard).  [on_edge_config]
    receives every admitted reservation, as with {!Broker.create}.
    Raises [Invalid_argument] when [partition] leaves the range. *)

val request :
  t ->
  Types.request ->
  (Types.flow_id * Types.reservation, Types.reject_reason) result
(** Synchronous sharded admission (see module doc).  Decision-identical
    to {!Broker.request} on a single broker fed the same sequence. *)

val teardown : t -> Types.flow_id -> unit
(** Broadcast teardown; a no-op on shards not holding the flow. *)

type recovery = {
  link_id : int;
  rerouted : Types.flow_id list;
  dropped : Types.flow_id list;
}

val fail_link : t -> link_id:int -> recovery
(** Stop-the-world replica of {!Broker.fail_link} for per-flow service:
    the link goes down on the router and every shard (each journals the
    physical record), victims are collected from the owner shard, torn
    down everywhere in ascending flow-id order, then re-admitted over the
    surviving topology in the same order under their pinned ids. *)

val restore_link : t -> link_id:int -> unit

val set_link : t -> link_id:int -> up:bool -> unit
(** The physical transition alone (both directions), no cascade. *)

val flows : t -> (Types.flow_id * float * float * int list) list
(** The merged per-flow population: [(flow, rate, delay, path links)]
    with multi-shard segments stitched back into whole paths (unique for
    the simple paths min-hop routing produces).  Unordered. *)

val per_flow_count : t -> int

val mib_digest : t -> string
(** {!Audit.digest_of_perflow} over {!flows} — byte-comparable with
    {!Audit.mib_digest} of a single broker fed the same sequence. *)

val flowset_digest : t -> string
(** Id-blind digest of the flow population (sorted multiset of
    [rate delay links] lines).  The equivalence check for parallel runs,
    whose striped flow ids differ from the single broker's sequence. *)

val flowset_digest_of : (Types.flow_id * float * float * int list) list -> string

val flows_of_broker : Broker.t -> (Types.flow_id * float * float * int list) list
(** A single broker's population in {!flows} form — the reference side of
    a {!flowset_digest} comparison. *)

val audits_clean : t -> bool
(** {!Audit.check} is clean on every shard. *)

val churn : t -> Shard.churn_spec array -> Shard.churn_result array
(** One self-driving load loop per shard (array index = shard id),
    running concurrently when shards are spawned.  This is the
    multi-domain throughput engine: regional (single-shard) traffic
    admits entirely inside each shard's domain. *)

val nshards : t -> int

val shard : t -> int -> Shard.t

val topology : t -> Bbr_vtrs.Topology.t
(** The router's private replica (do not mutate). *)

val owner_of_link : t -> link_id:int -> int

val next_flow_id : t -> Types.flow_id
(** The id the next admission will take. *)

val stop : t -> unit
(** Stop and join every spawned shard domain (no-op inline). *)
