(** Uniform telemetry recording for the control plane.

    One label vocabulary for every admission decision in the repository:
    components must record outcomes through {!decision} (which feeds the
    [bb_admission_total] / [bb_admission_reject_total] counter families
    and the trace decision log) rather than keeping ad-hoc tallies.  All
    helpers cost a branch when no registry/tracer is installed. *)

val active : unit -> bool
(** A metrics registry or a tracer is installed. *)

val set_shard : int option -> unit
(** Tag subsequent telemetry from this domain with a broker-shard id:
    {!decision} counters gain a [shard] label and {!span}s a [shard]
    attribute.  Domain-local — a spawned shard domain sets it once at
    startup; the inline (single-domain) sharded broker flips it around
    each shard operation.  [None] (the initial state) restores the
    unlabeled single-broker series. *)

val shard : unit -> int option
(** The current domain's shard tag. *)

val decision :
  service:string ->
  at:float ->
  Types.request ->
  ((Types.flow_id * float) (* flow, reserved rate *), Types.reject_reason) result ->
  unit
(** Record one admission decision at sim time [at].  [service] is the
    decision path: ["perflow"], ["class"], ["fixed"], ["edge"], ... *)

type stage_site
(** A pre-resolved instrumentation site for one named control-loop
    stage: span name and histogram handle are resolved once, not per
    call.  Create one per stage at module level. *)

val stage_site : string -> stage_site

val stage : now:(unit -> float) -> stage_site -> (unit -> 'a) -> 'a
(** [stage ~now site f] runs [f], recording its wall duration into the
    [bb_stage_seconds{stage=name}] histogram and as a [bb.stage.<name>]
    trace span stamped with [now ()].  The span is parented on the
    innermost ambient span (the request's root when called under
    {!span}) and is itself ambient while [f] runs.  Just [f ()] when
    inactive. *)

val span :
  now:(unit -> float) ->
  ?attrs:(string * string) list ->
  ?parent:Bbr_obs.Trace.span ->
  string ->
  (Bbr_obs.Trace.span -> 'a) ->
  'a
(** A causal span around one unit of control-plane work (a request, a
    batch, a 2PC transaction).  Start and finish sim stamps both come
    from [now]; the span is ambient while [f] runs, so nested {!stage}
    calls, events and decisions attach to it.  Without a tracer, [f]
    receives {!Bbr_obs.Trace.null_span}. *)

val event :
  at:float ->
  ?attrs:(string * string) list ->
  ?parent:Bbr_obs.Trace.span ->
  string ->
  unit

val count : ?labels:(string * string) list -> ?by:float -> string -> unit
(** Re-export of {!Bbr_obs.Metrics.count}. *)
