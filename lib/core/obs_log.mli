(** Uniform telemetry recording for the control plane.

    One label vocabulary for every admission decision in the repository:
    components must record outcomes through {!decision} (which feeds the
    [bb_admission_total] / [bb_admission_reject_total] counter families
    and the trace decision log) rather than keeping ad-hoc tallies.  All
    helpers cost a branch when no registry/tracer is installed. *)

val active : unit -> bool
(** A metrics registry or a tracer is installed. *)

val decision :
  service:string ->
  at:float ->
  Types.request ->
  ((Types.flow_id * float) (* flow, reserved rate *), Types.reject_reason) result ->
  unit
(** Record one admission decision at sim time [at].  [service] is the
    decision path: ["perflow"], ["class"], ["fixed"], ["edge"], ... *)

val stage : now:(unit -> float) -> string -> (unit -> 'a) -> 'a
(** [stage ~now name f] runs [f], recording its wall duration into the
    [bb_stage_seconds{stage=name}] histogram and as a [bb.stage.<name>]
    trace span stamped with [now ()].  Just [f ()] when inactive. *)

val event : at:float -> ?attrs:(string * string) list -> string -> unit

val count : ?labels:(string * string) list -> ?by:float -> string -> unit
(** Re-export of {!Bbr_obs.Metrics.count}. *)
