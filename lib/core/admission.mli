(** Path-oriented admission control for per-flow guaranteed services
    (paper Section 3).

    Because the broker holds the QoS state of the whole path, admissibility
    is tested against the entire path at once instead of hop by hop:

    - {!rate_based} — paths with only rate-based schedulers (Section 3.1):
      a closed-form O(1) test returning the minimal feasible reserved rate.
    - {!mixed} — paths mixing rate- and delay-based schedulers
      (Section 3.2, Figure 4): an O(M) scan over the [M] distinct delay
      values supported by the delay-based schedulers of the path, returning
      a rate–delay pair with the minimal feasible rate.
    - {!mixed_reference} — an exact oracle that evaluates the VT-EDF
      schedulability condition (eq. (5)) directly on every delay interval;
      used to cross-validate {!mixed} and as a fallback.

    All tests are pure with respect to the MIBs: they never mutate
    reservation state. *)

type path_state = {
  hops : int;
  rate_hops : int;
  delay_hops : int;
  d_tot : float;
  cres : float;  (** minimal residual bandwidth along the path *)
  edf : Bbr_vtrs.Vtedf.t list;  (** delay-based schedulers along the path *)
}

val path_state : Node_mib.t -> Path_mib.t -> Path_mib.info -> path_state
(** Snapshot view of a path assembled from the MIBs. *)

(** The merged breakpoint table of a mixed path: every distinct delay value
    [d^m] supported across the delay-based schedulers, ascending, with the
    minimal residual service [S^m] of the path at [d^m] (Section 3.2).
    Parallel arrays of which only the first [m] entries are meaningful, so
    a cache can maintain the table incrementally in oversized buffers and
    hand it to {!mixed} without re-merging per request. *)
type merged = {
  m : int;  (** number of merged breakpoints *)
  md : float array;  (** distinct delays, ascending *)
  ms : float array;  (** minimal residual service at each delay *)
}

val merge_breakpoints : path_state -> merged
(** Builds the merged table from scratch — the uncached reference.  A table
    supplied via [?bps] below must be element-wise identical to this one
    for the cache to be digest-neutral. *)

val rate_based :
  path_state -> Bbr_vtrs.Traffic.t -> dreq:float -> (float, Types.reject_reason) result
(** Minimal feasible reserved rate on an all-rate-based path, or why none
    exists.  Raises [Invalid_argument] when the path has delay-based
    hops. *)

val mixed :
  ?bps:merged ->
  path_state ->
  Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (float * float, Types.reject_reason) result
(** Figure-4 algorithm: [(rate, delay)] with minimal [rate] on a mixed
    path.  Any returned pair is re-validated against the exact
    schedulability condition; on the rare disagreement (the published
    interval formulas omit the candidate's own-deadline constraint) the
    result of {!mixed_reference} is returned instead.  [?bps] supplies a
    pre-merged breakpoint table (from {!Admission_cache}); when absent the
    table is rebuilt via {!merge_breakpoints}.  Raises [Invalid_argument]
    when the path has no delay-based hop. *)

val mixed_reference :
  ?bps:merged ->
  path_state ->
  Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (float * float, Types.reject_reason) result
(** Exact reference implementation (see module doc). *)

val admit :
  ?bps:merged ->
  path_state ->
  Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (Types.reservation, Types.reject_reason) result
(** Dispatch on the path kind: {!rate_based} when [delay_hops = 0]
    (reservation delay 0), {!mixed} otherwise. *)

val conservative :
  path_state ->
  Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (Types.reservation, Types.reject_reason) result
(** The brownout-mode admission test: the Section-3.1 closed form with
    every hop treated as rate-based, offering each delay-based scheduler
    the pair [<r, lmax/r>] (under which VT-EDF degenerates to a rate-based
    server, so the end-to-end bound holds by construction).  No interval
    scan: one closed-form rate plus one exact schedulability check.
    Strictly conservative with respect to {!admit} — it may reject a flow
    {!mixed} would place, but any reservation it returns satisfies the
    exact schedulability condition.  Equals {!rate_based} on all-rate
    paths. *)

val schedulable : path_state -> rate:float -> delay:float -> lmax:float -> bool
(** Exact check that a candidate pair fits every constraint of the path:
    rate window, residual bandwidth, and eq. (5) at every delay-based
    scheduler. *)

(** {1 Introspection} *)

(** One delay interval of the Figure-4 scan, with the two rate ranges of
    eqs. (10) and (11).  Exposed for diagnostics and for reproducing the
    monotonicity illustration of the paper's Figure 5. *)
type interval_view = {
  index : int;  (** [m], 1-based from the leftmost interval *)
  d_lo : float;  (** [d^{m-1}] *)
  d_hi : float;  (** [min (d^m, t)] *)
  fea_l : float;  (** left edge of [R_fea^m] *)
  fea_r : float;  (** right edge of [R_fea^m] *)
  del_l : float;  (** left edge of [R_del^m] *)
  del_r : float;  (** right edge of [R_del^m] *)
}

val intervals :
  ?bps:merged ->
  path_state ->
  Bbr_vtrs.Traffic.t ->
  dreq:float ->
  interval_view list
(** The interval table the Figure-4 scan walks, left to right.  Empty when
    the request is trivially unachievable.  Raises [Invalid_argument] on a
    path without delay-based hops. *)
