(** One shard of the sharded multi-core broker.

    A shard is a complete single-threaded {!Broker} over a private
    {!Bbr_vtrs.Topology.copy} of the domain, owning a subset of the links
    (the ownership map lives in {!Shard_router}).  Every reservation on a
    link executes on the link's owning shard and nowhere else, so a
    shard's MIB slice needs no synchronization — its state on the links it
    owns is bit-exact with what a single broker executing the same global
    operation order would hold.

    A shard either runs {e inline} (operations applied synchronously on
    the caller's domain — the deterministic mode used for differential
    testing and the default on one core) or {e spawned} on its own OCaml
    domain, fed through a bounded single-producer/single-consumer mailbox
    ({!Bbr_util.Spsc}); the router is the only producer.  Telemetry is
    tagged with the shard id via {!Obs_log.set_shard}; a spawned domain
    has no metrics registry or tracer installed (both are domain-local)
    unless it installs its own. *)

type churn_spec = {
  ops : int;  (** operations to run *)
  cap : int;  (** live flows to keep; beyond it the oldest is torn down *)
  gen : unit -> Types.request;  (** request generator (shard-private) *)
}

type churn_result = {
  admitted : int;
  rejected : int;
  torn : int;
  lat : float array;  (** wall seconds of each admission decision, op order *)
}

(** Per-link snapshot returned by [Prepare] — the read phase of the
    router's two-phase multi-shard admission. *)
type prepared = {
  p_link : int;
  p_residual : float;  (** residual bandwidth on the link *)
  p_edf : Bbr_vtrs.Vtedf.t option;
      (** independent scheduler-state replica; [None] on rate-based links *)
}

type victim = { v_flow : Types.flow_id; v_request : Types.request }

(** The shard command vocabulary.  Each op yields exactly one {!reply}. *)
type op =
  | Admit of { flow : Types.flow_id; request : Types.request }
      (** full single-shard admission under a router-chosen id *)
  | Book_segment of {
      flow : Types.flow_id;
      request : Types.request;
      links : int list;
      rate : float;
      delay : float;
    }  (** commit phase of a multi-shard admission *)
  | Prepare of int list  (** snapshot the named links (read-only) *)
  | Teardown of Types.flow_id  (** idempotent; no-op on shards without it *)
  | Set_link of { link_id : int; up : bool }  (** physical link record *)
  | Victims of int  (** flows riding the given link *)
  | Dump  (** all flow records as [(flow, rate, delay, links)] *)
  | Digest  (** this shard's {!Audit.mib_digest} *)
  | Audit_ok  (** {!Audit.check} is clean *)
  | Journal_text  (** the shard journal's text; [""] without one *)
  | Churn of churn_spec  (** self-driving load loop (striped flow ids) *)
  | Stop

type reply =
  | Done
  | Admitted of (Types.flow_id * Types.reservation, Types.reject_reason) result
  | Prepared of prepared list
  | Victims_are of victim list
  | Flows of (Types.flow_id * float * float * int list) list
  | Text of string
  | Flag of bool
  | Churned of churn_result

type t

val create :
  ?journal:Journal.t ->
  ?spawn:bool ->
  ?mailbox:int ->
  id:int ->
  nshards:int ->
  Bbr_vtrs.Topology.t ->
  t
(** A shard over its own copy of [topology].  [journal] is attached to the
    shard's broker (per-shard write-ahead log, group commit included).
    [spawn] (default [false]) runs the shard on its own domain; [mailbox]
    (default 1024) bounds the command and reply rings. *)

val id : t -> int

val broker : t -> Broker.t
(** The shard's private broker.  Safe to touch directly only in inline
    mode, or after {!stop}. *)

val journal : t -> Journal.t option

val spawned : t -> bool

val send : t -> op -> unit
(** Dispatch an op.  Inline: executes now, queueing the reply.  Spawned:
    enqueues on the mailbox (blocking push when full).  Only one domain —
    the router's — may call this. *)

val recv : t -> reply
(** The next pending reply, in op order (blocking pop when spawned). *)

val rpc : t -> op -> reply
(** [send] then [recv]. *)

val stop : t -> unit
(** Stop and join the shard's domain (no-op inline).  The broker remains
    readable afterwards. *)
