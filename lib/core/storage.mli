(** Segmented durable storage for the broker's journal and checkpoints,
    over the fault-injectable {!Bbr_util.Vfs}.

    {b Layout.}  The journal is a chain of segment files
    [seg-<n>.log]: a header line [bbr-seg v1 <n>], CRC'd record lines
    (the {!Wal} framing), and — once the segment is {e sealed} — a
    footer [seal <count> <crc32>] whose CRC covers the whole record
    region.  The active (highest-numbered) segment has no footer yet;
    every other segment must have a valid one, so at-rest bit rot in a
    sealed segment is always detectable.  Checkpoints alternate between
    two slots [ckpt.a]/[ckpt.b] (dual generation): the first line
    [bbr-ckpt v1 <crc32>] checksums everything after it, including the
    [gen <g> cover <c>] metadata line, so a flipped bit in the cover
    cannot silently shift the replay start.  A checkpoint is written to
    a shadow file, fsynced, read back and verified, then atomically
    renamed over the {e older} slot — the previous generation always
    survives until the new one is proven on disk.

    {b Recovery contract.}  {!tail_from} returns the longest provably
    intact record suffix starting at a checkpoint's cover: it stops at
    the first corrupt record, sequence gap, or bad segment, quarantines
    sealed segments whose bytes changed since sealing, and reports what
    it dropped.  Combined with newest-verifiable-checkpoint selection
    (see {!candidates}), any single corruption yields either an exact
    rebuild or a clean prefix state with the loss reported — never a
    silent wrong state.

    {b Failure policy.}  Write-path disk errors (EIO, ENOSPC, short
    write, lying fsync) are absorbed and counted — the control plane
    must not crash because the disk hiccuped; the damage surfaces at
    recovery time as a shorter reported prefix.  Nothing here raises. *)

module Vfs = Bbr_util.Vfs

type t

val create : ?rotate_every:int -> vfs:Vfs.t -> unit -> t
(** A store rooted at the top of [vfs].  [rotate_every] (default 64) is
    the record count at which the active segment is sealed and rotated;
    checkpoints also force a rotation so pruning works on whole
    segments.  Picks up any segments/checkpoints already present in
    [vfs] (an imported store). *)

val vfs : t -> Vfs.t

val sink : t -> Wal.sink
(** The write-through sink to hand to {!Wal.set_sink}: [put] appends a
    record line to the active segment (rotating as configured), [sync]
    fsyncs it. *)

val seal_active : t -> unit
(** Seal the active segment (write its CRC footer) and rotate.  A no-op
    when the active segment was never written. *)

val checkpoint : t -> cover:int -> string -> (int, string) result
(** [checkpoint t ~cover body] seals the active segment, then writes
    [body] (a {!Snapshot.save} text) as the next checkpoint generation:
    shadow file, fsync, read-back verification, atomic rename over the
    older slot.  [cover] is the journal's {!Wal.appended_total} at save
    time — replay resumes at that sequence number.  On success, sealed
    segments entirely below every retained generation's cover are
    pruned, and the new generation number is returned.  On verification
    failure both existing generations are left untouched and an [Error]
    is returned (counted in [bb_storage_checkpoint_failures_total]). *)

val candidates : t -> (int * int * string) list
(** Verifiable checkpoints as [(generation, cover, body)], newest
    first.  A slot that fails its CRC is simply absent from this list —
    that is the fallback mechanism. *)

val slots_present : t -> int
(** Checkpoint slot files on disk, verifiable or not.  More slots than
    {!candidates} means a corrupted generation. *)

type tail = {
  lines : string list;     (** intact record lines, oldest first *)
  records : int;
  truncated : string option;  (** why the suffix stopped early, if it did *)
  quarantined : string list;  (** sealed segments renamed to [*.quar] *)
}

val tail_from : t -> cover:int -> tail
(** The longest provably intact record suffix with sequence numbers
    [cover, cover+1, ...].  Corrupt sealed segments encountered are
    quarantined (renamed [*.quar], counted, flight-recorded); a torn
    record in the active segment just truncates.  Never raises. *)

type scrub_report = {
  segments_checked : int;
  errors : (string * string) list;  (** (file, kind) per detection *)
  quarantined_files : string list;
  checkpoints_ok : int;
  checkpoints_bad : int;
}

val scrub : t -> scrub_report
(** Full integrity pass: every sealed segment's footer, every record
    CRC and intra-segment sequence chain, both checkpoint generations.
    Sealed segments whose bytes changed since sealing are quarantined.
    Detections are counted in [bb_storage_scrub_errors_total{kind}] and
    sealed-segment corruption triggers the flight recorder. *)

val scrub_clean : scrub_report -> bool

val crash : t -> unit
(** Power loss (see {!Vfs.crash}): unsynced suffixes are torn away. *)

val bitrot_checkpoint : t -> string option
(** Flip one seeded bit in the newest verifiable checkpoint slot — the
    disk-fault scenario's targeted corruption.  Returns the slot name
    hit, or [None] when no checkpoint exists. *)

val write_errors : t -> int
(** Disk errors absorbed on the write path since creation. *)
