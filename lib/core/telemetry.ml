(* Derived-gauge registration: the broker's MIBs already hold the current
   control-plane state, so the gauges read it lazily at snapshot time
   instead of being pushed on every change.  Re-registering (same metric
   names) replaces the callbacks — after a fail-over, register the promoted
   standby and the gauges follow it. *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace
module Topology = Bbr_vtrs.Topology

(* The tracer's own health as gauges: a nonzero [bb_trace_evicted]
   means every ring-derived statistic covers only a suffix of the run
   (the wraparound caveat in {!Bbr_obs.Trace}). *)
let register_tracer ?registry () =
  match
    ( (match registry with Some r -> Some r | None -> Metrics.current ()),
      Trace.current () )
  with
  | Some reg, Some tr ->
      Metrics.gauge_fn reg "bb_trace_entries"
        ~help:"Trace-ring entries currently retained" (fun () ->
          float_of_int (Trace.length tr));
      Metrics.gauge_fn reg "bb_trace_total"
        ~help:"Trace entries ever recorded, including evicted" (fun () ->
          float_of_int (Trace.total tr));
      Metrics.gauge_fn reg "bb_trace_evicted"
        ~help:"Trace entries lost to ring wraparound" (fun () ->
          float_of_int (Trace.evicted tr))
  | _ -> ()

let link_labels (l : Topology.link) =
  [
    ("link", string_of_int l.Topology.link_id);
    ("src", l.Topology.src);
    ("dst", l.Topology.dst);
  ]

let register_broker ?registry broker =
  match
    match registry with Some r -> Some r | None -> Metrics.current ()
  with
  | None -> ()
  | Some reg ->
      let node_mib = Broker.node_mib broker in
      List.iter
        (fun (l : Topology.link) ->
          let link_id = l.Topology.link_id in
          let labels = link_labels l in
          Metrics.gauge_fn reg "bb_link_reserved_bps"
            ~help:"Bandwidth currently reserved on the link, bits/s" ~labels
            (fun () -> Node_mib.reserved node_mib ~link_id);
          Metrics.gauge_fn reg "bb_link_utilization"
            ~help:"Reserved fraction of link capacity" ~labels (fun () ->
              Node_mib.reserved node_mib ~link_id /. l.Topology.capacity))
        (Topology.links (Broker.topology broker));
      Metrics.gauge_fn reg "bb_flows"
        ~help:"Reservations currently booked at the broker"
        ~labels:[ ("service", "perflow") ]
        (fun () -> float_of_int (Broker.per_flow_count broker));
      Metrics.gauge_fn reg "bb_flows"
        ~labels:[ ("service", "class") ]
        (fun () -> float_of_int (Broker.class_flow_count broker));
      let aggregate = Broker.aggregate broker in
      Metrics.gauge_fn reg "bb_agg_macroflows"
        ~help:"Live (class, path) macroflows" (fun () ->
          float_of_int (List.length (Aggregate.all_macroflows aggregate)));
      Metrics.gauge_fn reg "bb_agg_contingency_bps"
        ~help:"Total contingency bandwidth currently held, bits/s" (fun () ->
          List.fold_left
            (fun acc (s : Aggregate.macro_stats) ->
              acc +. s.Aggregate.contingency)
            0.
            (Aggregate.all_macroflows aggregate));
      List.iter
        (fun (c : Aggregate.class_def) ->
          Metrics.gauge_fn reg "bb_agg_class_members"
            ~help:"Flows aggregated into the class, across paths"
            ~labels:[ ("class", string_of_int c.Aggregate.class_id) ]
            (fun () ->
              List.fold_left
                (fun acc (s : Aggregate.macro_stats) ->
                  if s.Aggregate.class_id = c.Aggregate.class_id then
                    acc + s.Aggregate.members
                  else acc)
                0
                (Aggregate.all_macroflows aggregate)
              |> float_of_int))
        (Aggregate.classes aggregate)
