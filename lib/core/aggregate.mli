(** Class-based guaranteed services with dynamic flow aggregation
    (paper Section 4).

    The domain offers a fixed set of delay service classes.  All microflows
    of one class that share a path are aggregated into a single macroflow,
    shaped at the edge with one aggregate reserved rate and carrying one
    fixed delay parameter [cd] at delay-based hops.

    Microflows may join and leave at any time.  To prevent the transient
    delay-bound violations of Section 4.1, every rate adjustment is
    accompanied by {e contingency bandwidth} (Theorems 2 and 3): on a join,
    [max 0 (peak_nu - rate_increment)] extra bandwidth is held for a
    contingency period; on a leave, the rate reduction itself is retained
    as contingency before being released.  Two ways of sizing the period
    are implemented:

    - {!Bounding}: the theoretical bound of eq. (17),
      [tau = d_edge_old * (r + conting) / delta_r], run on a timer;
    - {!Feedback}: the edge conditioner signals when its backlog empties
      ({!queue_empty}), at which point {e all} contingency bandwidth of the
      macroflow is released (the lingering backlog is gone, eq. (13)).

    The aggregate reserved rate is always at least the sum of the member
    sustained rates (otherwise the edge backlog grows without bound) and at
    least the minimum rate at which the class end-to-end bound holds
    (eq. (19), using the macroflow core bound of eq. (12) with the path
    MTU). *)

type method_ = Bounding | Feedback

type class_def = {
  class_id : int;
  dreq : float;  (** end-to-end delay bound of the class, seconds *)
  cd : float;  (** fixed delay parameter at delay-based schedulers *)
}

type hooks = {
  now : unit -> float;  (** broker clock *)
  after : float -> (unit -> unit) -> unit;  (** timer service (delay, action) *)
  rate_changed : class_id:int -> path_id:int -> total_rate:float -> unit;
      (** pushed to the ingress edge conditioner (the COPS leg): fired
          whenever base + contingency changes *)
}

type t

val create :
  Node_mib.t -> Path_mib.t -> classes:class_def list -> method_:method_ -> hooks:hooks -> t
(** Raises [Invalid_argument] on duplicate class ids or invalid bounds. *)

val classes : t -> class_def list

val find_class : t -> class_id:int -> class_def option

val best_class : t -> dreq:float -> class_def option
(** The class with the largest bound not exceeding [dreq] (loosest class
    that still satisfies the flow), or [None] when every class is tighter
    than needed... i.e. no class bound [<= dreq]. *)

val join :
  t ->
  class_id:int ->
  path:Path_mib.info ->
  flow:Types.flow_id ->
  Bbr_vtrs.Traffic.t ->
  (unit, Types.reject_reason) result
(** Admission test and bookkeeping for a microflow joining the class's
    macroflow on [path] (Section 4.3, "Microflow Join"). *)

val leave : t -> flow:Types.flow_id -> unit
(** Microflow departure (Section 4.3, "Microflow Leave").  Raises
    [Invalid_argument] for an unknown flow. *)

val evacuate :
  t -> class_id:int -> path_id:int -> (Types.flow_id * Bbr_vtrs.Traffic.t) list
(** Tear a whole macroflow out at once: release its entire allocation
    (base {e and} contingency — the path has failed, so no contingency
    period applies), forget the macroflow, and return its members in
    ascending flow-id order so the broker can attempt re-admission on a
    surviving path.  Empty list when the macroflow does not exist. *)

val queue_empty : t -> class_id:int -> path_id:int -> unit
(** Edge-conditioner feedback: the macroflow's backlog emptied.  Under
    {!Feedback} this releases all contingency bandwidth of the macroflow
    and resets its edge-delay bound; ignored under {!Bounding}. *)

(** {1 Introspection} *)

type macro_stats = {
  class_id : int;
  path_id : int;
  members : int;
  base_rate : float;  (** reserved rate excluding contingency *)
  contingency : float;  (** currently held contingency bandwidth *)
  edge_bound : float;  (** current worst-case edge-delay bound *)
}

val macroflow_stats : t -> class_id:int -> path_id:int -> macro_stats option

val all_macroflows : t -> macro_stats list

val member_count : t -> int

val owner : t -> flow:Types.flow_id -> (int * int) option
(** [(class_id, path_id)] of the macroflow a flow belongs to. *)

val members : t -> class_id:int -> path_id:int -> (Types.flow_id * Bbr_vtrs.Traffic.t) list
(** The microflows of a macroflow, ascending flow id; empty when the
    macroflow does not exist. *)

val path_endpoints : t -> class_id:int -> path_id:int -> (string * string) option
(** [(ingress, egress)] of the macroflow's path. *)

val owners_alist : t -> (Types.flow_id * (int * int)) list
(** Every class member with its [(class_id, path_id)], ascending flow id
    — the owner table as the {!Audit} cross-checks see it. *)

(** {1 Snapshot / journal support} *)

val grant_amounts : t -> class_id:int -> path_id:int -> float list
(** The macroflow's live contingency grants, oldest first.  Their sum is
    the macroflow's [contingency]. *)

val sweep_contingency : t -> class_id:int -> path_id:int -> unit
(** Release every contingency grant of the macroflow immediately,
    regardless of the contingency method.  Snapshot restore uses this to
    clear the grants that replaying the member joins created, before
    re-establishing the exact pool saved from the primary. *)

val restore_grant :
  t -> class_id:int -> path_id:int -> amount:float -> (unit, Types.reject_reason) result
(** Re-establish one contingency grant on an existing macroflow: reserve
    [amount] on the path links, update schedulability state and register
    the grant (arming a release timer under {!Bounding}).  Errors when
    the macroflow is unknown or the bandwidth no longer fits. *)

val set_edge_bound : t -> class_id:int -> path_id:int -> float -> unit
(** Overwrite the macroflow's current worst-case edge-delay bound (the
    last auxiliary value a snapshot restores).  No-op when the macroflow
    does not exist. *)

val repair_membership : t -> int
(** Anti-entropy reconciliation of the owner ⇄ member tables: drop owner
    entries whose macroflow is gone or does not list the flow, and
    re-adopt members missing their owner entry (the member table drives
    the rate accounting, so it wins).  Returns the number of entries
    fixed. *)
