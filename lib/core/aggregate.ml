module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Vtedf = Bbr_vtrs.Vtedf
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

type method_ = Bounding | Feedback

type class_def = { class_id : int; dreq : float; cd : float }

type hooks = {
  now : unit -> float;
  after : float -> (unit -> unit) -> unit;
  rate_changed : class_id:int -> path_id:int -> total_rate:float -> unit;
}

type macroflow = {
  cls : class_def;
  path : Path_mib.info;
  members : (Types.flow_id, Traffic.t) Hashtbl.t;
  mutable profile : Traffic.t option;  (* None when empty *)
  mutable base : float;  (* reserved rate excluding contingency *)
  mutable conting : float;  (* total active contingency bandwidth *)
  grants : (int, float) Hashtbl.t;  (* grant id -> amount *)
  mutable next_grant : int;
  mutable edge_bound : float;  (* current worst-case edge-delay bound *)
}

type macro_stats = {
  class_id : int;
  path_id : int;
  members : int;
  base_rate : float;
  contingency : float;
  edge_bound : float;
}

type t = {
  node_mib : Node_mib.t;
  path_mib : Path_mib.t;
  classes : class_def list;
  method_ : method_;
  hooks : hooks;
  macros : (int * int, macroflow) Hashtbl.t;  (* (class_id, path_id) *)
  owners : (Types.flow_id, int * int) Hashtbl.t;
}

let create node_mib path_mib ~classes ~method_ ~hooks =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : class_def) ->
      if Hashtbl.mem seen c.class_id then
        invalid_arg "Aggregate.create: duplicate class id";
      if c.dreq <= 0. then invalid_arg "Aggregate.create: class bound must be positive";
      if c.cd < 0. then invalid_arg "Aggregate.create: negative class delay parameter";
      Hashtbl.replace seen c.class_id ())
    classes;
  {
    node_mib;
    path_mib;
    classes;
    method_;
    hooks;
    macros = Hashtbl.create 16;
    owners = Hashtbl.create 64;
  }

let classes t = t.classes

let find_class t ~class_id =
  List.find_opt (fun (c : class_def) -> c.class_id = class_id) t.classes

let best_class t ~dreq =
  List.fold_left
    (fun acc (c : class_def) ->
      if c.dreq <= dreq then
        match acc with
        | Some best when best.dreq >= c.dreq -> acc
        | _ -> Some c
      else acc)
    None t.classes

(* ------------------------------------------------------------------ *)
(* Per-macroflow helpers.                                             *)

let total mf = mf.base +. mf.conting

let edf_entries t mf =
  List.filter_map
    (fun (l : Topology.link) ->
      (Node_mib.entry t.node_mib ~link_id:l.Topology.link_id).Node_mib.edf)
    mf.path.Path_mib.links

(* The macroflow appears at every delay-based scheduler of its path as one
   flow with rate = total allocation, delay = cd and the path MTU as
   maximum packet size. *)
let edf_update t mf ~old_total ~new_total =
  List.iter
    (fun edf ->
      if old_total > 0. then
        Vtedf.remove edf ~rate:old_total ~delay:mf.cls.cd ~lmax:Topology.mtu_bits;
      if new_total > 0. then
        Vtedf.add edf ~rate:new_total ~delay:mf.cls.cd ~lmax:Topology.mtu_bits)
    (edf_entries t mf)

let edf_can t mf ~old_total ~new_total =
  List.for_all
    (fun edf ->
      if old_total > 0. then
        Vtedf.remove edf ~rate:old_total ~delay:mf.cls.cd ~lmax:Topology.mtu_bits;
      let ok =
        new_total <= 0.
        || Vtedf.can_admit edf ~rate:new_total ~delay:mf.cls.cd ~lmax:Topology.mtu_bits
      in
      if old_total > 0. then
        Vtedf.add edf ~rate:old_total ~delay:mf.cls.cd ~lmax:Topology.mtu_bits;
      ok)
    (edf_entries t mf)

let reserve_links t mf amount =
  if amount > 0. then
    List.iter
      (fun (l : Topology.link) ->
        Node_mib.reserve t.node_mib ~link_id:l.Topology.link_id amount)
      mf.path.Path_mib.links

let release_links t mf amount =
  if amount > 0. then
    List.iter
      (fun (l : Topology.link) ->
        Node_mib.release t.node_mib ~link_id:l.Topology.link_id amount)
      mf.path.Path_mib.links

let steady_edge_bound mf =
  match mf.profile with
  | None -> 0.
  | Some p -> Delay.edge_bound p ~rate:mf.base

let notify_rate t mf =
  if Obs_log.active () then begin
    Obs_log.count "bb_agg_rate_changes_total"
      ~labels:[ ("class", string_of_int mf.cls.class_id) ];
    Obs_log.event ~at:(t.hooks.now ()) "bb.agg.rate_change"
      ~attrs:
        [
          ("class", string_of_int mf.cls.class_id);
          ("path", string_of_int mf.path.Path_mib.path_id);
          ("total", Printf.sprintf "%.6g" (total mf));
        ]
  end;
  t.hooks.rate_changed ~class_id:mf.cls.class_id ~path_id:mf.path.Path_mib.path_id
    ~total_rate:(total mf)

(* Release one contingency grant (idempotent: the grant may have been
   swept already by a queue-empty reset). *)
let release_grant t mf gid =
  match Hashtbl.find_opt mf.grants gid with
  | None -> ()
  | Some amount ->
      Hashtbl.remove mf.grants gid;
      if Obs_log.active () then begin
        Obs_log.count "bb_agg_contingency_releases_total"
          ~labels:[ ("class", string_of_int mf.cls.class_id) ];
        Obs_log.event ~at:(t.hooks.now ()) "bb.agg.contingency_release"
          ~attrs:
            [
              ("class", string_of_int mf.cls.class_id);
              ("path", string_of_int mf.path.Path_mib.path_id);
              ("amount", Printf.sprintf "%.6g" amount);
            ]
      end;
      let old_total = total mf in
      mf.conting <- Float.max 0. (mf.conting -. amount);
      release_links t mf amount;
      edf_update t mf ~old_total ~new_total:(total mf);
      if Hashtbl.length mf.grants = 0 then mf.edge_bound <- steady_edge_bound mf;
      notify_rate t mf

(* Grant [amount] of contingency bandwidth, already reserved on the links
   by the caller.  Under [Bounding] a release timer is armed with the
   period bound of eq. (17); under [Feedback] the grant waits for the
   queue-empty signal. *)
let add_grant t mf ~amount ~alloc_before =
  if amount > 0. then begin
    let gid = mf.next_grant in
    mf.next_grant <- mf.next_grant + 1;
    Hashtbl.replace mf.grants gid amount;
    mf.conting <- mf.conting +. amount;
    if Obs_log.active () then begin
      Obs_log.count "bb_agg_contingency_grants_total"
        ~labels:[ ("class", string_of_int mf.cls.class_id) ];
      Obs_log.event ~at:(t.hooks.now ()) "bb.agg.contingency_grant"
        ~attrs:
          [
            ("class", string_of_int mf.cls.class_id);
            ("path", string_of_int mf.path.Path_mib.path_id);
            ("amount", Printf.sprintf "%.6g" amount);
          ]
    end;
    match t.method_ with
    | Feedback -> ()
    | Bounding ->
        let tau = mf.edge_bound *. alloc_before /. amount in
        t.hooks.after (Float.max 0. tau) (fun () -> release_grant t mf gid)
  end

(* Minimal aggregate reserved rate meeting the class end-to-end bound.
   [core_rate] is the rate used in the macroflow core bound (the smaller of
   the rates across the change, per eq. (19)); [None] means the core bound
   also runs at the rate being solved for (first microflow). *)
let min_class_rate mf profile ~core_rate =
  let cls = mf.cls in
  let q = mf.path.Path_mib.rate_hops
  and dh = mf.path.Path_mib.delay_hops
  and d_tot = mf.path.Path_mib.d_tot in
  let ton = Traffic.t_on profile in
  let numer_edge = (ton *. profile.Traffic.peak) +. profile.Traffic.lmax in
  let cd_part = (float_of_int dh *. cls.cd) +. d_tot in
  match core_rate with
  | Some r_core ->
      let core =
        Delay.macroflow_core_bound ~hops:q ~path_lmax:Topology.mtu_bits ~rate:r_core
          ~d_tot:cd_part
      in
      let budget = cls.dreq -. core +. ton in
      if budget <= 0. then None else Some (numer_edge /. budget)
  | None ->
      let budget = cls.dreq -. cd_part +. ton in
      if budget <= 0. then None
      else Some ((numer_edge +. (float_of_int q *. Topology.mtu_bits)) /. budget)

let get_macro t ~class_id ~path =
  let key = (class_id, path.Path_mib.path_id) in
  match Hashtbl.find_opt t.macros key with
  | Some mf -> Some mf
  | None -> (
      match find_class t ~class_id with
      | None -> None
      | Some cls ->
          let mf =
            {
              cls;
              path;
              members = Hashtbl.create 16;
              profile = None;
              base = 0.;
              conting = 0.;
              grants = Hashtbl.create 8;
              next_grant = 0;
              edge_bound = 0.;
            }
          in
          Hashtbl.replace t.macros key mf;
          Some mf)

(* ------------------------------------------------------------------ *)

let join t ~class_id ~path ~flow profile =
  match get_macro t ~class_id ~path with
  | None -> Error (Types.Policy_denied "unknown service class")
  | Some mf -> (
      let new_profile =
        match mf.profile with
        | None -> profile
        | Some p -> Traffic.add p profile
      in
      (* The rate the class bound demands for the new aggregate; the core
         bound is evaluated at the pre-join rate when the macroflow already
         exists (eq. (19)). *)
      let core_rate = if Hashtbl.length mf.members = 0 then None else Some mf.base in
      match min_class_rate mf new_profile ~core_rate with
      | None -> Error Types.Delay_unachievable
      | Some r_delay ->
          (* Never below the aggregate sustained rate, never decreased by a
             join. *)
          let base' =
            Float.max mf.base (Float.max new_profile.Traffic.rho r_delay)
          in
          let increment = base' -. mf.base in
          let contingency = Float.max 0. (profile.Traffic.peak -. increment) in
          let extra = increment +. contingency in
          let cres = Path_mib.residual t.path_mib mf.path in
          if not (Fp.leq extra cres) then Error Types.Insufficient_bandwidth
          else if
            not
              (edf_can t mf ~old_total:(total mf)
                 ~new_total:(total mf +. extra))
          then Error Types.Not_schedulable
          else begin
            let alloc_before = total mf in
            let old_total = alloc_before in
            Hashtbl.replace mf.members flow profile;
            Hashtbl.replace t.owners flow (class_id, mf.path.Path_mib.path_id);
            mf.profile <- Some new_profile;
            mf.base <- base';
            reserve_links t mf extra;
            edf_update t mf ~old_total ~new_total:(old_total +. extra);
            add_grant t mf ~amount:contingency ~alloc_before;
            (* eq. (13): the edge bound after the change is at most the max
               of the old bound and the steady bound of the new aggregate. *)
            mf.edge_bound <- Float.max mf.edge_bound (steady_edge_bound mf);
            notify_rate t mf;
            Ok ()
          end)

let leave t ~flow =
  match Hashtbl.find_opt t.owners flow with
  | None -> invalid_arg (Printf.sprintf "Aggregate.leave: unknown flow %d" flow)
  | Some key ->
      Hashtbl.remove t.owners flow;
      let mf = Hashtbl.find t.macros key in
      if not (Hashtbl.mem mf.members flow) then assert false;
      Hashtbl.remove mf.members flow;
      let alloc_before = total mf in
      (* Re-aggregate from the surviving members rather than subtracting:
         immune to floating-point drift over long join/leave histories. *)
      let rest =
        if Hashtbl.length mf.members = 0 then None
        else
          Some
            (Traffic.aggregate
               (Hashtbl.fold (fun _ p acc -> p :: acc) mf.members []))
      in
      let base' =
        match rest with
        | None -> 0.
        | Some p ->
            (* eq. (19) on a leave reduces to the steady condition at the
               new (smaller) rate, whose core bound is evaluated at that
               same rate — solved by [min_class_rate] with the closed
               form. *)
            let r_delay =
              match min_class_rate mf p ~core_rate:None with
              | Some r -> r
              | None -> mf.base
            in
            Float.min mf.base (Float.max p.Traffic.rho r_delay)
      in
      let decrement = mf.base -. base' in
      mf.profile <- rest;
      mf.base <- base';
      (* Theorem 3: keep serving at the old allocation; the decrement
         becomes contingency bandwidth and is only released after the
         contingency period (or the queue-empty signal). *)
      add_grant t mf ~amount:decrement ~alloc_before;
      mf.edge_bound <- Float.max mf.edge_bound (steady_edge_bound mf);
      notify_rate t mf

let evacuate t ~class_id ~path_id =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> []
  | Some mf ->
      let members =
        Hashtbl.fold (fun flow p acc -> (flow, p) :: acc) mf.members []
        |> List.sort compare
      in
      let old_total = total mf in
      (* Hard-release everything at once — base and contingency alike.  No
         contingency period applies: the path is gone, so there is no edge
         backlog left to drain through it.  Pending bounding timers find
         their grants already swept and fire as no-ops. *)
      Hashtbl.reset mf.grants;
      mf.conting <- 0.;
      mf.base <- 0.;
      mf.profile <- None;
      mf.edge_bound <- 0.;
      release_links t mf old_total;
      edf_update t mf ~old_total ~new_total:0.;
      Hashtbl.reset mf.members;
      List.iter (fun (flow, _) -> Hashtbl.remove t.owners flow) members;
      Hashtbl.remove t.macros (class_id, path_id);
      notify_rate t mf;
      members

let queue_empty t ~class_id ~path_id =
  match t.method_ with
  | Bounding -> ()
  | Feedback -> (
      match Hashtbl.find_opt t.macros (class_id, path_id) with
      | None -> ()
      | Some mf ->
          let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) mf.grants [] in
          List.iter (release_grant t mf) (List.sort compare gids))

(* ------------------------------------------------------------------ *)
(* Snapshot / journal support: exact restoration of the contingency
   pool, and anti-entropy repair of the membership tables.             *)

let sweep_contingency t ~class_id ~path_id =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> ()
  | Some mf ->
      (* Unconditional (method-independent) release of every grant: used
         by snapshot restore to clear the grants the member replay
         created before re-establishing the saved contingency pool. *)
      let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) mf.grants [] in
      List.iter (release_grant t mf) (List.sort compare gids);
      (* With no grants left the pool is definitionally empty; clear the
         float residue the incremental subtractions can leave, so grants
         re-established on top of it restore the pool bit-exactly. *)
      if mf.conting <> 0. then begin
        let old_total = total mf in
        release_links t mf mf.conting;
        mf.conting <- 0.;
        edf_update t mf ~old_total ~new_total:(total mf);
        notify_rate t mf
      end

let grant_amounts t ~class_id ~path_id =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> []
  | Some mf ->
      Hashtbl.fold (fun gid amount acc -> (gid, amount) :: acc) mf.grants []
      |> List.sort compare |> List.map snd

let restore_grant t ~class_id ~path_id ~amount =
  if amount <= 0. then Ok ()
  else
    match Hashtbl.find_opt t.macros (class_id, path_id) with
    | None -> Error (Types.Policy_denied "unknown macroflow")
    | Some mf ->
        let cres = Path_mib.residual t.path_mib mf.path in
        if not (Fp.leq amount cres) then Error Types.Insufficient_bandwidth
        else if not (edf_can t mf ~old_total:(total mf) ~new_total:(total mf +. amount))
        then Error Types.Not_schedulable
        else begin
          let alloc_before = total mf in
          reserve_links t mf amount;
          edf_update t mf ~old_total:alloc_before ~new_total:(alloc_before +. amount);
          add_grant t mf ~amount ~alloc_before;
          notify_rate t mf;
          Ok ()
        end

let set_edge_bound t ~class_id ~path_id bound =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> ()
  | Some mf -> mf.edge_bound <- bound

let repair_membership t =
  let fixes = ref 0 in
  (* Owner entries pointing at a missing macroflow, or at one that does
     not list the flow as a member: drop them. *)
  let stale =
    Hashtbl.fold
      (fun flow key acc ->
        match Hashtbl.find_opt t.macros key with
        | Some mf when Hashtbl.mem mf.members flow -> acc
        | _ -> flow :: acc)
      t.owners []
  in
  List.iter
    (fun flow ->
      Hashtbl.remove t.owners flow;
      incr fixes)
    stale;
  (* Members with no (or a wrong) owner entry: re-adopt them — the member
     table is what the rate accounting is derived from, so it wins. *)
  Hashtbl.iter
    (fun key (mf : macroflow) ->
      let dangling =
        Hashtbl.fold
          (fun flow _ acc ->
            match Hashtbl.find_opt t.owners flow with
            | Some k when k = key -> acc
            | _ -> flow :: acc)
          mf.members []
      in
      List.iter
        (fun flow ->
          Hashtbl.replace t.owners flow key;
          incr fixes)
        dangling)
    t.macros;
  !fixes

let owners_alist t =
  Hashtbl.fold (fun flow key acc -> (flow, key) :: acc) t.owners []
  |> List.sort compare

let macroflow_stats t ~class_id ~path_id =
  Option.map
    (fun (mf : macroflow) ->
      {
        class_id;
        path_id;
        members = Hashtbl.length mf.members;
        base_rate = mf.base;
        contingency = mf.conting;
        edge_bound = mf.edge_bound;
      })
    (Hashtbl.find_opt t.macros (class_id, path_id))

let all_macroflows t =
  Hashtbl.fold
    (fun (class_id, path_id) _ acc ->
      match macroflow_stats t ~class_id ~path_id with
      | Some s -> s :: acc
      | None -> acc)
    t.macros []
  |> List.sort compare

let member_count t = Hashtbl.length t.owners

let owner t ~flow = Hashtbl.find_opt t.owners flow

let members t ~class_id ~path_id =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> []
  | Some mf ->
      Hashtbl.fold (fun flow p acc -> (flow, p) :: acc) mf.members []
      |> List.sort compare

let path_endpoints t ~class_id ~path_id =
  match Hashtbl.find_opt t.macros (class_id, path_id) with
  | None -> None
  | Some mf -> (
      match mf.path.Path_mib.links with
      | [] -> None
      | first :: _ as links ->
          let last = List.nth links (List.length links - 1) in
          Some (first.Topology.src, last.Topology.dst))
