(** Write-ahead journal of broker state mutations.

    PR 1's warm-standby failover restores the last periodic checkpoint,
    losing every admission since.  The journal closes that gap: every
    {!Broker.mutation} is appended — CRC-32 per record, before the
    decision leaves the broker — so a standby can reconstruct the crashed
    primary exactly as [checkpoint + journal tail].

    {b Format.}  Versioned line-oriented text.  A header line, then one
    record per line:

    {v <crc32-hex> <seq> <at> <payload> v}

    [crc32] covers everything after it; [seq] is a monotonic record
    number (a gap means lost records); [at] is the broker clock;
    [payload] is the mutation, floats in lossless [%h] notation and paths
    named by their link-id sequences (path {e ids} are not portable
    across brokers).

    {b Durability model.}  The in-memory writer mirrors a file that is
    fsynced every [fsync_every] records.  Like a real WAL writer it group
    commits: records are held unencoded on the commit path (a cons per
    mutation) and serialized when the journal text is materialized at a
    durability boundary.  {!crash_cut} models a crash:
    records past the last fsync boundary are lost, and the first of them
    survives as a torn half-record, exactly what a power cut leaves
    behind.  {!parse} and {!replay} tolerate a torn or corrupt tail by
    truncating at the first bad record and warning — they never raise.

    {b Compaction.}  A checkpoint makes the journal prefix redundant:
    {!Failover.checkpoint} calls {!compact} after snapshotting, so the
    journal always holds exactly the tail since the last checkpoint. *)

type t

val header : string
(** First line of every journal: ["bbr-journal v1"]. *)

(** {1 Writing} *)

val create : ?fsync_every:int -> ?storage:Storage.t -> unit -> t
(** A fresh, empty journal.  [fsync_every] (default 1) is the number of
    records between durability boundaries; 1 means every record survives
    a crash.  With [storage], every record is also written through to the
    segmented store ({!Storage.sink}) at append time and fsynced at the
    same boundaries — the in-memory log stays the live process state, the
    store is the disk.  Raises [Invalid_argument] when [< 1]. *)

val attach : t -> Broker.t -> unit
(** Install the journal as the broker's mutation hook: every subsequent
    mutation is appended, stamped with the broker clock.  Also installs
    the broker's batch hook, so {!Broker.request_batch} commits as one
    {!group}. *)

val group : t -> (unit -> 'a) -> 'a
(** Group commit: records appended while [f] runs are held back from the
    per-record fsync boundaries and all become durable together when [f]
    returns — one fsync for the whole batch.  {!synced_records} excludes
    them until then.  Nested groups join the outermost one.  If [f]
    raises, the group aborts and the records fall back to the ordinary
    [fsync_every] boundaries. *)

val append : t -> at:float -> Broker.mutation -> unit
(** Append one record (what {!attach} arranges to happen on every
    mutation). *)

val compact : t -> unit
(** Drop all records: the state they rebuilt is covered by a newer
    checkpoint. *)

val records : t -> int
(** Records currently in the journal (since the last {!compact}). *)

val appended_total : t -> int
(** Records ever appended, across compactions — the record-boundary
    count crash-point injection triggers on. *)

val synced_records : t -> int
(** Records up to the last durability boundary — what a crash right now
    is guaranteed to keep: the last [fsync_every] modulo boundary, capped
    at the start of any still-open {!group}, raised by any completed
    group commit. *)

val on_record : t -> (int -> unit) -> unit
(** Install a callback fired after every append with {!appended_total} —
    the hook fault injection uses to kill a broker at an exact record
    boundary. *)

val text : t -> string
(** Serialize: header, records oldest first, then the torn fragment (no
    trailing newline) if a {!crash_cut} left one. *)

(** {1 Crash modelling} *)

val drop_tail : ?torn:bool -> t -> records:int -> unit
(** Lose the newest [records] records (clamped).  With [~torn:true] the
    oldest lost record survives as a half-written fragment. *)

val crash_cut : t -> int
(** Truncate to the last fsync boundary, leaving the first unsynced
    record torn; returns the number of records lost.  0 when
    [fsync_every = 1]. *)

(** {1 Reading} *)

val parse : string -> ((float * Broker.mutation) list * string option, string) result
(** Decode a journal.  [Error] only for a missing/bad header; anything
    wrong after that — CRC mismatch, sequence gap, torn or malformed
    record — truncates the journal at the first bad record and comes back
    as [Ok (prefix, Some warning)].  Never raises. *)

type replay_outcome = {
  applied : int;  (** records applied *)
  warning : string option;  (** tail-truncation warning from {!parse} *)
}

val replay : Broker.t -> string -> (replay_outcome, string) result
(** Apply every journaled mutation, in order, to [broker] — normally a
    standby freshly restored from the matching checkpoint.  Admissions
    re-book under their original flow ids and rates; link records change
    only topology state (the recovery cascade is journaled record by
    record).  [Error] when the header is bad or a re-booking fails, in
    which case the broker may be partially updated — replay into a fresh
    broker, as {!Failover.promote} does.  Never raises. *)

val encode : seq:int -> at:float -> Broker.mutation -> string
(** One record line (without the newline) — exposed for fuzzing. *)

val text_of_lines : string list -> string
(** A parseable journal text from raw record lines (as {!Storage.tail}
    returns them): the header line plus each line newline-terminated —
    the glue between a recovered storage suffix and {!replay}. *)

val apply : Broker.t -> Broker.mutation -> (unit, string) result
(** Apply one decoded mutation — {!replay}'s step function, exposed so
    recovery oracles can walk a tail record by record and digest every
    intermediate prefix state. *)
