(** Incremental admission fast path.

    The paper's complexity claims — O(1) rate-based admission, O(M)
    mixed-path admission over the merged breakpoint table (Sections
    3.1–3.2) — assume the per-path state is {e maintained}, not rebuilt per
    request.  This cache keeps, for every registered path, a cached
    {!Admission.path_state} and a merged breakpoint table
    ({!Admission.merged}) kept consistent incrementally:

    - one {b per-link} breakpoint cache shared by all paths crossing the
      link, refreshed through {!Bbr_vtrs.Vtedf.refresh_breakpoints} — a
      flow add/remove recomputes only the table suffix starting at the
      touched delay class;
    - one {b per-path} merged table, re-merged (allocation-free H-way merge
      into reused buffers) only when a crossed scheduler's version counter
      moved.

    Invalidation is by epochs with {e lazy} revalidation: reserve/release
    bumps the link's epoch (via {!Node_mib.on_change}); scheduler mutations
    bump the {!Bbr_vtrs.Vtedf.version} counter; link failure/restore and
    snapshot/journal restore bump a global epoch through
    {!invalidate_all}.  Nothing is recomputed at mutation time — a burst of
    mutations costs one rebuild per path at its next query.

    The cache is digest-neutral by construction: the values handed out are
    element-wise identical to a fresh {!Admission.path_state} plus
    {!Admission.merge_breakpoints}, so decisions and MIB digests match the
    uncached path exactly. *)

type t

val create : Node_mib.t -> Path_mib.t -> t
(** Registers a {!Node_mib.on_change} hook.  Create at most one cache per
    [Node_mib.t]: each cache assumes it is the single consumer of the
    schedulers' incremental refresh API. *)

val path_state : t -> Path_mib.info -> Admission.path_state
(** The path's current {!Admission.path_state}, revalidated lazily (only
    the residual can change; the static fields and scheduler list are
    stable).  Suitable for {!Admission.schedulable}-style checks that read
    the schedulers directly. *)

val query : t -> Path_mib.info -> Admission.path_state * Admission.merged
(** {!path_state} plus the path's merged breakpoint table for
    {!Admission.admit}'s [?bps].  The returned [merged] aliases internal
    buffers: it is valid until the next [query] on the same path. *)

val invalidate_all : t -> unit
(** Bump the global epoch: every cached path revalidates at its next
    query.  Called by the broker on link failure/restore and by state
    restoration paths. *)

type stats = {
  paths : int;  (** cached path entries *)
  hits : int;  (** queries answered with no recomputation *)
  revalidations : int;  (** path_state refreshes (residual re-read) *)
  link_refreshes : int;  (** per-link incremental breakpoint refreshes *)
  merges : int;  (** per-path H-way re-merges *)
}

val stats : t -> stats
