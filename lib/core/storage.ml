module Vfs = Bbr_util.Vfs
module Crc32 = Bbr_util.Crc32
module Flight = Bbr_obs.Flight

type t = {
  vfs : Vfs.t;
  rotate_every : int;
  mutable active : int;  (* segment number currently appended to *)
  mutable active_records : int;  (* appends since the last rotation *)
  mutable next_gen : int;
  mutable write_errors : int;
}

let seg_prefix = "seg-"
let seg_suffix = ".log"
let seg_name n = Printf.sprintf "%s%06d%s" seg_prefix n seg_suffix
let slot_a = "ckpt.a"
let slot_b = "ckpt.b"
let shadow = "ckpt.tmp"

let seg_no name =
  if
    String.length name = String.length (seg_name 0)
    && String.sub name 0 (String.length seg_prefix) = seg_prefix
    && Filename.check_suffix name seg_suffix
  then
    int_of_string_opt
      (String.sub name (String.length seg_prefix)
         (String.length name - String.length seg_prefix - String.length seg_suffix))
  else None

(* Live segments, (number, file) sorted ascending; quarantined [*.quar]
   files never match. *)
let segments t =
  List.filter_map (fun name -> Option.map (fun n -> (n, name)) (seg_no name))
    (Vfs.list t.vfs)

let detect kind =
  if Obs_log.active () then
    Obs_log.count "bb_storage_scrub_errors_total" ~labels:[ ("kind", kind) ]

let write_error t kind =
  t.write_errors <- t.write_errors + 1;
  if Obs_log.active () then
    Obs_log.count "bb_storage_write_errors_total" ~labels:[ ("kind", kind) ]

let absorb t op =
  match op with
  | Ok () -> ()
  | Error e -> write_error t (Vfs.error_label e)

(* ----------------------------------------------------------------- *)
(* Checkpoint slots *)

(* [Some (gen, cover, body)] iff the slot text is complete and CRC-clean.
   The CRC on line 1 covers everything after it — metadata included, so
   a flipped cover digit is as detectable as a flipped snapshot byte. *)
let parse_ckpt text =
  match String.index_opt text '\n' with
  | None -> None
  | Some nl -> (
      let first = String.sub text 0 nl in
      let payload = String.sub text (nl + 1) (String.length text - nl - 1) in
      match String.split_on_char ' ' first with
      | [ "bbr-ckpt"; "v1"; crc_s ] -> (
          match Crc32.of_hex crc_s with
          | Some crc when crc = Crc32.string payload -> (
              match String.index_opt payload '\n' with
              | None -> None
              | Some nl2 -> (
                  let meta = String.sub payload 0 nl2 in
                  let body =
                    String.sub payload (nl2 + 1) (String.length payload - nl2 - 1)
                  in
                  match String.split_on_char ' ' meta with
                  | [ "gen"; g; "cover"; c ] -> (
                      match (int_of_string_opt g, int_of_string_opt c) with
                      | Some g, Some c when g >= 0 && c >= 0 -> Some (g, c, body)
                      | _ -> None)
                  | _ -> None))
          | _ -> None)
      | _ -> None)

let slot_candidates t =
  List.filter_map
    (fun slot ->
      match Vfs.read t.vfs ~name:slot with
      | Error _ -> None
      | Ok text -> parse_ckpt text)
    [ slot_a; slot_b ]

let slots_present t =
  List.length (List.filter (fun s -> Vfs.exists t.vfs ~name:s) [ slot_a; slot_b ])

(* ----------------------------------------------------------------- *)

let create ?(rotate_every = 64) ~vfs () =
  if rotate_every < 1 then invalid_arg "Storage.create: rotate_every must be >= 1";
  let t =
    { vfs; rotate_every; active = 0; active_records = 0; next_gen = 1;
      write_errors = 0 }
  in
  (match List.rev (segments t) with
  | (n, _) :: _ -> t.active <- n + 1
  | [] -> ());
  List.iter
    (fun (g, _, _) -> if g >= t.next_gen then t.next_gen <- g + 1)
    (slot_candidates t);
  t

let vfs t = t.vfs

let write_errors t = t.write_errors

(* ----------------------------------------------------------------- *)
(* Append path *)

let seal_active t =
  let name = seg_name t.active in
  if Vfs.exists t.vfs ~name then begin
    (* A torn final line must not merge with the footer. *)
    (match Vfs.read t.vfs ~name with
    | Ok c when String.length c > 0 && c.[String.length c - 1] <> '\n' ->
        absorb t (Vfs.append t.vfs ~name "\n")
    | _ -> ());
    (match Vfs.read t.vfs ~name with
    | Error e -> write_error t (Vfs.error_label e)
    | Ok content ->
        (* The footer checksums the record region exactly as it sits on
           disk: "has this segment changed since sealing?" is a separate
           question from "is every record in it valid?", which the
           per-record CRCs answer. *)
        let region =
          match String.index_opt content '\n' with
          | None -> ""
          | Some nl -> String.sub content (nl + 1) (String.length content - nl - 1)
        in
        let count = String.fold_left (fun n ch -> if ch = '\n' then n + 1 else n) 0 region in
        let footer =
          Printf.sprintf "seal %d %s\n" count (Crc32.to_hex (Crc32.string region))
        in
        absorb t (Vfs.append t.vfs ~name footer);
        absorb t (Vfs.fsync t.vfs ~name));
    t.active <- t.active + 1;
    t.active_records <- 0
  end

let put t line =
  let name = seg_name t.active in
  if not (Vfs.exists t.vfs ~name) then
    absorb t (Vfs.append t.vfs ~name (Printf.sprintf "bbr-seg v1 %d\n" t.active));
  absorb t (Vfs.append t.vfs ~name (line ^ "\n"));
  t.active_records <- t.active_records + 1;
  if t.active_records >= t.rotate_every then seal_active t

let sync t =
  let name = seg_name t.active in
  if Vfs.exists t.vfs ~name then
    match Vfs.fsync t.vfs ~name with
    | Ok () -> ()
    | Error e -> write_error t ("fsync_" ^ Vfs.error_label e)

let sink t = { Wal.put = (fun line -> put t line); sync = (fun () -> sync t) }

(* ----------------------------------------------------------------- *)
(* Segment surveying *)

type seg_info = {
  sg_header_ok : bool;
  sg_sealed : bool;
  sg_seal_ok : bool;  (* meaningless unless [sg_sealed] *)
  sg_lines : string list;  (* record region, raw lines *)
}

let survey t (no, name) =
  match Vfs.read t.vfs ~name with
  | Error _ ->
      { sg_header_ok = false; sg_sealed = false; sg_seal_ok = false; sg_lines = [] }
  | Ok content ->
      let header_ok, rest =
        match String.index_opt content '\n' with
        | None -> (false, "")
        | Some nl ->
            ( String.sub content 0 nl = Printf.sprintf "bbr-seg v1 %d" no,
              String.sub content (nl + 1) (String.length content - nl - 1) )
      in
      (* The footer, if any, is the last newline-terminated line. *)
      let sealed, seal_ok, region =
        if String.length rest = 0 || rest.[String.length rest - 1] <> '\n' then
          (false, false, rest)
        else
          let wlen = String.length rest - 1 in
          let last_start =
            match String.rindex_from_opt rest (wlen - 1) '\n' with
            | Some i -> i + 1
            | None -> 0
            | exception Invalid_argument _ -> 0
          in
          let last = String.sub rest last_start (wlen - last_start) in
          match String.split_on_char ' ' last with
          | [ "seal"; count_s; crc_s ] -> (
              let region = String.sub rest 0 last_start in
              match (int_of_string_opt count_s, Crc32.of_hex crc_s) with
              | Some count, Some crc ->
                  let nls =
                    String.fold_left
                      (fun n ch -> if ch = '\n' then n + 1 else n)
                      0 region
                  in
                  (true, count = nls && crc = Crc32.string region, region)
              | _ -> (true, false, region))
          | _ -> (false, false, rest)
      in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' region)
      in
      { sg_header_ok = header_ok; sg_sealed = sealed; sg_seal_ok = seal_ok;
        sg_lines = lines }

let quarantine t name ~kind =
  ignore (Vfs.rename t.vfs ~src:name ~dst:(name ^ ".quar"));
  detect kind;
  if Obs_log.active () then Obs_log.count "bb_storage_quarantined_total";
  Flight.trigger
    ~reason:(Printf.sprintf "storage: sealed segment %s corrupt (%s)" name kind)

let max_seq_of t (no, name) =
  let info = survey t (no, name) in
  List.fold_left
    (fun acc line ->
      match Wal.seq_of_line line with Some s -> max acc s | None -> acc)
    (-1) info.sg_lines

(* ----------------------------------------------------------------- *)
(* Recovery suffix *)

type tail = {
  lines : string list;
  records : int;
  truncated : string option;
  quarantined : string list;
}

let tail_from t ~cover =
  let segs = segments t in
  let last_no = match List.rev segs with (n, _) :: _ -> n | [] -> -1 in
  let out = ref [] and nout = ref 0 in
  let truncated = ref None and quar = ref [] in
  let expected = ref cover in
  (* Corruption is not fatal at the point it is found.  Checkpoints sit
     on segment boundaries, so a rotted sealed segment — like a CRC-dead
     line — may hide only records every surviving checkpoint already
     absorbed.  A detection therefore becomes a {e pending hole}: if a
     later valid record resumes the chain exactly at [expected], the
     hole provably hid nothing the checkpoint lacks and replay
     continues; if the chain gaps, or the log ends, while a hole is
     pending, the tail truncates at the hole.  The accounting thunk runs
     only when the hole proves fatal — segment-level detections meter
     themselves eagerly (quarantine has already happened either way),
     torn lines only if they actually cut the replay. *)
  let pending = ref None in
  let hole descr account = if !pending = None then pending := Some (descr, account) in
  let cut (descr, account) =
    truncated := Some descr;
    account ()
  in
  let seg_corrupt reason kind ~sealed ~name =
    if sealed then begin
      quarantine t name ~kind;
      quar := name :: !quar
    end
    else detect kind;
    hole reason (fun () -> ())
  in
  (* [prev_no] tracks only surveyed segments: pruning always removes a
     contiguous segno prefix, so an interior gap among segments that
     matter means a quarantined or lost file. *)
  let prev_no = ref None in
  List.iter
    (fun (no, name) ->
      if !truncated = None then begin
        let info = survey t (no, name) in
        let is_last = no = last_no in
        let all_valid =
          List.for_all (fun l -> Wal.seq_of_line l <> None) info.sg_lines
        in
        let max_seq =
          List.fold_left
            (fun acc l ->
              match Wal.seq_of_line l with Some s -> max acc s | None -> acc)
            (-1) info.sg_lines
        in
        if
          info.sg_header_ok && info.sg_sealed && info.sg_seal_ok && all_valid
          && max_seq < cover
        then
          (* Intact and wholly beneath the checkpoint: retained only for
             an older generation's sake; nothing here is replayed. *)
          ()
        else begin
          (match !prev_no with
          | Some p when no <> p + 1 ->
              detect "missing_segment";
              hole
                (Printf.sprintf "segment %d missing (quarantined or lost)" (p + 1))
                (fun () -> ())
          | _ -> ());
          prev_no := Some no;
          if not info.sg_header_ok then
            seg_corrupt
              (Printf.sprintf "segment %s: bad header" name)
              "header" ~sealed:(not is_last) ~name
          else if info.sg_sealed && not info.sg_seal_ok then
            seg_corrupt
              (Printf.sprintf
                 "segment %s: footer mismatch (bytes changed since seal)" name)
              "footer" ~sealed:true ~name
          else if (not info.sg_sealed) && not is_last then
            seg_corrupt
              (Printf.sprintf "segment %s: missing footer on non-active segment"
                 name)
              "footer" ~sealed:true ~name
          else
            List.iter
              (fun line ->
                if !truncated = None then
                  match Wal.seq_of_line line with
                  | Some seq when seq < cover -> ()
                  | Some seq when seq = !expected ->
                      pending := None;
                      expected := seq + 1;
                      out := line :: !out;
                      incr nout
                  | Some seq -> (
                      match !pending with
                      | Some p -> cut p
                      | None ->
                          truncated :=
                            Some
                              (Printf.sprintf
                                 "segment %s: sequence gap before record %d \
                                  (expected %d)"
                                 name seq !expected);
                          detect "seq_gap")
                  | None ->
                      (* A CRC-dead record inside a bytes-intact sealed
                         segment is still sealed-segment corruption
                         (torn at write time, sealed over). *)
                      let kind = if info.sg_sealed then "record_crc" else "torn" in
                      hole
                        (Printf.sprintf "segment %s: torn or corrupt record" name)
                        (fun () ->
                          detect kind;
                          if kind = "record_crc" then
                            Flight.trigger
                              ~reason:
                                (Printf.sprintf
                                   "storage: sealed segment %s holds a corrupt \
                                    record"
                                   name)))
              info.sg_lines
        end
      end)
    segs;
  (match (!truncated, !pending) with
  | None, Some p -> cut p
  | _ -> ());
  { lines = List.rev !out; records = !nout; truncated = !truncated;
    quarantined = List.rev !quar }

(* ----------------------------------------------------------------- *)
(* Checkpoints *)

let candidates t =
  List.sort (fun (g1, _, _) (g2, _, _) -> compare g2 g1) (slot_candidates t)

let newest_slot t =
  let best = ref None in
  List.iter
    (fun slot ->
      match Vfs.read t.vfs ~name:slot with
      | Error _ -> ()
      | Ok text -> (
          match parse_ckpt text with
          | Some (g, _, _) -> (
              match !best with
              | Some (g', _) when g' >= g -> ()
              | _ -> best := Some (g, slot))
          | None -> ()))
    [ slot_a; slot_b ];
  Option.map snd !best

let prune t =
  match candidates t with
  | [] -> ()
  | cs ->
      let min_cover = List.fold_left (fun m (_, c, _) -> min m c) max_int cs in
      List.iter
        (fun (no, name) ->
          if no < t.active && max_seq_of t (no, name) < min_cover then
            Vfs.remove t.vfs ~name)
        (segments t)

let checkpoint t ~cover body =
  (* Rotate so checkpoints sit on segment boundaries and pruning can
     drop whole segments. *)
  seal_active t;
  let gen = t.next_gen in
  let payload = Printf.sprintf "gen %d cover %d\n%s" gen cover body in
  let text =
    Printf.sprintf "bbr-ckpt v1 %s\n%s" (Crc32.to_hex (Crc32.string payload)) payload
  in
  let wrote = Vfs.write t.vfs ~name:shadow text in
  let synced = match wrote with Ok () -> Vfs.fsync t.vfs ~name:shadow | e -> e in
  let verified =
    match (synced, Vfs.read t.vfs ~name:shadow) with
    | Ok (), Ok back -> back = text
    | _ -> false
  in
  if verified then begin
    let target =
      match newest_slot t with
      | Some s when s = slot_a -> slot_b
      | Some _ -> slot_a
      | None -> slot_a
    in
    match Vfs.rename t.vfs ~src:shadow ~dst:target with
    | Ok () ->
        t.next_gen <- gen + 1;
        prune t;
        if Obs_log.active () then Obs_log.count "bb_storage_checkpoints_total";
        Ok gen
    | Error e ->
        write_error t (Vfs.error_label e);
        Error "checkpoint rename failed"
  end
  else begin
    (match wrote with Error e -> write_error t (Vfs.error_label e) | Ok () -> ());
    Vfs.remove t.vfs ~name:shadow;
    if Obs_log.active () then Obs_log.count "bb_storage_checkpoint_failures_total";
    Error "checkpoint shadow failed verification; previous generations kept"
  end

(* ----------------------------------------------------------------- *)
(* Scrub *)

type scrub_report = {
  segments_checked : int;
  errors : (string * string) list;
  quarantined_files : string list;
  checkpoints_ok : int;
  checkpoints_bad : int;
}

let scrub_clean r = r.errors = [] && r.checkpoints_bad = 0

let scrub t =
  let segs = segments t in
  let last_no = match List.rev segs with (n, _) :: _ -> n | [] -> -1 in
  let errors = ref [] and quar = ref [] in
  let err name kind ~sealed =
    errors := (name, kind) :: !errors;
    if sealed then begin
      quar := name :: !quar;
      quarantine t name ~kind
    end
    else detect kind
  in
  List.iter
    (fun (no, name) ->
      let info = survey t (no, name) in
      let is_last = no = last_no in
      if not info.sg_header_ok then err name "header" ~sealed:(not is_last)
      else if info.sg_sealed && not info.sg_seal_ok then
        err name "footer" ~sealed:true
      else if (not info.sg_sealed) && not is_last then
        err name "footer" ~sealed:true
      else begin
        (* Bytes are as sealed (or this is the live tail): validate the
           records themselves.  Within one segment sequence numbers must
           be contiguous. *)
        let expected = ref None in
        let bad = ref false in
        List.iter
          (fun line ->
            if not !bad then
              match Wal.seq_of_line line with
              | Some seq -> (
                  match !expected with
                  | Some e when seq <> e -> bad := true
                  | _ -> expected := Some (seq + 1))
              | None -> bad := true)
          info.sg_lines;
        if !bad then begin
          let kind = if info.sg_sealed then "record_crc" else "torn" in
          errors := (name, kind) :: !errors;
          detect kind;
          if info.sg_sealed then
            Flight.trigger
              ~reason:
                (Printf.sprintf "storage: sealed segment %s corrupt (%s)" name kind)
        end
      end)
    segs;
  let ok = ref 0 and bad = ref 0 in
  List.iter
    (fun slot ->
      match Vfs.read t.vfs ~name:slot with
      | Error _ -> ()
      | Ok text -> (
          match parse_ckpt text with
          | Some _ -> incr ok
          | None ->
              incr bad;
              errors := (slot, "checkpoint") :: !errors;
              detect "checkpoint"))
    [ slot_a; slot_b ];
  {
    segments_checked = List.length segs;
    errors = List.rev !errors;
    quarantined_files = List.rev !quar;
    checkpoints_ok = !ok;
    checkpoints_bad = !bad;
  }

(* ----------------------------------------------------------------- *)

let crash t = Vfs.crash t.vfs

let bitrot_checkpoint t =
  match newest_slot t with
  | None -> None
  | Some slot ->
      ignore (Vfs.bitrot t.vfs ~name:slot);
      Some slot
