(** Policy information base (paper Figure 1).

    Before any resource test, the broker checks an incoming service request
    against an ordered list of administrative rules.  A rule matches on
    request attributes and either allows or denies; the first matching rule
    wins, and an overridable default applies when none match. *)

type action = Allow | Deny

type t

val create : ?default:action -> unit -> t
(** [default] is [Allow]. *)

val add_rule : t -> name:string -> matches:(Types.request -> bool) -> action -> unit
(** Appends a rule (lowest priority so far). *)

val add_ingress_rule : t -> name:string -> ingress:string -> action -> unit
(** Convenience: match on the ingress router. *)

val add_peak_limit : t -> name:string -> max_peak:float -> unit
(** Convenience: deny any request whose profile peak rate exceeds
    [max_peak]. *)

val add_delay_floor : t -> name:string -> min_dreq:float -> unit
(** Convenience: deny requests asking for an end-to-end bound below
    [min_dreq] (e.g. bounds the provider never sells). *)

val add_priority_rule :
  t -> name:string -> matches:(Types.request -> bool) -> priority:int -> unit
(** Classification rule for overload shedding: requests matching [matches]
    get importance [priority] (higher = more important; shed last).  Like
    allow/deny rules, the first matching priority rule wins. *)

val priority : t -> Types.request -> int
(** Importance of a request under the priority rules; [0] when none
    match. *)

val check : t -> Types.request -> (unit, string) result
(** [Error rule_name] when denied. *)

val rule_count : t -> int
