(** Shared control-plane types of the bandwidth broker. *)

type flow_id = int

(** A new-flow service request, as sent by an ingress router to the broker
    (paper Section 2.2): the flow's dual-token-bucket traffic profile, its
    end-to-end delay requirement [D^{j,req}], and where it enters and leaves
    the domain. *)
type request = {
  profile : Bbr_vtrs.Traffic.t;
  dreq : float;  (** end-to-end delay requirement, seconds *)
  ingress : string;
  egress : string;
}

(** The QoS reservation the broker hands back to the ingress router for
    edge-conditioner (re)configuration: the rate–delay parameter pair
    [<r^j, d^j>].  [delay] is 0 on paths with no delay-based scheduler. *)
type reservation = { rate : float; delay : float }

type reject_reason =
  | Policy_denied of string  (** failed the policy information base *)
  | No_route  (** no ingress→egress path in the domain *)
  | Insufficient_bandwidth  (** residual bandwidth along the path too small *)
  | Delay_unachievable
      (** no rate–delay pair can meet the requested bound on this path,
          regardless of load *)
  | Not_schedulable
      (** a delay-based scheduler along the path would violate its
          schedulability condition *)
  | Server_busy of { retry_after : float }
      (** the broker's admission pipeline is overloaded and shed the
          request before deciding it; the PEP should back off (with
          jitter) for [retry_after] seconds and resubmit *)
  | Peer_unreachable of string
      (** an inter-domain transaction gave up on the named peer domain:
          every PREPARE retransmission timed out (crash, partition, or
          sustained loss), so the coordinator compensated the segments
          it had booked elsewhere and failed the request *)

type decision = Admitted of reservation | Rejected of reject_reason

(* Stable machine-readable labels for metrics and the decision log; every
   component that accounts for rejections must go through this one map. *)
let reject_label = function
  | Policy_denied _ -> "policy_denied"
  | No_route -> "no_route"
  | Insufficient_bandwidth -> "insufficient_bandwidth"
  | Delay_unachievable -> "delay_unachievable"
  | Not_schedulable -> "not_schedulable"
  | Server_busy _ -> "server_busy"
  | Peer_unreachable _ -> "peer_unreachable"

let pp_reject_reason ppf = function
  | Policy_denied rule -> Fmt.pf ppf "policy denied (rule %s)" rule
  | No_route -> Fmt.string ppf "no route"
  | Insufficient_bandwidth -> Fmt.string ppf "insufficient bandwidth"
  | Delay_unachievable -> Fmt.string ppf "delay requirement unachievable"
  | Not_schedulable -> Fmt.string ppf "not schedulable"
  | Server_busy { retry_after } ->
      Fmt.pf ppf "server busy (retry after %g s)" retry_after
  | Peer_unreachable domain -> Fmt.pf ppf "peer domain %s unreachable" domain

let pp_decision ppf = function
  | Admitted r -> Fmt.pf ppf "admitted (rate=%g delay=%g)" r.rate r.delay
  | Rejected reason -> Fmt.pf ppf "rejected: %a" pp_reject_reason reason

let is_admitted = function Admitted _ -> true | Rejected _ -> false

(** A quota lease, as delegated by a central broker to an edge broker
    (hierarchical brokering): the delegated bandwidth is backed by
    pseudo-flow reservations [granted] at the central broker, and the
    delegation is valid until [expires_at] on the central broker's clock.
    An edge broker that falls silent past [expires_at] forfeits the quota:
    the central broker reclaims the grants.  {!Audit} consumes this view
    to flag leases that expired without being reclaimed. *)
type lease = {
  holder : string;  (** who holds the delegation, e.g. ["I1->E1"] *)
  expires_at : float;  (** central-broker clock; [infinity] = never *)
  granted : flow_id list;  (** central pseudo-flows backing the quota *)
}
