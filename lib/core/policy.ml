type action = Allow | Deny

type rule = { name : string; matches : Types.request -> bool; action : action }

type priority_rule = { pname : string; pmatches : Types.request -> bool; level : int }

type t = {
  default : action;
  mutable rules : rule list; (* reversed priority *)
  mutable priorities : priority_rule list; (* reversed insertion order *)
}

let create ?(default = Allow) () = { default; rules = []; priorities = [] }

let add_rule t ~name ~matches action = t.rules <- { name; matches; action } :: t.rules

let add_ingress_rule t ~name ~ingress action =
  add_rule t ~name ~matches:(fun req -> req.Types.ingress = ingress) action

let add_peak_limit t ~name ~max_peak =
  add_rule t ~name
    ~matches:(fun req -> req.Types.profile.Bbr_vtrs.Traffic.peak > max_peak)
    Deny

let add_delay_floor t ~name ~min_dreq =
  add_rule t ~name ~matches:(fun req -> req.Types.dreq < min_dreq) Deny

let add_priority_rule t ~name ~matches ~priority =
  t.priorities <- { pname = name; pmatches = matches; level = priority } :: t.priorities

let priority t req =
  let rec eval = function
    | [] -> 0
    | pr :: rest -> if pr.pmatches req then pr.level else eval rest
  in
  eval (List.rev t.priorities)

let check t req =
  let rec eval = function
    | [] -> (
        match t.default with Allow -> Ok () | Deny -> Error "default")
    | rule :: rest ->
        if rule.matches req then
          match rule.action with Allow -> Ok () | Deny -> Error rule.name
        else eval rest
  in
  eval (List.rev t.rules)

let rule_count t = List.length t.rules
