module Topology = Bbr_vtrs.Topology

type t = {
  topology : Topology.t;  (* router-private copy *)
  nshards : int;
  owner : int array;  (* link_id -> owning shard *)
  shards : Shard.t array;
  path_mib : Path_mib.t;  (* router-side path registry (routing only) *)
  routing : Routing.t;
  policy : Policy.t;
  mutable next_flow : int;
  on_edge_config : flow:Types.flow_id -> Types.reservation -> unit;
}

let create ?(spawn = false) ?(journal_for = fun _ -> None)
    ?(on_edge_config = fun ~flow:_ _ -> ()) ~shards:n ~partition topology =
  if n < 1 then invalid_arg "Shard_router.create: need at least one shard";
  let topo = Topology.copy topology in
  let owner = Array.make (max 1 (Topology.num_links topo)) 0 in
  List.iter
    (fun (l : Topology.link) ->
      let s = partition l.Topology.src in
      if s < 0 || s >= n then
        invalid_arg
          (Printf.sprintf "Shard_router.create: partition(%s) = %d out of range"
             l.Topology.src s);
      owner.(l.Topology.link_id) <- s)
    (Topology.links topo);
  (* The router's own node MIB never holds reservations — it only feeds
     the path MIB / routing constructors.  All booking state lives on the
     shards. *)
  let node_mib = Node_mib.create topo in
  let path_mib = Path_mib.create topo node_mib in
  let routing = Routing.create topo path_mib in
  let shards =
    Array.init n (fun i ->
        Shard.create ?journal:(journal_for i) ~spawn ~id:i ~nshards:n topology)
  in
  {
    topology = topo;
    nshards = n;
    owner;
    shards;
    path_mib;
    routing;
    policy = Policy.create ();
    next_flow = 0;
    on_edge_config;
  }

let nshards t = t.nshards

let shard t i = t.shards.(i)

let topology t = t.topology

let owner_of_link t ~link_id = t.owner.(link_id)

let next_flow_id t = t.next_flow

(* Group a path's links by owning shard, preserving path order inside each
   group and first-touch order across groups.  A path that alternates
   owners yields non-contiguous groups — booked as segments. *)
let links_by_shard t (info : Path_mib.info) =
  let groups = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (l : Topology.link) ->
      let s = t.owner.(l.Topology.link_id) in
      (match Hashtbl.find_opt groups s with
      | Some r -> r := l :: !r
      | None ->
          Hashtbl.add groups s (ref [ l ]);
          order := s :: !order))
    info.Path_mib.links;
  List.rev_map (fun s -> (s, List.rev !(Hashtbl.find groups s))) !order

let ids_of links =
  List.map (fun (l : Topology.link) -> l.Topology.link_id) links

(* Multi-shard admission, two phases.  Phase 1 (read): every involved
   shard snapshots its links of the path — residuals plus independent
   VT-EDF replicas.  The router assembles the exact {!Admission.path_state}
   a single broker would see and runs the uncached Section-3.2 decision
   (decision-identical to the cached fast path, which is digest-neutral).
   Phase 2 (commit): each shard books its segment verbatim.  No abort leg
   is needed for consistency: the router is the only producer of every
   involved shard's mailbox and dispatches nothing else to them between
   the two phases, so the snapshots cannot go stale. *)
let two_phase t ~flow (req : Types.request) (info : Path_mib.info) groups =
  List.iter
    (fun (s, links) -> Shard.send t.shards.(s) (Shard.Prepare (ids_of links)))
    groups;
  let prepared = Hashtbl.create 8 in
  List.iter
    (fun (s, _) ->
      match Shard.recv t.shards.(s) with
      | Shard.Prepared ps ->
          List.iter (fun (p : Shard.prepared) -> Hashtbl.replace prepared p.Shard.p_link p) ps
      | _ -> assert false)
    groups;
  let snap (l : Topology.link) : Shard.prepared =
    Hashtbl.find prepared l.Topology.link_id
  in
  let ps =
    {
      Admission.hops = info.Path_mib.hops;
      rate_hops = info.Path_mib.rate_hops;
      delay_hops = info.Path_mib.delay_hops;
      d_tot = info.Path_mib.d_tot;
      cres =
        List.fold_left
          (fun acc l -> Float.min acc (snap l).Shard.p_residual)
          infinity info.Path_mib.links;
      edf = List.filter_map (fun l -> (snap l).Shard.p_edf) info.Path_mib.links;
    }
  in
  match Admission.admit ps req.Types.profile ~dreq:req.Types.dreq with
  | Error e -> Error e
  | Ok res ->
      List.iter
        (fun (s, links) ->
          Shard.send t.shards.(s)
            (Shard.Book_segment
               {
                 flow;
                 request = req;
                 links = ids_of links;
                 rate = res.Types.rate;
                 delay = res.Types.delay;
               }))
        groups;
      List.iter
        (fun (s, _) ->
          match Shard.recv t.shards.(s) with
          | Shard.Done -> ()
          | _ -> assert false)
        groups;
      Ok (flow, res)

(* The full pipeline under a pinned flow id, counter untouched: policy,
   routing (on the router's private topology — deterministic and identical
   to every shard's), then single-shard dispatch or two-phase commit. *)
let admit_pinned t ~flow req =
  match Policy.check t.policy req with
  | Error rule -> Error (Types.Policy_denied rule)
  | Ok () -> (
      match
        Routing.path t.routing ~ingress:req.Types.ingress
          ~egress:req.Types.egress
      with
      | None -> Error Types.No_route
      | Some info -> (
          match links_by_shard t info with
          | [ (s, _) ] -> (
              match Shard.rpc t.shards.(s) (Shard.Admit { flow; request = req }) with
              | Shard.Admitted r -> r
              | _ -> assert false)
          | groups ->
              let r = two_phase t ~flow req info groups in
              (* Single-shard decisions are logged by the owning shard's
                 broker; the two-phase path decides here, so it logs
                 here. *)
              Obs_log.decision ~service:"perflow" ~at:0. req
                (Result.map
                   (fun (f, (res : Types.reservation)) -> (f, res.Types.rate))
                   r);
              r))

let request t req =
  let flow = t.next_flow in
  match admit_pinned t ~flow req with
  | Ok (f, res) ->
      (* The id is consumed only on admission, mirroring the single
         broker, whose [Flow_mib.fresh_id] runs after the admissibility
         test passes — so a sharded run reproduces its id sequence. *)
      t.next_flow <- flow + 1;
      t.on_edge_config ~flow:f res;
      Ok (f, res)
  | Error e -> Error e

let teardown t flow =
  Array.iter (fun s -> Shard.send s (Shard.Teardown flow)) t.shards;
  Array.iter
    (fun s -> match Shard.recv s with Shard.Done -> () | _ -> assert false)
    t.shards

type recovery = {
  link_id : int;
  rerouted : Types.flow_id list;
  dropped : Types.flow_id list;
}

let set_link t ~link_id ~up =
  ignore (Topology.link_by_id t.topology link_id);
  Topology.set_link_state t.topology ~link_id ~up;
  Array.iter (fun s -> Shard.send s (Shard.Set_link { link_id; up })) t.shards;
  Array.iter
    (fun s -> match Shard.recv s with Shard.Done -> () | _ -> assert false)
    t.shards

(* Stop-the-world link-failure cascade, replicating the single broker's
   [fail_link] order exactly: mark the link down everywhere, collect the
   victims (only the owner shard holds bookings on the link, but a
   multi-shard victim's other segments live elsewhere — teardown is
   broadcast), tear all victims down in ascending flow-id order, then
   re-admit each over the surviving topology in the same order under its
   pinned id. *)
let fail_link t ~link_id =
  set_link t ~link_id ~up:false;
  let victims =
    match Shard.rpc t.shards.(t.owner.(link_id)) (Shard.Victims link_id) with
    | Shard.Victims_are vs ->
        List.sort
          (fun (a : Shard.victim) b -> compare a.Shard.v_flow b.Shard.v_flow)
          vs
    | _ -> assert false
  in
  List.iter (fun (v : Shard.victim) -> teardown t v.Shard.v_flow) victims;
  let rerouted, dropped =
    List.partition_map
      (fun (v : Shard.victim) ->
        match admit_pinned t ~flow:v.Shard.v_flow v.Shard.v_request with
        | Ok (_, res) ->
            t.on_edge_config ~flow:v.Shard.v_flow res;
            Either.Left v.Shard.v_flow
        | Error _ -> Either.Right v.Shard.v_flow)
      victims
  in
  { link_id; rerouted; dropped }

let restore_link t ~link_id = set_link t ~link_id ~up:true

(* ----------------------------------------------------------------- *)
(* Merged views.                                                     *)

(* Reorder a (possibly segment-scattered) simple path's links into
   src→dst chain order: the head is the unique link whose source no link
   enters. *)
let stitch t link_ids =
  match link_ids with
  | [] | [ _ ] -> link_ids
  | _ ->
      let ls = List.map (Topology.link_by_id t.topology) link_ids in
      let by_src = Hashtbl.create 8 in
      List.iter
        (fun (l : Topology.link) -> Hashtbl.replace by_src l.Topology.src l)
        ls;
      let dsts =
        List.map (fun (l : Topology.link) -> l.Topology.dst) ls
      in
      let head =
        List.find
          (fun (l : Topology.link) -> not (List.mem l.Topology.src dsts))
          ls
      in
      let rec go acc (l : Topology.link) =
        let acc = l.Topology.link_id :: acc in
        match Hashtbl.find_opt by_src l.Topology.dst with
        | Some next -> go acc next
        | None -> List.rev acc
      in
      go [] head

let flows t =
  let tbl = Hashtbl.create 256 in
  Array.iter (fun s -> Shard.send s Shard.Dump) t.shards;
  Array.iter
    (fun s ->
      match Shard.recv s with
      | Shard.Flows fs ->
          List.iter
            (fun (f, rate, delay, links) ->
              match Hashtbl.find_opt tbl f with
              | None -> Hashtbl.replace tbl f (rate, delay, links)
              | Some (r0, d0, ls0) ->
                  (* Another shard's segment of the same flow: same
                     rate/delay by construction; the link union is
                     stitched below. *)
                  Hashtbl.replace tbl f (r0, d0, ls0 @ links))
            fs
      | _ -> assert false)
    t.shards;
  Hashtbl.fold
    (fun f (rate, delay, links) acc -> (f, rate, delay, stitch t links) :: acc)
    tbl []

let per_flow_count t = List.length (flows t)

let mib_digest t = Audit.digest_of_perflow ~topology:t.topology (flows t)

let flowset_digest_of tuples =
  let lines =
    List.map
      (fun ((_ : Types.flow_id), rate, delay, links) ->
        Printf.sprintf "%h %h %s" rate delay
          (String.concat "," (List.map string_of_int links)))
      tuples
    |> List.sort compare
  in
  Digest.to_hex (Digest.string (String.concat "\n" lines))

let flows_of_broker broker =
  Flow_mib.fold (Broker.flow_mib broker) ~init:[] ~f:(fun acc r ->
      ( r.Flow_mib.flow,
        r.Flow_mib.reservation.Types.rate,
        r.Flow_mib.reservation.Types.delay,
        List.map
          (fun (l : Topology.link) -> l.Topology.link_id)
          r.Flow_mib.path.Path_mib.links )
      :: acc)

let flowset_digest t = flowset_digest_of (flows t)

let audits_clean t =
  Array.iter (fun s -> Shard.send s Shard.Audit_ok) t.shards;
  Array.for_all
    (fun s -> match Shard.recv s with Shard.Flag ok -> ok | _ -> assert false)
    t.shards

let churn t specs =
  if Array.length specs <> t.nshards then
    invalid_arg "Shard_router.churn: one spec per shard";
  Array.iteri (fun i spec -> Shard.send t.shards.(i) (Shard.Churn spec)) specs;
  Array.map
    (fun s ->
      match Shard.recv s with Shard.Churned r -> r | _ -> assert false)
    t.shards

let stop t = Array.iter Shard.stop t.shards
