module Vtedf = Bbr_vtrs.Vtedf
module Topology = Bbr_vtrs.Topology

(* Per-link breakpoint cache, shared by every path crossing the link.  It
   is the single consumer of the link scheduler's incremental
   {!Vtedf.refresh_breakpoints} API: a flow add/remove recomputes only the
   suffix of the table starting at the touched delay class. *)
type link_cache = {
  edf : Vtedf.t;
  mutable synced : int;  (* Vtedf version at last refresh; -1 = cold *)
  mutable n : int;  (* valid breakpoints in the buffers *)
  mutable d : float array;
  mutable s : float array;
  mutable dem : float array;  (* demand prefix sums (refresh state) *)
  mutable rcum : float array;  (* cumulative-rate prefix sums (refresh state) *)
}

type entry = {
  info : Path_mib.info;
  link_ids : int array;  (* every link of the path *)
  lcaches : link_cache array;  (* delay-based links only, path order *)
  idx : int array;  (* merge cursors, one per lcache (scratch) *)
  mutable stamps : int array;  (* link epochs at last path_state validation *)
  mutable gstamp : int;  (* global epoch at last path_state validation *)
  mutable vstamps : int array;  (* Vtedf versions at last merge *)
  mutable ps : Admission.path_state;
  mutable mg : Admission.merged;
}

type stats = {
  paths : int;
  hits : int;
  revalidations : int;
  link_refreshes : int;
  merges : int;
}

type t = {
  node_mib : Node_mib.t;
  path_mib : Path_mib.t;
  entries : (int, entry) Hashtbl.t;  (* path_id -> entry *)
  links : (int, link_cache) Hashtbl.t;  (* link_id -> shared cache *)
  mutable epochs : int array;  (* per link id, bumped by Node_mib.on_change *)
  mutable global_epoch : int;
  mutable hits : int;
  mutable revalidations : int;
  mutable link_refreshes : int;
  mutable merges : int;
}

let ensure_epochs t link_id =
  let len = Array.length t.epochs in
  if link_id >= len then begin
    let bigger = Array.make (max (2 * len) (link_id + 1)) 0 in
    Array.blit t.epochs 0 bigger 0 len;
    t.epochs <- bigger
  end

let create node_mib path_mib =
  let t =
    {
      node_mib;
      path_mib;
      entries = Hashtbl.create 64;
      links = Hashtbl.create 64;
      epochs = Array.make 64 0;
      global_epoch = 0;
      hits = 0;
      revalidations = 0;
      link_refreshes = 0;
      merges = 0;
    }
  in
  (* Reserve/release on a link invalidates the residual of every cached
     path crossing it; Vtedf mutations carry their own version counters so
     they need no hook (some callers probe schedulers without notifying). *)
  Node_mib.on_change node_mib (fun ~link_id ->
      ensure_epochs t link_id;
      t.epochs.(link_id) <- t.epochs.(link_id) + 1);
  t

let invalidate_all t = t.global_epoch <- t.global_epoch + 1

let link_cache_of t link_id edf =
  match Hashtbl.find_opt t.links link_id with
  | Some lc -> lc
  | None ->
      let lc =
        {
          edf;
          synced = -1;
          n = 0;
          d = Array.make 8 0.;
          s = Array.make 8 0.;
          dem = Array.make 8 0.;
          rcum = Array.make 8 0.;
        }
      in
      Hashtbl.replace t.links link_id lc;
      lc

let entry_of t (info : Path_mib.info) =
  match Hashtbl.find_opt t.entries info.Path_mib.path_id with
  | Some e -> e
  | None ->
      let ps = Admission.path_state t.node_mib t.path_mib info in
      let link_ids =
        Array.of_list
          (List.map (fun (l : Topology.link) -> l.Topology.link_id) info.Path_mib.links)
      in
      Array.iter (fun id -> ensure_epochs t id) link_ids;
      let lcaches =
        Array.of_list
          (List.filter_map
             (fun (l : Topology.link) ->
               let link_id = l.Topology.link_id in
               Option.map
                 (link_cache_of t link_id)
                 (Node_mib.entry t.node_mib ~link_id).Node_mib.edf)
             info.Path_mib.links)
      in
      let e =
        {
          info;
          link_ids;
          lcaches;
          idx = Array.make (max 1 (Array.length lcaches)) 0;
          (* stale stamps: the first query revalidates everything *)
          stamps = Array.map (fun _ -> -1) link_ids;
          gstamp = t.global_epoch - 1;
          vstamps = Array.map (fun _ -> -1) lcaches;
          ps;
          mg = { Admission.m = 0; md = [||]; ms = [||] };
        }
      in
      Hashtbl.replace t.entries info.Path_mib.path_id e;
      e

(* ------------------------------------------------------------------ *)
(* Lazy revalidation.  The path_state level (residual bandwidth) keys on
   per-link reserve/release epochs; the merged-breakpoint level keys on
   the schedulers' own version counters.  Both are checked at query time,
   so a burst of mutations costs one rebuild per path at its next query,
   not one per mutation. *)

let ps_fresh t e =
  e.gstamp = t.global_epoch
  &&
  let ok = ref true in
  let k = Array.length e.link_ids in
  let i = ref 0 in
  while !ok && !i < k do
    if e.stamps.(!i) <> t.epochs.(e.link_ids.(!i)) then ok := false;
    incr i
  done;
  !ok

let revalidate_ps t e =
  t.revalidations <- t.revalidations + 1;
  let cres = Path_mib.residual t.path_mib e.info in
  if cres <> e.ps.Admission.cres then e.ps <- { e.ps with Admission.cres };
  for i = 0 to Array.length e.link_ids - 1 do
    e.stamps.(i) <- t.epochs.(e.link_ids.(i))
  done;
  e.gstamp <- t.global_epoch

let path_state t info =
  let e = entry_of t info in
  if ps_fresh t e then t.hits <- t.hits + 1 else revalidate_ps t e;
  e.ps

let grow_f a n =
  let len = Array.length a in
  if len >= n then a
  else begin
    let b = Array.make (max n (2 * len)) 0. in
    (* preserve the prefix: the incremental refresh resumes from it *)
    Array.blit a 0 b 0 len;
    b
  end

let refresh_link t lc =
  let v = Vtedf.version lc.edf in
  if v <> lc.synced then begin
    t.link_refreshes <- t.link_refreshes + 1;
    let n = Vtedf.class_count lc.edf in
    lc.d <- grow_f lc.d n;
    lc.s <- grow_f lc.s n;
    lc.dem <- grow_f lc.dem n;
    lc.rcum <- grow_f lc.rcum n;
    let n, _from =
      Vtedf.refresh_breakpoints lc.edf ~since:lc.synced ~d:lc.d ~s:lc.s
        ~dem:lc.dem ~rcum:lc.rcum
    in
    lc.n <- n;
    lc.synced <- v
  end

(* H-way merge of the per-link tables into the path's merged table.  Equal
   delays combine with [Float.min] in path-link order — element-wise
   identical to the [Float Map] merge of {!Admission.merge_breakpoints}. *)
let remerge t e =
  t.merges <- t.merges + 1;
  let h = Array.length e.lcaches in
  let total = ref 0 in
  for i = 0 to h - 1 do
    total := !total + e.lcaches.(i).n;
    e.idx.(i) <- 0
  done;
  let md = grow_f e.mg.Admission.md !total in
  let ms = grow_f e.mg.Admission.ms !total in
  let m = ref 0 in
  let exhausted = ref false in
  while not !exhausted do
    (* smallest pending delay across the links *)
    let best = ref nan in
    for i = 0 to h - 1 do
      let lc = e.lcaches.(i) in
      if e.idx.(i) < lc.n then
        let d = lc.d.(e.idx.(i)) in
        if Float.is_nan !best || d < !best then best := d
    done;
    if Float.is_nan !best then exhausted := true
    else begin
      let d = !best in
      let s = ref infinity in
      for i = 0 to h - 1 do
        let lc = e.lcaches.(i) in
        if e.idx.(i) < lc.n && lc.d.(e.idx.(i)) = d then begin
          s := Float.min !s lc.s.(e.idx.(i));
          e.idx.(i) <- e.idx.(i) + 1
        end
      done;
      md.(!m) <- d;
      ms.(!m) <- !s;
      incr m
    end
  done;
  e.mg <- { Admission.m = !m; md; ms };
  for i = 0 to h - 1 do
    e.vstamps.(i) <- e.lcaches.(i).synced
  done

let merged_fresh e =
  let ok = ref true in
  let h = Array.length e.lcaches in
  let i = ref 0 in
  while !ok && !i < h do
    if e.vstamps.(!i) <> Vtedf.version e.lcaches.(!i).edf then ok := false;
    incr i
  done;
  !ok

let query t info =
  let e = entry_of t info in
  let ps_ok = ps_fresh t e in
  if not ps_ok then revalidate_ps t e;
  if merged_fresh e then begin
    if ps_ok then t.hits <- t.hits + 1
  end
  else begin
    Array.iter (refresh_link t) e.lcaches;
    remerge t e
  end;
  (e.ps, e.mg)

let stats t =
  {
    paths = Hashtbl.length t.entries;
    hits = t.hits;
    revalidations = t.revalidations;
    link_refreshes = t.link_refreshes;
    merges = t.merges;
  }
