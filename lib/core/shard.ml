module Topology = Bbr_vtrs.Topology
module Vtedf = Bbr_vtrs.Vtedf
module Spsc = Bbr_util.Spsc

type churn_spec = { ops : int; cap : int; gen : unit -> Types.request }

type churn_result = {
  admitted : int;
  rejected : int;
  torn : int;
  lat : float array;
}

type prepared = { p_link : int; p_residual : float; p_edf : Vtedf.t option }

type victim = { v_flow : Types.flow_id; v_request : Types.request }

type op =
  | Admit of { flow : Types.flow_id; request : Types.request }
  | Book_segment of {
      flow : Types.flow_id;
      request : Types.request;
      links : int list;
      rate : float;
      delay : float;
    }
  | Prepare of int list
  | Teardown of Types.flow_id
  | Set_link of { link_id : int; up : bool }
  | Victims of int
  | Dump
  | Digest
  | Audit_ok
  | Journal_text
  | Churn of churn_spec
  | Stop

type reply =
  | Done
  | Admitted of (Types.flow_id * Types.reservation, Types.reject_reason) result
  | Prepared of prepared list
  | Victims_are of victim list
  | Flows of (Types.flow_id * float * float * int list) list
  | Text of string
  | Flag of bool
  | Churned of churn_result

type t = {
  id : int;
  nshards : int;
  broker : Broker.t;
  journal : Journal.t option;
  inbox : op Spsc.t;
  outbox : reply Spsc.t;
  pending : reply Queue.t;  (* inline mode: replies queue here *)
  mutable domain : unit Domain.t option;
}

let id t = t.id

let broker t = t.broker

let journal t = t.journal

let link_ids_of (info : Path_mib.info) =
  List.map (fun (l : Topology.link) -> l.Topology.link_id) info.Path_mib.links

(* Self-driving load loop, run entirely inside the shard (its own domain
   when spawned): generate → admit → tear down the oldest beyond [cap].
   Flow ids are striped ([seq * nshards + id]) so shards allocate ids with
   no coordination; equivalence against a single broker is therefore
   checked on the id-blind flowset, not the exact digest. *)
let churn t spec =
  let live = Queue.create () in
  let admitted = ref 0 and rejected = ref 0 and torn = ref 0 in
  let lat = Array.make (max 1 spec.ops) 0. in
  let seq = ref 0 in
  for k = 0 to spec.ops - 1 do
    let req = spec.gen () in
    let flow = (!seq * t.nshards) + t.id in
    let t0 = Unix.gettimeofday () in
    let decision = Broker.request t.broker ~flow req in
    lat.(k) <- Unix.gettimeofday () -. t0;
    match decision with
    | Ok _ ->
        incr seq;
        incr admitted;
        Queue.push flow live;
        if Queue.length live > spec.cap then begin
          Broker.teardown t.broker (Queue.pop live);
          incr torn
        end
    | Error _ -> incr rejected
  done;
  { admitted = !admitted; rejected = !rejected; torn = !torn; lat }

let exec t op =
  match op with
  | Admit { flow; request } -> Admitted (Broker.request t.broker ~flow request)
  | Book_segment { flow; request; links; rate; delay } ->
      Broker.book_segment t.broker ~flow ~request ~links ~rate ~delay;
      Done
  | Prepare links ->
      let nm = Broker.node_mib t.broker in
      Prepared
        (List.map
           (fun link_id ->
             {
               p_link = link_id;
               p_residual = Node_mib.residual nm ~link_id;
               p_edf =
                 Option.map Vtedf.copy (Node_mib.entry nm ~link_id).Node_mib.edf;
             })
           links)
  | Teardown flow ->
      Broker.teardown t.broker flow;
      Done
  | Set_link { link_id; up } ->
      Broker.set_link_admin t.broker ~link_id ~up;
      Done
  | Victims link_id ->
      let on_link (r : Flow_mib.record) =
        List.exists
          (fun (l : Topology.link) -> l.Topology.link_id = link_id)
          r.Flow_mib.path.Path_mib.links
      in
      Victims_are
        (Flow_mib.fold (Broker.flow_mib t.broker) ~init:[] ~f:(fun acc r ->
             if on_link r then
               { v_flow = r.Flow_mib.flow; v_request = r.Flow_mib.request } :: acc
             else acc))
  | Dump ->
      Flows
        (Flow_mib.fold (Broker.flow_mib t.broker) ~init:[] ~f:(fun acc r ->
             ( r.Flow_mib.flow,
               r.Flow_mib.reservation.Types.rate,
               r.Flow_mib.reservation.Types.delay,
               link_ids_of r.Flow_mib.path )
             :: acc))
  | Digest -> Text (Audit.mib_digest t.broker)
  | Audit_ok -> Flag (Audit.ok (Audit.check t.broker))
  | Journal_text ->
      Text (match t.journal with Some j -> Journal.text j | None -> "")
  | Churn spec -> Churned (churn t spec)
  | Stop -> Done

let spawned t = t.domain <> None

(* Inline mode tags telemetry with the shard id only for the duration of
   the operation (every shard shares the main domain); a spawned shard
   tags its whole domain once in the loop below. *)
let exec_tagged t op =
  let prev = Obs_log.shard () in
  Obs_log.set_shard (Some t.id);
  Fun.protect ~finally:(fun () -> Obs_log.set_shard prev) (fun () -> exec t op)

let send t op =
  if spawned t then Spsc.push t.inbox op
  else Queue.push (exec_tagged t op) t.pending

let recv t = if spawned t then Spsc.pop t.outbox else Queue.pop t.pending

let rpc t op =
  send t op;
  recv t

let loop t () =
  Obs_log.set_shard (Some t.id);
  let rec go () =
    let op = Spsc.pop t.inbox in
    let reply = exec t op in
    Spsc.push t.outbox reply;
    match op with Stop -> () | _ -> go ()
  in
  go ()

let create ?journal ?(spawn = false) ?(mailbox = 1024) ~id ~nshards topology =
  if id < 0 || id >= nshards then invalid_arg "Shard.create: id out of range";
  let broker = Broker.create (Topology.copy topology) in
  Option.iter (fun j -> Journal.attach j broker) journal;
  let t =
    {
      id;
      nshards;
      broker;
      journal;
      inbox = Spsc.create ~capacity:mailbox;
      outbox = Spsc.create ~capacity:mailbox;
      pending = Queue.create ();
      domain = None;
    }
  in
  if spawn then t.domain <- Some (Domain.spawn (loop t));
  t

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
      (match rpc t Stop with Done -> () | _ -> assert false);
      Domain.join d;
      t.domain <- None
