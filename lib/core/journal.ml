module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Crc32 = Bbr_util.Crc32

let header = "bbr-journal v1"

(* Floats render as [%h] (full hex precision, as in {!Snapshot}): a round
   trip is bit-exact. *)
let links_str links = String.concat "," (List.map string_of_int links)

let kind_label : Broker.mutation -> string = function
  | Broker.Admit _ -> "admit"
  | Broker.Admit_class _ -> "admit_class"
  | Broker.Teardown _ -> "teardown"
  | Broker.Teardown_class _ -> "teardown_class"
  | Broker.Queue_emptied _ -> "queue_empty"
  | Broker.Evacuated _ -> "evacuate"
  | Broker.Link_failed _ -> "link_failed"
  | Broker.Link_restored _ -> "link_restored"
  | Broker.Rate_changed _ -> "rate_change"

let payload (m : Broker.mutation) =
  match m with
  | Broker.Admit { flow; request = r; rate; delay } ->
      let p = r.Types.profile in
      Printf.sprintf "admit %d %h %h %h %h %h %s %s %h %h" flow p.Traffic.sigma
        p.Traffic.rho p.Traffic.peak p.Traffic.lmax r.Types.dreq r.Types.ingress
        r.Types.egress rate delay
  | Broker.Admit_class { flow; class_id; request = r } ->
      let p = r.Types.profile in
      Printf.sprintf "admitc %d %d %h %h %h %h %h %s %s" flow class_id p.Traffic.sigma
        p.Traffic.rho p.Traffic.peak p.Traffic.lmax r.Types.dreq r.Types.ingress
        r.Types.egress
  | Broker.Teardown flow -> Printf.sprintf "drop %d" flow
  | Broker.Teardown_class flow -> Printf.sprintf "dropc %d" flow
  | Broker.Queue_emptied { class_id; links } ->
      Printf.sprintf "qempty %d %s" class_id (links_str links)
  | Broker.Evacuated { class_id; links } ->
      Printf.sprintf "evac %d %s" class_id (links_str links)
  | Broker.Link_failed link_id -> Printf.sprintf "linkdown %d" link_id
  | Broker.Link_restored link_id -> Printf.sprintf "linkup %d" link_id
  | Broker.Rate_changed { class_id; path_id; total_rate } ->
      Printf.sprintf "rate %d %d %h" class_id path_id total_rate

let encode ~seq ~at m =
  let body = Printf.sprintf "%d %h %s" seq at (payload m) in
  Crc32.to_hex (Crc32.string body) ^ " " ^ body

(* --------------------------------------------------------------- *)
(* Decoding.  All helpers return options; nothing here may raise.  *)

let links_of_str s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some id -> go (id :: acc) rest
          | None -> None)
    in
    go [] parts

let decode_payload fields : Broker.mutation option =
  let fl = float_of_string in
  match
    match fields with
    | [ "admit"; flow; sigma; rho; peak; lmax; dreq; ingress; egress; rate; delay ] ->
        Some
          (Broker.Admit
             {
               flow = int_of_string flow;
               request =
                 {
                   Types.profile =
                     Traffic.make ~sigma:(fl sigma) ~rho:(fl rho) ~peak:(fl peak)
                       ~lmax:(fl lmax);
                   dreq = fl dreq;
                   ingress;
                   egress;
                 };
               rate = fl rate;
               delay = fl delay;
             })
    | [ "admitc"; flow; class_id; sigma; rho; peak; lmax; dreq; ingress; egress ] ->
        Some
          (Broker.Admit_class
             {
               flow = int_of_string flow;
               class_id = int_of_string class_id;
               request =
                 {
                   Types.profile =
                     Traffic.make ~sigma:(fl sigma) ~rho:(fl rho) ~peak:(fl peak)
                       ~lmax:(fl lmax);
                   dreq = fl dreq;
                   ingress;
                   egress;
                 };
             })
    | [ "drop"; flow ] -> Some (Broker.Teardown (int_of_string flow))
    | [ "dropc"; flow ] -> Some (Broker.Teardown_class (int_of_string flow))
    | [ "qempty"; class_id; links ] ->
        Option.map
          (fun links -> Broker.Queue_emptied { class_id = int_of_string class_id; links })
          (links_of_str links)
    | [ "evac"; class_id; links ] ->
        Option.map
          (fun links -> Broker.Evacuated { class_id = int_of_string class_id; links })
          (links_of_str links)
    | [ "linkdown"; link_id ] -> Some (Broker.Link_failed (int_of_string link_id))
    | [ "linkup"; link_id ] -> Some (Broker.Link_restored (int_of_string link_id))
    | [ "rate"; class_id; path_id; total ] ->
        Some
          (Broker.Rate_changed
             {
               class_id = int_of_string class_id;
               path_id = int_of_string path_id;
               total_rate = fl total;
             })
    | _ -> None
  with
  | exception _ -> None
  | v -> v

(* [Some (seq, at, mutation)] iff the line is a complete, CRC-clean
   record. *)
let decode_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
      let crc_s = String.sub line 0 i in
      let body = String.sub line (i + 1) (String.length line - i - 1) in
      match Crc32.of_hex crc_s with
      | None -> None
      | Some crc ->
          if crc <> Crc32.string body then None
          else
            (match String.split_on_char ' ' body with
            | seq :: at :: rest -> (
                match (int_of_string_opt seq, float_of_string_opt at) with
                | Some seq, Some at ->
                    Option.map (fun m -> (seq, at, m)) (decode_payload rest)
                | _ -> None)
            | _ -> None))

let parse text =
  match String.split_on_char '\n' text with
  | [] | [ "" ] -> Error "empty journal"
  | first :: rest when String.trim first = header ->
      let entries = ref [] in
      let warning = ref None in
      let expected_seq = ref None in
      List.iteri
        (fun i line ->
          if !warning = None && String.trim line <> "" then
            match decode_line line with
            | Some (seq, at, m) -> (
                match !expected_seq with
                | Some e when seq <> e ->
                    warning :=
                      Some
                        (Printf.sprintf
                           "journal sequence gap at line %d (record %d, expected %d); \
                            dropping the tail"
                           (i + 2) seq e)
                | _ ->
                    expected_seq := Some (seq + 1);
                    entries := (at, m) :: !entries)
            | None ->
                warning :=
                  Some
                    (Printf.sprintf
                       "torn or corrupt journal record at line %d; dropping the tail"
                       (i + 2)))
        rest;
      Ok (List.rev !entries, !warning)
  | first :: _ -> Error (Printf.sprintf "bad journal header: %S" (String.trim first))

(* --------------------------------------------------------------- *)
(* Replay.                                                         *)

type replay_outcome = { applied : int; warning : string option }

let apply broker (m : Broker.mutation) =
  match m with
  | Broker.Admit { flow; request; rate; delay } -> (
      match Broker.request_fixed broker ~flow request ~rate ~delay () with
      | Ok _ -> Ok ()
      | Error r ->
          Error
            (Fmt.str "replaying admit of flow %d failed: %a" flow
               Types.pp_reject_reason r))
  | Broker.Admit_class { flow; class_id; request } -> (
      match Broker.request_class broker ~class_id ~flow request with
      | Ok _ -> Ok ()
      | Error r ->
          Error
            (Fmt.str "replaying class admit of flow %d failed: %a" flow
               Types.pp_reject_reason r))
  | Broker.Teardown flow ->
      Broker.teardown broker flow;
      Ok ()
  | Broker.Teardown_class flow ->
      Broker.teardown_class broker flow;
      Ok ()
  | Broker.Queue_emptied { class_id; links } -> (
      match Path_mib.find_links (Broker.path_mib broker) ~links with
      | Some info ->
          Broker.queue_empty broker ~class_id ~path_id:info.Path_mib.path_id;
          Ok ()
      | None -> Ok () (* the macroflow never re-formed; nothing to release *))
  | Broker.Evacuated { class_id; links } -> (
      match Path_mib.find_links (Broker.path_mib broker) ~links with
      | Some info ->
          ignore
            (Aggregate.evacuate (Broker.aggregate broker) ~class_id
               ~path_id:info.Path_mib.path_id);
          Ok ()
      | None -> Ok ())
  | Broker.Link_failed link_id ->
      (* Physical record: the teardown/re-admission cascade is journaled
         separately, so replay must not re-run {!Broker.fail_link}. *)
      Topology.set_link_state (Broker.topology broker) ~link_id ~up:false;
      Ok ()
  | Broker.Link_restored link_id ->
      Topology.set_link_state (Broker.topology broker) ~link_id ~up:true;
      Ok ()
  | Broker.Rate_changed _ -> Ok () (* informational; rates follow from the admissions *)

let replay broker text =
  match parse text with
  | Error e -> Error e
  | Ok (entries, warning) ->
      let rec go n = function
        | [] -> Ok { applied = n; warning }
        | (_at, m) :: rest -> (
            match (try apply broker m with exn -> Error (Printexc.to_string exn)) with
            | Ok () -> go (n + 1) rest
            | Error msg -> Error msg)
      in
      go 0 entries

(* --------------------------------------------------------------- *)
(* The writer.                                                     *)

(* Records are kept unencoded and serialized only when the journal text
   is materialized (group commit: a real WAL writer renders and flushes
   them at durability boundaries, off the commit path).  The mutation
   values are immutable, so deferred encoding sees exactly the committed
   state, and the hook costs a cons per record on the admission path. *)
type pending = { p_seq : int; p_at : float; p_m : Broker.mutation }

type t = {
  fsync_every : int;
  mutable recs : pending list;  (* newest first *)
  mutable records : int;  (* since the last compaction *)
  mutable torn : string option;  (* half-record a crash left behind *)
  mutable seq : int;  (* records ever appended *)
  mutable record_hook : (int -> unit) option;
  mutable group_start : int option;  (* [records] when the open group began *)
  mutable synced_floor : int;  (* records made durable by a group commit *)
}

let create ?(fsync_every = 1) () =
  if fsync_every < 1 then invalid_arg "Journal.create: fsync_every must be >= 1";
  {
    fsync_every;
    recs = [];
    records = 0;
    torn = None;
    seq = 0;
    record_hook = None;
    group_start = None;
    synced_floor = 0;
  }

let records t = t.records

let appended_total t = t.seq

let synced_records t =
  let natural = t.records - (t.records mod t.fsync_every) in
  (* Records appended inside a still-open group await the group's single
     fsync: they are not durable yet, whatever the modulo boundary says. *)
  let natural =
    match t.group_start with Some g -> min natural g | None -> natural
  in
  min t.records (max natural t.synced_floor)

let group t f =
  match t.group_start with
  | Some _ -> f () (* nested: joins the outer group *)
  | None ->
      t.group_start <- Some t.records;
      let out =
        try f ()
        with exn ->
          (* Aborted group: fall back to the per-record boundaries the
             unbatched writer would have had. *)
          t.group_start <- None;
          raise exn
      in
      t.group_start <- None;
      t.synced_floor <- t.records;
      if Obs_log.active () then Obs_log.count "bb_journal_group_commits_total";
      out

let on_record t f = t.record_hook <- Some f

let append t ~at m =
  t.recs <- { p_seq = t.seq; p_at = at; p_m = m } :: t.recs;
  t.seq <- t.seq + 1;
  t.records <- t.records + 1;
  if Obs_log.active () then
    Obs_log.count "bb_journal_records_total" ~labels:[ ("kind", kind_label m) ];
  match t.record_hook with None -> () | Some f -> f t.seq

let attach t broker =
  Broker.set_mutation_hook broker (fun m -> append t ~at:(Broker.now broker) m);
  (* Request batches commit as journal groups. *)
  Broker.set_batch_hook broker (fun body -> group t body)

let compact t =
  t.recs <- [];
  t.records <- 0;
  t.torn <- None;
  t.synced_floor <- 0;
  t.group_start <- Option.map (fun _ -> 0) t.group_start;
  if Obs_log.active () then Obs_log.count "bb_journal_compactions_total"

let encode_pending r = encode ~seq:r.p_seq ~at:r.p_at r.p_m

let text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (encode_pending r);
      Buffer.add_char buf '\n')
    (List.rev t.recs);
  (match t.torn with None -> () | Some frag -> Buffer.add_string buf frag);
  Buffer.contents buf

let drop_tail ?(torn = false) t ~records:n =
  let n = min n t.records in
  if n > 0 then begin
    (* [t.recs] is newest first, so the first [n] are the ones lost. *)
    let rec take k acc rest =
      if k = 0 then (acc, rest)
      else
        match rest with
        | [] -> (acc, [])
        | r :: rest -> take (k - 1) (r :: acc) rest
    in
    let dropped_oldest_first, kept = take n [] t.recs in
    t.recs <- kept;
    t.records <- t.records - n;
    if t.synced_floor > t.records then t.synced_floor <- t.records;
    t.torn <-
      (if torn then
         match dropped_oldest_first with
         | oldest :: _ ->
             let line = encode_pending oldest in
             Some (String.sub line 0 (String.length line / 2))
         | [] -> None
       else None)
  end

let crash_cut t =
  let unsynced = t.records - synced_records t in
  if unsynced > 0 then drop_tail ~torn:true t ~records:unsynced;
  unsynced
