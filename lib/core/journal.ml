module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Trace = Bbr_obs.Trace

let header = "bbr-journal v1"

(* Floats render as [%h] (full hex precision, as in {!Snapshot}): a round
   trip is bit-exact. *)
let links_str links = String.concat "," (List.map string_of_int links)

let kind_label : Broker.mutation -> string = function
  | Broker.Admit _ -> "admit"
  | Broker.Admit_segment _ -> "admit_segment"
  | Broker.Admit_class _ -> "admit_class"
  | Broker.Teardown _ -> "teardown"
  | Broker.Teardown_class _ -> "teardown_class"
  | Broker.Queue_emptied _ -> "queue_empty"
  | Broker.Evacuated _ -> "evacuate"
  | Broker.Link_failed _ -> "link_failed"
  | Broker.Link_restored _ -> "link_restored"
  | Broker.Rate_changed _ -> "rate_change"

let payload (m : Broker.mutation) =
  match m with
  | Broker.Admit { flow; request = r; rate; delay } ->
      let p = r.Types.profile in
      Printf.sprintf "admit %d %h %h %h %h %h %s %s %h %h" flow p.Traffic.sigma
        p.Traffic.rho p.Traffic.peak p.Traffic.lmax r.Types.dreq r.Types.ingress
        r.Types.egress rate delay
  | Broker.Admit_segment { flow; request = r; rate; delay; links } ->
      let p = r.Types.profile in
      Printf.sprintf "admitseg %d %h %h %h %h %h %s %s %h %h %s" flow
        p.Traffic.sigma p.Traffic.rho p.Traffic.peak p.Traffic.lmax r.Types.dreq
        r.Types.ingress r.Types.egress rate delay (links_str links)
  | Broker.Admit_class { flow; class_id; request = r } ->
      let p = r.Types.profile in
      Printf.sprintf "admitc %d %d %h %h %h %h %h %s %s" flow class_id p.Traffic.sigma
        p.Traffic.rho p.Traffic.peak p.Traffic.lmax r.Types.dreq r.Types.ingress
        r.Types.egress
  | Broker.Teardown flow -> Printf.sprintf "drop %d" flow
  | Broker.Teardown_class flow -> Printf.sprintf "dropc %d" flow
  | Broker.Queue_emptied { class_id; links } ->
      Printf.sprintf "qempty %d %s" class_id (links_str links)
  | Broker.Evacuated { class_id; links } ->
      Printf.sprintf "evac %d %s" class_id (links_str links)
  | Broker.Link_failed link_id -> Printf.sprintf "linkdown %d" link_id
  | Broker.Link_restored link_id -> Printf.sprintf "linkup %d" link_id
  | Broker.Rate_changed { class_id; path_id; total_rate } ->
      Printf.sprintf "rate %d %d %h" class_id path_id total_rate

let encode ~seq ~at m = Wal.encode_line ~seq ~at (payload m)

(* --------------------------------------------------------------- *)
(* Decoding.  All helpers return options; nothing here may raise.  *)

let links_of_str s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some id -> go (id :: acc) rest
          | None -> None)
    in
    go [] parts

let decode_payload fields : Broker.mutation option =
  let fl = float_of_string in
  match
    match fields with
    | [ "admit"; flow; sigma; rho; peak; lmax; dreq; ingress; egress; rate; delay ] ->
        Some
          (Broker.Admit
             {
               flow = int_of_string flow;
               request =
                 {
                   Types.profile =
                     Traffic.make ~sigma:(fl sigma) ~rho:(fl rho) ~peak:(fl peak)
                       ~lmax:(fl lmax);
                   dreq = fl dreq;
                   ingress;
                   egress;
                 };
               rate = fl rate;
               delay = fl delay;
             })
    | [ "admitseg"; flow; sigma; rho; peak; lmax; dreq; ingress; egress; rate; delay; links ]
      ->
        Option.map
          (fun links ->
            Broker.Admit_segment
              {
                flow = int_of_string flow;
                request =
                  {
                    Types.profile =
                      Traffic.make ~sigma:(fl sigma) ~rho:(fl rho) ~peak:(fl peak)
                        ~lmax:(fl lmax);
                    dreq = fl dreq;
                    ingress;
                    egress;
                  };
                rate = fl rate;
                delay = fl delay;
                links;
              })
          (links_of_str links)
    | [ "admitc"; flow; class_id; sigma; rho; peak; lmax; dreq; ingress; egress ] ->
        Some
          (Broker.Admit_class
             {
               flow = int_of_string flow;
               class_id = int_of_string class_id;
               request =
                 {
                   Types.profile =
                     Traffic.make ~sigma:(fl sigma) ~rho:(fl rho) ~peak:(fl peak)
                       ~lmax:(fl lmax);
                   dreq = fl dreq;
                   ingress;
                   egress;
                 };
             })
    | [ "drop"; flow ] -> Some (Broker.Teardown (int_of_string flow))
    | [ "dropc"; flow ] -> Some (Broker.Teardown_class (int_of_string flow))
    | [ "qempty"; class_id; links ] ->
        Option.map
          (fun links -> Broker.Queue_emptied { class_id = int_of_string class_id; links })
          (links_of_str links)
    | [ "evac"; class_id; links ] ->
        Option.map
          (fun links -> Broker.Evacuated { class_id = int_of_string class_id; links })
          (links_of_str links)
    | [ "linkdown"; link_id ] -> Some (Broker.Link_failed (int_of_string link_id))
    | [ "linkup"; link_id ] -> Some (Broker.Link_restored (int_of_string link_id))
    | [ "rate"; class_id; path_id; total ] ->
        Some
          (Broker.Rate_changed
             {
               class_id = int_of_string class_id;
               path_id = int_of_string path_id;
               total_rate = fl total;
             })
    | _ -> None
  with
  | exception _ -> None
  | v -> v

let parse text = Wal.parse ~header ~decode_payload text

(* --------------------------------------------------------------- *)
(* Replay.                                                         *)

type replay_outcome = { applied : int; warning : string option }

let apply broker (m : Broker.mutation) =
  match m with
  | Broker.Admit { flow; request; rate; delay } -> (
      match Broker.request_fixed broker ~flow request ~rate ~delay () with
      | Ok _ -> Ok ()
      | Error r ->
          Error
            (Fmt.str "replaying admit of flow %d failed: %a" flow
               Types.pp_reject_reason r))
  | Broker.Admit_segment { flow; request; rate; delay; links } -> (
      (* Segments are booked verbatim — no re-routing: the link set was
         chosen by the sharded coordinator, not by this broker's routing. *)
      match Broker.book_segment broker ~flow ~request ~links ~rate ~delay with
      | () -> Ok ()
      | exception exn ->
          Error
            (Fmt.str "replaying segment admit of flow %d failed: %s" flow
               (Printexc.to_string exn)))
  | Broker.Admit_class { flow; class_id; request } -> (
      match Broker.request_class broker ~class_id ~flow request with
      | Ok _ -> Ok ()
      | Error r ->
          Error
            (Fmt.str "replaying class admit of flow %d failed: %a" flow
               Types.pp_reject_reason r))
  | Broker.Teardown flow ->
      Broker.teardown broker flow;
      Ok ()
  | Broker.Teardown_class flow ->
      Broker.teardown_class broker flow;
      Ok ()
  | Broker.Queue_emptied { class_id; links } -> (
      match Path_mib.find_links (Broker.path_mib broker) ~links with
      | Some info ->
          Broker.queue_empty broker ~class_id ~path_id:info.Path_mib.path_id;
          Ok ()
      | None -> Ok () (* the macroflow never re-formed; nothing to release *))
  | Broker.Evacuated { class_id; links } -> (
      match Path_mib.find_links (Broker.path_mib broker) ~links with
      | Some info ->
          ignore
            (Aggregate.evacuate (Broker.aggregate broker) ~class_id
               ~path_id:info.Path_mib.path_id);
          Ok ()
      | None -> Ok ())
  | Broker.Link_failed link_id ->
      (* Physical record: the teardown/re-admission cascade is journaled
         separately, so replay must not re-run {!Broker.fail_link}. *)
      Topology.set_link_state (Broker.topology broker) ~link_id ~up:false;
      Ok ()
  | Broker.Link_restored link_id ->
      Topology.set_link_state (Broker.topology broker) ~link_id ~up:true;
      Ok ()
  | Broker.Rate_changed _ -> Ok () (* informational; rates follow from the admissions *)

let replay broker text =
  match parse text with
  | Error e -> Error e
  | Ok (entries, warning) ->
      (* A truncated tail is a countable event, not just prose: the
         fleet watches bb_journal_truncations_total, nobody greps warning
         strings. *)
      if warning <> None && Obs_log.active () then
        Obs_log.count "bb_journal_truncations_total";
      let rec go n = function
        | [] -> Ok { applied = n; warning }
        | (_at, m) :: rest -> (
            match (try apply broker m with exn -> Error (Printexc.to_string exn)) with
            | Ok () -> go (n + 1) rest
            | Error msg -> Error msg)
      in
      go 0 entries

(* --------------------------------------------------------------- *)
(* The writer: the generic {!Wal} machinery specialized to broker
   mutations, plus the journal's metric families.                   *)

type t = Broker.mutation Wal.t

let create ?fsync_every ?storage () =
  let t =
    try Wal.create ?fsync_every ~header ~encode_payload:payload ()
    with Invalid_argument _ ->
      invalid_arg "Journal.create: fsync_every must be >= 1"
  in
  (match storage with
  | Some st -> Wal.set_sink t (Some (Storage.sink st))
  | None -> ());
  t

let text_of_lines lines =
  String.concat "" (List.map (fun l -> l ^ "\n") (header :: lines))

let records = Wal.records

let appended_total = Wal.appended_total

let synced_records = Wal.synced_records

let group t f =
  if Wal.in_group t then Wal.group t f
  else begin
    (* Only the outermost group is a commit boundary: one span (child of
       the enclosing batch/request span) covering everything that
       reaches the durability boundary together. *)
    let sp = Trace.start_span "bb.journal.group" in
    let before = Wal.appended_total t in
    let out =
      Fun.protect
        ~finally:(fun () ->
          Trace.finish_span
            ~attrs:[ ("records", string_of_int (Wal.appended_total t - before)) ]
            sp)
        (fun () -> Trace.with_ambient sp (fun () -> Wal.group t f))
    in
    if Obs_log.active () then Obs_log.count "bb_journal_group_commits_total";
    out
  end

let on_record = Wal.on_record

let append t ~at m =
  Wal.append t ~at m;
  if Obs_log.active () then
    Obs_log.count "bb_journal_records_total" ~labels:[ ("kind", kind_label m) ]

let attach t broker =
  Broker.set_mutation_hook broker (fun m -> append t ~at:(Broker.now broker) m);
  (* Request batches commit as journal groups. *)
  Broker.set_batch_hook broker (fun body -> group t body)

let compact t =
  Wal.compact t;
  if Obs_log.active () then Obs_log.count "bb_journal_compactions_total"

let text = Wal.text

let drop_tail = Wal.drop_tail

let crash_cut = Wal.crash_cut
