type storage_recovery = {
  sr_gen : int option;
  sr_cover : int;
  sr_fallback : bool;
  sr_truncated : string option;
  sr_quarantined : int;
  sr_replayed : int;
}

let recovery_loss r =
  r.sr_fallback || r.sr_truncated <> None || r.sr_quarantined > 0

type t = {
  make_standby : unit -> Broker.t;
  time : Broker.time_hooks;
  journal : Journal.t option;
  storage : Storage.t option;
  mutable active : Broker.t;
  mutable up : bool;
  mutable last : (float * string) option;
  mutable checkpoints : int;
  mutable generation : int;
  mutable ticking : bool;
  mutable stopped : bool;
  mutable replay_warning : string option;
  mutable last_recovery : storage_recovery option;
}

let create ~make_standby ?time ?journal ?storage primary =
  let time = Option.value ~default:Broker.immediate_time time in
  (match journal with None -> () | Some j -> Journal.attach j primary);
  {
    make_standby;
    time;
    journal;
    storage;
    active = primary;
    up = true;
    last = None;
    checkpoints = 0;
    generation = 0;
    ticking = false;
    stopped = false;
    replay_warning = None;
    last_recovery = None;
  }

let active t = t.active

let is_up t = t.up

let journal t = t.journal

let replay_warning t = t.replay_warning

let last_recovery t = t.last_recovery

let storage t = t.storage

let checkpoint t =
  if t.up then begin
    let body = Snapshot.save t.active in
    let committed =
      match t.storage with
      | None -> true
      | Some st ->
          (* Shadow-write, verify, atomic rename; the previous generation
             survives.  On failure the journal must NOT compact — its
             records are the only durable copy of the uncovered tail. *)
          let cover =
            match t.journal with Some j -> Journal.appended_total j | None -> 0
          in
          (match Storage.checkpoint st ~cover body with
          | Ok _gen -> true
          | Error _ ->
              if Obs_log.active () then
                Obs_log.count "bb_failover_checkpoint_failures_total";
              false)
    in
    if committed then begin
      t.last <- Some (t.time.Broker.now (), body);
      t.checkpoints <- t.checkpoints + 1;
      (* The checkpoint covers everything the journal rebuilt: the prefix
         is redundant, so the checkpoint is the compaction point. *)
      (match t.journal with None -> () | Some j -> Journal.compact j);
      if Obs_log.active () then begin
        Obs_log.count "bb_failover_checkpoints_total";
        Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.checkpoint"
          ~attrs:[ ("n", string_of_int t.checkpoints) ]
      end
    end
  end

let start_checkpoints t ~every =
  if every <= 0. then invalid_arg "Failover.start_checkpoints: every must be positive";
  if not t.ticking then begin
    t.ticking <- true;
    let rec tick () =
      if not t.stopped then begin
        checkpoint t;
        t.time.Broker.after every tick
      end
    in
    t.time.Broker.after every tick
  end

let stop t = t.stopped <- true

let crash t =
  t.up <- false;
  if Obs_log.active () then begin
    Obs_log.count "bb_failover_crashes_total";
    Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.crash"
  end

(* Swap [standby] in as the new active broker and re-baseline: fresh
   checkpoint, compacted + re-attached journal. *)
let install t standby ~restored ~applied ~warning =
  t.replay_warning <- warning;
  Broker.clear_mutation_hook t.active;
  t.active <- standby;
  t.up <- true;
  t.generation <- t.generation + 1;
  (match t.journal with
  | None -> ()
  | Some j ->
      Journal.compact j;
      Journal.attach j standby);
  (* The promoted state is the new baseline.  In storage mode this also
     seals the (possibly torn) pre-crash segment and writes a fresh
     generation covering everything replayed, so the gap between the
     disk's record chain and the in-memory sequence counter is bridged
     by the new cover. *)
  (match t.storage with
  | None -> t.last <- Some (t.time.Broker.now (), Snapshot.save standby)
  | Some _ -> checkpoint t);
  if Obs_log.active () then begin
    Obs_log.count "bb_failover_promotions_total";
    Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.promote"
      ~attrs:
        [
          ("generation", string_of_int t.generation);
          ("restored", string_of_int restored);
          ("replayed", string_of_int applied);
        ]
  end;
  Ok (restored + applied)

(* Cold recovery from a store: trust only the disk.  Walk the verifiable
   checkpoint generations newest first; for each, restore it into a
   fresh broker and replay the longest intact record suffix from its
   cover.  A corrupted current generation therefore degrades to the
   prior one plus a longer replay.  The final fallback (no verifiable
   generation at all) replays whatever intact chain starts at sequence
   0, or lands on the empty state with the loss reported.  Every
   degradation is visible in the returned {!storage_recovery}. *)
let recover_from ~make st =
  let candidates = Storage.candidates st in
  let slots = Storage.slots_present st in
  let attempts =
    List.mapi (fun i (g, c, b) -> (i, Some g, c, Some b)) candidates
    @ [ (List.length candidates, None, 0, None) ]
  in
  let rec go = function
    | [] -> Error "recovery fell through every candidate"
    | (idx, gen, cover, body) :: rest -> (
        let standby = make () in
        let restored =
          match body with None -> Ok 0 | Some b -> Snapshot.restore standby b
        in
        match restored with
        | Error _ -> go rest
        | Ok restored -> (
            let tail = Storage.tail_from st ~cover in
            match
              Journal.replay standby (Journal.text_of_lines tail.Storage.lines)
            with
            | Error _ -> go rest
            | Ok { Journal.applied; warning } ->
                let truncated =
                  match tail.Storage.truncated with
                  | Some _ as why -> why
                  | None -> warning
                in
                Ok
                  ( standby,
                    restored,
                    {
                      sr_gen = gen;
                      sr_cover = cover;
                      sr_fallback = idx > 0 || List.length candidates < slots;
                      sr_truncated = truncated;
                      sr_quarantined = List.length tail.Storage.quarantined;
                      sr_replayed = applied;
                    } )))
  in
  go attempts

let promote_from_storage t st =
  match recover_from ~make:t.make_standby st with
  | Error e -> Error e
  | Ok (standby, restored, recovery) ->
      t.last_recovery <- Some recovery;
      let warning =
        Option.map (fun w -> "storage: " ^ w) recovery.sr_truncated
      in
      install t standby ~restored ~applied:recovery.sr_replayed ~warning

let promote t =
  match t.storage with
  | Some st -> promote_from_storage t st
  | None ->
  match (t.last, t.journal) with
  | None, None -> Error "no checkpoint to promote from"
  | last, journal -> (
      let standby = t.make_standby () in
      (* Checkpoint first (when one exists), then the journal tail on
         top: records since the last checkpoint — the admissions PR 1's
         snapshot-only failover lost.  With a journal but no checkpoint
         yet, the journal covers the broker's whole life and replays
         from empty. *)
      let restored =
        match last with
        | None -> Ok 0
        | Some (_, snapshot) -> Snapshot.restore standby snapshot
      in
      match restored with
      | Error e -> Error e
      | Ok restored -> (
          let tail =
            match journal with
            | None -> Ok { Journal.applied = 0; warning = None }
            | Some j -> (
                match Journal.replay standby (Journal.text j) with
                | Ok outcome -> Ok outcome
                | Error e -> Error (Printf.sprintf "journal replay failed: %s" e))
          in
          match tail with
          | Error e -> Error e
          | Ok { Journal.applied; warning } ->
              t.replay_warning <- warning;
              Broker.clear_mutation_hook t.active;
              t.active <- standby;
              t.up <- true;
              t.generation <- t.generation + 1;
              (* The promoted state is the new baseline: checkpoint it and
                 start journaling the standby's own mutations from here. *)
              t.last <- Some (t.time.Broker.now (), Snapshot.save standby);
              (match journal with
              | None -> ()
              | Some j ->
                  Journal.compact j;
                  Journal.attach j standby);
              if Obs_log.active () then begin
                Obs_log.count "bb_failover_promotions_total";
                Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.promote"
                  ~attrs:
                    [
                      ("generation", string_of_int t.generation);
                      ("restored", string_of_int restored);
                      ("replayed", string_of_int applied);
                    ]
              end;
              Ok (restored + applied)))

let snapshot_age t =
  match t.last with
  | None -> None
  | Some (at, _) -> Some (t.time.Broker.now () -. at)

let checkpoints t = t.checkpoints

let generation t = t.generation
