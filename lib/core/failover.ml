type t = {
  make_standby : unit -> Broker.t;
  time : Broker.time_hooks;
  mutable active : Broker.t;
  mutable up : bool;
  mutable last : (float * string) option;
  mutable checkpoints : int;
  mutable generation : int;
  mutable ticking : bool;
  mutable stopped : bool;
}

let create ~make_standby ?time primary =
  let time = Option.value ~default:Broker.immediate_time time in
  {
    make_standby;
    time;
    active = primary;
    up = true;
    last = None;
    checkpoints = 0;
    generation = 0;
    ticking = false;
    stopped = false;
  }

let active t = t.active

let is_up t = t.up

let checkpoint t =
  if t.up then begin
    t.last <- Some (t.time.Broker.now (), Snapshot.save t.active);
    t.checkpoints <- t.checkpoints + 1;
    if Obs_log.active () then begin
      Obs_log.count "bb_failover_checkpoints_total";
      Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.checkpoint"
        ~attrs:[ ("n", string_of_int t.checkpoints) ]
    end
  end

let start_checkpoints t ~every =
  if every <= 0. then invalid_arg "Failover.start_checkpoints: every must be positive";
  if not t.ticking then begin
    t.ticking <- true;
    let rec tick () =
      if not t.stopped then begin
        checkpoint t;
        t.time.Broker.after every tick
      end
    in
    t.time.Broker.after every tick
  end

let stop t = t.stopped <- true

let crash t =
  t.up <- false;
  if Obs_log.active () then begin
    Obs_log.count "bb_failover_crashes_total";
    Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.crash"
  end

let promote t =
  match t.last with
  | None -> Error "no checkpoint to promote from"
  | Some (_, snapshot) -> (
      let standby = t.make_standby () in
      match Snapshot.restore standby snapshot with
      | Error e -> Error e
      | Ok restored ->
          t.active <- standby;
          t.up <- true;
          t.generation <- t.generation + 1;
          if Obs_log.active () then begin
            Obs_log.count "bb_failover_promotions_total";
            Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.promote"
              ~attrs:
                [
                  ("generation", string_of_int t.generation);
                  ("restored", string_of_int restored);
                ]
          end;
          Ok restored)

let snapshot_age t =
  match t.last with
  | None -> None
  | Some (at, _) -> Some (t.time.Broker.now () -. at)

let checkpoints t = t.checkpoints

let generation t = t.generation
