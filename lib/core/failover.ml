type t = {
  make_standby : unit -> Broker.t;
  time : Broker.time_hooks;
  journal : Journal.t option;
  mutable active : Broker.t;
  mutable up : bool;
  mutable last : (float * string) option;
  mutable checkpoints : int;
  mutable generation : int;
  mutable ticking : bool;
  mutable stopped : bool;
  mutable replay_warning : string option;
}

let create ~make_standby ?time ?journal primary =
  let time = Option.value ~default:Broker.immediate_time time in
  (match journal with None -> () | Some j -> Journal.attach j primary);
  {
    make_standby;
    time;
    journal;
    active = primary;
    up = true;
    last = None;
    checkpoints = 0;
    generation = 0;
    ticking = false;
    stopped = false;
    replay_warning = None;
  }

let active t = t.active

let is_up t = t.up

let journal t = t.journal

let replay_warning t = t.replay_warning

let checkpoint t =
  if t.up then begin
    t.last <- Some (t.time.Broker.now (), Snapshot.save t.active);
    t.checkpoints <- t.checkpoints + 1;
    (* The checkpoint covers everything the journal rebuilt: the prefix
       is redundant, so the checkpoint is the compaction point. *)
    (match t.journal with None -> () | Some j -> Journal.compact j);
    if Obs_log.active () then begin
      Obs_log.count "bb_failover_checkpoints_total";
      Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.checkpoint"
        ~attrs:[ ("n", string_of_int t.checkpoints) ]
    end
  end

let start_checkpoints t ~every =
  if every <= 0. then invalid_arg "Failover.start_checkpoints: every must be positive";
  if not t.ticking then begin
    t.ticking <- true;
    let rec tick () =
      if not t.stopped then begin
        checkpoint t;
        t.time.Broker.after every tick
      end
    in
    t.time.Broker.after every tick
  end

let stop t = t.stopped <- true

let crash t =
  t.up <- false;
  if Obs_log.active () then begin
    Obs_log.count "bb_failover_crashes_total";
    Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.crash"
  end

let promote t =
  match (t.last, t.journal) with
  | None, None -> Error "no checkpoint to promote from"
  | last, journal -> (
      let standby = t.make_standby () in
      (* Checkpoint first (when one exists), then the journal tail on
         top: records since the last checkpoint — the admissions PR 1's
         snapshot-only failover lost.  With a journal but no checkpoint
         yet, the journal covers the broker's whole life and replays
         from empty. *)
      let restored =
        match last with
        | None -> Ok 0
        | Some (_, snapshot) -> Snapshot.restore standby snapshot
      in
      match restored with
      | Error e -> Error e
      | Ok restored -> (
          let tail =
            match journal with
            | None -> Ok { Journal.applied = 0; warning = None }
            | Some j -> (
                match Journal.replay standby (Journal.text j) with
                | Ok outcome -> Ok outcome
                | Error e -> Error (Printf.sprintf "journal replay failed: %s" e))
          in
          match tail with
          | Error e -> Error e
          | Ok { Journal.applied; warning } ->
              t.replay_warning <- warning;
              Broker.clear_mutation_hook t.active;
              t.active <- standby;
              t.up <- true;
              t.generation <- t.generation + 1;
              (* The promoted state is the new baseline: checkpoint it and
                 start journaling the standby's own mutations from here. *)
              t.last <- Some (t.time.Broker.now (), Snapshot.save standby);
              (match journal with
              | None -> ()
              | Some j ->
                  Journal.compact j;
                  Journal.attach j standby);
              if Obs_log.active () then begin
                Obs_log.count "bb_failover_promotions_total";
                Obs_log.event ~at:(t.time.Broker.now ()) "bb.failover.promote"
                  ~attrs:
                    [
                      ("generation", string_of_int t.generation);
                      ("restored", string_of_int restored);
                      ("replayed", string_of_int applied);
                    ]
              end;
              Ok (restored + applied)))

let snapshot_age t =
  match t.last with
  | None -> None
  | Some (at, _) -> Some (t.time.Broker.now () -. at)

let checkpoints t = t.checkpoints

let generation t = t.generation
