module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Vtedf = Bbr_vtrs.Vtedf
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

type path_state = {
  hops : int;
  rate_hops : int;
  delay_hops : int;
  d_tot : float;
  cres : float;
  edf : Vtedf.t list;
}

let path_state node_mib path_mib (info : Path_mib.info) =
  let edf =
    List.filter_map
      (fun (l : Topology.link) ->
        (Node_mib.entry node_mib ~link_id:l.Topology.link_id).Node_mib.edf)
      info.Path_mib.links
  in
  {
    hops = info.Path_mib.hops;
    rate_hops = info.Path_mib.rate_hops;
    delay_hops = info.Path_mib.delay_hops;
    d_tot = info.Path_mib.d_tot;
    cres = Path_mib.residual path_mib info;
    edf;
  }

let rate_based ps (p : Traffic.t) ~dreq =
  if ps.delay_hops <> 0 then
    invalid_arg "Admission.rate_based: path has delay-based hops";
  match Delay.min_rate_rate_based p ~hops:ps.hops ~d_tot:ps.d_tot ~dreq with
  | None -> Error Types.Delay_unachievable
  | Some rmin ->
      let low = Float.max p.Traffic.rho rmin in
      let up = Float.min p.Traffic.peak ps.cres in
      if Fp.leq low up then Ok low
      else if Fp.gt rmin p.Traffic.peak then Error Types.Delay_unachievable
      else Error Types.Insufficient_bandwidth

let schedulable ps ~rate ~delay ~lmax =
  Fp.leq rate ps.cres
  && List.for_all (fun edf -> Vtedf.can_admit edf ~rate ~delay ~lmax) ps.edf

(* ------------------------------------------------------------------ *)
(* Mixed rate/delay-based paths (Section 3.2).                        *)

(* The merged breakpoint table: every distinct delay value [d^m] supported
   across the delay-based schedulers of the path, with the minimal residual
   service [S^m] of the path at [d^m] (paper, Section 3.2).  Kept as
   parallel arrays so an admission cache can maintain the table in place
   and hand it to {!mixed} without re-merging. *)
type merged = { m : int; md : float array; ms : float array }

let merge_breakpoints ps =
  let module M = Map.Make (Float) in
  let merge acc edf =
    List.fold_left
      (fun acc (d, s) ->
        M.update d (function None -> Some s | Some s0 -> Some (Float.min s0 s)) acc)
      acc (Vtedf.breakpoints edf)
  in
  let map = List.fold_left merge M.empty ps.edf in
  let m = M.cardinal map in
  let md = Array.make (max 1 m) 0. and ms = Array.make (max 1 m) 0. in
  let i = ref 0 in
  M.iter
    (fun d s ->
      md.(!i) <- d;
      ms.(!i) <- s;
      incr i)
    map;
  { m; md; ms }

(* Shared precomputation for [mixed] and [mixed_reference]. *)
type mixed_ctx = {
  tval : float;  (* t^nu *)
  xi : float;  (* Xi^nu *)
  lmax : float;
  rho : float;
  r_cap : float;  (* min(peak, cres) *)
  mg : merged;
  n_lt : int;  (* number of breakpoints with d < t (index of interval count - 1) *)
  ub_tail : float;  (* upper bound on r from breakpoints with d >= t; can be < 0 *)
}

let make_ctx ?bps ps (p : Traffic.t) ~dreq =
  if ps.delay_hops = 0 then invalid_arg "Admission.mixed: path has no delay-based hop";
  let dh = float_of_int ps.delay_hops in
  let ton = Traffic.t_on p in
  let tval = (dreq -. ps.d_tot +. ton) /. dh in
  if tval <= 0. then Error Types.Delay_unachievable
  else begin
    let xi =
      ((ton *. p.Traffic.peak) +. (float_of_int (ps.rate_hops + 1) *. p.Traffic.lmax))
      /. dh
    in
    let mg = match bps with Some mg -> mg | None -> merge_breakpoints ps in
    let n_lt =
      let count = ref 0 in
      for k = 0 to mg.m - 1 do
        if mg.md.(k) < tval then incr count
      done;
      !count
    in
    (* Constraints from flows whose delay parameter is >= t apply to every
       candidate: r (d^k - t) + Xi + lmax <= S^k. *)
    let ub_tail = ref infinity in
    let feasible = ref true in
    for k = n_lt to mg.m - 1 do
      let d = mg.md.(k) and s = mg.ms.(k) in
      if Fp.approx d tval then begin
        if Fp.lt s (xi +. p.Traffic.lmax) then feasible := false
      end
      else begin
        let bound = (s -. xi -. p.Traffic.lmax) /. (d -. tval) in
        if bound < !ub_tail then ub_tail := bound
      end
    done;
    if not !feasible then Error Types.Not_schedulable
    else
      Ok
        {
          tval;
          xi;
          lmax = p.Traffic.lmax;
          rho = p.Traffic.rho;
          r_cap = Float.min p.Traffic.peak ps.cres;
          mg;
          n_lt;
          ub_tail = !ub_tail;
        }
  end

(* Interval j (0-based, j in [0, n_lt]) covers candidate delays
   [lo_j, hi_j) with lo_j = d^{j-1} (0 for j = 0) and hi_j = d^j
   (t for j = n_lt). *)
let interval_lo ctx j = if j = 0 then 0. else ctx.mg.md.(j - 1)

let interval_hi ctx j = if j = ctx.n_lt then ctx.tval else ctx.mg.md.(j)

(* Lower bound on r from flows with delay parameter in [hi_j, t):
   r >= (Xi + lmax - S^k) / (t - d^k) for k in [j, n_lt). *)
let del_lower ctx j =
  let lb = ref 0. in
  for k = j to ctx.n_lt - 1 do
    let bound = (ctx.xi +. ctx.lmax -. ctx.mg.ms.(k)) /. (ctx.tval -. ctx.mg.md.(k)) in
    if bound > !lb then lb := bound
  done;
  !lb

(* The corresponding published upper-bound term of eq. (11); vacuous for
   candidates inside interval j (see DESIGN.md) but kept as printed. *)
let del_upper ctx j =
  let ub = ref ctx.ub_tail in
  for k = j to ctx.n_lt - 1 do
    let bound = (ctx.xi +. ctx.lmax) /. (ctx.tval -. ctx.mg.md.(k)) in
    if bound < !ub then ub := bound
  done;
  !ub

let delay_for ctx rate = Float.max 0. (ctx.tval -. (ctx.xi /. rate))

(* Figure-4 scan: from the rightmost interval [m*] leftwards, maintaining
   the R_del edges incrementally — moving one interval left adds exactly
   one breakpoint's constraints, which keeps the whole scan O(M) as the
   paper claims.  Theorem 1 gives both the early-accept rule (the
   delay-constraint lower edge is globally minimal) and the early-reject
   rule. *)
let mixed_scan ctx =
  let candidate = ref None in
  let result = ref None in
  let j = ref ctx.n_lt in
  let stop = ref false in
  let del_l_run = ref 0. and del_r_run = ref ctx.ub_tail in
  while (not !stop) && !j >= 0 do
    (* Entering interval j brings breakpoint j (delays in [d^j, t)) into
       the constraint set. *)
    if !j < ctx.n_lt then begin
      let gap = ctx.tval -. ctx.mg.md.(!j) in
      del_l_run := Float.max !del_l_run ((ctx.xi +. ctx.lmax -. ctx.mg.ms.(!j)) /. gap);
      del_r_run := Float.min !del_r_run ((ctx.xi +. ctx.lmax) /. gap)
    end;
    let lo_d = interval_lo ctx !j and hi_d = interval_hi ctx !j in
    let fea_l =
      let from_interval =
        if ctx.tval -. lo_d > 0. then ctx.xi /. (ctx.tval -. lo_d) else infinity
      in
      Float.max ctx.rho from_interval
    in
    let fea_r =
      if !j = ctx.n_lt then ctx.r_cap
      else if ctx.tval -. hi_d > 0. then
        Float.min ctx.r_cap (ctx.xi /. (ctx.tval -. hi_d))
      else ctx.r_cap
    in
    let del_l = !del_l_run in
    let del_r = !del_r_run in
    let lo = Float.max fea_l del_l and hi = Float.min fea_r del_r in
    if Fp.leq lo hi then begin
      if Fp.lt fea_l del_l then begin
        (* Theorem 1: r = r_del^{m,l} is the globally minimal rate. *)
        result := Some (del_l, delay_for ctx del_l);
        stop := true
      end
      else begin
        candidate := Some (fea_l, delay_for ctx fea_l);
        decr j
      end
    end
    else begin
      (* Empty intersection.  Moving left, [fea_r] and [del_r] only
         shrink while [del_l] only grows (the Figure-5 monotonicity), so
         emptiness caused by [del] or by the constant caps is final;
         emptiness caused by the interval membership edge
         [xi / (t - d^{m-1})] alone is recoverable further left. *)
      let break_now =
        Fp.gt del_l del_r || Fp.lt fea_r del_l || Fp.lt fea_r ctx.rho
      in
      if break_now then stop := true else decr j
    end
  done;
  match !result with Some r -> Some r | None -> !candidate

(* ------------------------------------------------------------------ *)
(* Exact reference oracle: evaluate every constraint per interval.    *)

(* Smallest delay in [lo, hi) at which a packet of size [lmax] meets the
   candidate's own schedulability constraint at scheduler [edf]
   (residual_service >= lmax); the residual service is linear within the
   interval. *)
let own_delay_in edf ~lmax ~lo ~hi =
  let g0 = Vtedf.residual_service edf ~at:lo in
  if Fp.geq g0 lmax then Some lo
  else begin
    let slope = Vtedf.capacity edf -. Vtedf.rate_below edf ~at:lo in
    if slope <= 0. then None
    else
      let d = lo +. ((lmax -. g0) /. slope) in
      if d < hi then Some d else None
  end

let mixed_reference_scan ps ctx =
  let best = ref None in
  for j = 0 to ctx.n_lt do
    let lo_d = interval_lo ctx j and hi_d = interval_hi ctx j in
    (* Own-deadline constraint at each delay-based scheduler. *)
    let d_own =
      List.fold_left
        (fun acc edf ->
          match acc with
          | None -> None
          | Some d -> (
              match own_delay_in edf ~lmax:ctx.lmax ~lo:lo_d ~hi:hi_d with
              | None -> None
              | Some d' -> Some (Float.max d d')))
        (Some lo_d) ps.edf
    in
    match d_own with
    | None -> ()
    | Some dlo ->
        let r_lo =
          let from_delay =
            if ctx.tval -. dlo > 0. then ctx.xi /. (ctx.tval -. dlo) else infinity
          in
          Float.max ctx.rho (Float.max from_delay (del_lower ctx j))
        in
        let r_hi =
          let from_interval =
            if j = ctx.n_lt then infinity
            else if ctx.tval -. hi_d > 0. then ctx.xi /. (ctx.tval -. hi_d)
            else infinity
          in
          Float.min ctx.r_cap (Float.min ctx.ub_tail from_interval)
        in
        if Fp.leq r_lo r_hi then begin
          match !best with
          | Some (r, _) when r <= r_lo -> ()
          | _ -> best := Some (r_lo, delay_for ctx r_lo)
        end
  done;
  !best

let classify_reject ps (p : Traffic.t) ctx =
  (* Distinguish "never admissible on this path" from load-dependent
     rejections.  Even an idle path cannot push the delay parameter below
     the per-scheduler floor lmax/C (the candidate's own constraint), so
     the load-independent minimal rate is Xi / (t - d_floor); if that
     exceeds the peak rate, no load relief can ever help. *)
  let d_floor =
    List.fold_left
      (fun acc edf -> Float.max acc (p.Traffic.lmax /. Vtedf.capacity edf))
      0. ps.edf
  in
  if
    ctx.tval <= d_floor
    || Fp.gt (ctx.xi /. (ctx.tval -. d_floor)) p.Traffic.peak
  then Types.Delay_unachievable
  else if Fp.lt ps.cres p.Traffic.rho then Types.Insufficient_bandwidth
  else Types.Not_schedulable

let mixed_reference ?bps ps p ~dreq =
  match make_ctx ?bps ps p ~dreq with
  | Error e -> Error e
  | Ok ctx -> (
      match mixed_reference_scan ps ctx with
      | Some pair -> Ok pair
      | None -> Error (classify_reject ps p ctx))

let mixed ?bps ps p ~dreq =
  match make_ctx ?bps ps p ~dreq with
  | Error e -> Error e
  | Ok ctx -> (
      let fallback () = mixed_reference ?bps ps p ~dreq in
      match mixed_scan ctx with
      | Some (rate, delay) ->
          if schedulable ps ~rate ~delay ~lmax:p.Traffic.lmax then Ok (rate, delay)
          else fallback ()
      | None -> (
          (* The Figure-4 formulas can be conservative in corner cases
             (own-deadline constraint): double-check with the oracle. *)
          match fallback () with
          | Ok pair -> Ok pair
          | Error _ -> Error (classify_reject ps p ctx)))

type interval_view = {
  index : int;
  d_lo : float;
  d_hi : float;
  fea_l : float;
  fea_r : float;
  del_l : float;
  del_r : float;
}

let intervals ?bps ps p ~dreq =
  match make_ctx ?bps ps p ~dreq with
  | Error _ -> []
  | Ok ctx ->
      List.init (ctx.n_lt + 1) (fun j ->
          let lo_d = interval_lo ctx j and hi_d = interval_hi ctx j in
          let fea_l =
            Float.max ctx.rho
              (if ctx.tval -. lo_d > 0. then ctx.xi /. (ctx.tval -. lo_d) else infinity)
          in
          let fea_r =
            if j = ctx.n_lt then ctx.r_cap
            else if ctx.tval -. hi_d > 0. then
              Float.min ctx.r_cap (ctx.xi /. (ctx.tval -. hi_d))
            else ctx.r_cap
          in
          {
            index = j + 1;
            d_lo = lo_d;
            d_hi = hi_d;
            fea_l;
            fea_r;
            del_l = del_lower ctx j;
            del_r = del_upper ctx j;
          })

let admit ?bps ps p ~dreq =
  if ps.delay_hops = 0 then
    match rate_based ps p ~dreq with
    | Ok rate -> Ok { Types.rate; delay = 0. }
    | Error e -> Error e
  else
    match mixed ?bps ps p ~dreq with
    | Ok (rate, delay) -> Ok { Types.rate; delay }
    | Error e -> Error e

(* Brownout fallback: the Section-3.1 closed form applied to a mixed path.
   Treat every hop as rate-based — r_min over all [hops] — and hand each
   delay-based scheduler the pair <r, lmax/r>, under which a VT-EDF server
   contributes exactly the lmax/r per-hop term a rate-based server would
   (eq. (2) with d = lmax/r collapses to eq. (4)'s all-rate-based form), so
   the end-to-end bound holds by construction.  The pair is still validated
   against the exact schedulability condition before being offered: the
   test can only refuse flows {!mixed} would have placed (no interval scan,
   no rate-delay trade-off), never admit one the exact oracle rejects. *)
let conservative ps (p : Traffic.t) ~dreq =
  if ps.delay_hops = 0 then
    match rate_based ps p ~dreq with
    | Ok rate -> Ok { Types.rate; delay = 0. }
    | Error e -> Error e
  else
    match Delay.min_rate_rate_based p ~hops:ps.hops ~d_tot:ps.d_tot ~dreq with
    | None -> Error Types.Delay_unachievable
    | Some rmin ->
        if Fp.gt rmin p.Traffic.peak then Error Types.Delay_unachievable
        else begin
          let rate = Float.max p.Traffic.rho rmin in
          if Fp.gt rate ps.cres then Error Types.Insufficient_bandwidth
          else begin
            let delay = p.Traffic.lmax /. rate in
            if schedulable ps ~rate ~delay ~lmax:p.Traffic.lmax then
              Ok { Types.rate; delay }
            else Error Types.Not_schedulable
          end
        end
