module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace

type reliability = {
  loss : unit -> bool;
  timeout : float;
  backoff : float;
  max_timeout : float;
  jitter : (unit -> float) option;
  busy_retries : int;
}

let reliability ?(timeout = 0.05) ?(backoff = 2.) ?(max_timeout = 1.) ?jitter
    ?(busy_retries = 5) ~loss () =
  if timeout <= 0. then invalid_arg "Cops.reliability: timeout must be positive";
  if backoff < 1. then invalid_arg "Cops.reliability: backoff must be >= 1";
  if busy_retries < 0 then invalid_arg "Cops.reliability: busy_retries must be >= 0";
  { loss; timeout; backoff; max_timeout = Float.max timeout max_timeout; jitter; busy_retries }

type pdp = Types.request -> ((Types.flow_id * Types.reservation, Types.reject_reason) result -> unit) -> unit

type t = {
  mutable broker : Broker.t;
  latency : float;
  defer : float -> (unit -> unit) -> unit;
  rel : reliability option;
  mutable pdp : pdp option;
  mutable pdp_up : bool;
  mutable messages : int;
  mutable pending : int;
  mutable retransmissions : int;
  mutable duplicates : int;
  mutable busy_backoffs : int;
}

let create broker ?(latency = 0.005) ?reliability ?pdp ~defer () =
  {
    broker;
    latency;
    defer;
    rel = reliability;
    pdp;
    pdp_up = true;
    messages = 0;
    pending = 0;
    retransmissions = 0;
    duplicates = 0;
    busy_backoffs = 0;
  }

let set_broker t broker = t.broker <- broker

let set_pdp t pdp = t.pdp <- Some pdp

let clear_pdp t = t.pdp <- None

let set_pdp_up t up = t.pdp_up <- up

let next_timeout r timeout = Float.min r.max_timeout (timeout *. r.backoff)

(* Spread a timer by the reliability's jitter source: [d * (1 + j)] with
   [j] in [0, 1).  Without a jitter source timers are exact, as in the
   base protocol — and as in the synchronized retry storms it suffers. *)
let jittered r d = match r.jitter with None -> d | Some j -> d *. (1. +. j ())

(* One message leg: counted whether or not it arrives (wire overhead is what
   we measure), dropped by the loss process when reliability is on. *)
let send t action =
  t.messages <- t.messages + 1;
  Metrics.count "bb_cops_messages_total";
  let lost = match t.rel with Some r -> r.loss () | None -> false in
  if not lost then t.defer t.latency action

let note_pending t = Metrics.set_gauge "bb_cops_pending" (float_of_int t.pending)

(* One request/decision exchange.  [decide] runs at whichever broker is the
   PDP when the (possibly retransmitted) REQ arrives; [accepted] says
   whether an RPT follows a positive decision.

   Reliability machinery, active only when the channel was created with a
   [reliability]:
   - the PEP retransmits the REQ on a capped exponential-backoff timer until
     a DEC arrives;
   - the PDP remembers the decision of this transaction and replays it for
     duplicate REQs instead of re-deciding, so a lost DEC cannot double-book
     a flow.  The memory is tied to the broker instance that decided: after
     a fail-over to a standby the transaction is decided afresh (at-least-
     once semantics across a crash);
   - the PEP resolves each transaction exactly once, so duplicate DECs
     cannot leak [pending] or fire [on_decision] twice. *)
(* [decide] is continuation-passing: at the PDP it may answer inline (the
   plain broker call) or asynchronously (the {!Overload} admission queue,
   installed with {!set_pdp}).  [busy] extracts the [Server_busy] back-off
   hint from a decision, if any.

   Server_busy handling, reliable channels only: the PEP does {e not}
   resolve the transaction — it silences its retransmission timers (by
   bumping [gen]), forgets the PDP's recorded decision (a busy verdict
   must not be replayed from the duplicate cache), waits the jittered
   [retry_after], and re-enters the REQ path.  After [busy_retries]
   consecutive busy verdicts the PEP gives up and delivers the error. *)
let exchange t ~decide ~busy ~accepted ~on_decision =
  t.pending <- t.pending + 1;
  note_pending t;
  (* The whole REQ->DEC exchange is one span, rooted at submission (or
     parented on the ambient caller).  Its sim extent covers wire legs,
     retransmissions, busy backoffs and the PDP's admission pipeline;
     the PDP's own spans nest under it via [with_ambient]. *)
  let now () = Broker.now t.broker in
  let xsp = Trace.start_span ~sim_time:(now ()) "bb.cops.exchange" in
  let resolved = ref false in
  let decided = ref None in
  let deciding = ref None in
  (* The busy-wait span outstanding between a Server_busy verdict and its
     retry timer.  A stale DEC can resolve the exchange mid-backoff; the
     wait ends then, not when the timer fires, so whichever side runs
     first finishes the span and clears the slot. *)
  let busy_sp = ref None in
  let finish_busy () =
    match !busy_sp with
    | None -> ()
    | Some b ->
        busy_sp := None;
        Trace.finish_span ~sim_time:(Broker.now t.broker) b
  in
  let gen = ref 0 in
  let busy_left = ref (match t.rel with Some r -> r.busy_retries | None -> 0) in
  let rec deliver_decision dec =
    if not !resolved then begin
      match (t.rel, if !busy_left > 0 then busy dec else None) with
      | Some r, Some retry_after ->
          busy_left := !busy_left - 1;
          incr gen;
          let g = !gen in
          decided := None;
          t.busy_backoffs <- t.busy_backoffs + 1;
          Metrics.count "bb_cops_busy_backoffs_total";
          let bsp =
            Trace.start_span ~sim_time:(now ()) ~parent:xsp
              ~attrs:[ ("gen", string_of_int g) ]
              "bb.cops.busy_wait"
          in
          busy_sp := Some bsp;
          t.defer
            (jittered r (Float.max retry_after r.timeout))
            (fun () ->
              (match !busy_sp with
              | Some b when b == bsp ->
                  busy_sp := None;
                  Trace.finish_span ~sim_time:(now ()) bsp
              | _ -> ());
              if (not !resolved) && g = !gen then
                Trace.with_ambient xsp (fun () -> attempt g r.timeout))
      | _ ->
          resolved := true;
          t.pending <- t.pending - 1;
          note_pending t;
          finish_busy ();
          Trace.finish_span ~sim_time:(now ())
            ~attrs:[ ("result", if accepted dec then "accept" else "reject") ]
            xsp;
          on_decision dec;
          (* The PEP reports successful installation of the decision. *)
          if accepted dec then send t (fun () -> ())
    end
  and pdp_decide () =
    match !decided with
    | Some (pdp, dec) when pdp == t.broker ->
        t.duplicates <- t.duplicates + 1;
        Metrics.count "bb_cops_duplicates_total";
        send t (fun () -> deliver_decision dec)
    | _ -> (
        match !deciding with
        | Some pdp when pdp == t.broker ->
            (* The decision for this transaction is still in the PDP's
               admission pipeline: swallow the duplicate REQ rather than
               queue the same work twice. *)
            t.duplicates <- t.duplicates + 1;
            Metrics.count "bb_cops_duplicates_total"
        | _ ->
            let b = t.broker in
            deciding := Some b;
            Trace.with_ambient xsp (fun () ->
                decide b (fun dec ->
                    (match !deciding with
                    | Some pdp when pdp == b -> deciding := None
                    | _ -> ());
                    if b == t.broker then decided := Some (b, dec);
                    send t (fun () -> deliver_decision dec))))
  and attempt g timeout =
    if (not !resolved) && g = !gen then begin
      send t (fun () ->
          (* REQ arrived at the PDP: decide and send DEC back.  A crashed
             PDP consumes the message without answering. *)
          if t.pdp_up then pdp_decide ());
      match t.rel with
      | None -> ()
      | Some r ->
          t.defer (jittered r timeout) (fun () ->
              if (not !resolved) && g = !gen then begin
                t.retransmissions <- t.retransmissions + 1;
                Metrics.count "bb_cops_retransmissions_total";
                Trace.event ~sim_time:(now ()) ~parent:xsp "bb.cops.retransmit";
                attempt g (next_timeout r timeout)
              end)
    end
  in
  attempt 0 (match t.rel with Some r -> r.timeout | None -> 0.)

let busy_reject = function
  | Error (Types.Server_busy { retry_after }) -> Some retry_after
  | _ -> None

let request t req ~on_decision =
  exchange t
    ~decide:(fun broker k ->
      match t.pdp with
      | Some pdp -> pdp req k
      | None -> k (Broker.request broker req))
    ~busy:busy_reject
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

let request_class t ?class_id req ~on_decision =
  exchange t
    ~decide:(fun broker k -> k (Broker.request_class broker ?class_id req))
    ~busy:busy_reject
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

(* A DRQ.  Unreliable channel: fire and forget, one message, exactly as the
   base protocol.  Reliable channel: the PDP acknowledges, the PEP
   retransmits until acknowledged, and the PDP applies the delete once per
   transaction per broker (teardown is idempotent at the broker anyway, but
   suppressing duplicates keeps the MIB churn honest). *)
let one_way t apply =
  match t.rel with
  | None -> send t (fun () -> if t.pdp_up then apply t.broker)
  | Some r ->
      let acked = ref false in
      let applied = ref None in
      let rec attempt timeout =
        send t (fun () ->
            if t.pdp_up then begin
              (match !applied with
              | Some pdp when pdp == t.broker ->
                  t.duplicates <- t.duplicates + 1;
                  Metrics.count "bb_cops_duplicates_total"
              | _ ->
                  applied := Some t.broker;
                  apply t.broker);
              send t (fun () -> acked := true)
            end);
        t.defer (jittered r timeout) (fun () ->
            if not !acked then begin
              t.retransmissions <- t.retransmissions + 1;
              Metrics.count "bb_cops_retransmissions_total";
              attempt (next_timeout r timeout)
            end)
      in
      attempt r.timeout

let teardown t flow = one_way t (fun broker -> Broker.teardown broker flow)

let teardown_class t flow = one_way t (fun broker -> Broker.teardown_class broker flow)

let messages t = t.messages

let pending t = t.pending

let retransmissions t = t.retransmissions

let duplicates t = t.duplicates

let busy_backoffs t = t.busy_backoffs
