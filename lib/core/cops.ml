module Metrics = Bbr_obs.Metrics

type reliability = {
  loss : unit -> bool;
  timeout : float;
  backoff : float;
  max_timeout : float;
}

let reliability ?(timeout = 0.05) ?(backoff = 2.) ?(max_timeout = 1.) ~loss () =
  if timeout <= 0. then invalid_arg "Cops.reliability: timeout must be positive";
  if backoff < 1. then invalid_arg "Cops.reliability: backoff must be >= 1";
  { loss; timeout; backoff; max_timeout = Float.max timeout max_timeout }

type t = {
  mutable broker : Broker.t;
  latency : float;
  defer : float -> (unit -> unit) -> unit;
  rel : reliability option;
  mutable pdp_up : bool;
  mutable messages : int;
  mutable pending : int;
  mutable retransmissions : int;
  mutable duplicates : int;
}

let create broker ?(latency = 0.005) ?reliability ~defer () =
  {
    broker;
    latency;
    defer;
    rel = reliability;
    pdp_up = true;
    messages = 0;
    pending = 0;
    retransmissions = 0;
    duplicates = 0;
  }

let set_broker t broker = t.broker <- broker

let set_pdp_up t up = t.pdp_up <- up

let next_timeout r timeout = Float.min r.max_timeout (timeout *. r.backoff)

(* One message leg: counted whether or not it arrives (wire overhead is what
   we measure), dropped by the loss process when reliability is on. *)
let send t action =
  t.messages <- t.messages + 1;
  Metrics.count "bb_cops_messages_total";
  let lost = match t.rel with Some r -> r.loss () | None -> false in
  if not lost then t.defer t.latency action

let note_pending t = Metrics.set_gauge "bb_cops_pending" (float_of_int t.pending)

(* One request/decision exchange.  [decide] runs at whichever broker is the
   PDP when the (possibly retransmitted) REQ arrives; [accepted] says
   whether an RPT follows a positive decision.

   Reliability machinery, active only when the channel was created with a
   [reliability]:
   - the PEP retransmits the REQ on a capped exponential-backoff timer until
     a DEC arrives;
   - the PDP remembers the decision of this transaction and replays it for
     duplicate REQs instead of re-deciding, so a lost DEC cannot double-book
     a flow.  The memory is tied to the broker instance that decided: after
     a fail-over to a standby the transaction is decided afresh (at-least-
     once semantics across a crash);
   - the PEP resolves each transaction exactly once, so duplicate DECs
     cannot leak [pending] or fire [on_decision] twice. *)
let exchange t ~decide ~accepted ~on_decision =
  t.pending <- t.pending + 1;
  note_pending t;
  let resolved = ref false in
  let decided = ref None in
  let pdp_decide () =
    match !decided with
    | Some (pdp, dec) when pdp == t.broker ->
        t.duplicates <- t.duplicates + 1;
        Metrics.count "bb_cops_duplicates_total";
        dec
    | _ ->
        let dec = decide t.broker in
        decided := Some (t.broker, dec);
        dec
  in
  let deliver_decision dec =
    if not !resolved then begin
      resolved := true;
      t.pending <- t.pending - 1;
      note_pending t;
      on_decision dec;
      (* The PEP reports successful installation of the decision. *)
      if accepted dec then send t (fun () -> ())
    end
  in
  let rec attempt timeout =
    send t (fun () ->
        (* REQ arrived at the PDP: decide and send DEC back.  A crashed
           PDP consumes the message without answering. *)
        if t.pdp_up then begin
          let dec = pdp_decide () in
          send t (fun () -> deliver_decision dec)
        end);
    match t.rel with
    | None -> ()
    | Some r ->
        t.defer timeout (fun () ->
            if not !resolved then begin
              t.retransmissions <- t.retransmissions + 1;
              Metrics.count "bb_cops_retransmissions_total";
              attempt (next_timeout r timeout)
            end)
  in
  attempt (match t.rel with Some r -> r.timeout | None -> 0.)

let request t req ~on_decision =
  exchange t
    ~decide:(fun broker -> Broker.request broker req)
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

let request_class t ?class_id req ~on_decision =
  exchange t
    ~decide:(fun broker -> Broker.request_class broker ?class_id req)
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

(* A DRQ.  Unreliable channel: fire and forget, one message, exactly as the
   base protocol.  Reliable channel: the PDP acknowledges, the PEP
   retransmits until acknowledged, and the PDP applies the delete once per
   transaction per broker (teardown is idempotent at the broker anyway, but
   suppressing duplicates keeps the MIB churn honest). *)
let one_way t apply =
  match t.rel with
  | None -> send t (fun () -> if t.pdp_up then apply t.broker)
  | Some r ->
      let acked = ref false in
      let applied = ref None in
      let rec attempt timeout =
        send t (fun () ->
            if t.pdp_up then begin
              (match !applied with
              | Some pdp when pdp == t.broker ->
                  t.duplicates <- t.duplicates + 1;
                  Metrics.count "bb_cops_duplicates_total"
              | _ ->
                  applied := Some t.broker;
                  apply t.broker);
              send t (fun () -> acked := true)
            end);
        t.defer timeout (fun () ->
            if not !acked then begin
              t.retransmissions <- t.retransmissions + 1;
              Metrics.count "bb_cops_retransmissions_total";
              attempt (next_timeout r timeout)
            end)
      in
      attempt r.timeout

let teardown t flow = one_way t (fun broker -> Broker.teardown broker flow)

let teardown_class t flow = one_way t (fun broker -> Broker.teardown_class broker flow)

let messages t = t.messages

let pending t = t.pending

let retransmissions t = t.retransmissions

let duplicates t = t.duplicates
