(* Telemetry tour: install a metrics registry and a tracer, run the
   Figure-8 static fill, and inspect what the control plane recorded —
   the admission decision log, per-stage control-loop latency, and the
   exported metrics snapshot.

   Run with: dune exec examples/telemetry_tour.exe *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace
module Exporter = Bbr_obs.Exporter
module Stats = Bbr_util.Stats
module Static = Bbr_workload.Static
module Telemetry = Bbr_broker.Telemetry

let () =
  (* 1. Observability is opt-in: nothing is recorded until a registry and
        a tracer are installed in the process-wide slots. *)
  let reg = Metrics.create () in
  let tracer = Trace.create () in
  Metrics.install reg;
  Trace.install tracer;

  (* 2. Run the paper's Figure-8 static fill.  [observe] registers the
        broker's derived gauges: per-link reservation and utilization,
        flow and macroflow counts. *)
  let r =
    Static.fill ~setting:`Mixed ~dreq:2.19
      ~observe:Telemetry.register_broker Static.Perflow_bb
  in
  Fmt.pr "fill admitted %d flows@.@." r.Static.admitted;

  (* 3. The decision log: every admit/reject as a structured record. *)
  let decisions = Trace.decisions tracer in
  Fmt.pr "decision log (%d entries, last 3):@." (List.length decisions);
  List.iteri
    (fun i ((_ : Trace.entry), (d : Trace.decision)) ->
      if i >= List.length decisions - 3 then
        match d.Trace.reject_reason with
        | None ->
            Fmt.pr "  #%d %s %s->%s admit flow=%d rate=%.0f b/s@." i
              d.Trace.service d.Trace.ingress d.Trace.egress
              (Option.value ~default:(-1) d.Trace.flow)
              d.Trace.rate
        | Some reason ->
            Fmt.pr "  #%d %s %s->%s reject (%s)@." i d.Trace.service
              d.Trace.ingress d.Trace.egress reason)
    decisions;

  (* 4. Per-stage latency of the Figure-1 control loop, from the span
        ring (exact percentiles; the bb_stage_seconds histogram carries
        the same data bucketed for export). *)
  Fmt.pr "@.control-loop stages:@.";
  List.iter
    (fun stage ->
      let d = Trace.durations tracer ~name:("bb.stage." ^ stage) in
      if Array.length d > 0 then
        Fmt.pr "  %-13s n=%3d p50=%6.2f us p99=%6.2f us@." stage
          (Array.length d)
          (Stats.percentile d ~p:50. *. 1e6)
          (Stats.percentile d ~p:99. *. 1e6))
    [ "policy"; "routing"; "admissibility"; "bookkeeping"; "cops_push" ];

  (* 5. Export the snapshot.  Shown: the admission counters and the link
        gauges; [Exporter.to_json] renders the same snapshot as JSON. *)
  Fmt.pr "@.snapshot excerpt:@.";
  String.split_on_char '\n' (Exporter.to_prometheus reg)
  |> List.iter (fun line ->
         let keep p = String.length line >= String.length p
                      && String.sub line 0 (String.length p) = p in
         if keep "bb_admission" || keep "bb_link_utilization" then
           Fmt.pr "  %s@." line);

  Metrics.uninstall ();
  Trace.uninstall ()
