(* Fault-tolerant control plane, end to end: churn workload over a lossy
   reliable COPS channel, a link failure rerouted by the broker onto a
   protection detour, and a broker crash recovered by promoting a warm
   standby from its last checkpoint.  Seeded, so every run prints the
   same numbers. *)

module Failure = Bbr_workload.Failure

let scenario ~loss =
  {
    Failure.default_config with
    loss;
    (* A protection detour R3 -> R6 -> R4 parallel to the R3 -> R4 link.
       It is one hop longer, so routing ignores it until R3 -> R4 dies —
       then victims are re-admitted over it, keeping their flow ids. *)
    extra_links = [ ("R3", "R6", Bbr_workload.Fig8.capacity); ("R6", "R4", Bbr_workload.Fig8.capacity) ];
    link_down = [ (600., ("R3", "R4")) ];
    link_up = [ (900., ("R3", "R4")) ];
    (* The broker crashes at t = 1500 s.  Checkpointing is per-decision,
       so the standby's snapshot is exactly the broker's state at the
       crash: with a loss-free channel, no flow is lost. *)
    crash_at = Some 1500.;
    promote_after = 0.5;
    checkpoint_every = None;
    checkpoint_on_decision = true;
  }

let () =
  Fmt.pr "=== Failover under a loss-free channel ===@.";
  let o = Failure.run (scenario ~loss:0.) in
  Fmt.pr "%a@.@." Failure.pp_outcome o;
  assert (o.Failure.unresolved = 0);
  assert (o.Failure.flows_lost = 0);
  Fmt.pr "fresh snapshot + no loss: crash lost %d flows@.@." o.Failure.flows_lost;

  Fmt.pr "=== Same scenario, 10%% COPS message loss ===@.";
  let o = Failure.run (scenario ~loss:0.1) in
  Fmt.pr "%a@.@." Failure.pp_outcome o;
  (* Reliability at work: despite the loss every transaction resolved. *)
  assert (o.Failure.unresolved = 0);
  Fmt.pr "every request resolved despite loss: %d retransmissions covered it@."
    o.Failure.retransmissions
