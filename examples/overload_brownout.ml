(* Overload tour: the same 10x-overload churn run through a flat pipeline
   (no degradation) and through the brownout controller, then the
   lease-partition scenario.  The flat run sheds more work at the deadline
   because every decision pays the O(M) service time; brownout trades
   admission precision (the conservative O(1) bound) for throughput while
   the exact oracle confirms nothing unsafe was ever admitted. *)

module Overload = Bbr_workload.Overload

let () =
  let base = Overload.default_config in
  Fmt.pr "=== flat pipeline (no brownout), 10x offered load ===@.";
  let flat = Overload.run { base with Overload.brownout = false } in
  Fmt.pr "%a@.@." Overload.pp_outcome flat;
  Fmt.pr "=== brownout pipeline, same workload ===@.";
  let brown = Overload.run base in
  Fmt.pr "%a@.@." Overload.pp_outcome brown;
  Fmt.pr "decided: flat %d vs brownout %d; p99 latency: %.3f s vs %.3f s@.@."
    flat.Overload.pipeline.Bbr_broker.Overload.decided
    brown.Overload.pipeline.Bbr_broker.Overload.decided flat.Overload.p99_latency
    brown.Overload.p99_latency;
  Fmt.pr "=== lease partition: edge broker silent at t=150 s ===@.";
  let part = Overload.run_partition Overload.default_partition_config in
  Fmt.pr "%a@." Overload.pp_partition_outcome part;
  if
    flat.Overload.oracle_violations = 0
    && brown.Overload.oracle_violations = 0
    && part.Overload.reclaimed_within_period
  then Fmt.pr "@.all invariants held@."
  else begin
    Fmt.pr "@.INVARIANT VIOLATION@.";
    exit 1
  end
