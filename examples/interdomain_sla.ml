(* Inter-domain guaranteed service across three broker-managed domains.

   The paper leaves inter-domain reservation and SLAs as an open problem
   (Section 6); lib/interdomain implements the natural composition: one
   broker per domain, SLA-governed peering links, a coordinator that
   solves the end-to-end delay budget once and books the resulting rate in
   every domain atomically.

   Run with: dune exec examples/interdomain_sla.exe *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Federation = Bbr_interdomain.Federation

let chain name hops =
  let t = Topology.create () in
  for i = 0 to hops - 1 do
    ignore
      (Topology.add_link t
         ~src:(Printf.sprintf "%s%d" name i)
         ~dst:(Printf.sprintf "%s%d" name (i + 1))
         ~capacity:1.5e6 Topology.Rate_based)
  done;
  t

let () =
  let fed = Federation.create () in
  (* Three providers of different sizes. *)
  ignore (Federation.add_domain fed ~name:"access-west" (chain "w" 2));
  ignore (Federation.add_domain fed ~name:"backbone" (chain "b" 4));
  ignore (Federation.add_domain fed ~name:"access-east" (chain "e" 2));
  Federation.add_peering fed ~from_domain:"access-west" ~from_egress:"w2"
    ~to_domain:"backbone" ~to_ingress:"b0" ~committed_rate:400_000. ~delay:0.01 ();
  Federation.add_peering fed ~from_domain:"backbone" ~from_egress:"b4"
    ~to_domain:"access-east" ~to_ingress:"e0" ~committed_rate:400_000. ~delay:0.01 ();

  let profile = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000. in
  let ep =
    {
      Federation.src_domain = "access-west";
      src_ingress = "w0";
      dst_domain = "access-east";
      dst_egress = "e2";
    }
  in
  Fmt.pr "requesting flows end-to-end (west -> backbone -> east, 3.5 s bound)@.@.";
  let continue = ref true in
  let n = ref 0 in
  while !continue do
    match Federation.request fed ep ~profile ~dreq:3.5 with
    | Ok r ->
        incr n;
        if !n <= 3 || !n mod 4 = 0 then
          Fmt.pr "flow %2d admitted: rate %.0f b/s via %a, bound %.3f s@."
            r.Federation.flow r.Federation.rate
            Fmt.(list ~sep:(any " -> ") string)
            r.Federation.domains r.Federation.bound
    | Error reason ->
        Fmt.pr "@.flow %d rejected: %a@." (!n + 1) Types.pp_reject_reason reason;
        continue := false
  done;
  let used, committed =
    Federation.sla_usage_exn fed ~from_domain:"backbone" ~to_domain:"access-east"
  in
  Fmt.pr "admitted %d flows; backbone->east SLA at %.0f / %.0f b/s@." !n used committed;
  Fmt.pr
    "(the SLA, not the 1.5 Mb/s links, is the binding constraint — the paper's@.";
  Fmt.pr " inter-domain provisioning question made concrete)@."
