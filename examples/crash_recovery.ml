(* Crash-consistent recovery, end to end: the broker write-ahead journals
   every state mutation, a fault-injection hook kills it at an exact
   journal record boundary mid-churn, and the promoted standby replays
   checkpoint + journal tail.  The proof of correctness is the canonical
   MIB digest: with every record fsynced, the recovered broker must be
   bit-for-bit decision-equivalent to the one that died — zero lost, zero
   phantom reservations.  A second run with a lazy fsync shows the
   honest counterpart: the unsynced tail is lost, torn record and all,
   and the replay stops cleanly at the cut with a warning.

   Run: dune exec examples/crash_recovery.exe *)

module Failure = Bbr_workload.Failure

let scenario ~fsync_every =
  {
    Failure.default_config with
    (* Kill the primary the instant journal record #150 is appended —
       deliberately long after the last checkpoint (period 333 s), so
       recovery has to combine the snapshot with a journal tail dozens of
       records deep. *)
    Failure.journal = true;
    journal_fsync_every = fsync_every;
    crash_at_record = Some 150;
    checkpoint_every = Some 333.;
    promote_after = 0.5;
  }

let () =
  Fmt.pr "=== Crash at a record boundary, fsync every record ===@.";
  let o = Failure.run (scenario ~fsync_every:1) in
  Fmt.pr "%a@.@." Failure.pp_outcome o;
  assert (o.Failure.promote_error = None);
  assert (o.Failure.unresolved = 0);
  (* Every record reached the disk, so recovery is exact: the standby's
     digest equals the dying primary's, and no flow was lost. *)
  assert (o.Failure.journal_records_lost = 0);
  assert (o.Failure.flows_lost = 0);
  (match (o.Failure.digest_at_crash, o.Failure.digest_recovered) with
  | Some oracle, Some recovered when oracle = recovered -> ()
  | Some oracle, Some recovered ->
      Fmt.epr "digest mismatch: %s at crash, %s recovered@." oracle recovered;
      exit 1
  | _ ->
      Fmt.epr "digests missing from the outcome@.";
      exit 1);
  Fmt.pr "PASS: recovered broker is digest-identical to the crashed one@.@.";

  Fmt.pr "=== Same crash, fsync every 64 records ===@.";
  let o = Failure.run (scenario ~fsync_every:64) in
  Fmt.pr "%a@.@." Failure.pp_outcome o;
  assert (o.Failure.promote_error = None);
  assert (o.Failure.unresolved = 0);
  (* The journal is compacted at every checkpoint, so the fsync boundary
     runs over the records since the last compaction: exactly the tail
     past it is lost, never more. *)
  assert (o.Failure.journal_records_lost = o.Failure.journal_records_at_crash mod 64);
  assert (o.Failure.journal_records_lost > 0);
  Fmt.pr "PASS: lazy fsync lost exactly the %d unsynced records@."
    o.Failure.journal_records_lost
