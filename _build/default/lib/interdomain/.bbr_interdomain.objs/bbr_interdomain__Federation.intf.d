lib/interdomain/federation.mli: Bbr_broker Bbr_vtrs
