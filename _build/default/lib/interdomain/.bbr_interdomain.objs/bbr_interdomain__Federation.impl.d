lib/interdomain/federation.ml: Bbr_broker Bbr_util Bbr_vtrs Float Hashtbl List Printf Queue
