module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Path_mib = Bbr_broker.Path_mib
module Fp = Bbr_util.Fp

type peering = {
  from_domain : string;
  from_egress : string;
  to_domain : string;
  to_ingress : string;
  committed : float;
  delay : float;
  mutable used : float;
}

type dom = { name : string; broker : Broker.t }

type booking = {
  rate : float;
  legs : (string * Types.flow_id) list;  (* domain name, per-domain flow *)
  peers : peering list;
}

type endpoints = {
  src_domain : string;
  src_ingress : string;
  dst_domain : string;
  dst_egress : string;
}

type reservation = { flow : int; rate : float; domains : string list; bound : float }

type t = {
  domains : (string, dom) Hashtbl.t;
  mutable peerings : peering list;  (* reversed registration order *)
  flows : (int, booking) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  { domains = Hashtbl.create 8; peerings = []; flows = Hashtbl.create 32; next_id = 0 }

let add_domain t ~name topology =
  if Hashtbl.mem t.domains name then
    invalid_arg (Printf.sprintf "Federation.add_domain: duplicate domain %s" name);
  let broker = Broker.create topology in
  Hashtbl.replace t.domains name { name; broker };
  broker

let broker t ~domain =
  match Hashtbl.find_opt t.domains domain with
  | Some d -> d.broker
  | None -> raise Not_found

let add_peering t ~from_domain ~from_egress ~to_domain ~to_ingress ~committed_rate
    ?(delay = 0.01) () =
  if not (Hashtbl.mem t.domains from_domain && Hashtbl.mem t.domains to_domain) then
    invalid_arg "Federation.add_peering: unknown domain";
  if
    List.exists
      (fun p -> p.from_domain = from_domain && p.to_domain = to_domain)
      t.peerings
  then invalid_arg "Federation.add_peering: duplicate peering";
  if committed_rate <= 0. then
    invalid_arg "Federation.add_peering: committed rate must be positive";
  t.peerings <-
    {
      from_domain;
      from_egress;
      to_domain;
      to_ingress;
      committed = committed_rate;
      delay;
      used = 0.;
    }
    :: t.peerings

(* Shortest domain-level route as a list of peerings, BFS over the domain
   graph in peering registration order for determinism. *)
let domain_route t ~src ~dst =
  if src = dst then Some []
  else begin
    let visited = Hashtbl.create 8 in
    Hashtbl.replace visited src ();
    let frontier = Queue.create () in
    Queue.add (src, []) frontier;
    let result = ref None in
    let ordered = List.rev t.peerings in
    while !result = None && not (Queue.is_empty frontier) do
      let here, rev_path = Queue.take frontier in
      List.iter
        (fun p ->
          if
            !result = None && p.from_domain = here
            && not (Hashtbl.mem visited p.to_domain)
          then begin
            Hashtbl.replace visited p.to_domain ();
            let rev_path' = p :: rev_path in
            if p.to_domain = dst then result := Some (List.rev rev_path')
            else Queue.add (p.to_domain, rev_path') frontier
          end)
        ordered
    done;
    !result
  end

(* The intra-domain segments a flow crosses, as (domain, ingress, egress). *)
let segments ep peers =
  match peers with
  | [] -> [ (ep.src_domain, ep.src_ingress, ep.dst_egress) ]
  | first :: _ ->
      let rec transits = function
        | a :: (b :: _ as rest) ->
            (a.to_domain, a.to_ingress, b.from_egress) :: transits rest
        | [ last ] -> [ (ep.dst_domain, last.to_ingress, ep.dst_egress) ]
        | [] -> []
      in
      (ep.src_domain, ep.src_ingress, first.from_egress) :: transits peers

let e2e_bound ~profile ~rate ~segment_infos ~peer_delay =
  let l = profile.Traffic.lmax in
  let ton = Traffic.t_on profile in
  List.fold_left
    (fun acc (info : Path_mib.info) ->
      acc
      +. (float_of_int (info.Path_mib.hops + 1) *. l /. rate)
      +. info.Path_mib.d_tot)
    ((ton *. (profile.Traffic.peak -. rate) /. rate) +. peer_delay)
    segment_infos

let request t ep ~profile ~dreq =
  match domain_route t ~src:ep.src_domain ~dst:ep.dst_domain with
  | None -> Error Types.No_route
  | Some peers -> (
      let segs = segments ep peers in
      (* Resolve each segment's path through its domain's broker. *)
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | (domain, ingress, egress) :: rest -> (
            let dom = Hashtbl.find t.domains domain in
            let probe = { Types.profile; dreq; ingress; egress } in
            match Broker.route_of dom.broker probe with
            | None -> Error Types.No_route
            | Some info ->
                if info.Path_mib.delay_hops > 0 then Error Types.Not_schedulable
                else resolve ((dom, probe, info) :: acc) rest)
      in
      match resolve [] segs with
      | Error e -> Error e
      | Ok legs ->
          let infos = List.map (fun (_, _, info) -> info) legs in
          let peer_delay = List.fold_left (fun acc p -> acc +. p.delay) 0. peers in
          (* Every domain conditioner re-shapes the flow, acting as one
             extra rate-based hop: the Section-3.1 closed form extends
             across the federation. *)
          let total_hops_terms =
            List.fold_left
              (fun acc (info : Path_mib.info) -> acc + info.Path_mib.hops + 1)
              0 infos
          in
          let d_tot_sum =
            List.fold_left
              (fun acc (info : Path_mib.info) -> acc +. info.Path_mib.d_tot)
              peer_delay infos
          in
          let ton = Traffic.t_on profile in
          let denom = dreq -. d_tot_sum +. ton in
          if denom <= 0. then Error Types.Delay_unachievable
          else begin
            let rmin =
              ((ton *. profile.Traffic.peak)
              +. (float_of_int total_hops_terms *. profile.Traffic.lmax))
              /. denom
            in
            if Fp.gt rmin profile.Traffic.peak then Error Types.Delay_unachievable
            else begin
              let rate = Float.max profile.Traffic.rho rmin in
              (* SLA admission on every peering crossed. *)
              if
                not
                  (List.for_all (fun p -> Fp.leq (p.used +. rate) p.committed) peers)
              then Error Types.Insufficient_bandwidth
              else begin
                (* Book domain by domain; roll back on the first failure. *)
                let rec book acc = function
                  | [] -> Ok (List.rev acc)
                  | (dom, probe, _) :: rest -> (
                      match Broker.request_fixed dom.broker probe ~rate () with
                      | Ok flow -> book ((dom.name, flow) :: acc) rest
                      | Error e ->
                          List.iter
                            (fun (name, flow) ->
                              Broker.teardown (Hashtbl.find t.domains name).broker flow)
                            acc;
                          Error e)
                in
                match book [] legs with
                | Error e -> Error e
                | Ok booked ->
                    List.iter (fun p -> p.used <- p.used +. rate) peers;
                    let flow = t.next_id in
                    t.next_id <- t.next_id + 1;
                    Hashtbl.replace t.flows flow { rate; legs = booked; peers };
                    Ok
                      {
                        flow;
                        rate;
                        domains = List.map (fun (d, _, _) -> d) segs;
                        bound = e2e_bound ~profile ~rate ~segment_infos:infos ~peer_delay;
                      }
              end
            end
          end)

let teardown t flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> invalid_arg (Printf.sprintf "Federation.teardown: unknown flow %d" flow)
  | Some booking ->
      Hashtbl.remove t.flows flow;
      List.iter
        (fun (name, leg) -> Broker.teardown (Hashtbl.find t.domains name).broker leg)
        booking.legs;
      List.iter
        (fun p -> p.used <- Float.max 0. (p.used -. booking.rate))
        booking.peers

let sla_usage t ~from_domain ~to_domain =
  match
    List.find_opt
      (fun p -> p.from_domain = from_domain && p.to_domain = to_domain)
      t.peerings
  with
  | Some p -> (p.used, p.committed)
  | None -> raise Not_found

let flow_count t = Hashtbl.length t.flows
