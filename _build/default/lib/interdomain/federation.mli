(** Inter-domain guaranteed services across a federation of
    broker-managed domains.

    The paper confines itself to one domain and names inter-domain QoS
    reservation and service-level agreements as the open problem
    (Sections 1 and 6).  This module implements the natural composition:

    - every domain runs its own bandwidth broker;
    - adjacent domains are connected by {e peering links}, each governed by
      an {e SLA} that commits an aggregate bandwidth between the two
      domains (and contributes a fixed delay);
    - an end-to-end request is routed over the {e domain graph}, the
      end-to-end delay budget is solved once by the coordinator — each
      transit domain's conditioner acts as one extra rate-based hop, so
      the closed form of Section 3.1 extends across domains — and the
      resulting rate is then booked in every domain
      ({!Bbr_broker.Broker.request_fixed}) and against every SLA.

    Either everything commits or nothing does: a failure at the k-th
    domain rolls back the k-1 earlier bookings.

    Restricted to domains whose transit paths are rate-based (the same
    restriction as {!Bbr_broker.Edge_broker}, and for the same reason:
    delay-based budget splitting needs per-domain schedulability
    negotiation, a further research problem). *)

type t

val create : unit -> t

val add_domain : t -> name:string -> Bbr_vtrs.Topology.t -> Bbr_broker.Broker.t
(** Register a domain and its broker (created internally so the federation
    can bookkeep).  Raises [Invalid_argument] on duplicate names. *)

val broker : t -> domain:string -> Bbr_broker.Broker.t
(** Raises [Not_found]. *)

val add_peering :
  t ->
  from_domain:string ->
  from_egress:string ->
  to_domain:string ->
  to_ingress:string ->
  committed_rate:float ->
  ?delay:float ->
  unit ->
  unit
(** Declare a (directed) peering with its SLA: at most [committed_rate]
    bits/s of guaranteed traffic may cross it; [delay] (default 0.01 s) is
    the peering link's contribution to end-to-end bounds.  Raises
    [Invalid_argument] on unknown domains or a duplicate peering. *)

(** Where a federation-wide flow enters and leaves. *)
type endpoints = {
  src_domain : string;
  src_ingress : string;  (** ingress router inside the source domain *)
  dst_domain : string;
  dst_egress : string;  (** egress router inside the destination domain *)
}

type reservation = {
  flow : int;  (** federation-wide flow id *)
  rate : float;
  domains : string list;  (** the domain-level path *)
  bound : float;  (** end-to-end delay bound achieved *)
}

val request :
  t ->
  endpoints ->
  profile:Bbr_vtrs.Traffic.t ->
  dreq:float ->
  (reservation, Bbr_broker.Types.reject_reason) result
(** Full inter-domain admission: domain-level routing, end-to-end minimal
    rate, SLA checks, per-domain booking with rollback on failure. *)

val teardown : t -> int -> unit
(** Release a federation reservation everywhere.  Raises
    [Invalid_argument] for an unknown flow. *)

val sla_usage : t -> from_domain:string -> to_domain:string -> float * float
(** [(used, committed)] on the peering.  Raises [Not_found]. *)

val flow_count : t -> int
