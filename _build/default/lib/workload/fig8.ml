module Topology = Bbr_vtrs.Topology

type setting = [ `Rate_only | `Mixed ]

let capacity = 1_500_000.

let ingress1 = "I1"

let ingress2 = "I2"

let egress1 = "E1"

let egress2 = "E2"

(* Links and their scheduler class in the [`Mixed] setting (paper
   Section 5): VT-EDF on R3->R4, R4->R5 and R5->E2, CsVC elsewhere. *)
let edges =
  [
    ("I1", "R2", `Rate);
    ("I2", "R2", `Rate);
    ("R2", "R3", `Rate);
    ("R3", "R4", `Delay);
    ("R4", "R5", `Delay);
    ("R5", "E1", `Rate);
    ("R5", "E2", `Delay);
  ]

let topology setting =
  let t = Topology.create () in
  List.iter
    (fun (src, dst, kind) ->
      let sched =
        match (setting, kind) with
        | `Rate_only, _ | `Mixed, `Rate -> Topology.Rate_based
        | `Mixed, `Delay -> Topology.Delay_based
      in
      ignore (Topology.add_link t ~src ~dst ~capacity sched))
    edges;
  t

let find t ~src ~dst =
  match Topology.find_link t ~src ~dst with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Fig8: missing link %s -> %s" src dst)

let path1 t =
  [
    find t ~src:"I1" ~dst:"R2";
    find t ~src:"R2" ~dst:"R3";
    find t ~src:"R3" ~dst:"R4";
    find t ~src:"R4" ~dst:"R5";
    find t ~src:"R5" ~dst:"E1";
  ]

let path2 t =
  [
    find t ~src:"I2" ~dst:"R2";
    find t ~src:"R2" ~dst:"R3";
    find t ~src:"R3" ~dst:"R4";
    find t ~src:"R4" ~dst:"R5";
    find t ~src:"R5" ~dst:"E2";
  ]
