module Traffic = Bbr_vtrs.Traffic

type entry = {
  flow_type : int;
  profile : Bbr_vtrs.Traffic.t;
  loose_bound : float;
  tight_bound : float;
}

let pkt_bits = 12000.

let mk flow_type ~sigma ~rho ~loose ~tight =
  {
    flow_type;
    profile = Traffic.make ~sigma ~rho ~peak:100_000. ~lmax:pkt_bits;
    loose_bound = loose;
    tight_bound = tight;
  }

let table =
  [|
    mk 0 ~sigma:60_000. ~rho:50_000. ~loose:2.44 ~tight:2.19;
    mk 1 ~sigma:48_000. ~rho:40_000. ~loose:2.74 ~tight:2.46;
    mk 2 ~sigma:36_000. ~rho:30_000. ~loose:3.24 ~tight:2.91;
    mk 3 ~sigma:24_000. ~rho:20_000. ~loose:4.24 ~tight:3.81;
  |]

let entry_of ty =
  if ty < 0 || ty >= Array.length table then
    invalid_arg (Printf.sprintf "Profiles: unknown flow type %d" ty);
  table.(ty)

let profile ty = (entry_of ty).profile

let bound ty = function
  | `Loose -> (entry_of ty).loose_bound
  | `Tight -> (entry_of ty).tight_bound

let all_bounds =
  Array.to_list table
  |> List.concat_map (fun e -> [ e.loose_bound; e.tight_bound ])
  |> List.sort_uniq compare
