(** The paper's simulation topology (Figure 8).

    Eight QoS-domain routers: two ingresses I1, I2, four core routers
    R2–R5, two egresses E1, E2.  All outgoing links run at 1.5 Mb/s with
    zero propagation delay.  The access links S→I and E→D are outside the
    QoS domain (infinite capacity in the paper) and are not modeled.

    Two scheduler settings, as in Section 5:
    - [`Rate_only]: every link is rate-based (C̄S-VC / VC);
    - [`Mixed]: R3→R4, R4→R5 and R5→E2 are delay-based (VT-EDF / RC-EDF),
      the rest rate-based. *)

type setting = [ `Rate_only | `Mixed ]

val capacity : float
(** 1.5 Mb/s. *)

val topology : setting -> Bbr_vtrs.Topology.t

val ingress1 : string
(** "I1" — flows from source S1. *)

val ingress2 : string

val egress1 : string
(** "E1" — towards destination D1. *)

val egress2 : string

val path1 : Bbr_vtrs.Topology.t -> Bbr_vtrs.Topology.link list
(** I1 → R2 → R3 → R4 → R5 → E1 (5 hops). *)

val path2 : Bbr_vtrs.Topology.t -> Bbr_vtrs.Topology.link list
(** I2 → R2 → R3 → R4 → R5 → E2 (5 hops). *)
