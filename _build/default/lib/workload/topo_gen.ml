module Topology = Bbr_vtrs.Topology
module Prng = Bbr_util.Prng

let chain ?(prefix = "n") ?(capacity = 1.5e6) ?(sched = Topology.Rate_based) ~hops () =
  if hops < 1 then invalid_arg "Topo_gen.chain: at least one hop";
  let t = Topology.create () in
  let name i = Printf.sprintf "%s%d" prefix i in
  for i = 0 to hops - 1 do
    ignore (Topology.add_link t ~src:(name i) ~dst:(name (i + 1)) ~capacity sched)
  done;
  (t, name 0, name hops)

let star ?(capacity = 1.5e6) ~leaves () =
  if leaves < 2 then invalid_arg "Topo_gen.star: at least two leaves";
  let t = Topology.create () in
  for i = 0 to leaves - 1 do
    let n = Printf.sprintf "N%d" i in
    ignore (Topology.add_link t ~src:n ~dst:"C" ~capacity Topology.Rate_based);
    ignore (Topology.add_link t ~src:"C" ~dst:n ~capacity Topology.Rate_based)
  done;
  t

let random prng ~nodes ~extra_links ?(delay_fraction = 0.3) ?(capacity_lo = 1e6)
    ?(capacity_hi = 1e7) () =
  if nodes < 2 then invalid_arg "Topo_gen.random: at least two nodes";
  let t = Topology.create () in
  let name i = Printf.sprintf "N%d" i in
  let sched () =
    if Prng.float prng < delay_fraction then Topology.Delay_based
    else Topology.Rate_based
  in
  let capacity () = Prng.float_range prng ~lo:capacity_lo ~hi:capacity_hi in
  let add_pair a b =
    if Topology.find_link t ~src:a ~dst:b = None then begin
      let c = capacity () and s = sched () in
      ignore (Topology.add_link t ~src:a ~dst:b ~capacity:c s);
      ignore (Topology.add_link t ~src:b ~dst:a ~capacity:c s)
    end
  in
  (* Random spanning tree: attach each new node to a random earlier one. *)
  for i = 1 to nodes - 1 do
    add_pair (name (Prng.int prng ~bound:i)) (name i)
  done;
  for _ = 1 to extra_links do
    let a = Prng.int prng ~bound:nodes and b = Prng.int prng ~bound:nodes in
    if a <> b then add_pair (name a) (name b)
  done;
  t

let random_endpoints prng topology =
  let nodes = Array.of_list (Topology.nodes topology) in
  let a = Prng.int prng ~bound:(Array.length nodes) in
  let rec pick_b () =
    let b = Prng.int prng ~bound:(Array.length nodes) in
    if b = a then pick_b () else b
  in
  (nodes.(a), nodes.(pick_b ()))
