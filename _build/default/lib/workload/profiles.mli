(** The traffic profiles and delay bounds of the paper's Table 1.

    Four flow types, all with a 0.1 Mb/s peak rate and 1500-byte maximum
    packets; each type comes with two candidate end-to-end delay bounds
    (a loose and a tight one). *)

type entry = {
  flow_type : int;  (** 0..3 *)
  profile : Bbr_vtrs.Traffic.t;
  loose_bound : float;  (** first "Delay Bounds" column, seconds *)
  tight_bound : float;  (** second column *)
}

val table : entry array
(** Table 1, in flow-type order. *)

val profile : int -> Bbr_vtrs.Traffic.t
(** Profile of the given flow type.  Raises [Invalid_argument] outside
    0..3. *)

val bound : int -> [ `Loose | `Tight ] -> float

val pkt_bits : float
(** 1500 bytes in bits. *)

val all_bounds : float list
(** The eight distinct delay bounds of the table, ascending. *)
