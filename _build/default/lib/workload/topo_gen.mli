(** Synthetic domain topologies beyond the paper's Figure 8 — used by the
    robustness test-suites and available to users for their own
    experiments.  All generators are deterministic in the supplied
    generator state. *)

val chain :
  ?prefix:string ->
  ?capacity:float ->
  ?sched:Bbr_vtrs.Topology.sched_class ->
  hops:int ->
  unit ->
  Bbr_vtrs.Topology.t * string * string
(** A linear domain of [hops] links; returns (topology, ingress, egress).
    Node names are [prefix ^ i]. *)

val star :
  ?capacity:float ->
  leaves:int ->
  unit ->
  Bbr_vtrs.Topology.t
(** [leaves] edge routers, each with a link to and from a hub "C"; edge
    router [i] is named ["N<i>"].  Every pair of edge routers is connected
    through the hub (2 hops). *)

val random :
  Bbr_util.Prng.t ->
  nodes:int ->
  extra_links:int ->
  ?delay_fraction:float ->
  ?capacity_lo:float ->
  ?capacity_hi:float ->
  unit ->
  Bbr_vtrs.Topology.t
(** A connected random domain: a random spanning arborescence plus
    [extra_links] random extra directed links, with every link mirrored in
    the reverse direction.  Each link's scheduler is delay-based with
    probability [delay_fraction] (default 0.3) and its capacity uniform in
    [[capacity_lo, capacity_hi]] (default 1–10 Mb/s).  Nodes are named
    ["N0"… ].  Raises [Invalid_argument] for fewer than 2 nodes. *)

val random_endpoints : Bbr_util.Prng.t -> Bbr_vtrs.Topology.t -> string * string
(** Two distinct nodes of the topology. *)
