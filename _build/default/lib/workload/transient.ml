module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Engine = Bbr_netsim.Engine
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Source = Bbr_netsim.Source
module Packet = Bbr_netsim.Packet

type result = { bound : float; naive : float; with_contingency : float }

(* A conditioner wrapper that tags every submitted packet with a unique
   sequence number and tracks the worst queueing delay of packets arriving
   at or after [from]. *)
type probe = {
  cond : Edge_conditioner.t;
  submit : Packet.t -> unit;
  max_wait_after : unit -> float;
}

let make_probe engine ~rate ~lmax ~from =
  let arrivals : (int, float) Hashtbl.t = Hashtbl.create 512 in
  let seq = ref 0 in
  let worst = ref 0. in
  let cond =
    Edge_conditioner.create engine ~rate ~delay_param:0. ~lmax
      ~next:(fun p ->
        match Hashtbl.find_opt arrivals p.Packet.seq with
        | Some at when at >= from -. 1e-9 ->
            worst := Float.max !worst (Engine.now engine -. at)
        | _ -> ())
      ()
  in
  let submit p =
    let tagged = { p with Packet.seq = !seq } in
    incr seq;
    Hashtbl.replace arrivals tagged.Packet.seq (Engine.now engine);
    Edge_conditioner.submit cond tagged
  in
  { cond; submit; max_wait_after = (fun () -> !worst) }

let type0 () = Profiles.profile 0

let run_leave ~naive =
  let profile = type0 () in
  let engine = Engine.create () in
  let t_leave = Traffic.t_on profile in
  let r_before = 2. *. profile.Traffic.rho and r_after = profile.Traffic.rho in
  let probe =
    make_probe engine ~rate:r_before ~lmax:(2. *. profile.Traffic.lmax) ~from:t_leave
  in
  let _s1 =
    Source.greedy engine ~profile ~flow:1 ~path:[||] ~next:probe.submit ()
  in
  let s2 = Source.greedy engine ~profile ~flow:2 ~path:[||] ~next:probe.submit () in
  Engine.schedule engine ~at:t_leave (fun () ->
      Source.halt s2;
      if naive then Edge_conditioner.set_rate probe.cond r_after
      else begin
        (* Theorem 3: hold the departing flow's share for
           tau = backlog / delta_r before reducing. *)
        let tau = Edge_conditioner.backlog_bits probe.cond /. (r_before -. r_after) in
        Engine.schedule_after engine ~delay:tau (fun () ->
            Edge_conditioner.set_rate probe.cond r_after)
      end);
  Engine.run ~until:30. engine;
  probe.max_wait_after ()

let leave_scenario () =
  let profile = type0 () in
  {
    bound = Delay.edge_bound profile ~rate:profile.Traffic.rho;
    naive = run_leave ~naive:true;
    with_contingency = run_leave ~naive:false;
  }

let join_holds () =
  let alpha = type0 () in
  let nu = Profiles.profile 3 in
  let engine = Engine.create () in
  let t_join = Traffic.t_on alpha -. Traffic.t_on nu in
  let r_before = alpha.Traffic.rho in
  let agg = Traffic.add alpha nu in
  let r_after = agg.Traffic.rho in
  let bound_before = Delay.edge_bound alpha ~rate:r_before in
  let bound_after = Delay.edge_bound agg ~rate:r_after in
  let bound = Float.max bound_before bound_after in
  let probe = make_probe engine ~rate:r_before ~lmax:agg.Traffic.lmax ~from:0. in
  let _s1 =
    Source.greedy engine ~profile:alpha ~flow:1 ~path:[||] ~next:probe.submit ()
  in
  Engine.schedule engine ~at:t_join (fun () ->
      (* Theorem 2: raise to the new rate plus peak-rate contingency,
         release the contingency once the backlog clears. *)
      ignore
        (Source.greedy engine ~profile:nu ~flow:2 ~path:[||] ~start:t_join
           ~next:probe.submit ());
      let with_contingency = r_after +. (nu.Traffic.peak -. (r_after -. r_before)) in
      Edge_conditioner.set_rate probe.cond with_contingency;
      let rec watch () =
        if Edge_conditioner.backlog_bits probe.cond <= 1e-6 then
          Edge_conditioner.set_rate probe.cond r_after
        else Engine.schedule_after engine ~delay:0.05 watch
      in
      watch ());
  Engine.run ~until:30. engine;
  (probe.max_wait_after (), bound)
