(** Flow-arrival traces: record, save, load and replay.

    The paper's workloads are synthetic; a production deployment would be
    driven by real flow-arrival logs.  This module defines a plain-text
    trace format (one flow per line: arrival time, holding time, profile,
    delay requirement, endpoints), a synthetic generator that emits the
    paper's Figure-10 workload as a trace, and a replayer that runs any
    trace through any admission scheme.  Replaying the generated trace is
    bit-for-bit equivalent to {!Dynamic.run} with the same seed, so traces
    double as a regression format. *)

type entry = {
  at : float;  (** arrival time, seconds *)
  holding : float;  (** seconds *)
  profile : Bbr_vtrs.Traffic.t;
  dreq : float;
  ingress : string;
  egress : string;
}

val generate : Dynamic.config -> entry list
(** The exact arrival sequence {!Dynamic.run} would produce for this
    configuration (same PRNG discipline), as a materialized trace. *)

val to_string : entry list -> string

val of_string : string -> (entry list, string) result
(** Inverse of {!to_string}; fails with a message naming the first bad
    line. *)

val replay :
  ?setting:Fig8.setting -> ?cd:float -> entry list -> Dynamic.scheme -> Dynamic.outcome
(** Run a trace through the admission machinery (fluid data plane, like
    {!Dynamic.run}). *)
