(** The Figure-7 transient scenario: dynamic-aggregation delay-bound
    violation at the edge conditioner, and its repair by contingency
    bandwidth (paper Section 4.1–4.2, Theorems 2 and 3).

    Two greedy Table-1 type-0 microflows are aggregated and shaped at the
    sum of their sustained rates (100 kb/s).  At [t* = T_on] — the moment
    of maximum backlog — one microflow leaves. *)

type result = {
  bound : float;
      (** edge-delay bound of the remaining macroflow, eq. (3) (= 1.2 s) *)
  naive : float;
      (** worst queueing delay after the leave when the reserved rate is
          reduced immediately — exceeds [bound] *)
  with_contingency : float;
      (** same measurement when the old rate is held as contingency
          bandwidth for [tau = backlog / delta_r] (Theorem 3) — within
          [bound] *)
}

val leave_scenario : unit -> result
(** Runs both packet-level simulations and returns the three numbers. *)

val join_holds : unit -> float * float
(** The join-side counterpart: a type-3 microflow joins a type-0
    macroflow at [t* = T_on^alpha - T_on^nu] with peak-rate contingency
    per Theorem 2; returns [(worst observed edge delay, eq. (13) bound)].
    The observation never exceeds the bound. *)
