lib/workload/profiles.ml: Array Bbr_vtrs List Printf
