lib/workload/trace.mli: Bbr_vtrs Dynamic Fig8
