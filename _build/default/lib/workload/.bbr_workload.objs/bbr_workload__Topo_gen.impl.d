lib/workload/topo_gen.ml: Array Bbr_util Bbr_vtrs Printf
