lib/workload/profiles.mli: Bbr_vtrs
