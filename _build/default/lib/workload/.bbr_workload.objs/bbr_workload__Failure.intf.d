lib/workload/failure.mli: Fig8 Fmt
