lib/workload/dynamic.mli: Bbr_broker Bbr_vtrs Fig8 Fmt
