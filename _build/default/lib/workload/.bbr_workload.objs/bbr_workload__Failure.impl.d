lib/workload/failure.ml: Bbr_broker Bbr_netsim Bbr_util Bbr_vtrs Dynamic Fig8 Fmt List Printf
