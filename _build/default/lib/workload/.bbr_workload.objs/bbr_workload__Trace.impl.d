lib/workload/trace.ml: Bbr_vtrs Buffer Dynamic List Printf String
