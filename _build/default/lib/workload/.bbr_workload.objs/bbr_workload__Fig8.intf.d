lib/workload/fig8.mli: Bbr_vtrs
