lib/workload/fig8.ml: Bbr_vtrs List Printf
