lib/workload/topo_gen.mli: Bbr_util Bbr_vtrs
