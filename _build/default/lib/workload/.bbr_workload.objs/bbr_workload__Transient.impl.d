lib/workload/transient.ml: Bbr_netsim Bbr_vtrs Float Hashtbl Profiles
