lib/workload/static.mli: Bbr_broker Fig8
