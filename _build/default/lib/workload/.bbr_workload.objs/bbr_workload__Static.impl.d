lib/workload/static.ml: Bbr_broker Bbr_intserv Bbr_netsim Bbr_vtrs Fig8 Hashtbl List Profiles
