lib/workload/dynamic.ml: Array Bbr_broker Bbr_netsim Bbr_util Bbr_vtrs Fig8 Fmt Hashtbl List Option Profiles
