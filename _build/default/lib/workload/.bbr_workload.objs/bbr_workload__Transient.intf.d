lib/workload/transient.mli:
