module Traffic = Bbr_vtrs.Traffic

type entry = Dynamic.entry = {
  at : float;
  holding : float;
  profile : Bbr_vtrs.Traffic.t;
  dreq : float;
  ingress : string;
  egress : string;
}

let generate = Dynamic.arrivals

let header = "bbr-trace v1"

let to_string entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%h %h %h %h %h %h %h %s %s\n" e.at e.holding
           e.profile.Traffic.sigma e.profile.Traffic.rho e.profile.Traffic.peak
           e.profile.Traffic.lmax e.dreq e.ingress e.egress))
    entries;
  Buffer.contents buf

let of_string text =
  match String.split_on_char '\n' text with
  | first :: rest when String.trim first = header ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | line :: lines -> (
            if String.trim line = "" then go acc lines
            else
              match String.split_on_char ' ' (String.trim line) with
              | [ at; holding; sigma; rho; peak; lmax; dreq; ingress; egress ] -> (
                  match
                    {
                      at = float_of_string at;
                      holding = float_of_string holding;
                      profile =
                        Traffic.make ~sigma:(float_of_string sigma)
                          ~rho:(float_of_string rho) ~peak:(float_of_string peak)
                          ~lmax:(float_of_string lmax);
                      dreq = float_of_string dreq;
                      ingress;
                      egress;
                    }
                  with
                  | entry -> go (entry :: acc) lines
                  | exception _ -> Error (Printf.sprintf "bad trace line: %S" line))
              | _ -> Error (Printf.sprintf "bad trace line: %S" line))
      in
      go [] rest
  | first :: _ -> Error (Printf.sprintf "bad trace header: %S" (String.trim first))
  | [] -> Error "empty trace"

let replay ?setting ?cd entries scheme = Dynamic.run_trace ?setting ?cd entries scheme
