type record = {
  flow : Types.flow_id;
  request : Types.request;
  reservation : Types.reservation;
  path : Path_mib.info;
  admitted_at : float;
}

type t = { table : (Types.flow_id, record) Hashtbl.t; mutable next_id : int }

let create () = { table = Hashtbl.create 64; next_id = 0 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let reserve_ids t ~below = if below > t.next_id then t.next_id <- below

let next_id t = t.next_id

let add t record =
  if Hashtbl.mem t.table record.flow then
    invalid_arg (Printf.sprintf "Flow_mib.add: duplicate flow id %d" record.flow);
  if record.flow >= t.next_id then t.next_id <- record.flow + 1;
  Hashtbl.replace t.table record.flow record

let find t flow = Hashtbl.find_opt t.table flow

let remove t flow =
  match Hashtbl.find_opt t.table flow with
  | Some record ->
      Hashtbl.remove t.table flow;
      Some record
  | None -> None

let count t = Hashtbl.length t.table

let fold t ~init ~f = Hashtbl.fold (fun _ record acc -> f acc record) t.table init

let total_reserved_rate t =
  fold t ~init:0. ~f:(fun acc r -> acc +. r.reservation.Types.rate)
