module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

type link_state = {
  mutable sum_rho : float;
  mutable sum_p2 : float;
  mutable sum_peak : float;
}

type record = { path : Topology.link list; profile : Traffic.t }

type t = {
  broker : Broker.t;
  epsilon : float;
  ln_term : float;  (* ln(1/epsilon) / 2 *)
  links : (int, link_state) Hashtbl.t;
  flows : (Types.flow_id, record) Hashtbl.t;
  mutable next_id : int;
}

let create broker ~epsilon =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Statistical.create: epsilon must be in (0, 1)";
  {
    broker;
    epsilon;
    ln_term = log (1. /. epsilon) /. 2.;
    links = Hashtbl.create 16;
    flows = Hashtbl.create 64;
    next_id = 0;
  }

let epsilon t = t.epsilon

let state t ~link_id =
  match Hashtbl.find_opt t.links link_id with
  | Some s -> s
  | None ->
      let s = { sum_rho = 0.; sum_p2 = 0.; sum_peak = 0. } in
      Hashtbl.replace t.links link_id s;
      s

(* Hoeffding can exceed the trivially safe peak sum at tight epsilon;
   never charge more than peak allocation. *)
let eff t (s : link_state) =
  Float.min s.sum_peak (s.sum_rho +. sqrt (t.ln_term *. s.sum_p2))

let effective_bandwidth t ~link_id =
  match Hashtbl.find_opt t.links link_id with
  | Some s -> eff t s
  | None -> 0.

let surcharge t ~link_id =
  match Hashtbl.find_opt t.links link_id with
  | Some s -> sqrt (t.ln_term *. s.sum_p2)
  | None -> 0.

(* The node MIB carries the statistical flows' effective bandwidth, so the
   deterministic service sees it as ordinary load; on every change we book
   the difference. *)
let rebook t ~link_id ~before ~after =
  let node_mib = Broker.node_mib t.broker in
  if after > before then Node_mib.reserve node_mib ~link_id (after -. before)
  else if before > after then Node_mib.release node_mib ~link_id (before -. after)

let request t (req : Types.request) =
  match Broker.route_of t.broker req with
  | None -> Error Types.No_route
  | Some info ->
      let p = req.Types.profile in
      let p2 = p.Traffic.peak *. p.Traffic.peak in
      let node_mib = Broker.node_mib t.broker in
      let fits (l : Topology.link) =
        let link_id = l.Topology.link_id in
        let s = state t ~link_id in
        let before = eff t s in
        let after =
          Float.min
            (s.sum_peak +. p.Traffic.peak)
            (s.sum_rho +. p.Traffic.rho +. sqrt (t.ln_term *. (s.sum_p2 +. p2)))
        in
        (* The link must absorb the effective-bandwidth increase on top of
           everything else already reserved (deterministic flows
           included). *)
        Fp.leq (after -. before) (Node_mib.residual node_mib ~link_id)
      in
      if not (List.for_all fits info.Path_mib.links) then
        Error Types.Insufficient_bandwidth
      else begin
        List.iter
          (fun (l : Topology.link) ->
            let link_id = l.Topology.link_id in
            let s = state t ~link_id in
            let before = eff t s in
            s.sum_rho <- s.sum_rho +. p.Traffic.rho;
            s.sum_p2 <- s.sum_p2 +. p2;
            s.sum_peak <- s.sum_peak +. p.Traffic.peak;
            rebook t ~link_id ~before ~after:(eff t s))
          info.Path_mib.links;
        let flow = t.next_id in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.flows flow { path = info.Path_mib.links; profile = p };
        Ok flow
      end

let teardown t flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> invalid_arg (Printf.sprintf "Statistical.teardown: unknown flow %d" flow)
  | Some record ->
      Hashtbl.remove t.flows flow;
      let p = record.profile in
      List.iter
        (fun (l : Topology.link) ->
          let link_id = l.Topology.link_id in
          let s = state t ~link_id in
          let before = eff t s in
          s.sum_rho <- Float.max 0. (s.sum_rho -. p.Traffic.rho);
          s.sum_p2 <- Float.max 0. (s.sum_p2 -. (p.Traffic.peak *. p.Traffic.peak));
          s.sum_peak <- Float.max 0. (s.sum_peak -. p.Traffic.peak);
          rebook t ~link_id ~before ~after:(eff t s))
        record.path

let flow_count t = Hashtbl.length t.flows
