lib/core/cops.mli: Aggregate Broker Types
