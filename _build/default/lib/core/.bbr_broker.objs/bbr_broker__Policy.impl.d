lib/core/policy.ml: Bbr_vtrs List Types
