lib/core/broker.mli: Aggregate Bbr_vtrs Flow_mib Node_mib Path_mib Policy Routing Types
