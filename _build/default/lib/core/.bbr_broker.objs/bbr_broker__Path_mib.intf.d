lib/core/path_mib.mli: Bbr_vtrs Fmt Node_mib
