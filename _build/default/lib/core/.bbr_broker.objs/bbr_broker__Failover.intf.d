lib/core/failover.mli: Broker
