lib/core/policy.mli: Types
