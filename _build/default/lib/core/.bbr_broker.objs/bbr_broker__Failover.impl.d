lib/core/failover.ml: Broker Option Snapshot
