lib/core/flow_mib.mli: Path_mib Types
