lib/core/aggregate.ml: Bbr_util Bbr_vtrs Float Hashtbl List Node_mib Option Path_mib Printf Types
