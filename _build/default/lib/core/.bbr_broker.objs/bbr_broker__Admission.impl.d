lib/core/admission.ml: Array Bbr_util Bbr_vtrs Float List Map Node_mib Path_mib Types
