lib/core/statistical.mli: Broker Types
