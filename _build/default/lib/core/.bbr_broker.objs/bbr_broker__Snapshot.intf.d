lib/core/snapshot.mli: Broker
