lib/core/edge_broker.ml: Bbr_util Bbr_vtrs Broker Float Hashtbl Path_mib Types
