lib/core/aggregate.mli: Bbr_vtrs Node_mib Path_mib Types
