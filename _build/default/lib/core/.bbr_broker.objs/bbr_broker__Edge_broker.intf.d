lib/core/edge_broker.mli: Broker Types
