lib/core/broker.ml: Admission Aggregate Bbr_util Bbr_vtrs Either Flow_mib Fun List Node_mib Option Path_mib Policy Routing Types
