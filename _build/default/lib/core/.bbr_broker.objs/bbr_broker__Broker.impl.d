lib/core/broker.ml: Admission Aggregate Bbr_util Bbr_vtrs Flow_mib List Node_mib Option Path_mib Policy Printf Routing Types
