lib/core/types.ml: Bbr_vtrs Fmt
