lib/core/routing.mli: Bbr_vtrs Path_mib
