lib/core/flow_mib.ml: Hashtbl Path_mib Printf Types
