lib/core/node_mib.ml: Array Bbr_util Bbr_vtrs Float List Printf
