lib/core/statistical.ml: Bbr_util Bbr_vtrs Broker Float Hashtbl List Node_mib Path_mib Printf Types
