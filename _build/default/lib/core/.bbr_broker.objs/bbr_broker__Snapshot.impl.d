lib/core/snapshot.ml: Aggregate Bbr_vtrs Broker Buffer Flow_mib Fmt List Printf String Types
