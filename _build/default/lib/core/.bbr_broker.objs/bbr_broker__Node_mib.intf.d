lib/core/node_mib.mli: Bbr_vtrs
