lib/core/cops.ml: Broker Float
