lib/core/cops.ml: Broker
