lib/core/path_mib.ml: Bbr_vtrs Float Fmt Hashtbl List Node_mib Option
