lib/core/routing.ml: Bbr_vtrs Hashtbl List Option Path_mib Queue
