(** Flow information base (paper Section 2.2): per-flow traffic profile,
    service profile and current QoS reservation, kept only at the broker. *)

type record = {
  flow : Types.flow_id;
  request : Types.request;
  reservation : Types.reservation;
  path : Path_mib.info;
  admitted_at : float;  (** broker clock at admission *)
}

type t

val create : unit -> t

val fresh_id : t -> Types.flow_id
(** Allocate the next unused flow id. *)

val reserve_ids : t -> below:Types.flow_id -> unit
(** Ensure {!fresh_id} never returns an id below [below].  A restored
    standby reserves the primary's id space so post-failover admissions
    cannot collide with ids still held by ingress routers. *)

val next_id : t -> Types.flow_id
(** The id {!fresh_id} would allocate next (without allocating it). *)

val add : t -> record -> unit
(** Raises [Invalid_argument] if the id is already present. *)

val find : t -> Types.flow_id -> record option

val remove : t -> Types.flow_id -> record option
(** Remove and return the record, or [None] if absent. *)

val count : t -> int

val fold : t -> init:'a -> f:('a -> record -> 'a) -> 'a

val total_reserved_rate : t -> float
(** Sum of reserved rates over all flows (diagnostics). *)
