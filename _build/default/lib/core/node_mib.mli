(** Node QoS state information base (paper Section 2.2).

    For every router outgoing link in the domain, the broker records the
    static parameters (capacity, scheduler class, error term) and the
    dynamic reservation state: the total reserved bandwidth, and — for
    delay-based links — the VT-EDF schedulability population.  Core routers
    themselves hold none of this. *)

type entry = {
  link : Bbr_vtrs.Topology.link;
  edf : Bbr_vtrs.Vtedf.t option;
      (** schedulability state; [Some] iff the link is delay-based *)
}

type t

val create : Bbr_vtrs.Topology.t -> t

val entry : t -> link_id:int -> entry
(** Raises [Invalid_argument] for an unknown link id. *)

val reserved : t -> link_id:int -> float
(** Total bandwidth currently reserved on the link, including contingency
    bandwidth. *)

val residual : t -> link_id:int -> float
(** [capacity - reserved]. *)

val reserve : t -> link_id:int -> float -> unit
(** Add to the link's reserved bandwidth.  The caller is responsible for
    having run the admissibility test; reserving beyond capacity raises
    [Invalid_argument] (it would indicate a broker bug). *)

val release : t -> link_id:int -> float -> unit
(** Subtract from the link's reserved bandwidth.  Raises
    [Invalid_argument] if more than reserved would be released. *)

val on_change : t -> (link_id:int -> unit) -> unit
(** Register a hook invoked after every {!reserve}/{!release} — used by
    {!Path_mib} to keep the per-path residual-bandwidth caches fresh. *)

val total_reserved : t -> float
(** Sum over links (diagnostics). *)
