(** Two-tier (hierarchical) bandwidth brokering.

    The paper's conclusion names a distributed/hierarchical broker
    architecture as the way to scale the control plane beyond one central
    BB.  This module implements the quota-delegation design point: an
    {e edge broker} sits next to an ingress router, holds a bandwidth
    {e quota} on one ingress→egress path that it acquired from the central
    broker in chunks, and performs per-flow admission {e locally} using the
    O(1) closed form of Section 3.1 — contacting the central broker only
    when its quota runs out (or to hand idle quota back).

    The effect: per-flow admission no longer transits the central broker,
    whose transaction load drops from one per flow to one per quota chunk,
    at the price of bandwidth fragmentation when quota sits idle at one
    edge while another starves (measurable with {!central_transactions}
    and the hierarchy benchmark).

    Restricted to paths made of rate-based schedulers only: a delay-based
    quota would have to carve up VT-EDF schedulability, which requires the
    global view (this is exactly the trade-off the paper hints at). *)

type t

val create :
  central:Broker.t -> ingress:string -> egress:string -> chunk:float -> (t, Types.reject_reason) result
(** [chunk] is the quota acquisition granularity in bits/s.  Fails with
    [No_route] when the central broker has no path, and with
    [Not_schedulable] when the path contains delay-based hops. *)

val request : t -> Types.request -> (Types.flow_id * Types.reservation, Types.reject_reason) result
(** Local admission against the quota; transparently acquires more quota
    from the central broker when needed (first in [chunk] units, then the
    exact shortfall).  Flow ids are local to this edge broker. *)

val teardown : t -> Types.flow_id -> unit
(** Release a local reservation back into the quota.  Idempotent: an
    unknown (already-released) flow is a no-op. *)

val return_idle_quota : t -> unit
(** Hand whole idle chunks back to the central broker (keeps at most one
    chunk of slack). *)

val quota_total : t -> float
(** Bandwidth currently delegated to this edge broker. *)

val quota_used : t -> float
(** Of which reserved by local flows. *)

val local_flows : t -> int

val central_transactions : t -> int
(** Quota acquisitions, refusals and returns — the central-broker load this
    edge broker has generated (compare with one transaction per flow under
    the flat architecture). *)
