type action = Allow | Deny

type rule = { name : string; matches : Types.request -> bool; action : action }

type t = { default : action; mutable rules : rule list (* reversed priority *) }

let create ?(default = Allow) () = { default; rules = [] }

let add_rule t ~name ~matches action = t.rules <- { name; matches; action } :: t.rules

let add_ingress_rule t ~name ~ingress action =
  add_rule t ~name ~matches:(fun req -> req.Types.ingress = ingress) action

let add_peak_limit t ~name ~max_peak =
  add_rule t ~name
    ~matches:(fun req -> req.Types.profile.Bbr_vtrs.Traffic.peak > max_peak)
    Deny

let add_delay_floor t ~name ~min_dreq =
  add_rule t ~name ~matches:(fun req -> req.Types.dreq < min_dreq) Deny

let check t req =
  let rec eval = function
    | [] -> (
        match t.default with Allow -> Ok () | Deny -> Error "default")
    | rule :: rest ->
        if rule.matches req then
          match rule.action with Allow -> Ok () | Deny -> Error rule.name
        else eval rest
  in
  eval (List.rev t.rules)

let rule_count t = List.length t.rules
