(** Statistical rate guarantees — the simplest instance of the paper's
    "statistical and other forms of QoS guarantees" future work
    (Section 6), and a demonstration that new service models slot into the
    broker without touching core routers.

    Service model: an admitted flow is guaranteed its sustained rate
    [rho] except for a fraction [epsilon] of time.  Treating the flows'
    instantaneous rates as independent random variables bounded by their
    peak rates with means [rho_j], Hoeffding's inequality bounds the
    overflow probability of a link of capacity [C]:

    {v P( sum R_j > C ) <= exp( -2 (C - sum rho_j)^2 / sum peak_j^2 ) v}

    so the broker admits a flow set iff on every link of the path

    {v min( sum peak_j, sum rho_j + sqrt( ln(1/epsilon) / 2 * sum peak_j^2 ) ) <= C v}

    (capped at the peak sum: pure peak allocation is always safe, so the
    statistical service never admits fewer flows than it).

    The square-root term is the {e effective-bandwidth surcharge}; it grows
    like sqrt(n), so per-flow cost falls as flows multiplex — the
    statistical service admits far more flows than peak-rate allocation
    and approaches mean-rate allocation at scale.

    Statistical flows share links with deterministic reservations: the
    surcharge is booked in the same node MIB, so each service sees the
    other's load and the path-residual caches stay consistent. *)

type t

val create : Broker.t -> epsilon:float -> t
(** Piggybacks on the broker's policy, routing and node MIB.
    [epsilon] must lie in (0, 1). *)

val epsilon : t -> float

val request : t -> Types.request -> (Types.flow_id, Types.reject_reason) result
(** Admission per the Hoeffding rule on every link of the selected path;
    the request's [dreq] is ignored (this service guarantees rate, not
    delay).  On success the change in effective bandwidth is reserved in
    the node MIB. *)

val teardown : t -> Types.flow_id -> unit
(** Raises [Invalid_argument] for an unknown flow. *)

val effective_bandwidth : t -> link_id:int -> float
(** Current effective-bandwidth demand of the statistical flows on a
    link: [sum rho + sqrt(ln(1/eps)/2 * sum peak^2)]; 0 when none. *)

val surcharge : t -> link_id:int -> float
(** The square-root term alone — what statistical multiplexing costs over
    pure mean-rate allocation. *)

val flow_count : t -> int
