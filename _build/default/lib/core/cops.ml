type t = {
  broker : Broker.t;
  latency : float;
  defer : float -> (unit -> unit) -> unit;
  mutable messages : int;
  mutable pending : int;
}

let create broker ?(latency = 0.005) ~defer () =
  { broker; latency; defer; messages = 0; pending = 0 }

let send t action =
  t.messages <- t.messages + 1;
  t.defer t.latency action

(* One request/decision exchange; [decide] runs at the broker, [report]
   says whether an RPT follows a positive decision. *)
let exchange t ~decide ~accepted ~on_decision =
  t.pending <- t.pending + 1;
  send t (fun () ->
      (* REQ arrived at the PDP: decide and send DEC back. *)
      let decision = decide () in
      send t (fun () ->
          t.pending <- t.pending - 1;
          on_decision decision;
          (* The PEP reports successful installation of the decision. *)
          if accepted decision then send t (fun () -> ())))

let request t req ~on_decision =
  exchange t
    ~decide:(fun () -> Broker.request t.broker req)
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

let request_class t ?class_id req ~on_decision =
  exchange t
    ~decide:(fun () -> Broker.request_class t.broker ?class_id req)
    ~accepted:(function Ok _ -> true | Error _ -> false)
    ~on_decision

let teardown t flow = send t (fun () -> Broker.teardown t.broker flow)

let teardown_class t flow = send t (fun () -> Broker.teardown_class t.broker flow)

let messages t = t.messages

let pending t = t.pending
