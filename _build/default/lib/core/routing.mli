(** Routing module of the broker (paper Figure 1).

    Peers with the domain topology to select an ingress→egress path for
    each new flow and registers it with the path MIB.  Path selection is
    minimum hop count with the link-id sequence as a deterministic
    tie-break (the paper delegates path set-up to MPLS and does not
    prescribe a metric). *)

type t

val create : Bbr_vtrs.Topology.t -> Path_mib.t -> t

val path : t -> ingress:string -> egress:string -> Path_mib.info option
(** Shortest path between two routers over the links currently up,
    memoized; [None] when unreachable or either router is unknown.  The
    memo is dropped automatically whenever the topology's link up/down
    state changes (see {!Bbr_vtrs.Topology.set_link_state}), so selections
    steer around failed links and may return after repairs. *)

val shortest_path :
  Bbr_vtrs.Topology.t ->
  ingress:string ->
  egress:string ->
  Bbr_vtrs.Topology.link list option
(** The underlying path computation, usable without a broker (the IntServ
    baseline routes with the same metric so comparisons are apples to
    apples).  Skips links marked down. *)

val clear_cache : t -> unit
(** Drop memoized selections (after topology-facing changes in tests). *)
