module Topology = Bbr_vtrs.Topology
module Vtedf = Bbr_vtrs.Vtedf
module Fp = Bbr_util.Fp

type entry = { link : Topology.link; edf : Vtedf.t option }

type state = { entry : entry; mutable reserved : float }

type t = { states : state array; mutable hooks : (link_id:int -> unit) list }

let create topology =
  let make (link : Topology.link) =
    let edf =
      match link.Topology.sched with
      | Topology.Delay_based -> Some (Vtedf.create ~capacity:link.Topology.capacity)
      | Topology.Rate_based -> None
    in
    { entry = { link; edf }; reserved = 0. }
  in
  let links = Topology.links topology in
  { states = Array.of_list (List.map make links); hooks = [] }

let state t ~link_id =
  if link_id < 0 || link_id >= Array.length t.states then
    invalid_arg (Printf.sprintf "Node_mib: unknown link id %d" link_id);
  t.states.(link_id)

let entry t ~link_id = (state t ~link_id).entry

let reserved t ~link_id = (state t ~link_id).reserved

let residual t ~link_id =
  let s = state t ~link_id in
  s.entry.link.Topology.capacity -. s.reserved

let notify t ~link_id = List.iter (fun hook -> hook ~link_id) t.hooks

let reserve t ~link_id amount =
  if amount < 0. then invalid_arg "Node_mib.reserve: negative amount";
  let s = state t ~link_id in
  let next = s.reserved +. amount in
  if not (Fp.leq next s.entry.link.Topology.capacity) then
    invalid_arg
      (Printf.sprintf "Node_mib.reserve: link %d over capacity (%g > %g)" link_id
         next s.entry.link.Topology.capacity);
  s.reserved <- next;
  notify t ~link_id

let release t ~link_id amount =
  if amount < 0. then invalid_arg "Node_mib.release: negative amount";
  let s = state t ~link_id in
  if not (Fp.leq amount s.reserved) then
    invalid_arg
      (Printf.sprintf "Node_mib.release: link %d releasing %g of %g reserved" link_id
         amount s.reserved);
  s.reserved <- Float.max 0. (s.reserved -. amount);
  notify t ~link_id

let on_change t hook = t.hooks <- hook :: t.hooks

let total_reserved t = Array.fold_left (fun acc s -> acc +. s.reserved) 0. t.states
