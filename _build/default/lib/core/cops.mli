(** COPS-style signaling between ingress routers and the broker.

    Under the BB architecture the only control messages in the domain run
    between an ingress router (the PEP, in COPS terms) and the broker (the
    PDP): a request, a decision, an installation report, and a delete
    notice — {e per flow}, regardless of path length, with no refresh
    traffic at all.  This module models that channel with an injectable
    transport delay so the message overhead can be measured and compared
    against hop-by-hop soft-state signaling ({!Bbr_intserv.Rsvp}), which
    costs two messages per hop per set-up plus a perpetual refresh stream.

    Message accounting per admitted flow: REQ + DEC + RPT = 3, plus DRQ = 1
    on teardown; a rejected flow costs REQ + DEC = 2. *)

type t

val create :
  Broker.t -> ?latency:float -> defer:(float -> (unit -> unit) -> unit) -> unit -> t
(** [defer delay action] delivers a message: it must run [action] after
    [delay] (e.g. [Engine.schedule_after]).  [latency] is the one-way
    PEP↔PDP delay (default 0.005 s). *)

val request :
  t ->
  Types.request ->
  on_decision:((Types.flow_id * Types.reservation, Types.reject_reason) result -> unit) ->
  unit
(** Per-flow service request: REQ travels to the broker, the decision is
    made there, DEC travels back; on an admit the PEP configures its edge
    conditioner and sends the RPT report. *)

val request_class :
  t ->
  ?class_id:int ->
  Types.request ->
  on_decision:((Types.flow_id * Aggregate.class_def, Types.reject_reason) result -> unit) ->
  unit
(** Class-based variant. *)

val teardown : t -> Types.flow_id -> unit
(** DRQ: the PEP tells the broker the per-flow reservation is gone. *)

val teardown_class : t -> Types.flow_id -> unit

val messages : t -> int
(** Total signaling messages exchanged so far. *)

val pending : t -> int
(** Requests in flight (REQ sent, DEC not yet delivered). *)
