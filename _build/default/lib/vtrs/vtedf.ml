module Fp = Bbr_util.Fp

type klass = {
  delay : float;
  sum_rate : float;
  sum_lmax : float;
  count : int;
}

type t = {
  cap : float;
  mutable by_delay : klass list;  (* sorted by increasing delay *)
  mutable total : float;
  mutable flows : int;
}

let create ~capacity =
  if capacity <= 0. then invalid_arg "Vtedf.create: capacity must be positive";
  { cap = capacity; by_delay = []; total = 0.; flows = 0 }

let capacity t = t.cap

let total_rate t = t.total

let flow_count t = t.flows

let classes t = t.by_delay

let add t ~rate ~delay ~lmax =
  if rate <= 0. then invalid_arg "Vtedf.add: rate must be positive";
  if lmax <= 0. then invalid_arg "Vtedf.add: lmax must be positive";
  if delay < 0. then invalid_arg "Vtedf.add: delay must be non-negative";
  let rec insert = function
    | [] -> [ { delay; sum_rate = rate; sum_lmax = lmax; count = 1 } ]
    | k :: rest when k.delay = delay ->
        {
          k with
          sum_rate = k.sum_rate +. rate;
          sum_lmax = k.sum_lmax +. lmax;
          count = k.count + 1;
        }
        :: rest
    | k :: rest when k.delay > delay ->
        { delay; sum_rate = rate; sum_lmax = lmax; count = 1 } :: k :: rest
    | k :: rest -> k :: insert rest
  in
  t.by_delay <- insert t.by_delay;
  t.total <- t.total +. rate;
  t.flows <- t.flows + 1

let remove t ~rate ~delay ~lmax =
  let rec drop = function
    | [] -> invalid_arg "Vtedf.remove: no flow with this delay"
    | k :: rest when k.delay = delay ->
        if k.count = 1 then rest
        else
          {
            k with
            sum_rate = k.sum_rate -. rate;
            sum_lmax = k.sum_lmax -. lmax;
            count = k.count - 1;
          }
          :: rest
    | k :: _ when k.delay > delay ->
        invalid_arg "Vtedf.remove: no flow with this delay"
    | k :: rest -> k :: drop rest
  in
  t.by_delay <- drop t.by_delay;
  t.total <- t.total -. rate;
  t.flows <- t.flows - 1

let demand t ~at =
  List.fold_left
    (fun acc k ->
      if k.delay <= at then acc +. (k.sum_rate *. (at -. k.delay)) +. k.sum_lmax
      else acc)
    0. t.by_delay

let rate_below t ~at =
  List.fold_left
    (fun acc k -> if k.delay <= at then acc +. k.sum_rate else acc)
    0. t.by_delay

let residual_service t ~at = (t.cap *. at) -. demand t ~at

let breakpoints t =
  let rec go acc demand rate_sum prev = function
    | [] -> List.rev acc
    | k :: rest ->
        let demand = demand +. (rate_sum *. (k.delay -. prev)) +. k.sum_lmax in
        go
          ((k.delay, (t.cap *. k.delay) -. demand) :: acc)
          demand (rate_sum +. k.sum_rate) k.delay rest
  in
  go [] 0. 0. 0. t.by_delay

let schedulable t =
  Fp.leq t.total t.cap
  && List.for_all
       (* Compare demand against supply rather than the residual against
          zero: the relative tolerance then matches the one {!can_admit}
          admitted under, so boundary admissions remain schedulable. *)
       (fun (d, s) ->
         let supply = t.cap *. d in
         Fp.leq (supply -. s) supply)
       (breakpoints t)

(* Single linear pass: walk the breakpoints accumulating the demand,
   checking the candidate's own constraint at [t = delay] and the eq.-(5)
   constraint at every breakpoint >= [delay].  When [delay] coincides with
   a breakpoint, that breakpoint's constraint subsumes the own constraint
   (it reads residual >= rate*0 + lmax). *)
let can_admit t ~rate ~delay ~lmax =
  Fp.leq (t.total +. rate) t.cap
  &&
  (* Own constraint at a point strictly inside the segment beginning at
     [prev]: demand grows linearly, no jump at [delay] itself. *)
  let own_ok demand rate_sum prev =
    let at_delay = demand +. (rate_sum *. (delay -. prev)) in
    Fp.geq ((t.cap *. delay) -. at_delay) lmax
  in
  let rec go demand rate_sum prev own_done = function
    | [] -> own_done || own_ok demand rate_sum prev
    | k :: rest as all ->
        if (not own_done) && k.delay > delay then
          own_ok demand rate_sum prev && go demand rate_sum prev true all
        else begin
          let demand = demand +. (rate_sum *. (k.delay -. prev)) +. k.sum_lmax in
          let s = (t.cap *. k.delay) -. demand in
          let ok =
            k.delay < delay || Fp.geq s ((rate *. (k.delay -. delay)) +. lmax)
          in
          ok
          && go demand (rate_sum +. k.sum_rate) k.delay
               (own_done || k.delay >= delay)
               rest
        end
  in
  go 0. 0. 0. false t.by_delay

(* [residual_service] is piecewise linear in [at] with non-negative slope
   between breakpoints (slope = capacity minus the rates of earlier classes)
   and a downward jump of [sum_lmax] at each breakpoint; we scan segments in
   order for the first point where it reaches [lmax]. *)
let min_feasible_delay t ~lmax =
  let solve_segment ~start ~value ~slope ~limit =
    (* Smallest d in [start, limit) with value + slope (d - start) >= lmax;
       [limit = infinity] for the last segment. *)
    if Fp.geq value lmax then Some start
    else if slope <= 0. then None
    else
      let d = start +. ((lmax -. value) /. slope) in
      if d < limit then Some d else None
  in
  let rec scan start value slope = function
    | [] -> solve_segment ~start ~value ~slope ~limit:infinity
    | k :: rest -> (
        match solve_segment ~start ~value ~slope ~limit:k.delay with
        | Some d -> Some d
        | None ->
            let at_bp = value +. (slope *. (k.delay -. start)) -. k.sum_lmax in
            scan k.delay at_bp (slope -. k.sum_rate) rest)
  in
  scan 0. 0. t.cap t.by_delay

let pp ppf t =
  Fmt.pf ppf "@[<v>VT-EDF capacity=%g total_rate=%g flows=%d" t.cap t.total t.flows;
  List.iter
    (fun k ->
      Fmt.pf ppf "@,  d=%g rate=%g lmax=%g n=%d S=%g" k.delay k.sum_rate k.sum_lmax
        k.count (residual_service t ~at:k.delay))
    t.by_delay;
  Fmt.pf ppf "@]"
