(** Dynamic packet state carried in packet headers (paper Section 2.1).

    Under the VTRS, a packet carries (i) the rate–delay parameter pair
    [<r, d>] of its flow, (ii) its current virtual time stamp [omega] and
    (iii) a virtual time adjustment term [delta].  Core routers reference
    and update this state; they keep no per-flow state of their own.

    This implementation uses the {e max-packet-size deadline} instantiation
    of the VTRS (see DESIGN.md): packets of a flow [j] at a rate-based hop
    carry the constant per-hop virtual delay [lmax_j / r_j] rather than the
    per-packet [L^{j,k} / r_j].  With constant per-hop virtual delays the
    virtual spacing property is preserved hop by hop with [delta = 0], and
    the resulting end-to-end bound is exactly eq. (2) of the paper (which is
    itself stated in terms of [L^{j,max}]). *)

type t = {
  rate : float;  (** reserved rate [r^j] of the flow, bits/s *)
  delay : float;  (** delay parameter [d^j], seconds (delay-based hops) *)
  lmax : float;  (** the flow's maximum packet size [L^{j,max}], bits *)
  omega : float;  (** virtual time stamp at the current hop, seconds *)
  delta : float;  (** virtual time adjustment term (0 in this instantiation) *)
}

val init : rate:float -> delay:float -> lmax:float -> edge_departure:float -> t
(** State stamped by the edge conditioner: [omega] is initialised to the
    time the packet leaves the edge conditioner and enters the first core
    hop ([omega = a_hat_1]). *)

val virtual_delay : t -> Topology.sched_class -> float
(** Per-hop virtual delay [d~_i]: [lmax/rate + delta] at a rate-based hop,
    [delay] at a delay-based hop. *)

val virtual_finish : t -> Topology.sched_class -> float
(** Virtual finish time [nu~ = omega + d~] at the current hop — the quantity
    core-stateless schedulers use as the service priority. *)

val advance : t -> link:Topology.link -> t
(** Concatenation rule, paper eq. (1): the state the packet carries into the
    next hop after crossing [link]:
    [omega' = omega + d~ + psi + pi]. *)
