type t = { sigma : float; rho : float; peak : float; lmax : float }

let make ~sigma ~rho ~peak ~lmax =
  if not (lmax > 0.) then invalid_arg "Traffic.make: lmax must be positive";
  if not (sigma >= lmax) then invalid_arg "Traffic.make: sigma must be >= lmax";
  if not (rho > 0.) then invalid_arg "Traffic.make: rho must be positive";
  if not (peak >= rho) then invalid_arg "Traffic.make: peak must be >= rho";
  { sigma; rho; peak; lmax }

let pp ppf p =
  Fmt.pf ppf "(sigma=%g rho=%g peak=%g lmax=%g)" p.sigma p.rho p.peak p.lmax

let equal a b =
  a.sigma = b.sigma && a.rho = b.rho && a.peak = b.peak && a.lmax = b.lmax

let t_on p =
  if p.peak <= p.rho then 0. else (p.sigma -. p.lmax) /. (p.peak -. p.rho)

let envelope p t =
  assert (t >= 0.);
  Float.min ((p.peak *. t) +. p.lmax) ((p.rho *. t) +. p.sigma)

let aggregate = function
  | [] -> invalid_arg "Traffic.aggregate: empty list"
  | p :: ps ->
      let f acc q =
        {
          sigma = acc.sigma +. q.sigma;
          rho = acc.rho +. q.rho;
          peak = acc.peak +. q.peak;
          lmax = acc.lmax +. q.lmax;
        }
      in
      List.fold_left f p ps

let add a b = aggregate [ a; b ]

let remove a b =
  let sigma = a.sigma -. b.sigma
  and rho = a.rho -. b.rho
  and peak = a.peak -. b.peak
  and lmax = a.lmax -. b.lmax in
  (* Re-validate: subtracting a microflow that was never part of the
     macroflow can produce nonsense. *)
  make ~sigma ~rho ~peak ~lmax

let conforms p ~rate = p.rho <= rate && rate <= p.peak
