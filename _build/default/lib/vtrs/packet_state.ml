type t = {
  rate : float;
  delay : float;
  lmax : float;
  omega : float;
  delta : float;
}

let init ~rate ~delay ~lmax ~edge_departure =
  assert (rate > 0.);
  { rate; delay; lmax; omega = edge_departure; delta = 0. }

let virtual_delay t = function
  | Topology.Rate_based -> (t.lmax /. t.rate) +. t.delta
  | Topology.Delay_based -> t.delay

let virtual_finish t klass = t.omega +. virtual_delay t klass

let advance t ~link =
  let d = virtual_delay t link.Topology.sched in
  { t with omega = t.omega +. d +. link.Topology.psi +. link.Topology.prop_delay }
