lib/vtrs/traffic.mli: Fmt
