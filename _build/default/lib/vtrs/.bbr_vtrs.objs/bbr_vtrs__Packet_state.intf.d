lib/vtrs/packet_state.mli: Topology
