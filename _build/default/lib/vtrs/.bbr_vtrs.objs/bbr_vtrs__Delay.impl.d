lib/vtrs/delay.ml: Float Traffic
