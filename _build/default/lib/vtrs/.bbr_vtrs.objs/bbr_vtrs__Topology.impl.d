lib/vtrs/topology.ml: Fmt Hashtbl List Printf
