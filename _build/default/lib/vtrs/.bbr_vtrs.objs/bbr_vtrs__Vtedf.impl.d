lib/vtrs/vtedf.ml: Bbr_util Fmt List
