lib/vtrs/traffic.ml: Float Fmt List
