lib/vtrs/topology.mli: Fmt
