lib/vtrs/packet_state.ml: Topology
