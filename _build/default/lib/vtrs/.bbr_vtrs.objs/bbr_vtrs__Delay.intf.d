lib/vtrs/delay.mli: Traffic
