lib/vtrs/vtedf.mli: Fmt
