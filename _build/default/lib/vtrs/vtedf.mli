(** Schedulability state of a delay-based (VT-EDF) scheduler.

    A VT-EDF scheduler of capacity [C] can guarantee every flow [j] its
    delay parameter [d^j] with error term [lmax*/C] iff (paper eq. (5))

    {v sum_j [ r^j (t - d^j) + lmax^j ] 1{t >= d^j}  <=  C t   for all t >= 0 v}

    The left side is piecewise linear with upward jumps at the [d^j], so the
    condition only needs checking at each distinct delay value (and the
    total-rate slope condition at infinity).  This module maintains the flow
    population of one scheduler grouped by {e distinct} delay value — the
    structure behind the paper's O(M) path-oriented admission algorithm
    (Section 3.2) — and answers exact schedulability queries.

    The broker holds one [Vtedf.t] per delay-based link; the routers
    themselves remain stateless. *)

type t

type klass = {
  delay : float;  (** the distinct delay value [d^m] *)
  sum_rate : float;  (** total reserved rate of flows at this delay *)
  sum_lmax : float;  (** total max packet size of flows at this delay *)
  count : int;  (** number of flows at this delay *)
}

val create : capacity:float -> t
(** Raises [Invalid_argument] unless [capacity > 0]. *)

val capacity : t -> float

val total_rate : t -> float
(** Sum of reserved rates of all flows. *)

val flow_count : t -> int

val classes : t -> klass list
(** Current population grouped by distinct delay, in increasing delay
    order.  [List.length (classes t)] is the paper's [M]. *)

val add : t -> rate:float -> delay:float -> lmax:float -> unit
(** Registers a flow.  No schedulability check is made — callers decide via
    {!can_admit} first.  Raises [Invalid_argument] on non-positive [rate],
    [lmax] or negative [delay]. *)

val remove : t -> rate:float -> delay:float -> lmax:float -> unit
(** Unregisters a flow previously added with the same parameters.  Raises
    [Invalid_argument] if no flow with this delay is present. *)

val demand : t -> at:float -> float
(** Left side of eq. (5) at time [at]:
    [sum over flows with d^j <= at of (r^j (at - d^j) + lmax^j)]. *)

val rate_below : t -> at:float -> float
(** Sum of reserved rates of flows with delay parameter [<= at] — the local
    slope of {!demand}. *)

val residual_service : t -> at:float -> float
(** [S(at) = C*at - demand at]: the minimal residual service over any
    interval of length [at].  At a breakpoint [d^m] this is the paper's
    [S_i^k]. *)

val breakpoints : t -> (float * float) list
(** [(d^m, S at d^m)] for every distinct delay, ascending, computed in one
    linear pass — the O(M) building block of the Section-3.2 admission
    algorithm. *)

val schedulable : t -> bool
(** Exact check of eq. (5) over the current population. *)

val can_admit : t -> rate:float -> delay:float -> lmax:float -> bool
(** Exact check that eq. (5) still holds after adding the candidate flow:
    the slope condition [total_rate + rate <= C], the candidate's own
    constraint at [t = delay], and the constraint at every existing
    breakpoint [d^m >= delay].  Assumes the current population is
    schedulable. *)

val min_feasible_delay : t -> lmax:float -> float option
(** Smallest delay parameter [d] such that a {e zero-rate} flow of maximum
    packet size [lmax] would be schedulable at [t = d]
    ([residual_service d >= lmax]); the true minimum feasible delay for a
    positive-rate candidate is at least this.  [None] if no such delay
    exists (the scheduler is saturated). *)

val pp : t Fmt.t
