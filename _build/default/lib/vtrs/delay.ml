let edge_bound p ~rate =
  assert (rate > 0.);
  let open Traffic in
  (t_on p *. (p.peak -. rate) /. rate) +. (p.lmax /. rate)

let core_bound ~q ~delay_hops ~lmax ~rate ~delay ~d_tot =
  assert (rate > 0.);
  (float_of_int q *. lmax /. rate) +. (float_of_int delay_hops *. delay) +. d_tot

let e2e_bound p ~q ~delay_hops ~rate ~delay ~d_tot =
  edge_bound p ~rate
  +. core_bound ~q ~delay_hops ~lmax:p.Traffic.lmax ~rate ~delay ~d_tot

let min_rate_rate_based p ~hops ~d_tot ~dreq =
  let open Traffic in
  let ton = t_on p in
  let denom = dreq -. d_tot +. ton in
  if denom <= 0. then None
  else Some (((ton *. p.peak) +. (float_of_int (hops + 1) *. p.lmax)) /. denom)

let macroflow_core_bound ~hops ~path_lmax ~rate ~d_tot =
  assert (rate > 0.);
  (float_of_int hops *. path_lmax /. rate) +. d_tot

let modified_core_bound ~q ~delay_hops ~path_lmax ~rate_before ~rate_after ~delay ~d_tot =
  assert (rate_before > 0. && rate_after > 0.);
  let per_hop = Float.max (path_lmax /. rate_before) (path_lmax /. rate_after) in
  (float_of_int q *. per_hop) +. (float_of_int delay_hops *. delay) +. d_tot
