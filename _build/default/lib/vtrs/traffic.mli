(** Dual-token-bucket traffic profiles.

    A flow's traffic is described by the standard dual-token-bucket regulator
    [(sigma, rho, peak, lmax)] of the paper (Section 2.1): maximum burst size
    [sigma] (bits), sustained rate [rho] (bits/s), peak rate [peak] (bits/s)
    and maximum packet size [lmax] (bits).  The arrival envelope is
    [E(t) = min (peak*t + lmax, rho*t + sigma)].

    All quantities are in bits and seconds. *)

type t = private {
  sigma : float;  (** maximum burst size, bits; [sigma >= lmax] *)
  rho : float;  (** sustained rate, bits/s; [0 < rho <= peak] *)
  peak : float;  (** peak rate, bits/s *)
  lmax : float;  (** maximum packet size, bits; [lmax > 0] *)
}

val make : sigma:float -> rho:float -> peak:float -> lmax:float -> t
(** Validates the profile.  Raises [Invalid_argument] unless
    [0 < rho <= peak], [sigma >= lmax > 0]. *)

val pp : t Fmt.t

val equal : t -> t -> bool

val t_on : t -> float
(** Maximum duration of a peak-rate burst:
    [T_on = (sigma - lmax) / (peak - rho)] (paper, below eq. (3)).
    Returns 0 for a constant-bit-rate profile ([peak = rho]). *)

val envelope : t -> float -> float
(** [envelope p t] is the maximum amount of traffic (bits) the flow may send
    in any interval of length [t >= 0]:
    [min (peak*t + lmax, rho*t + sigma)]. *)

val aggregate : t list -> t
(** Aggregate profile of a macroflow (Section 4.1): component-wise sums
    [sigma_a = sum sigma_j], [rho_a = sum rho_j], [peak_a = sum peak_j] and
    [lmax_a = sum lmax_j] (a maximum-size packet may arrive from every
    microflow simultaneously).  Raises [Invalid_argument] on an empty
    list. *)

val add : t -> t -> t
(** [add a b] = [aggregate \[a; b\]]. *)

val remove : t -> t -> t
(** [remove a b] subtracts microflow [b] from macroflow [a] (component-wise).
    Raises [Invalid_argument] if the result would not be a valid profile. *)

val conforms : t -> rate:float -> bool
(** [conforms p ~rate] checks [rho <= rate <= peak]: whether [rate] is an
    admissible reserved rate for the profile. *)
