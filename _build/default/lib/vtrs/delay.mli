(** End-to-end delay bounds of the virtual time reference system
    (paper eqs. (2), (3), (4), (12), (18)) and the closed-form minimum
    feasible rate for rate-based paths (Section 3.1).

    All functions take rates in bits/s and return seconds. *)

val edge_bound : Traffic.t -> rate:float -> float
(** Eq. (3): worst-case delay in the edge shaper when flow [p] is shaped to
    [rate]: [T_on * (P - r)/r + lmax/r].  Requires [rate > 0]. *)

val core_bound :
  q:int -> delay_hops:int -> lmax:float -> rate:float -> delay:float -> d_tot:float -> float
(** Eq. (2): worst-case delay across the network core for a flow with
    rate–delay pair [<rate, delay>] crossing [q] rate-based and
    [delay_hops] delay-based schedulers:
    [q * lmax/rate + delay_hops * delay + d_tot]. *)

val e2e_bound :
  Traffic.t -> q:int -> delay_hops:int -> rate:float -> delay:float -> d_tot:float -> float
(** Eq. (4): [edge_bound + core_bound] with the flow's own [lmax]:
    [T_on (P-r)/r + (q+1) lmax/r + (h-q) d + D_tot]. *)

val min_rate_rate_based : Traffic.t -> hops:int -> d_tot:float -> dreq:float -> float option
(** Section 3.1: the smallest rate [r] such that the end-to-end bound of a
    path of [hops] rate-based schedulers meets the requirement [dreq]:
    [r_min = (T_on P + (h+1) lmax) / (dreq - d_tot + T_on)].
    [None] when no finite positive rate can meet [dreq] (the denominator is
    not positive).  The result is {e not} clipped to [\[rho, peak\]]. *)

val macroflow_core_bound : hops:int -> path_lmax:float -> rate:float -> d_tot:float -> float
(** Core part of eq. (12): a macroflow on a rate-based path is limited in
    the core by the path MTU [path_lmax], not by its aggregate [lmax]:
    [h * path_lmax / rate + d_tot]. *)

val modified_core_bound :
  q:int ->
  delay_hops:int ->
  path_lmax:float ->
  rate_before:float ->
  rate_after:float ->
  delay:float ->
  d_tot:float ->
  float
(** Eq. (18), Theorem 4: core delay bound valid across a reserved-rate
    change from [rate_before] to [rate_after]:
    [q * max (path_lmax/rate_before, path_lmax/rate_after)
     + delay_hops * delay + d_tot]. *)
