(** Soft-state hop-by-hop reservation signaling, RSVP-style.

    The paper motivates the broker by the cost of the conventional set-up
    protocol: PATH/RESV messages walk the path hop by hop, every router
    keeps per-session soft state, and that state must be refreshed
    periodically or it expires.  This module simulates that machinery over
    the event engine so the control-plane message and state overhead can be
    measured and compared against the broker (which exchanges exactly two
    messages per flow, both at the edge).

    Message propagation takes [hop_latency] per hop.  Established sessions
    are refreshed every [refresh_interval]; a router discards state (and
    releases its bandwidth) when it has seen no refresh for
    [keep_multiplier * refresh_interval]. *)

type t

val create :
  Bbr_netsim.Engine.t ->
  Bbr_vtrs.Topology.t ->
  ?hop_latency:float ->
  ?refresh_interval:float ->
  ?keep_multiplier:int ->
  unit ->
  t
(** Defaults: [hop_latency = 0.005] s, [refresh_interval = 30] s (the RSVP
    default), [keep_multiplier = 3]. *)

val open_session :
  t ->
  flow:int ->
  path:Bbr_vtrs.Topology.link list ->
  rate:float ->
  on_result:(bool -> unit) ->
  unit
(** Launch the PATH walk downstream, then the RESV walk upstream with a
    local capacity test at every hop; [on_result] fires at the sender once
    the RESV (or the tear of a failed attempt) completes.  Refreshing
    starts automatically for accepted sessions. *)

val close_session : t -> flow:int -> unit
(** Graceful PATHTEAR: walks the path releasing state. *)

val abandon : t -> flow:int -> unit
(** Stop refreshing without tearing down — the session's router state must
    then expire by itself (soft-state cleanup). *)

val messages : t -> int
(** Total signaling messages processed so far (PATH, RESV, tears and all
    refreshes). *)

val state_count : t -> int
(** Per-session soft-state entries currently held across all routers. *)

val reserved : t -> link_id:int -> float

val session_active : t -> flow:int -> bool
