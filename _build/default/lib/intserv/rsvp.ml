module Engine = Bbr_netsim.Engine
module Topology = Bbr_vtrs.Topology
module Fp = Bbr_util.Fp

type soft_state = { rate : float; mutable expires : float }

type node_state = {
  link : Topology.link;
  sessions : (int, soft_state) Hashtbl.t;  (* flow -> state *)
  mutable reserved : float;
}

type session = {
  path : Topology.link list;
  rate : float;
  mutable refreshing : bool;
}

type t = {
  engine : Engine.t;
  hop_latency : float;
  refresh_interval : float;
  keep : float;  (* state lifetime *)
  nodes : node_state array;
  sessions : (int, session) Hashtbl.t;
  mutable messages : int;
}

let create engine topology ?(hop_latency = 0.005) ?(refresh_interval = 30.)
    ?(keep_multiplier = 3) () =
  let make link = { link; sessions = Hashtbl.create 16; reserved = 0. } in
  let t =
    {
      engine;
      hop_latency;
      refresh_interval;
      keep = float_of_int keep_multiplier *. refresh_interval;
      nodes = Array.of_list (List.map make (Topology.links topology));
      sessions = Hashtbl.create 64;
      messages = 0;
    }
  in
  t

(* Periodic sweeper on each node would be heavy; instead expiry is lazy:
   state is checked against its deadline whenever touched, and a timer per
   installed state retires it if no refresh extended the deadline. *)
let install t (node : node_state) ~flow ~rate =
  let now = Engine.now t.engine in
  match Hashtbl.find_opt node.sessions flow with
  | Some ss -> ss.expires <- now +. t.keep
  | None ->
      let ss = { rate; expires = now +. t.keep } in
      Hashtbl.replace node.sessions flow ss;
      node.reserved <- node.reserved +. rate;
      let rec watchdog () =
        match Hashtbl.find_opt node.sessions flow with
        | None -> ()
        | Some ss ->
            let now = Engine.now t.engine in
            if now >= ss.expires -. 1e-9 then begin
              Hashtbl.remove node.sessions flow;
              node.reserved <- Float.max 0. (node.reserved -. ss.rate)
            end
            else Engine.schedule t.engine ~at:ss.expires watchdog
      in
      Engine.schedule t.engine ~at:ss.expires watchdog

let remove_state (node : node_state) ~flow =
  match Hashtbl.find_opt node.sessions flow with
  | None -> ()
  | Some ss ->
      Hashtbl.remove node.sessions flow;
      node.reserved <- Float.max 0. (node.reserved -. ss.rate)

(* Walk a message along [links], invoking [at_hop] on each node in order
   with [hop_latency] between hops, then [done_] at the far end. *)
let walk t links ~at_hop ~done_ =
  let rec go = function
    | [] -> done_ ()
    | node :: rest ->
        t.messages <- t.messages + 1;
        at_hop node;
        Engine.schedule_after t.engine ~delay:t.hop_latency (fun () -> go rest)
  in
  go links

let node_of t (l : Topology.link) = t.nodes.(l.Topology.link_id)

let start_refresh t flow session =
  session.refreshing <- true;
  let rec tick () =
    if session.refreshing && Hashtbl.mem t.sessions flow then begin
      (* A refresh is a PATH + RESV pair re-walking the path. *)
      walk t (List.map (node_of t) session.path)
        ~at_hop:(fun node -> install t node ~flow ~rate:session.rate)
        ~done_:(fun () -> ());
      walk t (List.rev_map (node_of t) session.path)
        ~at_hop:(fun node -> install t node ~flow ~rate:session.rate)
        ~done_:(fun () -> ());
      Engine.schedule_after t.engine ~delay:t.refresh_interval tick
    end
  in
  Engine.schedule_after t.engine ~delay:t.refresh_interval tick

let open_session t ~flow ~path ~rate ~on_result =
  if Hashtbl.mem t.sessions flow then invalid_arg "Rsvp.open_session: duplicate flow";
  let nodes_down = List.map (node_of t) path in
  (* PATH downstream installs path state (modeled as a message count);
     RESV upstream performs the local admission tests and reserves. *)
  walk t nodes_down
    ~at_hop:(fun _ -> ())
    ~done_:(fun () ->
      let accepted = ref true in
      walk t (List.rev nodes_down)
        ~at_hop:(fun node ->
          if !accepted then
            if Fp.leq (node.reserved +. rate) node.link.Topology.capacity then
              install t node ~flow ~rate
            else accepted := false)
        ~done_:(fun () ->
          if !accepted then begin
            let session = { path; rate; refreshing = false } in
            Hashtbl.replace t.sessions flow session;
            start_refresh t flow session;
            on_result true
          end
          else begin
            (* ResvErr: tear the partial reservation downstream. *)
            walk t nodes_down
              ~at_hop:(fun node -> remove_state node ~flow)
              ~done_:(fun () -> on_result false)
          end))

let close_session t ~flow =
  match Hashtbl.find_opt t.sessions flow with
  | None -> invalid_arg "Rsvp.close_session: unknown flow"
  | Some session ->
      session.refreshing <- false;
      Hashtbl.remove t.sessions flow;
      walk t (List.map (node_of t) session.path)
        ~at_hop:(fun node -> remove_state node ~flow)
        ~done_:(fun () -> ())

let abandon t ~flow =
  match Hashtbl.find_opt t.sessions flow with
  | None -> invalid_arg "Rsvp.abandon: unknown flow"
  | Some session ->
      session.refreshing <- false;
      Hashtbl.remove t.sessions flow

let messages t = t.messages

let state_count t =
  Array.fold_left
    (fun acc (node : node_state) -> acc + Hashtbl.length node.sessions)
    0 t.nodes

let reserved t ~link_id = t.nodes.(link_id).reserved

let session_active t ~flow = Hashtbl.mem t.sessions flow
