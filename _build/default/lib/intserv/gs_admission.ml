module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Vtedf = Bbr_vtrs.Vtedf
module Types = Bbr_broker.Types
module Fp = Bbr_util.Fp

(* Local QoS state of one router outgoing link, as IntServ keeps it. *)
type router_state = {
  link : Topology.link;
  mutable reserved : float;
  edf : Vtedf.t option;
  flows : (Types.flow_id, float) Hashtbl.t;  (* flow -> reserved rate *)
}

type record = {
  path : Topology.link list;
  rate : float;
  deadline : float;
  lmax : float;
}

type t = {
  topology : Topology.t;
  routers : router_state array;  (* by link_id *)
  table : (Types.flow_id, record) Hashtbl.t;
  mutable next_id : int;
  mutable hop_tests : int;
}

let create topology =
  let make (link : Topology.link) =
    let edf =
      match link.Topology.sched with
      | Topology.Delay_based -> Some (Vtedf.create ~capacity:link.Topology.capacity)
      | Topology.Rate_based -> None
    in
    { link; reserved = 0.; edf; flows = Hashtbl.create 16 }
  in
  {
    topology;
    routers = Array.of_list (List.map make (Topology.links topology));
    table = Hashtbl.create 64;
    next_id = 0;
    hop_tests = 0;
  }

(* The local admission test a single router runs (one RSVP RESV hop). *)
let local_test t rs ~rate ~deadline ~lmax =
  t.hop_tests <- t.hop_tests + 1;
  Fp.leq (rs.reserved +. rate) rs.link.Topology.capacity
  &&
  match rs.edf with
  | None -> true
  | Some edf -> Vtedf.can_admit edf ~rate ~delay:deadline ~lmax

let reserve_hop rs ~flow ~rate ~deadline ~lmax =
  rs.reserved <- rs.reserved +. rate;
  Hashtbl.replace rs.flows flow rate;
  match rs.edf with
  | None -> ()
  | Some edf -> Vtedf.add edf ~rate ~delay:deadline ~lmax

let release_hop rs ~flow ~rate ~deadline ~lmax =
  rs.reserved <- Float.max 0. (rs.reserved -. rate);
  Hashtbl.remove rs.flows flow;
  match rs.edf with
  | None -> ()
  | Some edf -> Vtedf.remove edf ~rate ~delay:deadline ~lmax

let request t (req : Types.request) =
  match
    Bbr_broker.Routing.shortest_path t.topology ~ingress:req.Types.ingress
      ~egress:req.Types.egress
  with
  | None -> Error Types.No_route
  | Some path -> (
      let p = req.Types.profile in
      let hops = Topology.hop_count path in
      let d_tot = Topology.d_tot path in
      (* WFQ reference system: every hop contributes lmax/rate, so the
         minimal rate is the same closed form as a rate-based-only path. *)
      match Delay.min_rate_rate_based p ~hops ~d_tot ~dreq:req.Types.dreq with
      | None -> Error Types.Delay_unachievable
      | Some rmin ->
          if Fp.gt rmin p.Traffic.peak then Error Types.Delay_unachievable
          else begin
            let rate = Float.max p.Traffic.rho rmin in
            let deadline = p.Traffic.lmax /. rate in
            let lmax = p.Traffic.lmax in
            (* Hop-by-hop walk: each router runs its local test in turn
               (the RESV message progressing upstream). *)
            let ok =
              List.for_all
                (fun (l : Topology.link) ->
                  local_test t t.routers.(l.Topology.link_id) ~rate ~deadline ~lmax)
                path
            in
            if not ok then Error Types.Insufficient_bandwidth
            else begin
              let flow = t.next_id in
              t.next_id <- t.next_id + 1;
              List.iter
                (fun (l : Topology.link) ->
                  reserve_hop t.routers.(l.Topology.link_id) ~flow ~rate ~deadline
                    ~lmax)
                path;
              Hashtbl.replace t.table flow { path; rate; deadline; lmax };
              Ok (flow, { Types.rate; delay = deadline })
            end
          end)

let teardown t flow =
  match Hashtbl.find_opt t.table flow with
  | None -> invalid_arg (Printf.sprintf "Gs_admission.teardown: unknown flow %d" flow)
  | Some record ->
      Hashtbl.remove t.table flow;
      List.iter
        (fun (l : Topology.link) ->
          release_hop t.routers.(l.Topology.link_id) ~flow ~rate:record.rate
            ~deadline:record.deadline ~lmax:record.lmax)
        record.path

let flow_count t = Hashtbl.length t.table

let reserved t ~link_id = t.routers.(link_id).reserved

let router_flow_state t =
  Array.fold_left (fun acc rs -> acc + Hashtbl.length rs.flows) 0 t.routers

let hop_tests t = t.hop_tests

let path_of t flow = Option.map (fun r -> r.path) (Hashtbl.find_opt t.table flow)
