lib/intserv/rsvp.ml: Array Bbr_netsim Bbr_util Bbr_vtrs Float Hashtbl List
