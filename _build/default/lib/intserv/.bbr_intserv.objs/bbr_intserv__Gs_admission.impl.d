lib/intserv/gs_admission.ml: Array Bbr_broker Bbr_util Bbr_vtrs Float Hashtbl List Option Printf
