lib/intserv/gs_admission.mli: Bbr_broker Bbr_vtrs
