lib/intserv/rsvp.mli: Bbr_netsim Bbr_vtrs
