(** IntServ Guaranteed Service admission control — the paper's baseline.

    Follows the conventional model the paper compares against (Section 5):
    the reserved rate of a flow is determined from the {e WFQ reference
    system} of the IETF Guaranteed Service (RFC 2212) — every hop is
    treated as a rate server, so the rate is the Section-3.1 closed form
    with [hops = h] — and admission is then performed {e hop by hop}: each
    router runs a local test against its own QoS state database.  At
    rate-based (VC) hops the test is a capacity check; at delay-based
    (RC-EDF) hops the WFQ-derived rate fixes the local deadline to
    [lmax / rate], and the EDF schedulability condition is tested with it.

    Unlike the broker, this module keeps per-flow state conceptually {e at
    every router} ({!router_flow_state}), and an admission decision costs
    one local test per hop ({!hop_tests}). *)

type t

val create : Bbr_vtrs.Topology.t -> t

val request :
  t ->
  Bbr_broker.Types.request ->
  (Bbr_broker.Types.flow_id * Bbr_broker.Types.reservation, Bbr_broker.Types.reject_reason) result
(** Run the GS admission procedure.  The returned reservation's [delay] is
    the per-hop RC-EDF deadline [lmax / rate]. *)

val teardown : t -> Bbr_broker.Types.flow_id -> unit
(** Release a reservation hop by hop.  Raises [Invalid_argument] for an
    unknown flow. *)

val flow_count : t -> int

val reserved : t -> link_id:int -> float

val router_flow_state : t -> int
(** Total per-flow entries across all routers — grows linearly with flows
    times path length (contrast with the broker's core-stateless data
    plane). *)

val hop_tests : t -> int
(** Cumulative number of local (per-hop) admission tests executed —
    the hop-by-hop cost the paper's path-oriented approach avoids. *)

val path_of : t -> Bbr_broker.Types.flow_id -> Bbr_vtrs.Topology.link list option
