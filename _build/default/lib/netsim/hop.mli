(** One scheduler instance attached to a directed link.

    A hop receives packets, queues them according to its discipline, serves
    them at the link capacity and — after the link's propagation delay —
    hands them to the downstream [deliver] callback with the hop index
    advanced and (for core-stateless disciplines) the packet's virtual time
    stamp updated by the concatenation rule.

    Core-stateless disciplines ({!Csvc}, {!Vtedf}) keep {e no} per-flow
    state: the service priority is computed from the dynamic packet state
    alone.  Stateful disciplines ({!Vc}, {!Rcedf}) require {!install_flow}
    before packets of a flow arrive — they model the IntServ baseline. *)

type discipline =
  | Csvc  (** core-stateless virtual clock: priority = virtual finish time *)
  | Cjvc
      (** core-jitter virtual clock (Stoica & Zhang): like {!Csvc} but
          non-work-conserving — packets are held until their virtual
          arrival time, eliminating downstream jitter *)
  | Vtedf  (** virtual-time EDF: priority = omega + d *)
  | Vc  (** stateful per-flow virtual clock (IntServ rate-based baseline) *)
  | Scfq
      (** self-clocked fair queueing (Golestani): a WFQ-family
          fair scheduler with per-flow weights = reserved rates; the
          system virtual time is the service tag of the most recently
          completed packet *)
  | Rcedf  (** rate-controlled EDF: per-flow shaper + EDF (IntServ baseline) *)
  | Fifo

val pp_discipline : discipline Fmt.t

type t

val create :
  Engine.t -> link:Bbr_vtrs.Topology.link -> deliver:(Packet.t -> unit) -> discipline -> t

val receive : t -> Packet.t -> unit
(** Packet arrival at this hop.  Raises [Invalid_argument] when a
    core-stateless hop receives a packet without packet state, or a
    stateful hop a packet of an uninstalled flow. *)

val install_flow : t -> flow:int -> rate:float -> deadline:float -> unit
(** Register per-flow state at a stateful hop ([Vc] ignores [deadline]).
    No-op for core-stateless and FIFO hops — they have nothing to
    install (this is the decoupling the paper is about). *)

val remove_flow : t -> flow:int -> unit

val flow_state_count : t -> int
(** Number of per-flow entries this hop holds; always 0 for core-stateless
    and FIFO hops. *)

val link : t -> Bbr_vtrs.Topology.link

val served : t -> int

val queue_len : t -> int

val max_backlog_bits : t -> float
(** Largest buffer occupancy observed at this hop (bits) — the buffer
    requirement the node QoS MIB of Section 2.2 records. *)

val max_lateness : t -> float
(** Over all packets that carried packet state, the maximum of
    [actual_finish - (virtual_finish + psi)] observed at this hop —
    non-positive iff the hop honoured its error term (the per-hop guarantee
    of paper Section 2.1).  [neg_infinity] when no such packet was
    served. *)
