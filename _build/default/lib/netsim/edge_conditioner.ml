module Packet_state = Bbr_vtrs.Packet_state

type t = {
  engine : Engine.t;
  mutable rate : float;
  delay_param : float;
  lmax : float;
  on_empty : unit -> unit;
  next : Packet.t -> unit;
  queue : (Packet.t * float) Queue.t;  (* packet, arrival time *)
  mutable last_release : float;
  mutable backlog : float;
  mutable releasing : bool;  (* a release event is pending *)
  mutable epoch : int;  (* invalidates stale release events after set_rate *)
  mutable released : int;
  mutable max_wait : float;
}

let create engine ~rate ~delay_param ~lmax ?(on_empty = fun () -> ()) ~next () =
  if rate <= 0. then invalid_arg "Edge_conditioner.create: rate must be positive";
  {
    engine;
    rate;
    delay_param;
    lmax;
    on_empty;
    next;
    queue = Queue.create ();
    last_release = neg_infinity;
    backlog = 0.;
    releasing = false;
    epoch = 0;
    released = 0;
    max_wait = neg_infinity;
  }

(* Release the head packet at [max now (last_release + size/rate)]; on a
   rate change, the pending event is invalidated via [epoch] and
   re-scheduled under the new rate. *)
let rec arm t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some (pkt, _) ->
      t.releasing <- true;
      let epoch = t.epoch in
      let at =
        Float.max (Engine.now t.engine)
          (t.last_release +. (pkt.Packet.size /. t.rate))
      in
      Engine.schedule t.engine ~at (fun () -> if t.epoch = epoch then release t)

and release t =
  match Queue.take_opt t.queue with
  | None -> assert false
  | Some (pkt, arrived) ->
      let now = Engine.now t.engine in
      t.last_release <- now;
      t.backlog <- t.backlog -. pkt.Packet.size;
      t.released <- t.released + 1;
      let wait = now -. arrived in
      if wait > t.max_wait then t.max_wait <- wait;
      pkt.Packet.edge_exit <- now;
      pkt.Packet.state <-
        Some
          (Packet_state.init ~rate:t.rate ~delay:t.delay_param ~lmax:t.lmax
             ~edge_departure:now);
      t.releasing <- false;
      t.next pkt;
      if Queue.is_empty t.queue then t.on_empty () else arm t

let submit t pkt =
  Queue.add (pkt, Engine.now t.engine) t.queue;
  t.backlog <- t.backlog +. pkt.Packet.size;
  if not t.releasing then arm t

let set_rate t rate =
  if rate <= 0. then invalid_arg "Edge_conditioner.set_rate: rate must be positive";
  if rate <> t.rate then begin
    t.rate <- rate;
    if t.releasing then begin
      (* Invalidate the pending release and re-arm under the new rate. *)
      t.epoch <- t.epoch + 1;
      t.releasing <- false;
      arm t
    end
  end

let rate t = t.rate

let backlog_bits t = t.backlog

let backlog_packets t = Queue.length t.queue

let released t = t.released

let max_queueing_delay t = t.max_wait
