(** Packets flowing through the simulated data plane. *)

type t = {
  flow : int;  (** owning (micro)flow id *)
  seq : int;  (** per-flow sequence number *)
  size : float;  (** bits *)
  born : float;  (** emission time at the source *)
  path : Bbr_vtrs.Topology.link array;  (** hops still to traverse, in order *)
  mutable hop_ix : int;  (** index of the hop currently being traversed *)
  mutable edge_exit : float;  (** time the packet left the edge conditioner *)
  mutable state : Bbr_vtrs.Packet_state.t option;
      (** dynamic packet state; [None] before edge stamping and for
          disciplines that do not use it *)
}

val make :
  flow:int -> seq:int -> size:float -> born:float -> path:Bbr_vtrs.Topology.link array -> t

val current_link : t -> Bbr_vtrs.Topology.link
(** The link/scheduler the packet is currently at.  Raises
    [Invalid_argument] when the packet has left the last hop. *)

val at_last_hop : t -> bool

val pp : t Fmt.t
