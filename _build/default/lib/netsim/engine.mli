(** Discrete-event simulation core.

    A single mutable clock plus a pending-event priority queue.  Events
    scheduled for the same instant fire in scheduling order, which keeps
    runs deterministic. *)

type t

val create : unit -> t
(** A fresh engine with the clock at 0. *)

val now : t -> float
(** Current simulation time, seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Run the thunk when the clock reaches [at].  Raises [Invalid_argument]
    when [at] lies in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~at:(now t +. delay)].  [delay] must be non-negative. *)

val step : t -> bool
(** Execute the next pending event; [false] when none remain. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, or — when [until] is given —
    until the next event lies strictly beyond [until], in which case the
    clock is advanced to exactly [until]. *)

val pending : t -> int
(** Number of queued events. *)

val executed : t -> int
(** Total events executed since creation (progress metric in tests). *)
