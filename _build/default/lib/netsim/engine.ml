module Heap = Bbr_util.Heap

type event = { time : float; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable count : int;
}

let create () =
  {
    clock = 0.;
    queue = Heap.create ~leq:(fun a b -> a.time <= b.time);
    count = 0;
  }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: %g is in the past (now %g)" at t.clock);
  Heap.push t.queue { time = at; action }

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.count <- t.count + 1;
      ev.action ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= stop -> ignore (step t)
        | _ ->
            t.clock <- Float.max t.clock stop;
            continue := false
      done

let pending t = Heap.size t.queue

let executed t = t.count
