type t = {
  flow : int;
  seq : int;
  size : float;
  born : float;
  path : Bbr_vtrs.Topology.link array;
  mutable hop_ix : int;
  mutable edge_exit : float;
  mutable state : Bbr_vtrs.Packet_state.t option;
}

let make ~flow ~seq ~size ~born ~path =
  { flow; seq; size; born; path; hop_ix = 0; edge_exit = nan; state = None }

let current_link t =
  if t.hop_ix >= Array.length t.path then
    invalid_arg "Packet.current_link: past the last hop";
  t.path.(t.hop_ix)

let at_last_hop t = t.hop_ix = Array.length t.path - 1

let pp ppf t =
  Fmt.pf ppf "pkt(flow=%d seq=%d size=%g hop=%d/%d)" t.flow t.seq t.size t.hop_ix
    (Array.length t.path)
