lib/netsim/hop.mli: Bbr_vtrs Engine Fmt Packet
