lib/netsim/net.ml: Array Bbr_vtrs Edge_conditioner Engine Hop List Option Packet Sink
