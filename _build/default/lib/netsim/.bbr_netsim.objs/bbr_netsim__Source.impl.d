lib/netsim/source.ml: Bbr_util Bbr_vtrs Engine Float Packet
