lib/netsim/edge_conditioner.mli: Engine Packet
