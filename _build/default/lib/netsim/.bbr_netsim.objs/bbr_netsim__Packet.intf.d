lib/netsim/packet.mli: Bbr_vtrs Fmt
