lib/netsim/fluid_edge.mli: Engine
