lib/netsim/server.mli: Engine Packet
