lib/netsim/hop.ml: Bbr_vtrs Engine Float Fmt Hashtbl Option Packet Printf Server
