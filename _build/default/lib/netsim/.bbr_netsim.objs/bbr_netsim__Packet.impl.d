lib/netsim/packet.ml: Array Bbr_vtrs Fmt
