lib/netsim/sink.ml: Engine Float Hashtbl List Packet
