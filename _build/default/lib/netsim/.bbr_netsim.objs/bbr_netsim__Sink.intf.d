lib/netsim/sink.mli: Engine Packet
