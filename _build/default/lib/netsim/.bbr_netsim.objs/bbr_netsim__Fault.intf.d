lib/netsim/fault.mli: Bbr_util Engine Format
