lib/netsim/net.mli: Bbr_vtrs Edge_conditioner Engine Hop Packet Sink
