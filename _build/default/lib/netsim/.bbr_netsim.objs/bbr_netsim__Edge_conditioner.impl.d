lib/netsim/edge_conditioner.ml: Bbr_vtrs Engine Float Packet Queue
