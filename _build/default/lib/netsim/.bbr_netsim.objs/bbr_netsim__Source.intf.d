lib/netsim/source.mli: Bbr_util Bbr_vtrs Engine Packet
