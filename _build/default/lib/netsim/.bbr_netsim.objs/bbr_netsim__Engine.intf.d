lib/netsim/engine.mli:
