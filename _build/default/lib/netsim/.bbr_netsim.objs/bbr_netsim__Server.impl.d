lib/netsim/server.ml: Bbr_util Engine Float Packet
