lib/netsim/engine.ml: Bbr_util Float Printf
