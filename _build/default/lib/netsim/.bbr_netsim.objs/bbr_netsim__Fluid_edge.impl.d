lib/netsim/fluid_edge.ml: Engine Float Hashtbl
