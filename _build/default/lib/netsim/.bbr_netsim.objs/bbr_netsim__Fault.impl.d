lib/netsim/fault.ml: Bbr_util Engine Fmt List
