module Heap = Bbr_util.Heap

type item = { key : float; pkt : Packet.t }

type t = {
  engine : Engine.t;
  capacity : float;
  on_depart : Packet.t -> unit;
  queue : item Heap.t;
  mutable busy : bool;
  mutable served : int;
  mutable bits : float;
  mutable backlog : float;  (* bits queued or in transmission *)
  mutable max_backlog : float;
}

let create engine ~capacity ~on_depart =
  if capacity <= 0. then invalid_arg "Server.create: capacity must be positive";
  {
    engine;
    capacity;
    on_depart;
    queue = Heap.create ~leq:(fun a b -> a.key <= b.key);
    busy = false;
    served = 0;
    bits = 0.;
    backlog = 0.;
    max_backlog = 0.;
  }

let rec start_next t =
  match Heap.pop t.queue with
  | None -> t.busy <- false
  | Some { pkt; _ } ->
      t.busy <- true;
      let tx = pkt.Packet.size /. t.capacity in
      Engine.schedule_after t.engine ~delay:tx (fun () ->
          t.served <- t.served + 1;
          t.bits <- t.bits +. pkt.Packet.size;
          t.backlog <- Float.max 0. (t.backlog -. pkt.Packet.size);
          t.on_depart pkt;
          start_next t)

let enqueue t ~key pkt =
  Heap.push t.queue { key; pkt };
  t.backlog <- t.backlog +. pkt.Packet.size;
  if t.backlog > t.max_backlog then t.max_backlog <- t.backlog;
  if not t.busy then start_next t

let queue_len t = Heap.size t.queue

let busy t = t.busy

let served t = t.served

let utilization_bits t = t.bits

let backlog_bits t = t.backlog

let max_backlog_bits t = t.max_backlog
