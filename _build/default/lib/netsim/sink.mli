(** Egress measurement point: collects per-flow delay statistics used to
    validate the analytic delay bounds. *)

type flow_stats = {
  received : int;
  max_e2e : float;  (** max (arrival - born): source-to-egress delay *)
  sum_e2e : float;
  max_core : float;  (** max (arrival - edge_exit): delay across the core *)
  max_edge : float;  (** max (edge_exit - born): delay in the edge shaper *)
}

type t

val create : Engine.t -> t

val receive : t -> Packet.t -> unit

val stats : t -> flow:int -> flow_stats option

val flows : t -> int list
(** Flow ids seen, in ascending order. *)

val total_received : t -> int

val mean_e2e : flow_stats -> float
