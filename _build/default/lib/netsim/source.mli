(** Packet traffic generators.

    Each source emits packets of one flow into a callback (normally an
    {!Edge_conditioner}).  The greedy source reproduces the worst-case
    arrivals used throughout the paper's analysis and in the Figure-7
    scenario: it dumps the maximum traffic its dual-token-bucket profile
    allows at every instant. *)

type t

val greedy :
  Engine.t ->
  profile:Bbr_vtrs.Traffic.t ->
  flow:int ->
  path:Bbr_vtrs.Topology.link array ->
  ?start:float ->
  ?pkt_size:float ->
  next:(Packet.t -> unit) ->
  unit ->
  t
(** Maximally greedy conforming source: sends a packet whenever both token
    buckets hold one packet's worth, so the cumulative arrivals follow
    [min (peak t + lmax, rho t + sigma)].  [pkt_size] defaults to the
    profile's [lmax].  Starts at [start] (default 0). *)

val on_off :
  Engine.t ->
  profile:Bbr_vtrs.Traffic.t ->
  flow:int ->
  path:Bbr_vtrs.Topology.link array ->
  ?start:float ->
  ?pkt_size:float ->
  next:(Packet.t -> unit) ->
  unit ->
  t
(** Deterministic on/off source: on at the peak rate for [T_on], off long
    enough that the long-run average equals [rho]. *)

val cbr :
  Engine.t ->
  rate:float ->
  flow:int ->
  path:Bbr_vtrs.Topology.link array ->
  ?start:float ->
  pkt_size:float ->
  next:(Packet.t -> unit) ->
  unit ->
  t
(** Constant bit rate: one [pkt_size] packet every [pkt_size/rate]
    seconds. *)

val poisson :
  Engine.t ->
  prng:Bbr_util.Prng.t ->
  rate:float ->
  flow:int ->
  path:Bbr_vtrs.Topology.link array ->
  ?start:float ->
  pkt_size:float ->
  next:(Packet.t -> unit) ->
  unit ->
  t
(** Poisson packet arrivals with mean bit rate [rate]. *)

val halt : t -> unit
(** Stop emitting (the flow leaves). *)

val emitted : t -> int
