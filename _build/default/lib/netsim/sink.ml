type flow_stats = {
  received : int;
  max_e2e : float;
  sum_e2e : float;
  max_core : float;
  max_edge : float;
}

type t = { engine : Engine.t; table : (int, flow_stats) Hashtbl.t; mutable total : int }

let create engine = { engine; table = Hashtbl.create 16; total = 0 }

let empty_stats =
  {
    received = 0;
    max_e2e = neg_infinity;
    sum_e2e = 0.;
    max_core = neg_infinity;
    max_edge = neg_infinity;
  }

let receive t pkt =
  let now = Engine.now t.engine in
  let prev =
    match Hashtbl.find_opt t.table pkt.Packet.flow with
    | Some s -> s
    | None -> empty_stats
  in
  let e2e = now -. pkt.Packet.born in
  let core, edge =
    if Float.is_nan pkt.Packet.edge_exit then (neg_infinity, neg_infinity)
    else (now -. pkt.Packet.edge_exit, pkt.Packet.edge_exit -. pkt.Packet.born)
  in
  Hashtbl.replace t.table pkt.Packet.flow
    {
      received = prev.received + 1;
      max_e2e = Float.max prev.max_e2e e2e;
      sum_e2e = prev.sum_e2e +. e2e;
      max_core = Float.max prev.max_core core;
      max_edge = Float.max prev.max_edge edge;
    };
  t.total <- t.total + 1

let stats t ~flow = Hashtbl.find_opt t.table flow

let flows t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let total_received t = t.total

let mean_e2e s = if s.received = 0 then 0. else s.sum_e2e /. float_of_int s.received
