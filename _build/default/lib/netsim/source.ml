module Traffic = Bbr_vtrs.Traffic

type t = { mutable running : bool; mutable emitted : int }

let emit t engine ~flow ~path ~size next =
  let pkt =
    Packet.make ~flow ~seq:t.emitted ~size ~born:(Engine.now engine) ~path
  in
  t.emitted <- t.emitted + 1;
  next pkt

(* Schedules [step] repeatedly; [step] returns the delay to the next
   emission, or None to stop.  Delays are floored at a nanosecond: a
   rounding-level wait could otherwise fail to advance the clock at all
   and spin the engine, and delaying a source never breaks conformance. *)
let min_delay = 1e-9

let self_clocked engine ~start step =
  let t = { running = true; emitted = 0 } in
  let rec loop () =
    if t.running then
      match step t with
      | None -> t.running <- false
      | Some delay ->
          Engine.schedule_after engine ~delay:(Float.max delay min_delay) loop
  in
  Engine.schedule engine ~at:(Float.max start (Engine.now engine)) loop;
  t

let greedy engine ~profile ~flow ~path ?(start = 0.) ?pkt_size ~next () =
  let size = match pkt_size with Some s -> s | None -> profile.Traffic.lmax in
  if size > profile.Traffic.lmax then
    invalid_arg "Source.greedy: pkt_size exceeds profile lmax";
  (* Dual token bucket, both full at start. *)
  let b_sigma = ref profile.Traffic.sigma and b_peak = ref profile.Traffic.lmax in
  let last = ref start in
  let step t =
    let now = Engine.now engine in
    let dt = now -. !last in
    last := now;
    b_sigma := Float.min profile.Traffic.sigma (!b_sigma +. (profile.Traffic.rho *. dt));
    b_peak := Float.min profile.Traffic.lmax (!b_peak +. (profile.Traffic.peak *. dt));
    if !b_sigma >= size -. 1e-9 && !b_peak >= size -. 1e-9 then begin
      b_sigma := !b_sigma -. size;
      b_peak := !b_peak -. size;
      emit t engine ~flow ~path ~size next
    end;
    let wait_sigma =
      if !b_sigma >= size then 0. else (size -. !b_sigma) /. profile.Traffic.rho
    and wait_peak =
      if !b_peak >= size then 0. else (size -. !b_peak) /. profile.Traffic.peak
    in
    Some (Float.max wait_sigma wait_peak)
  in
  self_clocked engine ~start step

(* On/off emission gated by the same dual token bucket as [greedy], so the
   output provably conforms to the profile: greedy during ON windows of
   length [T_on], silent for [sigma/rho] afterwards — exactly the time the
   sigma-bucket (drained to zero by a greedy ON phase) needs to refill. *)
let on_off engine ~profile ~flow ~path ?(start = 0.) ?pkt_size ~next () =
  let size = match pkt_size with Some s -> s | None -> profile.Traffic.lmax in
  let ton = Traffic.t_on profile in
  let open Traffic in
  if ton <= 0. then
    (* CBR profile: steady emission at rho. *)
    self_clocked engine ~start (fun t ->
        emit t engine ~flow ~path ~size next;
        Some (size /. profile.rho))
  else begin
    let cycle = ton +. (profile.sigma /. profile.rho) in
    let b_sigma = ref profile.sigma and b_peak = ref profile.lmax in
    let last = ref start in
    let step t =
      let now = Engine.now engine in
      let dt = now -. !last in
      last := now;
      b_sigma := Float.min profile.sigma (!b_sigma +. (profile.rho *. dt));
      b_peak := Float.min profile.lmax (!b_peak +. (profile.peak *. dt));
      let phase = Float.rem (now -. start) cycle in
      let till_next_on = cycle -. phase in
      if phase < ton then begin
        if !b_sigma >= size -. 1e-9 && !b_peak >= size -. 1e-9 then begin
          b_sigma := !b_sigma -. size;
          b_peak := !b_peak -. size;
          emit t engine ~flow ~path ~size next
        end;
        let wait_sigma =
          if !b_sigma >= size then 0. else (size -. !b_sigma) /. profile.rho
        and wait_peak =
          if !b_peak >= size then 0. else (size -. !b_peak) /. profile.peak
        in
        let wait = Float.max wait_sigma wait_peak in
        (* If the next send slips outside this ON window, sleep to the
           next one. *)
        if phase +. wait < ton then Some wait else Some till_next_on
      end
      else Some till_next_on
    in
    self_clocked engine ~start step
  end

let cbr engine ~rate ~flow ~path ?(start = 0.) ~pkt_size ~next () =
  if rate <= 0. then invalid_arg "Source.cbr: rate must be positive";
  self_clocked engine ~start (fun t ->
      emit t engine ~flow ~path ~size:pkt_size next;
      Some (pkt_size /. rate))

let poisson engine ~prng ~rate ~flow ~path ?(start = 0.) ~pkt_size ~next () =
  if rate <= 0. then invalid_arg "Source.poisson: rate must be positive";
  let mean_gap = pkt_size /. rate in
  self_clocked engine ~start (fun t ->
      emit t engine ~flow ~path ~size:pkt_size next;
      Some (Bbr_util.Prng.exponential prng ~mean:mean_gap))

let halt t = t.running <- false

let emitted t = t.emitted
