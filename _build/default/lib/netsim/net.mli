(** Data-plane instantiation of a domain topology.

    Builds one {!Hop} per link of the topology and wires the forwarding
    fabric: a packet carries its path (an array of links) and is handed
    from hop to hop until it reaches the egress, where the built-in
    {!Sink} records it.

    Two modes mirror the paper's two reference systems:
    - [Core_stateless]: rate-based links run C̄S-VC, delay-based links run
      VT-EDF; core hops hold no per-flow state (BB/VTRS model).
    - [Intserv]: rate-based links run per-flow Virtual Clock, delay-based
      links run RC-EDF; per-flow state must be installed hop by hop
      (IntServ/GS baseline). *)

type mode = Core_stateless | Intserv

type t

val create : Engine.t -> Bbr_vtrs.Topology.t -> mode -> t

val engine : t -> Engine.t

val topology : t -> Bbr_vtrs.Topology.t

val mode : t -> mode

val hop : t -> link_id:int -> Hop.t
(** Raises [Not_found] for an unknown link id. *)

val sink : t -> Sink.t

val inject : t -> Packet.t -> unit
(** Entry point for conditioned packets: delivers the packet to the hop at
    its current path index (used as the [next] of edge conditioners). *)

val make_conditioner :
  t ->
  rate:float ->
  delay_param:float ->
  lmax:float ->
  ?on_empty:(unit -> unit) ->
  unit ->
  Edge_conditioner.t
(** An edge conditioner whose output feeds {!inject}. *)

val install_flow : t -> flow:int -> path:Bbr_vtrs.Topology.link list -> rate:float -> deadline:float -> unit
(** Install per-flow state at every stateful hop along [path] (the RESV
    walk of the IntServ baseline).  No-op at core-stateless hops. *)

val remove_flow : t -> flow:int -> path:Bbr_vtrs.Topology.link list -> unit

val core_flow_state : t -> int
(** Total per-flow entries held across all hops — 0 in [Core_stateless]
    mode by construction, the paper's headline property. *)
