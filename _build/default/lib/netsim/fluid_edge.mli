(** Fluid model of an edge-conditioner backlog.

    The Figure-10 experiment simulates thousands of flow arrivals and
    departures; what the contingency-feedback method (Section 4.2.1) needs
    from the data plane is only {e when the macroflow's edge backlog next
    empties}.  This module integrates the backlog of one edge conditioner
    as a piecewise-linear function: inputs are fluid rates (microflows
    turning on and off), service is the reserved rate plus any contingency
    bandwidth, and a queue-empty callback fires exactly when the backlog
    reaches zero.

    The packet-level {!Edge_conditioner} is the reference model; property
    tests check the two agree on emptying times for step inputs. *)

type t

val create : Engine.t -> service:float -> ?on_empty:(unit -> unit) -> unit -> t
(** [service] is the initial drain rate (bits/s, non-negative). *)

val set_service : t -> float -> unit
(** Reconfigure the drain rate (reserved rate + contingency). *)

val service : t -> float

val set_input : t -> id:int -> rate:float -> unit
(** Set the instantaneous arrival rate of input [id] (a microflow);
    [rate = 0] removes it. *)

val remove_input : t -> id:int -> unit

val input_rate : t -> float
(** Current total arrival rate. *)

val add_burst : t -> float -> unit
(** Instantaneous arrival of the given amount of bits (e.g. a joining
    microflow dumping its burst [sigma]). *)

val backlog : t -> float
(** Current backlog in bits (integrated up to now). *)

val is_empty : t -> bool
