(** Edge traffic conditioner (paper Section 2.1, Figure 2).

    Sits at the ingress router, in front of the first-hop scheduler.  It
    shapes a (micro- or macro-) flow so that consecutive packets enter the
    network core no closer than [size/rate] apart, and stamps each departing
    packet with its dynamic packet state (rate–delay pair and initial
    virtual time stamp = the departure time).

    The service rate is reconfigurable at runtime — the bandwidth broker
    adjusts it when microflows join or leave a macroflow and when
    contingency bandwidth is granted or released (Section 4.2).  A rate
    increase takes effect immediately, including for the packet currently
    being held.

    The conditioner reports the queue-empty events the contingency-feedback
    method of Section 4.2.1 relies on. *)

type t

val create :
  Engine.t ->
  rate:float ->
  delay_param:float ->
  lmax:float ->
  ?on_empty:(unit -> unit) ->
  next:(Packet.t -> unit) ->
  unit ->
  t
(** [rate] is the initial reserved rate (bits/s); [delay_param] and [lmax]
    are stamped into the packet state ([d^j], [L^{j,max}]); [next] receives
    conditioned, stamped packets; [on_empty] fires whenever the backlog
    returns to zero. *)

val submit : t -> Packet.t -> unit
(** Packet arrival from the source side. *)

val set_rate : t -> float -> unit
(** Reconfigure the service (reserved) rate.  Raises [Invalid_argument] on
    a non-positive rate. *)

val rate : t -> float

val backlog_bits : t -> float
(** Bits currently queued (including a packet being held for release). *)

val backlog_packets : t -> int

val released : t -> int
(** Packets released into the core so far. *)

val max_queueing_delay : t -> float
(** Largest waiting time observed so far between a packet's arrival and its
    release ([neg_infinity] before any release) — compared against the edge
    delay bound, eq. (3), in tests and in the Figure-7 experiment. *)
