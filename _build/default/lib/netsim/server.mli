(** Generic non-preemptive priority link server.

    Serves queued packets one at a time at the link capacity, always picking
    the packet with the smallest key (ties broken by enqueue order).  Every
    scheduling discipline in the simulator — C̄S-VC, VT-EDF, VC, RC-EDF,
    FIFO — reduces to this server with a discipline-specific key. *)

type t

val create : Engine.t -> capacity:float -> on_depart:(Packet.t -> unit) -> t
(** [capacity] in bits/s; [on_depart p] is called at the instant the last
    bit of [p] has been transmitted. *)

val enqueue : t -> key:float -> Packet.t -> unit

val queue_len : t -> int
(** Packets waiting, excluding the one in transmission. *)

val busy : t -> bool

val served : t -> int
(** Total packets fully transmitted. *)

val utilization_bits : t -> float
(** Total bits transmitted so far. *)

val backlog_bits : t -> float
(** Bits currently queued or in transmission. *)

val max_backlog_bits : t -> float
(** Largest backlog observed — the buffer requirement the node QoS MIB of
    paper Section 2.2 tracks. *)
