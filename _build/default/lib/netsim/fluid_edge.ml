type t = {
  engine : Engine.t;
  on_empty : unit -> unit;
  inputs : (int, float) Hashtbl.t;
  mutable in_rate : float;
  mutable service : float;
  mutable backlog : float;
  mutable last : float;  (* time of last integration *)
  mutable epoch : int;  (* invalidates scheduled empty events *)
}

let create engine ~service ?(on_empty = fun () -> ()) () =
  if service < 0. then invalid_arg "Fluid_edge.create: negative service rate";
  {
    engine;
    on_empty;
    inputs = Hashtbl.create 8;
    in_rate = 0.;
    service;
    backlog = 0.;
    last = Engine.now engine;
    epoch = 0;
  }

(* Integrate the backlog up to now under the rates in force since [t.last]. *)
let touch t =
  let now = Engine.now t.engine in
  let dt = now -. t.last in
  if dt > 0. then begin
    let net = t.in_rate -. t.service in
    t.backlog <- Float.max 0. (t.backlog +. (net *. dt));
    t.last <- now
  end
  else t.last <- now

(* After any change, predict the emptying instant and schedule the
   queue-empty notification for it.  A fired event whose backlog is not
   yet (numerically) zero re-arms itself: the signal must never be lost,
   the contingency-feedback method depends on it. *)
let tolerance = 1e-6 (* bits *)

let rec rearm t =
  t.epoch <- t.epoch + 1;
  let net = t.in_rate -. t.service in
  if t.backlog > tolerance && net < 0. then begin
    let epoch = t.epoch in
    let eta = t.backlog /. -.net in
    Engine.schedule_after t.engine ~delay:eta (fun () ->
        if t.epoch = epoch then begin
          touch t;
          if t.backlog <= tolerance then begin
            t.backlog <- 0.;
            t.on_empty ()
          end
          else rearm t
        end)
  end
  else if t.backlog <= tolerance then t.backlog <- 0.

let set_service t rate =
  if rate < 0. then invalid_arg "Fluid_edge.set_service: negative service rate";
  touch t;
  t.service <- rate;
  rearm t

let service t = t.service

let recompute_in_rate t =
  t.in_rate <- Hashtbl.fold (fun _ r acc -> acc +. r) t.inputs 0.

let set_input t ~id ~rate =
  if rate < 0. then invalid_arg "Fluid_edge.set_input: negative rate";
  touch t;
  if rate = 0. then Hashtbl.remove t.inputs id else Hashtbl.replace t.inputs id rate;
  recompute_in_rate t;
  rearm t

let remove_input t ~id = set_input t ~id ~rate:0.

let input_rate t = t.in_rate

let add_burst t bits =
  if bits < 0. then invalid_arg "Fluid_edge.add_burst: negative burst";
  touch t;
  t.backlog <- t.backlog +. bits;
  rearm t

let backlog t =
  touch t;
  t.backlog

let is_empty t = backlog t <= tolerance
