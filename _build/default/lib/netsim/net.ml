module Topology = Bbr_vtrs.Topology

type mode = Core_stateless | Intserv

type t = {
  engine : Engine.t;
  topology : Topology.t;
  mode : mode;
  hops : Hop.t array;  (* indexed by link_id *)
  sink : Sink.t;
}

let discipline mode (link : Topology.link) =
  match (mode, link.Topology.sched) with
  | Core_stateless, Topology.Rate_based -> Hop.Csvc
  | Core_stateless, Topology.Delay_based -> Hop.Vtedf
  | Intserv, Topology.Rate_based -> Hop.Vc
  | Intserv, Topology.Delay_based -> Hop.Rcedf

let create engine topology mode =
  let sink = Sink.create engine in
  let n = Topology.num_links topology in
  let hops = Array.make n None in
  let deliver pkt =
    if pkt.Packet.hop_ix < Array.length pkt.Packet.path then
      let link = Packet.current_link pkt in
      match hops.(link.Topology.link_id) with
      | Some hop -> Hop.receive hop pkt
      | None -> assert false
    else Sink.receive sink pkt
  in
  List.iter
    (fun link ->
      hops.(link.Topology.link_id) <-
        Some (Hop.create engine ~link ~deliver (discipline mode link)))
    (Topology.links topology);
  let hops = Array.map Option.get hops in
  { engine; topology; mode; hops; sink }

let engine t = t.engine

let topology t = t.topology

let mode t = t.mode

let hop t ~link_id =
  if link_id < 0 || link_id >= Array.length t.hops then raise Not_found;
  t.hops.(link_id)

let sink t = t.sink

let inject t pkt =
  let link = Packet.current_link pkt in
  Hop.receive t.hops.(link.Topology.link_id) pkt

let make_conditioner t ~rate ~delay_param ~lmax ?on_empty () =
  Edge_conditioner.create t.engine ~rate ~delay_param ~lmax ?on_empty
    ~next:(fun pkt -> inject t pkt)
    ()

let install_flow t ~flow ~path ~rate ~deadline =
  List.iter
    (fun (link : Topology.link) ->
      Hop.install_flow t.hops.(link.Topology.link_id) ~flow ~rate ~deadline)
    path

let remove_flow t ~flow ~path =
  List.iter
    (fun (link : Topology.link) ->
      Hop.remove_flow t.hops.(link.Topology.link_id) ~flow)
    path

let core_flow_state t =
  Array.fold_left (fun acc hop -> acc + Hop.flow_state_count hop) 0 t.hops
