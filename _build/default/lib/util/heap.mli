(** Polymorphic binary min-heap.

    The discrete-event engine and the schedulers both need a priority queue
    with O(log n) insert / extract-min; the standard library offers none.
    Ordering is supplied at creation time and ties are broken by insertion
    order, which the simulator relies on for determinism. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] makes an empty heap ordered by [leq] (a total preorder:
    [leq a b] means [a] has priority at least as high as [b]).  Elements
    comparing equal are dequeued in insertion order. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Highest-priority element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the highest-priority element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
