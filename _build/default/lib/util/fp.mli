(** Tolerant floating-point comparisons.

    Admission control is full of boundary cases that are exact in real
    arithmetic (e.g. thirty flows of 50 kb/s exactly filling a 1.5 Mb/s
    link) but drift by a few ulps in floats.  All capacity and delay-bound
    comparisons in the repository go through these helpers, which use a
    relative tolerance of [1e-9] (absolute for magnitudes below 1). *)

val default_eps : float
(** [1e-9]. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b] up to the tolerance. *)

val geq : ?eps:float -> float -> float -> bool

val lt : ?eps:float -> float -> float -> bool
(** Strictly less, by more than the tolerance. *)

val gt : ?eps:float -> float -> float -> bool

val approx : ?eps:float -> float -> float -> bool
(** Equal up to the tolerance. *)
