(* Entries carry a sequence number so that equal-priority elements come out
   in insertion order: the event engine depends on this for determinism. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create ~leq = { leq; data = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0

let size t = t.len

(* [before t a b] decides strict heap order including the seq tie-break. *)
let before t a b =
  if t.leq a.value b.value then
    if t.leq b.value a.value then a.seq < b.seq else true
  else false

(* [ensure_room t fill] guarantees one free slot, using [fill] to initialise
   fresh cells (they are overwritten before being read). *)
let ensure_room t fill =
  let cap = Array.length t.data in
  if cap = 0 then t.data <- Array.make 16 fill
  else if t.len = cap then begin
    let nd = Array.make (cap * 2) fill in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  ensure_room t e;
  t.next_seq <- t.next_seq + 1;
  let i = ref t.len in
  t.len <- t.len + 1;
  t.data.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.len = 0 then None else Some t.data.(0).value

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && before t t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && before t t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t
    end;
    Some top.value
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.len <- 0;
  t.next_seq <- 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i).value :: acc) in
  go (t.len - 1) []
