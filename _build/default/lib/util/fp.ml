let default_eps = 1e-9

let tol eps a b = eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let leq ?(eps = default_eps) a b = a <= b +. tol eps a b

let geq ?(eps = default_eps) a b = a >= b -. tol eps a b

let lt ?(eps = default_eps) a b = a < b -. tol eps a b

let gt ?(eps = default_eps) a b = a > b +. tol eps a b

let approx ?(eps = default_eps) a b = Float.abs (a -. b) <= tol eps a b
