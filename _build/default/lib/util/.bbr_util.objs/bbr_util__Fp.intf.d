lib/util/fp.mli:
