lib/util/heap.mli:
