lib/util/prng.mli:
