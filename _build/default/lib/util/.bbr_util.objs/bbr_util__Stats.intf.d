lib/util/stats.mli:
