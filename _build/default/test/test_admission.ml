(* Tests for the path-oriented admission control algorithms (paper
   Section 3), including cross-validation of the O(M) Figure-4 algorithm
   against the exact oracle. *)

module Admission = Bbr_broker.Admission
module Types = Bbr_broker.Types
module Traffic = Bbr_vtrs.Traffic
module Vtedf = Bbr_vtrs.Vtedf
module Delay = Bbr_vtrs.Delay

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

let psi = 12_000. /. 1.5e6

(* A synthetic path state: [q] rate-based and [dq] delay-based hops of
   1.5 Mb/s links, with the given VT-EDF populations. *)
let mk_state ?(capacity = 1.5e6) ~q ~dq ?(cres = 1.5e6) ?(edf = []) () =
  let edf =
    if edf = [] then List.init dq (fun _ -> Vtedf.create ~capacity) else edf
  in
  {
    Admission.hops = q + dq;
    rate_hops = q;
    delay_hops = dq;
    d_tot = float_of_int (q + dq) *. psi;
    cres;
    edf;
  }

(* ------------------------------------------------------------------ *)
(* Rate-based-only paths (Section 3.1) *)

let test_rate_based_table2_values () =
  let ps = mk_state ~q:5 ~dq:0 () in
  (match Admission.rate_based ps type0 ~dreq:2.44 with
  | Ok r -> Alcotest.(check (float 1e-6)) "2.44 -> rho" 50_000. r
  | Error _ -> Alcotest.fail "expected admission");
  match Admission.rate_based ps type0 ~dreq:2.19 with
  | Ok r -> Alcotest.(check (float 1e-3)) "2.19" (168_000. /. 3.11) r
  | Error _ -> Alcotest.fail "expected admission"

let test_rate_based_insufficient_bandwidth () =
  let ps = mk_state ~q:5 ~dq:0 ~cres:40_000. () in
  match Admission.rate_based ps type0 ~dreq:2.44 with
  | Error Types.Insufficient_bandwidth -> ()
  | _ -> Alcotest.fail "expected bandwidth rejection"

let test_rate_based_delay_unachievable () =
  let ps = mk_state ~q:5 ~dq:0 () in
  (* Even at peak rate the bound cannot be met. *)
  match Admission.rate_based ps type0 ~dreq:0.3 with
  | Error Types.Delay_unachievable -> ()
  | Ok r -> Alcotest.failf "unexpected admission at %g" r
  | Error _ -> Alcotest.fail "wrong rejection reason"

let test_rate_based_rejects_mixed_path () =
  let ps = mk_state ~q:3 ~dq:2 () in
  Alcotest.check_raises "wrong path kind"
    (Invalid_argument "Admission.rate_based: path has delay-based hops") (fun () ->
      ignore (Admission.rate_based ps type0 ~dreq:2.44))

let test_rate_based_meets_bound_exactly () =
  let ps = mk_state ~q:5 ~dq:0 () in
  match Admission.rate_based ps type0 ~dreq:2.19 with
  | Ok r ->
      let bound = Delay.e2e_bound type0 ~q:5 ~delay_hops:0 ~rate:r ~delay:0. ~d_tot:ps.Admission.d_tot in
      Alcotest.(check (float 1e-6)) "binding" 2.19 bound
  | Error _ -> Alcotest.fail "expected admission"

(* ------------------------------------------------------------------ *)
(* Mixed paths (Section 3.2, Figure 4) *)

let test_mixed_empty_schedulers () =
  let ps = mk_state ~q:3 ~dq:2 () in
  match Admission.mixed ps type0 ~dreq:2.19 with
  | Ok (r, d) ->
      Alcotest.(check (float 1e-6)) "min rate is rho" 50_000. r;
      (* d = t - Xi/r with t = (2.19 - 0.04 + 0.96)/2, Xi = 144000/2 *)
      Alcotest.(check (float 1e-6)) "delay" (1.555 -. (72_000. /. 50_000.)) d;
      Alcotest.(check bool) "pair is schedulable" true
        (Admission.schedulable ps ~rate:r ~delay:d ~lmax:12_000.)
  | Error _ -> Alcotest.fail "expected admission"

let test_mixed_rejects_rate_only_path () =
  let ps = mk_state ~q:5 ~dq:0 () in
  Alcotest.check_raises "wrong path kind"
    (Invalid_argument "Admission.mixed: path has no delay-based hop") (fun () ->
      ignore (Admission.mixed ps type0 ~dreq:2.19))

let test_mixed_delay_unachievable () =
  let ps = mk_state ~q:3 ~dq:2 () in
  match Admission.mixed ps type0 ~dreq:0.01 with
  | Error Types.Delay_unachievable -> ()
  | _ -> Alcotest.fail "expected delay rejection"

let test_mixed_respects_capacity () =
  let ps = mk_state ~q:3 ~dq:2 ~cres:30_000. () in
  match Admission.mixed ps type0 ~dreq:2.19 with
  | Error _ -> ()
  | Ok (r, _) -> Alcotest.failf "admitted %g over a 30k residual" r

let test_mixed_result_meets_e2e_bound () =
  let ps = mk_state ~q:3 ~dq:2 () in
  match Admission.mixed ps type0 ~dreq:2.19 with
  | Ok (r, d) ->
      let bound = Delay.e2e_bound type0 ~q:3 ~delay_hops:2 ~rate:r ~delay:d ~d_tot:ps.Admission.d_tot in
      Alcotest.(check bool) "meets requirement" true (bound <= 2.19 +. 1e-9)
  | Error _ -> Alcotest.fail "expected admission"

let test_mixed_fills_like_paper () =
  (* Sequential identical admissions on a shared mixed path should accept
     exactly 27 type-0 flows at the 2.19 bound (Table 2), with the rate
     rising as the EDF schedulers load up (Figure 9). *)
  let capacity = 1.5e6 in
  let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
  let reserved = ref 0. in
  let rates = ref [] in
  let admitted = ref 0 in
  let continue = ref true in
  while !continue && !admitted < 100 do
    let ps = mk_state ~q:3 ~dq:2 ~cres:(capacity -. !reserved) ~edf () in
    match Admission.mixed ps type0 ~dreq:2.19 with
    | Ok (r, d) ->
        incr admitted;
        reserved := !reserved +. r;
        rates := r :: !rates;
        List.iter (fun s -> Vtedf.add s ~rate:r ~delay:d ~lmax:12_000.) edf
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "27 flows" 27 !admitted;
  (* first flow at the sustained rate, later flows above it *)
  Alcotest.(check (float 1e-6)) "first at rho" 50_000. (List.nth !rates 26);
  Alcotest.(check bool) "rates nondecreasing overall" true
    (List.hd !rates >= List.nth !rates 26)

let test_mixed_minimality_vs_oracle_on_fill () =
  (* At every step of the fill the fast algorithm must agree with the
     exact oracle. *)
  let capacity = 1.5e6 in
  let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
  let reserved = ref 0. in
  let continue = ref true in
  let step = ref 0 in
  while !continue && !step < 40 do
    incr step;
    let ps = mk_state ~q:3 ~dq:2 ~cres:(capacity -. !reserved) ~edf () in
    let fast = Admission.mixed ps type0 ~dreq:2.19 in
    let exact = Admission.mixed_reference ps type0 ~dreq:2.19 in
    (match (fast, exact) with
    | Ok (rf, df), Ok (re, _) ->
        Alcotest.(check (float 1.)) (Printf.sprintf "step %d minimal rate" !step) re rf;
        List.iter (fun s -> Vtedf.add s ~rate:rf ~delay:df ~lmax:12_000.) edf;
        reserved := !reserved +. rf
    | Error _, Error _ -> continue := false
    | Ok _, Error _ -> Alcotest.fail "fast admitted what oracle rejected"
    | Error _, Ok _ -> Alcotest.fail "fast rejected what oracle admitted")
  done

(* ------------------------------------------------------------------ *)
(* Randomized cross-validation: the Figure-4 algorithm against the exact
   oracle on random scheduler populations. *)

let random_state_gen =
  QCheck.Gen.(
    let* q = int_range 0 4 in
    let* dq = int_range 1 3 in
    let* n_flows = int_range 0 20 in
    let* flows =
      list_repeat n_flows
        (triple (float_range 10_000. 150_000.) (float_range 0.02 1.5)
           (float_range 1_000. 12_000.))
    in
    let* dreq = float_range 0.5 4. in
    return (q, dq, flows, dreq))

let build_state (q, dq, flows, _dreq) =
  let capacity = 1.5e6 in
  let edf = List.init dq (fun _ -> Vtedf.create ~capacity) in
  (* Load every scheduler with the subset of flows it can legally admit. *)
  let reserved = ref 0. in
  List.iter
    (fun (rate, delay, lmax) ->
      if List.for_all (fun s -> Vtedf.can_admit s ~rate ~delay ~lmax) edf then begin
        List.iter (fun s -> Vtedf.add s ~rate ~delay ~lmax) edf;
        reserved := !reserved +. rate
      end)
    flows;
  mk_state ~q ~dq ~cres:(capacity -. !reserved) ~edf ()

let arb_random_state =
  QCheck.make
    ~print:(fun (q, dq, flows, dreq) ->
      Printf.sprintf "q=%d dq=%d flows=%d dreq=%g" q dq (List.length flows) dreq)
    random_state_gen

let prop_mixed_sound =
  QCheck.Test.make ~name:"mixed: any admitted pair is exactly schedulable" ~count:500
    arb_random_state (fun ((_, _, _, dreq) as spec) ->
      let ps = build_state spec in
      match Admission.mixed ps type0 ~dreq with
      | Error _ -> true
      | Ok (rate, delay) ->
          Admission.schedulable ps ~rate ~delay ~lmax:12_000.
          && rate >= type0.Traffic.rho -. 1e-6
          && rate <= type0.Traffic.peak +. 1e-6
          && delay >= -1e-9
          && Delay.e2e_bound type0 ~q:ps.Admission.rate_hops
               ~delay_hops:ps.Admission.delay_hops ~rate ~delay ~d_tot:ps.Admission.d_tot
             <= dreq +. 1e-6)

let prop_mixed_agrees_with_oracle =
  QCheck.Test.make ~name:"mixed: decision and minimal rate match the oracle" ~count:500
    arb_random_state (fun ((_, _, _, dreq) as spec) ->
      let ps = build_state spec in
      match (Admission.mixed ps type0 ~dreq, Admission.mixed_reference ps type0 ~dreq) with
      | Ok (rf, _), Ok (re, _) -> Float.abs (rf -. re) <= 1e-3 *. Float.max 1. re
      | Error _, Error _ -> true
      | Ok _, Error _ -> false
      | Error _, Ok (re, de) ->
          (* The published interval formulas may be conservative; a
             disagreement is only acceptable if the fast path fell back —
             which it does internally — so this case must not occur. *)
          QCheck.Test.fail_reportf "fast rejected, oracle found (%g, %g)" re de)

let prop_mixed_sound_any_profile =
  QCheck.Test.make ~name:"mixed: sound for arbitrary candidate profiles" ~count:500
    (QCheck.pair arb_random_state Gen.arb_profile)
    (fun (((_, _, _, dreq) as spec), profile) ->
      let ps = build_state spec in
      match Admission.mixed ps profile ~dreq with
      | Error _ -> true
      | Ok (rate, delay) ->
          Admission.schedulable ps ~rate ~delay ~lmax:profile.Traffic.lmax
          && Traffic.conforms profile ~rate
          && delay >= -1e-9
          && Delay.e2e_bound profile ~q:ps.Admission.rate_hops
               ~delay_hops:ps.Admission.delay_hops ~rate ~delay
               ~d_tot:ps.Admission.d_tot
             <= dreq +. 1e-6)

let prop_mixed_matches_oracle_any_profile =
  QCheck.Test.make ~name:"mixed: matches oracle for arbitrary profiles" ~count:500
    (QCheck.pair arb_random_state Gen.arb_profile)
    (fun (((_, _, _, dreq) as spec), profile) ->
      let ps = build_state spec in
      match (Admission.mixed ps profile ~dreq, Admission.mixed_reference ps profile ~dreq)
      with
      | Ok (rf, _), Ok (re, _) -> Float.abs (rf -. re) <= 1e-3 *. Float.max 1. re
      | Error _, Error _ -> true
      | Ok _, Error _ -> false
      | Error _, Ok _ -> false)

let prop_oracle_sound =
  QCheck.Test.make ~name:"oracle: any admitted pair is exactly schedulable" ~count:500
    arb_random_state (fun ((_, _, _, dreq) as spec) ->
      let ps = build_state spec in
      match Admission.mixed_reference ps type0 ~dreq with
      | Error _ -> true
      | Ok (rate, delay) -> Admission.schedulable ps ~rate ~delay ~lmax:12_000.)

let prop_oracle_rate_not_improvable =
  QCheck.Test.make ~name:"oracle: rate cannot be reduced by 5%" ~count:300
    arb_random_state (fun ((_, _, _, dreq) as spec) ->
      let ps = build_state spec in
      match Admission.mixed_reference ps type0 ~dreq with
      | Error _ -> true
      | Ok (rate, _) ->
          let smaller = rate *. 0.95 in
          smaller < type0.Traffic.rho
          ||
          (* no delay in [0, t] can make the smaller rate feasible *)
          let dh = float_of_int ps.Admission.delay_hops in
          let ton = Traffic.t_on type0 in
          let tval = (dreq -. ps.Admission.d_tot +. ton) /. dh in
          let xi =
            ((ton *. type0.Traffic.peak)
            +. (float_of_int (ps.Admission.rate_hops + 1) *. type0.Traffic.lmax))
            /. dh
          in
          let dmax = tval -. (xi /. smaller) in
          dmax < 0.
          ||
          (* check a grid of candidate delays *)
          not
            (List.exists
               (fun frac ->
                 let d = dmax *. frac in
                 Admission.schedulable ps ~rate:smaller ~delay:d ~lmax:12_000.)
               [ 0.; 0.25; 0.5; 0.75; 1. ]))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_mixed_sound;
        prop_mixed_agrees_with_oracle;
        prop_mixed_sound_any_profile;
        prop_mixed_matches_oracle_any_profile;
        prop_oracle_sound;
        prop_oracle_rate_not_improvable;
      ]
  in
  Alcotest.run "admission"
    [
      ( "rate-based",
        [
          Alcotest.test_case "Table-2 values" `Quick test_rate_based_table2_values;
          Alcotest.test_case "insufficient bandwidth" `Quick
            test_rate_based_insufficient_bandwidth;
          Alcotest.test_case "delay unachievable" `Quick test_rate_based_delay_unachievable;
          Alcotest.test_case "wrong path kind" `Quick test_rate_based_rejects_mixed_path;
          Alcotest.test_case "binding bound" `Quick test_rate_based_meets_bound_exactly;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "empty schedulers" `Quick test_mixed_empty_schedulers;
          Alcotest.test_case "wrong path kind" `Quick test_mixed_rejects_rate_only_path;
          Alcotest.test_case "delay unachievable" `Quick test_mixed_delay_unachievable;
          Alcotest.test_case "capacity" `Quick test_mixed_respects_capacity;
          Alcotest.test_case "meets e2e bound" `Quick test_mixed_result_meets_e2e_bound;
          Alcotest.test_case "27-flow fill (Table 2)" `Quick test_mixed_fills_like_paper;
          Alcotest.test_case "fill agrees with oracle" `Quick
            test_mixed_minimality_vs_oracle_on_fill;
        ] );
      ("properties", props);
    ]
