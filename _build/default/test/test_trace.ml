(* Tests for the flow-arrival trace format and replayer. *)

module Dynamic = Bbr_workload.Dynamic
module Trace = Bbr_workload.Trace
module Aggregate = Bbr_broker.Aggregate

let cfg = { Dynamic.default_config with Dynamic.duration = 2_000.; arrival_rate = 0.25 }

let test_round_trip () =
  let entries = Trace.generate cfg in
  Alcotest.(check bool) "non-trivial trace" true (List.length entries > 100);
  match Trace.of_string (Trace.to_string entries) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back ->
      Alcotest.(check int) "same length" (List.length entries) (List.length back);
      List.iter2
        (fun (a : Trace.entry) (b : Trace.entry) ->
          (* %h serialization is bit-exact *)
          Alcotest.(check bool) "identical entry" true (a = b))
        entries back

let test_replay_equals_run () =
  let entries = Trace.generate cfg in
  List.iter
    (fun scheme ->
      let direct = Dynamic.run cfg scheme in
      let replayed = Trace.replay entries scheme in
      Alcotest.(check int) "same offered" direct.Dynamic.offered
        replayed.Dynamic.offered;
      Alcotest.(check int) "same blocked" direct.Dynamic.blocked
        replayed.Dynamic.blocked;
      Alcotest.(check int) "same completed" direct.Dynamic.completed
        replayed.Dynamic.completed)
    [ Dynamic.Perflow; Dynamic.Aggr Aggregate.Feedback ]

let test_replay_of_serialized_equals_run () =
  (* Even through serialization, the replay is exact. *)
  let text = Trace.to_string (Trace.generate cfg) in
  match Trace.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok entries ->
      let direct = Dynamic.run cfg Dynamic.Perflow in
      let replayed = Trace.replay entries Dynamic.Perflow in
      Alcotest.(check int) "blocked equal" direct.Dynamic.blocked
        replayed.Dynamic.blocked

let test_rejects_garbage () =
  (match Trace.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected header error");
  match Trace.of_string "bbr-trace v1\n1.0 2.0 oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_handcrafted_trace () =
  (* Traces need not come from the generator. *)
  let profile = Bbr_workload.Profiles.profile 0 in
  let mk at =
    {
      Trace.at;
      holding = 100.;
      profile;
      dreq = 2.44;
      ingress = Bbr_workload.Fig8.ingress1;
      egress = Bbr_workload.Fig8.egress1;
    }
  in
  let entries = List.init 40 (fun i -> mk (float_of_int i)) in
  let o = Trace.replay entries Dynamic.Perflow in
  Alcotest.(check int) "offered" 40 o.Dynamic.offered;
  (* 30 fit; the rest arrive while the first are still holding. *)
  Alcotest.(check int) "blocked" 10 o.Dynamic.blocked

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "replay = run" `Quick test_replay_equals_run;
          Alcotest.test_case "serialized replay = run" `Quick
            test_replay_of_serialized_equals_run;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "handcrafted" `Quick test_handcrafted_trace;
        ] );
    ]
