(* Shared QCheck generators for the test suites. *)

module Traffic = Bbr_vtrs.Traffic

let profile_gen =
  QCheck.Gen.(
    let* rho = float_range 1_000. 500_000. in
    let* peak_mult = float_range 1.0 10. in
    let* lmax = float_range 100. 20_000. in
    let* burst_mult = float_range 1.0 20. in
    return
      (Traffic.make ~sigma:(lmax *. burst_mult) ~rho ~peak:(rho *. peak_mult) ~lmax))

let arb_profile = QCheck.make ~print:(Fmt.str "%a" Traffic.pp) profile_gen
