(* Unit tests for Bbr_netsim: Engine, Server, Hop, Edge_conditioner,
   Fluid_edge, Source, Sink, Net. *)

module Engine = Bbr_netsim.Engine
module Packet = Bbr_netsim.Packet
module Server = Bbr_netsim.Server
module Hop = Bbr_netsim.Hop
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Fluid_edge = Bbr_netsim.Fluid_edge
module Source = Bbr_netsim.Source
module Sink = Bbr_netsim.Sink
module Net = Bbr_netsim.Net
module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Packet_state = Bbr_vtrs.Packet_state

let check_float = Alcotest.(check (float 1e-9))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

let one_link ?(sched = Topology.Rate_based) ?(capacity = 1.5e6) () =
  let t = Topology.create () in
  let l = Topology.add_link t ~src:"A" ~dst:"B" ~capacity sched in
  (t, l)

let mk_pkt ?(flow = 0) ?(seq = 0) ?(size = 12_000.) ?(born = 0.) path =
  Packet.make ~flow ~seq ~size ~born ~path

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2. (fun () -> log := 2 :: !log);
  Engine.schedule e ~at:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:3. (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3. (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~at:1. (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5. (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: 1 is in the past (now 5)")
    (fun () -> Engine.schedule e ~at:1. (fun () -> ()))

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1. (fun () -> incr fired);
  Engine.schedule e ~at:10. (fun () -> incr fired);
  Engine.run ~until:5. e;
  Alcotest.(check int) "only first" 1 !fired;
  check_float "clock parked at until" 5. (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "both" 2 !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1. (fun () ->
      log := "outer" :: !log;
      Engine.schedule_after e ~delay:1. (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "executed" 2 (Engine.executed e)

(* ------------------------------------------------------------------ *)
(* Server *)

let test_server_serves_by_key () =
  let e = Engine.create () in
  let order = ref [] in
  let srv =
    Server.create e ~capacity:12_000. ~on_depart:(fun p ->
        order := p.Packet.flow :: !order)
  in
  (* All enqueued at t=0; flow 1 enqueued first but has the larger key.
     The server is non-preemptive so flow 1 transmits first, then the rest
     follow by key. *)
  Server.enqueue srv ~key:9. (mk_pkt ~flow:1 [||]);
  Server.enqueue srv ~key:1. (mk_pkt ~flow:2 [||]);
  Server.enqueue srv ~key:5. (mk_pkt ~flow:3 [||]);
  Engine.run e;
  Alcotest.(check (list int)) "priority order after head" [ 1; 2; 3 ] (List.rev !order)

let test_server_rate () =
  let e = Engine.create () in
  let times = ref [] in
  let srv =
    Server.create e ~capacity:12_000. ~on_depart:(fun _ ->
        times := Engine.now e :: !times)
  in
  Server.enqueue srv ~key:1. (mk_pkt ~flow:1 [||]);
  Server.enqueue srv ~key:2. (mk_pkt ~flow:2 [||]);
  Engine.run e;
  (* 12000-bit packets at 12000 b/s: one second each, back to back. *)
  Alcotest.(check (list (float 1e-9))) "departure times" [ 1.; 2. ] (List.rev !times);
  Alcotest.(check int) "served" 2 (Server.served srv);
  check_float "bits" 24_000. (Server.utilization_bits srv)

let test_server_work_conserving () =
  let e = Engine.create () in
  let times = ref [] in
  let srv =
    Server.create e ~capacity:12_000. ~on_depart:(fun _ ->
        times := Engine.now e :: !times)
  in
  Server.enqueue srv ~key:1. (mk_pkt [||]);
  Engine.run e;
  (* Idle gap, then another packet: service restarts immediately. *)
  Engine.schedule e ~at:5. (fun () -> Server.enqueue srv ~key:2. (mk_pkt [||]));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "no work lost" [ 1.; 6. ] (List.rev !times)

(* ------------------------------------------------------------------ *)
(* Hop *)

let stamped ?(rate = 50_000.) ?(delay = 0.1) pkt at =
  pkt.Packet.state <-
    Some (Packet_state.init ~rate ~delay ~lmax:12_000. ~edge_departure:at);
  pkt

let test_hop_csvc_order_and_advance () =
  let e = Engine.create () in
  let _, link = one_link () in
  let out = ref [] in
  let hop = Hop.create e ~link ~deliver:(fun p -> out := p :: !out) Hop.Csvc in
  (* Two flows; the one with the earlier virtual finish time goes first
     (after the head-of-line packet). *)
  let p1 = stamped ~rate:50_000. (mk_pkt ~flow:1 [| link |]) 1.0 in
  let p2 = stamped ~rate:100_000. (mk_pkt ~flow:2 [| link |]) 1.0 in
  Hop.receive hop p1;
  Hop.receive hop p2;
  Engine.run e;
  Alcotest.(check int) "served" 2 (Hop.served hop);
  (* Virtual finish: p1 = 1 + 0.24, p2 = 1 + 0.12: p1 was already in
     service (non-preemptive), p2 second. *)
  let delivered = List.rev_map (fun p -> p.Packet.flow) !out in
  Alcotest.(check (list int)) "order" [ 1; 2 ] delivered;
  (* State advanced by the concatenation rule. *)
  List.iter
    (fun p ->
      match p.Packet.state with
      | Some st -> Alcotest.(check bool) "omega advanced" true (st.Packet_state.omega > 1.0)
      | None -> Alcotest.fail "state lost")
    !out;
  Alcotest.(check int) "hop_ix advanced" 1 (List.hd !out).Packet.hop_ix

let test_hop_stateless_requires_state () =
  let e = Engine.create () in
  let _, link = one_link () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Csvc in
  Alcotest.check_raises "no state"
    (Invalid_argument "Hop.receive: packet without packet state at a core-stateless hop")
    (fun () -> Hop.receive hop (mk_pkt [| link |]))

let test_hop_stateless_no_flow_state () =
  let e = Engine.create () in
  let _, link = one_link () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Vtedf in
  Hop.install_flow hop ~flow:1 ~rate:1_000. ~deadline:0.1;
  Alcotest.(check int) "install is a no-op" 0 (Hop.flow_state_count hop)

let test_hop_vc_requires_install () =
  let e = Engine.create () in
  let _, link = one_link () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Vc in
  Alcotest.check_raises "uninstalled"
    (Invalid_argument "Hop.receive: flow 7 not installed at stateful VC hop") (fun () ->
      Hop.receive hop (mk_pkt ~flow:7 [| link |]))

let test_hop_vc_spacing () =
  let e = Engine.create () in
  let _, link = one_link ~capacity:1.2e6 () in
  let times = ref [] in
  let hop = Hop.create e ~link ~deliver:(fun _ -> times := Engine.now e :: !times) Hop.Vc in
  Hop.install_flow hop ~flow:1 ~rate:12_000. ~deadline:0.;
  Alcotest.(check int) "stateful entry" 1 (Hop.flow_state_count hop);
  (* Three back-to-back packets of a 12 kb/s flow: the virtual clock spaces
     their priorities a second apart, but the link is fast and work
     conserving, so they leave at line rate. *)
  for seq = 0 to 2 do
    Hop.receive hop (mk_pkt ~seq ~flow:1 [| link |])
  done;
  Engine.run e;
  Alcotest.(check int) "served" 3 (Hop.served hop);
  let tx = 12_000. /. 1.2e6 in
  Alcotest.(check (list (float 1e-9))) "line-rate departures" [ tx; 2. *. tx; 3. *. tx ]
    (List.rev !times)

let test_hop_rcedf_shapes () =
  let e = Engine.create () in
  let _, link = one_link ~sched:Topology.Delay_based ~capacity:1.2e6 () in
  let times = ref [] in
  let hop =
    Hop.create e ~link ~deliver:(fun _ -> times := Engine.now e :: !times) Hop.Rcedf
  in
  Hop.install_flow hop ~flow:1 ~rate:12_000. ~deadline:0.01;
  (* RC-EDF rate-controls per flow: the second packet only becomes eligible
     one second (12000 bits / 12 kb/s) after the first. *)
  Hop.receive hop (mk_pkt ~seq:0 ~flow:1 [| link |]);
  Hop.receive hop (mk_pkt ~seq:1 ~flow:1 [| link |]);
  Engine.run e;
  let tx = 12_000. /. 1.2e6 in
  Alcotest.(check (list (float 1e-9))) "shaped departures" [ tx; 1. +. tx ]
    (List.rev !times)

let test_hop_fifo () =
  let e = Engine.create () in
  let _, link = one_link () in
  let out = ref [] in
  let hop = Hop.create e ~link ~deliver:(fun p -> out := p.Packet.flow :: !out) Hop.Fifo in
  List.iter (fun f -> Hop.receive hop (mk_pkt ~flow:f [| link |])) [ 3; 1; 2 ];
  Engine.run e;
  Alcotest.(check (list int)) "arrival order" [ 3; 1; 2 ] (List.rev !out)

let test_hop_prop_delay () =
  let e = Engine.create () in
  let t = Topology.create () in
  let link =
    Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1.2e6 ~prop_delay:0.5
      Topology.Rate_based
  in
  let arrival = ref nan in
  let hop = Hop.create e ~link ~deliver:(fun _ -> arrival := Engine.now e) Hop.Fifo in
  Hop.receive hop (mk_pkt [| link |]);
  Engine.run e;
  check_float "tx + propagation" ((12_000. /. 1.2e6) +. 0.5) !arrival

(* ------------------------------------------------------------------ *)
(* Edge_conditioner *)

let test_conditioner_spacing () =
  let e = Engine.create () in
  let releases = ref [] in
  let c =
    Edge_conditioner.create e ~rate:12_000. ~delay_param:0. ~lmax:12_000.
      ~next:(fun p -> releases := (Engine.now e, p) :: !releases)
      ()
  in
  (* Three packets arrive together; they leave spaced size/rate apart. *)
  for seq = 0 to 2 do
    Edge_conditioner.submit c (mk_pkt ~seq [||])
  done;
  Engine.run e;
  let times = List.rev_map fst !releases in
  Alcotest.(check (list (float 1e-9))) "spacing" [ 0.; 1.; 2. ] times;
  Alcotest.(check int) "released" 3 (Edge_conditioner.released c)

let test_conditioner_stamps_state () =
  let e = Engine.create () in
  let got = ref None in
  let c =
    Edge_conditioner.create e ~rate:50_000. ~delay_param:0.2 ~lmax:12_000.
      ~next:(fun p -> got := p.Packet.state)
      ()
  in
  Edge_conditioner.submit c (mk_pkt [||]);
  Engine.run e;
  match !got with
  | Some st ->
      check_float "rate" 50_000. st.Packet_state.rate;
      check_float "delay" 0.2 st.Packet_state.delay;
      check_float "omega = departure" 0. st.Packet_state.omega
  | None -> Alcotest.fail "no state stamped"

let test_conditioner_rate_change_speeds_up () =
  let e = Engine.create () in
  let times = ref [] in
  let c =
    Edge_conditioner.create e ~rate:12_000. ~delay_param:0. ~lmax:12_000.
      ~next:(fun _ -> times := Engine.now e :: !times)
      ()
  in
  for seq = 0 to 2 do
    Edge_conditioner.submit c (mk_pkt ~seq [||])
  done;
  (* Double the rate at t=0.5: the pending head release is re-armed. *)
  Engine.schedule e ~at:0.5 (fun () -> Edge_conditioner.set_rate c 24_000.);
  Engine.run e;
  match List.rev !times with
  | [ t1; t2; t3 ] ->
      check_float "head unchanged" 0. t1;
      Alcotest.(check bool) "second earlier than 1s" true (t2 < 1.);
      Alcotest.(check bool) "third spaced at new rate" true (t3 -. t2 <= 0.5 +. 1e-9)
  | other -> Alcotest.fail (Printf.sprintf "expected 3 releases, got %d" (List.length other))

let test_conditioner_on_empty () =
  let e = Engine.create () in
  let empties = ref 0 in
  let c =
    Edge_conditioner.create e ~rate:12_000. ~delay_param:0. ~lmax:12_000.
      ~on_empty:(fun () -> incr empties)
      ~next:(fun _ -> ())
      ()
  in
  Edge_conditioner.submit c (mk_pkt ~seq:0 [||]);
  Edge_conditioner.submit c (mk_pkt ~seq:1 [||]);
  Engine.run e;
  Alcotest.(check int) "one emptying event" 1 !empties;
  check_float "no backlog" 0. (Edge_conditioner.backlog_bits c)

let test_conditioner_max_wait_matches_bound () =
  (* A greedy type-0 source shaped at rho: the edge bound of eq. (3) must
     hold, and a greedy source should get close to it. *)
  let e = Engine.create () in
  let c =
    Edge_conditioner.create e ~rate:50_000. ~delay_param:0. ~lmax:12_000.
      ~next:(fun _ -> ())
      ()
  in
  let _src =
    Source.greedy e ~profile:type0 ~flow:0 ~path:[||]
      ~next:(fun p -> Edge_conditioner.submit c p)
      ()
  in
  Engine.run ~until:60. e;
  let bound = Bbr_vtrs.Delay.edge_bound type0 ~rate:50_000. in
  let observed = Edge_conditioner.max_queueing_delay c in
  Alcotest.(check bool) "within bound" true (observed <= bound +. 1e-6);
  Alcotest.(check bool) "bound is tight-ish" true (observed >= 0.5 *. bound)

(* ------------------------------------------------------------------ *)
(* Fluid_edge *)

let test_fluid_drains_and_signals () =
  let e = Engine.create () in
  let emptied_at = ref nan in
  let f =
    Fluid_edge.create e ~service:100. ~on_empty:(fun () -> emptied_at := Engine.now e) ()
  in
  Fluid_edge.add_burst f 50.;
  Engine.run e;
  check_float "empty at backlog/rate" 0.5 !emptied_at;
  Alcotest.(check bool) "empty" true (Fluid_edge.is_empty f)

let test_fluid_inputs () =
  let e = Engine.create () in
  let f = Fluid_edge.create e ~service:100. () in
  Fluid_edge.set_input f ~id:1 ~rate:60.;
  Fluid_edge.set_input f ~id:2 ~rate:70.;
  check_float "in rate" 130. (Fluid_edge.input_rate f);
  Engine.schedule e ~at:1. (fun () -> ());
  Engine.run e;
  (* net +30 for one second *)
  check_float "integrated" 30. (Fluid_edge.backlog f);
  Fluid_edge.remove_input f ~id:1;
  Engine.schedule e ~at:2. (fun () -> ());
  Engine.run e;
  (* now net -30: backlog drains to zero *)
  check_float "drained" 0. (Fluid_edge.backlog f)

let test_fluid_service_change_reschedules () =
  let e = Engine.create () in
  let emptied_at = ref nan in
  let f =
    Fluid_edge.create e ~service:10. ~on_empty:(fun () -> emptied_at := Engine.now e) ()
  in
  Fluid_edge.add_burst f 100.;
  (* would empty at t=10, but at t=1 the service quadruples *)
  Engine.schedule e ~at:1. (fun () -> Fluid_edge.set_service f 40.);
  Engine.run e;
  (* 90 left at t=1, drains at 40/s: 1 + 2.25 = 3.25 *)
  check_float "rescheduled emptying" 3.25 !emptied_at

let test_fluid_no_signal_when_balanced () =
  let e = Engine.create () in
  let empties = ref 0 in
  let f = Fluid_edge.create e ~service:50. ~on_empty:(fun () -> incr empties) () in
  Fluid_edge.set_input f ~id:1 ~rate:50.;
  Fluid_edge.add_burst f 10.;
  Engine.schedule e ~at:100. (fun () -> ());
  Engine.run e;
  Alcotest.(check int) "never empties" 0 !empties;
  check_float "backlog persists" 10. (Fluid_edge.backlog f)

(* ------------------------------------------------------------------ *)
(* Source *)

let test_greedy_envelope_conformance () =
  let e = Engine.create () in
  let bits = ref 0. in
  let _src =
    Source.greedy e ~profile:type0 ~flow:0 ~path:[||]
      ~next:(fun p -> bits := !bits +. p.Packet.size)
      ()
  in
  let horizon = 10. in
  Engine.run ~until:horizon e;
  let env = Traffic.envelope type0 horizon in
  Alcotest.(check bool) "within envelope" true (!bits <= env +. 1e-6);
  (* and greedy should track it closely (within one packet) *)
  Alcotest.(check bool) "tracks envelope" true (!bits >= env -. 12_000.)

let test_greedy_peak_phase () =
  let e = Engine.create () in
  let count = ref 0 in
  let _src =
    Source.greedy e ~profile:type0 ~flow:0 ~path:[||] ~next:(fun _ -> incr count) ()
  in
  (* During the burst (t_on = 0.96 s) emission is at the peak rate. *)
  Engine.run ~until:0.96 e;
  let expect = Traffic.envelope type0 0.96 /. 12_000. in
  Alcotest.(check bool) "peak-phase count" true
    (Float.abs (float_of_int !count -. expect) <= 1.)

let test_cbr_spacing () =
  let e = Engine.create () in
  let times = ref [] in
  let _src =
    Source.cbr e ~rate:12_000. ~flow:0 ~path:[||] ~pkt_size:12_000.
      ~next:(fun _ -> times := Engine.now e :: !times)
      ()
  in
  Engine.run ~until:3.5 e;
  Alcotest.(check (list (float 1e-9))) "cbr times" [ 0.; 1.; 2.; 3. ] (List.rev !times)

let test_on_off_long_run_average () =
  let e = Engine.create () in
  let bits = ref 0. in
  let _src =
    Source.on_off e ~profile:type0 ~flow:0 ~path:[||]
      ~next:(fun p -> bits := !bits +. p.Packet.size)
      ()
  in
  let horizon = 500. in
  Engine.run ~until:horizon e;
  let avg = !bits /. horizon in
  (* The source is token-bucket gated, so its average can never exceed rho;
     the conservative sigma/rho refill period keeps it slightly below. *)
  Alcotest.(check bool)
    (Printf.sprintf "average <= rho and close (%.0f)" avg)
    true
    (avg <= 50_000. +. 1. && avg >= 0.8 *. 50_000.)

let test_poisson_average () =
  let e = Engine.create () in
  let prng = Bbr_util.Prng.create ~seed:123 in
  let count = ref 0 in
  let _src =
    Source.poisson e ~prng ~rate:50_000. ~flow:0 ~path:[||] ~pkt_size:12_000.
      ~next:(fun _ -> incr count)
      ()
  in
  Engine.run ~until:1000. e;
  (* 50 kb/s / 12 kb per pkt = 4.1667 pkt/s -> ~4167 packets *)
  Alcotest.(check bool) "poisson mean" true
    (!count > 3_800 && !count < 4_500)

let test_source_halt () =
  let e = Engine.create () in
  let src = ref None in
  let count = ref 0 in
  let s =
    Source.cbr e ~rate:12_000. ~flow:0 ~path:[||] ~pkt_size:12_000.
      ~next:(fun _ ->
        incr count;
        if !count = 3 then Source.halt (Option.get !src))
      ()
  in
  src := Some s;
  Engine.run ~until:100. e;
  Alcotest.(check int) "halted after 3" 3 !count;
  Alcotest.(check int) "emitted" 3 (Source.emitted s)

(* ------------------------------------------------------------------ *)
(* Net *)

let two_hop_topology () =
  let t = Topology.create () in
  let _ = Topology.add_link t ~src:"I" ~dst:"R" ~capacity:1.5e6 Topology.Rate_based in
  let _ = Topology.add_link t ~src:"R" ~dst:"E" ~capacity:1.5e6 Topology.Delay_based in
  t

let test_net_end_to_end () =
  let topo = two_hop_topology () in
  let e = Engine.create () in
  let net = Net.create e topo Net.Core_stateless in
  let path =
    [|
      Option.get (Topology.find_link topo ~src:"I" ~dst:"R");
      Option.get (Topology.find_link topo ~src:"R" ~dst:"E");
    |]
  in
  let cond = Net.make_conditioner net ~rate:50_000. ~delay_param:0.1 ~lmax:12_000. () in
  let _src =
    Source.cbr e ~rate:50_000. ~flow:42 ~path ~pkt_size:12_000.
      ~next:(fun p -> Edge_conditioner.submit cond p)
      ()
  in
  Engine.run ~until:10. e;
  let sink = Net.sink net in
  match Sink.stats sink ~flow:42 with
  | Some s ->
      Alcotest.(check bool) "packets arrived" true (s.Sink.received > 30);
      Alcotest.(check bool) "delay positive" true (s.Sink.max_e2e > 0.);
      Alcotest.(check int) "no core flow state" 0 (Net.core_flow_state net)
  | None -> Alcotest.fail "no packets at sink"

let test_net_intserv_needs_install () =
  let topo = two_hop_topology () in
  let e = Engine.create () in
  let net = Net.create e topo Net.Intserv in
  let links = Topology.links topo in
  let path = Array.of_list links in
  Net.install_flow net ~flow:1 ~path:links ~rate:50_000. ~deadline:0.24;
  Alcotest.(check int) "stateful entries" 2 (Net.core_flow_state net);
  let cond = Net.make_conditioner net ~rate:50_000. ~delay_param:0.24 ~lmax:12_000. () in
  let _src =
    Source.cbr e ~rate:50_000. ~flow:1 ~path ~pkt_size:12_000.
      ~next:(fun p -> Edge_conditioner.submit cond p)
      ()
  in
  Engine.run ~until:5. e;
  Alcotest.(check bool) "delivered" true (Sink.total_received (Net.sink net) > 10);
  Net.remove_flow net ~flow:1 ~path:links;
  Alcotest.(check int) "state released" 0 (Net.core_flow_state net)

let test_net_per_hop_error_terms_hold () =
  (* The per-hop guarantee: actual finish <= virtual finish + psi. *)
  let topo = two_hop_topology () in
  let e = Engine.create () in
  let net = Net.create e topo Net.Core_stateless in
  let path = Array.of_list (Topology.links topo) in
  let conds =
    List.init 8 (fun flow ->
        let c = Net.make_conditioner net ~rate:150_000. ~delay_param:0.2 ~lmax:12_000. () in
        let profile =
          Traffic.make ~sigma:120_000. ~rho:150_000. ~peak:300_000. ~lmax:12_000.
        in
        ignore
          (Source.greedy e ~profile ~flow ~path
             ~next:(fun p -> Edge_conditioner.submit c p)
             ());
        c)
  in
  ignore conds;
  Engine.run ~until:30. e;
  List.iter
    (fun (l : Topology.link) ->
      let hop = Net.hop net ~link_id:l.Topology.link_id in
      Alcotest.(check bool)
        (Printf.sprintf "error term at link %d" l.Topology.link_id)
        true
        (Hop.max_lateness hop <= 1e-9))
    (Topology.links topo)

let () =
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
        ] );
      ( "server",
        [
          Alcotest.test_case "key order" `Quick test_server_serves_by_key;
          Alcotest.test_case "service rate" `Quick test_server_rate;
          Alcotest.test_case "work conserving" `Quick test_server_work_conserving;
        ] );
      ( "hop",
        [
          Alcotest.test_case "csvc order+advance" `Quick test_hop_csvc_order_and_advance;
          Alcotest.test_case "stateless needs packet state" `Quick
            test_hop_stateless_requires_state;
          Alcotest.test_case "stateless holds no flow state" `Quick
            test_hop_stateless_no_flow_state;
          Alcotest.test_case "vc requires install" `Quick test_hop_vc_requires_install;
          Alcotest.test_case "vc spacing" `Quick test_hop_vc_spacing;
          Alcotest.test_case "rcedf shaping" `Quick test_hop_rcedf_shapes;
          Alcotest.test_case "fifo" `Quick test_hop_fifo;
          Alcotest.test_case "propagation delay" `Quick test_hop_prop_delay;
        ] );
      ( "edge_conditioner",
        [
          Alcotest.test_case "spacing" `Quick test_conditioner_spacing;
          Alcotest.test_case "stamps state" `Quick test_conditioner_stamps_state;
          Alcotest.test_case "rate change" `Quick test_conditioner_rate_change_speeds_up;
          Alcotest.test_case "on_empty" `Quick test_conditioner_on_empty;
          Alcotest.test_case "edge bound holds" `Quick
            test_conditioner_max_wait_matches_bound;
        ] );
      ( "fluid_edge",
        [
          Alcotest.test_case "drain+signal" `Quick test_fluid_drains_and_signals;
          Alcotest.test_case "inputs" `Quick test_fluid_inputs;
          Alcotest.test_case "service change" `Quick test_fluid_service_change_reschedules;
          Alcotest.test_case "balanced no signal" `Quick test_fluid_no_signal_when_balanced;
        ] );
      ( "source",
        [
          Alcotest.test_case "greedy conforms" `Quick test_greedy_envelope_conformance;
          Alcotest.test_case "greedy peak phase" `Quick test_greedy_peak_phase;
          Alcotest.test_case "cbr spacing" `Quick test_cbr_spacing;
          Alcotest.test_case "on/off average" `Quick test_on_off_long_run_average;
          Alcotest.test_case "poisson average" `Quick test_poisson_average;
          Alcotest.test_case "halt" `Quick test_source_halt;
        ] );
      ( "net",
        [
          Alcotest.test_case "end to end" `Quick test_net_end_to_end;
          Alcotest.test_case "intserv install" `Quick test_net_intserv_needs_install;
          Alcotest.test_case "per-hop error terms" `Quick
            test_net_per_hop_error_terms_hold;
        ] );
    ]
