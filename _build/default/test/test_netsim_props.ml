(* Property tests for the data-plane building blocks: event ordering,
   shaper spacing, conservation, and fluid/packet edge agreement. *)

module Engine = Bbr_netsim.Engine
module Packet = Bbr_netsim.Packet
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Fluid_edge = Bbr_netsim.Fluid_edge
module Server = Bbr_netsim.Server
module Source = Bbr_netsim.Source
module Traffic = Bbr_vtrs.Traffic
module Prng = Bbr_util.Prng

let mk_pkt ?(flow = 0) ~seq ~size () =
  Packet.make ~flow ~seq ~size ~born:0. ~path:[||]

(* ------------------------------------------------------------------ *)

let prop_engine_time_monotone =
  QCheck.Test.make ~name:"events execute in nondecreasing time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_bound_inclusive 1000.))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun at -> Engine.schedule e ~at (fun () -> seen := Engine.now e :: !seen))
        times;
      Engine.run e;
      let order = List.rev !seen in
      List.length order = List.length times
      && List.for_all2 ( = ) order (List.sort compare times))

let prop_conditioner_spacing =
  QCheck.Test.make
    ~name:"conditioner releases are spaced at least size/rate apart" ~count:200
    QCheck.(
      pair (int_range 1 1_000_000)
        (pair (float_range 10_000. 500_000.) (int_range 2 60)))
    (fun (seed, (rate, n)) ->
      let e = Engine.create () in
      let prng = Prng.create ~seed in
      let releases = ref [] in
      let c =
        Edge_conditioner.create e ~rate ~delay_param:0. ~lmax:12_000.
          ~next:(fun p -> releases := (Engine.now e, p.Packet.size) :: !releases)
          ()
      in
      (* Random bursty arrivals of random sizes. *)
      let at = ref 0. in
      for seq = 0 to n - 1 do
        at := !at +. (if Prng.bool prng then 0. else Prng.float_range prng ~lo:0. ~hi:0.5);
        let size = Prng.float_range prng ~lo:500. ~hi:12_000. in
        let when_ = !at in
        Engine.schedule e ~at:when_ (fun () ->
            Edge_conditioner.submit c (mk_pkt ~seq ~size ()))
      done;
      Engine.run e;
      let ordered = List.rev !releases in
      let rec spaced = function
        | (t1, _) :: ((t2, s2) :: _ as rest) ->
            t2 -. t1 >= (s2 /. rate) -. 1e-9 && spaced rest
        | _ -> true
      in
      List.length ordered = n && spaced ordered)

let prop_conditioner_conserves_packets =
  QCheck.Test.make ~name:"conditioner neither drops nor duplicates" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 80))
    (fun (seed, n) ->
      let e = Engine.create () in
      let prng = Prng.create ~seed in
      let got = Hashtbl.create 64 in
      let c =
        Edge_conditioner.create e ~rate:100_000. ~delay_param:0. ~lmax:12_000.
          ~next:(fun p -> Hashtbl.replace got p.Packet.seq ())
          ()
      in
      for seq = 0 to n - 1 do
        let at = Prng.float_range prng ~lo:0. ~hi:5. in
        Engine.schedule e ~at (fun () ->
            Edge_conditioner.submit c (mk_pkt ~seq ~size:6_000. ()))
      done;
      Engine.run e;
      Hashtbl.length got = n && Edge_conditioner.released c = n)

let prop_server_conserves_bits =
  QCheck.Test.make ~name:"server transmits exactly the bits enqueued" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 100. 12_000.))
    (fun sizes ->
      let e = Engine.create () in
      let srv = Server.create e ~capacity:1e6 ~on_depart:(fun _ -> ()) in
      List.iteri (fun seq size -> Server.enqueue srv ~key:(float_of_int seq) (mk_pkt ~seq ~size ())) sizes;
      Engine.run e;
      Float.abs (Server.utilization_bits srv -. List.fold_left ( +. ) 0. sizes) < 1e-6
      && Server.backlog_bits srv < 1e-6)

(* The fluid edge and the packet edge must agree on when a shared step
   workload drains: same service rate, a burst of B bits arriving at t=0,
   constant input thereafter. *)
let prop_fluid_matches_packet_drain =
  QCheck.Test.make ~name:"fluid and packet edges drain bursts at the same time"
    ~count:100
    QCheck.(
      pair (float_range 50_000. 200_000.) (pair (int_range 2 20) (float_range 1.2 3.)))
    (fun (rate, (burst_pkts, speedup)) ->
      let size = 12_000. in
      let burst = float_of_int burst_pkts *. size in
      let service = rate *. speedup in
      (* Packet model: burst_pkts packets at t=0, drained at [service]. *)
      let e = Engine.create () in
      let last_release = ref 0. in
      let c =
        Edge_conditioner.create e ~rate:service ~delay_param:0. ~lmax:size
          ~next:(fun _ -> last_release := Engine.now e)
          ()
      in
      for seq = 0 to burst_pkts - 1 do
        Edge_conditioner.submit c (mk_pkt ~seq ~size ())
      done;
      Engine.run e;
      (* Fluid model: same burst, same service. *)
      let e2 = Engine.create () in
      let emptied = ref nan in
      let f =
        Fluid_edge.create e2 ~service ~on_empty:(fun () -> emptied := Engine.now e2) ()
      in
      Fluid_edge.add_burst f burst;
      Engine.run e2;
      Float.abs (!emptied -. !last_release) <= (size /. service) +. 1e-9)

(* Greedy sources must conform to their own profile envelope at every
   emission instant. *)
let prop_greedy_conforms =
  QCheck.Test.make ~name:"greedy source conforms to its envelope" ~count:100
    Gen.arb_profile (fun profile ->
      let e = Engine.create () in
      let sent = ref 0. in
      let ok = ref true in
      let _src =
        Source.greedy e ~profile ~flow:0 ~path:[||]
          ~next:(fun p ->
            sent := !sent +. p.Packet.size;
            (* relative slack: float accumulation over millions of bits *)
            let slack = 1e-6 +. (1e-9 *. !sent) in
            if !sent > Traffic.envelope profile (Engine.now e) +. slack then
              ok := false)
          ()
      in
      Engine.run ~until:20. e;
      !ok)

let prop_on_off_conforms =
  QCheck.Test.make ~name:"on/off source conforms to its envelope" ~count:100
    Gen.arb_profile (fun profile ->
      let e = Engine.create () in
      let sent = ref 0. in
      let ok = ref true in
      let _src =
        Source.on_off e ~profile ~flow:0 ~path:[||]
          ~next:(fun p ->
            sent := !sent +. p.Packet.size;
            let slack = 1e-6 +. (1e-9 *. !sent) in
            if !sent > Traffic.envelope profile (Engine.now e) +. slack then
              ok := false)
          ()
      in
      Engine.run ~until:20. e;
      !ok)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_engine_time_monotone;
        prop_conditioner_spacing;
        prop_conditioner_conserves_packets;
        prop_server_conserves_bits;
        prop_fluid_matches_packet_drain;
        prop_greedy_conforms;
        prop_on_off_conforms;
      ]
  in
  Alcotest.run "netsim_props" [ ("properties", props) ]
